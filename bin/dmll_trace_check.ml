(* dmll_trace_check: validate Chrome trace_event JSON files emitted by
   dmllc/dmll_run --trace against the golden schema (Dmll_obs.Trace_json).
   Used by the trace-smoke CI rule; exits non-zero naming the first file
   that fails to parse or violates the schema. *)

let check file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Dmll_obs.Trace_json.validate_chrome s with
  | Ok () ->
      Printf.printf "%s: ok\n" file;
      true
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      false

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: dmll_trace_check FILE.json...";
    exit 2
  end;
  exit (if List.for_all check files then 0 else 1)

(* dmll_worker: attach to a dmll_run --listen master from this (or any
   other) host and serve chunk programs over TCP until the master shuts
   the session down.  The master prints the exact command to run:

     dmll_worker --connect HOST:PORT --token TOKEN

   Exit codes mirror Net_cluster.worker_main: 0 orderly, 2 internal
   error, 3 injected permanent crash, 4 never managed to join. *)

open Cmdliner

let connect_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:"Master address to dial (printed by $(b,dmll_run --listen)).")

let token_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "token" ] ~docv:"TOKEN"
        ~doc:
          "Session token the master requires in the handshake (printed \
           by $(b,dmll_run --listen)).")

let redials_arg =
  Arg.(
    value & opt int 8
    & info [ "redials" ] ~docv:"N"
        ~doc:
          "How many times to redial and resume the session when the \
           link drops before giving up.")

let main connect token redials =
  exit
    (Dmll_runtime.Net_cluster.worker_main ~redials ~addr:connect ~token ())

let cmd =
  let doc = "serve DMLL chunk programs to a TCP master" in
  Cmd.v
    (Cmd.info "dmll_worker" ~doc)
    Term.(const main $ connect_arg $ token_arg $ redials_arg)

let () = exit (Cmd.eval cmd)

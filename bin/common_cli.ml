(** Shared Cmdliner vocabulary of the dmll tools ([dmllc], [dmll_run]),
    built on {!Dmll.Config}: each tool assembles a run configuration from
    the environment ({!Dmll.Config.of_env}, the single [DMLL_*] reader)
    overridden by these flags, instead of duplicating flag definitions
    and env plumbing. *)

open Cmdliner
module Config = Dmll.Config
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics
module M = Dmll_machine.Machine

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let target_arg =
  Arg.(
    value
    & opt (enum [ ("seq", `Seq); ("multicore", `Multicore); ("numa", `Numa);
                  ("gpu", `Gpu); ("cluster", `Cluster); ("proc", `Proc);
                  ("net", `Net); ("native", `Native) ]) `Seq
    & info [ "t"; "target" ] ~docv:"TARGET"
        ~doc:
          "Execution target; $(b,dmllc --explain backends) lists what \
           each one can do.")

let procs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "procs" ] ~docv:"N"
        ~doc:
          "Run the outer loops on $(docv) real forked worker processes \
           (implies $(b,--target proc)).  Composes with $(b,--faults): \
           injected crashes become real SIGKILLs, stragglers real \
           SIGSTOPs, and some kills sever the worker's pipe; the \
           supervisor replans onto survivors and the value matches the \
           fault-free run bit-for-bit.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker count for the net target (implies $(b,--target net)): \
           $(docv) TCP-attached worker processes, forked locally unless \
           $(b,--listen) puts the master in multi-host mode.  Composes \
           with $(b,--faults): crashes, SIGSTOP straggling, link \
           partitions, mid-frame severs, and frame corruption are \
           delivered for real, and the recovered value matches the \
           fault-free run bit-for-bit.")

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:
          "Multi-host mode for the net target (implies $(b,--target \
           net)): bind $(docv) and wait for external $(b,dmll_worker) \
           processes to attach instead of forking local workers.  The \
           master prints the address and session token to hand to each \
           worker.")

let token_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "token" ] ~docv:"TOKEN"
        ~doc:
          "Session token net workers must present in their handshake \
           (default: generated per run and printed in $(b,--listen) \
           mode).")

let nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "nodes" ] ~docv:"N"
        ~doc:
          "Cluster size in nodes: sizes the cluster target's machine \
           model, and the comm-volume predictions of --explain-comm \
           (default: the paper's 20-node EC2 preset).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject deterministic faults and recover from them (multicore \
           and cluster targets).  SPEC is comma-separated key=value \
           pairs, e.g. \
           $(b,seed=42,crash=0.05,straggler=0.1,join=0.2,leave=0.1); keys: \
           seed, crash, transient, straggler, slow, drop, delay, delay_us, \
           retries, backoff_us, heartbeat_ms, join, leave, spares, \
           partition, sever, corrupt, link_delay, link_delay_ms.  An \
           unknown key is rejected with the list of valid keys.  Results \
           are identical to the fault-free run.  The $(b,DMLL_FAULTS) \
           environment variable supplies a default spec.")

let checkpoint_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Snapshot the spine bindings every $(docv) outer loops \
           (checksummed; 0 disables).  On a crash the runtime prices \
           restore-from-checkpoint against lineage replay and takes the \
           cheaper path (multicore and cluster targets).")

let mem_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "mem-budget" ] ~docv:"GB"
        ~doc:
          "Per-node memory budget in GB (cluster target).  Defaults to \
           the machine model's per-node memory.  Loops whose resident set \
           exceeds the budget spill to disk and see remote-read \
           backpressure — the clock slows, the values never change.")

let debug_arg =
  Arg.(
    value & flag
    & info [ "debug" ]
        ~doc:
          "Re-verify every optimizer stage and replanned chunk, and arm \
           the runtime validation contracts (C-COMM-OVERRUN, \
           O-SPAN-CLOCK).  $(b,DMLL_DEBUG=1) sets the default.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit machine-readable JSON where the command supports it.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record compile and runtime spans and write them to $(docv) as \
           Chrome trace_event JSON (open in chrome://tracing or Perfetto).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Print a per-span-name self-time profile after the command.")

(* ------------------------------------------------------------------ *)
(* Config assembly                                                     *)
(* ------------------------------------------------------------------ *)

(** The environment config ({!Dmll.Config.of_env}) with the common flags
    applied on top, observability sinks armed.  A malformed [DMLL_FAULTS]
    or [--faults] spec exits with code 2. *)
let config ?(debug = false) ?faults ?(checkpoint_every = 0) ?mem_budget
    ?trace ?(profile = false) () : Config.t =
  let base =
    try Config.of_env ()
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let faults =
    match faults with
    | None -> base.Config.faults
    | Some s -> (
        match Dmll_runtime.Fault.parse s with
        | Ok spec -> Some (Dmll_runtime.Fault.create spec)
        | Error msg ->
            Printf.eprintf "bad --faults spec: %s\n" msg;
            exit 2)
  in
  Config.armed
    { base with
      Config.debug = base.Config.debug || debug;
      faults;
      checkpoint_every;
      mem_budget_gb = mem_budget;
      trace_file = trace;
      profile;
    }

(** The machine model a [--nodes] override selects. *)
let cluster_machine ?nodes () : M.cluster =
  match nodes with
  | Some n -> M.with_nodes n M.ec2_cluster
  | None -> M.ec2_cluster

(** Build a {!Dmll.target} from the
    [--target]/[--nodes]/[--procs]/[--workers]/[--listen]/[--token]
    flags.  The cluster, proc, and net targets carry only their
    size/address shape; fault, checkpoint, memory, and observability
    knobs flow in from the {!Config.t} at {!Dmll.execute} time.
    [--procs N] implies the proc target; [--workers N] and [--listen]
    imply the net target, [--listen] switching it to multi-host mode
    (external [dmll_worker] processes attach; the master prints the
    address and token they need). *)
let target_of ?nodes ?procs ?workers ?listen ?token
    (kind :
      [ `Seq | `Multicore | `Numa | `Gpu | `Cluster | `Proc | `Net | `Native ]) :
    Dmll.target =
  let proc_target () =
    let d = Dmll_runtime.Proc_cluster.default_config in
    Dmll.Proc_cluster
      { d with
        Dmll_runtime.Proc_cluster.workers =
          (match procs with
          | Some n -> n
          | None -> d.Dmll_runtime.Proc_cluster.workers);
      }
  in
  let net_target () =
    let d = Dmll_runtime.Net_cluster.default_config in
    let spawn_local = listen = None in
    let token =
      match token with
      | Some _ -> token
      | None when not spawn_local ->
          (* multi-host mode needs a token the user can hand to workers *)
          Some (Printf.sprintf "dmll-%d" (Unix.getpid ()))
      | None -> None
    in
    let on_listen =
      if spawn_local then None
      else
        Some
          (fun ~addr ->
            Printf.printf
              "net: listening on %s\nnet: attach workers with: dmll_worker \
               --connect %s --token %s\n%!"
              addr addr
              (Option.value token ~default:""))
    in
    Dmll.Net_cluster
      { d with
        Dmll_runtime.Net_cluster.workers =
          (match workers with
          | Some n -> n
          | None -> d.Dmll_runtime.Net_cluster.workers);
        listen;
        token;
        spawn_local;
        on_listen;
      }
  in
  if procs <> None then proc_target ()
  else if workers <> None || listen <> None then net_target ()
  else
    match kind with
    | `Proc -> proc_target ()
    | `Net -> net_target ()
    | `Native -> Dmll.Native
    | `Seq -> Dmll.Sequential
  | `Multicore -> Dmll.Multicore 4
  | `Numa ->
      Dmll.Numa
        { Dmll_runtime.Sim_numa.machine = Dmll_machine.Machine.stanford_numa;
          threads = 48;
          mode = Dmll_runtime.Sim_numa.Numa_aware;
        }
  | `Gpu -> Dmll.Gpu { Dmll_runtime.Sim_gpu.transpose = true; row_to_column = true }
  | `Cluster ->
      Dmll.Cluster
        { Dmll_runtime.Sim_cluster.default_config with
          cluster = cluster_machine ?nodes ();
        }

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

(** Flush the observability sinks the config armed: write the Chrome
    trace to [cfg.trace_file] and print the self-time profile when
    [cfg.profile] was requested. *)
let emit_observability (cfg : Config.t) : unit =
  match cfg.Config.tracer with
  | None -> ()
  | Some tr ->
      (match cfg.Config.trace_file with
      | Some file ->
          Span.write_chrome tr file;
          Printf.printf "trace: %d spans -> %s\n%!" (Span.span_count tr) file
      | None -> ());
      if cfg.Config.profile then print_string (Span.profile_to_string tr)

(** Print the run's metrics ledger, one line, when it counted anything. *)
let print_metrics (m : Metrics.t) : unit =
  if not (Metrics.is_empty m) then
    Printf.printf "metrics: %s\n" (Metrics.to_string m)

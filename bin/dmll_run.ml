(* dmll_run: compile and execute a benchmark application on a chosen
   target, reporting the (real or simulated) execution time. *)

module V = Dmll_interp.Value

type prepared = { program : Dmll_ir.Exp.exp; inputs : (string * V.t) list }

let prepare (app : string) ~(scale : int) : prepared =
  match app with
  | "kmeans" ->
      let rows = 2000 * scale and cols = 16 and k = 8 in
      let d = Dmll_data.Gaussian.generate ~rows ~cols ~classes:k () in
      let c = Dmll_data.Gaussian.random_centroids ~k d in
      { program = Dmll_apps.Kmeans.program ~rows ~cols ~k ();
        inputs = Dmll_apps.Kmeans.inputs d ~centroids:c;
      }
  | "logreg" ->
      let rows = 2000 * scale and cols = 16 in
      let d = Dmll_data.Gaussian.generate ~rows ~cols ~classes:2 () in
      { program = Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 ();
        inputs = Dmll_apps.Logreg.inputs d ~theta:(Array.make cols 0.1);
      }
  | "gda" ->
      let rows = 2000 * scale and cols = 12 in
      let d = Dmll_data.Gaussian.generate ~rows ~cols ~classes:2 () in
      { program = Dmll_apps.Gda.program ~rows ~cols (); inputs = Dmll_apps.Gda.inputs d }
  | "tpch_q1" ->
      let t = Dmll_data.Tpch.generate ~rows:(20000 * scale) () in
      { program = Dmll_apps.Tpch_q1.program ();
        inputs = Dmll_apps.Tpch_q1.aos_inputs t @ Dmll_apps.Tpch_q1.soa_inputs t;
      }
  | "gene" ->
      let r = Dmll_data.Genes.generate ~reads:(20000 * scale) ~barcodes:500 () in
      { program = Dmll_apps.Gene.program ();
        inputs = Dmll_apps.Gene.aos_inputs r @ Dmll_apps.Gene.soa_inputs r;
      }
  | "pagerank" ->
      let g =
        Dmll_graph.Csr.of_edges
          (Dmll_data.Rmat.generate ~scale:(10 + scale) ~edge_factor:8 ())
      in
      { program = Dmll_apps.Pagerank.program_pull ~nv:g.Dmll_graph.Csr.nv ();
        inputs = Dmll_apps.Pagerank.inputs g ~ranks:(Dmll_apps.Pagerank.initial_ranks g);
      }
  | "tricount" ->
      let g =
        Dmll_graph.Csr.of_edges
          (Dmll_data.Rmat.symmetrize
             (Dmll_data.Rmat.generate ~scale:(8 + scale) ~edge_factor:4 ()))
      in
      { program = Dmll_apps.Tricount.program (); inputs = Dmll_apps.Tricount.inputs g }
  | "gibbs" ->
      let vars = 5000 * scale in
      let g = Dmll_data.Factor_graph.generate ~vars ~factors:(3 * vars) () in
      { program = Dmll_apps.Gibbs.program ~nvars:vars ~replicas:4 ();
        inputs =
          Dmll_apps.Gibbs.inputs g
            ~state:(Dmll_data.Factor_graph.initial_state g)
            ~rand:(Dmll_data.Factor_graph.sweep_randoms ~sweeps:4 g);
      }
  | other ->
      Printf.eprintf "unknown app %S\n" other;
      exit 1

open Cmdliner
module Config = Dmll.Config

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP"
         ~doc:"kmeans, logreg, gda, tpch_q1, gene, pagerank, tricount, or gibbs")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Dataset scale multiplier.")

let main app target nodes procs workers listen token scale faults
    checkpoint_every mem_budget debug trace profile =
  let { program; inputs } = prepare app ~scale in
  let cfg =
    Common_cli.config ~debug ?faults ~checkpoint_every ?mem_budget ?trace
      ~profile ()
  in
  let target =
    Common_cli.target_of ?nodes ?procs ?workers ?listen ?token target
  in
  let cfg = Config.with_target target cfg in
  (match (cfg.Config.faults, target) with
  | Some _, (Dmll.Sequential | Dmll.Numa _ | Dmll.Gpu _) ->
      Printf.eprintf
        "note: --faults only affects the multicore, cluster, proc, and \
         net targets\n%!"
  | _ -> ());
  (if cfg.Config.checkpoint_every > 0 then
     match target with
     | Dmll.Sequential | Dmll.Numa _ | Dmll.Gpu _ | Dmll.Net_cluster _ ->
         Printf.eprintf
           "note: --checkpoint-every only affects the multicore, cluster, \
            and proc targets\n%!"
     | _ -> ());
  let c = Dmll.compile_with cfg program in
  Printf.printf "optimizations: %s\n%!"
    (String.concat ", " (Dmll.optimizations c));
  let r = Dmll.execute cfg c ~inputs in
  (match cfg.Config.faults with
  | Some f ->
      Printf.printf "faults: %s\n" (Dmll_runtime.Fault.stats_to_string f)
  | None -> ());
  Common_cli.print_metrics r.Dmll.metrics;
  let kind = if r.Dmll.wall_clock then "wall-clock" else "simulated" in
  Printf.printf "%s time: %s\n" kind (Dmll_util.Table.fmt_time r.Dmll.seconds);
  Printf.printf "result: %s\n%!"
    (let s = V.to_string r.Dmll.value in
     if String.length s > 200 then String.sub s 0 200 ^ "..." else s);
  Common_cli.emit_observability cfg

let cmd =
  let doc = "compile and run a DMLL benchmark application" in
  Cmd.v (Cmd.info "dmll_run" ~doc)
    Term.(
      const main $ app_arg $ Common_cli.target_arg $ Common_cli.nodes_arg
      $ Common_cli.procs_arg $ Common_cli.workers_arg $ Common_cli.listen_arg
      $ Common_cli.token_arg $ scale_arg $ Common_cli.faults_arg
      $ Common_cli.checkpoint_arg
      $ Common_cli.mem_budget_arg $ Common_cli.debug_arg
      $ Common_cli.trace_arg $ Common_cli.profile_arg)

let () = exit (Cmd.eval cmd)

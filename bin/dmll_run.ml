(* dmll_run: compile and execute a benchmark application on a chosen
   target, reporting the (real or simulated) execution time. *)

module V = Dmll_interp.Value

type prepared = { program : Dmll_ir.Exp.exp; inputs : (string * V.t) list }

let prepare (app : string) ~(scale : int) : prepared =
  match app with
  | "kmeans" ->
      let rows = 2000 * scale and cols = 16 and k = 8 in
      let d = Dmll_data.Gaussian.generate ~rows ~cols ~classes:k () in
      let c = Dmll_data.Gaussian.random_centroids ~k d in
      { program = Dmll_apps.Kmeans.program ~rows ~cols ~k ();
        inputs = Dmll_apps.Kmeans.inputs d ~centroids:c;
      }
  | "logreg" ->
      let rows = 2000 * scale and cols = 16 in
      let d = Dmll_data.Gaussian.generate ~rows ~cols ~classes:2 () in
      { program = Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 ();
        inputs = Dmll_apps.Logreg.inputs d ~theta:(Array.make cols 0.1);
      }
  | "gda" ->
      let rows = 2000 * scale and cols = 12 in
      let d = Dmll_data.Gaussian.generate ~rows ~cols ~classes:2 () in
      { program = Dmll_apps.Gda.program ~rows ~cols (); inputs = Dmll_apps.Gda.inputs d }
  | "tpch_q1" ->
      let t = Dmll_data.Tpch.generate ~rows:(20000 * scale) () in
      { program = Dmll_apps.Tpch_q1.program ();
        inputs = Dmll_apps.Tpch_q1.aos_inputs t @ Dmll_apps.Tpch_q1.soa_inputs t;
      }
  | "gene" ->
      let r = Dmll_data.Genes.generate ~reads:(20000 * scale) ~barcodes:500 () in
      { program = Dmll_apps.Gene.program ();
        inputs = Dmll_apps.Gene.aos_inputs r @ Dmll_apps.Gene.soa_inputs r;
      }
  | "pagerank" ->
      let g =
        Dmll_graph.Csr.of_edges
          (Dmll_data.Rmat.generate ~scale:(10 + scale) ~edge_factor:8 ())
      in
      { program = Dmll_apps.Pagerank.program_pull ~nv:g.Dmll_graph.Csr.nv ();
        inputs = Dmll_apps.Pagerank.inputs g ~ranks:(Dmll_apps.Pagerank.initial_ranks g);
      }
  | "tricount" ->
      let g =
        Dmll_graph.Csr.of_edges
          (Dmll_data.Rmat.symmetrize
             (Dmll_data.Rmat.generate ~scale:(8 + scale) ~edge_factor:4 ()))
      in
      { program = Dmll_apps.Tricount.program (); inputs = Dmll_apps.Tricount.inputs g }
  | "gibbs" ->
      let vars = 5000 * scale in
      let g = Dmll_data.Factor_graph.generate ~vars ~factors:(3 * vars) () in
      { program = Dmll_apps.Gibbs.program ~nvars:vars ~replicas:4 ();
        inputs =
          Dmll_apps.Gibbs.inputs g
            ~state:(Dmll_data.Factor_graph.initial_state g)
            ~rand:(Dmll_data.Factor_graph.sweep_randoms ~sweeps:4 g);
      }
  | other ->
      Printf.eprintf "unknown app %S\n" other;
      exit 1

open Cmdliner

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP"
         ~doc:"kmeans, logreg, gda, tpch_q1, gene, pagerank, tricount, or gibbs")

let target_arg =
  Arg.(
    value
    & opt (enum [ ("seq", `Seq); ("multicore", `Multicore); ("numa", `Numa);
                  ("gpu", `Gpu); ("cluster", `Cluster) ]) `Seq
    & info [ "t"; "target" ] ~docv:"TARGET" ~doc:"Execution target.")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Dataset scale multiplier.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ]
        ~env:(Cmd.Env.info "DMLL_FAULTS")
        ~docv:"SPEC"
        ~doc:
          "Inject deterministic faults and recover from them (multicore and \
           cluster targets).  SPEC is comma-separated key=value pairs, e.g. \
           $(b,seed=42,crash=0.05,straggler=0.1,join=0.2,leave=0.1); keys: \
           seed, crash, transient, straggler, slow, drop, delay, delay_us, \
           retries, backoff_us, heartbeat_ms, join, leave, spares.  An \
           unknown key is rejected with the list of valid keys.  Results \
           are identical to the fault-free run.")

let checkpoint_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Snapshot the spine bindings every $(docv) outer loops \
           (checksummed; 0 disables).  On a crash the runtime prices \
           restore-from-checkpoint against lineage replay and takes the \
           cheaper path (multicore and cluster targets).")

let mem_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "mem-budget" ] ~docv:"GB"
        ~doc:
          "Per-node memory budget in GB (cluster target).  Defaults to \
           the machine model's per-node memory.  Loops whose resident set \
           exceeds the budget spill to disk and see remote-read \
           backpressure — the clock slows, the values never change.")

let main app target scale faults checkpoint_every mem_budget =
  let { program; inputs } = prepare app ~scale in
  let injector =
    match faults with
    | None -> None
    | Some s -> (
        match Dmll_runtime.Fault.parse s with
        | Ok spec -> Some (Dmll_runtime.Fault.create spec)
        | Error msg ->
            Printf.eprintf "bad --faults spec: %s\n" msg;
            exit 2)
  in
  let store =
    if checkpoint_every > 0 then
      Some (Dmll_runtime.Checkpoint.create ~cadence:checkpoint_every)
    else None
  in
  let target =
    match target with
    | `Seq -> Dmll.Sequential
    | `Multicore -> Dmll.Multicore 4
    | `Numa ->
        Dmll.Numa
          { Dmll_runtime.Sim_numa.machine = Dmll_machine.Machine.stanford_numa;
            threads = 48;
            mode = Dmll_runtime.Sim_numa.Numa_aware;
          }
    | `Gpu -> Dmll.Gpu { Dmll_runtime.Sim_gpu.transpose = true; row_to_column = true }
    | `Cluster ->
        Dmll.Cluster
          { Dmll_runtime.Sim_cluster.default_config with
            faults = injector;
            checkpoint_cadence = checkpoint_every;
            mem_budget_gb = mem_budget;
          }
  in
  (match (injector, target) with
  | Some _, (Dmll.Sequential | Dmll.Numa _ | Dmll.Gpu _) ->
      Printf.eprintf
        "note: --faults only affects the multicore and cluster targets\n%!"
  | _ -> ());
  (match (store, target) with
  | Some _, (Dmll.Sequential | Dmll.Numa _ | Dmll.Gpu _) ->
      Printf.eprintf
        "note: --checkpoint-every only affects the multicore and cluster \
         targets\n%!"
  | _ -> ());
  let c = Dmll.compile ~target program in
  Printf.printf "optimizations: %s\n%!"
    (String.concat ", " (Dmll.optimizations c));
  let value, seconds =
    (* the Multicore target takes the injector and the checkpoint store at
       run time (real retry/backoff and lineage recovery on OCaml domains) *)
    match (target, injector) with
    | Dmll.Multicore domains, Some f ->
        Dmll_util.Timing.time (fun () ->
            Dmll_runtime.Exec_domains.run ~domains ~faults:f ?checkpoint:store
              ~inputs c.Dmll.final)
    | Dmll.Multicore domains, None when store <> None ->
        Dmll_util.Timing.time (fun () ->
            Dmll_runtime.Exec_domains.run ~domains ?checkpoint:store ~inputs
              c.Dmll.final)
    | _ -> Dmll.timed_run c ~inputs
  in
  (match injector with
  | Some f ->
      Printf.printf "faults: %s\n" (Dmll_runtime.Fault.stats_to_string f)
  | None -> ());
  (match store with
  | Some s when Dmll_runtime.Checkpoint.taken s > 0 ->
      Printf.printf "checkpoints: %d taken, %.0f bytes written%s\n"
        (Dmll_runtime.Checkpoint.taken s)
        (Dmll_runtime.Checkpoint.written_bytes s)
        (match Dmll_runtime.Checkpoint.decisions s with
        | [] -> ""
        | ds ->
            Printf.sprintf "; recovery decisions: %s"
              (String.concat ", "
                 (List.map
                    (fun (d : Dmll_runtime.Checkpoint.decision) ->
                      Printf.sprintf "loop %d -> %s"
                        d.Dmll_runtime.Checkpoint.decided_at_loop
                        (Dmll_runtime.Checkpoint.choice_to_string
                           d.Dmll_runtime.Checkpoint.chosen))
                    ds)))
  | _ -> ());
  let kind =
    match target with
    | Dmll.Sequential | Dmll.Multicore _ -> "wall-clock"
    | _ -> "simulated"
  in
  Printf.printf "%s time: %s\n" kind (Dmll_util.Table.fmt_time seconds);
  Printf.printf "result: %s\n"
    (let s = V.to_string value in
     if String.length s > 200 then String.sub s 0 200 ^ "..." else s)

let cmd =
  let doc = "compile and run a DMLL benchmark application" in
  Cmd.v (Cmd.info "dmll_run" ~doc)
    Term.(
      const main $ app_arg $ target_arg $ scale_arg $ faults_arg
      $ checkpoint_arg $ mem_budget_arg)

let () = exit (Cmd.eval cmd)

(* dmllc: the DMLL compiler explorer.

   Shows what the compiler does to a named application, stage by stage —
   the tooling equivalent of the paper's walk through k-means (Figures
   1/4/5): source IR, optimized IR, partitioning layouts and stencils,
   applied rules, and (optionally) generated C++/CUDA/Scala. *)

let apps : (string * (unit -> Dmll_ir.Exp.exp)) list =
  [ ("kmeans", fun () -> Dmll_apps.Kmeans.program ~rows:1000 ~cols:16 ~k:8 ());
    ("logreg", fun () -> Dmll_apps.Logreg.program ~rows:1000 ~cols:16 ~alpha:0.01 ());
    ("gda", fun () -> Dmll_apps.Gda.program ~rows:1000 ~cols:8 ());
    ("tpch_q1", fun () -> Dmll_apps.Tpch_q1.program ());
    ("gene", fun () -> Dmll_apps.Gene.program ());
    ("pagerank_pull", fun () -> Dmll_apps.Pagerank.program_pull ~nv:1024 ());
    ("pagerank_push", fun () -> Dmll_apps.Pagerank.program_push ~nv:1024 ());
    ("tricount", fun () -> Dmll_apps.Tricount.program ());
    ("knn", fun () -> Dmll_apps.Knn.program ~train_rows:1000 ~test_rows:100 ~cols:8 ());
    ("naive_bayes", fun () -> Dmll_apps.Naive_bayes.program ~rows:1000 ~cols:8 ());
    ("gibbs", fun () -> Dmll_apps.Gibbs.program ~nvars:1000 ~replicas:4 ());
    ("ridge", fun () -> Dmll_apps.Ridge.program ~rows:1000 ~cols:16 ~alpha:0.001 ~lambda:0.1 ());
  ]

open Cmdliner

let app_arg =
  let doc =
    Printf.sprintf "Application to compile. One of: %s; or $(b,all) (with --lint)."
      (String.concat ", " (List.map fst apps))
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the parallel-safety verifier over the fully optimized program \
           and print its diagnostics (rule ids are documented in DESIGN.md \
           §8). Exits 1 when any Error-severity finding is reported. With APP \
           = $(b,all), lints every registered application.")

let show_source =
  Arg.(value & flag & info [ "source" ] ~doc:"Print the source (staged) IR.")

let show_codegen =
  Arg.(
    value
    & opt (some (enum [ ("cpp", `Cpp); ("cuda", `Cuda); ("scala", `Scala) ])) None
    & info [ "emit" ] ~docv:"LANG" ~doc:"Emit generated code (cpp, cuda, or scala).")

let gpu =
  Arg.(value & flag & info [ "gpu" ] ~doc:"Lower for GPU (Row-to-Column + transpose).")

let header title = Printf.printf "\n=== %s ===\n" title

(* Compile one app and print its lint report; returns true when any
   Error-severity diagnostic was produced. *)
let lint_one target (name, build) =
  let c = Dmll.compile ~target (build ()) in
  let diags = Dmll.lint c in
  header (Printf.sprintf "lint: %s" name);
  if diags = [] then print_endline "  no findings";
  List.iter (fun d -> Fmt.pr "  @[<v>%a@]@." Dmll_analysis.Diag.pp_full d) diags;
  Dmll_analysis.Diag.has_errors diags

let run_lint target app =
  let selected =
    if String.equal app "all" then Some apps
    else Option.map (fun b -> [ (app, b) ]) (List.assoc_opt app apps)
  in
  match selected with
  | None ->
      Printf.eprintf "unknown app %S; try one of: %s, all\n" app
        (String.concat ", " (List.map fst apps));
      exit 1
  | Some selected ->
      let any_error =
        List.fold_left (fun acc ab -> lint_one target ab || acc) false selected
      in
      if any_error then exit 1

let main app show_src emit gpu lint =
  let target_of_gpu gpu =
    if gpu then
      Dmll.Gpu { Dmll_runtime.Sim_gpu.transpose = true; row_to_column = true }
    else Dmll.Sequential
  in
  if lint then run_lint (target_of_gpu gpu) app
  else
  match List.assoc_opt app apps with
  | None ->
      Printf.eprintf "unknown app %S; try one of: %s\n" app
        (String.concat ", " (List.map fst apps));
      exit 1
  | Some build ->
      let source = build () in
      let target = target_of_gpu gpu in
      let c = Dmll.compile ~target source in
      if show_src then begin
        header "Source IR";
        print_endline (Dmll_ir.Pp.to_string c.Dmll.source)
      end;
      header "Optimizations applied";
      List.iter (fun n -> Printf.printf "  - %s\n" n) (Dmll.optimizations c);
      header "Partitioning";
      List.iter
        (fun (t, l) ->
          Printf.printf "  %-24s %s\n"
            (Dmll_analysis.Stencil.target_to_string t)
            (match l with Dmll_ir.Exp.Partitioned -> "Partitioned" | _ -> "Local"))
        c.Dmll.partition.Dmll_analysis.Partition.layouts;
      header "Global read stencils";
      List.iter
        (fun (t, s) ->
          Printf.printf "  %-24s %s\n"
            (Dmll_analysis.Stencil.target_to_string t)
            (Dmll_analysis.Stencil.to_string s))
        c.Dmll.partition.Dmll_analysis.Partition.stencils;
      (match Dmll.warnings c with
      | [] -> ()
      | ws ->
          header "Warnings";
          List.iter (fun w -> Printf.printf "  ! %s\n" w) ws);
      header "Final IR";
      print_endline (Dmll_ir.Pp.to_string c.Dmll.final);
      (match emit with
      | Some lang ->
          header "Generated code";
          print_endline (Dmll.codegen lang c)
      | None -> ())

let cmd =
  let doc = "explore the DMLL compilation pipeline for a benchmark application" in
  Cmd.v
    (Cmd.info "dmllc" ~doc)
    Term.(const main $ app_arg $ show_source $ show_codegen $ gpu $ lint)

let () = exit (Cmd.eval cmd)

(* dmllc: the DMLL compiler explorer.

   Shows what the compiler does to a named application, stage by stage —
   the tooling equivalent of the paper's walk through k-means (Figures
   1/4/5): source IR, optimized IR, partitioning layouts and stencils,
   applied rules, and (optionally) generated C++/CUDA/Scala.

   --explain-comm adds the static communication-volume analysis
   (DESIGN.md §10): per-loop comm plans, per-collection totals, and the
   cost-guided rewrite decisions with every rejected alternative. *)

module Comm = Dmll_analysis.Comm
module Mem = Dmll_analysis.Mem
module Partition = Dmll_analysis.Partition
module Plan = Dmll_analysis.Plan
module M = Dmll_machine.Machine

(* Each app registers its builder plus the element counts of its named
   inputs (matching the builder's dimensions), so the static comm plans
   resolve against real sizes instead of the default length. *)
let apps : (string * (unit -> Dmll_ir.Exp.exp) * (string * int) list) list =
  [ ( "kmeans",
      (fun () -> Dmll_apps.Kmeans.program ~rows:1000 ~cols:16 ~k:8 ()),
      [ ("matrix", 16000); ("clusters", 128) ] );
    ( "kmeans_tiny",
      (* small enough that accepting remote reads beats every rewrite's
         gather volume: the cost-guided search keeps the program *)
      (fun () -> Dmll_apps.Kmeans.program ~rows:64 ~cols:4 ~k:4 ()),
      [ ("matrix", 256); ("clusters", 16) ] );
    ( "kmeans_iter",
      (* three unrolled Lloyd iterations: each intermediate centroid set
         dies as soon as the next one is computed — the early-free
         showcase (--explain-mem shows the peak with and without it) *)
      (fun () ->
        Dmll_apps.Kmeans.program_iterated ~rows:1000 ~cols:16 ~k:8 ~iters:4 ()),
      [ ("matrix", 16000); ("clusters", 128) ] );
    ( "logreg",
      (fun () -> Dmll_apps.Logreg.program ~rows:1000 ~cols:16 ~alpha:0.01 ()),
      [ ("matrix", 16000); ("y", 1000); ("theta", 16) ] );
    ( "logreg_iter",
      (fun () ->
        Dmll_apps.Logreg.program_iterated ~rows:1000 ~cols:16 ~alpha:0.01
          ~iters:4 ()),
      [ ("matrix", 16000); ("y", 1000); ("theta", 16) ] );
    ( "gda",
      (fun () -> Dmll_apps.Gda.program ~rows:1000 ~cols:8 ()),
      [ ("matrix", 8000); ("y", 1000) ] );
    ("tpch_q1", (fun () -> Dmll_apps.Tpch_q1.program ()), []);
    ("gene", (fun () -> Dmll_apps.Gene.program ()), []);
    ( "pagerank_pull",
      (fun () -> Dmll_apps.Pagerank.program_pull ~nv:1024 ()),
      [ ("ranks", 1024); ("g.in_offsets", 1025); ("g.out_deg", 1024) ] );
    ( "pagerank_iter",
      (fun () -> Dmll_apps.Pagerank.program_pull_iterated ~nv:1024 ~iters:4 ()),
      [ ("ranks", 1024); ("g.in_offsets", 1025); ("g.out_deg", 1024) ] );
    ( "pagerank_push",
      (fun () -> Dmll_apps.Pagerank.program_push ~nv:1024 ()),
      [ ("ranks", 1024); ("g.out_deg", 1024) ] );
    ("tricount", (fun () -> Dmll_apps.Tricount.program ()), []);
    ( "knn",
      (fun () ->
        Dmll_apps.Knn.program ~train_rows:1000 ~test_rows:100 ~cols:8 ()),
      [ ("train", 8000); ("test", 800) ] );
    ( "naive_bayes",
      (fun () -> Dmll_apps.Naive_bayes.program ~rows:1000 ~cols:8 ()),
      [ ("matrix", 8000); ("labels", 1000) ] );
    ( "gibbs",
      (fun () -> Dmll_apps.Gibbs.program ~nvars:1000 ~replicas:4 ()),
      [] );
    ( "ridge",
      (fun () ->
        Dmll_apps.Ridge.program ~rows:1000 ~cols:16 ~alpha:0.001 ~lambda:0.1 ()),
      [ ("matrix", 16000); ("y", 1000); ("theta", 16) ] );
  ]

let app_names = List.map (fun (n, _, _) -> n) apps
let find_app name = List.find_opt (fun (n, _, _) -> String.equal n name) apps

open Cmdliner
module Config = Dmll.Config

let app_arg =
  let doc =
    Printf.sprintf
      "Application to compile. One of: %s; or $(b,all) (with --lint or \
       --explain).  Optional for $(b,--explain backends)."
      (String.concat ", " app_names)
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the parallel-safety verifier over the fully optimized program \
           and print its diagnostics (rule ids are documented in DESIGN.md \
           §8). Exits 1 when any Error-severity finding is reported. With APP \
           = $(b,all), lints every registered application.")

let explain_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [ ("comm", `Comm); ("mem", `Mem); ("plan", `Plan);
                ("backends", `Backends) ]))
        None
    & info [ "explain" ] ~docv:"WHAT"
        ~doc:
          "Print a compiler analysis instead of the compilation walkthrough.  \
           $(b,comm): the static communication-volume analysis (DESIGN.md \
           §10) — cost-guided rewrite decisions (chosen vs rejected, with \
           predicted bytes), each outer loop's comm plan, and \
           per-collection totals.  $(b,mem): the static memory-footprint & \
           liveness analysis (DESIGN.md §13) — liveness windows, resident \
           sets, the symbolic peak with and without early-free, and the \
           admission decision.  $(b,plan): the global plan-space analysis \
           (DESIGN.md §15) — joint rewrite/fusion/partition configurations, \
           ILP solver statistics, and the chosen plan vs the greedy \
           baseline.  $(b,backends): the backend registry (DESIGN.md §17) — \
           every registered execution backend with its capabilities (no APP \
           needed).  With APP = $(b,all), explains every registered \
           application.  Composes with $(b,--json) and $(b,--nodes).")

(* Historical spellings, kept as deprecated aliases of --explain. *)
let explain_comm =
  Arg.(
    value & flag
    & info [ "explain-comm" ] ~deprecated:"use --explain comm"
        ~doc:"Alias of $(b,--explain comm).")

let explain_plan =
  Arg.(
    value & flag
    & info [ "explain-plan" ] ~deprecated:"use --explain plan"
        ~doc:"Alias of $(b,--explain plan).")

let explain_mem =
  Arg.(
    value & flag
    & info [ "explain-mem" ] ~deprecated:"use --explain mem"
        ~doc:"Alias of $(b,--explain mem).")

let json =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"With --explain, emit machine-readable JSON (one object per \
              application; one registry object for backends).")

let show_source =
  Arg.(value & flag & info [ "source" ] ~doc:"Print the source (staged) IR.")

let show_codegen =
  Arg.(
    value
    & opt (some (enum [ ("cpp", `Cpp); ("cuda", `Cuda); ("scala", `Scala) ])) None
    & info [ "emit" ] ~docv:"LANG" ~doc:"Emit generated code (cpp, cuda, or scala).")

let gpu =
  Arg.(value & flag & info [ "gpu" ] ~doc:"Lower for GPU (Row-to-Column + transpose).")

let header title = Printf.printf "\n=== %s ===\n" title

let select_apps ~flag app =
  let selected =
    if String.equal app "all" then Some apps
    else Option.map (fun a -> [ a ]) (find_app app)
  in
  match selected with
  | Some sel -> sel
  | None ->
      Printf.eprintf "unknown app %S; try one of: %s%s\n" app
        (String.concat ", " app_names)
        (if flag then ", all" else "");
      exit 1

(* Compile one app and print its lint report; returns true when any
   Error-severity diagnostic was produced. *)
let lint_one cfg (name, build, _) =
  let c = Dmll.compile_with cfg (build ()) in
  let diags = Dmll.lint c in
  header (Printf.sprintf "lint: %s" name);
  if diags = [] then print_endline "  no findings";
  List.iter (fun d -> Fmt.pr "  @[<v>%a@]@." Dmll_analysis.Diag.pp_full d) diags;
  Dmll_analysis.Diag.has_errors diags

let run_lint cfg app =
  let selected = select_apps ~flag:true app in
  let any_error =
    List.fold_left (fun acc ab -> lint_one cfg ab || acc) false selected
  in
  if any_error then exit 1

(* ---------------- --explain-comm ---------------- *)

(* Run the cost-guided partitioning analysis on the generically optimized
   program — crucially WITHOUT the CPU nested rules, so the Figure-3
   rewrites are chosen (or rejected) here, by predicted volume, and every
   alternative shows up in the decision log. *)
let explain_one ~json:as_json ~machine (name, build, input_lens) =
  let source = build () in
  let generic =
    (Dmll_opt.Pipeline.optimize_with ~extra_rules:[] source)
      .Dmll_opt.Pipeline.program
  in
  let report =
    Partition.analyze ~transforms:Dmll_opt.Rules_nested.cpu_rules ~machine
      ~input_lens generic
  in
  let layout_of t = Partition.layout_of t report.Partition.layouts in
  let summary =
    Comm.summarize ~input_lens ~machine ~layout_of report.Partition.program
  in
  if as_json then
    print_endline
      (Partition.explain_to_json ~app:name
         ~decisions:report.Partition.decisions summary)
  else begin
    header (Printf.sprintf "comm: %s (%d nodes)" name machine.M.nodes);
    (match report.Partition.decisions with
    | [] -> print_endline "  no stencil-triggered rewrite was applicable"
    | ds ->
        print_endline "  cost-guided rewrite decisions:";
        List.iter
          (fun (d : Partition.decision) ->
            Printf.printf "    iteration %d:\n" d.Partition.iteration;
            List.iter
              (fun (n, v) ->
                Printf.printf "      %-28s %-10s%s\n" n (Comm.fmt_bytes v)
                  (if String.equal n d.Partition.chosen then "<- chosen" else ""))
              d.Partition.candidates)
          ds);
    Fmt.pr "%a" Comm.pp_summary summary
  end

let run_explain ~json ~nodes app =
  let machine = Common_cli.cluster_machine ?nodes () in
  List.iter (explain_one ~json ~machine) (select_apps ~flag:true app)

(* ---------------- --explain-plan ---------------- *)

(* Generic optimization with horizontal fusion deferred, so the plan
   analysis owns the fusion decision jointly with the Figure-3 rewrites
   and partition-layout demotions — the same compilation split the
   cluster driver uses under [Config.plan_selector = Ilp]. *)
let explain_plan_one ~json:as_json ~machine (name, build, input_lens) =
  let source = build () in
  let generic =
    (Dmll_opt.Pipeline.optimize_with ~extra_rules:[] ~horizontal_fusion:false
       source)
      .Dmll_opt.Pipeline.program
  in
  let r =
    Plan.analyze ~transforms:Dmll_opt.Rules_nested.cpu_rules ~machine
      ~input_lens generic
  in
  if as_json then print_endline (Plan.explain_to_json ~app:name r.Plan.explain)
  else begin
    header (Printf.sprintf "plan: %s (%d nodes)" name machine.M.nodes);
    Fmt.pr "%a" Plan.pp_explain r.Plan.explain
  end

let run_explain_plan ~json ~nodes app =
  let machine = Common_cli.cluster_machine ?nodes () in
  List.iter (explain_plan_one ~json ~machine) (select_apps ~flag:true app)

(* ---------------- --explain-mem ---------------- *)

(* Same compilation path as --explain-comm (generic optimize without the
   CPU nested rules, then the cost-guided partitioning analysis), plus
   the early-free pass — the summary shows the peak both with and
   without it, so the liveness payoff is visible per app. *)
let explain_mem_one ~json:as_json ~machine (name, build, input_lens) =
  let source = build () in
  let generic =
    (Dmll_opt.Pipeline.optimize_with ~extra_rules:[] source)
      .Dmll_opt.Pipeline.program
  in
  let report =
    Partition.analyze ~transforms:Dmll_opt.Rules_nested.cpu_rules ~machine
      ~input_lens generic
  in
  let layout_of t = Partition.layout_of t report.Partition.layouts in
  let base = report.Partition.program in
  let fr = Dmll_opt.Free_insertion.run base in
  let summary =
    Mem.summarize ~input_lens ~machine ~layout_of
      fr.Dmll_opt.Free_insertion.program
  in
  let peak_no_free = Mem.static_peak ~input_lens ~machine ~layout_of base in
  let admission = Mem.admit summary in
  if as_json then
    print_endline (Mem.summary_to_json ~app:name ~admission ~peak_no_free summary)
  else begin
    header (Printf.sprintf "mem: %s (%d nodes)" name machine.M.nodes);
    (match fr.Dmll_opt.Free_insertion.freed with
    | [] -> print_endline "  early-free: nothing to free"
    | syms ->
        Printf.printf "  early-free: %s\n"
          (String.concat ", " (List.map Dmll_ir.Sym.to_string syms)));
    Fmt.pr "%a" Mem.pp_summary summary;
    Printf.printf "  peak without early-free: %s\n"
      (Comm.fmt_bytes peak_no_free);
    Printf.printf "  admission: %s\n" (Mem.admission_to_string admission)
  end

let run_explain_mem ~json ~nodes app =
  let machine = Common_cli.cluster_machine ?nodes () in
  List.iter (explain_mem_one ~json ~machine) (select_apps ~flag:true app)

(* ---------------- --explain backends ---------------- *)

let run_explain_backends ~json =
  Dmll.Backends.ensure_registered ();
  if json then print_endline (Dmll_backend.Registry.to_json ())
  else begin
    header "backends";
    print_string (Dmll_backend.Registry.describe_table ())
  end

let main app show_src emit gpu lint explain explain_comm explain_plan
    explain_mem json nodes debug trace profile =
  let explain =
    match explain with
    | Some _ -> explain
    | None when explain_comm -> Some `Comm
    | None when explain_plan -> Some `Plan
    | None when explain_mem -> Some `Mem
    | None -> None
  in
  let require_app () =
    match app with
    | Some a -> a
    | None ->
        Printf.eprintf "dmllc: an APP argument is required; one of: %s, all\n"
          (String.concat ", " app_names);
        exit 1
  in
  let target =
    if gpu then
      Dmll.Gpu { Dmll_runtime.Sim_gpu.transpose = true; row_to_column = true }
    else Dmll.Sequential
  in
  let cfg =
    Config.with_target target (Common_cli.config ~debug ?trace ~profile ())
  in
  match explain with
  | Some `Backends -> run_explain_backends ~json
  | Some `Comm -> run_explain ~json ~nodes (require_app ())
  | Some `Plan -> run_explain_plan ~json ~nodes (require_app ())
  | Some `Mem -> run_explain_mem ~json ~nodes (require_app ())
  | None ->
  if lint then run_lint cfg (require_app ())
  else begin
  let app = require_app () in
  (match find_app app with
  | None ->
      Printf.eprintf "unknown app %S; try one of: %s\n" app
        (String.concat ", " app_names);
      exit 1
  | Some (_, build, _) ->
      let source = build () in
      let c = Dmll.compile_with cfg source in
      if show_src then begin
        header "Source IR";
        print_endline (Dmll_ir.Pp.to_string c.Dmll.source)
      end;
      header "Optimizations applied";
      List.iter (fun n -> Printf.printf "  - %s\n" n) (Dmll.optimizations c);
      header "Partitioning";
      List.iter
        (fun (t, l) ->
          Printf.printf "  %-24s %s\n"
            (Dmll_analysis.Stencil.target_to_string t)
            (match l with Dmll_ir.Exp.Partitioned -> "Partitioned" | _ -> "Local"))
        c.Dmll.partition.Dmll_analysis.Partition.layouts;
      header "Global read stencils";
      List.iter
        (fun (t, s) ->
          Printf.printf "  %-24s %s\n"
            (Dmll_analysis.Stencil.target_to_string t)
            (Dmll_analysis.Stencil.to_string s))
        c.Dmll.partition.Dmll_analysis.Partition.stencils;
      (match Dmll.warnings c with
      | [] -> ()
      | ws ->
          header "Warnings";
          List.iter (fun w -> Printf.printf "  ! %s\n" w) ws);
      header "Final IR";
      print_endline (Dmll_ir.Pp.to_string c.Dmll.final);
      (match emit with
      | Some lang ->
          header "Generated code";
          print_endline (Dmll.codegen lang c)
      | None -> ()));
  Common_cli.emit_observability cfg
  end

let cmd =
  let doc = "explore the DMLL compilation pipeline for a benchmark application" in
  Cmd.v
    (Cmd.info "dmllc" ~doc)
    Term.(
      const main $ app_arg $ show_source $ show_codegen $ gpu $ lint
      $ explain_arg $ explain_comm $ explain_plan $ explain_mem $ json
      $ Common_cli.nodes_arg $ Common_cli.debug_arg $ Common_cli.trace_arg
      $ Common_cli.profile_arg)

let () = exit (Cmd.eval cmd)

lib/data/genes.ml: Array Dmll_interp Dmll_util Stdlib

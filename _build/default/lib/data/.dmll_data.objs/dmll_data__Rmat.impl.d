lib/data/rmat.ml: Array Dmll_util

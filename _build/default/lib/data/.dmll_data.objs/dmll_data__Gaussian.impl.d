lib/data/gaussian.ml: Array Dmll_interp Dmll_util

lib/data/factor_graph.ml: Array Dmll_interp Dmll_util Stdlib

lib/data/tpch.ml: Array Dmll_interp Dmll_util

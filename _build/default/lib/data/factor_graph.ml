(** Synthetic factor graphs for Gibbs sampling (paper §6.3).

    DeepDive-style factor graphs for information extraction are
    proprietary; this generator builds the same structure the DimmWitted
    benchmark exercises: boolean variables, pairwise factors with random
    weights and a skewed degree distribution, stored both as unwrapped
    flat arrays (DMLL's layout) and as a pointer-linked object graph (the
    baseline's layout; see [Dmll_baselines.Dimmwitted]). *)

module Prng = Dmll_util.Prng
module V = Dmll_interp.Value

type t = {
  nvars : int;
  nfactors : int;
  (* factor f connects var_a.(f) and var_b.(f) with weight w.(f) *)
  var_a : int array;
  var_b : int array;
  weight : float array;
  (* per-variable adjacency in CSR form: factors touching each variable *)
  adj_offsets : int array;  (** nvars + 1 *)
  adj_factors : int array;
  bias : float array;  (** per-variable unary weight *)
}

let generate ?(seed = 0x91bb) ~vars ~factors () : t =
  let rng = Prng.create seed in
  let var_a = Array.make factors 0 in
  let var_b = Array.make factors 0 in
  let weight = Array.make factors 0.0 in
  for f = 0 to factors - 1 do
    (* skewed endpoint choice: entity variables touch many factors *)
    let skewed () =
      if Prng.float rng 1.0 < 0.2 then Prng.int rng (Stdlib.max 1 (vars / 20))
      else Prng.int rng vars
    in
    var_a.(f) <- skewed ();
    var_b.(f) <- Prng.int rng vars;
    weight.(f) <- Prng.gaussian rng *. 0.5
  done;
  let deg = Array.make vars 0 in
  for f = 0 to factors - 1 do
    deg.(var_a.(f)) <- deg.(var_a.(f)) + 1;
    deg.(var_b.(f)) <- deg.(var_b.(f)) + 1
  done;
  let adj_offsets = Array.make (vars + 1) 0 in
  for v = 0 to vars - 1 do
    adj_offsets.(v + 1) <- adj_offsets.(v) + deg.(v)
  done;
  let fill = Array.copy adj_offsets in
  let adj_factors = Array.make adj_offsets.(vars) 0 in
  for f = 0 to factors - 1 do
    adj_factors.(fill.(var_a.(f))) <- f;
    fill.(var_a.(f)) <- fill.(var_a.(f)) + 1;
    adj_factors.(fill.(var_b.(f))) <- f;
    fill.(var_b.(f)) <- fill.(var_b.(f)) + 1
  done;
  let bias = Array.init vars (fun _ -> Prng.gaussian rng *. 0.2) in
  { nvars = vars; nfactors = factors; var_a; var_b; weight; adj_offsets; adj_factors; bias }

(** Initial variable assignment (random booleans as 0/1 floats). *)
let initial_state ?(seed = 0x57a7e) (g : t) : float array =
  let rng = Prng.create seed in
  Array.init g.nvars (fun _ -> if Prng.bool rng then 1.0 else 0.0)

(** Pre-drawn uniform randoms, one per variable per sweep, so sampling is
    deterministic and expressible in the pure IR. *)
let sweep_randoms ?(seed = 0xd1ce) ~sweeps (g : t) : float array =
  let rng = Prng.create seed in
  Array.init (sweeps * g.nvars) (fun _ -> Prng.float rng 1.0)

let inputs (g : t) : (string * V.t) list =
  [ ("fg.var_a", V.of_int_array g.var_a);
    ("fg.var_b", V.of_int_array g.var_b);
    ("fg.weight", V.of_float_array g.weight);
    ("fg.adj_offsets", V.of_int_array g.adj_offsets);
    ("fg.adj_factors", V.of_int_array g.adj_factors);
    ("fg.bias", V.of_float_array g.bias);
  ]

let bytes (g : t) : float =
  float_of_int ((3 * g.nfactors * 8) + (2 * g.adj_offsets.(g.nvars) * 8) + (g.nvars * 16))

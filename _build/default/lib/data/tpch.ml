(** Synthetic TPC-H [lineitem] generator.

    Stands in for the paper's TPC-H SF5 dataset (DESIGN.md §2): Query 1
    only touches seven numeric columns and two low-cardinality flag
    columns, so a column-faithful synthetic table preserves everything the
    benchmark measures (grouping cardinality = 4 populated (returnflag,
    linestatus) combinations, ~98% selectivity of the shipdate filter,
    streaming aggregation).  Column distributions follow the TPC-H
    specification's shapes at reduced scale. *)

module V = Dmll_interp.Value
module Prng = Dmll_util.Prng

type table = {
  n : int;
  returnflag : int array;  (** 0='A', 1='N', 2='R' *)
  linestatus : int array;  (** 0='F', 1='O' *)
  quantity : float array;
  extendedprice : float array;
  discount : float array;
  tax : float array;
  shipdate : int array;  (** days since the dataset's epoch *)
}

(** Rows per TPC-H scale factor (the real table has ~6M rows per SF). *)
let rows_of_sf sf = int_of_float (6_000_000.0 *. sf)

(** Query 1's shipdate cutoff: [DATE '1998-12-01' - 90 days]; with our
    2555-day (7-year) shipdate span, the equivalent cutoff keeps ~98% of
    the rows, matching the reference selectivity. *)
let shipdate_span = 2555

let q1_cutoff = shipdate_span - 90

let generate ?(seed = 0x79c1) ~rows () : table =
  let rng = Prng.create seed in
  let returnflag = Array.make rows 0 in
  let linestatus = Array.make rows 0 in
  let quantity = Array.make rows 0.0 in
  let extendedprice = Array.make rows 0.0 in
  let discount = Array.make rows 0.0 in
  let tax = Array.make rows 0.0 in
  let shipdate = Array.make rows 0 in
  for i = 0 to rows - 1 do
    let d = Prng.int rng shipdate_span in
    shipdate.(i) <- d;
    (* linestatus is determined by shipdate in TPC-H ('F' for old orders);
       returnflag is 'N' for recent rows, 'A'/'R' for old ones — rows just
       before the F/O boundary are N/F, giving the reference output's four
       populated (returnflag, linestatus) groups *)
    linestatus.(i) <- (if d < shipdate_span / 2 then 0 else 1);
    returnflag.(i) <-
      (if d > (shipdate_span / 2) - 90 then 1 else if Prng.bool rng then 0 else 2);
    quantity.(i) <- float_of_int (1 + Prng.int rng 50);
    extendedprice.(i) <- Prng.float_range rng 900.0 105000.0;
    discount.(i) <- float_of_int (Prng.int rng 11) /. 100.0;
    tax.(i) <- float_of_int (Prng.int rng 9) /. 100.0
  done;
  { n = rows; returnflag; linestatus; quantity; extendedprice; discount; tax; shipdate }

(** Columnar inputs for the post-SoA program (names follow
    [Dmll_opt.Soa.column_name]: ["lineitem.<field>"]). *)
let columnar_inputs (t : table) : (string * V.t) list =
  [ ("lineitem.returnflag", V.of_int_array t.returnflag);
    ("lineitem.linestatus", V.of_int_array t.linestatus);
    ("lineitem.quantity", V.of_float_array t.quantity);
    ("lineitem.extendedprice", V.of_float_array t.extendedprice);
    ("lineitem.discount", V.of_float_array t.discount);
    ("lineitem.tax", V.of_float_array t.tax);
    ("lineitem.shipdate", V.of_int_array t.shipdate);
  ]

(** The same table as an array of structs (for the pre-SoA program and the
    MiniSpark baseline, which cannot split records into columns). *)
let aos_value (t : table) : V.t =
  V.Varr
    (V.Ga
       (Array.init t.n (fun i ->
            V.Vstruct
              [| ("orderkey", V.Vint (i / 4));
                 ("partkey", V.Vint ((i * 7) mod 20000));
                 ("suppkey", V.Vint ((i * 13) mod 1000));
                 ("linenumber", V.Vint (i mod 7));
                 ("returnflag", V.Vint t.returnflag.(i));
                 ("linestatus", V.Vint t.linestatus.(i));
                 ("quantity", V.Vfloat t.quantity.(i));
                 ("extendedprice", V.Vfloat t.extendedprice.(i));
                 ("discount", V.Vfloat t.discount.(i));
                 ("tax", V.Vfloat t.tax.(i));
                 ("shipdate", V.Vint t.shipdate.(i));
              |])))

(** In-memory footprint (bytes) of the columnar table, for the cluster
    simulator's transfer costs. *)
let bytes (t : table) : float = float_of_int (t.n * 7 * 8)

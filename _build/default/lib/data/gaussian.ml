(** Labeled Gaussian-mixture matrices for the machine-learning benchmarks
    (GDA, k-means, logistic regression, kNN, naive Bayes).

    The paper's ML experiments run on a 500k x 100 dense matrix; we
    generate the same shape at reduced scale: [classes] well-separated
    Gaussian clusters in [cols] dimensions, row-major flat storage (the
    layout the stencil analysis partitions on row boundaries). *)

module V = Dmll_interp.Value
module Prng = Dmll_util.Prng

type dataset = {
  rows : int;
  cols : int;
  data : float array;  (** row-major [rows * cols] *)
  labels : int array;  (** generating component of each row *)
}

let generate ?(seed = 0x9a55) ~rows ~cols ~classes () : dataset =
  let rng = Prng.create seed in
  (* component means, separated on a scaled lattice *)
  let means =
    Array.init classes (fun _ ->
        Array.init cols (fun _ -> Prng.float_range rng (-10.0) 10.0))
  in
  let data = Array.make (rows * cols) 0.0 in
  let labels = Array.make rows 0 in
  for i = 0 to rows - 1 do
    let c = Prng.int rng classes in
    labels.(i) <- c;
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- means.(c).(j) +. Prng.gaussian rng
    done
  done;
  { rows; cols; data; labels }

(** Binary labels for GDA / logistic regression: component 0 vs rest. *)
let binary_labels (d : dataset) : float array =
  Array.map (fun l -> if l = 0 then 0.0 else 1.0) d.labels

(** Random initial centroids (k x cols, row-major), drawn from the data's
    bounding box — the [Matrix.fromFunction(...)(math.random)] of
    Figure 1. *)
let random_centroids ?(seed = 0xce47) ~k (d : dataset) : float array =
  let rng = Prng.create seed in
  Array.init (k * d.cols) (fun _ -> Prng.float_range rng (-12.0) 12.0)

let matrix_input (d : dataset) : string * V.t = ("matrix", V.of_float_array d.data)

let bytes (d : dataset) : float = float_of_int (d.rows * d.cols * 8)

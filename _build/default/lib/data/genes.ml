(** Synthetic gene-barcoding reads.

    Stands in for the paper's 3.5M-gene dataset (689 MB FASTA): the gene
    barcoding benchmark is a fused validate-filter + group-count over
    fixed-width barcode keys, so synthetic reads with a realistic barcode
    cardinality and error rate exercise the identical code path
    (pipeline fusion + dead-field elimination, Table 2). *)

module V = Dmll_interp.Value
module Prng = Dmll_util.Prng

type reads = {
  n : int;
  barcode : int array;  (** barcode id; real pipelines hash the 12-mer *)
  quality : float array;  (** mean phred-like quality of the read *)
  length : int array;  (** read length in bases *)
}

let generate ?(seed = 0x6e6e) ~reads:n ~barcodes () : reads =
  let rng = Prng.create seed in
  let barcode = Array.make n 0 in
  let quality = Array.make n 0.0 in
  let length = Array.make n 0 in
  for i = 0 to n - 1 do
    (* barcodes are skewed: a few cell barcodes dominate, like real
       droplet sequencing runs *)
    let b =
      if Prng.float rng 1.0 < 0.5 then Prng.int rng (Stdlib.max 1 (barcodes / 10))
      else Prng.int rng barcodes
    in
    barcode.(i) <- b;
    quality.(i) <- Prng.float_range rng 10.0 40.0;
    length.(i) <- 80 + Prng.int rng 40
  done;
  { n; barcode; quality; length }

(** Quality threshold below which a read is discarded (~12% of reads). *)
let min_quality = 13.5

let columnar_inputs (r : reads) : (string * V.t) list =
  [ ("reads.barcode", V.of_int_array r.barcode);
    ("reads.quality", V.of_float_array r.quality);
    ("reads.length", V.of_int_array r.length);
  ]

let aos_value (r : reads) : V.t =
  V.Varr
    (V.Ga
       (Array.init r.n (fun i ->
            V.Vstruct
              [| ("barcode", V.Vint r.barcode.(i));
                 ("quality", V.Vfloat r.quality.(i));
                 ("length", V.Vint r.length.(i));
              |])))

let bytes (r : reads) : float = float_of_int (r.n * 3 * 8)

(** R-MAT graph generator.

    Stands in for the LiveJournal social graph the paper's graph
    experiments use (4.8M vertices, 69M edges): R-MAT with the classic
    (0.57, 0.19, 0.19, 0.05) quadrant probabilities reproduces the skewed
    degree distribution that PageRank load balance and triangle counts
    depend on, at reduced scale. *)

module Prng = Dmll_util.Prng

type edges = { nv : int; edges : (int * int) array }

let default_a = 0.57
let default_b = 0.19
let default_c = 0.19

(** Generate [ne] directed edges over [2^scale] vertices.  Self-loops and
    duplicates are kept (they are deduplicated when building CSR). *)
let generate ?(seed = 0x4a17) ?(a = default_a) ?(b = default_b) ?(c = default_c)
    ~scale ~edge_factor () : edges =
  let nv = 1 lsl scale in
  let ne = nv * edge_factor in
  let rng = Prng.create seed in
  let one () =
    let u = ref 0 and v = ref 0 in
    for _ = 1 to scale do
      let r = Prng.float rng 1.0 in
      let du, dv =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := (!u * 2) + du;
      v := (!v * 2) + dv
    done;
    (!u, !v)
  in
  { nv; edges = Array.init ne (fun _ -> one ()) }

(** Undirected version: each generated edge is mirrored. *)
let symmetrize (g : edges) : edges =
  let mirrored = Array.map (fun (u, v) -> (v, u)) g.edges in
  { g with edges = Array.append g.edges mirrored }

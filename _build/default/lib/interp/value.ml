(** Runtime values shared by the reference interpreter, the closure
    backend, and the runtime executors.

    Arrays are specialized by element type ([Fa]/[Ia] hold unboxed
    primitives) — the runtime realization of the paper's AoS→SoA and
    struct-unwrapping optimizations.  Code paths that cannot prove a
    primitive element type fall back to the generic [Ga] representation,
    which models the boxed collections of library-based systems (and is
    exactly what the MiniSpark baseline is forced to use). *)

type t =
  | Vunit
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Varr of varr
  | Vtup of t array
  | Vstruct of (string * t) array
  | Vmap of vmap

and varr =
  | Fa of float array  (** unboxed float storage *)
  | Ia of int array  (** unboxed int storage *)
  | Ga of t array  (** generic (boxed) storage *)

and vmap = { mkeys : t array; mvals : t array }
(** Buckets in first-seen key order, the deterministic order produced by a
    sequential bucket generator (Figure 2's [Map[K,Index]]). *)

let as_bool = function Vbool b -> b | v -> invalid_arg (Printf.sprintf "Value.as_bool: got %s" (match v with Vint _ -> "int" | Vfloat _ -> "float" | _ -> "non-bool"))
let as_int = function Vint i -> i | _ -> invalid_arg "Value.as_int"
let as_float = function Vfloat f -> f | _ -> invalid_arg "Value.as_float"
let as_str = function Vstr s -> s | _ -> invalid_arg "Value.as_str"
let as_arr = function Varr a -> a | _ -> invalid_arg "Value.as_arr"
let as_map = function Vmap m -> m | _ -> invalid_arg "Value.as_map"

let arr_len = function
  | Fa a -> Array.length a
  | Ia a -> Array.length a
  | Ga a -> Array.length a

let arr_get a i =
  match a with Fa a -> Vfloat a.(i) | Ia a -> Vint a.(i) | Ga a -> a.(i)

let length = function
  | Varr a -> arr_len a
  | Vmap m -> Array.length m.mkeys
  | _ -> invalid_arg "Value.length"

(** Positional read: element [i] of an array, or the value of bucket [i] of
    a map. *)
let get v i =
  match v with
  | Varr a -> arr_get a i
  | Vmap m -> m.mvals.(i)
  | _ -> invalid_arg "Value.get"

let of_float_array a = Varr (Fa a)
let of_int_array a = Varr (Ia a)

let to_float_array = function
  | Varr (Fa a) -> a
  | Varr (Ga a) -> Array.map as_float a
  | _ -> invalid_arg "Value.to_float_array"

let to_int_array = function
  | Varr (Ia a) -> a
  | Varr (Ga a) -> Array.map as_int a
  | _ -> invalid_arg "Value.to_int_array"

(** Build an array value from accumulated elements, specializing the
    storage when every element is an unboxed scalar. *)
let varr_of_list (xs : t list) : varr =
  match xs with
  | Vfloat _ :: _ when List.for_all (function Vfloat _ -> true | _ -> false) xs ->
      Fa (Array.of_list (List.map as_float xs))
  | Vint _ :: _ when List.for_all (function Vint _ -> true | _ -> false) xs ->
      Ia (Array.of_list (List.map as_int xs))
  | _ -> Ga (Array.of_list xs)

(** Structural equality.  Float comparison is exact; tests that tolerate
    rounding use {!approx_equal}. *)
let rec equal (a : t) (b : t) : bool =
  match (a, b) with
  | Vunit, Vunit -> true
  | Vbool x, Vbool y -> Bool.equal x y
  | Vint x, Vint y -> Int.equal x y
  | Vfloat x, Vfloat y -> Float.equal x y
  | Vstr x, Vstr y -> String.equal x y
  | Varr x, Varr y ->
      arr_len x = arr_len y
      && (let n = arr_len x in
          let rec go i = i >= n || (equal (arr_get x i) (arr_get y i) && go (i + 1)) in
          go 0)
  | Vtup x, Vtup y -> Array.length x = Array.length y && Array.for_all2 equal x y
  | Vstruct x, Vstruct y ->
      Array.length x = Array.length y
      && Array.for_all2
           (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal v1 v2)
           x y
  | Vmap x, Vmap y ->
      Array.length x.mkeys = Array.length y.mkeys
      && Array.for_all2 equal x.mkeys y.mkeys
      && Array.for_all2 equal x.mvals y.mvals
  | _ -> false

(** Equality up to a relative/absolute float tolerance; map buckets are
    compared as key-indexed sets, since parallel execution may produce
    buckets in a different (but still deterministic per-schedule) order. *)
let rec approx_equal ?(eps = 1e-9) (a : t) (b : t) : bool =
  let feq x y =
    Float.equal x y
    || Float.abs (x -. y) <= eps *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  in
  match (a, b) with
  | Vfloat x, Vfloat y -> feq x y
  | Varr x, Varr y ->
      arr_len x = arr_len y
      && (let n = arr_len x in
          let rec go i =
            i >= n || (approx_equal ~eps (arr_get x i) (arr_get y i) && go (i + 1))
          in
          go 0)
  | Vtup x, Vtup y ->
      Array.length x = Array.length y && Array.for_all2 (approx_equal ~eps) x y
  | Vstruct x, Vstruct y ->
      Array.length x = Array.length y
      && Array.for_all2
           (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && approx_equal ~eps v1 v2)
           x y
  | Vmap x, Vmap y ->
      Array.length x.mkeys = Array.length y.mkeys
      && Array.for_all
           (fun k ->
             match (find_bucket x k, find_bucket y k) with
             | Some v1, Some v2 -> approx_equal ~eps v1 v2
             | _ -> false)
           x.mkeys
  | _ -> equal a b

and find_bucket (m : vmap) (k : t) : t option =
  let n = Array.length m.mkeys in
  let rec go i =
    if i >= n then None else if equal m.mkeys.(i) k then Some m.mvals.(i) else go (i + 1)
  in
  go 0

let rec pp fmt = function
  | Vunit -> Fmt.string fmt "()"
  | Vbool b -> Fmt.bool fmt b
  | Vint i -> Fmt.int fmt i
  | Vfloat f -> Fmt.pf fmt "%g" f
  | Vstr s -> Fmt.pf fmt "%S" s
  | Varr a ->
      Fmt.pf fmt "[%a]"
        Fmt.(list ~sep:(any ", ") pp)
        (List.init (arr_len a) (arr_get a))
  | Vtup vs -> Fmt.pf fmt "(%a)" Fmt.(array ~sep:(any ", ") pp) vs
  | Vstruct fs ->
      Fmt.pf fmt "{%a}"
        Fmt.(array ~sep:(any ", ") (fun fmt (n, v) -> Fmt.pf fmt "%s=%a" n pp v))
        fs
  | Vmap m ->
      Fmt.pf fmt "{%a}"
        Fmt.(list ~sep:(any ", ") (fun fmt (k, v) -> Fmt.pf fmt "%a->%a" pp k pp v))
        (List.init (Array.length m.mkeys) (fun i -> (m.mkeys.(i), m.mvals.(i))))

let to_string v = Fmt.str "%a" pp v

let struct_field (v : t) (name : string) : t =
  match v with
  | Vstruct fs -> (
      match Array.find_opt (fun (n, _) -> String.equal n name) fs with
      | Some (_, v) -> v
      | None -> invalid_arg ("Value.struct_field: no field " ^ name))
  | _ -> invalid_arg "Value.struct_field: not a struct"

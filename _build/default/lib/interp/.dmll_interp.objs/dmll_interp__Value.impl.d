lib/interp/value.ml: Array Bool Float Fmt Int List Printf String

lib/interp/interp.ml: Array Char Dmll_ir Exp Float Fmt Hashtbl List Prim Stdlib String Sym Value

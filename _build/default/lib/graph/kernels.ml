(** Hand-optimized graph kernels: the "manually optimized C++" reference
    implementations for the graph rows of Table 2, plus both the pull and
    push formulations of PageRank that the OptiGraph push-pull
    transformation switches between (paper §6.2). *)

let damping = 0.85

(** One pull-model PageRank iteration: every vertex gathers rank/degree
    from its in-neighbors.  The natural shared-memory formulation: reads
    are random, writes are disjoint. *)
let pagerank_pull_step (g : Csr.t) (rank : float array) (out : float array) : unit =
  let base = (1.0 -. damping) /. float_of_int g.Csr.nv in
  for v = 0 to g.Csr.nv - 1 do
    let acc = ref 0.0 in
    for e = g.Csr.in_offsets.(v) to g.Csr.in_offsets.(v + 1) - 1 do
      let u = g.Csr.in_sources.(e) in
      let d = Csr.out_degree g u in
      if d > 0 then acc := !acc +. (rank.(u) /. float_of_int d)
    done;
    out.(v) <- base +. (damping *. !acc)
  done

(** One push-model PageRank iteration: every vertex scatters its
    contribution to its out-neighbors.  The distributed-friendly
    formulation: reads are local, writes are scattered (accumulated). *)
let pagerank_push_step (g : Csr.t) (rank : float array) (out : float array) : unit =
  let base = (1.0 -. damping) /. float_of_int g.Csr.nv in
  Array.fill out 0 g.Csr.nv 0.0;
  for u = 0 to g.Csr.nv - 1 do
    let d = Csr.out_degree g u in
    if d > 0 then begin
      let share = rank.(u) /. float_of_int d in
      for e = g.Csr.out_offsets.(u) to g.Csr.out_offsets.(u + 1) - 1 do
        let v = g.Csr.out_targets.(e) in
        out.(v) <- out.(v) +. share
      done
    end
  done;
  for v = 0 to g.Csr.nv - 1 do
    out.(v) <- base +. (damping *. out.(v))
  done

(** Run [iters] PageRank iterations (pull model). *)
let pagerank ?(iters = 10) (g : Csr.t) : float array =
  let n = g.Csr.nv in
  let a = ref (Array.make n (1.0 /. float_of_int n)) in
  let b = ref (Array.make n 0.0) in
  for _ = 1 to iters do
    pagerank_pull_step g !a !b;
    let t = !a in
    a := !b;
    b := t
  done;
  !a

(** Triangle counting on the symmetrized graph by sorted-list merge: for
    each edge (u,v) with u < v, count common neighbors w > v.  Counts each
    triangle exactly once. *)
let triangle_count (g : Csr.t) : int =
  let count = ref 0 in
  for u = 0 to g.Csr.nv - 1 do
    for e = g.Csr.out_offsets.(u) to g.Csr.out_offsets.(u + 1) - 1 do
      let v = g.Csr.out_targets.(e) in
      if u < v then begin
        (* merge neighbor lists of u and v, counting matches > v *)
        let i = ref g.Csr.out_offsets.(u) and j = ref g.Csr.out_offsets.(v) in
        let iu = g.Csr.out_offsets.(u + 1) and jv = g.Csr.out_offsets.(v + 1) in
        while !i < iu && !j < jv do
          let a = g.Csr.out_targets.(!i) and b = g.Csr.out_targets.(!j) in
          if a = b then begin
            if a > v then incr count;
            incr i;
            incr j
          end
          else if a < b then incr i
          else incr j
        done
      end
    done
  done;
  !count

(** L1 distance between rank vectors (convergence metric for tests). *)
let rank_delta (a : float array) (b : float array) : float =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
  !acc

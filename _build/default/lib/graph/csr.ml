(** Compressed sparse row graphs.

    The substrate for the graph-analytics benchmarks: adjacency in CSR
    form with sorted, deduplicated neighbor lists (sorted lists enable the
    merge-based triangle counting kernel and binary-searched membership
    tests).  Both out-edges and in-edges are materialized because the
    push/pull transformation (paper §6.2, OptiGraph) switches between
    them. *)

module V = Dmll_interp.Value

type t = {
  nv : int;
  ne : int;
  (* out-edges *)
  out_offsets : int array;  (** nv + 1 *)
  out_targets : int array;
  (* in-edges *)
  in_offsets : int array;
  in_sources : int array;
}

let out_degree g v = g.out_offsets.(v + 1) - g.out_offsets.(v)
let in_degree g v = g.in_offsets.(v + 1) - g.in_offsets.(v)

let out_neighbors g v f =
  for e = g.out_offsets.(v) to g.out_offsets.(v + 1) - 1 do
    f g.out_targets.(e)
  done

let in_neighbors g v f =
  for e = g.in_offsets.(v) to g.in_offsets.(v + 1) - 1 do
    f g.in_sources.(e)
  done

(* Build one CSR direction from (src, dst) pairs; neighbor lists sorted and
   deduplicated, self-loops dropped. *)
let build_direction ~nv (pairs : (int * int) array) : int array * int array =
  let deg = Array.make nv 0 in
  Array.iter (fun (u, v) -> if u <> v then deg.(u) <- deg.(u) + 1) pairs;
  let offsets = Array.make (nv + 1) 0 in
  for v = 0 to nv - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let fill = Array.copy offsets in
  let targets = Array.make offsets.(nv) 0 in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        targets.(fill.(u)) <- v;
        fill.(u) <- fill.(u) + 1
      end)
    pairs;
  (* sort and dedup each list *)
  let out_offsets = Array.make (nv + 1) 0 in
  let out = Array.make offsets.(nv) 0 in
  let k = ref 0 in
  for v = 0 to nv - 1 do
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    let seg = Array.sub targets lo (hi - lo) in
    Array.sort compare seg;
    let prev = ref (-1) in
    Array.iter
      (fun w ->
        if w <> !prev then begin
          out.(!k) <- w;
          incr k;
          prev := w
        end)
      seg;
    out_offsets.(v + 1) <- !k
  done;
  (out_offsets, Array.sub out 0 !k)

(** Build a CSR graph from an edge list. *)
let of_edges (g : Dmll_data.Rmat.edges) : t =
  let nv = g.Dmll_data.Rmat.nv in
  let pairs = g.Dmll_data.Rmat.edges in
  let out_offsets, out_targets = build_direction ~nv pairs in
  let in_offsets, in_sources =
    build_direction ~nv (Array.map (fun (u, v) -> (v, u)) pairs)
  in
  { nv; ne = Array.length out_targets; out_offsets; out_targets; in_offsets; in_sources }

(** Membership test on a sorted neighbor list. *)
let has_out_edge (g : t) (u : int) (v : int) : bool =
  let lo = ref g.out_offsets.(u) and hi = ref g.out_offsets.(u + 1) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.out_targets.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
  done;
  !found

(** Flat edge list in out-CSR order: [edge_src.(e)] is the source of the
    edge whose target is [out_targets.(e)] — the layout the push-model
    (edge-parallel, BucketReduce-keyed-by-target) formulation iterates. *)
let edge_src (g : t) : int array =
  let src = Array.make (Array.length g.out_targets) 0 in
  for v = 0 to g.nv - 1 do
    for e = g.out_offsets.(v) to g.out_offsets.(v + 1) - 1 do
      src.(e) <- v
    done
  done;
  src

let out_degrees (g : t) : int array = Array.init g.nv (out_degree g)

(** Inputs exposing the graph to DMLL programs (partitioned edge arrays,
    local offset arrays — the offsets are the directory-like metadata). *)
let inputs (g : t) : (string * V.t) list =
  [ ("g.out_offsets", V.of_int_array g.out_offsets);
    ("g.out_targets", V.of_int_array g.out_targets);
    ("g.in_offsets", V.of_int_array g.in_offsets);
    ("g.in_sources", V.of_int_array g.in_sources);
    ("g.edge_src", V.of_int_array (edge_src g));
    ("g.out_deg", V.of_int_array (out_degrees g));
  ]

let bytes (g : t) : float =
  float_of_int
    (8 * (Array.length g.out_targets + Array.length g.in_sources + (2 * (g.nv + 1))))

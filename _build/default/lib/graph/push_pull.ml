(** OptiGraph-style push-pull model selection (paper §6.2).

    The paper's graph benchmarks are written in OptiGraph, "a graph
    analytics DSL built on top of DMLL that uses ... domain-specific
    transformations ... to transform applications between a pull model of
    computation (common in shared memory) to a push model of computation
    (common in distributed systems) based on the hardware target"
    (following Hong et al., CGO 2014).

    The decision procedure is exactly that sentence: shared-memory targets
    gather (pull — random reads are cheap, writes stay disjoint),
    distributed targets scatter (push — reads stay partition-local and the
    writes become an explicit, shuffleable BucketReduce). *)

type model = Pull | Push

type target_class = Shared_memory | Distributed

let model_to_string = function Pull -> "pull" | Push -> "push"

(** Which model to compile for a target class. *)
let select = function Shared_memory -> Pull | Distributed -> Push

(** A vertex program with both formulations; [for_target] picks one. *)
type 'a both = { pull : 'a; push : 'a }

let for_target (b : 'a both) (t : target_class) : 'a =
  match select t with Pull -> b.pull | Push -> b.push

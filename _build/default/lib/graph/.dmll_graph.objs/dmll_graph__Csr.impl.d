lib/graph/csr.ml: Array Dmll_data Dmll_interp

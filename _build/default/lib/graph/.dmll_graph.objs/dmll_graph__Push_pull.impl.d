lib/graph/push_pull.ml:

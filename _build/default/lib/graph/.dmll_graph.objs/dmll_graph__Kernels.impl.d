lib/graph/kernels.ml: Array Csr Float

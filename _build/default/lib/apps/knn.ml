(** Nearest-neighbor classification (paper §3.2 mentions kNN as another
    instance of the GroupBy-Reduce pattern family).

    For every test row we find the nearest training row (1-NN) and return
    its label; a second program counts predictions per label with a
    grouped reduction, the "count the fraction of k data samples per data
    label" step of the paper's kNN. *)

module V = Dmll_interp.Value
module Gaussian = Dmll_data.Gaussian

(** Predicted label per test row. *)
let program ~train_rows ~test_rows ~cols () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let train =
    Mat.input ~layout:Dmll_ir.Exp.Partitioned "train" ~rows:(int train_rows)
      ~cols:(int cols)
  in
  let test = Mat.input "test" ~rows:(int test_rows) ~cols:(int cols) in
  let labels = input_iarr "train_labels" in
  let body =
    tabulate (Mat.rows test) (fun t ->
        let$ nearest =
          min_index (Mat.rows train) (fun i -> Mat.dist2_rows train i test t)
        in
        get labels nearest)
  in
  reveal body

(** Histogram of predicted labels (label -> count). *)
let label_counts_program ~train_rows ~test_rows ~cols () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let open Dmll_ir in
  let preds = program ~train_rows ~test_rows ~cols () in
  let s = Sym.fresh ~name:"preds" (Types.Arr Types.Int) in
  Exp.Let
    ( s,
      preds,
      reveal
        (group_reduce
           (length (conceal (Exp.Var s)))
           ~key:(fun i -> get (conceal (Exp.Var s)) i)
           ~value:(fun _ -> int 1)
           ~init:(int 0)
           ~combine:(fun a b -> a + b)) )

let inputs ~(train : Gaussian.dataset) ~(test : Gaussian.dataset) :
    (string * V.t) list =
  [ ("train", V.of_float_array train.Gaussian.data);
    ("test", V.of_float_array test.Gaussian.data);
    ("train_labels", V.of_int_array train.Gaussian.labels);
  ]

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference                                            *)
(* ------------------------------------------------------------------ *)

let handopt ~(train : float array) ~(train_labels : int array) ~(test : float array)
    ~(train_rows : int) ~(test_rows : int) ~(cols : int) : int array =
  Array.init test_rows (fun t ->
      let tb = t * cols in
      let best = ref 0 and best_d = ref infinity in
      for i = 0 to train_rows - 1 do
        let ib = i * cols in
        let d = ref 0.0 in
        for j = 0 to cols - 1 do
          let x = train.(ib + j) -. test.(tb + j) in
          d := !d +. (x *. x)
        done;
        if !d < !best_d then begin
          best_d := !d;
          best := i
        end
      done;
      train_labels.(!best))

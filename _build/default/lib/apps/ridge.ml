(** Ridge regression (one gradient step).

    Listed in §3.2 alongside naive Bayes as an application "in which the
    user wishes to somehow reduce the columns of a matrix": the gradient
    of the L2-regularized least-squares objective is a per-feature sum
    over all samples, written here in the same textbook per-column
    orientation as logistic regression — so the Column-to-Row Reduce rule
    restructures it identically for distribution, and Row-to-Column
    re-inverts it inside GPU kernels. *)

module V = Dmll_interp.Value
module Gaussian = Dmll_data.Gaussian

(** One step of gradient descent on [theta] for
    ½‖Xθ − y‖² + ½λ‖θ‖²; returns the new theta. *)
let program ~rows ~cols ~alpha ~lambda () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let x = Mat.input ~layout:Dmll_ir.Exp.Partitioned "matrix" ~rows:(int rows) ~cols:(int cols) in
  let y = input_farr ~layout:Dmll_ir.Exp.Partitioned "y" in
  let theta = input_farr "theta" in
  let body =
    tabulate (int cols) (fun j ->
        let residual_grad =
          sum_range (int rows) (fun i ->
              Mat.get x i j *. (Mat.dot_row x i theta -. get y i))
        in
        get theta j
        -. (float alpha *. (residual_grad +. (float lambda *. get theta j))))
  in
  reveal body

let inputs (d : Gaussian.dataset) ~(theta : float array) : (string * V.t) list =
  [ Gaussian.matrix_input d;
    ("y", V.of_float_array (Gaussian.binary_labels d));
    ("theta", V.of_float_array theta);
  ]

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference                                            *)
(* ------------------------------------------------------------------ *)

let handopt ~(data : float array) ~(labels : float array) ~(rows : int) ~(cols : int)
    ~(alpha : float) ~(lambda : float) ~(theta : float array) : float array =
  let grad = Array.make cols 0.0 in
  for i = 0 to rows - 1 do
    let base = i * cols in
    let pred = ref 0.0 in
    for j = 0 to cols - 1 do
      pred := !pred +. (data.(base + j) *. theta.(j))
    done;
    let r = !pred -. labels.(i) in
    for j = 0 to cols - 1 do
      grad.(j) <- grad.(j) +. (data.(base + j) *. r)
    done
  done;
  Array.init cols (fun j -> theta.(j) -. (alpha *. (grad.(j) +. (lambda *. theta.(j)))))

(** Gene barcoding: per-barcode read counting with quality filtering.

    Written distributed-friendly (a filter feeding grouped reductions),
    exercising the Table 2 optimizations for this benchmark: pipeline
    fusion (the filter disappears into the single traversal) and dead
    field elimination (the [length] column is never read, so after
    input-SoA it is never even loaded). *)

module V = Dmll_interp.Value
module Genes = Dmll_data.Genes

let read_ty : Dmll_ir.Types.ty =
  Dmll_ir.Types.Struct
    ( "read",
      [ ("barcode", Dmll_ir.Types.Int);
        ("quality", Dmll_ir.Types.Float);
        ("length", Dmll_ir.Types.Int);
      ] )

(** Per barcode: (count, mean quality) as a pair of maps. *)
let program () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let reads = input_struct_arr ~layout:Dmll_ir.Exp.Partitioned "reads" read_ty in
  let body =
    let$ valid = filter reads (fun r -> field r "quality" >= float Genes.min_quality) in
    let$ counts =
      group_reduce (length valid)
        ~key:(fun i -> field (get valid i) "barcode")
        ~value:(fun _ -> int 1)
        ~init:(int 0)
        ~combine:(fun a b -> a + b)
    in
    let$ qsums =
      group_reduce (length valid)
        ~key:(fun i -> field (get valid i) "barcode")
        ~value:(fun i -> field (get valid i) "quality")
        ~init:(float 0.0)
        ~combine:(fun a b -> a +. b)
    in
    tabulate (buckets counts) (fun j ->
        pair (bucket_key counts j)
          (pair (bucket_value counts j)
             (bucket_value qsums j /. to_float (bucket_value counts j))))
  in
  reveal body

let aos_inputs (r : Genes.reads) : (string * V.t) list =
  [ ("reads", Genes.aos_value r) ]

let soa_inputs = Genes.columnar_inputs

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference                                            *)
(* ------------------------------------------------------------------ *)

(** (barcode, count, mean quality) in first-seen order of valid reads. *)
let handopt (r : Genes.reads) : (int * int * float) list =
  let tbl = Hashtbl.create 1024 in
  let order = ref [] in
  for i = 0 to r.Genes.n - 1 do
    if r.Genes.quality.(i) >= Genes.min_quality then begin
      let b = r.Genes.barcode.(i) in
      match Hashtbl.find_opt tbl b with
      | Some (c, q) -> Hashtbl.replace tbl b (c + 1, q +. r.Genes.quality.(i))
      | None ->
          Hashtbl.add tbl b (1, r.Genes.quality.(i));
          order := b :: !order
    end
  done;
  List.rev_map
    (fun b ->
      let c, q = Hashtbl.find tbl b in
      (b, c, q /. float_of_int c))
    !order

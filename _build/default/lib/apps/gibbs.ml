(** Gibbs sampling on factor graphs (paper §6.3, the DimmWitted case
    study).

    The application's parallelization is hierarchical and {e requires}
    nested parallelism: one model replica per socket sampled independently
    (outer parallelism), Hogwild-style threads within a socket (inner
    parallelism), samples averaged at the end.  The DMLL program expresses
    exactly that nesting: an outer Collect over replicas, an inner Collect
    over variables computing each variable's conditional from the factor
    arrays.

    Determinism/purity note (documented substitution): real Hogwild reads
    neighbors' {e in-sweep} states racily; the pure IR reads the previous
    sweep's state (Jacobi-style chromatic approximation).  Both are
    standard asynchronous-Gibbs approximations with the same per-sweep
    work and memory behaviour, which is what the Figure 8 comparison
    measures.  Randomness is pre-drawn ([Factor_graph.sweep_randoms]) so
    every executor computes bit-identical samples. *)

module V = Dmll_interp.Value
module Fg = Dmll_data.Factor_graph

let sigmoid (z : float Dmll_dsl.Dsl.t) : float Dmll_dsl.Dsl.t =
  let open Dmll_dsl.Dsl in
  float 1.0 /. (float 1.0 +. exp (neg z))

(** One sweep over all variables for [replicas] model replicas; returns an
    array of per-replica new state vectors.  Replica [r] uses the random
    slice [r * nvars ..]. *)
let program ~nvars ~replicas () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let var_a = input_iarr "fg.var_a" in
  let var_b = input_iarr "fg.var_b" in
  let weight = input_farr ~layout:Dmll_ir.Exp.Partitioned "fg.weight" in
  let adj_off = input_iarr "fg.adj_offsets" in
  let adj_fac = input_iarr ~layout:Dmll_ir.Exp.Partitioned "fg.adj_factors" in
  let bias = input_farr "fg.bias" in
  let state = input_farr "state" in
  let rand = input_farr "rand" in
  let body =
    tabulate (int replicas) (fun r ->
        tabulate (int nvars) (fun v ->
            let activation =
              get bias v
              +. sum_range
                   (get adj_off (v + int 1) - get adj_off v)
                   (fun k ->
                     let$ f = get adj_fac (get adj_off v + k) in
                     let$ other =
                       if_ (get var_a f = v) (get var_b f) (get var_a f)
                     in
                     get weight f *. get state other)
            in
            if_ (get rand ((r * int nvars) + v) < sigmoid activation)
              (float 1.0) (float 0.0)))
  in
  reveal body

let inputs (g : Fg.t) ~(state : float array) ~(rand : float array) :
    (string * V.t) list =
  ("state", V.of_float_array state) :: ("rand", V.of_float_array rand) :: Fg.inputs g

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference (unwrapped arrays, like DMLL's codegen)     *)
(* ------------------------------------------------------------------ *)

(** One sweep for one replica over flat arrays, Jacobi-style like the IR
    program, writing into [out]. *)
let handopt_sweep (g : Fg.t) ~(state : float array) ~(rand : float array)
    ~(rand_base : int) ~(out : float array) : unit =
  for v = 0 to g.Fg.nvars - 1 do
    let acc = ref g.Fg.bias.(v) in
    for k = g.Fg.adj_offsets.(v) to g.Fg.adj_offsets.(v + 1) - 1 do
      let f = g.Fg.adj_factors.(k) in
      let other = if g.Fg.var_a.(f) = v then g.Fg.var_b.(f) else g.Fg.var_a.(f) in
      acc := !acc +. (g.Fg.weight.(f) *. state.(other))
    done;
    let p = 1.0 /. (1.0 +. Stdlib.exp (-. !acc)) in
    out.(v) <- (if rand.(rand_base + v) < p then 1.0 else 0.0)
  done

(** Average of per-replica states (the final model combination). *)
let average_replicas (v : V.t) : float array =
  let nrep = V.length v in
  let first = V.to_float_array (V.get v 0) in
  let n = Array.length first in
  let acc = Array.make n 0.0 in
  for r = 0 to nrep - 1 do
    let s = V.to_float_array (V.get v r) in
    for i = 0 to n - 1 do
      acc.(i) <- acc.(i) +. s.(i)
    done
  done;
  Array.map (fun x -> x /. float_of_int nrep) acc

(** Gaussian Discriminant Analysis.

    Two passes over the dataset, matching the paper's description ("GDA is
    similar but iterates over its dataset twice"): the first pass computes
    the class prior and per-class feature sums (four reductions that
    horizontal fusion merges into one traversal); the second accumulates
    the pooled scatter matrix Σ (x_i − μ_{y_i})(x_i − μ_{y_i})ᵀ as a
    flattened cols² vector reduce — the optimizations Table 2 lists for
    GDA: pipeline fusion, horizontal fusion, CSE. *)

module V = Dmll_interp.Value
module Gaussian = Dmll_data.Gaussian

(** Returns (phi, mu0, mu1, sigma_flat). *)
let program ~rows ~cols () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let x = Mat.input ~layout:Dmll_ir.Exp.Partitioned "matrix" ~rows:(int rows) ~cols:(int cols) in
  let y = input_farr ~layout:Dmll_ir.Exp.Partitioned "y" in
  let r = int rows and c = int cols in
  let body =
    let$ n1 = count_range_if r (fun i -> get y i > float 0.5) in
    let$ n0 = count_range_if r (fun i -> not (get y i > float 0.5)) in
    let$ sum0 =
      reduce_range
        ~cond:(fun i -> not (get y i > float 0.5))
        r ~init:(vzero c)
        (fun i -> Mat.row x i)
        vadd
    in
    let$ sum1 =
      reduce_range
        ~cond:(fun i -> get y i > float 0.5)
        r ~init:(vzero c)
        (fun i -> Mat.row x i)
        vadd
    in
    let$ mu0 = map sum0 (fun s -> s /. to_float (imax n0 (int 1))) in
    let$ mu1 = map sum1 (fun s -> s /. to_float (imax n1 (int 1))) in
    let$ sigma =
      reduce_range r
        ~init:(vzero (c * c))
        (fun i ->
          let$ d =
            tabulate c (fun j ->
                Mat.get x i j
                -. if_ (get y i > float 0.5) (get mu1 j) (get mu0 j))
          in
          tabulate (c * c) (fun p -> get d (p / c) *. get d (p mod c)))
        vadd
    in
    pair
      (pair (to_float n1 /. to_float r) mu0)
      (pair mu1 (map sigma (fun s -> s /. to_float r)))
  in
  reveal body

let inputs (d : Gaussian.dataset) : (string * V.t) list =
  [ Gaussian.matrix_input d; ("y", V.of_float_array (Gaussian.binary_labels d)) ]

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference                                            *)
(* ------------------------------------------------------------------ *)

type result = {
  phi : float;
  mu0 : float array;
  mu1 : float array;
  sigma : float array;  (** cols * cols, row-major *)
}

let handopt ~(data : float array) ~(labels : float array) ~(rows : int) ~(cols : int)
    () : result =
  let sum0 = Array.make cols 0.0 and sum1 = Array.make cols 0.0 in
  let n1 = ref 0 in
  for i = 0 to rows - 1 do
    let base = i * cols in
    if labels.(i) > 0.5 then begin
      incr n1;
      for j = 0 to cols - 1 do
        sum1.(j) <- sum1.(j) +. data.(base + j)
      done
    end
    else
      for j = 0 to cols - 1 do
        sum0.(j) <- sum0.(j) +. data.(base + j)
      done
  done;
  let n0 = rows - !n1 in
  let mu0 = Array.map (fun s -> s /. float_of_int (Stdlib.max n0 1)) sum0 in
  let mu1 = Array.map (fun s -> s /. float_of_int (Stdlib.max !n1 1)) sum1 in
  let sigma = Array.make (cols * cols) 0.0 in
  let d = Array.make cols 0.0 in
  for i = 0 to rows - 1 do
    let base = i * cols in
    let mu = if labels.(i) > 0.5 then mu1 else mu0 in
    for j = 0 to cols - 1 do
      d.(j) <- data.(base + j) -. mu.(j)
    done;
    for a = 0 to cols - 1 do
      let da = d.(a) in
      let rowbase = a * cols in
      for b = 0 to cols - 1 do
        sigma.(rowbase + b) <- sigma.(rowbase + b) +. (da *. d.(b))
      done
    done
  done;
  for p = 0 to (cols * cols) - 1 do
    sigma.(p) <- sigma.(p) /. float_of_int rows
  done;
  { phi = float_of_int !n1 /. float_of_int rows; mu0; mu1; sigma }

(** Unpack the DMLL result tuple. *)
let result_of_value (v : V.t) : result =
  match v with
  | V.Vtup [| V.Vtup [| V.Vfloat phi; mu0 |]; V.Vtup [| mu1; sigma |] |] ->
      { phi;
        mu0 = V.to_float_array mu0;
        mu1 = V.to_float_array mu1;
        sigma = V.to_float_array sigma;
      }
  | _ -> invalid_arg "Gda.result_of_value"

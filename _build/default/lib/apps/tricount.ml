(** Triangle counting on the symmetrized graph.

    The DMLL formulation builds an edge-membership map once (a grouped
    count keyed by the (src,dst) pair) and then, edge-parallel, counts for
    every edge (u,v) with u<v the common neighbors w>v — random reads into
    the membership map, the paper's example of an application whose
    "primary distributed dataset cannot be perfectly partitioned".  The
    hand-optimized reference ({!Dmll_graph.Kernels.triangle_count}) uses
    the sorted-adjacency merge that sequential C++ implementations use. *)

module V = Dmll_interp.Value
module Csr = Dmll_graph.Csr

let program () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let edge_src = input_iarr ~layout:Dmll_ir.Exp.Partitioned "g.edge_src" in
  let edge_dst = input_iarr ~layout:Dmll_ir.Exp.Partitioned "g.out_targets" in
  let offsets = input_iarr "g.out_offsets" in
  let body =
    (* membership: (u,v) -> 1 for every directed edge *)
    let$ edgeset =
      group_reduce (length edge_dst)
        ~key:(fun e -> pair (get edge_src e) (get edge_dst e))
        ~value:(fun _ -> int 1)
        ~init:(int 0)
        ~combine:(fun a b -> imax a b)
    in
    (* for each edge (u,v), u<v: count w in N(u) with w>v and (v,w) edge *)
    sum_range_int (length edge_dst) (fun e ->
        let$ u = get edge_src e in
        let$ v = get edge_dst e in
        if_ (u < v)
          (sum_range_int
             (get offsets (u + int 1) - get offsets u)
             (fun k ->
               let$ w = get edge_dst (get offsets u + k) in
               if_
                 (w > v
                 && lookup_or edgeset (pair v w) ~default:(int 0) = int 1)
                 (int 1) (int 0)))
          (int 0))
  in
  reveal body

let inputs (g : Csr.t) : (string * V.t) list = Csr.inputs g

let handopt = Dmll_graph.Kernels.triangle_count

(** TPC-H Query 1: the pricing summary report.

    Written the way an analyst writes it — filter by shipdate, group by
    (returnflag, linestatus), then aggregate each group — over an
    array-of-structs input.  The compiler does the rest, reproducing the
    full Table 2 optimization list for Q1:

    - {e GroupBy-Reduce} collapses the groupBy + per-group sums into one
      multiloop of BucketReduce generators,
    - {e pipeline fusion} folds the shipdate filter into that traversal,
    - {e AoS→SoA} + {e DFE} split the lineitem input into the used
      columns only,
    - {e CSE} shares the repeated [price * (1 - discount)] subterm. *)

module V = Dmll_interp.Value
module Tpch = Dmll_data.Tpch

(* The schema carries the full set of lineitem columns Query 1 does NOT
   touch (orderkey, partkey, suppkey, ...) so dead field elimination has
   real work to do, as on the actual 16-column table. *)
let lineitem_ty : Dmll_ir.Types.ty =
  Dmll_ir.Types.Struct
    ( "lineitem",
      [ ("orderkey", Dmll_ir.Types.Int);
        ("partkey", Dmll_ir.Types.Int);
        ("suppkey", Dmll_ir.Types.Int);
        ("linenumber", Dmll_ir.Types.Int);
        ("returnflag", Dmll_ir.Types.Int);
        ("linestatus", Dmll_ir.Types.Int);
        ("quantity", Dmll_ir.Types.Float);
        ("extendedprice", Dmll_ir.Types.Float);
        ("discount", Dmll_ir.Types.Float);
        ("tax", Dmll_ir.Types.Float);
        ("shipdate", Dmll_ir.Types.Int);
      ] )

(** Per group: (key, (sum_qty, sum_base, sum_disc_price, sum_charge),
    (avg_qty, avg_price, avg_disc), count). *)
let program () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let items = input_struct_arr ~layout:Dmll_ir.Exp.Partitioned "lineitem" lineitem_ty in
  let body =
    let$ valid =
      filter items (fun it -> field it "shipdate" <= int Tpch.q1_cutoff)
    in
    let$ g =
      group_by valid ~key:(fun it ->
          pair (field it "returnflag") (field it "linestatus"))
    in
    tabulate (buckets g) (fun j ->
        (* NOTE: the bucket is deliberately not let-bound — the
           GroupBy-Reduce rule matches reduces over [g(j)] syntactically *)
        let b () : 'a arr t = bucket_value g j in
        let sum_of f = sum_range (length (b ())) (fun l -> f (get (b ()) l)) in
        let count = to_float (length (b ())) in
        let sum_qty = sum_of (fun it -> field it "quantity") in
        let sum_base = sum_of (fun it -> field it "extendedprice") in
        let sum_disc_price =
          sum_of (fun it ->
              field it "extendedprice" *. (float 1.0 -. field it "discount"))
        in
        let sum_charge =
          sum_of (fun it ->
              field it "extendedprice"
              *. (float 1.0 -. field it "discount")
              *. (float 1.0 +. field it "tax"))
        in
        let avg_qty = sum_of (fun it -> field it "quantity") /. count in
        let avg_price = sum_of (fun it -> field it "extendedprice") /. count in
        let avg_disc = sum_of (fun it -> field it "discount") /. count in
        pair
          (pair (bucket_key g j)
             (pair (pair sum_qty sum_base) (pair sum_disc_price sum_charge)))
          (pair (pair avg_qty avg_price) (pair avg_disc count)))
  in
  reveal body

let aos_inputs (t : Tpch.table) : (string * V.t) list =
  [ ("lineitem", Tpch.aos_value t) ]

(** Inputs for the optimized (post input-SoA) program. *)
let soa_inputs = Tpch.columnar_inputs

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference                                            *)
(* ------------------------------------------------------------------ *)

type group = {
  mutable sum_qty : float;
  mutable sum_base : float;
  mutable sum_disc_price : float;
  mutable sum_charge : float;
  mutable sum_disc : float;
  mutable count : int;
}

(** Single pass over the columns with a direct-indexed group table
    (6 possible (returnflag, linestatus) combinations). *)
let handopt (t : Tpch.table) : (int * int * group) list =
  let groups = Array.init 6 (fun _ ->
      { sum_qty = 0.0; sum_base = 0.0; sum_disc_price = 0.0; sum_charge = 0.0;
        sum_disc = 0.0; count = 0 }) in
  let seen = Array.make 6 false in
  let order = ref [] in
  for i = 0 to t.Tpch.n - 1 do
    if t.Tpch.shipdate.(i) <= Tpch.q1_cutoff then begin
      let k = (t.Tpch.returnflag.(i) * 2) + t.Tpch.linestatus.(i) in
      if not seen.(k) then begin
        seen.(k) <- true;
        order := k :: !order
      end;
      let g = groups.(k) in
      let price = t.Tpch.extendedprice.(i) in
      let disc = t.Tpch.discount.(i) in
      let disc_price = price *. (1.0 -. disc) in
      g.sum_qty <- g.sum_qty +. t.Tpch.quantity.(i);
      g.sum_base <- g.sum_base +. price;
      g.sum_disc_price <- g.sum_disc_price +. disc_price;
      g.sum_charge <- g.sum_charge +. (disc_price *. (1.0 +. t.Tpch.tax.(i)));
      g.sum_disc <- g.sum_disc +. disc;
      g.count <- g.count + 1
    end
  done;
  List.rev_map (fun k -> (k / 2, k mod 2, groups.(k))) !order |> List.rev

lib/apps/pagerank.ml: Array Dmll_dsl Dmll_graph Dmll_interp Dmll_ir

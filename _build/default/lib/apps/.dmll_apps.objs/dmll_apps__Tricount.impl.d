lib/apps/tricount.ml: Dmll_dsl Dmll_graph Dmll_interp Dmll_ir

lib/apps/ridge.ml: Array Dmll_data Dmll_dsl Dmll_interp Dmll_ir Mat

lib/apps/tpch_q1.ml: Array Dmll_data Dmll_dsl Dmll_interp Dmll_ir List

lib/apps/knn.ml: Array Dmll_data Dmll_dsl Dmll_interp Dmll_ir Exp Mat Sym Types

lib/apps/naive_bayes.ml: Array Dmll_data Dmll_dsl Dmll_interp Dmll_ir Mat

(** Gaussian naive Bayes training.

    Per-class feature means and variances via grouped vector reductions
    keyed by the label — one of the paper's §3.2 examples of applications
    "in which the user wishes to somehow reduce the columns of a matrix"
    (together with ridge regression), and a second user of the
    Row-to-Column GPU lowering. *)

module V = Dmll_interp.Value
module Gaussian = Dmll_data.Gaussian

(** Returns (per-class counts, per-class feature sums, per-class feature
    sums of squares) as three maps keyed by label; means/variances follow
    by division. *)
let program ~rows ~cols () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let x = Mat.input ~layout:Dmll_ir.Exp.Partitioned "matrix" ~rows:(int rows) ~cols:(int cols) in
  let labels = input_iarr ~layout:Dmll_ir.Exp.Partitioned "labels" in
  let r = int rows in
  let body =
    let$ counts =
      group_reduce r
        ~key:(fun i -> get labels i)
        ~value:(fun _ -> int 1)
        ~init:(int 0)
        ~combine:(fun a b -> a + b)
    in
    let$ sums =
      group_reduce r
        ~key:(fun i -> get labels i)
        ~value:(fun i -> Mat.row x i)
        ~init:(vzero (Mat.cols x))
        ~combine:vadd
    in
    let$ sqsums =
      group_reduce r
        ~key:(fun i -> get labels i)
        ~value:(fun i -> tabulate (Mat.cols x) (fun j -> Mat.get x i j *. Mat.get x i j))
        ~init:(vzero (Mat.cols x))
        ~combine:vadd
    in
    pair counts (pair sums sqsums)
  in
  reveal body

let inputs (d : Gaussian.dataset) : (string * V.t) list =
  [ Gaussian.matrix_input d; ("labels", V.of_int_array d.Gaussian.labels) ]

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference                                            *)
(* ------------------------------------------------------------------ *)

type stats = { counts : int array; sums : float array; sqsums : float array }

let handopt ~(data : float array) ~(labels : int array) ~(rows : int) ~(cols : int)
    ~(classes : int) : stats =
  let counts = Array.make classes 0 in
  let sums = Array.make (classes * cols) 0.0 in
  let sqsums = Array.make (classes * cols) 0.0 in
  for i = 0 to rows - 1 do
    let c = labels.(i) in
    counts.(c) <- counts.(c) + 1;
    let ib = i * cols and cb = c * cols in
    for j = 0 to cols - 1 do
      let v = data.(ib + j) in
      sums.(cb + j) <- sums.(cb + j) +. v;
      sqsums.(cb + j) <- sqsums.(cb + j) +. (v *. v)
    done
  done;
  { counts; sums; sqsums }

(** CUDA code generator.

    Emits each outer multiloop as a [__global__] kernel plus a host
    launcher, following the lowering strategy of the paper's CUDA backend
    (§3.1, §6): collects precompute their output size (two-pass when
    conditional), scalar reductions use a shared-memory tree, and bucket
    generators fall back to sort-based grouping.  Like {!Codegen_c} this
    output is for inspection/golden tests; execution on GPU hardware is
    modeled by [Sim_gpu]. *)

open Dmll_ir
open Exp

let cty = Codegen_c.cty
let sym_name = Codegen_c.sym_name

(* Device-side expression emission reuses the C emitter (expressions are
   the same language; only std:: helpers differ and we alias them). *)
let emit_device_exp = Codegen_c.emit_exp

let reduce_op_snippet (rfun : exp) (a : Sym.t) (b : Sym.t) : string =
  match rfun with
  | Prim (Prim.Fadd, [ Var x; Var y ]) when Sym.equal x a && Sym.equal y b -> "lhs + rhs"
  | Prim (Prim.Add, [ Var x; Var y ]) when Sym.equal x a && Sym.equal y b -> "lhs + rhs"
  | Prim (Prim.Fmax, [ Var x; Var y ]) when Sym.equal x a && Sym.equal y b ->
      "max(lhs, rhs)"
  | Prim (Prim.Fmin, [ Var x; Var y ]) when Sym.equal x a && Sym.equal y b ->
      "min(lhs, rhs)"
  | _ -> "dmll_combine(lhs, rhs) /* generic combine */"

let emit_kernel (i : int) (l : loop) : string =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let idx = sym_name l.idx in
  (match l.gens with
  | [ Collect { cond; value } ] ->
      let vty = cty (Codegen_c.ty_of_exp value) in
      add "__global__ void kernel_%d(%s* out, const dmll::device_inputs inputs, int64_t n" i vty;
      (match cond with
      | Some _ -> add ", const int64_t* scan /* prefix-summed guards */"
      | None -> ());
      add ") {\n";
      add "  int64_t %s = blockIdx.x * blockDim.x + threadIdx.x;\n" idx;
      add "  if (%s >= n) return;\n" idx;
      let em = Codegen_c.new_emitter () in
      em.Codegen_c.indent <- 1;
      (match cond with
      | Some c ->
          let cv = emit_device_exp em c in
          let v = emit_device_exp em value in
          add "%s" (Buffer.contents em.Codegen_c.buf);
          add "  if (%s) out[scan[%s]] = %s;  // two-pass conditional collect\n" cv idx v
      | None ->
          let v = emit_device_exp em value in
          add "%s" (Buffer.contents em.Codegen_c.buf);
          add "  out[%s] = %s;\n" idx v);
      add "}\n"
  | [ Reduce { value; a; b; rfun; init; cond } ] ->
      let vty = cty (Codegen_c.ty_of_exp value) in
      let scalar = Types.is_scalar (Codegen_c.ty_of_exp value) in
      add "__global__ void kernel_%d(%s* out, const dmll::device_inputs inputs, int64_t n) {\n"
        i vty;
      if scalar then begin
        add "  __shared__ %s sdata[256];  // scalar temporaries fit in shared memory\n" vty;
        add "  int64_t %s = blockIdx.x * blockDim.x + threadIdx.x;\n" idx;
        let em = Codegen_c.new_emitter () in
        em.Codegen_c.indent <- 1;
        let iv = emit_device_exp em init in
        let v = emit_device_exp em value in
        add "%s" (Buffer.contents em.Codegen_c.buf);
        (match cond with
        | Some c ->
            let em2 = Codegen_c.new_emitter () in
            let cv = emit_device_exp em2 c in
            add "  %s x = (%s < n && (%s)) ? (%s) : (%s);\n" vty idx cv v iv
        | None -> add "  %s x = (%s < n) ? (%s) : (%s);\n" vty idx v iv);
        add "  sdata[threadIdx.x] = x;\n";
        add "  __syncthreads();\n";
        add "  for (int s = blockDim.x / 2; s > 0; s >>= 1) {\n";
        add "    if (threadIdx.x < s) {\n";
        add "      %s lhs = sdata[threadIdx.x], rhs = sdata[threadIdx.x + s];\n" vty;
        add "      sdata[threadIdx.x] = %s;\n" (reduce_op_snippet rfun a b);
        add "    }\n    __syncthreads();\n  }\n";
        add "  if (threadIdx.x == 0) out[blockIdx.x] = sdata[0];\n"
      end
      else begin
        add "  // WARNING: vector-typed reduction temporaries do not fit in\n";
        add "  // shared memory; reduction goes through global memory.\n";
        add "  // Apply the Row-to-Column Reduce transformation to avoid this.\n";
        add "  int64_t %s = blockIdx.x * blockDim.x + threadIdx.x;\n" idx;
        add "  if (%s < n) dmll::global_vector_reduce(out, inputs, %s);\n" idx idx
      end;
      add "}\n"
  | gens ->
      add "// multi-generator loop: %d fused generators share one traversal\n"
        (List.length gens);
      add "__global__ void kernel_%d(dmll::multi_out out, const dmll::device_inputs inputs, int64_t n) {\n" i;
      add "  int64_t %s = blockIdx.x * blockDim.x + threadIdx.x;\n" idx;
      add "  if (%s >= n) return;\n" idx;
      List.iteri
        (fun g_i g ->
          match g with
          | BucketReduce { key; value; _ } | BucketCollect { key; value; _ } ->
              let em = Codegen_c.new_emitter () in
              em.Codegen_c.indent <- 1;
              let kv = emit_device_exp em key in
              let v = emit_device_exp em value in
              add "%s" (Buffer.contents em.Codegen_c.buf);
              add "  out.bucket_%d.sorted_insert(%s, %s);  // GPU buckets by sorting\n"
                g_i kv v
          | Collect { value; _ } ->
              let em = Codegen_c.new_emitter () in
              em.Codegen_c.indent <- 1;
              let v = emit_device_exp em value in
              add "%s" (Buffer.contents em.Codegen_c.buf);
              add "  out.collect_%d[%s] = %s;\n" g_i idx v
          | Reduce _ -> add "  // generator %d: block reduction as above\n" g_i)
        gens;
      add "}\n");
  Buffer.contents buf

(** Emit kernels for every outer multiloop plus a host launcher. *)
let emit ?(name = "dmll_program") (e : exp) : string =
  let loops = Dmll_analysis.Stencil.outer_loops e in
  let kernels = List.mapi emit_kernel loops in
  let launches =
    List.mapi
      (fun i l ->
        let em = Codegen_c.new_emitter () in
        em.Codegen_c.indent <- 1;
        let n = emit_device_exp em l.size in
        Printf.sprintf
          "%s  {\n    int64_t n = %s;\n    int64_t blocks = (n + 255) / 256;\n    kernel_%d<<<blocks, 256>>>(out_%d, dev_inputs, n);\n  }\n"
          (Buffer.contents em.Codegen_c.buf) n i i)
      loops
  in
  String.concat ""
    ([ "// Generated by the DMLL CUDA backend. Do not edit.\n";
       "#include <cuda_runtime.h>\n#include \"dmll_runtime.cuh\"\n\n";
     ]
    @ kernels
    @ [ Printf.sprintf "\nvoid %s_host(const dmll::inputs_t& inputs) {\n" name;
        "  dmll::device_inputs dev_inputs = dmll::transfer(inputs); // may transpose row-major matrices\n";
      ]
    @ launches
    @ [ "  cudaDeviceSynchronize();\n}\n" ])

(** Native backend, stage 2: compile the generated OCaml program with
    [ocamlopt] and execute it — the full Delite-style flow the paper used
    (generate → gcc → run), realized with the OCaml toolchain.

    The child process times its own kernel (median of [runs] executions,
    after a warmup) so compilation and input-marshalling costs never
    pollute the measurement, and marshals its result back for the
    correctness gate. *)

module V = Dmll_interp.Value

type result = { value : V.t; seconds : float }

exception Native_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Native_error s)) fmt

(** Is the native toolchain usable in this environment? *)
let available =
  lazy (Sys.command "ocamlfind ocamlopt -version > /dev/null 2>&1" = 0)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d = Filename.concat base (Printf.sprintf "dmll_native_%d_%d" (Unix.getpid ()) i) in
    if Sys.file_exists d then go (i + 1)
    else begin
      Unix.mkdir d 0o755;
      d
    end
  in
  go 0

type compiled = {
  dir : string;
  exe : string;
  source : string;  (** the generated OCaml source, for inspection *)
}

(** Generate and compile the program; reusable across input sets. *)
let compile (e : Dmll_ir.Exp.exp) : compiled =
  if not (Lazy.force available) then fail "ocamlfind/ocamlopt not available";
  let source = Codegen_ocaml.emit_program e in
  let dir = fresh_dir () in
  let src_path = Filename.concat dir "prog.ml" in
  let oc = open_out src_path in
  output_string oc source;
  close_out oc;
  let log = Filename.concat dir "build.log" in
  let cmd =
    Printf.sprintf
      "cd %s && ocamlfind ocamlopt -package unix -linkpkg prog.ml -o prog > %s 2>&1"
      (Filename.quote dir) (Filename.quote log)
  in
  if Sys.command cmd <> 0 then begin
    let log_contents =
      try
        let ic = open_in log in
        let n = in_channel_length ic in
        let s = really_input_string ic (Stdlib.min n 4000) in
        close_in ic;
        s
      with _ -> "(no log)"
    in
    fail "ocamlopt failed:\n%s" log_contents
  end;
  { dir; exe = Filename.concat dir "prog"; source }

(** Run a compiled program on [inputs]; the child reports the median
    kernel time of [runs] executions. *)
let execute (c : compiled) ?(runs = 3) ~(inputs : (string * V.t) list) () : result =
  let in_path = Filename.concat c.dir "inputs.bin" in
  let out_path = Filename.concat c.dir "result.bin" in
  let oc = open_out_bin in_path in
  Marshal.to_channel oc inputs [];
  close_out oc;
  let time_path = Filename.concat c.dir "time.txt" in
  let cmd =
    Printf.sprintf "%s %s %d %s > %s"
      (Filename.quote c.exe) (Filename.quote in_path) runs (Filename.quote out_path)
      (Filename.quote time_path)
  in
  if Sys.command cmd <> 0 then fail "generated program failed (%s)" c.exe;
  let seconds =
    let ic = open_in time_path in
    let line = input_line ic in
    close_in ic;
    Scanf.sscanf line "TIME %f" (fun f -> f)
  in
  let value : V.t =
    let ic = open_in_bin out_path in
    let v = (Marshal.from_channel ic : V.t) in
    close_in ic;
    v
  in
  { value; seconds }

(** One-shot: generate, compile, run, clean up nothing (temp dirs are left
    for inspection; they live under the system temp dir). *)
let run ?(runs = 3) ~(inputs : (string * V.t) list) (e : Dmll_ir.Exp.exp) : result =
  execute (compile e) ~runs ~inputs ()

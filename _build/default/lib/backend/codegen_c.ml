(** C++ code generator.

    Emits a C++17 translation unit from optimized DMLL IR, in the style of
    Delite's C++ backend that the paper reuses (§5).  The emitted code is
    for inspection and golden-testing — it demonstrates that the IR carries
    everything a native backend needs (types, loop structure, generator
    decomposition) — and is not compiled inside this repository (the
    closure backend plays the executable role; see DESIGN.md §2). *)

open Dmll_ir
open Exp

let rec cty : Types.ty -> string = function
  | Types.Unit -> "void"
  | Types.Bool -> "bool"
  | Types.Int -> "int64_t"
  | Types.Float -> "double"
  | Types.Str -> "std::string"
  | Types.Arr t -> Printf.sprintf "std::vector<%s>" (cty t)
  | Types.Tup ts ->
      Printf.sprintf "std::tuple<%s>" (String.concat ", " (List.map cty ts))
  | Types.Struct (n, _) -> n
  | Types.Map (k, v) -> Printf.sprintf "dmll::bucket_map<%s, %s>" (cty k) (cty v)

let sym_name s = Printf.sprintf "%s_%d" (Sym.name s) (Sym.id s)

type emitter = { buf : Buffer.t; mutable indent : int; mutable tmp : int }

let new_emitter () = { buf = Buffer.create 1024; indent = 0; tmp = 0 }

let line em fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string em.buf (String.make (2 * em.indent) ' ');
      Buffer.add_string em.buf s;
      Buffer.add_char em.buf '\n')
    fmt

let fresh_tmp em prefix =
  em.tmp <- em.tmp + 1;
  Printf.sprintf "%s_%d" prefix em.tmp

let prim_c (p : Prim.t) (args : string list) : string =
  let a () = List.nth args 0 and b () = List.nth args 1 in
  match p with
  | Prim.Add | Fadd -> Printf.sprintf "(%s + %s)" (a ()) (b ())
  | Sub | Fsub -> Printf.sprintf "(%s - %s)" (a ()) (b ())
  | Mul | Fmul -> Printf.sprintf "(%s * %s)" (a ()) (b ())
  | Div | Fdiv -> Printf.sprintf "(%s / %s)" (a ()) (b ())
  | Mod -> Printf.sprintf "(%s %% %s)" (a ()) (b ())
  | Neg | Fneg -> Printf.sprintf "(-%s)" (a ())
  | Min | Fmin -> Printf.sprintf "std::min(%s, %s)" (a ()) (b ())
  | Max | Fmax -> Printf.sprintf "std::max(%s, %s)" (a ()) (b ())
  | Sqrt -> Printf.sprintf "std::sqrt(%s)" (a ())
  | Exp -> Printf.sprintf "std::exp(%s)" (a ())
  | Log -> Printf.sprintf "std::log(%s)" (a ())
  | Fabs -> Printf.sprintf "std::abs(%s)" (a ())
  | Pow -> Printf.sprintf "std::pow(%s, %s)" (a ()) (b ())
  | I2f -> Printf.sprintf "static_cast<double>(%s)" (a ())
  | F2i -> Printf.sprintf "static_cast<int64_t>(%s)" (a ())
  | Eq -> Printf.sprintf "(%s == %s)" (a ()) (b ())
  | Ne -> Printf.sprintf "(%s != %s)" (a ()) (b ())
  | Lt -> Printf.sprintf "(%s < %s)" (a ()) (b ())
  | Le -> Printf.sprintf "(%s <= %s)" (a ()) (b ())
  | Gt -> Printf.sprintf "(%s > %s)" (a ()) (b ())
  | Ge -> Printf.sprintf "(%s >= %s)" (a ()) (b ())
  | And -> Printf.sprintf "(%s && %s)" (a ()) (b ())
  | Or -> Printf.sprintf "(%s || %s)" (a ()) (b ())
  | Not -> Printf.sprintf "(!%s)" (a ())
  | Strcat -> Printf.sprintf "(%s + %s)" (a ()) (b ())
  | Strlen -> Printf.sprintf "static_cast<int64_t>(%s.size())" (a ())
  | Strget -> Printf.sprintf "static_cast<int64_t>(%s[%s])" (a ()) (b ())

let ty_of_exp e =
  try
    Typecheck.infer
      (Sym.Set.fold
         (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
         (free_vars e) Sym.Map.empty)
      e
  with Typecheck.Type_error _ -> Types.Unit

(* Emit [e]; statements go to [em], the returned string is a C++ rvalue. *)
let rec emit_exp em (e : exp) : string =
  match e with
  | Const Cunit -> "/*unit*/0"
  | Const (Cbool b) -> if b then "true" else "false"
  | Const (Cint i) -> Printf.sprintf "INT64_C(%d)" i
  | Const (Cfloat f) -> Printf.sprintf "%h" f
  | Const (Cstr s) -> Printf.sprintf "std::string(%S)" s
  | Var s -> sym_name s
  | Prim (p, args) -> prim_c p (List.map (emit_exp em) args)
  | If (c, t, f) ->
      Printf.sprintf "(%s ? %s : %s)" (emit_exp em c) (emit_exp em t) (emit_exp em f)
  | Let (s, bound, body) ->
      let rv = emit_exp em bound in
      line em "const %s %s = %s;" (cty (Sym.ty s)) (sym_name s) rv;
      emit_exp em body
  | Tuple es ->
      Printf.sprintf "std::make_tuple(%s)"
        (String.concat ", " (List.map (emit_exp em) es))
  | Proj (a, i) -> Printf.sprintf "std::get<%d>(%s)" i (emit_exp em a)
  | Record (ty, fs) ->
      Printf.sprintf "%s{%s}" (cty ty)
        (String.concat ", " (List.map (fun (_, v) -> emit_exp em v) fs))
  | Field (a, n) -> Printf.sprintf "%s.%s" (emit_exp em a) n
  | Len a -> Printf.sprintf "static_cast<int64_t>(%s.size())" (emit_exp em a)
  | Read (a, i) -> Printf.sprintf "%s[%s]" (emit_exp em a) (emit_exp em i)
  | MapRead (m, k, None) -> Printf.sprintf "%s.at(%s)" (emit_exp em m) (emit_exp em k)
  | MapRead (m, k, Some d) ->
      Printf.sprintf "%s.get_or(%s, %s)" (emit_exp em m) (emit_exp em k)
        (emit_exp em d)
  | KeyAt (m, i) -> Printf.sprintf "%s.key_at(%s)" (emit_exp em m) (emit_exp em i)
  | Input (n, ty, layout) ->
      ignore ty;
      Printf.sprintf "inputs.%s%s" n
        (match layout with Partitioned -> " /*partitioned*/" | Local -> "")
  | Extern { ename; eargs; _ } ->
      Printf.sprintf "dmll::extern_%s(%s)" ename
        (String.concat ", " (List.map (emit_exp em) eargs))
  | Loop l -> emit_loop em l

and emit_loop em (l : loop) : string =
  let n = fresh_tmp em "n" in
  line em "const int64_t %s = %s;" n (emit_exp em l.size);
  let idx = sym_name l.idx in
  (* declare generator accumulators *)
  let gens =
    List.map
      (fun g ->
        let out = fresh_tmp em "out" in
        (match g with
        | Collect { value; _ } ->
            line em "std::vector<%s> %s;" (cty (ty_of_exp value)) out;
            line em "%s.reserve(%s);" out n
        | Reduce { init; _ } ->
            let rv = emit_exp em init in
            line em "%s %s = %s;" (cty (ty_of_exp init)) out rv
        | BucketCollect { key; value; _ } ->
            line em "dmll::bucket_map<%s, std::vector<%s>> %s;"
              (cty (ty_of_exp key)) (cty (ty_of_exp value)) out
        | BucketReduce { key; value; _ } ->
            line em "dmll::bucket_map<%s, %s> %s;" (cty (ty_of_exp key))
              (cty (ty_of_exp value)) out);
        (g, out))
      l.gens
  in
  line em "for (int64_t %s = 0; %s < %s; ++%s) {" idx idx n idx;
  em.indent <- em.indent + 1;
  List.iter
    (fun (g, out) ->
      (match gen_cond g with
      | Some c ->
          let cv = emit_exp em c in
          line em "if (%s) {" cv;
          em.indent <- em.indent + 1
      | None -> ());
      (match g with
      | Collect { value; _ } ->
          let v = emit_exp em value in
          line em "%s.push_back(%s);" out v
      | Reduce { value; a; b; rfun; _ } ->
          let v = emit_exp em value in
          line em "const %s %s = %s;" (cty (Sym.ty a)) (sym_name a) out;
          line em "const %s %s = %s;" (cty (Sym.ty b)) (sym_name b) v;
          let rv = emit_exp em rfun in
          line em "%s = %s;" out rv
      | BucketCollect { key; value; _ } ->
          let kv = emit_exp em key in
          let v = emit_exp em value in
          line em "%s.slot(%s).push_back(%s);" out kv v
      | BucketReduce { key; value; a; b; rfun; init } ->
          let kv = emit_exp em key in
          let v = emit_exp em value in
          let iv = emit_exp em init in
          line em "auto& acc_%s = %s.slot_or(%s, %s);" out out kv iv;
          line em "const %s %s = acc_%s;" (cty (Sym.ty a)) (sym_name a) out;
          line em "const %s %s = %s;" (cty (Sym.ty b)) (sym_name b) v;
          let rv = emit_exp em rfun in
          line em "acc_%s = %s;" out rv);
      match gen_cond g with
      | Some _ ->
          em.indent <- em.indent - 1;
          line em "}"
      | None -> ())
    gens;
  em.indent <- em.indent - 1;
  line em "}";
  match gens with
  | [ (_, out) ] -> out
  | gens ->
      Printf.sprintf "std::make_tuple(%s)"
        (String.concat ", " (List.map snd gens))

(* Struct declarations used anywhere in the program. *)
let struct_decls (e : exp) : string =
  let tbl = Hashtbl.create 4 in
  ignore
    (fold
       (fun () n ->
         let note = function
           | Types.Struct (name, fields) -> Hashtbl.replace tbl name fields
           | _ -> ()
         in
         match n with
         | Record (ty, _) -> note ty
         | Var s -> note (Sym.ty s)
         | Input (_, Types.Arr ty, _) -> note ty
         | _ -> ())
       () e);
  Hashtbl.fold
    (fun name fields acc ->
      acc
      ^ Printf.sprintf "struct %s {\n%s};\n\n" name
          (String.concat ""
             (List.map (fun (f, t) -> Printf.sprintf "  %s %s;\n" (cty t) f) fields)))
    tbl ""

(** Emit a full translation unit. *)
let emit ?(name = "dmll_program") (e : exp) : string =
  let em = new_emitter () in
  em.indent <- 1;
  let result = emit_exp em e in
  let body = Buffer.contents em.buf in
  let ret_ty = cty (ty_of_exp e) in
  String.concat ""
    [ "// Generated by the DMLL C++ backend. Do not edit.\n";
      "#include <cstdint>\n#include <cmath>\n#include <string>\n";
      "#include <vector>\n#include <tuple>\n#include <algorithm>\n";
      "#include \"dmll_runtime.hpp\"  // bucket_map, extern registry\n\n";
      struct_decls e;
      Printf.sprintf "%s %s(const dmll::inputs_t& inputs) {\n" ret_ty name;
      body;
      Printf.sprintf "  return %s;\n}\n" result;
    ]

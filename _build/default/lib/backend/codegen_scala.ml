(** Scala code generator.

    Emits the IR in the Scala style the paper uses for its JVM cluster
    experiments (§6.2: "DMLL generated Scala code and ran entirely in the
    JVM").  Generators map onto the DMLL runtime's loop combinators, which
    mirror Figure 2. *)

open Dmll_ir
open Exp

let rec sty : Types.ty -> string = function
  | Types.Unit -> "Unit"
  | Types.Bool -> "Boolean"
  | Types.Int -> "Long"
  | Types.Float -> "Double"
  | Types.Str -> "String"
  | Types.Arr t -> Printf.sprintf "Array[%s]" (sty t)
  | Types.Tup ts -> Printf.sprintf "(%s)" (String.concat ", " (List.map sty ts))
  | Types.Struct (n, _) -> n
  | Types.Map (k, v) -> Printf.sprintf "BucketMap[%s, %s]" (sty k) (sty v)

let sym_name s = Printf.sprintf "%s%d" (Sym.name s) (Sym.id s)

let prim_scala (p : Prim.t) (args : string list) : string =
  let a () = List.nth args 0 and b () = List.nth args 1 in
  match p with
  | Prim.Add | Fadd -> Printf.sprintf "(%s + %s)" (a ()) (b ())
  | Sub | Fsub -> Printf.sprintf "(%s - %s)" (a ()) (b ())
  | Mul | Fmul -> Printf.sprintf "(%s * %s)" (a ()) (b ())
  | Div | Fdiv -> Printf.sprintf "(%s / %s)" (a ()) (b ())
  | Mod -> Printf.sprintf "(%s %% %s)" (a ()) (b ())
  | Neg | Fneg -> Printf.sprintf "(-%s)" (a ())
  | Min | Fmin -> Printf.sprintf "math.min(%s, %s)" (a ()) (b ())
  | Max | Fmax -> Printf.sprintf "math.max(%s, %s)" (a ()) (b ())
  | Sqrt -> Printf.sprintf "math.sqrt(%s)" (a ())
  | Exp -> Printf.sprintf "math.exp(%s)" (a ())
  | Log -> Printf.sprintf "math.log(%s)" (a ())
  | Fabs -> Printf.sprintf "math.abs(%s)" (a ())
  | Pow -> Printf.sprintf "math.pow(%s, %s)" (a ()) (b ())
  | I2f -> Printf.sprintf "%s.toDouble" (a ())
  | F2i -> Printf.sprintf "%s.toLong" (a ())
  | Eq -> Printf.sprintf "(%s == %s)" (a ()) (b ())
  | Ne -> Printf.sprintf "(%s != %s)" (a ()) (b ())
  | Lt -> Printf.sprintf "(%s < %s)" (a ()) (b ())
  | Le -> Printf.sprintf "(%s <= %s)" (a ()) (b ())
  | Gt -> Printf.sprintf "(%s > %s)" (a ()) (b ())
  | Ge -> Printf.sprintf "(%s >= %s)" (a ()) (b ())
  | And -> Printf.sprintf "(%s && %s)" (a ()) (b ())
  | Or -> Printf.sprintf "(%s || %s)" (a ()) (b ())
  | Not -> Printf.sprintf "(!%s)" (a ())
  | Strcat -> Printf.sprintf "(%s + %s)" (a ()) (b ())
  | Strlen -> Printf.sprintf "%s.length.toLong" (a ())
  | Strget -> Printf.sprintf "%s.charAt(%s.toInt).toLong" (a ()) (b ())

let indent n s =
  String.concat "\n"
    (List.map (fun l -> if l = "" then l else String.make n ' ' ^ l)
       (String.split_on_char '\n' s))

let rec emit_exp (e : exp) : string =
  match e with
  | Const Cunit -> "()"
  | Const (Cbool b) -> string_of_bool b
  | Const (Cint i) -> Printf.sprintf "%dL" i
  | Const (Cfloat f) -> Printf.sprintf "%g" f
  | Const (Cstr s) -> Printf.sprintf "%S" s
  | Var s -> sym_name s
  | Prim (p, args) -> prim_scala p (List.map emit_exp args)
  | If (c, t, f) ->
      Printf.sprintf "(if (%s) %s else %s)" (emit_exp c) (emit_exp t) (emit_exp f)
  | Let (s, bound, body) ->
      Printf.sprintf "val %s: %s = %s\n%s" (sym_name s) (sty (Sym.ty s))
        (emit_exp bound) (emit_exp body)
  | Tuple es -> Printf.sprintf "(%s)" (String.concat ", " (List.map emit_exp es))
  | Proj (a, i) -> Printf.sprintf "%s._%d" (emit_exp a) (i + 1)
  | Record (Types.Struct (n, _), fs) ->
      Printf.sprintf "%s(%s)" n (String.concat ", " (List.map (fun (_, v) -> emit_exp v) fs))
  | Record _ -> "/* malformed record */"
  | Field (a, n) -> Printf.sprintf "%s.%s" (emit_exp a) n
  | Len a -> Printf.sprintf "%s.length.toLong" (emit_exp a)
  | Read (a, i) -> Printf.sprintf "%s(%s.toInt)" (emit_exp a) (emit_exp i)
  | MapRead (m, k, None) -> Printf.sprintf "%s(%s)" (emit_exp m) (emit_exp k)
  | MapRead (m, k, Some d) ->
      Printf.sprintf "%s.getOrElse(%s, %s)" (emit_exp m) (emit_exp k) (emit_exp d)
  | KeyAt (m, i) -> Printf.sprintf "%s.keyAt(%s)" (emit_exp m) (emit_exp i)
  | Input (n, ty, Partitioned) ->
      Printf.sprintf "inputs.partitioned[%s](%S)" (sty ty) n
  | Input (n, ty, Local) -> Printf.sprintf "inputs.local[%s](%S)" (sty ty) n
  | Extern { ename; eargs; _ } ->
      Printf.sprintf "Externs.%s(%s)" ename (String.concat ", " (List.map emit_exp eargs))
  | Loop l -> emit_loop l

and emit_loop (l : loop) : string =
  let idx = sym_name l.idx in
  let size = emit_exp l.size in
  let emit_gen g =
    let cond =
      match gen_cond g with
      | None -> "_ => true"
      | Some c -> Printf.sprintf "%s => %s" idx (emit_exp c)
    in
    match g with
    | Collect { value; _ } ->
        Printf.sprintf "Collect(%s)(%s)(%s =>\n%s)" size cond idx
          (indent 2 (emit_exp value))
    | Reduce { value; a; b; rfun; init; _ } ->
        Printf.sprintf "Reduce(%s)(%s)(%s =>\n%s)(%s)((%s, %s) => %s)" size cond idx
          (indent 2 (emit_exp value))
          (emit_exp init) (sym_name a) (sym_name b) (emit_exp rfun)
    | BucketCollect { key; value; _ } ->
        Printf.sprintf "BucketCollect(%s)(%s)(%s => %s)(%s =>\n%s)" size cond idx
          (emit_exp key) idx
          (indent 2 (emit_exp value))
    | BucketReduce { key; value; a; b; rfun; init; _ } ->
        Printf.sprintf "BucketReduce(%s)(%s)(%s => %s)(%s =>\n%s)(%s)((%s, %s) => %s)"
          size cond idx (emit_exp key) idx
          (indent 2 (emit_exp value))
          (emit_exp init) (sym_name a) (sym_name b) (emit_exp rfun)
  in
  match l.gens with
  | [ g ] -> emit_gen g
  | gens ->
      Printf.sprintf "multiloop(%s)(\n%s)" size
        (String.concat ",\n" (List.map (fun g -> indent 2 (emit_gen g)) gens))

(* Case-class declarations for the structs used in the program. *)
let struct_decls (e : exp) : string =
  let tbl = Hashtbl.create 4 in
  ignore
    (fold
       (fun () n ->
         let note = function
           | Types.Struct (name, fields) -> Hashtbl.replace tbl name fields
           | _ -> ()
         in
         match n with
         | Record (ty, _) -> note ty
         | Input (_, Types.Arr ty, _) -> note ty
         | _ -> ())
       () e);
  Hashtbl.fold
    (fun name fields acc ->
      acc
      ^ Printf.sprintf "case class %s(%s)\n" name
          (String.concat ", "
             (List.map (fun (f, t) -> Printf.sprintf "%s: %s" f (sty t)) fields)))
    tbl ""

(** Emit a complete Scala object. *)
let emit ?(name = "DmllProgram") (e : exp) : string =
  String.concat ""
    [ "// Generated by the DMLL Scala backend. Do not edit.\n";
      "import dmll.runtime._\n\n";
      struct_decls e;
      Printf.sprintf "object %s {\n  def apply(inputs: Inputs) = {\n" name;
      indent 4 (emit_exp e);
      "\n  }\n}\n";
    ]

(** The CPU backend: compiles optimized DMLL IR to OCaml closures over
    unboxed storage.

    This is the reproduction's stand-in for Delite's C++ code generator
    (DESIGN.md §2).  The properties Table 2 depends on are preserved:

    - a fused multiloop compiles to a {e single} traversal;
    - [Float]/[Int] arrays use unboxed [float array]/[int array] storage
      (the runtime face of AoS→SoA);
    - scalar expressions evaluate through monomorphic [frame -> float] /
      [frame -> int] closures — no boxing in inner loops — with composite
      fast paths for the hot shapes a native backend gets for free:
      affine subscripts ([i*c + j]), constant operands, array reads at
      slot-resolved bases;
    - argmin/argmax reductions over (value, index) tuples run on unboxed
      accumulators;
    - vector (elementwise-add) reductions accumulate {e in place}, fusing
      the value collect into the accumulation loop — no per-element
      temporaries, matching the paper's generated kernels;
    - bucket generators that share a key and condition (the output of
      horizontal fusion / Conditional Reduce / GroupBy-Reduce) share one
      hash probe per iteration through a {e slot registry}.

    The remaining gap to hand-written OCaml is one indirect call per
    residual IR node, reported honestly in EXPERIMENTS.md.

    Concurrency: compiled objects carry private mutable generator state —
    compile per domain (as [Dmll_runtime.Evalenv] does), never share one
    compiled object across domains. *)

open Dmll_ir
module V = Dmll_interp.Value

exception Compile_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Frames and slots                                                    *)
(* ------------------------------------------------------------------ *)

type frame = { fs : float array; is : int array; os : V.t array }

type kind = Kf | Ki | Ko

let kind_of_ty = function
  | Types.Float -> Kf
  | Types.Int | Types.Bool -> Ki
  | _ -> Ko

type ctx = {
  slots : (kind * int) Sym.Tbl.t;
  inputs : (string, int) Hashtbl.t;  (** input name -> obj slot *)
  mutable nf : int;
  mutable ni : int;
  mutable no : int;
}

let new_ctx () =
  { slots = Sym.Tbl.create 64; inputs = Hashtbl.create 8; nf = 0; ni = 0; no = 0 }

let alloc_slot ctx (s : Sym.t) : kind * int =
  match Sym.Tbl.find_opt ctx.slots s with
  | Some ks -> ks
  | None ->
      let k = kind_of_ty (Sym.ty s) in
      let idx =
        match k with
        | Kf ->
            ctx.nf <- ctx.nf + 1;
            ctx.nf - 1
        | Ki ->
            ctx.ni <- ctx.ni + 1;
            ctx.ni - 1
        | Ko ->
            ctx.no <- ctx.no + 1;
            ctx.no - 1
      in
      Sym.Tbl.add ctx.slots s (k, idx);
      (k, idx)

let input_slot ctx name =
  match Hashtbl.find_opt ctx.inputs name with
  | Some i -> i
  | None ->
      ctx.no <- ctx.no + 1;
      Hashtbl.add ctx.inputs name (ctx.no - 1);
      ctx.no - 1

let slot ctx s =
  match Sym.Tbl.find_opt ctx.slots s with
  | Some ks -> ks
  | None -> alloc_slot ctx s

(* Static type of a subexpression, from declared symbol types. *)
let tyof (e : Exp.exp) : Types.ty =
  Typecheck.infer
    (Sym.Set.fold
       (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
       (Exp.free_vars e) Sym.Map.empty)
    e

(* ------------------------------------------------------------------ *)
(* Growable buffers                                                    *)
(* ------------------------------------------------------------------ *)

module Fbuf = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 16 0.0; n = 0 }

  let push t x =
    if t.n = Array.length t.a then begin
      let a' = Array.make (2 * t.n) 0.0 in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let contents t = Array.sub t.a 0 t.n
end

module Ibuf = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push t x =
    if t.n = Array.length t.a then begin
      let a' = Array.make (2 * t.n) 0 in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let contents t = Array.sub t.a 0 t.n
end

module Obuf = struct
  type 'a t = { mutable a : 'a array; mutable n : int; dummy : 'a }

  let create dummy = { a = Array.make 16 dummy; n = 0; dummy }

  let push t x =
    if t.n = Array.length t.a then begin
      let a' = Array.make (2 * t.n) t.dummy in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let contents t = Array.sub t.a 0 t.n
end

module Vtbl = Hashtbl.Make (struct
  type t = V.t

  let equal = V.equal
  let hash = Hashtbl.hash
end)

(* ------------------------------------------------------------------ *)
(* Bucket slot registries                                              *)
(* ------------------------------------------------------------------ *)

(* One registry per (condition, key) class of a multiloop's bucket
   generators: it evaluates the condition and key once per iteration and
   assigns slots in first-seen order; all generators of the class share
   the probe and the key array. *)
type registry = {
  rkey : frame -> V.t;
  rcond : (frame -> bool) option;
  kidx : int;  (** the loop index slot, for per-iteration memoization *)
  mutable rtbl : int Vtbl.t;
  mutable rkeys : V.t Obuf.t;
  mutable cur_iter : int;
  mutable cur_slot : int;  (** -1 = condition false this iteration *)
}

let new_registry ~kidx ~rkey ~rcond =
  { rkey; rcond; kidx; rtbl = Vtbl.create 64; rkeys = Obuf.create V.Vunit;
    cur_iter = -1; cur_slot = -1 }

let registry_reset r =
  r.rtbl <- Vtbl.create 64;
  r.rkeys <- Obuf.create V.Vunit;
  r.cur_iter <- -1;
  r.cur_slot <- -1

(* Slot of the current iteration's key, or -1 when the condition is
   false.  Memoized on the loop index so sibling generators share it. *)
let registry_slot (r : registry) (fr : frame) : int =
  let i = fr.is.(r.kidx) in
  if r.cur_iter <> i then begin
    r.cur_iter <- i;
    r.cur_slot <-
      (match r.rcond with
      | Some c when not (c fr) -> -1
      | _ -> (
          let k = r.rkey fr in
          match Vtbl.find_opt r.rtbl k with
          | Some s -> s
          | None ->
              let s = r.rkeys.Obuf.n in
              Vtbl.add r.rtbl k s;
              Obuf.push r.rkeys k;
              s))
  end;
  r.cur_slot

(* ------------------------------------------------------------------ *)
(* Scalar compilation                                                  *)
(* ------------------------------------------------------------------ *)

open Exp

let rec comp_f ctx (e : exp) : frame -> float =
  match e with
  | Const (Cfloat f) -> fun _ -> f
  | Var s -> (
      match slot ctx s with
      | Kf, k -> fun fr -> fr.fs.(k)
      | Ko, k -> fun fr -> V.as_float fr.os.(k)
      | Ki, _ -> fail "float variable in int slot: %a" Sym.pp s)
  | Prim (p, [ a; b ]) -> (
      let bin op =
        match (a, b) with
        | _, Const (Cfloat c) ->
            let ca = comp_f ctx a in
            fun fr -> op (ca fr) c
        | Const (Cfloat c), _ ->
            let cb = comp_f ctx b in
            fun fr -> op c (cb fr)
        | _ ->
            let ca = comp_f ctx a and cb = comp_f ctx b in
            fun fr -> op (ca fr) (cb fr)
      in
      match p with
      | Prim.Fadd -> bin ( +. )
      | Fsub -> bin ( -. )
      | Fmul -> bin ( *. )
      | Fdiv -> bin ( /. )
      | Fmin -> bin Float.min
      | Fmax -> bin Float.max
      | Pow -> bin ( ** )
      | _ -> comp_f_generic ctx e)
  | Prim (Prim.Fneg, [ a ]) ->
      let ca = comp_f ctx a in
      fun fr -> -.ca fr
  | Prim (Prim.Sqrt, [ a ]) ->
      let ca = comp_f ctx a in
      fun fr -> sqrt (ca fr)
  | Prim (Prim.Exp, [ a ]) ->
      let ca = comp_f ctx a in
      fun fr -> exp (ca fr)
  | Prim (Prim.Log, [ a ]) ->
      let ca = comp_f ctx a in
      fun fr -> log (ca fr)
  | Prim (Prim.Fabs, [ a ]) ->
      let ca = comp_f ctx a in
      fun fr -> Float.abs (ca fr)
  | Prim (Prim.I2f, [ a ]) ->
      let ca = comp_i ctx a in
      fun fr -> float_of_int (ca fr)
  | If (c, t, f) ->
      let cc = comp_b ctx c and ct = comp_f ctx t and cf = comp_f ctx f in
      fun fr -> if cc fr then ct fr else cf fr
  | Let (s, bound, body) ->
      let store = comp_store ctx s bound in
      let cb = comp_f ctx body in
      fun fr ->
        store fr;
        cb fr
  | Read (arr, ix) -> (
      let ci = comp_i ctx ix in
      match base_obj_slot ctx arr with
      | Some k ->
          fun fr -> (
            match fr.os.(k) with
            | V.Varr (V.Fa a) -> a.(ci fr)
            | v -> V.as_float (V.get v (ci fr)))
      | None ->
          let ca = comp_v ctx arr in
          fun fr -> (
            match ca fr with
            | V.Varr (V.Fa a) -> a.(ci fr)
            | v -> V.as_float (V.get v (ci fr))))
  | Loop { size; idx; gens = [ Reduce r ] } when Types.equal (tyof e) Types.Float ->
      comp_float_reduce ctx ~size ~idx r
  | _ -> comp_f_generic ctx e

and comp_f_generic ctx e =
  let cv = comp_v ctx e in
  fun fr -> V.as_float (cv fr)

(* The obj slot holding an array-valued base expression, when it is a
   variable or input (the overwhelmingly common case after optimization). *)
and base_obj_slot ctx (e : exp) : int option =
  match e with
  | Var s -> ( match slot ctx s with Ko, k -> Some k | _ -> None)
  | Input (name, _, _) -> Some (input_slot ctx name)
  | _ -> None

(* A float Reduce loop compiled to a tight accumulator loop. *)
and comp_float_reduce ctx ~size ~idx (r : reduce_gen) : frame -> float =
  let _, kidx = alloc_slot ctx idx in
  let cn = comp_i ctx size in
  let cinit = comp_f ctx r.init in
  let cv = comp_f ctx r.value in
  let ccond = Option.map (comp_b ctx) r.cond in
  let direct : (float -> float -> float) option =
    match r.rfun with
    | Prim (p, [ Var x; Var y ]) when Sym.equal x r.a && Sym.equal y r.b -> (
        match p with
        | Prim.Fadd -> Some ( +. )
        | Fmul -> Some ( *. )
        | Fmin -> Some Float.min
        | Fmax -> Some Float.max
        | _ -> None)
    | _ -> None
  in
  match (direct, ccond) with
  | Some op, None ->
      fun fr ->
        let n = cn fr in
        let acc = ref (cinit fr) in
        for i = 0 to n - 1 do
          fr.is.(kidx) <- i;
          acc := op !acc (cv fr)
        done;
        !acc
  | Some op, Some cc ->
      fun fr ->
        let n = cn fr in
        let acc = ref (cinit fr) in
        for i = 0 to n - 1 do
          fr.is.(kidx) <- i;
          if cc fr then acc := op !acc (cv fr)
        done;
        !acc
  | None, _ ->
      let _, ka = alloc_slot ctx r.a and _, kb = alloc_slot ctx r.b in
      let cr = comp_f ctx r.rfun in
      fun fr ->
        let n = cn fr in
        let acc = ref (cinit fr) in
        for i = 0 to n - 1 do
          fr.is.(kidx) <- i;
          let pass = match ccond with None -> true | Some cc -> cc fr in
          if pass then begin
            fr.fs.(ka) <- !acc;
            fr.fs.(kb) <- cv fr;
            acc := cr fr
          end
        done;
        !acc

and comp_i ctx (e : exp) : frame -> int =
  match e with
  | Const (Cint i) -> fun _ -> i
  | Const (Cbool b) ->
      let v = if b then 1 else 0 in
      fun _ -> v
  | Var s -> (
      match slot ctx s with
      | Ki, k -> fun fr -> fr.is.(k)
      | Ko, k -> fun fr -> V.as_int fr.os.(k)
      | Kf, _ -> fail "int variable in float slot: %a" Sym.pp s)
  (* affine subscripts: (v*c) + w and friends, one closure total *)
  | Prim (Prim.Add, [ Prim (Prim.Mul, [ Var v; Const (Cint c) ]); Var w ])
  | Prim (Prim.Add, [ Prim (Prim.Mul, [ Const (Cint c); Var v ]); Var w ])
  | Prim (Prim.Add, [ Var w; Prim (Prim.Mul, [ Var v; Const (Cint c) ]) ])
  | Prim (Prim.Add, [ Var w; Prim (Prim.Mul, [ Const (Cint c); Var v ]) ]) -> (
      match (slot ctx v, slot ctx w) with
      | (Ki, kv), (Ki, kw) -> fun fr -> (fr.is.(kv) * c) + fr.is.(kw)
      | _ -> comp_i_generic_bin ctx e)
  | Prim (p, [ a; b ]) -> (
      let bin op =
        match (a, b) with
        | _, Const (Cint c) ->
            let ca = comp_i ctx a in
            fun fr -> op (ca fr) c
        | Const (Cint c), _ ->
            let cb = comp_i ctx b in
            fun fr -> op c (cb fr)
        | _ ->
            let ca = comp_i ctx a and cb = comp_i ctx b in
            fun fr -> op (ca fr) (cb fr)
      in
      match p with
      | Prim.Add -> bin ( + )
      | Sub -> bin ( - )
      | Mul -> bin ( * )
      | Div -> (
          match b with
          | Const (Cint c) when c <> 0 ->
              let ca = comp_i ctx a in
              fun fr -> ca fr / c
          | _ ->
              let ca = comp_i ctx a and cb = comp_i ctx b in
              fun fr ->
                let d = cb fr in
                if d = 0 then fail "integer division by zero" else ca fr / d)
      | Mod -> (
          match b with
          | Const (Cint c) when c <> 0 ->
              let ca = comp_i ctx a in
              fun fr -> ca fr mod c
          | _ ->
              let ca = comp_i ctx a and cb = comp_i ctx b in
              fun fr ->
                let d = cb fr in
                if d = 0 then fail "integer modulo by zero" else ca fr mod d)
      | Min -> bin Stdlib.min
      | Max -> bin Stdlib.max
      | Strget ->
          let ca = comp_v ctx a and cb = comp_i ctx b in
          fun fr -> Char.code (V.as_str (ca fr)).[cb fr]
      | _ -> comp_i_generic ctx e)
  | Prim (Prim.Neg, [ a ]) ->
      let ca = comp_i ctx a in
      fun fr -> -ca fr
  | Prim (Prim.F2i, [ a ]) ->
      let ca = comp_f ctx a in
      fun fr -> int_of_float (ca fr)
  | Prim (Prim.Strlen, [ a ]) ->
      let ca = comp_v ctx a in
      fun fr -> String.length (V.as_str (ca fr))
  | If (c, t, f) ->
      let cc = comp_b ctx c and ct = comp_i ctx t and cf = comp_i ctx f in
      fun fr -> if cc fr then ct fr else cf fr
  | Let (s, bound, body) ->
      let store = comp_store ctx s bound in
      let cb = comp_i ctx body in
      fun fr ->
        store fr;
        cb fr
  | Len a ->
      let ca = comp_v ctx a in
      fun fr -> V.length (ca fr)
  | Read (arr, ix) -> (
      let ci = comp_i ctx ix in
      match base_obj_slot ctx arr with
      | Some k ->
          fun fr -> (
            match fr.os.(k) with
            | V.Varr (V.Ia a) -> a.(ci fr)
            | v -> V.as_int (V.get v (ci fr)))
      | None ->
          let ca = comp_v ctx arr in
          fun fr -> (
            match ca fr with
            | V.Varr (V.Ia a) -> a.(ci fr)
            | v -> V.as_int (V.get v (ci fr))))
  | Loop { size; idx; gens = [ Reduce r ] } when Types.equal (tyof e) Types.Int ->
      comp_int_reduce ctx ~size ~idx r
  | _ -> comp_i_generic ctx e

and comp_i_generic_bin ctx e =
  match e with
  | Prim (Prim.Add, [ a; b ]) ->
      let ca = comp_i ctx a and cb = comp_i ctx b in
      fun fr -> ca fr + cb fr
  | _ -> comp_i_generic ctx e

and comp_i_generic ctx e =
  let cv = comp_v ctx e in
  fun fr ->
    match cv fr with
    | V.Vint i -> i
    | V.Vbool b -> if b then 1 else 0
    | v -> fail "expected int, got %s" (V.to_string v)

and comp_int_reduce ctx ~size ~idx (r : reduce_gen) : frame -> int =
  let _, kidx = alloc_slot ctx idx in
  let cn = comp_i ctx size in
  let cinit = comp_i ctx r.init in
  let cv = comp_i ctx r.value in
  let ccond = Option.map (comp_b ctx) r.cond in
  let direct : (int -> int -> int) option =
    match r.rfun with
    | Prim (p, [ Var x; Var y ]) when Sym.equal x r.a && Sym.equal y r.b -> (
        match p with
        | Prim.Add -> Some ( + )
        | Mul -> Some ( * )
        | Min -> Some Stdlib.min
        | Max -> Some Stdlib.max
        | _ -> None)
    | _ -> None
  in
  match direct with
  | Some op ->
      fun fr ->
        let n = cn fr in
        let acc = ref (cinit fr) in
        for i = 0 to n - 1 do
          fr.is.(kidx) <- i;
          let pass = match ccond with None -> true | Some cc -> cc fr in
          if pass then acc := op !acc (cv fr)
        done;
        !acc
  | None ->
      let _, ka = alloc_slot ctx r.a and _, kb = alloc_slot ctx r.b in
      let cr = comp_i ctx r.rfun in
      fun fr ->
        let n = cn fr in
        let acc = ref (cinit fr) in
        for i = 0 to n - 1 do
          fr.is.(kidx) <- i;
          let pass = match ccond with None -> true | Some cc -> cc fr in
          if pass then begin
            fr.is.(ka) <- !acc;
            fr.is.(kb) <- cv fr;
            acc := cr fr
          end
        done;
        !acc

and comp_b ctx (e : exp) : frame -> bool =
  match e with
  | Const (Cbool b) -> fun _ -> b
  | Var s -> (
      match slot ctx s with
      | Ki, k -> fun fr -> fr.is.(k) <> 0
      | Ko, k -> fun fr -> V.as_bool fr.os.(k)
      | Kf, _ -> fail "bool variable in float slot")
  | Prim ((Prim.Eq | Ne | Lt | Le | Gt | Ge) as p, [ a; b ]) -> (
      match tyof a with
      | Types.Int | Types.Bool -> (
          let ca = comp_i ctx a and cb = comp_i ctx b in
          match p with
          | Prim.Eq -> fun fr -> ca fr = cb fr
          | Ne -> fun fr -> ca fr <> cb fr
          | Lt -> fun fr -> ca fr < cb fr
          | Le -> fun fr -> ca fr <= cb fr
          | Gt -> fun fr -> ca fr > cb fr
          | Ge -> fun fr -> ca fr >= cb fr
          | _ -> assert false)
      | Types.Float -> (
          let ca = comp_f ctx a and cb = comp_f ctx b in
          match p with
          | Prim.Eq -> fun fr -> compare (ca fr) (cb fr) = 0
          | Ne -> fun fr -> compare (ca fr) (cb fr) <> 0
          | Lt -> fun fr -> compare (ca fr) (cb fr) < 0
          | Le -> fun fr -> compare (ca fr) (cb fr) <= 0
          | Gt -> fun fr -> compare (ca fr) (cb fr) > 0
          | Ge -> fun fr -> compare (ca fr) (cb fr) >= 0
          | _ -> assert false)
      | _ -> (
          let ca = comp_v ctx a and cb = comp_v ctx b in
          let cmp_of : int -> bool =
            match p with
            | Prim.Eq -> fun c -> c = 0
            | Ne -> fun c -> c <> 0
            | Lt -> fun c -> c < 0
            | Le -> fun c -> c <= 0
            | Gt -> fun c -> c > 0
            | Ge -> fun c -> c >= 0
            | _ -> assert false
          in
          fun fr -> cmp_of (compare (ca fr) (cb fr))))
  | Prim (Prim.And, [ a; b ]) ->
      let ca = comp_b ctx a and cb = comp_b ctx b in
      fun fr -> ca fr && cb fr
  | Prim (Prim.Or, [ a; b ]) ->
      let ca = comp_b ctx a and cb = comp_b ctx b in
      fun fr -> ca fr || cb fr
  | Prim (Prim.Not, [ a ]) ->
      let ca = comp_b ctx a in
      fun fr -> not (ca fr)
  | If (c, t, f) ->
      let cc = comp_b ctx c and ct = comp_b ctx t and cf = comp_b ctx f in
      fun fr -> if cc fr then ct fr else cf fr
  | Let (s, bound, body) ->
      let store = comp_store ctx s bound in
      let cb = comp_b ctx body in
      fun fr ->
        store fr;
        cb fr
  | _ ->
      let cv = comp_v ctx e in
      fun fr -> V.as_bool (cv fr)

(* Compile [bound] and store it into [s]'s slot. *)
and comp_store ctx (s : Sym.t) (bound : exp) : frame -> unit =
  match alloc_slot ctx s with
  | Kf, k ->
      let cb = comp_f ctx bound in
      fun fr -> fr.fs.(k) <- cb fr
  | Ki, k -> (
      match Sym.ty s with
      | Types.Bool ->
          let cb = comp_b ctx bound in
          fun fr -> fr.is.(k) <- (if cb fr then 1 else 0)
      | _ ->
          let cb = comp_i ctx bound in
          fun fr -> fr.is.(k) <- cb fr)
  | Ko, k ->
      let cb = comp_v ctx bound in
      fun fr -> fr.os.(k) <- cb fr

(* ------------------------------------------------------------------ *)
(* Generic compilation                                                 *)
(* ------------------------------------------------------------------ *)

and comp_v ctx (e : exp) : frame -> V.t =
  match e with
  | Const Cunit -> fun _ -> V.Vunit
  | Const (Cbool b) -> fun _ -> V.Vbool b
  | Const (Cint i) -> fun _ -> V.Vint i
  | Const (Cfloat f) -> fun _ -> V.Vfloat f
  | Const (Cstr s) -> fun _ -> V.Vstr s
  | Var s -> (
      match slot ctx s with
      | Kf, k -> fun fr -> V.Vfloat fr.fs.(k)
      | Ki, k -> (
          match Sym.ty s with
          | Types.Bool -> fun fr -> V.Vbool (fr.is.(k) <> 0)
          | _ -> fun fr -> V.Vint fr.is.(k))
      | Ko, k -> fun fr -> fr.os.(k))
  | Input (name, _, _) ->
      let k = input_slot ctx name in
      fun fr -> fr.os.(k)
  | If (c, t, f) -> (
      match tyof e with
      | Types.Float ->
          let cf = comp_f ctx e in
          fun fr -> V.Vfloat (cf fr)
      | Types.Int ->
          let ci = comp_i ctx e in
          fun fr -> V.Vint (ci fr)
      | Types.Bool ->
          let cb = comp_b ctx e in
          fun fr -> V.Vbool (cb fr)
      | _ ->
          let cc = comp_b ctx c and ct = comp_v ctx t and cf = comp_v ctx f in
          fun fr -> if cc fr then ct fr else cf fr)
  | Prim (p, args) -> (
      match tyof e with
      | Types.Float ->
          let cf = comp_f ctx e in
          fun fr -> V.Vfloat (cf fr)
      | Types.Int ->
          let ci = comp_i ctx e in
          fun fr -> V.Vint (ci fr)
      | Types.Bool ->
          let cb = comp_b ctx e in
          fun fr -> V.Vbool (cb fr)
      | _ ->
          (* string-valued prims and other rarities: evaluate boxed *)
          let cs = List.map (comp_v ctx) args in
          fun fr -> Dmll_interp.Interp.eval_prim p (List.map (fun c -> c fr) cs))
  | Let (s, bound, body) ->
      let store = comp_store ctx s bound in
      let cb = comp_v ctx body in
      fun fr ->
        store fr;
        cb fr
  | Tuple es ->
      let cs = Array.of_list (List.map (comp_v ctx) es) in
      fun fr -> V.Vtup (Array.map (fun c -> c fr) cs)
  | Proj (a, i) ->
      let ca = comp_v ctx a in
      fun fr -> (
        match ca fr with
        | V.Vtup vs -> vs.(i)
        | v -> fail "projection from %s" (V.to_string v))
  | Record (_, fs) ->
      let cs = Array.of_list (List.map (fun (n, v) -> (n, comp_v ctx v)) fs) in
      fun fr -> V.Vstruct (Array.map (fun (n, c) -> (n, c fr)) cs)
  | Field (a, n) ->
      let ca = comp_v ctx a in
      fun fr -> V.struct_field (ca fr) n
  | Len a ->
      let ca = comp_v ctx a in
      fun fr -> V.Vint (V.length (ca fr))
  | Read (a, ix) ->
      let ca = comp_v ctx a and ci = comp_i ctx ix in
      fun fr -> V.get (ca fr) (ci fr)
  | MapRead (m, k, d) ->
      let cm = comp_v ctx m and ck = comp_v ctx k in
      let cd = Option.map (comp_v ctx) d in
      (* keyed lookups usually hit the same map many times (membership
         tests in graph kernels); build a hash index per map value *)
      let cache : (V.t * int Vtbl.t) option ref = ref None in
      fun fr -> (
        let mv = cm fr in
        let vm = V.as_map mv in
        let tbl =
          match !cache with
          | Some (m0, tbl) when m0 == mv -> tbl
          | _ ->
              let tbl = Vtbl.create (Stdlib.max 16 (Array.length vm.V.mkeys)) in
              Array.iteri (fun i key -> Vtbl.replace tbl key i) vm.V.mkeys;
              cache := Some (mv, tbl);
              tbl
        in
        match Vtbl.find_opt tbl (ck fr) with
        | Some i -> vm.V.mvals.(i)
        | None -> (
            match cd with
            | Some cd -> cd fr
            | None -> fail "map key not found"))
  | KeyAt (m, ix) ->
      let cm = comp_v ctx m and ci = comp_i ctx ix in
      fun fr -> (V.as_map (cm fr)).V.mkeys.(ci fr)
  | Extern { ename; eargs; _ } ->
      let cs = List.map (comp_v ctx) eargs in
      fun fr -> (
        match Hashtbl.find_opt Dmll_interp.Interp.extern_registry ename with
        | Some f -> f (List.map (fun c -> c fr) cs)
        | None -> fail "unregistered extern %s" ename)
  | Loop l -> comp_loop ctx l

(* ------------------------------------------------------------------ *)
(* Generator compilation                                               *)
(* ------------------------------------------------------------------ *)

(* Per-generator compiled accumulator: reset (given the frame and the loop
   size) / step / finish. *)
and comp_gen ctx ~(registry_of : gen -> registry option) (g : gen) :
    (frame -> int -> unit) * (frame -> unit) * (unit -> V.t) =
  match g with
  | Collect { cond; value } -> comp_collect ctx ~cond ~value
  | Reduce r -> comp_reduce_gen ctx r
  | BucketCollect { value; _ } ->
      let reg = match registry_of g with Some r -> r | None -> assert false in
      comp_bucket_collect ctx ~reg ~value
  | BucketReduce r ->
      let reg = match registry_of g with Some reg -> reg | None -> assert false in
      comp_bucket_reduce ctx ~reg r

and comp_collect ctx ~cond ~value =
  match (tyof value, cond) with
  | Types.Float, None ->
      (* exact-size unboxed fill *)
      let cv = comp_f ctx value in
      let out = ref [||] in
      let k = ref 0 in
      ( (fun _ n ->
          out := Array.make n 0.0;
          k := 0),
        (fun fr ->
          !out.(!k) <- cv fr;
          incr k),
        fun () -> V.Varr (V.Fa !out) )
  | Types.Int, None ->
      let cv = comp_i ctx value in
      let out = ref [||] in
      let k = ref 0 in
      ( (fun _ n ->
          out := Array.make n 0;
          k := 0),
        (fun fr ->
          !out.(!k) <- cv fr;
          incr k),
        fun () -> V.Varr (V.Ia !out) )
  | Types.Float, Some c ->
      let cc = comp_b ctx c in
      let cv = comp_f ctx value in
      let buf = ref (Fbuf.create ()) in
      ( (fun _ _ -> buf := Fbuf.create ()),
        (fun fr -> if cc fr then Fbuf.push !buf (cv fr)),
        fun () -> V.Varr (V.Fa (Fbuf.contents !buf)) )
  | Types.Int, Some c ->
      let cc = comp_b ctx c in
      let cv = comp_i ctx value in
      let buf = ref (Ibuf.create ()) in
      ( (fun _ _ -> buf := Ibuf.create ()),
        (fun fr -> if cc fr then Ibuf.push !buf (cv fr)),
        fun () -> V.Varr (V.Ia (Ibuf.contents !buf)) )
  | _, cond ->
      let ccond = Option.map (comp_b ctx) cond in
      let guard fr = match ccond with None -> true | Some c -> c fr in
      let cv = comp_v ctx value in
      let buf = ref (Obuf.create V.Vunit) in
      ( (fun _ _ -> buf := Obuf.create V.Vunit),
        (fun fr -> if guard fr then Obuf.push !buf (cv fr)),
        fun () -> V.Varr (V.Ga (Obuf.contents !buf)) )

(* Recognize the zipWith-add reduction function over the accumulator
   binders: rfun = Collect over len(a)/len(b) of a(i) + b(i). *)
and is_vec_fadd_rfun ~(a : Sym.t) ~(b : Sym.t) (rfun : exp) : bool =
  match rfun with
  | Loop
      { size = Len (Var x);
        idx = iz;
        gens = [ Collect { cond = None; value = Prim (Prim.Fadd, [ l; r ]) } ];
      }
    when Sym.equal x a || Sym.equal x b -> (
      match (l, r) with
      | Read (Var la, Var li), Read (Var rb, Var ri) ->
          Sym.equal li iz && Sym.equal ri iz
          && ((Sym.equal la a && Sym.equal rb b) || (Sym.equal la b && Sym.equal rb a))
      | _ -> false)
  | _ -> false

(* Peel leading Lets from a value expression, returning the stores and the
   residue (for fusing vector-reduce values through code-motion lets). *)
and peel_lets ctx (e : exp) : (frame -> unit) list * exp =
  match e with
  | Let (s, bound, body) ->
      let store = comp_store ctx s bound in
      let stores, residue = peel_lets ctx body in
      (store :: stores, residue)
  | _ -> ([], e)

(* The argmin/argmax shape: reduce over (scalar, payload) pairs keeping
   the pair whose first component wins the comparison. *)
and comp_argmin_reduce ctx (r : reduce_gen) :
    ((frame -> int -> unit) * (frame -> unit) * (unit -> V.t)) option =
  match (r.value, r.rfun, r.init) with
  | ( Tuple [ fv; fi ],
      If
        ( Prim ((Prim.Le | Lt | Ge | Gt) as cmp, [ Proj (Var a1, 0); Proj (Var b1, 0) ]),
          Var a2,
          Var b2 ),
      Tuple [ Const (Cfloat init_f); Const (Cint init_i) ] )
    when Sym.equal a1 r.a && Sym.equal b1 r.b && Sym.equal a2 r.a && Sym.equal b2 r.b
         && Types.equal (tyof fv) Types.Float
         && Types.equal (tyof fi) Types.Int ->
      let keep_acc : float -> float -> bool =
        match cmp with
        | Prim.Le -> fun acc v -> compare acc v <= 0
        | Lt -> fun acc v -> compare acc v < 0
        | Ge -> fun acc v -> compare acc v >= 0
        | Gt -> fun acc v -> compare acc v > 0
        | _ -> assert false
      in
      let cvf = comp_f ctx fv and cvi = comp_i ctx fi in
      let ccond = Option.map (comp_b ctx) r.cond in
      let best = ref init_f and bi = ref init_i in
      Some
        ( (fun _ _ ->
            best := init_f;
            bi := init_i),
          (fun fr ->
            let pass = match ccond with None -> true | Some c -> c fr in
            if pass then begin
              let v = cvf fr in
              if not (keep_acc !best v) then begin
                best := v;
                bi := cvi fr
              end
            end),
          fun () -> V.Vtup [| V.Vfloat !best; V.Vint !bi |] )
  | _ -> None

(* In-place vector-add reduce: value is (lets +) a Collect of floats,
   reduction is elementwise add.  The value collect is fused into the
   accumulation loop: zero per-iteration allocation. *)
and comp_vecadd_reduce ctx (r : reduce_gen) :
    ((frame -> int -> unit) * (frame -> unit) * (unit -> V.t)) option =
  if not (is_vec_fadd_rfun ~a:r.a ~b:r.b r.rfun) then None
  else
    let stores, residue = peel_lets ctx r.value in
    match residue with
    | Loop { size = s2; idx = j2; gens = [ Collect { cond = None; value = ev } ] }
      when Types.equal (tyof ev) Types.Float ->
        let cs2 = comp_i ctx s2 in
        let _, kj2 = alloc_slot ctx j2 in
        let cev = comp_f ctx ev in
        let cinit = comp_v ctx r.init in
        let ccond = Option.map (comp_b ctx) r.cond in
        let acc = ref [||] in
        Some
          ( (fun fr _ -> acc := V.to_float_array (cinit fr)),
            (fun fr ->
              let pass = match ccond with None -> true | Some c -> c fr in
              if pass then begin
                List.iter (fun st -> st fr) stores;
                let n2 = cs2 fr in
                let a = !acc in
                for j = 0 to n2 - 1 do
                  fr.is.(kj2) <- j;
                  a.(j) <- a.(j) +. cev fr
                done
              end),
            fun () -> V.Varr (V.Fa (Array.copy !acc)) )
    | _ -> None

and comp_reduce_gen ctx (r : reduce_gen) =
  match comp_argmin_reduce ctx r with
  | Some g -> g
  | None -> (
      match comp_vecadd_reduce ctx r with
      | Some g -> g
      | None -> (
          let ccond = Option.map (comp_b ctx) r.cond in
          let guard fr = match ccond with None -> true | Some c -> c fr in
          match tyof r.value with
          | Types.Float -> (
              let cv = comp_f ctx r.value in
              let cinit = comp_f ctx r.init in
              let acc = ref 0.0 in
              let direct =
                match r.rfun with
                | Prim (p, [ Var x; Var y ]) when Sym.equal x r.a && Sym.equal y r.b
                  -> (
                    match p with
                    | Prim.Fadd -> Some ( +. )
                    | Fmul -> Some ( *. )
                    | Fmin -> Some Float.min
                    | Fmax -> Some Float.max
                    | _ -> None)
                | _ -> None
              in
              match direct with
              | Some op ->
                  ( (fun fr _ -> acc := cinit fr),
                    (fun fr -> if guard fr then acc := op !acc (cv fr)),
                    fun () -> V.Vfloat !acc )
              | None ->
                  let _, ka = alloc_slot ctx r.a and _, kb = alloc_slot ctx r.b in
                  let cr = comp_f ctx r.rfun in
                  ( (fun fr _ -> acc := cinit fr),
                    (fun fr ->
                      if guard fr then begin
                        fr.fs.(ka) <- !acc;
                        fr.fs.(kb) <- cv fr;
                        acc := cr fr
                      end),
                    fun () -> V.Vfloat !acc ))
          | Types.Int -> (
              let cv = comp_i ctx r.value in
              let cinit = comp_i ctx r.init in
              let acc = ref 0 in
              let direct =
                match r.rfun with
                | Prim (p, [ Var x; Var y ]) when Sym.equal x r.a && Sym.equal y r.b
                  -> (
                    match p with
                    | Prim.Add -> Some ( + )
                    | Mul -> Some ( * )
                    | Min -> Some Stdlib.min
                    | Max -> Some Stdlib.max
                    | _ -> None)
                | _ -> None
              in
              match direct with
              | Some op ->
                  ( (fun fr _ -> acc := cinit fr),
                    (fun fr -> if guard fr then acc := op !acc (cv fr)),
                    fun () -> V.Vint !acc )
              | None ->
                  let _, ka = alloc_slot ctx r.a and _, kb = alloc_slot ctx r.b in
                  let cr = comp_i ctx r.rfun in
                  ( (fun fr _ -> acc := cinit fr),
                    (fun fr ->
                      if guard fr then begin
                        fr.is.(ka) <- !acc;
                        fr.is.(kb) <- cv fr;
                        acc := cr fr
                      end),
                    fun () -> V.Vint !acc ))
          | _ ->
              (* generic reduce over boxed values *)
              let cv = comp_v ctx r.value in
              let cinit = comp_v ctx r.init in
              let _, ka = alloc_slot ctx r.a and _, kb = alloc_slot ctx r.b in
              let cr = comp_v ctx r.rfun in
              let acc = ref V.Vunit in
              ( (fun fr _ -> acc := cinit fr),
                (fun fr ->
                  if guard fr then begin
                    fr.os.(ka) <- !acc;
                    fr.os.(kb) <- cv fr;
                    acc := cr fr
                  end),
                fun () -> !acc )))

and comp_bucket_collect ctx ~(reg : registry) ~value =
  let cv = comp_v ctx value in
  let vals : V.t list Obuf.t ref = ref (Obuf.create []) in
  ( (fun _ _ -> vals := Obuf.create []),
    (fun fr ->
      let s = registry_slot reg fr in
      if s >= 0 then begin
        while !vals.Obuf.n <= s do
          Obuf.push !vals []
        done;
        !vals.Obuf.a.(s) <- cv fr :: !vals.Obuf.a.(s)
      end),
    fun () ->
      let n = reg.rkeys.Obuf.n in
      let mkeys = Obuf.contents reg.rkeys in
      let mvals =
        Array.init n (fun i ->
            let b = if i < !vals.Obuf.n then !vals.Obuf.a.(i) else [] in
            V.Varr (V.varr_of_list (List.rev b)))
      in
      V.Vmap { mkeys; mvals } )

and comp_bucket_reduce ctx ~(reg : registry) (r : bucket_reduce_gen) =
  match tyof r.value with
  | Types.Float ->
      let cv = comp_f ctx r.value in
      let cinit = comp_f ctx r.init in
      let direct =
        match r.rfun with
        | Prim (p, [ Var x; Var y ]) when Sym.equal x r.a && Sym.equal y r.b -> (
            match p with
            | Prim.Fadd -> Some ( +. )
            | Fmul -> Some ( *. )
            | Fmin -> Some Float.min
            | Fmax -> Some Float.max
            | _ -> None)
        | _ -> None
      in
      let accs = ref (Fbuf.create ()) in
      let ensure fr s =
        while !accs.Fbuf.n <= s do
          Fbuf.push !accs (cinit fr)
        done
      in
      let step =
        match direct with
        | Some op ->
            fun fr ->
              let s = registry_slot reg fr in
              if s >= 0 then begin
                ensure fr s;
                !accs.Fbuf.a.(s) <- op !accs.Fbuf.a.(s) (cv fr)
              end
        | None ->
            let _, ka = alloc_slot ctx r.a and _, kb = alloc_slot ctx r.b in
            let cr = comp_f ctx r.rfun in
            fun fr ->
              let s = registry_slot reg fr in
              if s >= 0 then begin
                ensure fr s;
                fr.fs.(ka) <- !accs.Fbuf.a.(s);
                fr.fs.(kb) <- cv fr;
                !accs.Fbuf.a.(s) <- cr fr
              end
      in
      ( (fun _ _ -> accs := Fbuf.create ()),
        step,
        fun () ->
          V.Vmap
            { mkeys = Obuf.contents reg.rkeys;
              mvals = Array.map (fun f -> V.Vfloat f) (Fbuf.contents !accs);
            } )
  | Types.Int ->
      let cv = comp_i ctx r.value in
      let cinit = comp_i ctx r.init in
      let direct =
        match r.rfun with
        | Prim (p, [ Var x; Var y ]) when Sym.equal x r.a && Sym.equal y r.b -> (
            match p with
            | Prim.Add -> Some ( + )
            | Mul -> Some ( * )
            | Min -> Some Stdlib.min
            | Max -> Some Stdlib.max
            | _ -> None)
        | _ -> None
      in
      let accs = ref (Ibuf.create ()) in
      let ensure fr s =
        while !accs.Ibuf.n <= s do
          Ibuf.push !accs (cinit fr)
        done
      in
      let step =
        match direct with
        | Some op ->
            fun fr ->
              let s = registry_slot reg fr in
              if s >= 0 then begin
                ensure fr s;
                !accs.Ibuf.a.(s) <- op !accs.Ibuf.a.(s) (cv fr)
              end
        | None ->
            let _, ka = alloc_slot ctx r.a and _, kb = alloc_slot ctx r.b in
            let cr = comp_i ctx r.rfun in
            fun fr ->
              let s = registry_slot reg fr in
              if s >= 0 then begin
                ensure fr s;
                fr.is.(ka) <- !accs.Ibuf.a.(s);
                fr.is.(kb) <- cv fr;
                !accs.Ibuf.a.(s) <- cr fr
              end
      in
      ( (fun _ _ -> accs := Ibuf.create ()),
        step,
        fun () ->
          V.Vmap
            { mkeys = Obuf.contents reg.rkeys;
              mvals = Array.map (fun i -> V.Vint i) (Ibuf.contents !accs);
            } )
  | _ when is_vec_fadd_rfun ~a:r.a ~b:r.b r.rfun -> (
      (* in-place per-bucket vector accumulation (k-means' sums) *)
      let stores, residue = peel_lets ctx r.value in
      match residue with
      | Loop { size = s2; idx = j2; gens = [ Collect { cond = None; value = ev } ] }
        when Types.equal (tyof ev) Types.Float ->
          let cs2 = comp_i ctx s2 in
          let _, kj2 = alloc_slot ctx j2 in
          let cev = comp_f ctx ev in
          let cinit = comp_v ctx r.init in
          let accs : float array Obuf.t ref = ref (Obuf.create [||]) in
          ( (fun _ _ -> accs := Obuf.create [||]),
            (fun fr ->
              let s = registry_slot reg fr in
              if s >= 0 then begin
                while !accs.Obuf.n <= s do
                  Obuf.push !accs (V.to_float_array (cinit fr))
                done;
                List.iter (fun st -> st fr) stores;
                let n2 = cs2 fr in
                let a = !accs.Obuf.a.(s) in
                for j = 0 to n2 - 1 do
                  fr.is.(kj2) <- j;
                  a.(j) <- a.(j) +. cev fr
                done
              end),
            fun () ->
              V.Vmap
                { mkeys = Obuf.contents reg.rkeys;
                  mvals =
                    Array.map
                      (fun a -> V.Varr (V.Fa (Array.copy a)))
                      (Obuf.contents !accs);
                } )
      | _ -> comp_bucket_reduce_generic ctx ~reg r)
  | _ -> comp_bucket_reduce_generic ctx ~reg r

and comp_bucket_reduce_generic ctx ~(reg : registry) (r : bucket_reduce_gen) =
  let cv = comp_v ctx r.value in
  let cinit = comp_v ctx r.init in
  let _, ka = alloc_slot ctx r.a and _, kb = alloc_slot ctx r.b in
  let cr = comp_v ctx r.rfun in
  let accs = ref (Obuf.create V.Vunit) in
  ( (fun _ _ -> accs := Obuf.create V.Vunit),
    (fun fr ->
      let s = registry_slot reg fr in
      if s >= 0 then begin
        while !accs.Obuf.n <= s do
          Obuf.push !accs (cinit fr)
        done;
        fr.os.(ka) <- !accs.Obuf.a.(s);
        fr.os.(kb) <- cv fr;
        !accs.Obuf.a.(s) <- cr fr
      end),
    fun () ->
      V.Vmap { mkeys = Obuf.contents reg.rkeys; mvals = Obuf.contents !accs } )

(* ------------------------------------------------------------------ *)
(* Multiloop compilation                                               *)
(* ------------------------------------------------------------------ *)

and comp_loop ctx (l : loop) : frame -> V.t =
  let _, kidx = alloc_slot ctx l.idx in
  let cn = comp_i ctx l.size in
  (* registries: one per (cond, key) alpha-class of the bucket gens, so
     sibling generators (horizontal fusion's output) share one hash probe
     per iteration *)
  let registries : (exp option * exp * registry) list ref = ref [] in
  let opt_alpha a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> alpha_equal x y
    | _ -> false
  in
  let registry_of (g : gen) : registry option =
    match gen_key g with
    | None -> None
    | Some key -> (
        let cond = gen_cond g in
        match
          List.find_opt
            (fun (c, k, _) -> opt_alpha c cond && alpha_equal k key)
            !registries
        with
        | Some (_, _, reg) -> Some reg
        | None ->
            let reg =
              new_registry ~kidx ~rkey:(comp_v ctx key)
                ~rcond:(Option.map (comp_b ctx) cond)
            in
            registries := (cond, key, reg) :: !registries;
            Some reg)
  in
  let gens = List.map (comp_gen ctx ~registry_of) l.gens in
  let regs = !registries in
  let reset_registries () = List.iter (fun (_, _, r) -> registry_reset r) regs in
  match gens with
  | [ (reset, step, fin) ] ->
      fun fr ->
        let n = cn fr in
        reset_registries ();
        reset fr n;
        for i = 0 to n - 1 do
          fr.is.(kidx) <- i;
          step fr
        done;
        fin ()
  | gens ->
      fun fr ->
        let n = cn fr in
        reset_registries ();
        List.iter (fun (reset, _, _) -> reset fr n) gens;
        for i = 0 to n - 1 do
          fr.is.(kidx) <- i;
          List.iter (fun (_, step, _) -> step fr) gens
        done;
        V.Vtup (Array.of_list (List.map (fun (_, _, fin) -> fin ()) gens))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type compiled = {
  run : ?inputs:(string * V.t) list -> unit -> V.t;
  frame_sizes : int * int * int;
}

(** Compile a program once; [run] may be invoked many times (e.g. once per
    benchmark repetition) with different inputs. *)
let compile (e : exp) : compiled =
  let ctx = new_ctx () in
  let root = comp_v ctx e in
  let make_frame () =
    { fs = Array.make (Stdlib.max 1 ctx.nf) 0.0;
      is = Array.make (Stdlib.max 1 ctx.ni) 0;
      os = Array.make (Stdlib.max 1 ctx.no) V.Vunit;
    }
  in
  let run ?(inputs = []) () =
    let fr = make_frame () in
    List.iter
      (fun (name, v) ->
        match Hashtbl.find_opt ctx.inputs name with
        | Some k -> fr.os.(k) <- v
        | None -> () (* unused input: fine *))
      inputs;
    Hashtbl.iter
      (fun name _ ->
        if not (List.mem_assoc name inputs) then fail "missing input %s" name)
      ctx.inputs;
    root fr
  in
  { run; frame_sizes = (ctx.nf, ctx.ni, ctx.no) }

(** One-shot convenience. *)
let run ?(inputs = []) (e : exp) : V.t = (compile e).run ~inputs ()

lib/backend/codegen_c.ml: Buffer Dmll_ir Exp Hashtbl List Prim Printf String Sym Typecheck Types

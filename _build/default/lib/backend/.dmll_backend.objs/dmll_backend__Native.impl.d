lib/backend/native.ml: Codegen_ocaml Dmll_interp Dmll_ir Filename Fmt Lazy Marshal Printf Scanf Stdlib Sys Unix

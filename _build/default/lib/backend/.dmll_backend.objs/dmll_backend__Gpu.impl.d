lib/backend/gpu.ml: Dmll_analysis Dmll_ir Dmll_opt Exp Fmt List Printf Sym Typecheck Types

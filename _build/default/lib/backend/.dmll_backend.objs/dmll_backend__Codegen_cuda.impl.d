lib/backend/codegen_cuda.ml: Buffer Codegen_c Dmll_analysis Dmll_ir Exp List Prim Printf String Sym Types

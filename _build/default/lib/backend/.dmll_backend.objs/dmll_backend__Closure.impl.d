lib/backend/closure.ml: Array Char Dmll_interp Dmll_ir Exp Float Fmt Hashtbl List Option Prim Stdlib String Sym Typecheck Types

lib/backend/codegen_scala.ml: Dmll_ir Exp Hashtbl List Prim Printf String Sym Types

lib/backend/codegen_ocaml.ml: Buffer Dmll_ir Exp Float Fmt Hashtbl Int64 List Prim Printf String Sym Typecheck Types

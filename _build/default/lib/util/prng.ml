(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every data generator in the repository draws from this PRNG so that all
    experiments are bit-reproducible across runs and machines.  The
    generator is splittable: {!split} derives an independent stream, which
    lets parallel generators stay deterministic regardless of scheduling. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One SplitMix64 step: advance the state by the golden gamma and mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { state = s }

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits: OCaml's native int is 63-bit, so a 63-bit magnitude
     would wrap negative through Int64.to_int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [float t bound] is uniform in [\[0, bound)]. *)
let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significand bits, matching the usual double-precision recipe. *)
  r /. 9007199254740992.0 *. bound

let float_range t lo hi = lo +. float t (hi -. lo)

(** Standard normal via Box-Muller. *)
let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** Exponentially distributed with rate [lambda]. *)
let exponential t lambda =
  let u = Stdlib.max 1e-300 (float t 1.0) in
  -.log u /. lambda

(** In-place Fisher-Yates shuffle. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** Pick a uniformly random element of a non-empty array. *)
let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

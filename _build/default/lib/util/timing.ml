(** Wall-clock timing helpers for the real (non-simulated) measurements. *)

(** [time f] runs [f ()] and returns [(result, elapsed_seconds)]. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, t1 -. t0)

(** [time_n ~warmup ~runs f] runs [f] [warmup] times unmeasured, then [runs]
    times measured, returning the elapsed seconds of every measured run. *)
let time_n ~warmup ~runs f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  Array.init runs (fun _ -> snd (time f))

(** Median-of-runs measurement, the repository's default for tables that
    report a single number per configuration (the paper reports the average
    of five runs; we use the median of five which is more robust to noise in
    a shared container). *)
let measure ?(warmup = 1) ?(runs = 5) f = Stats.median (time_n ~warmup ~runs f)

(** ASCII table rendering for the benchmark harness.

    The benchmark binary prints one table per paper table/figure; this module
    keeps them aligned and readable in a terminal and in [bench_output.txt]. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length header then
          invalid_arg "Table.create: aligns/header length mismatch";
        a
    | None -> List.map (fun _ -> Left) header
  in
  { title; header; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d"
         (List.length t.header) (List.length row));
  t.rows <- row :: t.rows

let addf t fmt = Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let line ch =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) ch) widths))
    ^ "+"
  in
  let render_row row =
    "| "
    ^ String.concat " | "
        (List.mapi (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell) row)
    ^ " |"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (render_row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print t = print_string (render t)

(** Format seconds compactly: picks ns/us/ms/s. *)
let fmt_time s =
  if s < 1e-6 then Printf.sprintf "%.1fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let fmt_speedup x = Printf.sprintf "%.2fx" x

let fmt_pct x = Printf.sprintf "%+.1f%%" x

let fmt_bytes (b : float) =
  if b < 1024.0 then Printf.sprintf "%.0fB" b
  else if b < 1024.0 ** 2.0 then Printf.sprintf "%.1fKB" (b /. 1024.0)
  else if b < 1024.0 ** 3.0 then Printf.sprintf "%.1fMB" (b /. (1024.0 ** 2.0))
  else Printf.sprintf "%.2fGB" (b /. (1024.0 ** 3.0))

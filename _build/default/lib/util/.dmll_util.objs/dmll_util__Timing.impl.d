lib/util/timing.ml: Array Stats Unix

(** Small statistics helpers used by the benchmark harness and tests. *)

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a
    /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

(** [percentile p a] with [p] in [\[0,100\]]; linear interpolation. *)
let percentile p a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let s = Array.copy a in
  Array.sort compare s;
  if n = 1 then s.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)
  end

let median a = percentile 50.0 a

(** Geometric mean; requires strictly positive entries. *)
let geomean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.geomean: empty";
  exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 a /. float_of_int n)

(** Histogram of [a] into [bins] equal-width buckets over [\[lo, hi)]. *)
let histogram ~bins ~lo ~hi a =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let h = Array.make bins 0 in
  let w = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      if x >= lo && x < hi then begin
        let b = int_of_float ((x -. lo) /. w) in
        let b = Stdlib.min b (bins - 1) in
        h.(b) <- h.(b) + 1
      end)
    a;
  h

lib/machine/machine.ml:

(** DimmWitted-style Gibbs sampling baseline (paper §6.3).

    The paper attributes DMLL's 2-3x win over the hand-written DimmWitted
    engine to data layout: "the efficiency of our generated code that uses
    unwrapped arrays of primitives, while the hand-written version
    contained more pointer indirections in the factor graph implementation
    for the sake of user-friendly abstractions."

    This module reproduces that axis faithfully: the factor graph is held
    as a pointer-linked object graph (each variable holds a list of factor
    objects, each factor references its variable objects) and the sweep
    chases those pointers, computing the same samples as
    [Dmll_apps.Gibbs.handopt_sweep] on flat arrays.  Benchmarks time both
    for real; the scaling across sockets uses the same per-socket-replica
    strategy as DMLL. *)

module Fg = Dmll_data.Factor_graph

(* The "user-friendly abstraction": an object graph with indirections. *)
type variable = {
  vid : int;
  mutable value : float;
  bias : float;
  mutable factors : factor list;
}

and factor = { weight : float; va : variable; vb : variable }

type model = { vars : variable array }

(** Build the pointer-linked representation from the flat description. *)
let of_flat (g : Fg.t) : model =
  let vars =
    Array.init g.Fg.nvars (fun v ->
        { vid = v; value = 0.0; bias = g.Fg.bias.(v); factors = [] })
  in
  for f = g.Fg.nfactors - 1 downto 0 do
    let fa = vars.(g.Fg.var_a.(f)) and fb = vars.(g.Fg.var_b.(f)) in
    let fobj = { weight = g.Fg.weight.(f); va = fa; vb = fb } in
    fa.factors <- fobj :: fa.factors;
    fb.factors <- fobj :: fb.factors
  done;
  { vars }

let load_state (m : model) (state : float array) : unit =
  Array.iteri (fun i v -> v.value <- state.(i)) m.vars

(** One sweep, Jacobi-style against [prev] like the DMLL program, writing
    into [out].  The inner loop chases factor and variable pointers. *)
let sweep (m : model) ~(prev : float array) ~(rand : float array) ~(rand_base : int)
    ~(out : float array) : unit =
  Array.iter
    (fun v ->
      let acc = ref v.bias in
      List.iter
        (fun f ->
          let other = if f.va.vid = v.vid then f.vb else f.va in
          acc := !acc +. (f.weight *. prev.(other.vid)))
        v.factors;
      let p = 1.0 /. (1.0 +. Stdlib.exp (-. !acc)) in
      out.(v.vid) <- (if rand.(rand_base + v.vid) < p then 1.0 else 0.0))
    m.vars

(* ------------------------------------------------------------------ *)
(* Scaling model                                                       *)
(* ------------------------------------------------------------------ *)

(** Simulated time of one sweep on [threads] threads of the paper's NUMA
    box.  Both DimmWitted and DMLL use per-socket replicas with Hogwild
    threads inside a socket, so both scale near-linearly (Figure 8); they
    differ by the per-factor constant: [indirection_factor] models the
    pointer-chasing layout (measured for real by the benchmarks, typically
    2-3x). *)
let sweep_seconds ?(indirection_factor = 2.5)
    ?(machine = Dmll_machine.Machine.stanford_numa) ~(threads : int) (g : Fg.t) : float
    =
  let sock = machine.Dmll_machine.Machine.socket in
  let touches = float_of_int g.Fg.adj_offsets.(g.Fg.nvars) in
  let flops_per_touch = 4.0 in
  let t = float_of_int (Stdlib.max 1 threads) in
  (* Hogwild within a socket is near-perfect; replicas across sockets are
     independent, so scaling is linear with a small replica-merge cost *)
  let base =
    touches *. flops_per_touch *. indirection_factor
    /. (t *. sock.Dmll_machine.Machine.core_gflops *. 1e9)
  in
  let merge = float_of_int g.Fg.nvars *. 8.0 /. (sock.Dmll_machine.Machine.local_bw_gbs *. 1e9) in
  base +. merge

(** The benchmark applications ported to MiniSpark, "performing all
    possible optimizations manually" as the paper did for its Spark
    comparisons (§6.1): map-side combining, broadcasting small data,
    caching in memory.  Structural limits faithfully remain: rows are
    boxed records (the paper notes AoS→SoA "is not possible in Spark"),
    every stage materializes, and groupBys shuffle. *)

module S = Minispark
module Tpch = Dmll_data.Tpch
module Genes = Dmll_data.Genes
module Gaussian = Dmll_data.Gaussian

(* ---------------- TPC-H Q1 ---------------- *)

type q1_row = {
  rf : int;
  ls : int;
  qty : float;
  price : float;
  disc : float;
  tax : float;
  ship : int;
}

type q1_agg = {
  a_qty : float;
  a_base : float;
  a_disc_price : float;
  a_charge : float;
  a_disc : float;
  a_cnt : int;
}

let q1_add a b =
  { a_qty = a.a_qty +. b.a_qty;
    a_base = a.a_base +. b.a_base;
    a_disc_price = a.a_disc_price +. b.a_disc_price;
    a_charge = a.a_charge +. b.a_charge;
    a_disc = a.a_disc +. b.a_disc;
    a_cnt = a.a_cnt + b.a_cnt;
  }

(** Returns ((rf, ls), aggregates) rows and the context with time. *)
let q1 (platform : S.platform) (t : Tpch.table) :
    ((int * int) * q1_agg) array * S.ctx =
  let ctx = S.new_ctx platform in
  (* the RDD of boxed row records: Spark cannot columnarize this *)
  let rows =
    Array.init t.Tpch.n (fun i ->
        { rf = t.Tpch.returnflag.(i);
          ls = t.Tpch.linestatus.(i);
          qty = t.Tpch.quantity.(i);
          price = t.Tpch.extendedprice.(i);
          disc = t.Tpch.discount.(i);
          tax = t.Tpch.tax.(i);
          ship = t.Tpch.shipdate.(i);
        })
  in
  let rdd = S.of_array ctx rows in
  let result =
    rdd
    |> S.filter ~bytes:60.0 (fun r -> r.ship <= Tpch.q1_cutoff)
    |> S.map ~flops:12.0 ~bytes:60.0 (fun r ->
           let dp = r.price *. (1.0 -. r.disc) in
           ( (r.rf, r.ls),
             { a_qty = r.qty; a_base = r.price; a_disc_price = dp;
               a_charge = dp *. (1.0 +. r.tax); a_disc = r.disc; a_cnt = 1 } ))
    |> S.reduce_by_key ~flops:12.0 ~value_bytes:56.0 q1_add
    |> S.collect
  in
  (result, ctx)

(* ---------------- gene barcoding ---------------- *)

let gene (platform : S.platform) (r : Genes.reads) :
    (int * (int * float)) array * S.ctx =
  let ctx = S.new_ctx platform in
  let reads =
    Array.init r.Genes.n (fun i -> (r.Genes.barcode.(i), r.Genes.quality.(i)))
  in
  let result =
    S.of_array ctx reads
    |> S.filter ~bytes:24.0 (fun (_, q) -> q >= Genes.min_quality)
    |> S.map ~flops:2.0 ~bytes:24.0 (fun (b, q) -> (b, (1, q)))
    |> S.reduce_by_key ~flops:4.0 ~value_bytes:24.0 (fun (c1, q1) (c2, q2) ->
           (c1 + c2, q1 +. q2))
    |> S.map ~flops:8.0 ~bytes:24.0 (fun (b, (c, q)) -> (b, (c, q /. float_of_int c)))
    |> S.collect
  in
  (result, ctx)

(* ---------------- k-means (one iteration) ---------------- *)

(** RDD[Vector] of rows, broadcast centroids — the paper's Figure-1
    "distributed-memory version" lowered manually. *)
let kmeans_iteration (platform : S.platform) (d : Gaussian.dataset)
    ~(centroids : float array) ~(k : int) : float array * S.ctx =
  let ctx = S.new_ctx platform in
  let cols = d.Gaussian.cols in
  let rows =
    Array.init d.Gaussian.rows (fun i ->
        Array.sub d.Gaussian.data (i * cols) cols)
  in
  let cent = S.broadcast ctx ~bytes:(float_of_int (k * cols * 8)) centroids in
  let row_bytes = float_of_int (cols * 8) in
  let assign_flops = float_of_int (3 * k * cols) in
  let result =
    S.of_array ctx rows
    |> S.map ~flops:assign_flops ~bytes:row_bytes (fun row ->
           (* nearest centroid *)
           let best = ref 0 and best_d = ref infinity in
           for kk = 0 to k - 1 do
             let acc = ref 0.0 in
             for j = 0 to cols - 1 do
               let x = row.(j) -. cent.((kk * cols) + j) in
               acc := !acc +. (x *. x)
             done;
             if !acc < !best_d then begin
               best_d := !acc;
               best := kk
             end
           done;
           (!best, (row, 1)))
    |> S.reduce_by_key ~flops:(float_of_int cols) ~value_bytes:row_bytes
         (fun (r1, c1) (r2, c2) -> (Array.map2 ( +. ) r1 r2, c1 + c2))
    |> S.map ~flops:(float_of_int cols) ~bytes:row_bytes (fun (kk, (sum, c)) ->
           (kk, Array.map (fun s -> s /. float_of_int (Stdlib.max c 1)) sum))
    |> S.collect
  in
  let flat = Array.make (k * cols) 0.0 in
  Array.iter (fun (kk, row) -> Array.blit row 0 flat (kk * cols) cols) result;
  (flat, ctx)

(* ---------------- logistic regression (one step) ---------------- *)

let logreg_step (platform : S.platform) (d : Gaussian.dataset) ~(theta : float array)
    ~(alpha : float) : float array * S.ctx =
  let ctx = S.new_ctx platform in
  let cols = d.Gaussian.cols in
  let labels = Gaussian.binary_labels d in
  let rows =
    Array.init d.Gaussian.rows (fun i ->
        (Array.sub d.Gaussian.data (i * cols) cols, labels.(i)))
  in
  let th = S.broadcast ctx ~bytes:(float_of_int (cols * 8)) theta in
  let row_bytes = float_of_int (cols * 8) in
  let grad =
    S.of_array ctx rows
    |> S.map ~flops:(float_of_int (4 * cols)) ~bytes:row_bytes (fun (row, y) ->
           let z = ref 0.0 in
           for j = 0 to cols - 1 do
             z := !z +. (row.(j) *. th.(j))
           done;
           let h = 1.0 /. (1.0 +. Stdlib.exp (-. !z)) in
           let dlt = y -. h in
           Array.map (fun x -> x *. dlt) row)
    |> S.reduce ~flops:(float_of_int cols) ~bytes:row_bytes (Array.map2 ( +. ))
  in
  let grad = match grad with Some g -> g | None -> Array.make cols 0.0 in
  (Array.init cols (fun j -> theta.(j) +. (alpha *. grad.(j))), ctx)

(* ---------------- GDA ---------------- *)

let gda (platform : S.platform) (d : Gaussian.dataset) :
    (float * float array * float array * float array) * S.ctx =
  let ctx = S.new_ctx platform in
  let cols = d.Gaussian.cols in
  let labels = Gaussian.binary_labels d in
  let rows =
    Array.init d.Gaussian.rows (fun i ->
        (Array.sub d.Gaussian.data (i * cols) cols, labels.(i)))
  in
  let rdd = S.of_array ctx rows in
  let row_bytes = float_of_int (cols * 8) in
  (* pass 1: class sums and counts *)
  let sums =
    rdd
    |> S.map ~flops:2.0 ~bytes:row_bytes (fun (row, y) ->
           ((y > 0.5), (row, 1)))
    |> S.reduce_by_key ~flops:(float_of_int cols) ~value_bytes:row_bytes
         (fun (r1, c1) (r2, c2) -> (Array.map2 ( +. ) r1 r2, c1 + c2))
    |> S.collect
  in
  let find b =
    match Array.find_opt (fun (k, _) -> k = b) sums with
    | Some (_, (s, c)) -> (s, Stdlib.max c 1)
    | None -> (Array.make cols 0.0, 1)
  in
  let s0, n0 = find false and s1, n1 = find true in
  let mu0 = Array.map (fun s -> s /. float_of_int n0) s0 in
  let mu1 = Array.map (fun s -> s /. float_of_int n1) s1 in
  let mu0b = S.broadcast ctx ~bytes:row_bytes mu0 in
  let mu1b = S.broadcast ctx ~bytes:row_bytes mu1 in
  (* pass 2: pooled scatter matrix *)
  let sigma =
    rdd
    |> S.map
         ~flops:(float_of_int (2 * cols * cols))
         ~bytes:(row_bytes *. float_of_int cols)
         (fun (row, y) ->
           let mu = if y > 0.5 then mu1b else mu0b in
           let d_ = Array.init cols (fun j -> row.(j) -. mu.(j)) in
           let out = Array.make (cols * cols) 0.0 in
           for a = 0 to cols - 1 do
             for b = 0 to cols - 1 do
               out.((a * cols) + b) <- d_.(a) *. d_.(b)
             done
           done;
           out)
    |> S.reduce ~flops:(float_of_int (cols * cols)) ~bytes:(row_bytes *. float_of_int cols)
         (Array.map2 ( +. ))
  in
  let n = float_of_int d.Gaussian.rows in
  let sigma =
    match sigma with
    | Some s -> Array.map (fun x -> x /. n) s
    | None -> Array.make (cols * cols) 0.0
  in
  ((float_of_int n1 /. n, mu0, mu1, sigma), ctx)

(** MiniGraph: a PowerGraph-style gather-apply-scatter engine.

    Executes synchronous vertex programs over CSR graphs for real, while
    charging the costs that shape the paper's PowerGraph comparisons
    (§6.2): per-edge gather dispatch through the vertex-program interface
    (the "library implementation" overhead DMLL's generated loops avoid),
    and — in distributed mode — vertex-cut replication: high-degree
    vertices are mirrored on several machines, and each mirror exchanges
    its partial gather and the updated vertex data every superstep. *)

module M = Dmll_machine.Machine
module Csr = Dmll_graph.Csr

type platform = {
  nodes : int;
  cores_per_node : int;
  core_gflops : float;
  mem_bw_gbs : float;
  net : M.cluster option;
  per_edge_ns : float;  (** vertex-program dispatch per edge *)
  per_vertex_ns : float;
}

let numa_platform ?(threads = 48) () =
  { nodes = 1;
    cores_per_node = threads;
    core_gflops = M.stanford_numa.M.socket.M.core_gflops;
    mem_bw_gbs = M.stanford_numa.M.socket.M.local_bw_gbs *. 1.5;
    net = None;
    (* PowerGraph's vertex-program dispatch and message-passing abstraction
       cost real time per edge even in shared memory — the "library
       implementation" overhead the paper contrasts with DMLL's generated
       loops (§6.2) *)
    per_edge_ns = 150.0;
    per_vertex_ns = 300.0;
  }

let cluster_platform ?(nodes = 4) () =
  { nodes;
    cores_per_node = 12;
    core_gflops = 3.3;
    mem_bw_gbs = 32.0;
    net = Some (M.with_nodes nodes M.gpu_cluster);
    per_edge_ns = 150.0;
    per_vertex_ns = 300.0;
  }

(** Empirical vertex-cut replication factor for power-law graphs (Gonzalez
    et al., OSDI'12 report ~2-5x for 8-64 machines; sqrt-ish growth). *)
let replication_factor ~nodes =
  if nodes <= 1 then 1.0 else 1.0 +. (0.8 *. sqrt (float_of_int nodes))

type ctx = { platform : platform; mutable sim_seconds : float; mutable net_bytes : float }

let new_ctx platform = { platform; sim_seconds = 0.0; net_bytes = 0.0 }

(** A synchronous vertex program: gather over in-edges, sum, apply. *)
type ('g, 'v) program = {
  gather : src:int -> dst:int -> 'g;
  sum : 'g -> 'g -> 'g;
  apply : vertex:int -> 'g option -> 'v;
  gather_flops : float;  (** per edge, for the time model *)
  vertex_bytes : float;  (** per-vertex data exchanged between mirrors *)
}

(** One superstep: returns the per-vertex results and charges time. *)
let superstep (ctx : ctx) (g : Csr.t) (p : ('g, 'v) program) : 'v array =
  let result =
    Array.init g.Csr.nv (fun v ->
        let acc = ref None in
        Csr.in_neighbors g v (fun u ->
            let gv = p.gather ~src:u ~dst:v in
            acc := Some (match !acc with None -> gv | Some a -> p.sum a gv));
        p.apply ~vertex:v !acc)
  in
  (* time model *)
  let pf = ctx.platform in
  let ne = float_of_int (Array.length g.Csr.in_sources) in
  let nv = float_of_int g.Csr.nv in
  let slots = float_of_int (pf.nodes * pf.cores_per_node) in
  let cpu_s =
    ((ne *. ((pf.per_edge_ns *. 1e-9) +. (p.gather_flops /. (pf.core_gflops *. 1e9))))
    +. (nv *. pf.per_vertex_ns *. 1e-9))
    /. slots
  in
  let mem_s = ne *. 16.0 /. (pf.mem_bw_gbs *. 1e9 *. float_of_int pf.nodes) in
  ctx.sim_seconds <- ctx.sim_seconds +. Stdlib.max cpu_s mem_s;
  (match pf.net with
  | Some net ->
      (* mirrors exchange gather partials + updated vertex data *)
      let repl = replication_factor ~nodes:pf.nodes in
      let bytes = nv *. (repl -. 1.0) *. 2.0 *. p.vertex_bytes in
      ctx.net_bytes <- ctx.net_bytes +. bytes;
      ctx.sim_seconds <-
        ctx.sim_seconds
        +. (bytes /. (net.M.ser_gbs *. 1e9))
        +. (bytes /. (net.M.net_bw_gbs *. 1e9))
        +. (2.0 *. float_of_int pf.nodes *. net.M.net_lat_us *. 1e-6)
  | None -> ());
  result

(* ---------------- PageRank on the engine ---------------- *)

let pagerank_step (ctx : ctx) (g : Csr.t) (rank : float array) : float array =
  let base = (1.0 -. Dmll_graph.Kernels.damping) /. float_of_int g.Csr.nv in
  let out_deg = Csr.out_degrees g in
  superstep ctx g
    { gather =
        (fun ~src ~dst ->
          ignore dst;
          rank.(src) /. float_of_int (Stdlib.max out_deg.(src) 1));
      sum = ( +. );
      apply =
        (fun ~vertex:_ acc ->
          base +. (Dmll_graph.Kernels.damping *. Option.value acc ~default:0.0));
      gather_flops = 10.0;
      vertex_bytes = 16.0;
    }

let pagerank (ctx : ctx) ?(iters = 10) (g : Csr.t) : float array =
  let r = ref (Array.make g.Csr.nv (1.0 /. float_of_int g.Csr.nv)) in
  for _ = 1 to iters do
    r := pagerank_step ctx g !r
  done;
  !r

(* ---------------- Triangle counting on the engine ---------------- *)

(** PowerGraph-style triangle counting: each vertex gathers its neighbor
    set, then each edge intersects the two sets.  We execute the
    sorted-merge intersection for real and charge the per-edge
    intersection work plus the neighbor-set exchange. *)
let triangle_count (ctx : ctx) (g : Csr.t) : int =
  let count = Dmll_graph.Kernels.triangle_count g in
  let pf = ctx.platform in
  let ne = float_of_int (Array.length g.Csr.out_targets) in
  (* average intersection cost ~ average degree *)
  let avg_deg = ne /. float_of_int (Stdlib.max g.Csr.nv 1) in
  let slots = float_of_int (pf.nodes * pf.cores_per_node) in
  ctx.sim_seconds <-
    ctx.sim_seconds
    +. (ne *. avg_deg *. ((pf.per_edge_ns *. 0.3) +. 2.0) *. 1e-9 /. slots);
  (match pf.net with
  | Some net ->
      (* neighbor lists shipped to edge mirrors, both gather and apply
         directions *)
      let repl = replication_factor ~nodes:pf.nodes in
      let bytes = ne *. 8.0 *. (repl -. 1.0) *. 2.0 in
      ctx.net_bytes <- ctx.net_bytes +. bytes;
      ctx.sim_seconds <-
        ctx.sim_seconds
        +. (bytes /. (net.M.ser_gbs *. 1e9))
        +. (bytes /. (net.M.net_bw_gbs *. 1e9))
  | None -> ());
  count

lib/baselines/dimmwitted.ml: Array Dmll_data Dmll_machine List Stdlib

lib/baselines/minispark.ml: Array Dmll_machine Hashtbl List Seq Stdlib

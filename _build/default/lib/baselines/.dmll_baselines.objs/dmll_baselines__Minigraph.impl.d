lib/baselines/minigraph.ml: Array Dmll_graph Dmll_machine Option Stdlib

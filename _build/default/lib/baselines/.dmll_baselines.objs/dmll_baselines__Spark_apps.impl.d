lib/baselines/spark_apps.ml: Array Dmll_data Minispark Stdlib

(** MiniSpark: an executable RDD engine standing in for Spark.

    The engine really computes (baseline results are checked against DMLL
    and the hand-optimized references in the tests) while charging
    simulated time for the structural costs the paper attributes Spark's
    gap to (§6.1-6.2):

    - {e per-record dispatch}: every record of every narrow operation pays
      a closure-call + boxing tax (library execution of boxed records — no
      fusion, no AoS→SoA);
    - {e materialization}: each transformation materializes its output
      (no pipeline fusion), inflating memory traffic by the boxed-record
      factor;
    - {e no NUMA placement}: on a multi-socket machine the JVM cannot
      place memory, so streaming bandwidth is capped
      ([Machine.numa.malloc_numa_aware = false]);
    - {e shuffles}: wide operations serialize every record and cross the
      network (or sockets).

    Tasks are partition-granular with Spark-style scheduling overhead. *)

module M = Dmll_machine.Machine

type platform = {
  nodes : int;
  cores_per_node : int;
  core_gflops : float;
  mem_bw_gbs : float;  (** effective streaming bandwidth per node *)
  net : M.cluster option;  (** None: single machine (threads only) *)
  per_record_ns : float;  (** dispatch + boxing tax per record per op *)
  task_overhead_us : float;  (** per-task scheduling cost *)
  boxed_bytes_factor : float;  (** record inflation vs unboxed columns *)
}

(** Spark on the paper's 4-socket NUMA box: the JVM sees 48 cores but no
    NUMA placement, so bandwidth is a single socket's plus interleaving. *)
let numa_platform ?(threads = 48) () =
  { nodes = 1;
    cores_per_node = threads;
    core_gflops = M.stanford_numa.M.socket.M.core_gflops *. 0.6 (* JVM *);
    mem_bw_gbs = M.stanford_numa.M.socket.M.local_bw_gbs *. 1.3;
    net = None;
    per_record_ns = 250.0;
    task_overhead_us = 150.0;
    boxed_bytes_factor = 2.5;
  }

(** Spark on the paper's 20-node EC2 cluster. *)
let ec2_platform ?(nodes = 20) () =
  { nodes;
    cores_per_node = 4;
    core_gflops = 1.2 *. 0.6;
    mem_bw_gbs = 10.0;
    net = Some (M.with_nodes nodes M.ec2_cluster);
    per_record_ns = 120.0;
    task_overhead_us = 400.0;
    boxed_bytes_factor = 2.5;
  }

type ctx = {
  platform : platform;
  mutable sim_seconds : float;
  mutable shuffled_bytes : float;
  mutable records_processed : int;
}

let new_ctx platform = { platform; sim_seconds = 0.0; shuffled_bytes = 0.0; records_processed = 0 }

type 'a rdd = { ctx : ctx; parts : 'a array array }

let num_partitions r = Array.length r.parts

let total_slots p = p.nodes * p.cores_per_node

(* Charge a narrow (per-record, no shuffle) stage. *)
let charge_narrow (ctx : ctx) ~(records : int) ~(flops_per_record : float)
    ~(bytes_per_record : float) ~(partitions : int) =
  let p = ctx.platform in
  let slots = total_slots p in
  let waves = (partitions + slots - 1) / Stdlib.max 1 slots in
  let recs_per_part = float_of_int records /. float_of_int (Stdlib.max 1 partitions) in
  let cpu_s =
    recs_per_part
    *. ((p.per_record_ns *. 1e-9) +. (flops_per_record /. (p.core_gflops *. 1e9)))
  in
  let mem_s =
    recs_per_part *. bytes_per_record *. p.boxed_bytes_factor
    /. (p.mem_bw_gbs *. 1e9 /. float_of_int (Stdlib.max 1 (p.cores_per_node / 4)))
  in
  (* a wave's time is its slowest task; assume near-even partitions *)
  ctx.sim_seconds <-
    ctx.sim_seconds
    +. (float_of_int waves *. (Stdlib.max cpu_s mem_s +. (p.task_overhead_us *. 1e-6)));
  ctx.records_processed <- ctx.records_processed + records

(* Charge a shuffle of [bytes] across the platform. *)
let charge_shuffle (ctx : ctx) ~(bytes : float) =
  let p = ctx.platform in
  (match p.net with
  | Some net ->
      let cross = bytes *. float_of_int (p.nodes - 1) /. float_of_int (Stdlib.max 1 p.nodes) in
      ctx.sim_seconds <-
        ctx.sim_seconds
        +. (bytes /. (net.M.ser_gbs *. 1e9)) (* serialize *)
        +. (cross /. (net.M.net_bw_gbs *. 1e9))
        +. (float_of_int (p.nodes * 2) *. net.M.net_lat_us *. 1e-6)
  | None ->
      (* single machine: hash-exchange through memory, still serialized *)
      ctx.sim_seconds <-
        ctx.sim_seconds +. (bytes *. 2.0 /. (p.mem_bw_gbs *. 1e9)));
  ctx.shuffled_bytes <- ctx.shuffled_bytes +. bytes

(* ------------------------------------------------------------------ *)
(* RDD operations                                                      *)
(* ------------------------------------------------------------------ *)

let default_partitions (ctx : ctx) = Stdlib.max 1 (2 * total_slots ctx.platform)

let of_array ?partitions (ctx : ctx) (a : 'a array) : 'a rdd =
  let p = match partitions with Some p -> p | None -> default_partitions ctx in
  let n = Array.length a in
  let p = Stdlib.max 1 (Stdlib.min p (Stdlib.max 1 n)) in
  let parts =
    Array.init p (fun i ->
        let lo = n * i / p and hi = n * (i + 1) / p in
        Array.sub a lo (hi - lo))
  in
  { ctx; parts }

(** [map ~flops ~bytes f r] — [flops]/[bytes] describe the user function's
    per-record cost for the time model (the data path is real). *)
let map ?(flops = 10.0) ?(bytes = 16.0) (f : 'a -> 'b) (r : 'a rdd) : 'b rdd =
  let records = Array.fold_left (fun acc p -> acc + Array.length p) 0 r.parts in
  charge_narrow r.ctx ~records ~flops_per_record:flops ~bytes_per_record:bytes
    ~partitions:(num_partitions r);
  { r with parts = Array.map (Array.map f) r.parts }

let filter ?(flops = 5.0) ?(bytes = 16.0) (f : 'a -> bool) (r : 'a rdd) : 'a rdd =
  let records = Array.fold_left (fun acc p -> acc + Array.length p) 0 r.parts in
  charge_narrow r.ctx ~records ~flops_per_record:flops ~bytes_per_record:bytes
    ~partitions:(num_partitions r);
  { r with parts = Array.map (fun p -> Array.of_seq (Seq.filter f (Array.to_seq p))) r.parts }

let count (r : 'a rdd) : int =
  Array.fold_left (fun acc p -> acc + Array.length p) 0 r.parts

let reduce ?(flops = 10.0) ?(bytes = 16.0) (f : 'a -> 'a -> 'a) (r : 'a rdd) : 'a option =
  let records = count r in
  charge_narrow r.ctx ~records ~flops_per_record:flops ~bytes_per_record:bytes
    ~partitions:(num_partitions r);
  let fold_part acc p = Array.fold_left (fun acc x -> match acc with None -> Some x | Some a -> Some (f a x)) acc p in
  Array.fold_left fold_part None r.parts

(** Wide operation: hash-partition by key and combine per key. *)
let reduce_by_key ?(flops = 10.0) ?(key_bytes = 16.0) ?(value_bytes = 16.0)
    (combine : 'v -> 'v -> 'v) (r : ('k * 'v) rdd) : ('k * 'v) rdd =
  let records = count r in
  charge_narrow r.ctx ~records ~flops_per_record:flops
    ~bytes_per_record:(key_bytes +. value_bytes) ~partitions:(num_partitions r);
  (* map-side combine, then shuffle the combined pairs *)
  let combined_per_part =
    Array.map
      (fun part ->
        let tbl = Hashtbl.create 64 in
        Array.iter
          (fun (k, v) ->
            match Hashtbl.find_opt tbl k with
            | Some v0 -> Hashtbl.replace tbl k (combine v0 v)
            | None -> Hashtbl.add tbl k v)
          part;
        tbl)
      r.parts
  in
  let shuffle_records =
    Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 combined_per_part
  in
  charge_shuffle r.ctx
    ~bytes:(float_of_int shuffle_records *. (key_bytes +. value_bytes)
            *. r.ctx.platform.boxed_bytes_factor);
  (* final combine, deterministic key order: first-seen across parts *)
  let final = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun tbl ->
      (* iterate in insertion-independent sorted order for determinism *)
      let kvs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt final k with
          | Some v0 -> Hashtbl.replace final k (combine v0 v)
          | None ->
              Hashtbl.add final k v;
              order := k :: !order)
        (List.sort compare kvs))
    combined_per_part;
  let pairs = List.rev_map (fun k -> (k, Hashtbl.find final k)) !order in
  of_array ~partitions:(num_partitions r) r.ctx (Array.of_list (List.rev pairs))

let group_by_key ?(key_bytes = 16.0) ?(value_bytes = 16.0) (r : ('k * 'v) rdd) :
    ('k * 'v list) rdd =
  let records = count r in
  charge_narrow r.ctx ~records ~flops_per_record:5.0
    ~bytes_per_record:(key_bytes +. value_bytes) ~partitions:(num_partitions r);
  (* no map-side combine possible: every record crosses the wire *)
  charge_shuffle r.ctx
    ~bytes:(float_of_int records *. (key_bytes +. value_bytes)
            *. r.ctx.platform.boxed_bytes_factor);
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (Array.iter (fun (k, v) ->
         match Hashtbl.find_opt tbl k with
         | Some vs -> Hashtbl.replace tbl k (v :: vs)
         | None ->
             Hashtbl.add tbl k [ v ];
             order := k :: !order))
    r.parts;
  let pairs = List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order in
  of_array ~partitions:(num_partitions r) r.ctx (Array.of_list (List.rev pairs))

let collect (r : 'a rdd) : 'a array = Array.concat (Array.to_list r.parts)

(** A broadcast variable: serialized once to every node. *)
let broadcast (ctx : ctx) ~(bytes : float) (v : 'a) : 'a =
  (match ctx.platform.net with
  | Some net ->
      ctx.sim_seconds <-
        ctx.sim_seconds
        +. (bytes /. (net.M.ser_gbs *. 1e9))
        +. (bytes *. float_of_int (ctx.platform.nodes - 1) /. (net.M.net_bw_gbs *. 1e9))
  | None -> ());
  v

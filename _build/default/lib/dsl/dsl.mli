(** The user-facing staged front-end: implicitly parallel collection
    operations that build DMLL IR.

    Applications are written once against this module (the paper's
    "single-source" programming model) and the compiler decides, per
    hardware target, how to restructure them.  Operations are staged: an
    ['a t] is an IR expression with a phantom type; calling an operation
    here builds a multiloop, it does not compute anything — hand the
    result of {!reveal} to [Dmll.compile].

    Sharing matters when staging: OCaml [let] duplicates the staged
    {e expression}; use {!let_} (or the [let$] binder) to create an IR
    binding that is computed once. *)

open Dmll_ir

type 'a t
(** A staged expression of (phantom) type ['a]. *)

type 'a staged = 'a t
(** Alias usable inside submodules that define their own [t]. *)

type 'a arr
(** Phantom: a staged array of ['a]. *)

type ('k, 'v) map
(** Phantom: a staged bucket map (the result of grouping). *)

val reveal : 'a t -> Exp.exp
(** The underlying IR. *)

val conceal : Exp.exp -> 'a t
(** Unsafely assign a phantom type to raw IR (for interop; the type
    checker still validates the IR itself). *)

(** {1 Scalars} *)

val int : int -> int t
val float : float -> float t
val bool : bool -> bool t
val str : string -> string t

val ( + ) : int t -> int t -> int t
val ( - ) : int t -> int t -> int t
val ( * ) : int t -> int t -> int t
val ( / ) : int t -> int t -> int t
val ( mod ) : int t -> int t -> int t
val imin : int t -> int t -> int t
val imax : int t -> int t -> int t

val ( +. ) : float t -> float t -> float t
val ( -. ) : float t -> float t -> float t
val ( *. ) : float t -> float t -> float t
val ( /. ) : float t -> float t -> float t
val sqrt : float t -> float t
val exp : float t -> float t
val log : float t -> float t
val abs_float : float t -> float t
val fmin : float t -> float t -> float t
val fmax : float t -> float t -> float t
val neg : float t -> float t
val to_float : int t -> float t
val to_int : float t -> int t

val ( = ) : 'a t -> 'a t -> bool t
val ( <> ) : 'a t -> 'a t -> bool t
val ( < ) : 'a t -> 'a t -> bool t
val ( <= ) : 'a t -> 'a t -> bool t
val ( > ) : 'a t -> 'a t -> bool t
val ( >= ) : 'a t -> 'a t -> bool t
val ( && ) : bool t -> bool t -> bool t
val ( || ) : bool t -> bool t -> bool t
val not : bool t -> bool t
val if_ : bool t -> 'a t -> 'a t -> 'a t

(** {1 Sharing} *)

val ty_of : Exp.exp -> Types.ty
(** Static IR type of a staged expression (from declared symbol types). *)

val let_ : ?name:string -> 'a t -> ('a t -> 'b t) -> 'b t
(** [let_ e k] computes [e] once and passes the shared binding to [k]. *)

val ( let$ ) : 'a t -> ('a t -> 'b t) -> 'b t
(** Binding operator: [let$ x = e in body]. *)

(** {1 Inputs} *)

val input_farr : ?layout:Exp.layout -> string -> float arr t
(** A named [float array] data source.  [~layout:Partitioned] marks it as
    the big dataset to distribute (the user annotation of paper §4.1). *)

val input_iarr : ?layout:Exp.layout -> string -> int arr t
val input_sarr : ?layout:Exp.layout -> string -> string arr t

val input_struct_arr : ?layout:Exp.layout -> string -> Types.ty -> 'a arr t
(** An array-of-structs source; AoS→SoA will split it into columns. *)

(** {1 Collections} *)

val length : 'a arr t -> int t
val get : 'a arr t -> int t -> 'a t
val field : 'a t -> string -> 'b t

val tabulate : int t -> (int t -> 'a t) -> 'a arr t
val map : 'a arr t -> ('a t -> 'b t) -> 'b arr t
val mapi : 'a arr t -> (int t -> 'a t -> 'b t) -> 'b arr t
val zip_with : 'a arr t -> 'b arr t -> ('a t -> 'b t -> 'c t) -> 'c arr t
val filter : 'a arr t -> ('a t -> bool t) -> 'a arr t

val flat_map_fixed : 'a arr t -> width:int t -> ('a t -> int t -> 'b t) -> 'b arr t
(** flatMap with a fixed expansion factor; encoded as one affine Collect
    so fusion and the stencil analysis see through it. *)

val sum_float : float arr t -> float t
val sum_int : int arr t -> int t
val sum_range : int t -> (int t -> float t) -> float t
val sum_range_int : int t -> (int t -> int t) -> int t

val sum_range_if : int t -> (int t -> bool t) -> (int t -> float t) -> float t
(** Conditional sum — the shape the Conditional Reduce rule (Figure 3)
    lifts when the predicate compares against an enclosing index. *)

val count_range_if : int t -> (int t -> bool t) -> int t
val reduce : 'a arr t -> init:'a t -> ('a t -> 'a t -> 'a t) -> 'a t

val reduce_range :
  ?cond:(int t -> bool t) ->
  int t ->
  init:'a t ->
  (int t -> 'a t) ->
  ('a t -> 'a t -> 'a t) ->
  'a t
(** General reduction over a range; with a vector init/combine this is the
    shape Row-to-Column inverts for GPUs. *)

val min_index : int t -> (int t -> float t) -> int t
(** Index of the minimum of [f] over [0, n); ties keep the first. *)

val mean : float arr t -> float t

(** {1 Grouping} *)

val group_by : 'a arr t -> key:('a t -> 'k t) -> ('k, 'a arr) map t
(** groupBy: buckets of elements sharing a key (a [BucketCollect]). *)

val group_reduce :
  int t ->
  key:(int t -> 'k t) ->
  value:(int t -> 'v t) ->
  init:'v t ->
  combine:('v t -> 'v t -> 'v t) ->
  ('k, 'v) map t
(** Single-traversal grouped reduction (a [BucketReduce]). *)

val buckets : ('k, 'v) map t -> int t
val bucket_value : ('k, 'v) map t -> int t -> 'v t
val bucket_key : ('k, 'v) map t -> int t -> 'k t
val lookup_or : ('k, 'v) map t -> 'k t -> default:'v t -> 'v t
val map_buckets : ('k, 'v) map t -> ('v t -> 'w t) -> 'w arr t

(** {1 Tuples} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val fst_ : ('a * 'b) t -> 'a t
val snd_ : ('a * 'b) t -> 'b t

(** {1 Vectors} *)

val vzero : int t -> float arr t
val vadd : float arr t -> float arr t -> float arr t
val vscale : float t -> float arr t -> float arr t
val dot : float arr t -> float arr t -> float t

(** {1 Matrices} *)

(** Dense row-major matrices: flat [Float] data plus meta-level
    dimensions, so every subscript stays affine ([i*cols + j]) and the
    stencil analysis and nested-pattern rules see through each access. *)
module Mat : sig
  type mat = { data : float arr staged; rows : int staged; cols : int staged }
  type t = mat

  val input : ?layout:Exp.layout -> string -> rows:int staged -> cols:int staged -> t
  val rows : t -> int staged
  val cols : t -> int staged
  val get : t -> int staged -> int staged -> float staged
  val row : t -> int staged -> float arr staged
  val map_rows :
    t -> (int staged -> (int staged -> float staged) -> 'a staged) -> 'a arr staged
  val dist2_row_vec : t -> int staged -> float arr staged -> float staged
  val dist2_rows : t -> int staged -> t -> int staged -> float staged
  val dot_row : t -> int staged -> float arr staged -> float staged
end

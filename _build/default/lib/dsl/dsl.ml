(** The user-facing staged front-end: implicitly parallel collection
    operations that build DMLL IR.

    Applications are written once against this module (the paper's
    "single-source" programming model) and the compiler decides, per
    hardware target, how to restructure them.  Operations are staged: an
    ['a t] is an IR expression with a phantom type; running an operation
    here builds a multiloop, it does not compute anything.

    Sharing matters when staging: OCaml [let] duplicates the staged
    {e expression}; use {!let_} (or the [let$] binder) to create an IR
    binding that is computed once. *)

open Dmll_ir

type 'a t = Exp.exp

(* alias usable inside submodules that define their own [t] *)
type 'a staged = 'a t

(* phantom type parameters: staged arrays and bucket maps *)
type 'a arr
type ('k, 'v) map

let reveal (e : 'a t) : Exp.exp = e
let conceal (e : Exp.exp) : 'a t = e

(* ---------------- scalars ---------------- *)

let int n : int t = Exp.int_ n
let float x : float t = Exp.float_ x
let bool b : bool t = Exp.bool_ b
let str s : string t = Exp.str_ s

let ( + ) (a : int t) b : int t = Builder.(a +! b)
let ( - ) (a : int t) b : int t = Builder.(a -! b)
let ( * ) (a : int t) b : int t = Builder.(a *! b)
let ( / ) (a : int t) b : int t = Builder.(a /! b)
let ( mod ) (a : int t) b : int t = Builder.(a %! b)
let imin (a : int t) b : int t = Builder.imin_ a b
let imax (a : int t) b : int t = Builder.imax_ a b

let ( +. ) (a : float t) b : float t = Builder.(a +. b)
let ( -. ) (a : float t) b : float t = Builder.(a -. b)
let ( *. ) (a : float t) b : float t = Builder.(a *. b)
let ( /. ) (a : float t) b : float t = Builder.(a /. b)
let sqrt (a : float t) : float t = Builder.sqrt_ a
let exp (a : float t) : float t = Builder.exp_ a
let log (a : float t) : float t = Builder.log_ a
let abs_float (a : float t) : float t = Builder.fabs_ a
let fmin (a : float t) b : float t = Builder.fmin_ a b
let fmax (a : float t) b : float t = Builder.fmax_ a b
let neg (a : float t) : float t = Exp.Prim (Prim.Fneg, [ a ])

let to_float (a : int t) : float t = Builder.i2f a
let to_int (a : float t) : int t = Builder.f2i a

let ( = ) (a : 'a t) (b : 'a t) : bool t = Builder.(a =! b)
let ( <> ) (a : 'a t) (b : 'a t) : bool t = Builder.(a <>! b)
let ( < ) (a : 'a t) (b : 'a t) : bool t = Builder.(a <! b)
let ( <= ) (a : 'a t) (b : 'a t) : bool t = Builder.(a <=! b)
let ( > ) (a : 'a t) (b : 'a t) : bool t = Builder.(a >! b)
let ( >= ) (a : 'a t) (b : 'a t) : bool t = Builder.(a >=! b)
let ( && ) (a : bool t) b : bool t = Builder.(a &&! b)
let ( || ) (a : bool t) b : bool t = Builder.(a ||! b)
let not (a : bool t) : bool t = Builder.not_ a

let if_ (c : bool t) (t : 'a t) (e : 'a t) : 'a t = Exp.If (c, t, e)

(* ---------------- sharing ---------------- *)

(* Staged binding requires the IR type of the bound expression; we infer it
   from declared symbol types, which is always possible for DSL-built
   terms. *)
let ty_of (e : Exp.exp) : Types.ty =
  Typecheck.infer
    (Sym.Set.fold
       (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
       (Exp.free_vars e) Sym.Map.empty)
    e

(** [let_ e k] computes [e] once and passes the shared binding to [k]. *)
let let_ ?(name = "v") (e : 'a t) (k : 'a t -> 'b t) : 'b t =
  Exp.bind ~name ~ty:(ty_of e) e k

(** Binding operator: [let$ x = e in body]. *)
let ( let$ ) (e : 'a t) (k : 'a t -> 'b t) : 'b t = let_ e k

(* ---------------- arrays ---------------- *)

(** Named input collection.  [layout] is the user annotation seeding the
    partitioning analysis (paper §4.1): annotate big data sources
    [~layout:Partitioned]. *)
let input_farr ?(layout = Exp.Local) name : float arr t =
  Exp.Input (name, Types.Arr Types.Float, layout)

let input_iarr ?(layout = Exp.Local) name : int arr t =
  Exp.Input (name, Types.Arr Types.Int, layout)

let input_sarr ?(layout = Exp.Local) name : string arr t =
  Exp.Input (name, Types.Arr Types.Str, layout)

let input_struct_arr ?(layout = Exp.Local) name (struct_ty : Types.ty) : 'a arr t =
  Exp.Input (name, Types.Arr struct_ty, layout)

let length (a : 'a arr t) : int t = Exp.Len a
let get (a : 'a arr t) (i : int t) : 'a t = Exp.Read (a, i)
let field (s : 'a t) (name : string) : 'b t = Exp.Field (s, name)

(** [tabulate n f] — a Collect over [0, n). *)
let tabulate (n : int t) (f : int t -> 'a t) : 'a arr t =
  Builder.collect ~size:n f

(** [map a f] — element-wise transformation. *)
let map (a : 'a arr t) (f : 'a t -> 'b t) : 'b arr t = Builder.map_arr a f

(** [mapi a f] — like {!map} with the index. *)
let mapi (a : 'a arr t) (f : int t -> 'a t -> 'b t) : 'b arr t =
  Builder.collect ~size:(Exp.Len a) (fun i -> f i (Exp.Read (a, i)))

(** [zip_with a b f] — element-wise combination (equal lengths assumed). *)
let zip_with (a : 'a arr t) (b : 'b arr t) (f : 'a t -> 'b t -> 'c t) : 'c arr t =
  Builder.zip_with a b f

(** [filter a p] — keep elements satisfying [p]. *)
let filter (a : 'a arr t) (p : 'a t -> bool t) : 'a arr t = Builder.filter a p

(** [flat_map_fixed a ~width f] — flatMap where every element expands to
    exactly [width] outputs ([f] receives the element and the inner
    position).  The encoding is a single Collect over [length a * width]
    with affine indexing, so stencil analysis and fusion see through it;
    variable-width flatMap is expressed as {!group_by}/{!map_buckets}
    pipelines instead. *)
let flat_map_fixed (a : 'a arr t) ~(width : int t) (f : 'a t -> int t -> 'b t) :
    'b arr t =
  Builder.collect
    ~size:Builder.(Exp.Len a *! width)
    (fun i -> f (Exp.Read (a, Builder.(i /! width))) Builder.(i %! width))

(** [sum_float a] / [sum_int a] — reductions with the standard monoids. *)
let sum_float (a : float arr t) : float t =
  Builder.fsum ~size:(Exp.Len a) (fun i -> Exp.Read (a, i))

let sum_int (a : int arr t) : int t =
  Builder.isum ~size:(Exp.Len a) (fun i -> Exp.Read (a, i))

(** [sum_range n f] — Σ_{i<n} f(i) without materializing the terms. *)
let sum_range (n : int t) (f : int t -> float t) : float t = Builder.fsum ~size:n f

let sum_range_int (n : int t) (f : int t -> int t) : int t = Builder.isum ~size:n f

(** Conditional sums: Σ f(i) over i with p(i) — the shape the Conditional
    Reduce rule (Figure 3) recognizes when [p] compares against an outer
    index. *)
let sum_range_if (n : int t) (p : int t -> bool t) (f : int t -> float t) : float t =
  Builder.fsum ~cond:p ~size:n f

let count_range_if (n : int t) (p : int t -> bool t) : int t =
  Builder.isum ~cond:p ~size:n (fun _ -> Exp.int_ 1)

(** General reduce with an explicit monoid. *)
let reduce (a : 'a arr t) ~(init : 'a t) (f : 'a t -> 'a t -> 'a t) : 'a t =
  Builder.reduce ~size:(Exp.Len a) ~ty:(ty_of init) ~init
    (fun i -> Exp.Read (a, i))
    f

(** General reduction over a range with an optional condition.  With a
    condition comparing against an enclosing index this is the shape the
    Conditional Reduce rule lifts; with a vector [init]/[combine] it is the
    vector-reduce shape Row-to-Column inverts. *)
let reduce_range ?cond (n : int t) ~(init : 'a t) (f : int t -> 'a t)
    (combine : 'a t -> 'a t -> 'a t) : 'a t =
  Builder.reduce ?cond ~size:n ~ty:(ty_of init) ~init f combine

(** Index of the minimum of [f] over [0, n) (ties: first). *)
let min_index (n : int t) (f : int t -> float t) : int t = Builder.min_index ~size:n f

(** Average of a float array. *)
let mean (a : float arr t) : float t =
  let_ ~name:"arr" a (fun a -> sum_float a /. to_float (length a))

(* ---------------- grouping ---------------- *)

(** [group_by a ~key] — buckets of elements sharing a key (groupBy). *)
let group_by (a : 'a arr t) ~(key : 'a t -> 'k t) : ('k, 'a arr) map t =
  Builder.bucket_collect ~size:(Exp.Len a)
    ~key:(fun i -> key (Exp.Read (a, i)))
    (fun i -> Exp.Read (a, i))

(** [group_reduce n ~key ~value ~init ~combine] — single-traversal grouped
    reduction (BucketReduce). *)
let group_reduce (n : int t) ~(key : int t -> 'k t) ~(value : int t -> 'v t)
    ~(init : 'v t) ~(combine : 'v t -> 'v t -> 'v t) : ('k, 'v) map t =
  Builder.bucket_reduce ~size:n ~ty:(ty_of init) ~key ~init value combine

(** Number of buckets. *)
let buckets (m : ('k, 'v) map t) : int t = Exp.Len m

(** Positional access to bucket values / keys. *)
let bucket_value (m : ('k, 'v) map t) (i : int t) : 'v t = Exp.Read (m, i)

let bucket_key (m : ('k, 'v) map t) (i : int t) : 'k t = Exp.KeyAt (m, i)

(** Keyed lookup with a default for absent keys. *)
let lookup_or (m : ('k, 'v) map t) (k : 'k t) ~(default : 'v t) : 'v t =
  Exp.MapRead (m, k, Some default)

(** Map over buckets (by position). *)
let map_buckets (m : ('k, 'v) map t) (f : 'v t -> 'w t) : 'w arr t =
  Builder.collect ~size:(Exp.Len m) (fun i -> f (Exp.Read (m, i)))

(* ---------------- tuples ---------------- *)

let pair (a : 'a t) (b : 'b t) : ('a * 'b) t = Exp.Tuple [ a; b ]
let fst_ (p : ('a * 'b) t) : 'a t = Exp.Proj (p, 0)
let snd_ (p : ('a * 'b) t) : 'b t = Exp.Proj (p, 1)

(* ---------------- vectors (float arrays as values) ---------------- *)

let vzero (n : int t) : float arr t = Builder.zero_vec n
let vadd (a : float arr t) (b : float arr t) : float arr t = Builder.vec_fadd a b
let vscale (k : float t) (a : float arr t) : float arr t = map a (fun x -> k *. x)
let dot (a : float arr t) (b : float arr t) : float t = Builder.dot a b

(* ---------------- matrices ---------------- *)

(** A dense row-major matrix: flat [Float] data plus meta-level dimensions.
    Subscripts stay affine ([i*cols + j]) so the stencil analysis and the
    nested-pattern rules see through every access. *)
module Mat = struct
  type mat = { data : float arr staged; rows : int staged; cols : int staged }
  type nonrec t = mat

  (** Matrix input backed by the flat array input [name]. *)
  let input ?(layout = Exp.Local) name ~rows ~cols =
    { data = input_farr ~layout name; rows; cols }

  let rows m = m.rows
  let cols m = m.cols

  let get m (i : int staged) (j : int staged) : float staged =
    Exp.Read (m.data, (i * m.cols) + j)

  (** Row [i] materialized as a vector. *)
  let row m (i : int staged) : float arr staged = tabulate m.cols (fun j -> get m i j)

  (** Map over rows: [f] receives the row index and an accessor. *)
  let map_rows m (f : int staged -> (int staged -> float staged) -> 'a staged) : 'a arr staged =
    tabulate m.rows (fun i -> f i (fun j -> get m i j))

  (** Squared Euclidean distance between row [i] and the vector [v]. *)
  let dist2_row_vec m (i : int staged) (v : float arr staged) : float staged =
    sum_range m.cols (fun j ->
        let$ d = get m i j -. Exp.Read (v, j) in
        d *. d)

  (** Squared distance between row [i] of [m] and row [k] of [m2]. *)
  let dist2_rows m (i : int staged) m2 (k : int staged) : float staged =
    sum_range m.cols (fun j ->
        let$ d = get m i j -. get m2 k j in
        d *. d)

  (** Dot product of row [i] with the vector [v]. *)
  let dot_row m (i : int staged) (v : float arr staged) : float staged =
    sum_range m.cols (fun j -> get m i j *. Exp.Read (v, j))
end

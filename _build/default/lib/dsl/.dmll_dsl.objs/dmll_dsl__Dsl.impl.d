lib/dsl/dsl.ml: Builder Dmll_ir Exp Prim Sym Typecheck Types

lib/dsl/dsl.mli: Dmll_ir Exp Types

(** Convenience builders for DMLL IR.

    The staged front-end ([Dmll_dsl]), the transformation rules, and the
    test suite all construct IR through this module; it provides infix
    operators and loop builders that insert the right generator shapes. *)

open Exp

(* -------------------- scalars -------------------- *)

let ( +! ) a b = Prim (Prim.Add, [ a; b ])
let ( -! ) a b = Prim (Prim.Sub, [ a; b ])
let ( *! ) a b = Prim (Prim.Mul, [ a; b ])
let ( /! ) a b = Prim (Prim.Div, [ a; b ])
let ( %! ) a b = Prim (Prim.Mod, [ a; b ])
let ( +. ) a b = Prim (Prim.Fadd, [ a; b ])
let ( -. ) a b = Prim (Prim.Fsub, [ a; b ])
let ( *. ) a b = Prim (Prim.Fmul, [ a; b ])
let ( /. ) a b = Prim (Prim.Fdiv, [ a; b ])
let ( =! ) a b = Prim (Prim.Eq, [ a; b ])
let ( <>! ) a b = Prim (Prim.Ne, [ a; b ])
let ( <! ) a b = Prim (Prim.Lt, [ a; b ])
let ( <=! ) a b = Prim (Prim.Le, [ a; b ])
let ( >! ) a b = Prim (Prim.Gt, [ a; b ])
let ( >=! ) a b = Prim (Prim.Ge, [ a; b ])
let ( &&! ) a b = Prim (Prim.And, [ a; b ])
let ( ||! ) a b = Prim (Prim.Or, [ a; b ])
let not_ a = Prim (Prim.Not, [ a ])
let sqrt_ a = Prim (Prim.Sqrt, [ a ])
let exp_ a = Prim (Prim.Exp, [ a ])
let log_ a = Prim (Prim.Log, [ a ])
let fabs_ a = Prim (Prim.Fabs, [ a ])
let i2f a = Prim (Prim.I2f, [ a ])
let f2i a = Prim (Prim.F2i, [ a ])
let fmin_ a b = Prim (Prim.Fmin, [ a; b ])
let fmax_ a b = Prim (Prim.Fmax, [ a; b ])
let imin_ a b = Prim (Prim.Min, [ a; b ])
let imax_ a b = Prim (Prim.Max, [ a; b ])

let read a i = Read (a, i)
let len a = Len a
let field a n = Field (a, n)
let if_ c t e = If (c, t, e)

(* -------------------- loop builders -------------------- *)

(** [collect ?cond ~size f] — a Collect multiloop; [f] receives the index
    variable. *)
let collect ?cond ~size f =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let cond = Option.map (fun c -> c (Var idx)) cond in
  loop1 ~size ~idx (Collect { cond; value = f (Var idx) })

(** [reduce ?cond ~size ~ty ~init f r] — a Reduce multiloop over values of
    type [ty]; [r] receives the two accumulator variables. *)
let reduce ?cond ~size ~ty ~init f r =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh ~name:"a" ty and b = Sym.fresh ~name:"b" ty in
  let cond = Option.map (fun c -> c (Var idx)) cond in
  loop1 ~size ~idx
    (Reduce { cond; value = f (Var idx); a; b; rfun = r (Var a) (Var b); init })

(** Sum of floats produced by [f] over [0, size). *)
let fsum ?cond ~size f =
  reduce ?cond ~size ~ty:Types.Float ~init:(float_ 0.0) f (fun a b -> a +. b)

(** Sum of ints produced by [f] over [0, size). *)
let isum ?cond ~size f =
  reduce ?cond ~size ~ty:Types.Int ~init:(int_ 0) f (fun a b -> a +! b)

(** [bucket_collect ?cond ~size ~key f] — a groupBy-style multiloop. *)
let bucket_collect ?cond ~size ~key f =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let cond = Option.map (fun c -> c (Var idx)) cond in
  loop1 ~size ~idx
    (BucketCollect { cond; key = key (Var idx); value = f (Var idx) })

(** [bucket_reduce ?cond ~size ~ty ~key ~init f r] — groupBy + on-the-fly
    reduction in one traversal. *)
let bucket_reduce ?cond ~size ~ty ~key ~init f r =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh ~name:"a" ty and b = Sym.fresh ~name:"b" ty in
  let cond = Option.map (fun c -> c (Var idx)) cond in
  loop1 ~size ~idx
    (BucketReduce
       { cond; key = key (Var idx); value = f (Var idx); a; b; rfun = r (Var a) (Var b); init })

(* -------------------- derived collection ops -------------------- *)

(** [map_arr arr f] — Collect over the length of [arr] applying [f] to each
    element. *)
let map_arr arr f = collect ~size:(len arr) (fun i -> f (read arr i))

(** [zip_with a b f] — element-wise combination (requires equal lengths). *)
let zip_with a b f = collect ~size:(len a) (fun i -> f (read a i) (read b i))

(** [filter arr p] — Collect with a condition, the DMLL encoding of filter. *)
let filter arr p =
  collect ~cond:(fun i -> p (read arr i)) ~size:(len arr) (fun i -> read arr i)

(** Vector (element-wise) float addition of two arrays — the reduction
    function shape introduced by the Column-to-Row rule. *)
let vec_fadd a b = zip_with a b ( +. )

(** A float zero-vector of length [n]. *)
let zero_vec n = collect ~size:n (fun _ -> float_ 0.0)

(** Dot product of two float arrays. *)
let dot a b = fsum ~size:(len a) (fun i -> read a i *. read b i)

(** Index of the minimum float produced by [f] over [0, size) — the argmin
    pattern used by k-means and kNN.  Encoded as a Reduce over (value,
    index) pairs. *)
let min_index ~size f =
  let pair_ty = Types.Tup [ Types.Float; Types.Int ] in
  let r =
    reduce ~size ~ty:pair_ty
      ~init:(Tuple [ float_ infinity; int_ (-1) ])
      (fun i -> Tuple [ f i; i ])
      (fun a b ->
        if_ (Proj (a, 0) <=! Proj (b, 0)) a b)
  in
  bind ~name:"argmin" ~ty:pair_ty r (fun p -> Proj (p, 1))

(** Range collect: the identity array [| 0; 1; ...; n-1 |]. *)
let range n = collect ~size:n (fun i -> i)

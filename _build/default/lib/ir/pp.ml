(** Pretty-printing of DMLL IR in the paper's surface notation.

    Loops print as [Collect_s(c)(f)], [Reduce_s(c)(f)(r)], etc., matching
    Figure 2 of the paper, which makes transformation traces in [dmllc]
    directly comparable to the rules in Figure 3. *)

open Exp

let pp_const fmt = function
  | Cunit -> Fmt.string fmt "()"
  | Cbool b -> Fmt.bool fmt b
  | Cint i -> Fmt.int fmt i
  | Cfloat f -> Fmt.pf fmt "%g" f
  | Cstr s -> Fmt.pf fmt "%S" s

let pp_layout fmt = function
  | Local -> Fmt.string fmt "Local"
  | Partitioned -> Fmt.string fmt "Partitioned"

let rec pp fmt (e : exp) =
  match e with
  | Const c -> pp_const fmt c
  | Var s -> Sym.pp fmt s
  | Prim (p, [ a ]) -> Fmt.pf fmt "%s(%a)" (Prim.name p) pp a
  | Prim (p, [ a; b ]) -> Fmt.pf fmt "(%a %s %a)" pp a (Prim.name p) pp b
  | Prim (p, args) ->
      Fmt.pf fmt "%s(%a)" (Prim.name p) Fmt.(list ~sep:(any ", ") pp) args
  | If (c, t, e') -> Fmt.pf fmt "@[<hv>if %a@ then %a@ else %a@]" pp c pp t pp e'
  | Let (s, a, b) ->
      Fmt.pf fmt "@[<v>val %a: %a = %a@,%a@]" Sym.pp s Types.pp (Sym.ty s) pp a pp b
  | Tuple es -> Fmt.pf fmt "(%a)" Fmt.(list ~sep:(any ", ") pp) es
  | Proj (a, i) -> Fmt.pf fmt "%a._%d" pp a i
  | Record (ty, fs) ->
      Fmt.pf fmt "%a{%a}" Types.pp ty
        Fmt.(list ~sep:(any ", ") (fun fmt (n, v) -> Fmt.pf fmt "%s=%a" n pp v))
        fs
  | Field (a, n) -> Fmt.pf fmt "%a.%s" pp a n
  | Len a -> Fmt.pf fmt "len(%a)" pp a
  | Read (a, i) -> Fmt.pf fmt "%a(%a)" pp a pp i
  | MapRead (m, k, None) -> Fmt.pf fmt "%a[%a]" pp m pp k
  | MapRead (m, k, Some d) -> Fmt.pf fmt "%a[%a ?: %a]" pp m pp k pp d
  | KeyAt (m, i) -> Fmt.pf fmt "%a.keyAt(%a)" pp m pp i
  | Input (n, ty, l) -> Fmt.pf fmt "input(%s: %a, %a)" n Types.pp ty pp_layout l
  | Extern { ename; eargs; _ } ->
      Fmt.pf fmt "extern %s(%a)" ename Fmt.(list ~sep:(any ", ") pp) eargs
  | Loop { size; idx; gens = [ g ] } -> pp_gen fmt ~size ~idx g
  | Loop { size; idx; gens } ->
      Fmt.pf fmt "@[<v 2>multiloop(%a) {%a =>@,%a@]@,}" pp size Sym.pp idx
        Fmt.(list ~sep:cut (fun fmt g -> pp_gen fmt ~size:unit_ ~idx g))
        gens

and pp_gen fmt ~size ~idx (g : gen) =
  let pp_cond fmt = function None -> Fmt.string fmt "_" | Some c -> pp fmt c in
  let pp_size fmt s = match s with Const Cunit -> () | s -> Fmt.pf fmt "(%a)" pp s in
  match g with
  | Collect { cond; value } ->
      Fmt.pf fmt "@[<hv 2>Collect%a(%a)(%a =>@ %a)@]" pp_size size pp_cond cond Sym.pp
        idx pp value
  | Reduce { cond; value; a; b; rfun; init } ->
      Fmt.pf fmt "@[<hv 2>Reduce%a(%a)(%a =>@ %a)(init=%a)((%a,%a) =>@ %a)@]" pp_size
        size pp_cond cond Sym.pp idx pp value pp init Sym.pp a Sym.pp b pp rfun
  | BucketCollect { cond; key; value } ->
      Fmt.pf fmt "@[<hv 2>BucketCollect%a(%a)(%a =>@ key=%a,@ %a)@]" pp_size size
        pp_cond cond Sym.pp idx pp key pp value
  | BucketReduce { cond; key; value; a; b; rfun; init } ->
      Fmt.pf fmt
        "@[<hv 2>BucketReduce%a(%a)(%a =>@ key=%a,@ %a)(init=%a)((%a,%a) =>@ %a)@]"
        pp_size size pp_cond cond Sym.pp idx pp key pp value pp init Sym.pp a Sym.pp b
        pp rfun

let to_string e = Fmt.str "@[<v>%a@]" pp e

(** DMLL types.

    DMLL is a small first-order language: scalars, fixed layouts of scalars
    (tuples and named structs), growable collections ([Arr]) and the result
    type of bucket generators ([Map]).  Functions are not first-class — the
    component functions of a multiloop generator (condition, key, value,
    reduction) are expressions over distinguished bound symbols, which is
    what lets the compiler recompose them per hardware target (paper §3.1). *)

type ty =
  | Unit
  | Bool
  | Int
  | Float
  | Str
  | Arr of ty  (** growable ordered collection *)
  | Tup of ty list
  | Struct of string * (string * ty) list
      (** nominal record; the field list is carried for structural passes
          (AoS→SoA, dead-field elimination) *)
  | Map of ty * ty
      (** finite map from keys to values: the result of a bucket generator.
          Supports keyed lookup and positional iteration over buckets. *)

let rec equal a b =
  match (a, b) with
  | Unit, Unit | Bool, Bool | Int, Int | Float, Float | Str, Str -> true
  | Arr a, Arr b -> equal a b
  | Tup a, Tup b -> List.length a = List.length b && List.for_all2 equal a b
  | Struct (n1, f1), Struct (n2, f2) ->
      String.equal n1 n2
      && List.length f1 = List.length f2
      && List.for_all2
           (fun (fa, ta) (fb, tb) -> String.equal fa fb && equal ta tb)
           f1 f2
  | Map (k1, v1), Map (k2, v2) -> equal k1 k2 && equal v1 v2
  | _ -> false

let rec pp fmt = function
  | Unit -> Fmt.string fmt "Unit"
  | Bool -> Fmt.string fmt "Bool"
  | Int -> Fmt.string fmt "Int"
  | Float -> Fmt.string fmt "Float"
  | Str -> Fmt.string fmt "Str"
  | Arr t -> Fmt.pf fmt "Arr[%a]" pp t
  | Tup ts -> Fmt.pf fmt "(%a)" Fmt.(list ~sep:(any ", ") pp) ts
  | Struct (n, _) -> Fmt.pf fmt "%s" n
  | Map (k, v) -> Fmt.pf fmt "Map[%a,%a]" pp k pp v

let to_string t = Fmt.str "%a" pp t

(** Is this a scalar (fixed-size, unboxed-representable) type?  Scalar-ness
    drives the GPU backend: only scalar reduction temporaries fit in shared
    memory (paper §6, Figure 6 discussion). *)
let is_scalar = function
  | Unit | Bool | Int | Float -> true
  | Str | Arr _ | Tup _ | Struct _ | Map _ -> false

(** Whether values of this type can serve as bucket keys. *)
let is_key_ty = function
  | Bool | Int | Str -> true
  | Tup ts -> List.for_all (fun t -> match t with Bool | Int | Str -> true | _ -> false) ts
  | _ -> false

(** Approximate size in bytes of one value of this type, used by the machine
    cost models to convert element counts into memory traffic.  Collections
    count as a pointer here; traffic through their *contents* is accounted
    separately by the stencil-driven cost analysis. *)
let rec byte_size = function
  | Unit | Bool -> 1
  | Int -> 8
  | Float -> 8
  | Str -> 16 (* short-string assumption for key columns *)
  | Arr _ | Map _ -> 8
  | Tup ts -> List.fold_left (fun acc t -> acc + byte_size t) 0 ts
  | Struct (_, fs) -> List.fold_left (fun acc (_, t) -> acc + byte_size t) 0 fs

(** Element type of a collection-like type. *)
let elem_ty = function
  | Arr t -> t
  | Map (_, v) -> v
  | t -> invalid_arg (Fmt.str "Types.elem_ty: %a is not a collection" pp t)

let struct_fields = function
  | Struct (_, fs) -> fs
  | t -> invalid_arg (Fmt.str "Types.struct_fields: %a is not a struct" pp t)

let field_ty ty name =
  match List.assoc_opt name (struct_fields ty) with
  | Some t -> t
  | None -> invalid_arg (Fmt.str "Types.field_ty: no field %s in %a" name pp ty)

(** Primitive scalar operations.

    Arithmetic is monomorphic (separate [Add]/[Fadd], in the style of most
    compiler IRs) so the type checker, cost analysis, and backends never
    need to re-infer operand types.  Comparisons are polymorphic over the
    scalar types and always return [Bool]. *)

type t =
  (* integer *)
  | Add | Sub | Mul | Div | Mod | Neg
  | Min | Max
  (* float *)
  | Fadd | Fsub | Fmul | Fdiv | Fneg
  | Fmin | Fmax
  | Sqrt | Exp | Log | Fabs | Pow
  (* conversions *)
  | I2f | F2i
  (* comparisons (polymorphic over Int/Float/Bool/Str operands) *)
  | Eq | Ne | Lt | Le | Gt | Ge
  (* boolean *)
  | And | Or | Not
  (* string *)
  | Strcat | Strlen | Strget  (** [Strget s i] = code of char [i] as Int *)

let arity = function
  | Neg | Fneg | Sqrt | Exp | Log | Fabs | I2f | F2i | Not | Strlen -> 1
  | Add | Sub | Mul | Div | Mod | Min | Max
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Pow
  | Eq | Ne | Lt | Le | Gt | Ge | And | Or | Strcat | Strget ->
      2

let name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Neg -> "neg" | Min -> "min" | Max -> "max"
  | Fadd -> "+." | Fsub -> "-." | Fmul -> "*." | Fdiv -> "/."
  | Fneg -> "fneg" | Fmin -> "fmin" | Fmax -> "fmax"
  | Sqrt -> "sqrt" | Exp -> "exp" | Log -> "log" | Fabs -> "fabs" | Pow -> "pow"
  | I2f -> "i2f" | F2i -> "f2i"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||" | Not -> "!"
  | Strcat -> "strcat" | Strlen -> "strlen" | Strget -> "strget"

let pp fmt p = Fmt.string fmt (name p)

(** Result type given operand types; [Error] carries a human-readable
    complaint used by the type checker. *)
let result_ty (p : t) (args : Types.ty list) : (Types.ty, string) result =
  let open Types in
  let err () =
    Error
      (Fmt.str "prim %s does not apply to (%a)" (name p)
         Fmt.(list ~sep:(any ", ") Types.pp)
         args)
  in
  match (p, args) with
  | (Add | Sub | Mul | Div | Mod | Min | Max), [ Int; Int ] -> Ok Int
  | Neg, [ Int ] -> Ok Int
  | (Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Pow), [ Float; Float ] -> Ok Float
  | (Fneg | Sqrt | Exp | Log | Fabs), [ Float ] -> Ok Float
  | I2f, [ Int ] -> Ok Float
  | F2i, [ Float ] -> Ok Int
  | (Eq | Ne | Lt | Le | Gt | Ge), [ a; b ]
    when Types.equal a b && (match a with Int | Float | Bool | Str -> true | _ -> false) ->
      Ok Bool
  | (And | Or), [ Bool; Bool ] -> Ok Bool
  | Not, [ Bool ] -> Ok Bool
  | Strcat, [ Str; Str ] -> Ok Str
  | Strlen, [ Str ] -> Ok Int
  | Strget, [ Str; Int ] -> Ok Int
  | _ -> err ()

(** Floating-point operation count contributed by one evaluation, for the
    machine cost models.  Transcendentals are weighted by their typical
    latency relative to an FMA. *)
let flops = function
  | Fadd | Fsub | Fmul | Fneg | Fmin | Fmax | Fabs -> 1.0
  | Fdiv | Sqrt -> 8.0
  | Exp | Log | Pow -> 20.0
  | I2f | F2i -> 1.0
  | Add | Sub | Mul | Min | Max | Neg -> 0.5
  | Div | Mod -> 8.0
  | Eq | Ne | Lt | Le | Gt | Ge | And | Or | Not -> 0.5
  | Strcat -> 16.0
  | Strlen -> 0.5
  | Strget -> 1.0

(** Is [p] pure?  All current prims are pure; kept as a function so adding
    effectful prims later forces a review of every caller. *)
let pure (_ : t) = true

lib/ir/exp.ml: Bool Float Fun Int List Option Prim String Sym Types

lib/ir/prim.ml: Fmt Types

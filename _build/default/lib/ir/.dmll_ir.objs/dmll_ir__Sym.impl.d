lib/ir/sym.ml: Atomic Fmt Hashtbl Int Map Set Types

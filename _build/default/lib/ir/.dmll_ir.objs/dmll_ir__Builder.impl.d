lib/ir/builder.ml: Exp Option Prim Sym Types

lib/ir/pp.ml: Exp Fmt Prim Sym Types

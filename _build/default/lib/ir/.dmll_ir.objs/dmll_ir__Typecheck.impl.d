lib/ir/typecheck.ml: Exp Fmt List Pp Prim String Sym Types

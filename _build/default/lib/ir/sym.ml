(** Symbols: typed binders with globally unique identities.

    Fresh symbols are drawn from an atomic counter so passes running on
    different domains (the parallel runtime compiles per-chunk closures)
    can never collide. *)

type t = { id : int; name : string; ty : Types.ty }

let counter = Atomic.make 0

let fresh ?(name = "x") ty =
  let id = Atomic.fetch_and_add counter 1 in
  { id; name; ty }

(** A renamed copy of [s] with a fresh identity (alpha-renaming). *)
let refresh s = fresh ~name:s.name s.ty

let equal a b = Int.equal a.id b.id
let compare a b = Int.compare a.id b.id
let hash s = s.id
let ty s = s.ty
let name s = s.name
let id s = s.id

let pp fmt s = Fmt.pf fmt "%s%d" s.name s.id
let to_string s = Fmt.str "%a" pp s

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Type checking for DMLL IR.

    Every compiler pass is expected to preserve well-typedness; the test
    suite re-checks programs after each pass.  Errors carry the offending
    sub-expression to make transformation bugs easy to localize. *)

open Exp

type error = { message : string; context : exp }

exception Type_error of error

let error context fmt =
  Fmt.kstr (fun message -> raise (Type_error { message; context })) fmt

let pp_error fmt { message; context } =
  Fmt.pf fmt "@[<v>type error: %s@,in: %a@]" message Pp.pp context

let const_ty : const -> Types.ty = function
  | Cunit -> Types.Unit
  | Cbool _ -> Types.Bool
  | Cint _ -> Types.Int
  | Cfloat _ -> Types.Float
  | Cstr _ -> Types.Str

(** Result type of one generator given the loop context. *)
let rec gen_result_ty env (g : gen) : Types.ty =
  match g with
  | Collect { value; _ } -> Types.Arr (infer env value)
  | Reduce { value; _ } -> infer env value
  | BucketCollect { key; value; _ } ->
      Types.Map (infer env key, Types.Arr (infer env value))
  | BucketReduce { key; value; _ } -> Types.Map (infer env key, infer env value)

and infer (env : Types.ty Sym.Map.t) (e : exp) : Types.ty =
  match e with
  | Const c -> const_ty c
  | Var s -> (
      match Sym.Map.find_opt s env with
      | Some t ->
          if not (Types.equal t (Sym.ty s)) then
            error e "symbol %a bound at %a but annotated %a" Sym.pp s Types.pp t
              Types.pp (Sym.ty s);
          t
      | None -> error e "unbound symbol %a" Sym.pp s)
  | Prim (p, args) -> (
      if List.length args <> Prim.arity p then
        error e "prim %s expects %d arguments" (Prim.name p) (Prim.arity p);
      let tys = List.map (infer env) args in
      match Prim.result_ty p tys with Ok t -> t | Error msg -> error e "%s" msg)
  | If (c, t, f) ->
      let tc = infer env c in
      if not (Types.equal tc Types.Bool) then
        error e "if condition has type %a, expected Bool" Types.pp tc;
      let tt = infer env t and tf = infer env f in
      if not (Types.equal tt tf) then
        error e "if branches disagree: %a vs %a" Types.pp tt Types.pp tf;
      tt
  | Let (s, a, b) ->
      let ta = infer env a in
      if not (Types.equal ta (Sym.ty s)) then
        error e "let binds %a : %a to expression of type %a" Sym.pp s Types.pp
          (Sym.ty s) Types.pp ta;
      infer (Sym.Map.add s ta env) b
  | Tuple es -> Types.Tup (List.map (infer env) es)
  | Proj (a, i) -> (
      match infer env a with
      | Types.Tup ts when i >= 0 && i < List.length ts -> List.nth ts i
      | t -> error e "projection ._%d from non-tuple %a" i Types.pp t)
  | Record (ty, fs) -> (
      match ty with
      | Types.Struct (_, decl) ->
          if List.length decl <> List.length fs then
            error e "struct literal field count mismatch";
          List.iter2
            (fun (dn, dt) (n, v) ->
              if not (String.equal dn n) then
                error e "struct field %s given out of order (expected %s)" n dn;
              let tv = infer env v in
              if not (Types.equal tv dt) then
                error e "field %s has type %a, expected %a" n Types.pp tv Types.pp dt)
            decl fs;
          ty
      | t -> error e "Record with non-struct type %a" Types.pp t)
  | Field (a, n) -> (
      match infer env a with
      | Types.Struct (_, _) as t -> Types.field_ty t n
      | t -> error e "field .%s of non-struct %a" n Types.pp t)
  | Len a -> (
      match infer env a with
      | Types.Arr _ | Types.Map _ -> Types.Int
      | t -> error e "len of non-collection %a" Types.pp t)
  | Read (a, i) -> (
      let ti = infer env i in
      if not (Types.equal ti Types.Int) then
        error e "read index has type %a, expected Int" Types.pp ti;
      match infer env a with
      | Types.Arr t -> t
      | Types.Map (_, v) -> v
      | t -> error e "positional read of non-collection %a" Types.pp t)
  | MapRead (m, k, d) -> (
      match infer env m with
      | Types.Map (kt, vt) ->
          let tk = infer env k in
          if not (Types.equal tk kt) then
            error e "map key has type %a, expected %a" Types.pp tk Types.pp kt;
          (match d with
          | None -> ()
          | Some d ->
              let td = infer env d in
              if not (Types.equal td vt) then
                error e "map default has type %a, expected %a" Types.pp td Types.pp vt);
          vt
      | t -> error e "keyed read of non-map %a" Types.pp t)
  | KeyAt (m, i) -> (
      let ti = infer env i in
      if not (Types.equal ti Types.Int) then
        error e "keyAt index has type %a, expected Int" Types.pp ti;
      match infer env m with
      | Types.Map (kt, _) -> kt
      | t -> error e "keyAt of non-map %a" Types.pp t)
  | Input (_, ty, _) -> ty
  | Extern { eargs; ety; _ } ->
      List.iter (fun a -> ignore (infer env a)) eargs;
      ety
  | Loop { size; idx; gens } ->
      let ts = infer env size in
      if not (Types.equal ts Types.Int) then
        error e "loop size has type %a, expected Int" Types.pp ts;
      if not (Types.equal (Sym.ty idx) Types.Int) then
        error e "loop index %a must be Int" Sym.pp idx;
      if gens = [] then error e "multiloop with no generators";
      let env' = Sym.Map.add idx Types.Int env in
      let check_gen g =
        (match gen_cond g with
        | None -> ()
        | Some c ->
            let tc = infer env' c in
            if not (Types.equal tc Types.Bool) then
              error e "generator condition has type %a, expected Bool" Types.pp tc);
        (match gen_key g with
        | None -> ()
        | Some k ->
            let tk = infer env' k in
            if not (Types.is_key_ty tk) then
              error e "bucket key type %a is not a valid key type" Types.pp tk);
        (match g with
        | Reduce { value; a; b; rfun; init; _ }
        | BucketReduce { value; a; b; rfun; init; _ } ->
            let tv = infer env' value in
            if not (Types.equal (Sym.ty a) tv && Types.equal (Sym.ty b) tv) then
              error e "reduce accumulators must have the value type %a" Types.pp tv;
            let env'' = Sym.Map.add a tv (Sym.Map.add b tv env') in
            let tr = infer env'' rfun in
            if not (Types.equal tr tv) then
              error e "reduction function has type %a, expected %a" Types.pp tr
                Types.pp tv;
            (* The identity element is evaluated outside the loop body. *)
            let ti = infer env init in
            if not (Types.equal ti tv) then
              error e "reduce init has type %a, expected %a" Types.pp ti Types.pp tv
        | Collect { value; _ } | BucketCollect { value; _ } ->
            ignore (infer env' value));
        gen_result_ty env' g
      in
      let tys = List.map check_gen gens in
      (match tys with [ t ] -> t | ts -> Types.Tup ts)

(** Infer the type of a closed program (free symbols are an error). *)
let infer_closed e = infer Sym.Map.empty e

let check_closed e =
  match infer_closed e with
  | t -> Ok t
  | exception Type_error err -> Error err

(** The type of [e], raising {!Type_error} on ill-typed programs.  Alias of
    {!infer_closed} under a name that reads well at call sites. *)
let ty_of e = infer_closed e

(** Cluster executor/simulator (paper §6.2, Figure 8).

    Models the hierarchical execution of §5: the cluster master partitions
    each outer multiloop into per-node chunks along the partitioned
    input's directory boundaries; each node then runs its chunk on its own
    (modeled) NUMA machine or GPU.  Costs charged per loop:

    - {e compute}: the per-node NUMA (or GPU) time for [n/nodes]
      iterations — nodes run concurrently, so the slowest node's chunk
      bounds the phase;
    - {e broadcast}: [Local] collections consumed by the loop are
      serialized and sent to every node;
    - {e replication}: if the partitioned input's stencil is not
      local-friendly (All/Unknown survived every rewrite), the whole
      dataset crosses the network — the §4.2 fallback, and the reason the
      Figure-3 rewrites are "not simply performance optimizations";
    - {e gather}: [Local]-result generators (reduce, buckets) return each
      node's partial to the master, which merges them. *)

open Dmll_ir
module V = Dmll_interp.Value
module Stencil = Dmll_analysis.Stencil
module Partition = Dmll_analysis.Partition
module M = Dmll_machine.Machine

type device = Cpu | Gpu_device

type config = {
  cluster : M.cluster;
  device : device;  (** run node chunks on cores or on the node's GPU *)
  gpu_options : Sim_gpu.options;
}

let default_config =
  { cluster = M.ec2_cluster; device = Cpu; gpu_options = Sim_gpu.default_options }

let net_seconds (c : M.cluster) ~bytes ~messages =
  (bytes /. (c.M.net_bw_gbs *. 1e9))
  +. (float_of_int messages *. c.M.net_lat_us *. 1e-6)

let ser_seconds (c : M.cluster) ~bytes = bytes /. (c.M.ser_gbs *. 1e9)

(* Collective phases (broadcast / gather) run as pipelined trees: latency
   scales with log2(nodes), and the wire carries ~2x the payload end to
   end rather than one copy per receiver. *)
let tree_depth nodes = Stdlib.max 1 (int_of_float (ceil (log (float_of_int (Stdlib.max 2 nodes)) /. log 2.0)))

(* Simulated time of one outer loop on the cluster. *)
let loop_time ~(config : config) ~(layout_of : Stencil.target -> Exp.layout)
    ~(inputs_ty : (string * Types.ty) list) ~(eval_size : Exp.exp -> int option)
    ~(env : Evalenv.env) ~(inputs : (string * V.t) list) (l : Exp.loop) ~(n : int) :
    float * (string * float) list =
  let c = config.cluster in
  let nodes = c.M.nodes in
  let stencils = Stencil.of_loop l in
  let partitioned =
    List.filter (fun (t, _) -> layout_of t = Exp.Partitioned) stencils
  in
  let value_of_target t =
    match t with
    | Stencil.Tinput name -> List.assoc_opt name inputs
    | Stencil.Tsym s -> Sym.Map.find_opt s env
  in
  if partitioned = [] then begin
    (* no distributed data: the loop runs on the master node alone *)
    let numa_cfg =
      { Sim_numa.machine = config.cluster.M.node.M.numa;
        threads = M.total_cores config.cluster.M.node.M.numa;
        mode = Sim_numa.Numa_aware;
      }
    in
    let dt =
      Sim_numa.loop_time ~machine:numa_cfg.Sim_numa.machine
        ~threads:numa_cfg.Sim_numa.threads ~mode:numa_cfg.Sim_numa.mode ~layout_of
        ~inputs_ty ~eval_size l ~n
    in
    (dt, [ ("master-only", dt) ])
  end
  else begin
    (* per-node compute on a 1/nodes chunk *)
    let chunk_n = (n + nodes - 1) / nodes in
    let compute_s =
      match config.device with
      | Cpu ->
          Sim_numa.loop_time ~machine:c.M.node.M.numa
            ~threads:(M.total_cores c.M.node.M.numa) ~mode:Sim_numa.Numa_aware
            ~layout_of ~inputs_ty ~eval_size l ~n:chunk_n
      | Gpu_device -> (
          match c.M.node.M.gpu with
          | None -> invalid_arg "Sim_cluster: node has no GPU"
          | Some gpu -> (
              match
                Dmll_backend.Gpu.kernels_of
                  ~transposed:config.gpu_options.Sim_gpu.transpose ~eval_size
                  (Exp.Loop l)
              with
              | k :: _ ->
                  Sim_gpu.kernel_time
                    ~row_to_column:config.gpu_options.Sim_gpu.row_to_column ~gpu
                    ~n:chunk_n k
              | [] -> 0.0))
    in
    (* broadcast every Local collection the loop consumes *)
    let broadcast_bytes =
      List.fold_left
        (fun acc (t, _) ->
          if layout_of t = Exp.Local then
            match value_of_target t with
            | Some v -> acc +. Sim_common.value_bytes v
            | None -> acc
          else acc)
        0.0 stencils
    in
    let broadcast_s =
      ser_seconds c ~bytes:broadcast_bytes
      +. net_seconds c ~bytes:(broadcast_bytes *. 2.0) ~messages:(tree_depth nodes)
    in
    (* replication fallback for non-local-friendly partitioned stencils *)
    let replicate_bytes =
      List.fold_left
        (fun acc (t, s) ->
          if Stencil.local_friendly s then acc
          else
            match value_of_target t with
            | Some v -> acc +. Sim_common.value_bytes v
            | None -> acc)
        0.0 partitioned
    in
    let replicate_s =
      if replicate_bytes = 0.0 then 0.0
      else
        ser_seconds c ~bytes:replicate_bytes
        +. net_seconds c ~bytes:(replicate_bytes *. 2.0) ~messages:(tree_depth nodes)
    in
    (* gather Local results (reduce / bucket partials) from every node *)
    let gather_bytes =
      List.fold_left
        (fun acc g ->
          match g with
          | Exp.Collect _ -> acc (* stays partitioned *)
          | Exp.Reduce { init; _ } -> (
              match Evalenv.eval ~inputs env init with
              | v -> acc +. Sim_common.value_bytes v
              | exception _ -> acc +. 64.0)
          | Exp.BucketCollect _ | Exp.BucketReduce _ ->
              acc +. 4096.0 (* modest per-node bucket table *))
        0.0 l.Exp.gens
    in
    let gather_s =
      ser_seconds c ~bytes:(gather_bytes *. float_of_int nodes)
      +. net_seconds c
           ~bytes:(gather_bytes *. float_of_int (nodes - 1))
           ~messages:(tree_depth nodes)
    in
    let total = compute_s +. broadcast_s +. replicate_s +. gather_s in
    ( total,
      [ ("compute", compute_s); ("broadcast", broadcast_s);
        ("replicate", replicate_s); ("gather", gather_s) ] )
  end

(** Execute [program] exactly; charge simulated time on the cluster. *)
let run ?(config = default_config) ?layouts ~(inputs : (string * V.t) list)
    (program : Exp.exp) : Sim_common.result =
  let layouts =
    match layouts with
    | Some ls -> ls
    | None ->
        (Partition.analyze ~transforms:[] ~reoptimize:(fun e -> e) program)
          .Partition.layouts
  in
  let layout_of t = Partition.layout_of t layouts in
  let inputs_ty = Sim_common.program_input_tys program in
  let time = ref 0.0 in
  let breakdown = ref [] in
  let value =
    Spine.exec ~inputs
      ~on_loop:(fun env sym l ->
        let eval_size = Sim_common.live_size_evaluator ~inputs env in
        let n = match eval_size l.Exp.size with Some n -> n | None -> 0 in
        let dt, parts =
          loop_time ~config ~layout_of ~inputs_ty ~eval_size ~env ~inputs l ~n
        in
        time := !time +. dt;
        let name = match sym with Some s -> Sym.to_string s | None -> "result" in
        breakdown := (name, dt) :: List.map (fun (p, s) -> (name ^ "/" ^ p, s)) parts @ !breakdown;
        Evalenv.eval ~inputs env (Exp.Loop l))
      program
  in
  { Sim_common.value; seconds = !time; breakdown = List.rev !breakdown }

(** Simulated seconds to load/scatter the partitioned dataset initially
    (reported separately, as the paper separates load from compute). *)
let scatter_seconds ?(config = default_config) ~(bytes : float) () : float =
  let c = config.cluster in
  ser_seconds c ~bytes +. net_seconds c ~bytes ~messages:c.M.nodes

lib/runtime/spine.ml: Dmll_interp Dmll_ir Evalenv Exp List Sym

lib/runtime/exec_domains.ml: Array Atomic Builder Chunk Dmll_interp Dmll_ir Domain Evalenv Exp List Merge Spine Stdlib Sym Types

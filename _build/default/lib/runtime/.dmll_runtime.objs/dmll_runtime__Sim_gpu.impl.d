lib/runtime/sim_gpu.ml: Dmll_analysis Dmll_backend Dmll_interp Dmll_ir Dmll_machine Evalenv Exp List Sim_common Spine Stdlib Sym

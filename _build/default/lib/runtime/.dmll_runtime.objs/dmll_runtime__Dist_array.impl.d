lib/runtime/dist_array.ml: Array Atomic Chunk Dmll_interp List Printf

lib/runtime/chunk.ml: List Stdlib

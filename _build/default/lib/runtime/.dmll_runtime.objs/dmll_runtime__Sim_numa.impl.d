lib/runtime/sim_numa.ml: Chunk Dmll_analysis Dmll_interp Dmll_ir Dmll_machine Evalenv Exp List Sim_common Spine Stdlib Sym Types

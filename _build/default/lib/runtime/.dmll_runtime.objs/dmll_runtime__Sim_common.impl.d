lib/runtime/sim_common.ml: Array Dmll_analysis Dmll_interp Dmll_ir Evalenv Exp Hashtbl List Stdlib String Sym Types

lib/runtime/sim_cluster.ml: Dmll_analysis Dmll_backend Dmll_interp Dmll_ir Dmll_machine Evalenv Exp List Sim_common Sim_gpu Sim_numa Spine Stdlib Sym Types

lib/runtime/merge.ml: Array Dmll_interp Dmll_ir Evalenv Exp Hashtbl List Sym

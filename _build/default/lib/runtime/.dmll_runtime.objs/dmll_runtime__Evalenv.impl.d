lib/runtime/evalenv.ml: Dmll_backend Dmll_interp Dmll_ir Exp List Printf Sym

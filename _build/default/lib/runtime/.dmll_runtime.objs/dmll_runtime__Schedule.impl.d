lib/runtime/schedule.ml: Chunk Dmll_machine List Stdlib

(** Closure-backed evaluation of open expressions against a value
    environment.

    The executors walk a program's let-spine holding the values of
    already-computed bindings; to evaluate the next right-hand side they
    rebind its free symbols as pseudo-inputs and run the closure backend.
    Compilation is cheap (one pass over the expression), so executors
    compile each spine step on demand — and, importantly, each parallel
    chunk compiles its own closures, which keeps the backend's generator
    state domain-private. *)

open Dmll_ir
module V = Dmll_interp.Value

type env = V.t Sym.Map.t

let pseudo_input_name (s : Sym.t) = Printf.sprintf "__env_%d" (Sym.id s)

(** Replace free occurrences of env-bound symbols with pseudo-inputs. *)
let close_over (env : env) (e : Exp.exp) : Exp.exp * (string * V.t) list =
  let free = Exp.free_vars e in
  let bindings =
    Sym.Map.fold
      (fun s v acc -> if Sym.Set.mem s free then (s, v) :: acc else acc)
      env []
  in
  let e' =
    List.fold_left
      (fun e (s, _) ->
        Exp.subst1 s (Exp.Input (pseudo_input_name s, Sym.ty s, Exp.Local)) e)
      e bindings
  in
  (e', List.map (fun (s, v) -> (pseudo_input_name s, v)) bindings)

exception Open_expression of Sym.t

(** Evaluate [e] with free symbols bound by [env] and named inputs bound by
    [inputs].  Raises {!Open_expression} if a free symbol is not in [env]
    (silently defaulting a slot would produce wrong values — the
    simulators' size evaluators rely on this failing). *)
let eval ?(inputs = []) (env : env) (e : Exp.exp) : V.t =
  let e', pseudo = close_over env e in
  (match Sym.Set.choose_opt (Exp.free_vars e') with
  | Some s -> raise (Open_expression s)
  | None -> ());
  Dmll_backend.Closure.run ~inputs:(pseudo @ inputs) e'

(** Evaluate an [Int]-typed expression (e.g. a loop size). *)
let eval_int ?inputs env e = V.as_int (eval ?inputs env e)

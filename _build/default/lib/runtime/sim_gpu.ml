(** GPU device simulator (paper Figure 6 left, §6.2).

    Charges each outer multiloop kernel time on a modeled GPU from the
    kernel descriptors extracted by [Dmll_backend.Gpu]:

    - kernel time is rooflined between arithmetic throughput and global
      memory bandwidth;
    - strided (uncoalesced) access divides effective bandwidth by
      [uncoalesced_penalty]; transposing the input on transfer
      (paper §6: "DMLL ... transposes the input matrix when transferring
      it to the GPU") restores coalescing;
    - vector-typed reductions cannot keep temporaries in shared memory and
      pay [vector_reduce_penalty]; the Row-to-Column lowering eliminates
      them (§3.2).

    Host-to-device transfer is reported separately so iterative benches
    can amortize it, mirroring the paper's discussion ("just as the cost
    of reading the data from disk is amortized over many iterations, so is
    the initial cost of moving the data to the GPU"). *)

open Dmll_ir
module V = Dmll_interp.Value
module Gpu = Dmll_backend.Gpu

type options = {
  transpose : bool;  (** transpose row-major matrices during transfer *)
  row_to_column : bool;  (** apply the Row-to-Column Reduce lowering *)
}

let default_options = { transpose = false; row_to_column = false }

let kernel_time ?(row_to_column = false) ~(gpu : Dmll_machine.Machine.gpu) ~(n : int)
    (k : Gpu.kernel) : float =
  let open Dmll_machine.Machine in
  let fn = float_of_int n in
  let flops = fn *. k.Gpu.per_elem.Dmll_analysis.Cost.flops in
  let bytes =
    fn
    *. (k.Gpu.per_elem.Dmll_analysis.Cost.bytes_read
       +. k.Gpu.per_elem.Dmll_analysis.Cost.bytes_written)
  in
  let bw_div =
    match k.Gpu.access with
    | Gpu.Coalesced -> 1.0
    | Gpu.Strided | Gpu.Gather -> gpu.uncoalesced_penalty
  in
  let reduce_mult =
    match k.Gpu.reduce with
    | Gpu.No_reduce -> 1.0
    | Gpu.Scalar_reduce -> 1.05 (* shared-memory tree: near free *)
    | Gpu.Vector_reduce ->
        (* with the Row-to-Column policy the kernel generator scalarizes
           vector reductions (including fixed-cardinality buckets) without
           duplicating the value computation [Lee et al., IEEE Micro'14];
           a small residual remains for the extra kernel structure *)
        if row_to_column then 1.25 else gpu.vector_reduce_penalty
  in
  let compute_s = flops /. (gpu.gpu_gflops *. 1e9) in
  let mem_s = bytes /. (gpu.mem_bw_gbs *. 1e9 /. bw_div) in
  (Stdlib.max compute_s mem_s *. reduce_mult) +. (gpu.kernel_launch_us *. 1e-6)

type result = {
  value : V.t;
  kernel_seconds : float;
  transfer_seconds : float;
  kernels : (string * float) list;
  lowering_applied : bool;
}

(* NOTE: the simulator costs the program {e as given} — the IR-level
   Row-to-Column lowering (exercised by the backend tests) recomputes
   hoisted subexpressions per column, which the real kernel generator of
   the paper's reference [21] avoids; modeling from the unlowered loop
   nest with the [row_to_column] policy flag reflects the generated
   kernel's cost. *)
let run ?(gpu = Dmll_machine.Machine.tesla_c2050) ?(options = default_options)
    ~(inputs : (string * V.t) list) (program : Exp.exp) : result =
  let lowered = options.row_to_column in
  (* host -> device transfer of every input, once *)
  let transfer_bytes =
    List.fold_left (fun acc (_, v) -> acc +. Sim_common.value_bytes v) 0.0 inputs
  in
  let transfer_seconds =
    transfer_bytes /. (gpu.Dmll_machine.Machine.pcie_bw_gbs *. 1e9)
  in
  let kseconds = ref 0.0 in
  let kernels = ref [] in
  let value =
    Spine.exec ~inputs
      ~on_loop:(fun env sym l ->
        let eval_size = Sim_common.live_size_evaluator ~inputs env in
        let n = match eval_size l.Exp.size with Some n -> n | None -> 0 in
        let k =
          match Gpu.kernels_of ~transposed:options.transpose ~eval_size (Exp.Loop l) with
          | k :: _ -> k
          | [] -> assert false
        in
        let dt = kernel_time ~row_to_column:options.row_to_column ~gpu ~n k in
        kseconds := !kseconds +. dt;
        let name = match sym with Some s -> Sym.to_string s | None -> "result" in
        kernels := (name, dt) :: !kernels;
        Evalenv.eval ~inputs env (Exp.Loop l))
      program
  in
  { value;
    kernel_seconds = !kseconds;
    transfer_seconds;
    kernels = List.rev !kernels;
    lowering_applied = lowered;
  }

(** Kernel time of one execution, amortizing transfer over [iterations]. *)
let amortized_seconds ~iterations (r : result) : float =
  r.kernel_seconds +. (r.transfer_seconds /. float_of_int (Stdlib.max 1 iterations))

(** Real multicore execution of DMLL programs on OCaml 5 domains.

    This executor actually runs multiloop chunks in parallel (unlike the
    analytic simulators, which model bigger machines than this container
    has).  Each outer multiloop is split into contiguous chunks; each
    domain compiles its own chunk closure (keeping the backend's generator
    state domain-private) and the partial results are merged with the
    loop's own generators (see {!Merge}).  Tests verify the results equal
    sequential execution. *)

open Dmll_ir
module V = Dmll_interp.Value

(* Build the chunk program for [lo, hi): a loop of size hi-lo whose parts
   see the original index as [idx' + lo]. *)
let chunk_loop (l : Exp.loop) (r : Chunk.range) : Exp.exp =
  let open Exp in
  let idx' = Sym.fresh ~name:"ci" Types.Int in
  let shift = Builder.( +! ) (Var idx') (int_ r.Chunk.lo) in
  let rw e = refresh_binders (subst1 l.idx shift e) in
  let gens =
    List.map
      (fun g ->
        let g = map_gen_parts rw g in
        match g with
        | Reduce rd -> Reduce { rd with rfun = rw rd.rfun }
        | BucketReduce rd -> BucketReduce { rd with rfun = rw rd.rfun }
        | g -> g)
      l.gens
  in
  Loop { size = int_ (Chunk.size r); idx = idx'; gens }

(** Chunking policy: [Static] gives each domain one contiguous chunk;
    [Dynamic] over-decomposes into many small chunks that idle domains
    pull from a shared queue — the paper's multi-core partitioner
    "provides dynamic load balancing within each machine, which provides
    much better scaling for irregular applications" (§5). *)
type schedule = Static | Dynamic

(* Evaluate one loop in parallel across [domains] chunks. *)
let run_loop ~(domains : int) ~(schedule : schedule)
    ~(inputs : (string * V.t) list) (env : Evalenv.env) (l : Exp.loop) : V.t =
  let n = Evalenv.eval_int ~inputs env l.Exp.size in
  let chunks =
    match schedule with
    | Static -> Chunk.split ~k:domains n
    | Dynamic -> Chunk.split ~k:(8 * domains) n
  in
  let parts =
    match chunks with
    | [] | [ _ ] ->
        (* empty or single chunk: evaluate sequentially *)
        [ Evalenv.eval ~inputs env (Exp.Loop l) ]
    | _ when schedule = Static ->
        let first, rest =
          match chunks with c :: cs -> (c, cs) | [] -> assert false
        in
        (* spawn one domain per extra chunk; run the first chunk here *)
        let spawned =
          List.map
            (fun r ->
              Domain.spawn (fun () -> Evalenv.eval ~inputs env (chunk_loop l r)))
            rest
        in
        let mine = Evalenv.eval ~inputs env (chunk_loop l first) in
        mine :: List.map Domain.join spawned
    | _ ->
        (* dynamic: a shared counter hands chunks to idle workers; results
           land in per-chunk slots so the merge order stays sequential *)
        let chunk_arr = Array.of_list chunks in
        let results = Array.make (Array.length chunk_arr) V.Vunit in
        let next = Atomic.make 0 in
        let worker () =
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next 1 in
            if i >= Array.length chunk_arr then continue := false
            else results.(i) <- Evalenv.eval ~inputs env (chunk_loop l chunk_arr.(i))
          done
        in
        let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join spawned;
        Array.to_list results
  in
  match (l.Exp.gens, chunks) with
  | _, ([] | [ _ ]) -> List.hd parts
  | [ g ], _ -> Merge.merge_gen ~env ~inputs g parts
  | gens, _ ->
      (* multi-generator loop: merge per generator *)
      let per_gen =
        List.mapi
          (fun k g ->
            let parts_k =
              List.map
                (fun p ->
                  match p with
                  | V.Vtup vs -> vs.(k)
                  | _ -> invalid_arg "Exec_domains: expected tuple of partials")
                parts
            in
            Merge.merge_gen ~env ~inputs g parts_k)
          gens
      in
      V.Vtup (Array.of_list per_gen)

(** Execute a program with outer multiloops parallelized across [domains]
    OCaml domains (default: the host's recommended domain count, capped at
    8 for container friendliness). *)
let run ?(domains = Stdlib.min 8 (Domain.recommended_domain_count ()))
    ?(schedule = Static) ?(inputs = []) (program : Exp.exp) : V.t =
  Spine.exec ~inputs
    ~on_loop:(fun env _ l -> run_loop ~domains ~schedule ~inputs env l)
    program

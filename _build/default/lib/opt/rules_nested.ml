(** The nested parallel pattern transformations of Figure 3.

    {v
    (GroupBy-Reduce)
      A = BucketCollect_s(c)(k)(f1)        H = BucketReduce_s(c)(k)(f2(f1))(r)
      Collect_A(_)(i => Reduce_{A(i)}(_)(f2)(r))   -->   Collect_H(_)(i => H(i))

    (Conditional Reduce)
      Collect_{s1}(_)(i =>                 H = BucketReduce_{s2}(_)(g)(f)(r)
        Reduce_{s2}(j => g(j)==h(i))(f)(r))  -->  Collect_H(_)(i => H[h(i)])

    (Column-to-Row Reduce)
      Collect_{s1}(_)(i => Reduce_{s2}(c)(f)(r))
        -->  R = Reduce_{s2}(c)(fv)(rv);  Collect_{s1}(_)(i => R(i))

    (Row-to-Column Reduce)
      Reduce_{s1}(c)(fv)(rv : (a1,b1) => Collect_{s2}(_)(i => r(a1(i),b1(i))))
        -->  Collect_{s2}(_)(i => Reduce_{s1}(c)(f)(r))
    v}

    Each rule matches a [Reduce] nested inside an enclosing context (the
    "expanded lambda expression" of the paper): the surrounding code of the
    outer Collect is preserved around the replacement.  These rules are
    locality transformations — the driver applies them when the stencil
    analysis reports a problematic access pattern (paper §4.2) or when a
    target-specific policy demands them (Row-to-Column for GPUs, §3.2). *)

open Dmll_ir
open Exp

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                       *)
(* ------------------------------------------------------------------ *)

let replace_first = Fusion.replace_first

(* Would hoisting [h] out of a region whose binders are [blocked] capture
   anything? *)
let hoistable (blocked : Sym.Set.t) (h : exp) : bool =
  Sym.Set.is_empty (Sym.Set.inter (free_vars h) blocked)

(* Depends on symbol [s]? *)
let depends_on s e = Sym.Set.mem s (free_vars e)

let infer_with_declared_tys e =
  try
    Some
      (Typecheck.infer
         (Sym.Set.fold (fun s acc -> Sym.Map.add s (Sym.ty s) acc) (free_vars e) Sym.Map.empty)
         e)
  with Typecheck.Type_error _ -> None

(* ------------------------------------------------------------------ *)
(* GroupBy-Reduce                                                       *)
(* ------------------------------------------------------------------ *)

(* Match at:  Let (a, BucketCollect-loop, body)
   where all uses of [a] in [body] live inside a single consumer Collect
   over Len(a):
     - nested Reduces over Len(a(j)) reading bucket elements positionally
       (one or several — Q1 computes seven aggregates per group),
     - Len(a(j)) counts (the "as.count" of the paper's k-means),
     - KeyAt(a, _) uses and the consumer's own Len(Var a) size node.
   The rewrite builds ONE multiloop carrying one BucketReduce generator
   per aggregate (counts become sum-of-ones generators) — the horizontally
   fused single traversal of Figure 5 — and the consumer becomes an
   identity-ish Collect over the buckets. *)
let groupby_reduce : Rewrite.rule =
  { rname = "groupby-reduce";
    apply =
      (function
      | Let
          ( a,
            Loop
              { size = bsize;
                idx = bidx;
                gens = [ BucketCollect { cond = bcond; key = bkey; value = bval } ];
              },
            body )
        when Rewrite.pure bval && Rewrite.pure bkey ->
          let consumers = Fusion.consumer_loops_of a body in
          (match consumers with
          | [ ({ idx = j; gens = [ Collect { cond = ccond; value = cval } ]; _ } as cons)
            ] -> (
              let bucket = Read (Var a, Var j) in
              let elem_ty =
                match infer_with_declared_tys (Read (bucket, int_ 0)) with
                | Some t -> t
                | None -> Types.Unit
              in
              if Types.equal elem_ty Types.Unit then None
              else begin
                (* Collect every aggregation site over the bucket, in
                   pre-order.  Each site becomes one generator of H. *)
                let sites = ref [] in
                let rec scan e =
                  match e with
                  | Loop
                      { size = Len b;
                        idx = l;
                        gens =
                          [ Reduce { cond = None; value = rv; a = ra; b = rb; rfun; init } ];
                      }
                    when alpha_equal b bucket ->
                      let rec uses_ok e =
                        match e with
                        | Read (b', Var l') when alpha_equal b' bucket -> Sym.equal l' l
                        | _ when alpha_equal e bucket -> false
                        | _ -> fold_sub (fun acc s -> acc && uses_ok s) true e
                      in
                      if uses_ok rv then
                        sites := `Reduce (l, rv, ra, rb, rfun, init) :: !sites
                  | Len b when alpha_equal b bucket -> sites := `Count :: !sites
                  | _ -> ignore (map_sub (fun s -> scan s; s) e)
                in
                scan cval;
                Option.iter scan ccond;
                let sites = List.rev !sites in
                if sites = [] then None
                else begin
                  (* Build one generator per site. *)
                  let esym_of () = Sym.fresh ~name:"elem" elem_ty in
                  let build_gen site =
                    let cond = Option.map refresh_binders bcond in
                    match site with
                    | `Count ->
                        let ca = Sym.fresh ~name:"ca" Types.Int in
                        let cb = Sym.fresh ~name:"cb" Types.Int in
                        Some
                          (BucketReduce
                             { cond;
                               key = refresh_binders bkey;
                               value = int_ 1;
                               a = ca;
                               b = cb;
                               rfun = Prim (Prim.Add, [ Var ca; Var cb ]);
                               init = int_ 0;
                             })
                    | `Reduce (l, rv, ra, rb, rfun, init) ->
                        let esym = esym_of () in
                        let rec sub_elem e =
                          match e with
                          | Read (b', Var l') when alpha_equal b' bucket && Sym.equal l' l
                            ->
                              Var esym
                          | _ -> map_sub sub_elem e
                        in
                        let rv' = sub_elem rv in
                        (* the aggregate body must not capture the consumer
                           index, the element index, or anything else bound
                           inside the consumer's value *)
                        if
                          depends_on j rv' || depends_on l rv'
                          || not
                               (Sym.Set.is_empty
                                  (Sym.Set.inter (free_vars rv')
                                     (Sym.Set.remove l
                                        (Rewrite.bound_syms cval))))
                        then None
                        else
                          Some
                            (BucketReduce
                               { cond;
                                 key = refresh_binders bkey;
                                 value = Let (esym, refresh_binders bval, rv');
                                 a = ra;
                                 b = rb;
                                 rfun = refresh_binders rfun;
                                 init = refresh_binders init;
                               })
                  in
                  let gens = List.map build_gen sites in
                  if List.exists Option.is_none gens then None
                  else begin
                    let gens = List.filter_map Fun.id gens in
                    let hloop = Loop { size = bsize; idx = bidx; gens } in
                    let h_ty =
                      match infer_with_declared_tys hloop with
                      | Some t -> t
                      | None -> Types.Unit
                    in
                    if Types.equal h_ty Types.Unit then None
                    else begin
                      let h = Sym.fresh ~name:"H" h_ty in
                      let multi = List.length gens > 1 in
                      let proj k = if multi then Proj (Var h, k) else Var h in
                      (* rewrite the consumer: the k-th site becomes a read
                         of the k-th generator's map *)
                      let counter = ref 0 in
                      let rec rw e =
                        match e with
                        | Loop
                            { size = Len b;
                              gens = [ Reduce { cond = None; _ } ];
                              _
                            }
                          when alpha_equal b bucket ->
                            let k = !counter in
                            incr counter;
                            Read (proj k, Var j)
                        | Len b when alpha_equal b bucket ->
                            let k = !counter in
                            incr counter;
                            Read (proj k, Var j)
                        | KeyAt (Var a', ix) when Sym.equal a' a ->
                            KeyAt (proj 0, rw ix)
                        | Len (Var a') when Sym.equal a' a -> Len (proj 0)
                        | _ -> map_sub rw e
                      in
                      let cval' = rw cval in
                      let ccond' = Option.map rw ccond in
                      if !counter <> List.length sites then None
                      else begin
                        let new_cons =
                          Loop
                            { size = Len (proj 0);
                              idx = j;
                              gens = [ Collect { cond = ccond'; value = cval' } ];
                            }
                        in
                        let body' =
                          replace_first
                            (function
                              | Loop l' when l' == cons -> Some new_cons
                              | _ -> None)
                            body
                        in
                        match body' with
                        | None -> None
                        | Some body' ->
                            if occurs a body' then None
                            else if
                              (* H must not capture consumer-scope binders *)
                              Sym.Set.mem j (free_vars hloop)
                            then None
                            else Some (Let (h, hloop, body'))
                      end
                    end
                  end
                end
              end)
          | _ -> None)
      | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Conditional Reduce                                                   *)
(* ------------------------------------------------------------------ *)

(* Split an equality condition into (outer-dependent, inner-dependent)
   sides: one side must mention the inner index [j] but not [i]; the other
   may mention [i] but not [j]. *)
let split_eq ~i ~j cond =
  match cond with
  | Prim (Prim.Eq, [ l; r ]) ->
      let dl_i = depends_on i l and dl_j = depends_on j l in
      let dr_i = depends_on i r and dr_j = depends_on j r in
      if dl_j && (not dl_i) && not dr_j then Some (l, r) (* g(j) == h(i) *)
      else if dr_j && (not dr_i) && not dl_j then Some (r, l) (* h(i) == g(j) *)
      else None
  | _ -> None

(* The rule matches an inner loop whose generators are ALL conditional
   reduces keyed by the same g(j) == h(i) split — a single Reduce in the
   simplest case, or the horizontally fused sum+count multiloop of k-means
   (Figure 5).  The whole loop is hoisted as a multiloop of BucketReduce
   generators and the original becomes (a tuple of) keyed lookups. *)
let conditional_reduce : Rewrite.rule =
  { rname = "conditional-reduce";
    apply =
      (function
      | Loop
          ({ size = _; idx = i; gens = [ Collect { cond = ccond; value = cval } ] } as
           outer)
        ->
          let found = ref None in
          let matcher e =
            match e with
            | Loop { size = s2; idx = j; gens } when !found = None && gens <> [] ->
                (* every generator must be a Reduce conditioned on the same
                   g(j) == h(i) equality *)
                let splits =
                  List.map
                    (function
                      | Reduce { cond = Some c2; value; a; b; rfun; init } -> (
                          match split_eq ~i ~j c2 with
                          | Some (g, h) -> Some (g, h, (value, a, b, rfun, init))
                          | None -> None)
                      | _ -> None)
                    gens
                in
                if List.exists Option.is_none splits then None
                else begin
                  let splits = List.filter_map Fun.id splits in
                  let g0, h0, _ = List.hd splits in
                  if
                    not
                      (List.for_all
                         (fun (g, h, _) -> alpha_equal g g0 && alpha_equal h h0)
                         splits)
                  then None
                  else begin
                    let bgens =
                      List.map
                        (fun (g, _, (value, a, b, rfun, init)) ->
                          BucketReduce
                            { cond = None;
                              key = refresh_binders g;
                              value;
                              a;
                              b;
                              rfun;
                              init;
                            })
                        splits
                    in
                    let hloop = Loop { size = s2; idx = j; gens = bgens } in
                    let blocked =
                      Sym.Set.add i (Sym.Set.remove j (Rewrite.bound_syms (Loop outer)))
                    in
                    let kty = infer_with_declared_tys g0 in
                    if
                      hoistable blocked hloop
                      && (match kty with Some t -> Types.is_key_ty t | None -> false)
                      && Rewrite.pure hloop
                    then begin
                      found :=
                        Some (hloop, h0, List.map (fun (_, _, (_, _, _, _, init)) -> init) splits);
                      Some unit_
                    end
                    else None
                  end
                end
            | _ -> None
          in
          ignore (replace_first matcher cval);
          (match !found with
          | None -> None
          | Some (hloop, h, inits) ->
              let h_ty =
                match infer_with_declared_tys hloop with
                | Some t -> t
                | None -> Types.Unit
              in
              if Types.equal h_ty Types.Unit then None
              else
                let hsym = Sym.fresh ~name:"H" h_ty in
                let multi = List.length inits > 1 in
                let lookups =
                  List.mapi
                    (fun k init ->
                      let src = if multi then Proj (Var hsym, k) else Var hsym in
                      MapRead (src, refresh_binders h, Some (refresh_binders init)))
                    inits
                in
                let replacement =
                  match lookups with [ l ] -> l | ls -> Tuple ls
                in
                let consumed = ref false in
                let rec rw e =
                  match e with
                  | Loop { idx = j'; gens = (Reduce { cond = Some c2; _ } :: _); _ }
                    when (not !consumed)
                         && (match split_eq ~i ~j:j' c2 with Some _ -> true | None -> false)
                    ->
                      consumed := true;
                      replacement
                  | _ -> map_sub rw e
                in
                let cval' = rw cval in
                if not !consumed then None
                else
                  Some
                    (Let
                       ( hsym,
                         hloop,
                         Loop
                           { size = outer.size;
                             idx = i;
                             gens = [ Collect { cond = ccond; value = cval' } ];
                           } )))
      | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Column-to-Row Reduce                                                 *)
(* ------------------------------------------------------------------ *)

let column_to_row : Rewrite.rule =
  { rname = "column-to-row";
    apply =
      (function
      | Loop
          ({ size = s1; idx = i; gens = [ Collect { cond = ccond; value = cval } ] } as
           outer)
        when Rewrite.pure s1 ->
          let found = ref None in
          let matcher e =
            match e with
            | Loop
                { size = s2;
                  idx = j;
                  gens = [ Reduce { cond = c2; value = f; a; b; rfun; init } ];
                }
              when !found = None ->
                (* The value must be scalar-typed and actually depend on the
                   outer index (otherwise it is loop-invariant and code
                   motion is the right tool).  The condition must NOT
                   depend on the outer index — that shape belongs to the
                   Conditional-Reduce rule. *)
                let scalar =
                  match infer_with_declared_tys f with
                  | Some t -> if Types.is_scalar t then Some t else None
                  | None -> None
                in
                let c2_indep =
                  match c2 with None -> true | Some c -> not (depends_on i c)
                in
                (* Free variables of the hoisted reduce, ignoring the outer
                   index (which becomes the vector dimension), must not be
                   bound inside the outer loop. *)
                let hoist_ok =
                  let h_free =
                    Sym.Set.remove i
                      (free_vars
                         (Loop
                            { size = s2;
                              idx = j;
                              gens = [ Reduce { cond = c2; value = f; a; b; rfun; init } ];
                            }))
                  in
                  let inner_binders =
                    Sym.Set.remove j
                      (Sym.Set.remove a
                         (Sym.Set.remove b
                            (Sym.Set.add i (Rewrite.bound_syms (Loop outer)))))
                  in
                  Sym.Set.is_empty
                    (Sym.Set.inter h_free (Sym.Set.remove i inner_binders))
                in
                (match scalar with
                | Some sty
                  when c2_indep && depends_on i f
                       && (not (depends_on i s2))
                       && (not (depends_on i rfun))
                       && (not (depends_on i init))
                       && hoist_ok ->
                    found := Some (s2, j, c2, f, a, b, rfun, init, sty);
                    Some unit_
                | _ -> None)
            | _ -> None
          in
          ignore (replace_first matcher cval);
          (match !found with
          | None -> None
          | Some (s2, j, c2, f, a, b, rfun, init, fty) ->
              (* vectorized value function: fv(j) = Collect_{s1}(i' => f[i:=i']) *)
              let i' = Sym.fresh ~name:"i" Types.Int in
              let fv =
                Loop
                  { size = refresh_binders s1;
                    idx = i';
                    gens =
                      [ Collect
                          { cond = None; value = refresh_binders (subst1 i (Var i') f) };
                      ];
                  }
              in
              (* vectorized init: Collect_{s1}(_ => init) *)
              let iv_idx = Sym.fresh ~name:"i" Types.Int in
              let initv =
                Loop
                  { size = refresh_binders s1;
                    idx = iv_idx;
                    gens = [ Collect { cond = None; value = refresh_binders init } ];
                  }
              in
              (* vectorized reduction: rv(av,bv) = zipWith r *)
              let vty = Types.Arr fty in
              let av = Sym.fresh ~name:"av" vty and bv = Sym.fresh ~name:"bv" vty in
              let iz = Sym.fresh ~name:"iz" Types.Int in
              let scalar_r =
                refresh_binders
                  (subst
                     (Sym.Map.of_seq
                        (List.to_seq
                           [ (a, Read (Var av, Var iz)); (b, Read (Var bv, Var iz)) ]))
                     rfun)
              in
              let rv =
                Loop
                  { size = Len (Var av);
                    idx = iz;
                    gens = [ Collect { cond = None; value = scalar_r } ];
                  }
              in
              let rloop =
                Loop
                  { size = s2;
                    idx = j;
                    gens =
                      [ Reduce { cond = c2; value = fv; a = av; b = bv; rfun = rv; init = initv } ];
                  }
              in
              let rsym = Sym.fresh ~name:"R" vty in
              let consumed = ref false in
              let rec rw e =
                match e with
                | Loop { gens = [ Reduce { value = f'; _ } ]; _ }
                  when (not !consumed) && alpha_equal f' f ->
                    consumed := true;
                    Read (Var rsym, Var i)
                | _ -> map_sub rw e
              in
              let cval' = rw cval in
              if not !consumed then None
              else
                Some
                  (Let
                     ( rsym,
                       rloop,
                       Loop
                         { size = s1;
                           idx = i;
                           gens = [ Collect { cond = ccond; value = cval' } ];
                         } )))
      | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Row-to-Column Reduce                                                 *)
(* ------------------------------------------------------------------ *)

(* Top-level pure lets (introduced by code motion) are inlined back before
   matching: GPU scalarization recomputes what the CPU schedule hoisted. *)
let rec inline_pure_lets e =
  match e with
  | Let (s, b, body) when Rewrite.pure b -> inline_pure_lets (subst1 s b body)
  | _ -> e

(* Recognize a zipWith-shaped vector function: Collect over Len(Var x) (or
   a pure size) whose value uses Read(x, idx)/Read(y, idx) only. *)
let row_to_column : Rewrite.rule =
  { rname = "row-to-column";
    apply =
      (function
      | Loop
          { size = s2;
            idx = j;
            gens = [ Reduce { cond = c2; value = fv; a = av; b = bv; rfun = rv; init = initv } ];
          } -> (
          (* fv must be a Collect producing the per-j vector *)
          match (inline_pure_lets fv, inline_pure_lets rv, inline_pure_lets initv) with
          | ( Loop { size = s1; idx = i; gens = [ Collect { cond = None; value = f } ] },
              Loop
                { size = rsize;
                  idx = iz;
                  gens = [ Collect { cond = None; value = rbody } ];
                },
              Loop
                { size = s1i;
                  idx = ii;
                  gens = [ Collect { cond = None; value = init_scalar } ];
                } )
            when (not (depends_on j s1))
                 && alpha_equal s1 s1i
                 && (match rsize with
                    | Len (Var x) -> Sym.equal x av || Sym.equal x bv
                    | _ -> alpha_equal rsize s1)
                 && not (depends_on ii init_scalar) ->
              (* rbody must use av/bv only as Read(_, Var iz) *)
              let rec uses_ok e =
                match e with
                | Read (Var x, Var k) when Sym.equal x av || Sym.equal x bv ->
                    Sym.equal k iz
                | Var x when Sym.equal x av || Sym.equal x bv -> false
                | _ -> fold_sub (fun acc s -> acc && uses_ok s) true e
              in
              if not (uses_ok rbody) then None
              else
                (* scalar element type *)
                let fty = infer_with_declared_tys f in
                (match fty with
                | Some sty when Types.is_scalar sty ->
                    let a' = Sym.fresh ~name:"a" sty and b' = Sym.fresh ~name:"b" sty in
                    let rec back e =
                      match e with
                      | Read (Var x, Var k) when Sym.equal x av && Sym.equal k iz -> Var a'
                      | Read (Var x, Var k) when Sym.equal x bv && Sym.equal k iz -> Var b'
                      | _ -> map_sub back e
                    in
                    let scalar_r = back rbody in
                    let i' = Sym.fresh ~name:"i" Types.Int in
                    let j' = Sym.fresh ~name:"j" Types.Int in
                    let smap =
                      Sym.Map.of_seq (List.to_seq [ (i, Var i'); (j, Var j') ])
                    in
                    let inner =
                      Loop
                        { size = refresh_binders (subst1 i (Var i') s2);
                          idx = j';
                          gens =
                            [ Reduce
                                { cond =
                                    Option.map (fun c -> refresh_binders (subst smap c)) c2;
                                  value = refresh_binders (subst smap f);
                                  a = a';
                                  b = b';
                                  rfun = refresh_binders scalar_r;
                                  init = refresh_binders (subst1 ii (Var i') init_scalar);
                                };
                            ];
                        }
                    in
                    Some
                      (Loop
                         { size = s1;
                           idx = i';
                           gens = [ Collect { cond = None; value = inner } ];
                         })
                | _ -> None)
          | _ -> None)
      | _ -> None);
  }

let all = [ groupby_reduce; conditional_reduce; column_to_row; row_to_column ]

(** The rules applied by default in shared-memory pipelines (Row-to-Column
    is a device-specific inverse and is only applied by the GPU lowering). *)
let cpu_rules = [ groupby_reduce; conditional_reduce; column_to_row ]

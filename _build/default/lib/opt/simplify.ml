(** Scalar simplification: constant folding, algebraic identities,
    tuple/struct projection folding, let inlining, and dead-let
    elimination.

    Simplification runs between the structural passes; the nested-pattern
    rules in particular leave behind identity loops and trivial lets that
    this pass cleans up (paper §3.2: "this extra identity loop is simply
    optimized away").

    Preservation contract (shared by every pass in this library): if the
    source program evaluates successfully, the transformed program
    evaluates to the same value.  Transformations may {e remove} failures
    (e.g. dropping a dead division) but never introduce them. *)

open Dmll_ir
open Exp

let fold_prim (p : Prim.t) (args : exp list) : exp option =
  let open Prim in
  match (p, args) with
  | Add, [ Const (Cint a); Const (Cint b) ] -> Some (int_ (a + b))
  | Sub, [ Const (Cint a); Const (Cint b) ] -> Some (int_ (a - b))
  | Mul, [ Const (Cint a); Const (Cint b) ] -> Some (int_ (a * b))
  | Div, [ Const (Cint a); Const (Cint b) ] when b <> 0 -> Some (int_ (a / b))
  | Mod, [ Const (Cint a); Const (Cint b) ] when b <> 0 -> Some (int_ (a mod b))
  | Neg, [ Const (Cint a) ] -> Some (int_ (-a))
  | Min, [ Const (Cint a); Const (Cint b) ] -> Some (int_ (Stdlib.min a b))
  | Max, [ Const (Cint a); Const (Cint b) ] -> Some (int_ (Stdlib.max a b))
  | Fadd, [ Const (Cfloat a); Const (Cfloat b) ] -> Some (float_ (a +. b))
  | Fsub, [ Const (Cfloat a); Const (Cfloat b) ] -> Some (float_ (a -. b))
  | Fmul, [ Const (Cfloat a); Const (Cfloat b) ] -> Some (float_ (a *. b))
  | Fdiv, [ Const (Cfloat a); Const (Cfloat b) ] -> Some (float_ (a /. b))
  | Fneg, [ Const (Cfloat a) ] -> Some (float_ (-.a))
  | I2f, [ Const (Cint a) ] -> Some (float_ (float_of_int a))
  | Eq, [ Const a; Const b ] -> Some (bool_ (const_equal a b))
  | Ne, [ Const a; Const b ] -> Some (bool_ (not (const_equal a b)))
  | Lt, [ Const (Cint a); Const (Cint b) ] -> Some (bool_ (a < b))
  | Le, [ Const (Cint a); Const (Cint b) ] -> Some (bool_ (a <= b))
  | Gt, [ Const (Cint a); Const (Cint b) ] -> Some (bool_ (a > b))
  | Ge, [ Const (Cint a); Const (Cint b) ] -> Some (bool_ (a >= b))
  | Lt, [ Const (Cfloat a); Const (Cfloat b) ] -> Some (bool_ (a < b))
  | Le, [ Const (Cfloat a); Const (Cfloat b) ] -> Some (bool_ (a <= b))
  | Gt, [ Const (Cfloat a); Const (Cfloat b) ] -> Some (bool_ (a > b))
  | Ge, [ Const (Cfloat a); Const (Cfloat b) ] -> Some (bool_ (a >= b))
  | And, [ Const (Cbool a); Const (Cbool b) ] -> Some (bool_ (a && b))
  | Or, [ Const (Cbool a); Const (Cbool b) ] -> Some (bool_ (a || b))
  | Not, [ Const (Cbool a) ] -> Some (bool_ (not a))
  | Strcat, [ Const (Cstr a); Const (Cstr b) ] -> Some (str_ (a ^ b))
  | Strlen, [ Const (Cstr a) ] -> Some (int_ (String.length a))
  (* algebraic identities that hold without speculation *)
  | Add, [ e; Const (Cint 0) ] | Add, [ Const (Cint 0); e ] -> Some e
  | Sub, [ e; Const (Cint 0) ] -> Some e
  | Mul, [ e; Const (Cint 1) ] | Mul, [ Const (Cint 1); e ] -> Some e
  | Fadd, [ e; Const (Cfloat 0.0) ] | Fadd, [ Const (Cfloat 0.0); e ] -> Some e
  | Fmul, [ e; Const (Cfloat 1.0) ] | Fmul, [ Const (Cfloat 1.0); e ] -> Some e
  | And, [ e; Const (Cbool true) ] | And, [ Const (Cbool true); e ] -> Some e
  | Or, [ e; Const (Cbool false) ] | Or, [ Const (Cbool false); e ] -> Some e
  (* Note: [e * 0 -> 0] is NOT performed: it would drop a potential failure
     in [e] only when [e] is impure; and for floats it is wrong on NaN/inf.
     [e && false -> false] is likewise skipped to preserve failure order. *)
  | _ -> None

(** Is [e] cheap enough to duplicate freely at each use site? *)
let trivial = function
  | Const _ | Var _ | Input _ -> true
  | Len (Var _) | Len (Input _) -> true
  | Proj (Var _, _) -> true
  | _ -> false

(** Does [s] occur inside a loop's per-iteration code (generator parts)?
    Inlining such an occurrence would move a once-evaluated binding into a
    loop body — the opposite of code motion — so the inliner refuses.
    Occurrences in a loop's [size] are evaluated once and are fine. *)
let rec occurs_per_iteration s e =
  match e with
  | Loop { size; gens; _ } ->
      occurs_per_iteration s size
      || List.exists
           (fun g ->
             let parts =
               List.filter_map Fun.id [ gen_cond g; Some (gen_value g); gen_key g ]
             in
             let parts =
               match g with
               | Reduce { rfun; init; _ } | BucketReduce { rfun; init; _ } ->
                   rfun :: init :: parts
               | _ -> parts
             in
             List.exists (occurs s) parts)
           gens
  | _ -> fold_sub (fun acc sub -> acc || occurs_per_iteration s sub) false e

let rules : Rewrite.rule list =
  [ { rname = "constant-fold";
      apply = (function Prim (p, args) -> fold_prim p args | _ -> None);
    };
    { rname = "if-fold";
      apply =
        (function
        | If (Const (Cbool true), t, _) -> Some t
        | If (Const (Cbool false), _, f) -> Some f
        | If (_, t, f) when Rewrite.pure t && alpha_equal t f ->
            (* both branches identical and pure: condition still evaluated
               first via a let to preserve failures in it *)
            None
        | _ -> None);
    };
    { rname = "proj-fold";
      apply =
        (function
        | Proj (Tuple es, i) when i < List.length es ->
            let taken = List.nth es i in
            if List.for_all Rewrite.pure es then Some taken else None
        | _ -> None);
    };
    { rname = "field-fold";
      apply =
        (function
        | Field (Record (_, fs), n) when List.for_all (fun (_, v) -> Rewrite.pure v) fs ->
            List.assoc_opt n fs
        | _ -> None);
    };
    { rname = "len-of-collect";
      apply =
        (function
        (* Only an unconditional Collect has a statically known length. *)
        | Len (Loop { size; gens = [ Collect { cond = None; value } ]; _ })
          when Rewrite.pure value && Rewrite.total value ->
            Some size
        | _ -> None);
    };
    { rname = "let-inline";
      apply =
        (function
        | Let (s, bound, body) when trivial bound -> Some (subst1 s bound body)
        | Let (s, bound, body)
          when Rewrite.pure bound && count_occ s body = 1 && loop_free bound
               && not (occurs_per_iteration s body) ->
            (* single-use pure scalar code, not used per-iteration of any
               loop: inline (evaluation count can only decrease, so
               failures are only removed) *)
            Some (subst1 s bound body)
        | _ -> None);
    };
    { rname = "dead-let";
      apply =
        (function
        | Let (s, bound, body) when Rewrite.pure bound && count_occ s body = 0 ->
            Some body
        | _ -> None);
    };
  ]

(** Run the simplifier to fixpoint, recording rule firings in [trace]. *)
let simplify ?(trace = Rewrite.new_trace ()) e = Rewrite.fixpoint rules trace e

lib/opt/cse.ml: Dmll_ir Exp List Rewrite Sym Typecheck Types

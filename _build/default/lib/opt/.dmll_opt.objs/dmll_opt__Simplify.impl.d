lib/opt/simplify.ml: Dmll_ir Exp Fun List Prim Rewrite Stdlib String

lib/opt/motion.ml: Cse Dmll_ir Exp Fun List Rewrite Sym Typecheck Types

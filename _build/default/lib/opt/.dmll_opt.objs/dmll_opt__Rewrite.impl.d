lib/opt/rewrite.ml: Dmll_ir Exp List Prim Sym

lib/opt/rules_nested.ml: Dmll_ir Exp Fun Fusion List Option Prim Rewrite Sym Typecheck Types

lib/opt/soa.ml: Dmll_ir Exp Hashtbl List Option Rewrite String Sym Types

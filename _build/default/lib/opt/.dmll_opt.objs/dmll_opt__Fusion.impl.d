lib/opt/fusion.ml: Array Dmll_ir Exp Fun List Prim Rewrite Sym Typecheck Types

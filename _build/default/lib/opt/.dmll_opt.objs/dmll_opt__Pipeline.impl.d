lib/opt/pipeline.ml: Cse Dmll_ir Exp Fusion List Motion Rewrite Simplify Soa Typecheck

(** Data structure optimizations: struct unwrapping, array-of-struct to
    struct-of-array (AoS→SoA), and dead field elimination (paper §5).

    These passes reduce complex data structures to flat arrays of
    primitives, which (a) lets the backends use unboxed storage, (b)
    enables vectorization, and (c) greatly simplifies the read-stencil
    analysis, exactly as in the paper.

    - {e struct unwrapping}: a let-bound struct whose uses are all field
      projections is split into one binding per field.

    - {e collect-SoA}: a loop producing an array of structs, consumed only
      through per-element field reads, is rewritten into a multiloop with
      one [Collect] generator per field.  Unused fields then die by
      dead-generator elimination — dead field elimination for
      intermediates.

    - {e input-SoA}: an [Input] of array-of-struct type read only through
      field projections is replaced by one columnar [Input] per {e used}
      field ([name.field]) — dead field elimination at the source: unused
      columns are never even loaded.  {!columns_needed} reports the final
      column set so executors can supply the per-field arrays (see
      [Value]-level splitting in the runtime). *)

open Dmll_ir
open Exp

(* ------------------------------------------------------------------ *)
(* Struct unwrapping                                                    *)
(* ------------------------------------------------------------------ *)

(* All uses of [s] in [body] are field projections [Field (Var s, _)]. *)
let field_only s body =
  let rec go e =
    match e with
    | Field (Var s', _) when Sym.equal s s' -> true
    | Var s' when Sym.equal s s' -> false
    | _ -> fold_sub (fun acc sub -> acc && go sub) true e
  in
  go body

let used_struct_fields s body =
  let acc = ref [] in
  ignore
    (fold
       (fun () e ->
         match e with
         | Field (Var s', f) when Sym.equal s s' ->
             if not (List.mem f !acc) then acc := f :: !acc
         | _ -> ())
       () body);
  List.rev !acc

let struct_unwrap : Rewrite.rule =
  { rname = "struct-unwrap";
    apply =
      (function
      | Let (s, Record (Types.Struct (_, decl) as ty, fs), body)
        when Types.equal (Sym.ty s) ty
             && List.for_all (fun (_, v) -> Rewrite.pure v) fs
             && field_only s body ->
          (* struct literal: bind each field's defining expression *)
          let field_syms =
            List.map (fun (n, fty) -> (n, Sym.fresh ~name:("f_" ^ n) fty)) decl
          in
          let rec rw e =
            match e with
            | Field (Var s', n) when Sym.equal s s' -> Var (List.assoc n field_syms)
            | _ -> map_sub rw e
          in
          let body' = rw body in
          Some
            (List.fold_right
               (fun (n, fsym) acc ->
                 match List.assoc_opt n fs with
                 | Some v -> Let (fsym, v, acc)
                 | None -> acc)
               field_syms body')
      | Let (s, bound, body)
        when (match Sym.ty s with Types.Struct _ -> true | _ -> false)
             && Rewrite.pure bound && field_only s body ->
          (* general struct-typed binding (e.g. a bucket element): replace
             the binding by per-used-field projections, so downstream
             passes (input-SoA, field folding) see through it *)
          let used = used_struct_fields s body in
          if used = [] then None
          else begin
            let field_syms =
              List.map
                (fun f -> (f, Sym.fresh ~name:("f_" ^ f) (Types.field_ty (Sym.ty s) f)))
                used
            in
            let rec rw e =
              match e with
              | Field (Var s', n) when Sym.equal s s' -> Var (List.assoc n field_syms)
              | _ -> map_sub rw e
            in
            let body' = rw body in
            Some
              (List.fold_right
                 (fun (f, fsym) acc ->
                   Let (fsym, Field (refresh_binders bound, f), acc))
                 field_syms body')
          end
      | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Collect-SoA                                                          *)
(* ------------------------------------------------------------------ *)

let collect_soa : Rewrite.rule =
  { rname = "aos-to-soa";
    apply =
      (function
      | Let
          ( s,
            Loop
              { size;
                idx;
                gens = [ Collect { cond; value = Record (Types.Struct (_, decl), fs) } ];
              },
            body )
        when List.for_all (fun (_, v) -> Rewrite.pure v) fs ->
          (* uses: Field (Read (Var s, ix), f) or Len (Var s) only *)
          let rec uses_ok e =
            match e with
            | Field (Read (Var s', ix), _) when Sym.equal s s' -> uses_ok ix
            | Len (Var s') when Sym.equal s s' -> true
            | Var s' when Sym.equal s s' -> false
            | _ -> fold_sub (fun acc sub -> acc && uses_ok sub) true e
          in
          if not (uses_ok body) then None
          else begin
            let n = List.length decl in
            let index_of f =
              let rec go k = function
                | [] -> -1
                | (fn, _) :: rest -> if String.equal fn f then k else go (k + 1) rest
              in
              go 0 decl
            in
            let tup_ty = Types.Tup (List.map (fun (_, t) -> Types.Arr t) decl) in
            let s' = Sym.fresh ~name:(Sym.name s) tup_ty in
            ignore n;
            (* one Collect generator per field; each gets its own refreshed
               copy of the shared condition (generators evaluate their
               conditions independently) *)
            let gens =
              List.map
                (fun (fn, _) ->
                  let v = List.assoc fn fs in
                  Collect
                    { cond = Option.map refresh_binders cond;
                      value = refresh_binders v;
                    })
                decl
            in
            let rec rw e =
              match e with
              | Field (Read (Var sv, ix), f) when Sym.equal sv s ->
                  let k = index_of f in
                  if k < 0 then e else Read (Proj (Var s', k), rw ix)
              | Len (Var sv) when Sym.equal sv s -> Len (Proj (Var s', 0))
              | _ -> map_sub rw e
            in
            Some (Let (s', Loop { size; idx; gens }, rw body))
          end
      | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Input-SoA                                                            *)
(* ------------------------------------------------------------------ *)

(* This is a whole-program pass rather than a local rule: every occurrence
   of the same named input must be rewritten consistently. *)

let input_struct_arrays (e : exp) : (string * Types.ty * layout) list =
  let tbl = Hashtbl.create 8 in
  ignore
    (fold
       (fun () n ->
         match n with
         | Input (name, (Types.Arr (Types.Struct _) as ty), l) ->
             Hashtbl.replace tbl name (ty, l)
         | _ -> ())
       () e);
  Hashtbl.fold (fun name (ty, l) acc -> (name, ty, l) :: acc) tbl []

(* Uses of input [name] must all be [Field (Read (input, ix), f)] or
   [Len input].  Returns the set of used fields, or None if irregular. *)
let used_fields (name : string) (e : exp) : string list option =
  let fields = ref [] in
  let ok = ref true in
  let note f = if not (List.mem f !fields) then fields := f :: !fields in
  let rec go e =
    match e with
    | Field (Read (Input (n, _, _), ix), f) when String.equal n name ->
        note f;
        go ix
    | Len (Input (n, _, _)) when String.equal n name -> ()
    | Input (n, _, _) when String.equal n name -> ok := false
    | _ -> ignore (map_sub (fun s -> go s; s) e)
  in
  go e;
  if !ok then Some (List.rev !fields) else None

let column_name base field = base ^ "." ^ field

(** Rewrite AoS inputs into columnar inputs.  Returns the rewritten program
    and, per transformed input, the list of required columns (the paper's
    dead-field-eliminated schema). *)
let soa_inputs ?(trace = Rewrite.new_trace ()) (e : exp) :
    exp * (string * string list) list =
  let transformed = ref [] in
  let result =
    List.fold_left
      (fun e (name, ty, layout) ->
        match ty with
        | Types.Arr (Types.Struct (_, decl) as sty) -> (
            match used_fields name e with
            | None | Some [] -> e
            | Some used ->
                let fty f = Types.field_ty sty f in
                let col f = Input (column_name name f, Types.Arr (fty f), layout) in
                let len_col = col (List.hd used) in
                let rec rw e =
                  match e with
                  | Field (Read (Input (n, _, _), ix), f) when String.equal n name ->
                      Read (col f, rw ix)
                  | Len (Input (n, _, _)) when String.equal n name -> Len len_col
                  | _ -> map_sub rw e
                in
                Rewrite.record trace "input-soa";
                let dead = List.filter (fun (f, _) -> not (List.mem f used)) decl in
                if dead <> [] then Rewrite.record trace "dead-field-elim";
                transformed := (name, used) :: !transformed;
                rw e)
        | _ -> e)
      e (input_struct_arrays e)
  in
  (result, !transformed)

(** All columnar input names required by a program post-SoA. *)
let columns_needed (e : exp) : (string * Types.ty) list =
  let tbl = Hashtbl.create 8 in
  ignore
    (fold
       (fun () n ->
         match n with
         | Input (name, ty, _) -> Hashtbl.replace tbl name ty
         | _ -> ())
       () e);
  Hashtbl.fold (fun name ty acc -> (name, ty) :: acc) tbl []

let rules = [ struct_unwrap; collect_soa ]

let run ?(trace = Rewrite.new_trace ()) e =
  let e = Rewrite.fixpoint rules trace e in
  fst (soa_inputs ~trace e)

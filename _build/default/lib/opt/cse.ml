(** Common subexpression elimination.

    Two cooperating mechanisms, mirroring Delite's sea-of-nodes sharing in
    our tree IR (paper §5 lists CSE among the reused optimizations):

    - {e let-reuse}: inside [Let (s, e, body)], occurrences in [body] that
      are alpha-equal to [e] are replaced by [Var s].  This never adds an
      evaluation, so it is unconditionally safe.

    - {e let-introduction}: a pure, total subexpression occurring at least
      twice in the same once-evaluated scope is hoisted into a fresh [Let].
      Restricted to total expressions so no failure can be introduced. *)

open Dmll_ir
open Exp

(* Replace every subexpression of [body] alpha-equal to [bound] by [Var s].
   Stop descending once a replacement happens (inner copies are covered by
   the outer replacement). *)
let rec replace_equal (s : Sym.t) (bound : exp) (body : exp) : exp =
  if alpha_equal body bound then Var s
  else map_sub (replace_equal s bound) body

let worth_sharing e =
  (* sharing pays once the expression does real work; variables, constants
     and single reads are cheaper re-evaluated than spilled *)
  node_count e > 3 && Rewrite.pure e

let let_reuse : Rewrite.rule =
  { rname = "cse-let-reuse";
    apply =
      (function
      | Let (s, bound, body) when worth_sharing bound ->
          let body' = replace_equal s bound body in
          if body' == body || alpha_equal body body' then None
          else Some (Let (s, bound, body'))
      | _ -> None);
  }

(* Collect candidate subexpressions of [e] that are (a) total, (b) big
   enough to share, and (c) closed with respect to [e]'s own binders — so
   they can be hoisted above [e] without capture. *)
let hoistable_candidates (e : exp) : exp list =
  let binders = Rewrite.bound_syms e in
  let ok c =
    Rewrite.total c
    && node_count c > 3
    && Sym.Set.is_empty (Sym.Set.inter (free_vars c) binders)
  in
  (* count alpha-equivalence classes *)
  let classes : (exp * int ref) list ref = ref [] in
  let note c =
    match List.find_opt (fun (r, _) -> alpha_equal r c) !classes with
    | Some (_, n) -> incr n
    | None -> classes := (c, ref 1) :: !classes
  in
  let rec go sub =
    if ok sub then note sub;
    (* do not descend into a noted candidate: inner copies are subsumed *)
    ignore (map_sub (fun s -> go s; s) sub)
  in
  ignore (map_sub (fun s -> go s; s) e);
  List.filter_map (fun (c, n) -> if !n >= 2 then Some c else None) !classes

let introduce : Rewrite.rule =
  { rname = "cse-introduce";
    apply =
      (fun e ->
        match e with
        (* introduce shared lets at existing let-spines only, to keep the
           rewrite confluent and avoid re-walking every node *)
        | Let (_, _, _) | Loop _ -> (
            match hoistable_candidates e with
            | [] -> None
            | c :: _ ->
                let ty =
                  match Typecheck.check_closed c with
                  | Ok t -> Some t
                  | Error _ -> None
                  (* candidates may have free program variables; fall back
                     to inference with their declared types *)
                in
                let ty =
                  match ty with
                  | Some t -> t
                  | None -> (
                      try
                        Typecheck.infer
                          (Sym.Set.fold
                             (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
                             (free_vars c) Sym.Map.empty)
                          c
                      with Typecheck.Type_error _ -> Types.Unit)
                in
                if Types.equal ty Types.Unit then None
                else
                  let s = Sym.fresh ~name:"cse" ty in
                  Some (Let (s, c, replace_equal s c e)))
        | _ -> None);
  }

let rules = [ let_reuse; introduce ]

let run ?(trace = Rewrite.new_trace ()) e = Rewrite.fixpoint rules trace e

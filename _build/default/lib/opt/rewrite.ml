(** Rewrite-rule framework.

    Transformations are local rules [exp -> exp option] applied bottom-up to
    a fixpoint, in the style of the scoped-rewriting systems DMLL builds on
    (paper §2, "Pattern Transformations").  Every application is recorded in
    a {!trace} so the driver can report which optimizations fired — the
    "Optimizations" column of Table 2 — and so tests can assert that a rule
    did (or did not) fire. *)

open Dmll_ir
open Exp

type rule = { rname : string; apply : exp -> exp option }

type trace = { mutable applied : string list (* reverse order *) }

let new_trace () = { applied = [] }
let record trace name = trace.applied <- name :: trace.applied
let applied trace = List.rev trace.applied
let fired trace name = List.mem name trace.applied

(* ------------------------------------------------------------------ *)
(* Purity and totality                                                  *)
(* ------------------------------------------------------------------ *)

(** An expression is pure if re-evaluating it (zero or more times) has no
    observable effect besides its value.  Only non-whitelisted externs are
    impure. *)
let rec pure (e : exp) : bool =
  match e with
  | Extern { whitelisted; _ } -> whitelisted && fold_sub (fun acc s -> acc && pure s) true e
  | _ -> fold_sub (fun acc s -> acc && pure s) true e

(** An expression is total if it is pure {e and} can never fail at runtime:
    it contains no bounds-checked reads, partial arithmetic, or keyed map
    lookups without defaults.  Only total expressions may be speculated
    (hoisted into positions where they might be evaluated more often than
    in the source program). *)
let rec total (e : exp) : bool =
  match e with
  | Read _ | KeyAt _ -> false
  | MapRead (_, _, None) -> false
  | MapRead (m, k, Some d) -> total m && total k && total d
  | Prim ((Prim.Div | Prim.Mod | Prim.Strget), _) -> false
  | Extern _ -> false
  | _ -> fold_sub (fun acc s -> acc && total s) true e

(* ------------------------------------------------------------------ *)
(* Binder census                                                        *)
(* ------------------------------------------------------------------ *)

(** All symbols bound anywhere inside [e] (let binders, loop indices,
    reduction accumulators). *)
let bound_syms (e : exp) : Sym.Set.t =
  let acc = ref Sym.Set.empty in
  let add s = acc := Sym.Set.add s !acc in
  let rec go e =
    (match e with
    | Let (s, _, _) -> add s
    | Loop { idx; gens; _ } ->
        add idx;
        List.iter
          (function
            | Reduce { a; b; _ } | BucketReduce { a; b; _ } ->
                add a;
                add b
            | _ -> ())
          gens
    | _ -> ());
    ignore (map_sub (fun s -> go s; s) e)
  in
  go e;
  !acc

(* ------------------------------------------------------------------ *)
(* Bottom-up rewriting to fixpoint                                      *)
(* ------------------------------------------------------------------ *)

(** One bottom-up sweep: children first, then try each rule at this node
    (first match wins). *)
let rec sweep (rules : rule list) (trace : trace) (e : exp) : exp =
  let e = map_sub (sweep rules trace) e in
  let rec try_rules = function
    | [] -> e
    | r :: rest -> (
        match r.apply e with
        | Some e' ->
            record trace r.rname;
            e'
        | None -> try_rules rest)
  in
  try_rules rules

(** Apply [rules] bottom-up repeatedly until no rule fires or [max_iters]
    sweeps have run (a safety net against non-terminating rule sets; the
    shipped rule sets are strictly size-reducing or fire-once). *)
let fixpoint ?(max_iters = 40) (rules : rule list) (trace : trace) (e : exp) : exp =
  let rec go i e =
    if i >= max_iters then e
    else
      let before = List.length trace.applied in
      let e' = sweep rules trace e in
      if List.length trace.applied = before then e' else go (i + 1) e'
  in
  go 0 e

(** Convenience: run rules to fixpoint with a fresh trace. *)
let run ?max_iters rules e =
  let trace = new_trace () in
  let e' = fixpoint ?max_iters rules trace e in
  (e', applied trace)

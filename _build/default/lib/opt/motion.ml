(** Loop-invariant code motion.

    Hoists total (pure, non-failing) subexpressions that do not depend on a
    loop's index or reduction accumulators out of the loop's per-iteration
    code into a [Let] binding above the loop.  Together with {!Cse} this
    reproduces Delite's code-motion optimization reused by DMLL (paper §5).

    Expressions hoisted from {e guarded} positions (generator conditions,
    reduction functions, conditional generators' values) must be total
    (pure and non-failing), because the hoisted copy may run when the
    original would not have.  Expressions hoisted from the value/key of an
    {e unconditional} generator run on every iteration anyway, so pure but
    partial expressions (loop-invariant reads, divisions) may be hoisted
    speculatively — this is what floats logistic regression's per-sample
    hypothesis out of the per-feature inner loop after Column-to-Row. *)

open Dmll_ir
open Exp

(* The largest hoistable subexpressions of [part] that (a) do not mention
   any symbol in [blocked], and (b) do real work.  [speculate] allows
   hoisting pure-but-partial expressions (reads, divisions): legal when the
   source position is evaluated unconditionally on every iteration, so the
   hoisted copy only re-evaluates what the first iteration would have
   (modulo the size-0 corner, which production loop-invariant code motion
   also accepts). *)
let rec invariant_candidates ~speculate (blocked : Sym.Set.t) (part : exp) : exp list =
  let invariant e =
    Sym.Set.is_empty (Sym.Set.inter (free_vars e) blocked)
  in
  let ok = if speculate then Rewrite.pure part else Rewrite.total part in
  if ok && invariant part && node_count part > 3 then [ part ]
  else
    (* Once under an If branch, evaluation is no longer unconditional. *)
    let speculate = match part with If _ -> false | _ -> speculate in
    fold_sub (fun acc sub -> acc @ invariant_candidates ~speculate blocked sub) [] part

let gen_parts g =
  let parts = List.filter_map Fun.id [ gen_cond g; Some (gen_value g); gen_key g ] in
  match g with
  | Reduce { rfun; init; _ } | BucketReduce { rfun; init; _ } -> rfun :: init :: parts
  | _ -> parts

let hoist_rule : Rewrite.rule =
  { rname = "code-motion";
    apply =
      (function
      | Loop { size; idx; gens } as loop ->
          let blocked =
            List.fold_left
              (fun acc g ->
                match g with
                | Reduce { a; b; _ } | BucketReduce { a; b; _ } ->
                    Sym.Set.add a (Sym.Set.add b acc)
                | _ -> acc)
              (Sym.Set.singleton idx) gens
          in
          (* Also refuse to hoist expressions mentioning symbols bound
             inside the loop's own parts. *)
          let blocked = Sym.Set.union blocked (Rewrite.bound_syms loop) in
          let candidates =
            List.concat_map
              (fun g ->
                (* the value/key of an unconditional generator run on every
                   iteration: speculative hoisting is safe there *)
                let unconditional = gen_cond g = None in
                let strict_parts =
                  List.filter_map Fun.id [ Some (gen_value g); gen_key g ]
                in
                let guarded_parts =
                  (match gen_cond g with Some c -> [ c ] | None -> [])
                  @
                  match g with
                  | Reduce { rfun; init; _ } | BucketReduce { rfun; init; _ } ->
                      [ rfun; init ]
                  | _ -> []
                in
                List.concat_map
                  (invariant_candidates ~speculate:unconditional blocked)
                  strict_parts
                @ List.concat_map
                    (invariant_candidates ~speculate:false blocked)
                    guarded_parts)
              gens
          in
          (match candidates with
          | [] -> None
          | c :: _ ->
              let ty =
                try
                  Typecheck.infer
                    (Sym.Set.fold
                       (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
                       (free_vars c) Sym.Map.empty)
                    c
                with Typecheck.Type_error _ -> Types.Unit
              in
              if Types.equal ty Types.Unit then None
              else
                let s = Sym.fresh ~name:"inv" ty in
                let loop' =
                  Loop { size; idx; gens = List.map (map_gen_parts (Cse.replace_equal s c)) gens }
                in
                let loop' =
                  (* rfun/init are not visited by map_gen_parts; rewrite
                     them explicitly *)
                  match loop' with
                  | Loop { size; idx; gens } ->
                      Loop
                        { size;
                          idx;
                          gens =
                            List.map
                              (function
                                | Reduce r ->
                                    Reduce { r with rfun = Cse.replace_equal s c r.rfun;
                                                    init = Cse.replace_equal s c r.init }
                                | BucketReduce r ->
                                    BucketReduce
                                      { r with rfun = Cse.replace_equal s c r.rfun;
                                               init = Cse.replace_equal s c r.init }
                                | g -> g)
                              gens;
                        }
                  | e -> e
                in
                Some (Let (s, c, loop')))
      | _ -> None);
  }

let rules = [ hoist_rule ]

let run ?(trace = Rewrite.new_trace ()) e = Rewrite.fixpoint rules trace e

(** Static cost analysis: per-iteration work and memory traffic of a
    multiloop.

    The machine models (NUMA / GPU / cluster simulators) convert these
    per-element costs into simulated time using hardware parameters
    (issue rate, memory bandwidth, link bandwidth).  The model is
    deliberately simple — a roofline-style account of floating point work
    and bytes moved — because the paper's scaling arguments rest on
    bandwidth saturation and communication volume, not on micro-
    architectural detail. *)

open Dmll_ir
open Exp

type t = {
  flops : float;  (** weighted operation count (see {!Prim.flops}) *)
  bytes_read : float;
  bytes_written : float;
}

let zero = { flops = 0.0; bytes_read = 0.0; bytes_written = 0.0 }

let ( ++ ) a b =
  { flops = a.flops +. b.flops;
    bytes_read = a.bytes_read +. b.bytes_read;
    bytes_written = a.bytes_written +. b.bytes_written;
  }

let scale k a =
  { flops = k *. a.flops;
    bytes_read = k *. a.bytes_read;
    bytes_written = k *. a.bytes_written;
  }

let pp fmt c =
  Fmt.pf fmt "{flops=%.1f; rd=%.1fB; wr=%.1fB}" c.flops c.bytes_read c.bytes_written

(* Element byte-size of a collection expression, from declared types. *)
let elem_bytes (base : exp) : float =
  let ty =
    match base with
    | Var s -> Some (Sym.ty s)
    | Input (_, t, _) -> Some t
    | _ -> None
  in
  match ty with
  | Some (Types.Arr t) -> float_of_int (Types.byte_size t)
  | Some (Types.Map (_, v)) -> float_of_int (Types.byte_size v)
  | _ -> 8.0

(* Cost of evaluating [e] once.  [eval_size] resolves loop-size expressions
   to element counts when it can (constants, lengths of known inputs);
   unresolved sizes fall back to [default_size].  [locals] holds symbols
   bound inside the enclosing per-iteration region: reads of such
   temporaries hit registers/L1, not DRAM, so they are charged a nominal
   byte. *)
let rec of_exp ?(locals = Sym.Set.empty) ~(eval_size : exp -> int option)
    ~(default_size : int) (e : exp) : t =
  let recur = of_exp ~locals ~eval_size ~default_size in
  let read_bytes base =
    match base with
    | Var s when Sym.Set.mem s locals -> 1.0
    | _ -> elem_bytes base
  in
  match e with
  | Const _ | Var _ | Input _ -> zero
  | Prim ((Prim.Div | Prim.Mod), [ a; Const (Cint _) ]) ->
      (* division by a constant strength-reduces to multiply+shift *)
      recur a ++ { zero with flops = 2.0 }
  | Prim (p, args) ->
      List.fold_left (fun acc a -> acc ++ recur a) { zero with flops = Prim.flops p } args
  | If (c, t, f) ->
      (* average the branches: data-dependent branching, no static winner *)
      recur c ++ scale 0.5 (recur t ++ recur f)
  | Let (s, a, b) ->
      recur a ++ of_exp ~locals:(Sym.Set.add s locals) ~eval_size ~default_size b
  | Tuple es -> List.fold_left (fun acc a -> acc ++ recur a) zero es
  | Proj (a, _) | Field (a, _) -> recur a
  | Record (_, fs) -> List.fold_left (fun acc (_, v) -> acc ++ recur v) zero fs
  | Len a -> recur a
  | Read (base, ix) -> recur ix ++ { zero with bytes_read = read_bytes base } ++ recur_base recur base
  | MapRead (base, k, d) ->
      (* hashed lookup: a few ops plus the value read *)
      recur k
      ++ (match d with Some d -> scale 0.1 (recur d) | None -> zero)
      ++ { zero with flops = 4.0; bytes_read = read_bytes base }
      ++ recur_base recur base
  | KeyAt (base, ix) -> recur ix ++ { zero with bytes_read = 8.0 } ++ recur_base recur base
  | Extern { eargs; _ } ->
      List.fold_left (fun acc a -> acc ++ recur a) { zero with flops = 50.0 } eargs
  | Loop l ->
      let n =
        match eval_size l.size with Some n -> n | None -> default_size
      in
      recur l.size ++ scale (float_of_int n) (per_iter ~locals ~eval_size ~default_size l)

and recur_base recur = function
  | Var _ | Input _ -> zero
  | b -> recur b

(* Per-iteration cost of a multiloop: the sum over its generators of
   condition + key + value evaluation plus accumulation cost. *)
and per_iter ?(locals = Sym.Set.empty) ~eval_size ~default_size (l : loop) : t =
  let locals = Sym.Set.add l.idx locals in
  let recur = of_exp ~locals ~eval_size ~default_size in
  (* sibling generators sharing a condition/key (horizontal fusion's
     output) evaluate it once per iteration (the backends' registries);
     charge each alpha-class once *)
  let seen_conds : exp list ref = ref [] in
  let seen_keys : exp list ref = ref [] in
  let once seen e cost =
    if List.exists (alpha_equal e) !seen then zero
    else begin
      seen := e :: !seen;
      cost
    end
  in
  List.fold_left
    (fun acc g ->
      let cond_c =
        match gen_cond g with
        | Some c -> once seen_conds c (recur c)
        | None -> zero
      in
      (* conditional generators evaluate value/accum only when the guard
         passes; without selectivity information assume one half *)
      let sel = match gen_cond g with Some _ -> 0.5 | None -> 1.0 in
      let key_c =
        match gen_key g with
        | Some k -> once seen_keys k (scale sel (recur k ++ { zero with flops = 4.0 }))
        | None -> zero
      in
      let value_c = scale sel (recur (gen_value g)) in
      let accum_c =
        match g with
        | Collect { value; _ } ->
            (* append to output buffer *)
            { zero with bytes_written = value_bytes value }
        | BucketCollect { value; _ } ->
            { zero with flops = 2.0; bytes_written = value_bytes value }
        | Reduce { rfun; _ } -> recur rfun
        | BucketReduce { rfun; value; _ } ->
            recur rfun ++ { zero with bytes_written = value_bytes value; flops = 2.0 }
      in
      acc ++ cond_c ++ key_c ++ value_c ++ scale sel accum_c)
    zero l.gens

and value_bytes (value : exp) : float =
  (* static type of the produced element, from declared symbol types *)
  let ty =
    try
      Some
        (Typecheck.infer
           (Sym.Set.fold
              (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
              (free_vars value) Sym.Map.empty)
           value)
    with Typecheck.Type_error _ -> None
  in
  match ty with Some t -> float_of_int (Types.byte_size t) | None -> 8.0

(** Per-iteration cost of a loop. *)
let loop_per_iter ?(default_size = 16) ?(eval_size = fun _ -> None) l =
  per_iter ~eval_size ~default_size l

(** Total cost of evaluating [e] once. *)
let of_program ?(default_size = 16) ?(eval_size = fun _ -> None) e =
  of_exp ~eval_size ~default_size e

(** A size evaluator resolving constants and [Len (Input _)] via a table of
    input lengths; composes let-bound aliases away with {!Linear.simp}. *)
let size_evaluator (input_lens : (string * int) list) : exp -> int option =
  let rec go e =
    match e with
    | Const (Cint n) -> Some n
    | Len (Input (n, _, _)) -> List.assoc_opt n input_lens
    | Len (Var s) -> (
        (* symbol lengths are unknown statically; a common case is a var
           aliasing an input, which the optimizer has usually inlined *)
        ignore s;
        None)
    | Prim (Prim.Mul, [ a; b ]) -> (
        match (go a, go b) with Some x, Some y -> Some (x * y) | _ -> None)
    | Prim (Prim.Add, [ a; b ]) -> (
        match (go a, go b) with Some x, Some y -> Some (x + y) | _ -> None)
    | Prim (Prim.Sub, [ a; b ]) -> (
        match (go a, go b) with Some x, Some y -> Some (x - y) | _ -> None)
    | Prim (Prim.Div, [ a; b ]) -> (
        match (go a, go b) with
        | Some x, Some y when y <> 0 -> Some (x / y)
        | _ -> None)
    | _ -> None
  in
  go

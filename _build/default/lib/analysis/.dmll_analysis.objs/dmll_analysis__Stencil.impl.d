lib/analysis/stencil.ml: Dmll_ir Exp Fmt Fun Linear List Option String Sym Types

lib/analysis/partition.ml: Dmll_ir Dmll_opt Exp Hashtbl List Option Printf Stencil Types

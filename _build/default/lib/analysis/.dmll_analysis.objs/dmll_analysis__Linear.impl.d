lib/analysis/linear.ml: Builder Dmll_ir Exp Prim Sym

lib/analysis/cost.ml: Dmll_ir Exp Fmt List Prim Sym Typecheck Types

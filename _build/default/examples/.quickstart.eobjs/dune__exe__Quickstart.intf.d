examples/quickstart.mli:

examples/logreg_cluster.ml: Array Dmll Dmll_apps Dmll_data Dmll_interp Dmll_runtime Dmll_util List Printf String

examples/pagerank_graph.ml: Array Dmll Dmll_apps Dmll_data Dmll_graph Dmll_interp Dmll_machine Dmll_runtime Dmll_util Float List Printf

examples/kmeans_pipeline.ml: Array Dmll Dmll_analysis Dmll_apps Dmll_data Dmll_interp Dmll_ir Dmll_machine Dmll_runtime Dmll_util Domain Float List Printf Stdlib String

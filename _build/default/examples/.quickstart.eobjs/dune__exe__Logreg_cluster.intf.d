examples/logreg_cluster.mli:

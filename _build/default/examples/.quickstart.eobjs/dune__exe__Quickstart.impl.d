examples/quickstart.ml: Array Dmll Dmll_dsl Dmll_interp Dmll_ir Dmll_util List Printf

examples/pagerank_graph.mli:

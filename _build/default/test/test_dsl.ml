(* Tests of the staged DSL front-end: combinators must build the intended
   IR shapes and evaluate to the intended values; sharing (let$) must
   produce one binding, not duplicated subtrees. *)

open Dmll_ir
open Dmll_interp
module D = Dmll_dsl.Dsl

let check = Alcotest.check
let tint = Alcotest.int

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

let run ?(inputs = []) e = Interp.run ~inputs (D.reveal e)

let xs = D.input_farr "xs"
let xs_val = Value.of_float_array [| 1.0; 2.0; 3.0; 4.0 |]

let test_scalars () =
  check value "arith" (Value.Vfloat 7.0) (run D.(float 1.0 +. (float 2.0 *. float 3.0)));
  check value "int arith" (Value.Vint 7) (run D.(int 25 mod int 9));
  check value "compare" (Value.Vbool true) (run D.(float 1.0 < float 2.0));
  check value "if" (Value.Vint 1) (run D.(if_ (bool true) (int 1) (int 2)));
  check value "min/max" (Value.Vint 3) (run D.(imin (int 3) (imax (int 1) (int 5))))

let test_sharing () =
  (* let$ computes the bound expression once: the IR has one Let whose
     bound is the sum, and the body references it twice *)
  let e =
    D.(
      let$ s = sum_float xs in
      s +. s)
  in
  (match D.reveal e with
  | Exp.Let (sym, Exp.Loop _, body) -> check tint "two refs" 2 (Exp.count_occ sym body)
  | _ -> Alcotest.fail "expected a let of a loop");
  check value "sharing value" (Value.Vfloat 20.0) (run ~inputs:[ ("xs", xs_val) ] e)

let test_collections () =
  let inputs = [ ("xs", xs_val) ] in
  check value "map" (Value.of_float_array [| 2.0; 4.0; 6.0; 8.0 |])
    (run ~inputs D.(map xs (fun v -> v *. float 2.0)));
  check value "filter"
    (Value.of_float_array [| 3.0; 4.0 |])
    (run ~inputs D.(filter xs (fun v -> v > float 2.0)));
  check value "zip_with"
    (Value.of_float_array [| 2.0; 4.0; 6.0; 8.0 |])
    (run ~inputs D.(zip_with xs xs (fun a b -> a +. b)));
  check value "mean" (Value.Vfloat 2.5) (run ~inputs (D.mean xs));
  check value "sum_range" (Value.Vfloat 6.0)
    (run D.(sum_range (int 4) (fun i -> to_float i)));
  check value "count_range_if" (Value.Vint 2)
    (run D.(count_range_if (int 4) (fun i -> i < int 2)));
  (* f(v) = v^2 - 5v over [1;2;3;4] is minimized (ties -> first) at v=2 *)
  check value "min_index" (Value.Vint 1)
    (run ~inputs D.(min_index (int 4) (fun i -> D.get xs i *. D.get xs i -. D.get xs i *. float 5.0)))

let test_flat_map () =
  let inputs = [ ("xs", xs_val) ] in
  (* each element expands to (v, v*10): widths are fixed so the encoding is
     one affine Collect *)
  let e =
    D.(
      flat_map_fixed xs ~width:(int 2) (fun v k ->
          if_ (k = int 0) v (v *. float 10.0)))
  in
  check value "flat_map_fixed"
    (Value.of_float_array [| 1.; 10.; 2.; 20.; 3.; 30.; 4.; 40. |])
    (run ~inputs e);
  (* it is a single loop, and the stencil of xs stays affine *)
  (match D.reveal e with
  | Exp.Loop _ -> ()
  | _ -> Alcotest.fail "expected a single collect");
  check tint "one loop" 1 (List.length (Exp.loops_of (D.reveal e)))

let test_grouping () =
  let m =
    D.(
      group_reduce (int 10)
        ~key:(fun i -> i mod int 3)
        ~value:(fun i -> i)
        ~init:(int 0)
        ~combine:(fun a b -> a + b))
  in
  (match run m with
  | Value.Vmap vm ->
      check tint "three buckets" 3 (Array.length vm.Value.mkeys);
      check value "bucket 0" (Value.Vint 18) vm.Value.mvals.(0)
  | v -> Alcotest.failf "expected map, got %s" (Value.to_string v));
  check value "lookup_or hit" (Value.Vint 18)
    (run D.(let$ g = m in lookup_or g (int 0) ~default:(int (-1))));
  check value "lookup_or miss" (Value.Vint (-1))
    (run D.(let$ g = m in lookup_or g (int 99) ~default:(int (-1))));
  check value "bucket_key" (Value.Vint 1)
    (run D.(let$ g = m in bucket_key g (int 1)));
  check value "map_buckets" (Value.of_int_array [| 19; 13; 16 |])
    (run D.(let$ g = m in map_buckets g (fun v -> v + int 1)))

let test_group_by () =
  let g = D.(group_by xs ~key:(fun v -> to_int v mod int 2)) in
  match run ~inputs:[ ("xs", xs_val) ] g with
  | Value.Vmap vm ->
      check tint "two buckets" 2 (Array.length vm.Value.mkeys);
      check value "bucket of odds" (Value.of_float_array [| 1.0; 3.0 |]) vm.Value.mvals.(0)
  | v -> Alcotest.failf "expected map, got %s" (Value.to_string v)

let test_vectors () =
  let inputs = [ ("xs", xs_val) ] in
  check value "vzero" (Value.of_float_array [| 0.0; 0.0 |]) (run D.(vzero (int 2)));
  check value "vadd" (Value.of_float_array [| 2.0; 4.0; 6.0; 8.0 |])
    (run ~inputs D.(vadd xs xs));
  check value "vscale" (Value.of_float_array [| 3.0; 6.0; 9.0; 12.0 |])
    (run ~inputs D.(vscale (float 3.0) xs));
  check value "dot" (Value.Vfloat 30.0) (run ~inputs D.(dot xs xs))

let test_matrix () =
  (* 2x3 row-major matrix [[1 2 3];[4 5 6]] *)
  let m_val = Value.of_float_array [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let inputs = [ ("m", m_val) ] in
  let m = D.Mat.input "m" ~rows:(D.int 2) ~cols:(D.int 3) in
  check value "get" (Value.Vfloat 6.0) (run ~inputs (D.Mat.get m (D.int 1) (D.int 2)));
  check value "row" (Value.of_float_array [| 4.; 5.; 6. |])
    (run ~inputs (D.Mat.row m (D.int 1)));
  check value "row sums" (Value.of_float_array [| 6.0; 15.0 |])
    (run ~inputs
       (D.Mat.map_rows m (fun _ get -> D.sum_range (D.int 3) (fun j -> get j))));
  check value "dist2 between rows" (Value.Vfloat 27.0)
    (run ~inputs (D.Mat.dist2_rows m (D.int 0) m (D.int 1)));
  check value "dot row with vec" (Value.Vfloat 32.0)
    (run
       ~inputs:(inputs @ [ ("v", Value.of_float_array [| 1.; 2.; 3. |]) ])
       (D.Mat.dot_row m (D.int 1) (D.input_farr "v")))

let test_staged_types_check () =
  (* anything the DSL builds must type check *)
  let progs =
    [ D.reveal D.(map xs (fun v -> exp v));
      D.reveal D.(let$ s = sum_float xs in map xs (fun v -> v /. s));
      D.reveal
        D.(
          group_reduce (int 6)
            ~key:(fun i -> i mod int 2)
            ~value:(fun i -> to_float i)
            ~init:(float 0.0)
            ~combine:(fun a b -> a +. b));
    ]
  in
  List.iter
    (fun p ->
      match Typecheck.check_closed p with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "ill-typed DSL output: %s" (Fmt.str "%a" Typecheck.pp_error e))
    progs

let () =
  Alcotest.run "dsl"
    [ ( "dsl",
        [ Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "sharing" `Quick test_sharing;
          Alcotest.test_case "collections" `Quick test_collections;
          Alcotest.test_case "flat_map_fixed" `Quick test_flat_map;
          Alcotest.test_case "grouping" `Quick test_grouping;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "matrix" `Quick test_matrix;
          Alcotest.test_case "well-typed" `Quick test_staged_types_check;
        ] );
    ]

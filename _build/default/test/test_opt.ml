(* Tests of the optimization library: simplification, CSE, code motion,
   fusion, the Figure-3 nested pattern rules, and data structure
   optimizations.  Every structural assertion is paired with a semantic
   check against the reference interpreter. *)

open Dmll_ir
open Dmll_interp
open Dmll_opt
open Exp
open Builder

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

let value_approx : Value.t Alcotest.testable =
  Alcotest.testable
    (fun fmt v -> Fmt.string fmt (Value.to_string v))
    (Value.approx_equal ~eps:1e-9)

let n_loops e = List.length (loops_of e)

(* A float-array input occurring in most fixtures. *)
let xs_sym = Sym.fresh ~name:"xs" (Types.Arr Types.Float)
let with_xs body = Let (xs_sym, Input ("xs", Types.Arr Types.Float, Local), body)
let xs_val = Value.of_float_array [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |]
let run_xs e = Interp.run ~inputs:[ ("xs", xs_val) ] e

(* ---------------- simplify ---------------- *)

let test_constant_fold () =
  let e = int_ 2 +! (int_ 3 *! int_ 4) in
  let e' = Simplify.simplify e in
  check tbool "folds to 14" true (alpha_equal e' (int_ 14));
  let f = float_ 1.0 +. (float_ 2.0 *. float_ 3.0) in
  check tbool "float fold" true (alpha_equal (Simplify.simplify f) (float_ 7.0));
  (* division by zero is not folded *)
  let d = int_ 1 /! int_ 0 in
  check tbool "div-by-zero preserved" true (alpha_equal (Simplify.simplify d) d)

let test_identities () =
  let x = Sym.fresh ~name:"x" Types.Float in
  let e = Let (x, Input ("xs0", Types.Float, Local), (Var x +. float_ 0.0) *. float_ 1.0) in
  let e' = Simplify.simplify e in
  check tbool "x+0*1 simplifies to x" true
    (alpha_equal e' (Input ("xs0", Types.Float, Local)))

let test_if_and_proj_fold () =
  check tbool "if true" true
    (alpha_equal (Simplify.simplify (if_ (bool_ true) (int_ 1) (int_ 2))) (int_ 1));
  check tbool "proj of tuple" true
    (alpha_equal (Simplify.simplify (Proj (Tuple [ int_ 1; int_ 2 ], 1))) (int_ 2))

let test_dead_let () =
  let s = Sym.fresh ~name:"dead" Types.Float in
  let e = Let (s, fsum ~size:(int_ 100) (fun i -> i2f i), int_ 7) in
  check tbool "dead loop removed" true (alpha_equal (Simplify.simplify e) (int_ 7))

let test_len_of_collect () =
  let e = Len (collect ~size:(int_ 9) (fun i -> i)) in
  check tbool "len of unconditional collect" true
    (alpha_equal (Simplify.simplify e) (int_ 9));
  (* conditional collect length is dynamic and must not fold *)
  let f = Len (collect ~cond:(fun i -> i >! int_ 4) ~size:(int_ 9) (fun i -> i)) in
  check tbool "len of filter not folded" true (n_loops (Simplify.simplify f) = 1)

(* ---------------- cse ---------------- *)

let test_cse_let_reuse () =
  let expensive e = (e +. float_ 1.0) *. (e +. float_ 2.0) in
  let s = Sym.fresh ~name:"s" Types.Float in
  let x = Input ("x0", Types.Float, Local) in
  let e = Let (s, expensive x, Var s +. expensive x) in
  let e' = Cse.run e in
  (* the duplicate computation collapses onto the let *)
  check tbool "duplicate eliminated" true (node_count e' < node_count e);
  check value "semantics kept" (Interp.run ~inputs:[ ("x0", Value.Vfloat 3.0) ] e)
    (Interp.run ~inputs:[ ("x0", Value.Vfloat 3.0) ] e')

let test_cse_introduce () =
  let big e = (e +. float_ 1.0) *. (e +. float_ 1.0) in
  let x = Input ("x0", Types.Float, Local) in
  let s = Sym.fresh ~name:"s" Types.Float in
  (* same subexpression twice with no existing let naming it *)
  let e = Let (s, big x +. big x, Var s) in
  let e' = Cse.run e in
  let inputs = [ ("x0", Value.Vfloat 2.0) ] in
  check value "cse-introduce semantics" (Interp.run ~inputs e) (Interp.run ~inputs e')

(* ---------------- motion ---------------- *)

let test_code_motion () =
  (* hoist the invariant (expensive) scalar out of the loop *)
  let inv = (float_ 3.0 +. float_ 4.0) *. (float_ 5.0 +. float_ 6.0) in
  let e = collect ~size:(int_ 8) (fun i -> i2f i *. inv) in
  let trace = Rewrite.new_trace () in
  let e' = Motion.run ~trace e in
  check tbool "motion fired" true (Rewrite.fired trace "code-motion");
  (match e' with
  | Let (_, _, Loop _) -> ()
  | _ -> Alcotest.fail "expected hoisted let above loop");
  check value "motion semantics" (Interp.run e) (Interp.run e')

let test_motion_refuses_partial () =
  (* a division must not be speculated out of the loop *)
  let d = Input ("d", Types.Int, Local) in
  let e = collect ~size:(int_ 4) (fun i -> i +! (int_ 100 /! d) +! (int_ 100 /! d)) in
  let trace = Rewrite.new_trace () in
  ignore (Motion.run ~trace e);
  check tbool "no speculation of division" false (Rewrite.fired trace "code-motion")

(* ---------------- fusion ---------------- *)

let test_map_map_fusion () =
  let e =
    with_xs
      (bind ~ty:(Types.Arr Types.Float)
         (map_arr (Var xs_sym) (fun v -> v *. float_ 2.0))
         (fun s -> map_arr s (fun v -> v +. float_ 1.0)))
  in
  let r = Pipeline.optimize e in
  check tbool "pipeline-fusion fired" true (List.mem "pipeline-fusion" r.applied);
  check tint "single traversal" 1 (n_loops r.program);
  check value "map-map semantics" (run_xs e) (run_xs r.program)

let test_map_reduce_fusion () =
  let e =
    with_xs
      (bind ~ty:(Types.Arr Types.Float)
         (map_arr (Var xs_sym) (fun v -> exp_ v))
         (fun s -> fsum ~size:(len s) (fun i -> read s i)))
  in
  let r = Pipeline.optimize e in
  check tint "fused to one reduce" 1 (n_loops r.program);
  check value_approx "map-reduce semantics" (run_xs e) (run_xs r.program)

let test_filter_groupby_fusion () =
  let e =
    with_xs
      (bind ~ty:(Types.Arr Types.Float)
         (filter (Var xs_sym) (fun v -> v >=! float_ 2.5))
         (fun s ->
           bucket_reduce ~size:(len s) ~ty:Types.Float
             ~key:(fun i -> f2i (read s i) %! int_ 2)
             ~init:(float_ 0.0)
             (fun i -> read s i)
             (fun a b -> a +. b)))
  in
  let r = Pipeline.optimize e in
  check tint "filter fused into bucket reduce" 1 (n_loops r.program);
  check value "filter-groupBy semantics" (run_xs e) (run_xs r.program)

let test_horizontal_fusion () =
  let e =
    with_xs
      (bind ~ty:Types.Float
         (fsum ~size:(len (Var xs_sym)) (fun i -> read (Var xs_sym) i))
         (fun s1 ->
           bind ~ty:Types.Float
             (fsum ~size:(len (Var xs_sym)) (fun i ->
                  read (Var xs_sym) i *. read (Var xs_sym) i))
             (fun s2 -> Tuple [ s1; s2 ])))
  in
  let r = Pipeline.optimize e in
  check tbool "horizontal-fusion fired" true (List.mem "horizontal-fusion" r.applied);
  check tint "one multiloop" 1 (n_loops r.program);
  (match List.nth_opt (loops_of r.program) 0 with
  | Some l -> check tint "two generators" 2 (List.length l.gens)
  | None -> Alcotest.fail "no loop");
  check value_approx "horizontal semantics" (run_xs e) (run_xs r.program)

let test_dead_generator () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let l =
    Loop
      { size = int_ 6;
        idx;
        gens =
          [ Collect { cond = None; value = Var idx };
            Collect { cond = None; value = Var idx *! int_ 10 };
          ];
      }
  in
  let s = Sym.fresh ~name:"p" (Types.Tup [ Types.Arr Types.Int; Types.Arr Types.Int ]) in
  let e = Let (s, l, Read (Proj (Var s, 1), int_ 2)) in
  let r = Pipeline.optimize e in
  let remaining = loops_of r.program in
  check tbool "dead generator dropped" true
    (List.for_all (fun l -> List.length l.gens = 1) remaining);
  check value "dead-gen semantics" (Interp.run e) (Interp.run r.program)

(* ---------------- nested rules: GroupBy-Reduce ---------------- *)

let groupby_reduce_fixture () =
  (* lineItems.groupBy(status).map(g => g.sum) over int keys *)
  with_xs
    (bind ~ty:(Types.Map (Types.Int, Types.Arr Types.Float))
       (bucket_collect ~size:(len (Var xs_sym))
          ~key:(fun i -> f2i (read (Var xs_sym) i) %! int_ 3)
          (fun i -> read (Var xs_sym) i))
       (fun a ->
         collect ~size:(len a) (fun j ->
             fsum ~size:(len (read a j)) (fun l -> read (read a j) l))))

let test_groupby_reduce () =
  let e = groupby_reduce_fixture () in
  let trace = Rewrite.new_trace () in
  let e' = Rewrite.fixpoint [ Rules_nested.groupby_reduce ] trace e in
  check tbool "groupby-reduce fired" true (Rewrite.fired trace "groupby-reduce");
  check tbool "no bucket-collect remains" true
    (not
       (exists
          (function
            | Loop { gens; _ } ->
                List.exists (function BucketCollect _ -> true | _ -> false) gens
            | _ -> false)
          e'));
  check value "groupby-reduce semantics" (run_xs e) (run_xs e');
  (* the full pipeline then removes the identity collect *)
  let r = Pipeline.optimize_with ~extra_rules:[ Rules_nested.groupby_reduce ] e in
  check value "pipeline + rule semantics" (run_xs e) (run_xs r.program)

let test_groupby_reduce_with_context () =
  (* averaging keeps the division in the untransformed context *)
  let e =
    with_xs
      (bind ~ty:(Types.Map (Types.Int, Types.Arr Types.Float))
         (bucket_collect ~size:(len (Var xs_sym))
            ~key:(fun i -> f2i (read (Var xs_sym) i) %! int_ 2)
            (fun i -> read (Var xs_sym) i))
         (fun a ->
           collect ~size:(len a) (fun j ->
               fsum ~size:(len (read a j)) (fun l -> read (read a j) l)
               /. i2f (len (read a j)))))
  in
  (* len(bucket) becomes a count generator (the paper's "as.count") and the
     division stays in the untransformed context *)
  let trace = Rewrite.new_trace () in
  let e' = Rewrite.fixpoint [ Rules_nested.groupby_reduce ] trace e in
  check tbool "rule fires with count in context" true
    (Rewrite.fired trace "groupby-reduce");
  check value "context semantics preserved" (run_xs e) (run_xs e')

let test_groupby_reduce_multi_aggregate () =
  (* several aggregates per group, Q1-style: one traversal with one
     generator per aggregate must result *)
  let e =
    with_xs
      (bind ~ty:(Types.Map (Types.Int, Types.Arr Types.Float))
         (bucket_collect ~size:(len (Var xs_sym))
            ~key:(fun i -> f2i (read (Var xs_sym) i) %! int_ 2)
            (fun i -> read (Var xs_sym) i))
         (fun a ->
           collect ~size:(len a) (fun j ->
               Tuple
                 [ fsum ~size:(len (read a j)) (fun l -> read (read a j) l);
                   fsum ~size:(len (read a j)) (fun l ->
                       read (read a j) l *. read (read a j) l);
                   i2f (len (read a j));
                 ])))
  in
  let trace = Rewrite.new_trace () in
  let e' = Rewrite.fixpoint [ Rules_nested.groupby_reduce ] trace e in
  check tbool "multi-aggregate fires" true (Rewrite.fired trace "groupby-reduce");
  check value "multi-aggregate semantics" (run_xs e) (run_xs e');
  (* a single multiloop with three bucket-reduce generators *)
  check tbool "three generators in one traversal" true
    (exists
       (function
         | Loop { gens; _ } ->
             List.length gens = 3
             && List.for_all (function BucketReduce _ -> true | _ -> false) gens
         | _ -> false)
       e')

(* ---------------- nested rules: Conditional Reduce ---------------- *)

let conditional_reduce_fixture ~k =
  (* for each cluster i: sum of data(j) where assigned(j) == i *)
  let asg = Sym.fresh ~name:"assigned" (Types.Arr Types.Int) in
  Let
    ( asg,
      Input ("assigned", Types.Arr Types.Int, Local),
      with_xs
        (collect ~size:(int_ k) (fun i ->
             fsum
               ~cond:(fun j -> read (Var asg) j =! i)
               ~size:(len (Var xs_sym))
               (fun j -> read (Var xs_sym) j))) )

let test_conditional_reduce () =
  let e = conditional_reduce_fixture ~k:3 in
  let trace = Rewrite.new_trace () in
  let e' = Rewrite.fixpoint [ Rules_nested.conditional_reduce ] trace e in
  check tbool "conditional-reduce fired" true (Rewrite.fired trace "conditional-reduce");
  let inputs =
    [ ("xs", xs_val); ("assigned", Value.of_int_array [| 0; 1; 0; 2; 1; 0 |]) ]
  in
  check value "conditional-reduce semantics" (Interp.run ~inputs e)
    (Interp.run ~inputs e');
  (* a bucket reduce over the data must now exist *)
  check tbool "bucket reduce introduced" true
    (exists
       (function
         | Loop { gens; _ } ->
             List.exists (function BucketReduce _ -> true | _ -> false) gens
         | _ -> false)
       e')

let test_conditional_reduce_empty_bucket () =
  (* cluster 3 receives no points: the MapRead default must kick in *)
  let e = conditional_reduce_fixture ~k:4 in
  let e' = Rewrite.fixpoint [ Rules_nested.conditional_reduce ] (Rewrite.new_trace ()) e in
  let inputs =
    [ ("xs", xs_val); ("assigned", Value.of_int_array [| 0; 1; 0; 2; 1; 0 |]) ]
  in
  check value "empty bucket defaults to init" (Interp.run ~inputs e)
    (Interp.run ~inputs e')

(* ---------------- nested rules: Column-to-Row / Row-to-Column -------- *)

let logreg_fixture ~rows ~cols =
  (* newTheta(j) = theta(j) + sum_i x(i*cols + j) : the imperfectly nested
     loop of the paper's logistic regression example (§3.2), with the
     gradient's data-dependent factor simplified away *)
  let x = Sym.fresh ~name:"x" (Types.Arr Types.Float) in
  let th = Sym.fresh ~name:"theta" (Types.Arr Types.Float) in
  Let
    ( x,
      Input ("x", Types.Arr Types.Float, Local),
      Let
        ( th,
          Input ("theta", Types.Arr Types.Float, Local),
          collect ~size:(int_ cols) (fun j ->
              read (Var th) j
              +. fsum ~size:(int_ rows) (fun i ->
                     read (Var x) ((i *! int_ cols) +! j))) ) )

let logreg_inputs ~rows ~cols =
  [ ("x", Value.of_float_array (Array.init (rows * cols) (fun i -> float_of_int i)));
    ("theta", Value.of_float_array (Array.init cols (fun j -> float_of_int (100 * j))));
  ]

let test_column_to_row () =
  let e = logreg_fixture ~rows:4 ~cols:3 in
  let trace = Rewrite.new_trace () in
  let e' = Rewrite.fixpoint [ Rules_nested.column_to_row ] trace e in
  check tbool "column-to-row fired" true (Rewrite.fired trace "column-to-row");
  let inputs = logreg_inputs ~rows:4 ~cols:3 in
  check value_approx "column-to-row semantics" (Interp.run ~inputs e)
    (Interp.run ~inputs e');
  (* the transformed program reduces vectors: its Reduce value is an Arr *)
  check tbool "vector reduce introduced" true
    (exists
       (function
         | Loop { gens = [ Reduce { value = Loop _; _ } ]; _ } -> true
         | _ -> false)
       e')

let test_row_to_column_roundtrip () =
  let e = logreg_fixture ~rows:4 ~cols:3 in
  let c2r = Rewrite.fixpoint [ Rules_nested.column_to_row ] (Rewrite.new_trace ()) e in
  let trace = Rewrite.new_trace () in
  let back = Rewrite.fixpoint [ Rules_nested.row_to_column ] trace c2r in
  check tbool "row-to-column fired" true (Rewrite.fired trace "row-to-column");
  let inputs = logreg_inputs ~rows:4 ~cols:3 in
  check value_approx "roundtrip semantics" (Interp.run ~inputs e)
    (Interp.run ~inputs back);
  (* after the roundtrip no vector-valued reduce remains *)
  check tbool "scalar reduces restored" true
    (not
       (exists
          (function
            | Loop { gens = [ Reduce { value = Loop _; _ } ]; _ } -> true
            | _ -> false)
          back))

(* ---------------- soa ---------------- *)

let pt_ty = Types.Struct ("pt", [ ("px", Types.Float); ("py", Types.Float) ])

let test_struct_unwrap () =
  let s = Sym.fresh ~name:"p" pt_ty in
  let e =
    Let
      ( s,
        Record (pt_ty, [ ("px", float_ 1.0 +. float_ 2.0); ("py", float_ 4.0) ]),
        Field (Var s, "px") *. Field (Var s, "py") )
  in
  let trace = Rewrite.new_trace () in
  let e' = Rewrite.fixpoint Soa.rules trace e in
  check tbool "struct-unwrap fired" true (Rewrite.fired trace "struct-unwrap");
  check value "unwrap semantics" (Interp.run e) (Interp.run (Simplify.simplify e'))

let test_collect_soa_and_dfe () =
  let e =
    with_xs
      (bind ~ty:(Types.Arr pt_ty)
         (collect ~size:(len (Var xs_sym)) (fun i ->
              Record
                ( pt_ty,
                  [ ("px", read (Var xs_sym) i *. float_ 2.0);
                    ("py", read (Var xs_sym) i *. float_ 3.0);
                  ] )))
         (fun pts ->
           (* reversed (non-positional) reads defeat pipeline fusion, so the
              array of structs must be materialized — as columns *)
           fsum ~size:(len pts) (fun i ->
               Field (read pts (len pts -! int_ 1 -! i), "px"))))
  in
  let r = Pipeline.optimize e in
  check tbool "aos-to-soa fired" true (List.mem "aos-to-soa" r.applied);
  (* the py column is dead: nothing in the residual program computes *3.0 *)
  check tbool "dead field eliminated" true
    (not
       (exists
          (function
            | Prim (Prim.Fmul, [ _; Const (Cfloat 3.0) ]) -> true
            | _ -> false)
          r.program));
  check value_approx "soa semantics" (run_xs e) (run_xs r.program)

let test_input_soa () =
  let item_ty =
    Types.Struct ("item", [ ("qty", Types.Float); ("price", Types.Float); ("tag", Types.Int) ])
  in
  let items = Input ("items", Types.Arr item_ty, Partitioned) in
  let e = fsum ~size:(Len items) (fun i -> Field (Read (items, i), "qty")) in
  let e', report = Soa.soa_inputs e in
  check tbool "items transformed" true (List.mem_assoc "items" report);
  check tbool "only qty needed" true (List.assoc "items" report = [ "qty" ]);
  let cols = Soa.columns_needed e' in
  check tbool "columnar input introduced" true (List.mem_assoc "items.qty" cols);
  let inputs = [ ("items.qty", Value.of_float_array [| 1.5; 2.5; 3.0 |]) ] in
  check value "columnar semantics" (Value.Vfloat 7.0) (Interp.run ~inputs e')

(* ---------------- whole-pipeline properties ---------------- *)

let preserves name opt =
  QCheck.Test.make ~count:120 ~name Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          let e' = opt e in
          (match Typecheck.check_closed e' with
          | Error err ->
              QCheck.Test.fail_reportf "optimized program ill-typed: %s"
                (Fmt.str "%a" Typecheck.pp_error err)
          | Ok _ -> ());
          let got = Interp.run e' in
          if Value.approx_equal ~eps:1e-6 expected got then true
          else
            QCheck.Test.fail_reportf "semantics changed:@.%s@.->@.%s@.%s vs %s"
              (Pp.to_string e) (Pp.to_string e') (Value.to_string expected)
              (Value.to_string got))

let prop_simplify = preserves "simplify preserves semantics" (fun e -> Simplify.simplify e)
let prop_cse = preserves "cse preserves semantics" (fun e -> Cse.run e)
let prop_motion = preserves "motion preserves semantics" (fun e -> Motion.run e)
let prop_fusion = preserves "fusion preserves semantics" (fun e -> Fusion.run e)

let prop_pipeline =
  preserves "full pipeline preserves semantics" (fun e ->
      (Pipeline.optimize e).program)

let prop_pipeline_nested =
  preserves "pipeline + nested rules preserves semantics" (fun e ->
      (Pipeline.optimize_with ~extra_rules:Rules_nested.cpu_rules e).program)

let prop_bucket_pipeline =
  QCheck.Test.make ~count:120 ~name:"pipeline preserves bucket programs"
    Dmll_testgen.Gen_ir.arbitrary_bucket_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          let r = Pipeline.optimize_with ~extra_rules:Rules_nested.cpu_rules e in
          Value.approx_equal ~eps:1e-6 expected (Interp.run r.program))

let prop_pipeline_no_growth =
  QCheck.Test.make ~count:80 ~name:"pipeline does not blow up program size"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      let r = Pipeline.optimize e in
      node_count r.program <= (4 * node_count e) + 64)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "opt"
    [ ( "simplify",
        [ Alcotest.test_case "constant folding" `Quick test_constant_fold;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "if/proj folding" `Quick test_if_and_proj_fold;
          Alcotest.test_case "dead let" `Quick test_dead_let;
          Alcotest.test_case "len of collect" `Quick test_len_of_collect;
        ] );
      ( "cse",
        [ Alcotest.test_case "let reuse" `Quick test_cse_let_reuse;
          Alcotest.test_case "introduction" `Quick test_cse_introduce;
        ] );
      ( "motion",
        [ Alcotest.test_case "hoists invariants" `Quick test_code_motion;
          Alcotest.test_case "refuses partial ops" `Quick test_motion_refuses_partial;
        ] );
      ( "fusion",
        [ Alcotest.test_case "map-map" `Quick test_map_map_fusion;
          Alcotest.test_case "map-reduce" `Quick test_map_reduce_fusion;
          Alcotest.test_case "filter-groupBy" `Quick test_filter_groupby_fusion;
          Alcotest.test_case "horizontal" `Quick test_horizontal_fusion;
          Alcotest.test_case "dead generator" `Quick test_dead_generator;
        ] );
      ( "nested-rules",
        [ Alcotest.test_case "groupby-reduce" `Quick test_groupby_reduce;
          Alcotest.test_case "groupby-reduce context" `Quick test_groupby_reduce_with_context;
          Alcotest.test_case "groupby-reduce multi-aggregate" `Quick test_groupby_reduce_multi_aggregate;
          Alcotest.test_case "conditional-reduce" `Quick test_conditional_reduce;
          Alcotest.test_case "empty bucket default" `Quick test_conditional_reduce_empty_bucket;
          Alcotest.test_case "column-to-row" `Quick test_column_to_row;
          Alcotest.test_case "row-to-column roundtrip" `Quick test_row_to_column_roundtrip;
        ] );
      ( "soa",
        [ Alcotest.test_case "struct unwrap" `Quick test_struct_unwrap;
          Alcotest.test_case "collect soa + dfe" `Quick test_collect_soa_and_dfe;
          Alcotest.test_case "input soa" `Quick test_input_soa;
        ] );
      ( "properties",
        [ qt prop_simplify; qt prop_cse; qt prop_motion; qt prop_fusion;
          qt prop_pipeline; qt prop_pipeline_nested; qt prop_bucket_pipeline;
          qt prop_pipeline_no_growth;
        ] );
    ]

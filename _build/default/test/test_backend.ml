(* Tests of the backend: the closure compiler must agree with the
   reference interpreter on every program; GPU kernel extraction must
   classify reductions and access patterns per the paper's rules; the
   textual code generators must carry the IR's structure. *)

open Dmll_ir
open Dmll_interp
open Dmll_backend
open Exp
open Builder

let check = Alcotest.check
let tbool = Alcotest.bool

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- closure compiler ---------------- *)

let agree ?(inputs = []) e =
  let expected = Interp.run ~inputs e in
  let got = Closure.run ~inputs e in
  check value "closure backend agrees with interpreter" expected got

let test_closure_scalars () =
  agree (int_ 2 +! (int_ 3 *! int_ 4));
  agree (float_ 1.5 *. (float_ 2.0 +. float_ 0.5));
  agree (if_ (int_ 3 <! int_ 4) (str_ "y") (str_ "n"));
  agree (bind ~ty:Types.Float (float_ 3.0) (fun v -> v *. v));
  agree (Prim (Prim.Strcat, [ str_ "a"; str_ "b" ]))

let test_closure_collect () =
  agree (collect ~size:(int_ 10) (fun i -> i2f i *. float_ 2.0));
  agree (collect ~size:(int_ 10) (fun i -> i *! i));
  agree (collect ~cond:(fun i -> i %! int_ 3 =! int_ 0) ~size:(int_ 10) (fun i -> i));
  agree (collect ~size:(int_ 0) (fun i -> i))

let test_closure_reduce () =
  agree (fsum ~size:(int_ 100) (fun i -> i2f i));
  agree (isum ~cond:(fun i -> i >! int_ 50) ~size:(int_ 100) (fun i -> i));
  (* non-direct reduction function *)
  agree
    (reduce ~size:(int_ 10) ~ty:Types.Float ~init:(float_ 1.0)
       (fun i -> i2f i +. float_ 1.0)
       (fun a b -> (a *. b) /. (a +. b)));
  (* argmin via tuple-typed reduce *)
  let arr = Input ("a", Types.Arr Types.Float, Local) in
  let inputs = [ ("a", Value.of_float_array [| 5.0; 1.0; 3.0 |]) ] in
  agree ~inputs (min_index ~size:(Len arr) (fun i -> Read (arr, i)))

let test_closure_buckets () =
  agree
    (bucket_reduce ~size:(int_ 20) ~ty:Types.Float
       ~key:(fun i -> i %! int_ 4)
       ~init:(float_ 0.0)
       (fun i -> i2f i)
       (fun a b -> a +. b));
  agree
    (bucket_reduce ~size:(int_ 20) ~ty:Types.Int
       ~key:(fun i -> i %! int_ 3)
       ~init:(int_ 0)
       (fun _ -> int_ 1)
       (fun a b -> a +! b));
  agree (bucket_collect ~size:(int_ 12) ~key:(fun i -> i %! int_ 5) (fun i -> i2f i));
  (* vector-valued bucket reduce, as in k-means sums *)
  agree
    (bucket_reduce ~size:(int_ 9) ~ty:(Types.Arr Types.Float)
       ~key:(fun i -> i %! int_ 3)
       ~init:(zero_vec (int_ 4))
       (fun i -> collect ~size:(int_ 4) (fun j -> i2f (i +! j)))
       (fun a b -> vec_fadd a b))

let test_closure_nested () =
  agree
    (collect ~size:(int_ 5) (fun i ->
         fsum ~size:(int_ 8) (fun j -> i2f (i *! j))));
  agree
    (bind ~ty:(Types.Map (Types.Int, Types.Float))
       (bucket_reduce ~size:(int_ 10) ~ty:Types.Float
          ~key:(fun i -> i %! int_ 2)
          ~init:(float_ 0.0)
          (fun i -> i2f i)
          (fun a b -> a +. b))
       (fun m -> MapRead (m, int_ 1, Some (float_ (-1.0))) +. Read (m, int_ 0)))

let test_closure_multi_gen () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh Types.Float and b = Sym.fresh Types.Float in
  agree
    (Loop
       { size = int_ 7;
         idx;
         gens =
           [ Collect { cond = None; value = Var idx *! int_ 3 };
             Reduce
               { cond = None; value = i2f (Var idx); a; b;
                 rfun = Var a +. Var b; init = float_ 0.0 };
           ];
       })

let test_closure_inputs_structs () =
  let item = Types.Struct ("it", [ ("q", Types.Float); ("t", Types.Int) ]) in
  let items = Input ("items", Types.Arr item, Local) in
  let mk q t = Value.Vstruct [| ("q", Value.Vfloat q); ("t", Value.Vint t) |] in
  let inputs = [ ("items", Value.Varr (Value.Ga [| mk 1.5 0; mk 2.5 1; mk 4.0 0 |])) ] in
  agree ~inputs
    (fsum
       ~cond:(fun i -> Field (Read (items, i), "t") =! int_ 0)
       ~size:(Len items)
       (fun i -> Field (Read (items, i), "q")));
  (* missing input must raise *)
  (match Closure.run (Len items) with
  | exception Closure.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected missing-input failure")

let test_closure_reuse () =
  (* one compilation, several runs with different inputs *)
  let arr = Input ("a", Types.Arr Types.Float, Local) in
  let c = Closure.compile (fsum ~size:(Len arr) (fun i -> Read (arr, i))) in
  let run xs = c.Closure.run ~inputs:[ ("a", Value.of_float_array xs) ] () in
  check value "first run" (Value.Vfloat 6.0) (run [| 1.0; 2.0; 3.0 |]);
  check value "second run" (Value.Vfloat 1.0) (run [| 1.0 |]);
  check value "third run (empty)" (Value.Vfloat 0.0) (run [||])

(* closure backend agrees with the interpreter on random programs *)
let prop_closure_agrees =
  QCheck.Test.make ~count:200 ~name:"closure backend = interpreter"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected -> Value.equal expected (Closure.run e))

let prop_closure_agrees_buckets =
  QCheck.Test.make ~count:200 ~name:"closure backend = interpreter (buckets)"
    Dmll_testgen.Gen_ir.arbitrary_bucket_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected -> Value.equal expected (Closure.run e))

(* the GPU lowering preserves semantics on random programs *)
let prop_gpu_lower_preserves =
  QCheck.Test.make ~count:100 ~name:"Gpu.lower preserves semantics"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          let lowered, _ = Gpu.lower e in
          Value.approx_equal ~eps:1e-6 expected (Interp.run lowered))

(* and on optimized programs *)
let prop_closure_agrees_optimized =
  QCheck.Test.make ~count:150 ~name:"closure backend = interpreter (optimized)"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          let opt = (Dmll_opt.Pipeline.optimize e).Dmll_opt.Pipeline.program in
          Value.approx_equal ~eps:1e-6 expected (Closure.run opt))

(* ---------------- GPU kernels ---------------- *)

let xs = Input ("xs", Types.Arr Types.Float, Partitioned)

let test_gpu_scalar_reduce () =
  let e = fsum ~size:(Len xs) (fun i -> Read (xs, i)) in
  match Gpu.kernels_of e with
  | [ k ] ->
      check tbool "scalar reduce" true (k.Gpu.reduce = Gpu.Scalar_reduce);
      check tbool "coalesced" true (k.Gpu.access = Gpu.Coalesced)
  | ks -> Alcotest.failf "expected 1 kernel, got %d" (List.length ks)

let test_gpu_vector_reduce () =
  (* vector-valued reduction: k-means/logreg as written *)
  let cols = int_ 8 in
  let e =
    reduce ~size:(int_ 100) ~ty:(Types.Arr Types.Float) ~init:(zero_vec cols)
      (fun i -> collect ~size:cols (fun j -> Read (xs, (i *! cols) +! j)))
      (fun a b -> vec_fadd a b)
  in
  (match Gpu.kernels_of e with
  | [ k ] ->
      check tbool "vector reduce flagged" true (k.Gpu.reduce = Gpu.Vector_reduce);
      check tbool "row sweep is strided" true (k.Gpu.access = Gpu.Strided)
  | ks -> Alcotest.failf "expected 1 kernel, got %d" (List.length ks));
  (* transposing the input makes the sweep coalesced *)
  match Gpu.kernels_of ~transposed:true e with
  | [ k ] -> check tbool "transposed is coalesced" true (k.Gpu.access = Gpu.Coalesced)
  | _ -> Alcotest.fail "expected 1 kernel"

let test_gpu_lowering_fixes_vector_reduce () =
  (* Row-to-Column turns the vector reduce into scalar reduces *)
  let cols = int_ 8 in
  let e =
    reduce ~size:(int_ 100) ~ty:(Types.Arr Types.Float) ~init:(zero_vec cols)
      (fun i -> collect ~size:cols (fun j -> Read (xs, (i *! cols) +! j)))
      (fun a b -> vec_fadd a b)
  in
  let lowered, fired = Gpu.lower e in
  check tbool "row-to-column fired" true fired;
  check tbool "no vector reduce remains" true
    (List.for_all
       (fun k -> k.Gpu.reduce <> Gpu.Vector_reduce)
       (Gpu.kernels_of lowered));
  (* semantics preserved *)
  let inputs = [ ("xs", Value.of_float_array (Array.init 800 float_of_int)) ] in
  check tbool "lowering preserves semantics" true
    (Value.approx_equal ~eps:1e-6 (Interp.run ~inputs e) (Interp.run ~inputs lowered))

let test_gpu_gather () =
  let perm = Input ("perm", Types.Arr Types.Int, Local) in
  let e = collect ~size:(Len xs) (fun i -> Read (xs, Read (perm, i))) in
  match Gpu.kernels_of e with
  | [ k ] -> check tbool "gather access" true (k.Gpu.access = Gpu.Gather)
  | _ -> Alcotest.fail "expected 1 kernel"

(* ---------------- textual codegens ---------------- *)

let sample_program =
  bind ~ty:(Types.Arr Types.Float)
    (map_arr xs (fun v -> exp_ v))
    (fun m ->
      bucket_reduce ~size:(len m) ~ty:Types.Float
        ~key:(fun i -> f2i (read m i) %! int_ 4)
        ~init:(float_ 0.0)
        (fun i -> read m i)
        (fun a b -> a +. b))

let test_codegen_c () =
  let src = Codegen_c.emit sample_program in
  List.iter
    (fun needle ->
      check tbool (Printf.sprintf "C++ contains %S" needle) true (contains src needle))
    [ "#include"; "std::vector<double>"; "for (int64_t"; "bucket_map";
      "dmll_program"; "std::exp"; "inputs.xs" ]

let test_codegen_cuda () =
  let e = fsum ~size:(Len xs) (fun i -> Read (xs, i) *. Read (xs, i)) in
  let src = Codegen_cuda.emit e in
  List.iter
    (fun needle ->
      check tbool (Printf.sprintf "CUDA contains %S" needle) true (contains src needle))
    [ "__global__"; "__shared__"; "blockIdx.x"; "__syncthreads"; "<<<blocks, 256>>>" ];
  (* a vector reduce draws the shared-memory warning *)
  let cols = int_ 4 in
  let v =
    reduce ~size:(int_ 10) ~ty:(Types.Arr Types.Float) ~init:(zero_vec cols)
      (fun i -> collect ~size:cols (fun j -> Read (xs, (i *! cols) +! j)))
      (fun a b -> vec_fadd a b)
  in
  check tbool "vector reduce warned" true
    (contains (Codegen_cuda.emit v) "do not fit in")

let test_codegen_scala () =
  let src = Codegen_scala.emit sample_program in
  List.iter
    (fun needle ->
      check tbool (Printf.sprintf "Scala contains %S" needle) true (contains src needle))
    [ "object DmllProgram"; "BucketReduce"; "Collect"; "math.exp";
      "inputs.partitioned" ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "backend"
    [ ( "closure",
        [ Alcotest.test_case "scalars" `Quick test_closure_scalars;
          Alcotest.test_case "collect" `Quick test_closure_collect;
          Alcotest.test_case "reduce" `Quick test_closure_reduce;
          Alcotest.test_case "buckets" `Quick test_closure_buckets;
          Alcotest.test_case "nested" `Quick test_closure_nested;
          Alcotest.test_case "multi-generator" `Quick test_closure_multi_gen;
          Alcotest.test_case "inputs/structs" `Quick test_closure_inputs_structs;
          Alcotest.test_case "compile-once run-many" `Quick test_closure_reuse;
        ] );
      ( "gpu",
        [ Alcotest.test_case "scalar reduce" `Quick test_gpu_scalar_reduce;
          Alcotest.test_case "vector reduce" `Quick test_gpu_vector_reduce;
          Alcotest.test_case "lowering" `Quick test_gpu_lowering_fixes_vector_reduce;
          Alcotest.test_case "gather" `Quick test_gpu_gather;
        ] );
      ( "codegen",
        [ Alcotest.test_case "c++" `Quick test_codegen_c;
          Alcotest.test_case "cuda" `Quick test_codegen_cuda;
          Alcotest.test_case "scala" `Quick test_codegen_scala;
        ] );
      ( "properties",
        [ qt prop_closure_agrees; qt prop_closure_agrees_buckets;
          qt prop_closure_agrees_optimized; qt prop_gpu_lower_preserves ] );
    ]

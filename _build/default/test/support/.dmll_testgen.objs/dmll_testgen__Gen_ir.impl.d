test/support/gen_ir.ml: Builder Dmll_ir Exp Float List Pp Prim QCheck Sym Types

(* Tests of the data generators and the PRNG: determinism, distribution
   shape, and structural invariants of the synthetic datasets standing in
   for the paper's inputs (DESIGN.md §2). *)

module Prng = Dmll_util.Prng
module Stats = Dmll_util.Stats

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ---------------- PRNG ---------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check tint "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  check tbool "different seeds differ" true !differs

let test_prng_ranges () =
  let r = Prng.create 7 in
  for _ = 1 to 10_000 do
    let i = Prng.int r 17 in
    if i < 0 || i >= 17 then Alcotest.failf "int out of range: %d" i;
    let f = Prng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_split () =
  let r = Prng.create 9 in
  let s = Prng.split r in
  (* the split stream is independent of further draws from the parent *)
  let s_draws = Array.init 10 (fun _ -> Prng.int s 1000) in
  let r2 = Prng.create 9 in
  let s2 = Prng.split r2 in
  ignore (Prng.int r2 1000);
  let s2_draws = Array.init 10 (fun _ -> Prng.int s2 1000) in
  check tbool "split streams deterministic" true (s_draws = s2_draws)

let test_prng_gaussian () =
  let r = Prng.create 11 in
  let xs = Array.init 20_000 (fun _ -> Prng.gaussian r) in
  check tbool "mean near 0" true (Float.abs (Stats.mean xs) < 0.05);
  check tbool "stddev near 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.05)

(* ---------------- stats helpers ---------------- *)

let test_stats () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check tbool "mean" true (Stats.mean xs = 2.5);
  check tbool "median" true (Stats.median xs = 2.5);
  check tbool "p0 is min" true (Stats.percentile 0.0 xs = 1.0);
  check tbool "p100 is max" true (Stats.percentile 100.0 xs = 4.0);
  check tbool "geomean" true (Float.abs (Stats.geomean [| 2.0; 8.0 |] -. 4.0) < 1e-9);
  let h = Stats.histogram ~bins:2 ~lo:0.0 ~hi:4.0 [| 0.5; 1.0; 3.0; 3.9 |] in
  check tbool "histogram" true (h = [| 2; 2 |])

(* ---------------- TPC-H ---------------- *)

let test_tpch () =
  let t = Dmll_data.Tpch.generate ~rows:5000 () in
  check tint "row count" 5000 t.Dmll_data.Tpch.n;
  (* determinism *)
  let t2 = Dmll_data.Tpch.generate ~rows:5000 () in
  check tbool "deterministic" true (t.Dmll_data.Tpch.quantity = t2.Dmll_data.Tpch.quantity);
  (* Q1 selectivity is ~96-98% like the reference query *)
  let selected =
    Array.fold_left
      (fun acc d -> if d <= Dmll_data.Tpch.q1_cutoff then acc + 1 else acc)
      0 t.Dmll_data.Tpch.shipdate
  in
  let sel = float_of_int selected /. 5000.0 in
  check tbool "selectivity ~0.96" true (sel > 0.90 && sel < 0.99);
  (* A/R rows are always linestatus 'F' (old orders) *)
  Array.iteri
    (fun i rf ->
      if rf <> 1 then check tint "A/R implies F" 0 t.Dmll_data.Tpch.linestatus.(i))
    t.Dmll_data.Tpch.returnflag;
  (* exactly the 4 populated groups of the reference output:
     A/F, R/F, N/F, N/O *)
  let groups = Hashtbl.create 8 in
  for i = 0 to t.Dmll_data.Tpch.n - 1 do
    Hashtbl.replace groups (t.Dmll_data.Tpch.returnflag.(i), t.Dmll_data.Tpch.linestatus.(i)) ()
  done;
  check tint "four groups" 4 (Hashtbl.length groups)

(* ---------------- genes ---------------- *)

let test_genes () =
  let r = Dmll_data.Genes.generate ~reads:10_000 ~barcodes:100 () in
  Array.iter
    (fun b -> if b < 0 || b >= 100 then Alcotest.failf "barcode out of range: %d" b)
    r.Dmll_data.Genes.barcode;
  (* skew: the busiest decile of barcodes holds well over its share *)
  let counts = Array.make 100 0 in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) r.Dmll_data.Genes.barcode;
  let top =
    Array.fold_left ( + ) 0 (Array.sub (Array.copy counts) 0 10)
  in
  check tbool "skewed to early barcodes" true (top > 10_000 * 2 / 10);
  (* some reads fail the quality filter, most pass *)
  let pass =
    Array.fold_left
      (fun acc q -> if q >= Dmll_data.Genes.min_quality then acc + 1 else acc)
      0 r.Dmll_data.Genes.quality
  in
  check tbool "filter keeps 80-95%" true (pass > 8000 && pass < 9600)

(* ---------------- gaussian ---------------- *)

let test_gaussian_data () =
  let d = Dmll_data.Gaussian.generate ~rows:2000 ~cols:8 ~classes:4 () in
  check tint "flat size" (2000 * 8) (Array.length d.Dmll_data.Gaussian.data);
  Array.iter
    (fun l -> if l < 0 || l >= 4 then Alcotest.failf "label out of range %d" l)
    d.Dmll_data.Gaussian.labels;
  (* rows of the same class cluster: within-class variance ~1 per dim *)
  let labels = d.Dmll_data.Gaussian.labels in
  let cls = ref [] in
  Array.iteri (fun i l -> if l = 0 then cls := i :: !cls) labels;
  let dim0 =
    Array.of_list (List.map (fun i -> d.Dmll_data.Gaussian.data.(i * 8)) !cls)
  in
  check tbool "within-class stddev ~1" true (Stats.stddev dim0 < 1.6);
  let bl = Dmll_data.Gaussian.binary_labels d in
  Array.iteri
    (fun i l ->
      check tbool "binary labels" true (bl.(i) = if l = 0 then 0.0 else 1.0))
    labels

(* ---------------- R-MAT ---------------- *)

let test_rmat () =
  let g = Dmll_data.Rmat.generate ~scale:10 ~edge_factor:8 () in
  check tint "vertex count" 1024 g.Dmll_data.Rmat.nv;
  check tint "edge count" (1024 * 8) (Array.length g.Dmll_data.Rmat.edges);
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= 1024 || v < 0 || v >= 1024 then Alcotest.fail "edge out of range")
    g.Dmll_data.Rmat.edges;
  (* degree skew: the max out-degree far exceeds the average *)
  let deg = Array.make 1024 0 in
  Array.iter (fun (u, _) -> deg.(u) <- deg.(u) + 1) g.Dmll_data.Rmat.edges;
  let dmax = Array.fold_left Stdlib.max 0 deg in
  check tbool "power-law-ish skew" true (dmax > 8 * 6);
  (* symmetrize doubles the edge list *)
  let s = Dmll_data.Rmat.symmetrize g in
  check tint "symmetrized" (2 * Array.length g.Dmll_data.Rmat.edges)
    (Array.length s.Dmll_data.Rmat.edges)

let test_csr () =
  let g = Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:8 ~edge_factor:4 ()) in
  (* offsets are monotone and bound the target array *)
  let nv = g.Dmll_graph.Csr.nv in
  for v = 0 to nv - 1 do
    if g.Dmll_graph.Csr.out_offsets.(v) > g.Dmll_graph.Csr.out_offsets.(v + 1) then
      Alcotest.fail "non-monotone offsets"
  done;
  check tint "offsets end" (Array.length g.Dmll_graph.Csr.out_targets)
    g.Dmll_graph.Csr.out_offsets.(nv);
  (* neighbor lists sorted + deduplicated, no self loops *)
  for v = 0 to nv - 1 do
    let prev = ref (-1) in
    Dmll_graph.Csr.out_neighbors g v (fun w ->
        if w <= !prev then Alcotest.fail "not sorted/deduped";
        if w = v then Alcotest.fail "self loop";
        prev := w)
  done;
  (* every out-edge appears as an in-edge *)
  let in_count = Array.length g.Dmll_graph.Csr.in_sources in
  check tint "in edges = out edges" (Array.length g.Dmll_graph.Csr.out_targets) in_count;
  (* has_out_edge agrees with the lists *)
  Dmll_graph.Csr.out_neighbors g 0 (fun w ->
      check tbool "membership" true (Dmll_graph.Csr.has_out_edge g 0 w));
  check tbool "non-membership" false (Dmll_graph.Csr.has_out_edge g 0 0)

(* ---------------- factor graphs ---------------- *)

let test_factor_graph () =
  let g = Dmll_data.Factor_graph.generate ~vars:500 ~factors:1500 () in
  check tint "factor count" 1500 g.Dmll_data.Factor_graph.nfactors;
  (* adjacency covers every factor endpoint exactly once *)
  check tint "adjacency size" (2 * 1500)
    g.Dmll_data.Factor_graph.adj_offsets.(500);
  let seen = Array.make 1500 0 in
  Array.iter
    (fun f -> seen.(f) <- seen.(f) + 1)
    g.Dmll_data.Factor_graph.adj_factors;
  Array.iter (fun c -> check tint "each factor twice" 2 c) seen;
  (* adjacency is consistent: factor f is adjacent to exactly its vars *)
  for v = 0 to 499 do
    for k = g.Dmll_data.Factor_graph.adj_offsets.(v)
        to g.Dmll_data.Factor_graph.adj_offsets.(v + 1) - 1 do
      let f = g.Dmll_data.Factor_graph.adj_factors.(k) in
      if g.Dmll_data.Factor_graph.var_a.(f) <> v && g.Dmll_data.Factor_graph.var_b.(f) <> v
      then Alcotest.fail "adjacency inconsistent"
    done
  done;
  let st = Dmll_data.Factor_graph.initial_state g in
  Array.iter (fun x -> check tbool "state is 0/1" true (x = 0.0 || x = 1.0)) st

(* ---------------- properties ---------------- *)

let prop_prng_uniform =
  QCheck.Test.make ~count:50 ~name:"Prng.int is roughly uniform"
    QCheck.(int_range 2 64)
    (fun bound ->
      let r = Prng.create 123 in
      let counts = Array.make bound 0 in
      let draws = 2000 * bound in
      for _ = 1 to draws do
        let i = Prng.int r bound in
        counts.(i) <- counts.(i) + 1
      done;
      let expected = float_of_int draws /. float_of_int bound in
      Array.for_all
        (fun c -> Float.abs (float_of_int c -. expected) < 0.25 *. expected)
        counts)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "data"
    [ ( "prng",
        [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "gaussian" `Quick test_prng_gaussian;
          qt prop_prng_uniform;
        ] );
      ("stats", [ Alcotest.test_case "helpers" `Quick test_stats ]);
      ( "generators",
        [ Alcotest.test_case "tpch" `Quick test_tpch;
          Alcotest.test_case "genes" `Quick test_genes;
          Alcotest.test_case "gaussian" `Quick test_gaussian_data;
          Alcotest.test_case "rmat" `Quick test_rmat;
          Alcotest.test_case "csr" `Quick test_csr;
          Alcotest.test_case "factor graph" `Quick test_factor_graph;
        ] );
    ]

(* Unit and property tests for the DMLL IR: types, symbols, expression
   utilities, the type checker, and the pretty printer. *)

open Dmll_ir
open Exp
open Builder

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ---------------- Types ---------------- *)

let test_type_equal () =
  check tbool "arr float = arr float" true Types.(equal (Arr Float) (Arr Float));
  check tbool "arr float <> arr int" false Types.(equal (Arr Float) (Arr Int));
  check tbool "tuple equality" true
    Types.(equal (Tup [ Int; Float ]) (Tup [ Int; Float ]));
  check tbool "struct name matters" false
    Types.(equal (Struct ("a", [ ("x", Int) ])) (Struct ("b", [ ("x", Int) ])));
  check tbool "map equality" true Types.(equal (Map (Int, Float)) (Map (Int, Float)))

let test_type_predicates () =
  check tbool "float is scalar" true (Types.is_scalar Types.Float);
  check tbool "arr is not scalar" false (Types.is_scalar (Types.Arr Types.Float));
  check tbool "int is key" true (Types.is_key_ty Types.Int);
  check tbool "str is key" true (Types.is_key_ty Types.Str);
  check tbool "tuple of ints is key" true
    (Types.is_key_ty (Types.Tup [ Types.Int; Types.Str ]));
  check tbool "arr is not key" false (Types.is_key_ty (Types.Arr Types.Int));
  check tint "float bytes" 8 (Types.byte_size Types.Float);
  check tint "struct bytes" 16
    (Types.byte_size (Types.Struct ("p", [ ("x", Types.Float); ("y", Types.Float) ])))

(* ---------------- Symbols ---------------- *)

let test_sym_fresh () =
  let a = Sym.fresh Types.Int and b = Sym.fresh Types.Int in
  check tbool "distinct ids" false (Sym.equal a b);
  let a' = Sym.refresh a in
  check tbool "refresh distinct" false (Sym.equal a a');
  check tbool "refresh keeps type" true (Types.equal (Sym.ty a) (Sym.ty a'))

(* ---------------- Expression utilities ---------------- *)

let test_free_vars () =
  let x = Sym.fresh ~name:"x" Types.Float in
  let e = Var x +. float_ 1.0 in
  check tbool "x free" true (Sym.Set.mem x (free_vars e));
  let bound = bind ~ty:Types.Float (float_ 2.0) (fun v -> v +. Var x) in
  check tbool "x still free under let" true (Sym.Set.mem x (free_vars bound));
  (* the loop index must not escape *)
  let arr = Sym.fresh ~name:"arr" (Types.Arr Types.Float) in
  let l = map_arr (Var arr) (fun e -> e +. Var x) in
  let fv = free_vars l in
  check tbool "arr free in loop" true (Sym.Set.mem arr fv);
  check tbool "x free in loop" true (Sym.Set.mem x fv);
  check tint "only arr and x free" 2 (Sym.Set.cardinal fv)

let test_reduce_binders_not_free () =
  let arr = Sym.fresh ~name:"arr" (Types.Arr Types.Float) in
  let s = fsum ~size:(len (Var arr)) (fun i -> read (Var arr) i) in
  let fv = free_vars s in
  check tint "only arr free in sum" 1 (Sym.Set.cardinal fv);
  check tbool "arr is the free one" true (Sym.Set.mem arr fv)

let test_subst () =
  let x = Sym.fresh ~name:"x" Types.Int in
  let e = Var x +! int_ 1 in
  let e' = subst1 x (int_ 41) e in
  check tbool "substituted" true (alpha_equal e' (int_ 41 +! int_ 1));
  (* substitution does not cross a binder for the same symbol *)
  let inner = Let (x, int_ 5, Var x) in
  let e2 = subst1 x (int_ 0) inner in
  check tbool "let-bound occurrence preserved" true (alpha_equal e2 inner)

let test_count_occ () =
  let x = Sym.fresh ~name:"x" Types.Float in
  let e = (Var x +. Var x) *. float_ 2.0 in
  check tint "two occurrences" 2 (count_occ x e);
  check tint "zero occurrences" 0 (count_occ (Sym.fresh Types.Float) e)

let test_refresh_binders () =
  let arr = Sym.fresh ~name:"arr" (Types.Arr Types.Float) in
  let l = map_arr (Var arr) (fun e -> e +. float_ 1.0) in
  let l' = refresh_binders l in
  check tbool "alpha-equal after refresh" true (alpha_equal l l');
  (* binders got fresh identities *)
  match (l, l') with
  | Loop { idx = i1; _ }, Loop { idx = i2; _ } ->
      check tbool "fresh loop index" false (Sym.equal i1 i2)
  | _ -> Alcotest.fail "expected loops"

let test_alpha_equal_distinguishes () =
  let a = collect ~size:(int_ 3) (fun i -> i +! int_ 1) in
  let b = collect ~size:(int_ 3) (fun i -> i +! int_ 1) in
  let c = collect ~size:(int_ 3) (fun i -> i +! int_ 2) in
  check tbool "same shape alpha-equal" true (alpha_equal a b);
  check tbool "different body not equal" false (alpha_equal a c)

let test_node_count_and_loops () =
  let e = collect ~size:(int_ 4) (fun i -> i *! i) in
  check tbool "node_count positive" true (node_count e > 3);
  check tint "one loop" 1 (List.length (loops_of e));
  let nested = collect ~size:(int_ 2) (fun _ -> fsum ~size:(int_ 3) (fun _ -> float_ 1.0)) in
  check tint "two loops" 2 (List.length (loops_of nested));
  check tbool "loop_free scalar" true (loop_free (int_ 1 +! int_ 2));
  check tbool "not loop_free" false (loop_free nested)

(* ---------------- Type checker ---------------- *)

let test_typecheck_ok () =
  let e = fsum ~size:(int_ 10) (fun i -> i2f i *. float_ 2.0) in
  check tbool "sum : float" true (Types.equal (Typecheck.ty_of e) Types.Float);
  let c = collect ~size:(int_ 5) (fun i -> i =! int_ 2) in
  check tbool "collect : arr bool" true
    (Types.equal (Typecheck.ty_of c) (Types.Arr Types.Bool));
  let g =
    bucket_reduce ~size:(int_ 10) ~ty:Types.Int
      ~key:(fun i -> i %! int_ 3)
      ~init:(int_ 0)
      (fun _ -> int_ 1)
      (fun a b -> a +! b)
  in
  check tbool "bucket_reduce : map int int" true
    (Types.equal (Typecheck.ty_of g) (Types.Map (Types.Int, Types.Int)))

let expect_type_error e =
  match Typecheck.check_closed e with
  | Error _ -> ()
  | Ok t -> Alcotest.failf "expected type error, got %s" (Types.to_string t)

let test_typecheck_errors () =
  expect_type_error (int_ 1 +. float_ 2.0);
  expect_type_error (If (int_ 1, int_ 2, int_ 3));
  expect_type_error (Var (Sym.fresh Types.Int));
  expect_type_error (Read (int_ 5, int_ 0));
  expect_type_error (Proj (Tuple [ int_ 1 ], 3));
  (* bucket key must be a key type *)
  expect_type_error
    (bucket_reduce ~size:(int_ 4) ~ty:Types.Int
       ~key:(fun _ -> collect ~size:(int_ 1) (fun _ -> int_ 0))
       ~init:(int_ 0)
       (fun _ -> int_ 1)
       (fun a b -> a +! b));
  (* multi-generator loop types as a tuple *)
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh Types.Int and b = Sym.fresh Types.Int in
  let ml =
    Loop
      { size = int_ 3;
        idx;
        gens =
          [ Collect { cond = None; value = Var idx };
            Reduce
              { cond = None; value = Var idx; a; b;
                rfun = Var a +! Var b; init = int_ 0 };
          ];
      }
  in
  check tbool "multiloop : tuple" true
    (Types.equal (Typecheck.ty_of ml) (Types.Tup [ Types.Arr Types.Int; Types.Int ]))

(* ---------------- Pretty printer ---------------- *)

let test_pp_shapes () =
  let e = fsum ~size:(int_ 3) (fun i -> i2f i) in
  let s = Pp.to_string e in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check tbool "mentions Reduce" true (contains s "Reduce");
  let c = filter (collect ~size:(int_ 4) (fun i -> i)) (fun e -> e >! int_ 1) in
  check tbool "filter prints Collect with condition" true
    (contains (Pp.to_string c) "Collect")

(* ---------------- Properties ---------------- *)

let prop_generated_well_typed =
  QCheck.Test.make ~count:200 ~name:"generated programs are well-typed"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Typecheck.check_closed e with
      | Ok _ -> true
      | Error err ->
          QCheck.Test.fail_reportf "ill-typed: %s" (Fmt.str "%a" Typecheck.pp_error err))

let prop_refresh_preserves_alpha =
  QCheck.Test.make ~count:200 ~name:"refresh_binders preserves alpha-equality"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      alpha_equal e (refresh_binders e))

let prop_alpha_equal_reflexive =
  QCheck.Test.make ~count:200 ~name:"alpha_equal is reflexive"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e -> alpha_equal e e)

let prop_node_count_refresh_invariant =
  QCheck.Test.make ~count:200 ~name:"node_count invariant under refresh"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      node_count e = node_count (refresh_binders e))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ir"
    [ ( "types",
        [ Alcotest.test_case "equality" `Quick test_type_equal;
          Alcotest.test_case "predicates" `Quick test_type_predicates;
        ] );
      ("sym", [ Alcotest.test_case "fresh/refresh" `Quick test_sym_fresh ]);
      ( "exp",
        [ Alcotest.test_case "free_vars" `Quick test_free_vars;
          Alcotest.test_case "reduce binders" `Quick test_reduce_binders_not_free;
          Alcotest.test_case "subst" `Quick test_subst;
          Alcotest.test_case "count_occ" `Quick test_count_occ;
          Alcotest.test_case "refresh_binders" `Quick test_refresh_binders;
          Alcotest.test_case "alpha_equal" `Quick test_alpha_equal_distinguishes;
          Alcotest.test_case "node_count/loops" `Quick test_node_count_and_loops;
        ] );
      ( "typecheck",
        [ Alcotest.test_case "well-typed" `Quick test_typecheck_ok;
          Alcotest.test_case "errors" `Quick test_typecheck_errors;
        ] );
      ("pp", [ Alcotest.test_case "shapes" `Quick test_pp_shapes ]);
      ( "properties",
        [ qt prop_generated_well_typed;
          qt prop_refresh_preserves_alpha;
          qt prop_alpha_equal_reflexive;
          qt prop_node_count_refresh_invariant;
        ] );
    ]

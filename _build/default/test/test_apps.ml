(* Integration tests: every application's DMLL program — as written AND
   after the full optimization pipeline (nested rules included) — must
   compute the same result as its hand-optimized reference on shared
   inputs.  Structural assertions verify the paper's Table-2 optimization
   list actually fires per app. *)

open Dmll_ir
open Dmll_interp
open Dmll_apps
module Opt = Dmll_opt
module Backend = Dmll_backend

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let farr_approx : float array Alcotest.testable =
  Alcotest.testable
    (fun fmt a -> Fmt.pf fmt "[|%a|]" Fmt.(array ~sep:(any "; ") float) a)
    (fun a b ->
      Array.length a = Array.length b
      && Array.for_all2
           (fun x y ->
             Float.abs (x -. y)
             <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)))
           a b)

let optimize e =
  (Opt.Pipeline.optimize_with ~extra_rules:Opt.Rules_nested.cpu_rules e)

(* ---------------- k-means ---------------- *)

let km_rows = 60
let km_cols = 6
let km_k = 3

let km_data = Dmll_data.Gaussian.generate ~rows:km_rows ~cols:km_cols ~classes:km_k ()
let km_centroids = Dmll_data.Gaussian.random_centroids ~k:km_k km_data

let test_kmeans_matches_handopt () =
  let prog = Kmeans.program ~rows:km_rows ~cols:km_cols ~k:km_k () in
  let inputs = Kmeans.inputs km_data ~centroids:km_centroids in
  let expected =
    Kmeans.handopt ~data:km_data.Dmll_data.Gaussian.data ~rows:km_rows ~cols:km_cols
      ~k:km_k ~centroids:km_centroids
  in
  let got = Kmeans.result_to_flat (Interp.run ~inputs prog) ~cols:km_cols in
  check farr_approx "unoptimized DMLL = hand-optimized" expected got;
  let r = optimize prog in
  check tbool "conditional-reduce fired on k-means" true
    (List.mem "conditional-reduce" r.Opt.Pipeline.applied);
  check tbool "pipeline fusion fired" true
    (List.mem "pipeline-fusion" r.Opt.Pipeline.applied);
  let got' =
    Kmeans.result_to_flat (Backend.Closure.run ~inputs r.Opt.Pipeline.program)
      ~cols:km_cols
  in
  check farr_approx "optimized DMLL = hand-optimized" expected got'

let test_kmeans_single_traversal_after_opt () =
  let prog = Kmeans.program ~rows:km_rows ~cols:km_cols ~k:km_k () in
  let r = optimize prog in
  (* the big dataset must be traversed once: exactly one outer loop with a
     size depending on the matrix, and it is a bucket-reduce multiloop *)
  let outer = Dmll_analysis.Stencil.outer_loops r.Opt.Pipeline.program in
  let over_matrix =
    List.filter
      (fun (l : Exp.loop) ->
        Exp.exists
          (function Exp.Input ("matrix", _, _) -> true | _ -> false)
          l.Exp.size
        ||
        match l.Exp.size with
        | Exp.Const (Exp.Cint n) -> n = km_rows
        | _ -> false)
      outer
  in
  check tint "one traversal of the dataset" 1 (List.length over_matrix);
  check tbool "it is a bucketReduce multiloop" true
    (List.for_all
       (fun (l : Exp.loop) ->
         List.for_all
           (function Exp.BucketReduce _ -> true | _ -> false)
           l.Exp.gens)
       over_matrix)

let test_kmeans_parallel () =
  let prog = Kmeans.program ~rows:km_rows ~cols:km_cols ~k:km_k () in
  let inputs = Kmeans.inputs km_data ~centroids:km_centroids in
  let r = optimize prog in
  let par = Dmll_runtime.Exec_domains.run ~domains:4 ~inputs r.Opt.Pipeline.program in
  let expected =
    Kmeans.handopt ~data:km_data.Dmll_data.Gaussian.data ~rows:km_rows ~cols:km_cols
      ~k:km_k ~centroids:km_centroids
  in
  check farr_approx "parallel optimized k-means" expected
    (Kmeans.result_to_flat par ~cols:km_cols)

let test_kmeans_formulations_converge () =
  (* Figure 1's two formulations: the shared-memory conditional-reduce
     style and the distributed groupBy style.  Section 3.2: after the
     nested-pattern rules and fusion, both become the same single
     bucketReduce traversal of the dataset and compute the same centroids
     (for clusters that received at least one row). *)
  let shared = Kmeans.program ~rows:km_rows ~cols:km_cols ~k:km_k () in
  let grouped = Kmeans.program_groupby ~rows:km_rows ~cols:km_cols ~k:km_k () in
  let inputs = Kmeans.inputs km_data ~centroids:km_centroids in
  let r1 = optimize shared and r2 = optimize grouped in
  (* both end with one bucketReduce multiloop over the dataset *)
  let dataset_loops prog =
    List.filter
      (fun (l : Exp.loop) ->
        List.exists (function Exp.BucketReduce _ -> true | _ -> false) l.Exp.gens)
      (Dmll_analysis.Stencil.outer_loops prog)
  in
  check tint "shared: one bucket traversal" 1
    (List.length (dataset_loops r1.Opt.Pipeline.program));
  check tint "groupBy: one bucket traversal" 1
    (List.length (dataset_loops r2.Opt.Pipeline.program));
  check tbool "groupby-reduce fired on the groupBy formulation" true
    (List.mem "groupby-reduce" r2.Opt.Pipeline.applied);
  check tbool "conditional-reduce fired on the shared formulation" true
    (List.mem "conditional-reduce" r1.Opt.Pipeline.applied);
  (* identical centroids for populated clusters *)
  let flat1 =
    Kmeans.result_to_flat
      (Backend.Closure.run ~inputs r1.Opt.Pipeline.program)
      ~cols:km_cols
  in
  let flat2 =
    Kmeans.groupby_result_to_flat
      (Backend.Closure.run ~inputs r2.Opt.Pipeline.program)
      ~k:km_k ~cols:km_cols
  in
  (* compare only clusters the groupBy formulation populated (empty
     clusters keep zeros there but inherit sums/0 in the shared one) *)
  for p = 0 to (km_k * km_cols) - 1 do
    if flat2.(p) <> 0.0 then
      check tbool "same centroid coordinate" true
        (Float.abs (flat1.(p) -. flat2.(p)) < 1e-9 *. (1.0 +. Float.abs flat2.(p)))
  done

(* ---------------- logistic regression ---------------- *)

let lr_rows = 50
let lr_cols = 5
let lr_alpha = 0.01

let lr_data = Dmll_data.Gaussian.generate ~rows:lr_rows ~cols:lr_cols ~classes:2 ()
let lr_theta = Array.make lr_cols 0.1

let test_logreg_matches_handopt () =
  let prog = Logreg.program ~rows:lr_rows ~cols:lr_cols ~alpha:lr_alpha () in
  let inputs = Logreg.inputs lr_data ~theta:lr_theta in
  let expected =
    Logreg.handopt ~data:lr_data.Dmll_data.Gaussian.data
      ~labels:(Dmll_data.Gaussian.binary_labels lr_data) ~rows:lr_rows ~cols:lr_cols
      ~alpha:lr_alpha ~theta:lr_theta
  in
  check farr_approx "unoptimized DMLL = hand-optimized" expected
    (Value.to_float_array (Interp.run ~inputs prog));
  let r = optimize prog in
  check tbool "column-to-row fired on logreg" true
    (List.mem "column-to-row" r.Opt.Pipeline.applied);
  check farr_approx "optimized DMLL = hand-optimized" expected
    (Value.to_float_array (Backend.Closure.run ~inputs r.Opt.Pipeline.program))

let test_logreg_gpu_lowering_roundtrip () =
  let prog = Logreg.program ~rows:lr_rows ~cols:lr_cols ~alpha:lr_alpha () in
  let inputs = Logreg.inputs lr_data ~theta:lr_theta in
  let cpu = (optimize prog).Opt.Pipeline.program in
  let gpu, fired = Backend.Gpu.lower cpu in
  check tbool "row-to-column fired for GPU" true fired;
  let expected = Value.to_float_array (Interp.run ~inputs prog) in
  check farr_approx "GPU-lowered program equivalent" expected
    (Value.to_float_array (Backend.Closure.run ~inputs gpu))

(* ---------------- GDA ---------------- *)

let test_gda_matches_handopt () =
  let prog = Gda.program ~rows:lr_rows ~cols:lr_cols () in
  let inputs = Gda.inputs lr_data in
  let expected =
    Gda.handopt ~data:lr_data.Dmll_data.Gaussian.data
      ~labels:(Dmll_data.Gaussian.binary_labels lr_data) ~rows:lr_rows ~cols:lr_cols ()
  in
  let check_result got =
    check farr_approx "mu0" expected.Gda.mu0 got.Gda.mu0;
    check farr_approx "mu1" expected.Gda.mu1 got.Gda.mu1;
    check farr_approx "sigma" expected.Gda.sigma got.Gda.sigma;
    check farr_approx "phi" [| expected.Gda.phi |] [| got.Gda.phi |]
  in
  check_result (Gda.result_of_value (Interp.run ~inputs prog));
  let r = optimize prog in
  check tbool "horizontal fusion fired on GDA" true
    (List.mem "horizontal-fusion" r.Opt.Pipeline.applied);
  check_result (Gda.result_of_value (Backend.Closure.run ~inputs r.Opt.Pipeline.program))

(* ---------------- TPC-H Q1 ---------------- *)

let q1_table = Dmll_data.Tpch.generate ~rows:3000 ()

(* extract (flag, status, sums...) rows from the program result *)
let q1_rows (v : Value.t) =
  List.init (Value.length v) (fun j ->
      match Value.get v j with
      | Value.Vtup
          [| Value.Vtup [| Value.Vtup [| Value.Vint rf; Value.Vint ls |]; sums |];
             avgs;
          |] -> (
          match (sums, avgs) with
          | ( Value.Vtup
                [| Value.Vtup [| Value.Vfloat sq; Value.Vfloat sb |];
                   Value.Vtup [| Value.Vfloat sd; Value.Vfloat sc |];
                |],
              Value.Vtup
                [| Value.Vtup [| Value.Vfloat aq; Value.Vfloat ap |];
                   Value.Vtup [| Value.Vfloat ad; Value.Vfloat cnt |];
                |] ) ->
              ((rf, ls), (sq, sb, sd, sc, aq, ap, ad, cnt))
          | _ -> Alcotest.fail "malformed Q1 sums")
      | _ -> Alcotest.fail "malformed Q1 row")

let feq a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_q1 (rows : ((int * int) * (float * float * float * float * float * float * float * float)) list) =
  let expected = Tpch_q1.handopt q1_table in
  check tint "group count" (List.length expected) (List.length rows);
  List.iter
    (fun (rf, ls, (g : Tpch_q1.group)) ->
      match List.assoc_opt (rf, ls) rows with
      | None -> Alcotest.failf "missing group (%d,%d)" rf ls
      | Some (sq, sb, sd, sc, aq, ap, ad, cnt) ->
          let c = float_of_int g.Tpch_q1.count in
          check tbool "sum_qty" true (feq sq g.Tpch_q1.sum_qty);
          check tbool "sum_base" true (feq sb g.Tpch_q1.sum_base);
          check tbool "sum_disc_price" true (feq sd g.Tpch_q1.sum_disc_price);
          check tbool "sum_charge" true (feq sc g.Tpch_q1.sum_charge);
          check tbool "avg_qty" true (feq aq (g.Tpch_q1.sum_qty /. c));
          check tbool "avg_price" true (feq ap (g.Tpch_q1.sum_base /. c));
          check tbool "avg_disc" true (feq ad (g.Tpch_q1.sum_disc /. c));
          check tbool "count" true (feq cnt c))
    expected

let test_q1_matches_handopt () =
  let prog = Tpch_q1.program () in
  check_q1 (q1_rows (Interp.run ~inputs:(Tpch_q1.aos_inputs q1_table) prog))

let test_q1_optimized () =
  let prog = Tpch_q1.program () in
  let r = optimize prog in
  List.iter
    (fun rule ->
      check tbool (rule ^ " fired on Q1") true (List.mem rule r.Opt.Pipeline.applied))
    [ "groupby-reduce"; "pipeline-fusion"; "input-soa"; "dead-field-elim" ];
  (* post-SoA the program consumes columns, not structs *)
  let cols = Dmll_opt.Soa.columns_needed r.Opt.Pipeline.program in
  check tbool "columnar inputs" true (List.mem_assoc "lineitem.quantity" cols);
  check_q1
    (q1_rows
       (Backend.Closure.run ~inputs:(Tpch_q1.soa_inputs q1_table) r.Opt.Pipeline.program))

(* ---------------- gene barcoding ---------------- *)

let gene_reads = Dmll_data.Genes.generate ~reads:2000 ~barcodes:50 ()

let gene_rows (v : Value.t) =
  List.init (Value.length v) (fun j ->
      match Value.get v j with
      | Value.Vtup [| Value.Vint bc; Value.Vtup [| Value.Vint c; Value.Vfloat q |] |] ->
          (bc, (c, q))
      | _ -> Alcotest.fail "malformed gene row")

let check_gene rows =
  let expected = Gene.handopt gene_reads in
  check tint "barcode count" (List.length expected) (List.length rows);
  List.iter
    (fun (bc, c, q) ->
      match List.assoc_opt bc rows with
      | None -> Alcotest.failf "missing barcode %d" bc
      | Some (c', q') ->
          check tint "count" c c';
          check tbool "mean quality" true (feq q q'))
    expected

let test_gene_matches_handopt () =
  let prog = Gene.program () in
  check_gene (gene_rows (Interp.run ~inputs:(Gene.aos_inputs gene_reads) prog))

let test_gene_optimized_dfe () =
  let prog = Gene.program () in
  let r = optimize prog in
  check tbool "dead-field-elim fired on gene" true
    (List.mem "dead-field-elim" r.Opt.Pipeline.applied);
  let cols = Dmll_opt.Soa.columns_needed r.Opt.Pipeline.program in
  check tbool "length column eliminated" false (List.mem_assoc "reads.length" cols);
  check_gene
    (gene_rows
       (Backend.Closure.run ~inputs:(Gene.soa_inputs gene_reads) r.Opt.Pipeline.program))

(* ---------------- PageRank ---------------- *)

let graph =
  Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:7 ~edge_factor:6 ())

let test_pagerank_pull () =
  let ranks = Pagerank.initial_ranks graph in
  let prog = Pagerank.program_pull ~nv:graph.Dmll_graph.Csr.nv () in
  let inputs = Pagerank.inputs graph ~ranks in
  let expected = Array.make graph.Dmll_graph.Csr.nv 0.0 in
  Pagerank.handopt_pull graph ranks expected;
  check farr_approx "pull DMLL = hand-optimized" expected
    (Value.to_float_array (Interp.run ~inputs prog));
  (* optimized *)
  let r = optimize prog in
  check farr_approx "optimized pull" expected
    (Value.to_float_array (Backend.Closure.run ~inputs r.Opt.Pipeline.program))

let test_pagerank_push_equals_pull () =
  let ranks = Pagerank.initial_ranks graph in
  let prog = Pagerank.program_push ~nv:graph.Dmll_graph.Csr.nv () in
  let inputs = Pagerank.inputs graph ~ranks in
  let expected = Array.make graph.Dmll_graph.Csr.nv 0.0 in
  Pagerank.handopt_push graph ranks expected;
  check farr_approx "push DMLL = hand-optimized push" expected
    (Value.to_float_array (Backend.Closure.run ~inputs prog));
  (* push and pull compute the same ranks *)
  let pull_out = Array.make graph.Dmll_graph.Csr.nv 0.0 in
  Pagerank.handopt_pull graph ranks pull_out;
  check farr_approx "push = pull" pull_out expected

(* ---------------- triangle counting ---------------- *)

let tri_graph =
  Dmll_graph.Csr.of_edges
    (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:6 ~edge_factor:4 ()))

let test_triangles () =
  let expected = Tricount.handopt tri_graph in
  check tbool "graph has triangles" true (expected > 0);
  let prog = Tricount.program () in
  let got = Value.as_int (Backend.Closure.run ~inputs:(Tricount.inputs tri_graph) prog) in
  check tint "DMLL triangle count" expected got;
  let r = optimize prog in
  check tint "optimized triangle count" expected
    (Value.as_int
       (Backend.Closure.run ~inputs:(Tricount.inputs tri_graph) r.Opt.Pipeline.program))

(* ---------------- kNN ---------------- *)

let test_knn_label_counts () =
  let train = Dmll_data.Gaussian.generate ~seed:1 ~rows:40 ~cols:4 ~classes:3 () in
  let test_d = Dmll_data.Gaussian.generate ~seed:2 ~rows:12 ~cols:4 ~classes:3 () in
  let prog = Knn.label_counts_program ~train_rows:40 ~test_rows:12 ~cols:4 () in
  let inputs = Knn.inputs ~train ~test:test_d in
  let preds =
    Knn.handopt ~train:train.Dmll_data.Gaussian.data
      ~train_labels:train.Dmll_data.Gaussian.labels ~test:test_d.Dmll_data.Gaussian.data
      ~train_rows:40 ~test_rows:12 ~cols:4
  in
  match Interp.run ~inputs prog with
  | Value.Vmap m ->
      let total = Array.fold_left (fun a v -> a + Value.as_int v) 0 m.Value.mvals in
      check tint "counts sum to test rows" 12 total;
      Array.iteri
        (fun j key ->
          let label = Value.as_int key in
          let expected =
            Array.fold_left (fun a p -> if p = label then a + 1 else a) 0 preds
          in
          check tint "per-label count" expected (Value.as_int m.Value.mvals.(j)))
        m.Value.mkeys
  | v -> Alcotest.failf "expected map, got %s" (Value.to_string v)

let test_knn () =
  let train = Dmll_data.Gaussian.generate ~seed:1 ~rows:40 ~cols:4 ~classes:3 () in
  let test_d = Dmll_data.Gaussian.generate ~seed:2 ~rows:10 ~cols:4 ~classes:3 () in
  let prog = Knn.program ~train_rows:40 ~test_rows:10 ~cols:4 () in
  let inputs = Knn.inputs ~train ~test:test_d in
  let expected =
    Knn.handopt ~train:train.Dmll_data.Gaussian.data
      ~train_labels:train.Dmll_data.Gaussian.labels ~test:test_d.Dmll_data.Gaussian.data
      ~train_rows:40 ~test_rows:10 ~cols:4
  in
  let got = Value.to_int_array (Interp.run ~inputs prog) in
  check tbool "1-NN labels" true (expected = got);
  let r = optimize prog in
  check tbool "optimized 1-NN labels" true
    (expected = Value.to_int_array (Backend.Closure.run ~inputs r.Opt.Pipeline.program))

(* ---------------- naive Bayes ---------------- *)

let test_naive_bayes () =
  let d = Dmll_data.Gaussian.generate ~rows:50 ~cols:4 ~classes:3 () in
  let prog = Naive_bayes.program ~rows:50 ~cols:4 () in
  let inputs = Naive_bayes.inputs d in
  let expected =
    Naive_bayes.handopt ~data:d.Dmll_data.Gaussian.data ~labels:d.Dmll_data.Gaussian.labels
      ~rows:50 ~cols:4 ~classes:3
  in
  let check_value v =
    match v with
    | Value.Vtup [| counts; Value.Vtup [| sums; sqsums |] |] ->
        let counts_m = Value.as_map counts in
        Array.iteri
          (fun j key ->
            let c = Value.as_int counts_m.Value.mvals.(j) in
            let label = Value.as_int key in
            check tint "class count" expected.Naive_bayes.counts.(label) c;
            let s = Value.to_float_array (Value.get sums j) in
            let sq = Value.to_float_array (Value.get sqsums j) in
            check farr_approx "class sums"
              (Array.sub expected.Naive_bayes.sums (label * 4) 4) s;
            check farr_approx "class sqsums"
              (Array.sub expected.Naive_bayes.sqsums (label * 4) 4) sq)
          counts_m.Value.mkeys
    | _ -> Alcotest.fail "malformed NB result"
  in
  check_value (Interp.run ~inputs prog);
  let r = optimize prog in
  check_value (Backend.Closure.run ~inputs r.Opt.Pipeline.program)

(* ---------------- ridge regression ---------------- *)

let test_ridge () =
  let d = Dmll_data.Gaussian.generate ~rows:60 ~cols:5 ~classes:2 () in
  let theta = Array.make 5 0.2 in
  let prog = Ridge.program ~rows:60 ~cols:5 ~alpha:0.001 ~lambda:0.1 () in
  let inputs = Ridge.inputs d ~theta in
  let expected =
    Ridge.handopt ~data:d.Dmll_data.Gaussian.data
      ~labels:(Dmll_data.Gaussian.binary_labels d) ~rows:60 ~cols:5 ~alpha:0.001
      ~lambda:0.1 ~theta
  in
  check farr_approx "unoptimized ridge" expected
    (Value.to_float_array (Interp.run ~inputs prog));
  let r = optimize prog in
  check tbool "column-to-row fired on ridge" true
    (List.mem "column-to-row" r.Opt.Pipeline.applied);
  check farr_approx "optimized ridge" expected
    (Value.to_float_array (Backend.Closure.run ~inputs r.Opt.Pipeline.program))

(* ---------------- push-pull selection ---------------- *)

let test_push_pull_selection () =
  let open Dmll_graph.Push_pull in
  check tbool "shared memory pulls" true (select Shared_memory = Pull);
  check tbool "distributed pushes" true (select Distributed = Push);
  let both = { pull = "pull-prog"; push = "push-prog" } in
  check tbool "for_target pull" true (for_target both Shared_memory = "pull-prog");
  check tbool "for_target push" true (for_target both Distributed = "push-prog")

(* ---------------- Gibbs sampling ---------------- *)

let test_gibbs () =
  let g = Dmll_data.Factor_graph.generate ~vars:50 ~factors:150 () in
  let state = Dmll_data.Factor_graph.initial_state g in
  let rand = Dmll_data.Factor_graph.sweep_randoms ~sweeps:2 g in
  let replicas = 2 in
  let prog = Gibbs.program ~nvars:50 ~replicas () in
  let inputs = Gibbs.inputs g ~state ~rand in
  let v = Interp.run ~inputs prog in
  check tint "replica count" replicas (Value.length v);
  (* replica r must match the handopt sweep with the same random slice *)
  for r = 0 to replicas - 1 do
    let out = Array.make 50 0.0 in
    Gibbs.handopt_sweep g ~state ~rand ~rand_base:(r * 50) ~out;
    check farr_approx
      (Printf.sprintf "replica %d" r)
      out
      (Value.to_float_array (Value.get v r))
  done;
  let opt = optimize prog in
  let v' = Backend.Closure.run ~inputs opt.Opt.Pipeline.program in
  check tbool "optimized gibbs equal" true (Value.approx_equal v v');
  (* averaging across replicas *)
  let avg = Gibbs.average_replicas v in
  check tint "avg length" 50 (Array.length avg)

let () =
  Alcotest.run "apps"
    [ ( "kmeans",
        [ Alcotest.test_case "matches handopt" `Quick test_kmeans_matches_handopt;
          Alcotest.test_case "single traversal" `Quick test_kmeans_single_traversal_after_opt;
          Alcotest.test_case "parallel execution" `Quick test_kmeans_parallel;
          Alcotest.test_case "formulations converge" `Quick test_kmeans_formulations_converge;
        ] );
      ( "logreg",
        [ Alcotest.test_case "matches handopt" `Quick test_logreg_matches_handopt;
          Alcotest.test_case "gpu lowering" `Quick test_logreg_gpu_lowering_roundtrip;
        ] );
      ("gda", [ Alcotest.test_case "matches handopt" `Quick test_gda_matches_handopt ]);
      ( "tpch-q1",
        [ Alcotest.test_case "matches handopt" `Quick test_q1_matches_handopt;
          Alcotest.test_case "optimized + soa" `Quick test_q1_optimized;
        ] );
      ( "gene",
        [ Alcotest.test_case "matches handopt" `Quick test_gene_matches_handopt;
          Alcotest.test_case "optimized + dfe" `Quick test_gene_optimized_dfe;
        ] );
      ( "graph",
        [ Alcotest.test_case "pagerank pull" `Quick test_pagerank_pull;
          Alcotest.test_case "pagerank push" `Quick test_pagerank_push_equals_pull;
          Alcotest.test_case "triangles" `Quick test_triangles;
        ] );
      ( "knn",
        [ Alcotest.test_case "1-nn" `Quick test_knn;
          Alcotest.test_case "label counts" `Quick test_knn_label_counts;
        ] );
      ("ridge", [ Alcotest.test_case "gradient step" `Quick test_ridge ]);
      ("push-pull", [ Alcotest.test_case "selection" `Quick test_push_pull_selection ]);
      ("naive-bayes", [ Alcotest.test_case "stats" `Quick test_naive_bayes ]);
      ("gibbs", [ Alcotest.test_case "sweep" `Quick test_gibbs ]);
    ]

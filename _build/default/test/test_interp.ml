(* Tests of the reference interpreter: generator semantics (paper Figure 2),
   nested loops, inputs, externs, and failure behaviour. *)

open Dmll_ir
open Dmll_interp
open Exp
open Builder

let check = Alcotest.check
let tbool = Alcotest.bool

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

let run = Interp.run

let farr xs = Value.of_float_array (Array.of_list xs)
let iarr xs = Value.of_int_array (Array.of_list xs)

(* ---------------- scalars ---------------- *)

let test_scalars () =
  check value "int arith" (Value.Vint 7) (run (int_ 1 +! (int_ 2 *! int_ 3)));
  check value "float arith" (Value.Vfloat 2.5) (run (float_ 1.0 +. (float_ 3.0 /. float_ 2.0)));
  check value "comparison" (Value.Vbool true) (run (int_ 3 <! int_ 5));
  check value "string concat"
    (Value.Vstr "ab")
    (run (Prim (Prim.Strcat, [ str_ "a"; str_ "b" ])));
  check value "if" (Value.Vint 1) (run (if_ (bool_ true) (int_ 1) (int_ 2)));
  check value "let" (Value.Vfloat 4.0)
    (run (bind ~ty:Types.Float (float_ 2.0) (fun v -> v *. v)))

let test_tuples_structs () =
  check value "proj" (Value.Vint 2) (run (Proj (Tuple [ int_ 1; int_ 2 ], 1)));
  let pt = Types.Struct ("pt", [ ("x", Types.Float); ("y", Types.Float) ]) in
  let e = Field (Record (pt, [ ("x", float_ 1.5); ("y", float_ 2.5) ]), "y") in
  check value "field" (Value.Vfloat 2.5) (run e)

(* ---------------- Collect ---------------- *)

let test_collect () =
  check value "map square" (iarr [ 0; 1; 4; 9 ])
    (run (collect ~size:(int_ 4) (fun i -> i *! i)));
  check value "collect specializes floats"
    (farr [ 0.0; 1.0; 2.0 ])
    (run (collect ~size:(int_ 3) (fun i -> i2f i)));
  check value "empty collect" (Value.Varr (Value.Ga [||])) (run (collect ~size:(int_ 0) (fun i -> i)))

let test_filter () =
  let e =
    collect
      ~cond:(fun i -> i %! int_ 2 =! int_ 0)
      ~size:(int_ 6)
      (fun i -> i)
  in
  check value "filter evens" (iarr [ 0; 2; 4 ]) (run e)

(* ---------------- Reduce ---------------- *)

let test_reduce () =
  check value "sum 0..9" (Value.Vint 45) (run (isum ~size:(int_ 10) (fun i -> i)));
  check value "empty reduce returns init" (Value.Vfloat 0.0)
    (run (fsum ~size:(int_ 0) (fun _ -> float_ 1.0)));
  let conditional =
    isum ~cond:(fun i -> i >! int_ 5) ~size:(int_ 10) (fun i -> i)
  in
  check value "conditional reduce" (Value.Vint 30) (run conditional)

let test_min_index () =
  let arr = farr [ 3.0; 1.0; 2.0; 1.0 ] in
  let a = Sym.fresh ~name:"arr" (Types.Arr Types.Float) in
  let e = Let (a, Input ("data", Types.Arr Types.Float, Local),
               min_index ~size:(len (Var a)) (fun i -> read (Var a) i)) in
  (* min-by keeps the first occurrence on ties *)
  check value "argmin" (Value.Vint 1) (Interp.run ~inputs:[ ("data", arr) ] e)

(* ---------------- Buckets ---------------- *)

let test_bucket_collect () =
  let e =
    bucket_collect ~size:(int_ 6) ~key:(fun i -> i %! int_ 2) (fun i -> i)
  in
  match Interp.run e with
  | Value.Vmap m ->
      check value "keys first-seen order" (iarr [ 0; 2; 4 ]) m.mvals.(0);
      check value "second bucket" (iarr [ 1; 3; 5 ]) m.mvals.(1);
      check value "key 0" (Value.Vint 0) m.mkeys.(0)
  | v -> Alcotest.failf "expected map, got %s" (Value.to_string v)

let test_bucket_reduce () =
  let e =
    bucket_reduce ~size:(int_ 10) ~ty:Types.Int
      ~key:(fun i -> i %! int_ 3)
      ~init:(int_ 0)
      (fun i -> i)
      (fun a b -> a +! b)
  in
  match Interp.run e with
  | Value.Vmap m ->
      (* buckets: 0: 0+3+6+9=18, 1: 1+4+7=12, 2: 2+5+8=15 *)
      check value "bucket 0" (Value.Vint 18) m.mvals.(0);
      check value "bucket 1" (Value.Vint 12) m.mvals.(1);
      check value "bucket 2" (Value.Vint 15) m.mvals.(2)
  | v -> Alcotest.failf "expected map, got %s" (Value.to_string v)

let test_bucket_string_keys () =
  let names = Value.Varr (Value.Ga [| Value.Vstr "a"; Value.Vstr "b"; Value.Vstr "a" |]) in
  let a = Sym.fresh ~name:"names" (Types.Arr Types.Str) in
  let e =
    Let (a, Input ("names", Types.Arr Types.Str, Local),
         bucket_reduce ~size:(len (Var a)) ~ty:Types.Int
           ~key:(fun i -> read (Var a) i)
           ~init:(int_ 0)
           (fun _ -> int_ 1)
           (fun x y -> x +! y))
  in
  match Interp.run ~inputs:[ ("names", names) ] e with
  | Value.Vmap m ->
      check value "count a" (Value.Vint 2) m.mvals.(0);
      check value "count b" (Value.Vint 1) m.mvals.(1);
      check value "key a" (Value.Vstr "a") m.mkeys.(0)
  | v -> Alcotest.failf "expected map, got %s" (Value.to_string v)

(* ---------------- map reads ---------------- *)

let test_map_read () =
  let buckets =
    bucket_reduce ~size:(int_ 6) ~ty:Types.Int
      ~key:(fun i -> i %! int_ 2)
      ~init:(int_ 0)
      (fun _ -> int_ 1)
      (fun a b -> a +! b)
  in
  let e =
    bind ~ty:(Types.Map (Types.Int, Types.Int)) buckets (fun m ->
        MapRead (m, int_ 1, None) +! MapRead (m, int_ 7, Some (int_ 100)))
  in
  check value "keyed read + default" (Value.Vint 103) (run e);
  let k =
    bind ~ty:(Types.Map (Types.Int, Types.Int)) buckets (fun m -> KeyAt (m, int_ 1))
  in
  check value "keyAt" (Value.Vint 1) (run k)

(* ---------------- nesting & multi-generator ---------------- *)

let test_nested_loops () =
  (* outer product row sums: for i in 0..2, sum_j (i*j) for j in 0..3 *)
  let e =
    collect ~size:(int_ 3) (fun i ->
        isum ~size:(int_ 4) (fun j -> i *! j))
  in
  check value "nested" (iarr [ 0; 6; 12 ]) (run e)

let test_multi_generator () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh Types.Int and b = Sym.fresh Types.Int in
  let ml =
    Loop
      { size = int_ 5;
        idx;
        gens =
          [ Collect { cond = None; value = Var idx *! int_ 2 };
            Reduce
              { cond = None; value = Var idx; a; b; rfun = Var a +! Var b;
                init = int_ 0 };
          ];
      }
  in
  check value "horizontal pair"
    (Value.Vtup [| iarr [ 0; 2; 4; 6; 8 ]; Value.Vint 10 |])
    (run ml)

(* ---------------- errors ---------------- *)

let expect_error e =
  match Interp.run e with
  | exception Interp.Runtime_error _ -> ()
  | v -> Alcotest.failf "expected runtime error, got %s" (Value.to_string v)

let test_errors () =
  expect_error (int_ 1 /! int_ 0);
  expect_error (Read (collect ~size:(int_ 2) (fun i -> i), int_ 5));
  expect_error (Var (Sym.fresh Types.Int));
  expect_error (Input ("missing", Types.Int, Local));
  expect_error (Extern { ename = "nope"; eargs = []; ety = Types.Unit; whitelisted = false })

let test_extern () =
  Interp.register_extern "double" (function
    | [ Value.Vint i ] -> Value.Vint (2 * i)
    | _ -> failwith "double");
  check value "custom extern" (Value.Vint 8)
    (run (Extern { ename = "double"; eargs = [ int_ 4 ]; ety = Types.Int; whitelisted = false }));
  check value "size_hint whitelisted extern" (Value.Vint 3)
    (run
       (Extern
          { ename = "size_hint";
            eargs = [ collect ~size:(int_ 3) (fun i -> i) ];
            ety = Types.Int;
            whitelisted = true;
          }))

(* ---------------- value helpers ---------------- *)

let test_value_helpers () =
  check tbool "approx equal tolerates rounding" true
    (Value.approx_equal (Value.Vfloat 1.0) (Value.Vfloat (Float.add 1.0 1e-12)));
  check tbool "approx not sloppy" false
    (Value.approx_equal (Value.Vfloat 1.0) (Value.Vfloat 1.1));
  let m1 = Value.Vmap { mkeys = [| Value.Vint 0; Value.Vint 1 |];
                        mvals = [| Value.Vfloat 1.0; Value.Vfloat 2.0 |] } in
  let m2 = Value.Vmap { mkeys = [| Value.Vint 1; Value.Vint 0 |];
                        mvals = [| Value.Vfloat 2.0; Value.Vfloat 1.0 |] } in
  check tbool "maps compared as keyed sets" true (Value.approx_equal m1 m2);
  check tbool "strict equal is ordered" false (Value.equal m1 m2)

(* ---------------- properties ---------------- *)

(* Evaluation is deterministic. *)
let prop_deterministic =
  QCheck.Test.make ~count:100 ~name:"evaluation is deterministic"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      Value.equal (Interp.run e) (Interp.run e))

(* Refreshing binders never changes the result. *)
let prop_refresh_semantics =
  QCheck.Test.make ~count:100 ~name:"refresh_binders preserves semantics"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      Value.equal (Interp.run e) (Interp.run (refresh_binders e)))

(* Bucket programs: total of bucket sums equals the unbucketed sum. *)
let prop_bucket_total =
  QCheck.Test.make ~count:100 ~name:"bucket sums partition the total"
    Dmll_testgen.Gen_ir.arbitrary_bucket_program (fun e ->
      match (Interp.run e, e) with
      | Value.Vmap m, Loop { size; idx; gens = [ BucketReduce br ] } ->
          let total =
            Interp.run
              (Loop
                 { size;
                   idx;
                   gens =
                     [ Reduce
                         { cond = br.cond; value = br.value; a = br.a; b = br.b;
                           rfun = br.rfun; init = br.init };
                     ];
                 })
          in
          let bucket_total =
            Array.fold_left (fun acc v -> Float.add acc (Value.as_float v)) 0.0 m.mvals
          in
          Value.approx_equal ~eps:1e-6 (Value.Vfloat bucket_total) total
      | _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "interp"
    [ ( "scalars",
        [ Alcotest.test_case "arith" `Quick test_scalars;
          Alcotest.test_case "tuples/structs" `Quick test_tuples_structs;
        ] );
      ( "collect",
        [ Alcotest.test_case "map" `Quick test_collect;
          Alcotest.test_case "filter" `Quick test_filter;
        ] );
      ( "reduce",
        [ Alcotest.test_case "sum" `Quick test_reduce;
          Alcotest.test_case "argmin" `Quick test_min_index;
        ] );
      ( "buckets",
        [ Alcotest.test_case "bucket_collect" `Quick test_bucket_collect;
          Alcotest.test_case "bucket_reduce" `Quick test_bucket_reduce;
          Alcotest.test_case "string keys" `Quick test_bucket_string_keys;
          Alcotest.test_case "map reads" `Quick test_map_read;
        ] );
      ( "nesting",
        [ Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "multi-generator" `Quick test_multi_generator;
        ] );
      ( "errors",
        [ Alcotest.test_case "runtime errors" `Quick test_errors;
          Alcotest.test_case "externs" `Quick test_extern;
        ] );
      ("values", [ Alcotest.test_case "helpers" `Quick test_value_helpers ]);
      ( "properties",
        [ qt prop_deterministic; qt prop_refresh_semantics; qt prop_bucket_total ] );
    ]

(* Tests of the baseline systems: MiniSpark / MiniGraph / DimmWitted must
   compute results identical to the hand-optimized references (they are
   real executables, not mocks), and their cost accounting must behave
   sanely. *)

open Dmll_baselines
module Apps = Dmll_apps

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let feq ?(eps = 1e-6) a b =
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let farr_eq a b = Array.length a = Array.length b && Array.for_all2 (fun x y -> feq x y) a b

(* ---------------- MiniSpark ---------------- *)

let platform = Minispark.numa_platform ()

let test_spark_q1 () =
  let t = Dmll_data.Tpch.generate ~rows:2000 () in
  let rows, ctx = Spark_apps.q1 platform t in
  let expected = Apps.Tpch_q1.handopt t in
  check tint "group count" (List.length expected) (Array.length rows);
  List.iter
    (fun (rf, ls, (g : Apps.Tpch_q1.group)) ->
      match Array.find_opt (fun ((rf', ls'), _) -> rf = rf' && ls = ls') rows with
      | None -> Alcotest.failf "missing group (%d,%d)" rf ls
      | Some (_, agg) ->
          check tbool "qty" true (feq agg.Spark_apps.a_qty g.Apps.Tpch_q1.sum_qty);
          check tbool "charge" true (feq agg.Spark_apps.a_charge g.Apps.Tpch_q1.sum_charge);
          check tint "count" g.Apps.Tpch_q1.count agg.Spark_apps.a_cnt)
    expected;
  check tbool "time accounted" true (ctx.Minispark.sim_seconds > 0.0);
  check tbool "shuffle accounted" true (ctx.Minispark.shuffled_bytes > 0.0)

let test_spark_gene () =
  let r = Dmll_data.Genes.generate ~reads:1500 ~barcodes:40 () in
  let rows, _ctx = Spark_apps.gene platform r in
  let expected = Apps.Gene.handopt r in
  check tint "barcode count" (List.length expected) (Array.length rows);
  List.iter
    (fun (b, c, q) ->
      match Array.find_opt (fun (b', _) -> b = b') rows with
      | None -> Alcotest.failf "missing barcode %d" b
      | Some (_, (c', q')) ->
          check tint "count" c c';
          check tbool "quality" true (feq q q'))
    expected

let test_spark_kmeans () =
  let d = Dmll_data.Gaussian.generate ~rows:80 ~cols:5 ~classes:3 () in
  let cents = Dmll_data.Gaussian.random_centroids ~k:3 d in
  let got, _ = Spark_apps.kmeans_iteration platform d ~centroids:cents ~k:3 in
  let expected =
    Apps.Kmeans.handopt ~data:d.Dmll_data.Gaussian.data ~rows:80 ~cols:5 ~k:3
      ~centroids:cents
  in
  (* Spark leaves empty clusters at zero; the reference divides only
     non-empty ones too, so values agree cluster-by-cluster when counts>0.
     With this dataset every cluster is populated. *)
  check tbool "kmeans centroids" true (farr_eq expected got)

let test_spark_logreg () =
  let d = Dmll_data.Gaussian.generate ~rows:60 ~cols:5 ~classes:2 () in
  let theta = Array.make 5 0.05 in
  let got, _ = Spark_apps.logreg_step platform d ~theta ~alpha:0.01 in
  let expected =
    Apps.Logreg.handopt ~data:d.Dmll_data.Gaussian.data
      ~labels:(Dmll_data.Gaussian.binary_labels d) ~rows:60 ~cols:5 ~alpha:0.01 ~theta
  in
  check tbool "logreg theta" true (farr_eq expected got)

let test_spark_gda () =
  let d = Dmll_data.Gaussian.generate ~rows:60 ~cols:4 ~classes:2 () in
  let (phi, mu0, mu1, sigma), _ = Spark_apps.gda platform d in
  let expected =
    Apps.Gda.handopt ~data:d.Dmll_data.Gaussian.data
      ~labels:(Dmll_data.Gaussian.binary_labels d) ~rows:60 ~cols:4 ()
  in
  check tbool "phi" true (feq phi expected.Apps.Gda.phi);
  check tbool "mu0" true (farr_eq expected.Apps.Gda.mu0 mu0);
  check tbool "mu1" true (farr_eq expected.Apps.Gda.mu1 mu1);
  check tbool "sigma" true (farr_eq expected.Apps.Gda.sigma sigma)

let test_spark_cost_model () =
  (* the same job on a cluster platform incurs network shuffle time *)
  let t = Dmll_data.Tpch.generate ~rows:2000 () in
  let _, numa_ctx = Spark_apps.q1 (Minispark.numa_platform ()) t in
  let _, ec2_ctx = Spark_apps.q1 (Minispark.ec2_platform ()) t in
  check tbool "both positive" true
    (numa_ctx.Minispark.sim_seconds > 0.0 && ec2_ctx.Minispark.sim_seconds > 0.0);
  (* per-record overheads dominate equally; the cluster adds latency *)
  check tbool "records counted" true (numa_ctx.Minispark.records_processed > 2000)

(* ---------------- MiniGraph ---------------- *)

let graph =
  Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:8 ~edge_factor:6 ())

let test_minigraph_pagerank () =
  let ctx = Minigraph.new_ctx (Minigraph.numa_platform ()) in
  let got = Minigraph.pagerank ctx ~iters:5 graph in
  let expected = Dmll_graph.Kernels.pagerank ~iters:5 graph in
  check tbool "pagerank matches kernel" true (farr_eq expected got);
  check tbool "time accounted" true (ctx.Minigraph.sim_seconds > 0.0)

let test_minigraph_triangles () =
  let tg =
    Dmll_graph.Csr.of_edges
      (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:6 ~edge_factor:4 ()))
  in
  let ctx = Minigraph.new_ctx (Minigraph.cluster_platform ()) in
  let got = Minigraph.triangle_count ctx tg in
  check tint "triangles" (Dmll_graph.Kernels.triangle_count tg) got;
  check tbool "network traffic accounted" true (ctx.Minigraph.net_bytes > 0.0)

let test_replication_factor () =
  check tbool "single node no replication" true
    (feq (Minigraph.replication_factor ~nodes:1) 1.0);
  check tbool "grows with nodes" true
    (Minigraph.replication_factor ~nodes:16 > Minigraph.replication_factor ~nodes:4)

(* ---------------- DimmWitted ---------------- *)

let test_dimmwitted_sweep () =
  let g = Dmll_data.Factor_graph.generate ~vars:60 ~factors:200 () in
  let state = Dmll_data.Factor_graph.initial_state g in
  let rand = Dmll_data.Factor_graph.sweep_randoms ~sweeps:1 g in
  let m = Dimmwitted.of_flat g in
  Dimmwitted.load_state m state;
  let out_dw = Array.make 60 0.0 in
  Dimmwitted.sweep m ~prev:state ~rand ~rand_base:0 ~out:out_dw;
  let out_flat = Array.make 60 0.0 in
  Dmll_apps.Gibbs.handopt_sweep g ~state ~rand ~rand_base:0 ~out:out_flat;
  check tbool "pointer-graph sweep = flat sweep" true (farr_eq out_flat out_dw)

let test_dimmwitted_scaling () =
  let g = Dmll_data.Factor_graph.generate ~vars:1000 ~factors:4000 () in
  let t1 = Dimmwitted.sweep_seconds ~threads:1 g in
  let t12 = Dimmwitted.sweep_seconds ~threads:12 g in
  let t48 = Dimmwitted.sweep_seconds ~threads:48 g in
  check tbool "scales with threads" true (t1 > t12 && t12 > t48);
  (* indirection factor slows the baseline proportionally *)
  let fast = Dimmwitted.sweep_seconds ~indirection_factor:1.0 ~threads:12 g in
  check tbool "indirection factor matters" true (t12 > 1.5 *. fast)

let () =
  Alcotest.run "baselines"
    [ ( "minispark",
        [ Alcotest.test_case "q1" `Quick test_spark_q1;
          Alcotest.test_case "gene" `Quick test_spark_gene;
          Alcotest.test_case "kmeans" `Quick test_spark_kmeans;
          Alcotest.test_case "logreg" `Quick test_spark_logreg;
          Alcotest.test_case "gda" `Quick test_spark_gda;
          Alcotest.test_case "cost model" `Quick test_spark_cost_model;
        ] );
      ( "minigraph",
        [ Alcotest.test_case "pagerank" `Quick test_minigraph_pagerank;
          Alcotest.test_case "triangles" `Quick test_minigraph_triangles;
          Alcotest.test_case "replication" `Quick test_replication_factor;
        ] );
      ( "dimmwitted",
        [ Alcotest.test_case "sweep" `Quick test_dimmwitted_sweep;
          Alcotest.test_case "scaling" `Quick test_dimmwitted_scaling;
        ] );
    ]

(* Tests of the runtime: chunking, distributed arrays, the Domain-based
   parallel executor (must equal sequential execution), and the sanity of
   the NUMA/GPU/cluster simulators' time models. *)

open Dmll_ir
open Dmll_interp
open Dmll_runtime
open Exp
open Builder

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

(* ---------------- chunking ---------------- *)

let test_chunk_split () =
  let cs = Chunk.split ~k:4 10 in
  check tint "4 chunks" 4 (List.length cs);
  check tint "total covered" 10 (List.fold_left (fun a c -> a + Chunk.size c) 0 cs);
  (* contiguous and ordered *)
  ignore
    (List.fold_left
       (fun expected c ->
         check tint "contiguous" expected c.Chunk.lo;
         c.Chunk.hi)
       0 cs);
  check tint "never more chunks than elements" 3 (List.length (Chunk.split ~k:8 3));
  check tint "empty range" 0 (List.length (Chunk.split ~k:4 0))

let prop_chunk_cover =
  QCheck.Test.make ~count:200 ~name:"chunks partition the range"
    QCheck.(pair (int_range 1 64) (int_range 0 1000))
    (fun (k, n) ->
      let cs = Chunk.split ~k n in
      let total = List.fold_left (fun a c -> a + Chunk.size c) 0 cs in
      let contiguous =
        fst
          (List.fold_left
             (fun (ok, expected) c -> (ok && c.Chunk.lo = expected, c.Chunk.hi))
             (true, 0) cs)
      in
      total = n && contiguous
      && List.for_all (fun c -> Chunk.size c > 0) cs)

let test_chunk_boundaries () =
  let cs = Chunk.split_on_boundaries ~boundaries:[ 3; 7 ] 10 in
  check tint "three pieces" 3 (List.length cs);
  check tbool "boundaries respected" true
    (List.for_all (fun c -> List.mem c.Chunk.lo [ 0; 3; 7 ]) cs)

let test_chunk_imbalance () =
  check tbool "balanced" true (Chunk.imbalance ~k:4 100 <= 1.04);
  check tbool "imbalanced small n" true (Chunk.imbalance ~k:4 5 > 1.0)

(* ---------------- distributed arrays ---------------- *)

let test_directory () =
  let d = Dist_array.make_directory ~n:100 ~nodes:4 ~sockets_per_node:2 in
  check tint "8 locations" 8 (Dist_array.location_count d);
  check tint "owner of 0" 0 (Dist_array.owner d 0);
  check tint "owner of 99" 7 (Dist_array.owner d 99);
  (* ownership is consistent with ranges *)
  for i = 0 to 99 do
    let l = Dist_array.owner d i in
    let r = Dist_array.range_of d l in
    if not (i >= r.Chunk.lo && i < r.Chunk.hi) then
      Alcotest.failf "index %d not in its owner's range" i
  done

let test_scatter_gather () =
  let v = Value.of_float_array (Array.init 37 float_of_int) in
  let d = Dist_array.make_directory ~n:37 ~nodes:3 ~sockets_per_node:1 in
  let t = Dist_array.scatter d v in
  check value "gather restores" v (Dist_array.gather t);
  (* local read from owner is not counted; remote is *)
  let _ = Dist_array.read t ~from_loc:0 1 in
  check tint "local read free" 0 (Dist_array.remote_read_count t);
  let r = Dist_array.read t ~from_loc:0 36 in
  check value "remote read value" (Value.Vfloat 36.0) r;
  check tint "remote read counted" 1 (Dist_array.remote_read_count t)

let test_dist_array_stencil_integration () =
  (* the paper's runtime story end-to-end: partition an array along a
     directory, schedule a loop on the directory boundaries, and count
     trapped remote reads — Interval-stencil access patterns stay local,
     gathers do not *)
  let n = 1000 in
  let v = Value.of_float_array (Array.init n float_of_int) in
  let d = Dist_array.make_directory ~n ~nodes:4 ~sockets_per_node:1 in
  let t = Dist_array.scatter d v in
  let boundaries =
    List.init (Dist_array.location_count d) (fun l -> (Dist_array.range_of d l).Chunk.lo)
  in
  let units = Schedule.plan ~boundaries ~nodes:4 ~sockets:1 ~cores:1 n in
  (* Interval pattern: each location reads its own chunk positionally *)
  List.iter
    (fun (u : Schedule.unit_of_work) ->
      for i = u.Schedule.range.Chunk.lo to u.Schedule.range.Chunk.hi - 1 do
        ignore (Dist_array.read t ~from_loc:u.Schedule.node i)
      done)
    units;
  check tint "interval access is fully local" 0 (Dist_array.remote_read_count t);
  (* gather pattern: a permuted read from location 0 traps remote fetches *)
  for i = 0 to n - 1 do
    ignore (Dist_array.read t ~from_loc:0 ((i * 7919) mod n))
  done;
  check tbool "gather traps remote reads" true (Dist_array.remote_read_count t > n / 2)

(* ---------------- Domain executor ---------------- *)

let xs_input = Input ("xs", Types.Arr Types.Float, Partitioned)
let xs_val n = Value.of_float_array (Array.init n (fun i -> float_of_int (i mod 17)))

let par_equals_seq ?(inputs = []) e =
  let seq = Interp.run ~inputs e in
  let par = Exec_domains.run ~domains:4 ~inputs e in
  check value "parallel = sequential" seq par

let test_domains_collect () =
  par_equals_seq
    ~inputs:[ ("xs", xs_val 103) ]
    (collect ~size:(Len xs_input) (fun i -> Read (xs_input, i) *. float_ 2.0))

let test_domains_filter () =
  par_equals_seq
    ~inputs:[ ("xs", xs_val 103) ]
    (collect
       ~cond:(fun i -> Read (xs_input, i) >! float_ 8.0)
       ~size:(Len xs_input)
       (fun i -> Read (xs_input, i)))

let test_domains_reduce () =
  par_equals_seq
    ~inputs:[ ("xs", xs_val 1000) ]
    (isum ~size:(Len xs_input) (fun i -> f2i (Read (xs_input, i))));
  (* float sums only match approximately across chunkings *)
  let e = fsum ~size:(Len xs_input) (fun i -> Read (xs_input, i)) in
  let inputs = [ ("xs", xs_val 1000) ] in
  check tbool "float reduce approx" true
    (Value.approx_equal ~eps:1e-9 (Interp.run ~inputs e)
       (Exec_domains.run ~domains:4 ~inputs e))

let test_domains_buckets () =
  par_equals_seq
    ~inputs:[ ("xs", xs_val 200) ]
    (bucket_reduce ~size:(Len xs_input) ~ty:Types.Int
       ~key:(fun i -> f2i (Read (xs_input, i)) %! int_ 5)
       ~init:(int_ 0)
       (fun _ -> int_ 1)
       (fun a b -> a +! b));
  par_equals_seq
    ~inputs:[ ("xs", xs_val 60) ]
    (bucket_collect ~size:(Len xs_input)
       ~key:(fun i -> f2i (Read (xs_input, i)) %! int_ 3)
       (fun i -> Read (xs_input, i)))

let test_domains_multi_gen () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh Types.Int and b = Sym.fresh Types.Int in
  par_equals_seq
    (Loop
       { size = int_ 97;
         idx;
         gens =
           [ Collect { cond = None; value = Var idx *! int_ 2 };
             Reduce
               { cond = None; value = Var idx; a; b; rfun = Var a +! Var b;
                 init = int_ 0 };
           ];
       })

let test_domains_spine () =
  (* a multi-step program: map, then a reduction over the result *)
  par_equals_seq
    ~inputs:[ ("xs", xs_val 128) ]
    (bind ~ty:(Types.Arr Types.Float)
       (map_arr xs_input (fun v -> v +. float_ 1.0))
       (fun m -> isum ~size:(len m) (fun i -> f2i (read m i))))

let prop_domains_random =
  QCheck.Test.make ~count:60 ~name:"domain executor = interpreter"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          Value.approx_equal ~eps:1e-6 expected (Exec_domains.run ~domains:3 e))

let test_domains_dynamic () =
  (* dynamic scheduling must equal static & sequential *)
  let e =
    bucket_reduce ~size:(Len xs_input) ~ty:Types.Int
      ~key:(fun i -> f2i (Read (xs_input, i)) %! int_ 4)
      ~init:(int_ 0)
      (fun _ -> int_ 1)
      (fun a b -> a +! b)
  in
  let inputs = [ ("xs", xs_val 500) ] in
  let seq = Interp.run ~inputs e in
  check value "dynamic schedule" seq
    (Exec_domains.run ~domains:3 ~schedule:Exec_domains.Dynamic ~inputs e);
  check value "static schedule" seq
    (Exec_domains.run ~domains:3 ~schedule:Exec_domains.Static ~inputs e)

(* ---------------- hierarchical scheduler ---------------- *)

let test_schedule_plan () =
  let m = Dmll_machine.Machine.stanford_numa in
  let units = Schedule.plan_numa m 10_000 in
  check tbool "covers the range" true (Schedule.covers units 10_000);
  check tint "48 work units" 48 (List.length units);
  (* directory-aligned planning cuts only at boundaries *)
  let boundaries = [ 2500; 5000; 7500 ] in
  let units =
    Schedule.plan ~boundaries ~nodes:4 ~sockets:1 ~cores:1 10_000
  in
  check tbool "aligned plan covers" true (Schedule.covers units 10_000);
  List.iter
    (fun (u : Schedule.unit_of_work) ->
      check tbool "cut on a boundary" true
        (List.mem u.Schedule.range.Chunk.lo (0 :: boundaries)))
    units;
  (* cluster plan shape *)
  let cu = Schedule.plan_cluster Dmll_machine.Machine.gpu_cluster 999 in
  check tbool "cluster plan covers" true (Schedule.covers cu 999);
  check tbool "empty plan" true (Schedule.plan_numa m 0 = [])

let prop_schedule_covers =
  QCheck.Test.make ~count:200 ~name:"plans cover exactly"
    QCheck.(quad (int_range 1 8) (int_range 1 4) (int_range 1 16) (int_range 0 5000))
    (fun (nodes, sockets, cores, n) ->
      Schedule.covers (Schedule.plan ~nodes ~sockets ~cores n) n)

(* ---------------- NUMA simulator ---------------- *)

let streaming_program =
  (* low arithmetic intensity: bandwidth bound *)
  fsum ~size:(Len xs_input) (fun i -> Read (xs_input, i))

let compute_program =
  (* high arithmetic intensity per element *)
  fsum ~size:(Len xs_input) (fun i ->
      let v = Read (xs_input, i) in
      exp_ v *. exp_ (v +. float_ 1.0) *. exp_ (v +. float_ 2.0))

let numa_time ?(mode = Sim_numa.Numa_aware) ~threads e =
  let config = { Sim_numa.machine = Dmll_machine.Machine.stanford_numa; threads; mode } in
  Sim_numa.time ~config ~inputs:[ ("xs", xs_val 100_000) ] e

let test_numa_value_exact () =
  let r =
    Sim_numa.run
      ~config:{ machine = Dmll_machine.Machine.stanford_numa; threads = 48; mode = Numa_aware }
      ~inputs:[ ("xs", xs_val 1000) ]
      streaming_program
  in
  check value "simulator computes the real value"
    (Interp.run ~inputs:[ ("xs", xs_val 1000) ] streaming_program)
    r.Sim_common.value;
  check tbool "positive time" true (r.Sim_common.seconds > 0.0)

let test_numa_compute_scales () =
  let t1 = numa_time ~threads:1 compute_program in
  let t48 = numa_time ~threads:48 compute_program in
  check tbool "compute-bound scales well" true (Float.div t1 t48 > 20.0)

let test_numa_streaming_separates_modes () =
  (* streaming at 48 threads: NUMA-aware must beat pin-only must beat Delite *)
  let aware = numa_time ~mode:Sim_numa.Numa_aware ~threads:48 streaming_program in
  let pin = numa_time ~mode:Sim_numa.Pin_only ~threads:48 streaming_program in
  let delite = numa_time ~mode:Sim_numa.Delite ~threads:48 streaming_program in
  check tbool "numa-aware fastest" true (aware < pin);
  check tbool "pin-only beats delite" true (pin <= delite);
  (* and at one socket the three modes are close *)
  let a12 = numa_time ~mode:Sim_numa.Numa_aware ~threads:12 streaming_program in
  let d12 = numa_time ~mode:Sim_numa.Delite ~threads:12 streaming_program in
  check tbool "one socket: modes comparable" true (Float.div d12 a12 < 1.5)

let test_numa_parallelism_limited_by_loop_size () =
  (* a loop of 8 iterations cannot use 48 threads *)
  let small = collect ~size:(int_ 8) (fun _ -> fsum ~size:(Len xs_input) (fun i -> Read (xs_input, i))) in
  let t8 = numa_time ~threads:8 small in
  let t48 = numa_time ~threads:48 small in
  check tbool "no speedup beyond loop size" true (t48 > Float.mul t8 0.8)

(* ---------------- GPU simulator ---------------- *)

let matrix_sum_rows ~rows ~cols =
  (* vector-valued reduction over rows, as k-means/logreg are written *)
  reduce ~size:(int_ rows) ~ty:(Types.Arr Types.Float) ~init:(zero_vec (int_ cols))
    (fun i -> collect ~size:(int_ cols) (fun j -> Read (xs_input, (i *! int_ cols) +! j)))
    (fun a b -> vec_fadd a b)

let test_gpu_penalties () =
  let e = matrix_sum_rows ~rows:400 ~cols:50 in
  let inputs = [ ("xs", xs_val 20_000) ] in
  let base = Sim_gpu.run ~inputs e in
  let transposed = Sim_gpu.run ~options:{ Sim_gpu.default_options with transpose = true } ~inputs e in
  let scalar =
    Sim_gpu.run ~options:{ Sim_gpu.transpose = true; row_to_column = true } ~inputs e
  in
  check tbool "transpose helps" true
    (transposed.Sim_gpu.kernel_seconds < base.Sim_gpu.kernel_seconds);
  check tbool "row-to-column lowering applied" true scalar.Sim_gpu.lowering_applied;
  check tbool "both transforms fastest" true
    (scalar.Sim_gpu.kernel_seconds < transposed.Sim_gpu.kernel_seconds);
  (* values are exact in all configurations *)
  check tbool "values agree" true
    (Value.approx_equal ~eps:1e-6 base.Sim_gpu.value scalar.Sim_gpu.value)

let test_gpu_transfer_amortization () =
  let e = streaming_program in
  let inputs = [ ("xs", xs_val 100_000) ] in
  let r = Sim_gpu.run ~inputs e in
  check tbool "transfer reported" true (r.Sim_gpu.transfer_seconds > 0.0);
  let once = Sim_gpu.amortized_seconds ~iterations:1 r in
  let many = Sim_gpu.amortized_seconds ~iterations:100 r in
  check tbool "amortization reduces cost" true (many < once)

(* ---------------- cluster simulator ---------------- *)

let test_cluster_value_and_shape () =
  let inputs = [ ("xs", xs_val 50_000) ] in
  let r = Sim_cluster.run ~inputs streaming_program in
  check value "cluster simulator computes the real value"
    (Interp.run ~inputs streaming_program)
    r.Sim_common.value;
  (* more nodes reduce time for a compute-heavy partitioned loop (for a
     tiny streaming loop, per-message latency legitimately dominates) *)
  let big_inputs = [ ("xs", xs_val 2_000_000) ] in
  let t_at nodes =
    let config =
      { Sim_cluster.default_config with
        cluster = Dmll_machine.Machine.with_nodes nodes Dmll_machine.Machine.ec2_cluster
      }
    in
    (Sim_cluster.run ~config ~inputs:big_inputs compute_program).Sim_common.seconds
  in
  check tbool "scales with nodes" true (t_at 2 > t_at 16)

let test_cluster_replication_penalty () =
  (* a gather (Unknown stencil) forces whole-dataset replication *)
  let perm = Input ("perm", Types.Arr Types.Int, Local) in
  let gathered =
    collect ~size:(Len xs_input) (fun i -> Read (xs_input, Read (perm, i)))
  in
  let n = 50_000 in
  let inputs =
    [ ("xs", xs_val n);
      ("perm", Value.of_int_array (Array.init n (fun i -> (i * 7919) mod n)));
    ]
  in
  let good = (Sim_cluster.run ~inputs streaming_program).Sim_common.seconds in
  let bad = (Sim_cluster.run ~inputs gathered).Sim_common.seconds in
  check tbool "replication much slower" true (bad > Float.mul 5.0 good)

let test_cluster_local_loop_on_master () =
  let local = Input ("small", Types.Arr Types.Float, Local) in
  let e = fsum ~size:(Len local) (fun i -> Read (local, i)) in
  let r =
    Sim_cluster.run ~inputs:[ ("small", xs_val 100) ] e
  in
  check tbool "master-only breakdown" true
    (List.exists
       (fun (n, _) ->
         String.length n >= 11
         && String.sub n (String.length n - 11) 11 = "master-only")
       r.Sim_common.breakdown)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "runtime"
    [ ( "chunk",
        [ Alcotest.test_case "split" `Quick test_chunk_split;
          Alcotest.test_case "boundaries" `Quick test_chunk_boundaries;
          Alcotest.test_case "imbalance" `Quick test_chunk_imbalance;
          qt prop_chunk_cover;
        ] );
      ( "dist-array",
        [ Alcotest.test_case "directory" `Quick test_directory;
          Alcotest.test_case "scatter/gather/remote reads" `Quick test_scatter_gather;
          Alcotest.test_case "stencil-aligned scheduling" `Quick
            test_dist_array_stencil_integration;
        ] );
      ( "domains",
        [ Alcotest.test_case "collect" `Quick test_domains_collect;
          Alcotest.test_case "filter" `Quick test_domains_filter;
          Alcotest.test_case "reduce" `Quick test_domains_reduce;
          Alcotest.test_case "buckets" `Quick test_domains_buckets;
          Alcotest.test_case "multi-generator" `Quick test_domains_multi_gen;
          Alcotest.test_case "spine" `Quick test_domains_spine;
          Alcotest.test_case "dynamic schedule" `Quick test_domains_dynamic;
          qt prop_domains_random;
        ] );
      ( "schedule",
        [ Alcotest.test_case "hierarchical plans" `Quick test_schedule_plan;
          qt prop_schedule_covers;
        ] );
      ( "sim-numa",
        [ Alcotest.test_case "exact values" `Quick test_numa_value_exact;
          Alcotest.test_case "compute scaling" `Quick test_numa_compute_scales;
          Alcotest.test_case "mode separation" `Quick test_numa_streaming_separates_modes;
          Alcotest.test_case "parallelism limit" `Quick test_numa_parallelism_limited_by_loop_size;
        ] );
      ( "sim-gpu",
        [ Alcotest.test_case "penalties" `Quick test_gpu_penalties;
          Alcotest.test_case "transfer amortization" `Quick test_gpu_transfer_amortization;
        ] );
      ( "sim-cluster",
        [ Alcotest.test_case "value & scaling" `Quick test_cluster_value_and_shape;
          Alcotest.test_case "replication penalty" `Quick test_cluster_replication_penalty;
          Alcotest.test_case "master-only loops" `Quick test_cluster_local_loop_on_master;
        ] );
    ]

(* Tests of the analysis library: affine forms, read-stencil
   classification, Algorithm-1 partitioning with stencil-triggered
   rewrites, and the cost model. *)

open Dmll_ir
open Dmll_analysis
open Exp
open Builder

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let stencil : Stencil.t Alcotest.testable =
  Alcotest.testable Stencil.pp ( = )

(* ---------------- linear ---------------- *)

let test_linear_forms () =
  let i = Sym.fresh ~name:"i" Types.Int in
  let j = Sym.fresh ~name:"j" Types.Int in
  let c = Sym.fresh ~name:"c" Types.Int in
  (* i -> (1, 0) *)
  (match Linear.in_index i (Var i) with
  | Some (a, b) ->
      check tbool "coeff 1" true (Linear.is_one a);
      check tbool "offset 0" true (Linear.is_zero b)
  | None -> Alcotest.fail "i is linear in i");
  (* i*c + j -> (c, j) *)
  (match Linear.in_index i ((Var i *! Var c) +! Var j) with
  | Some (a, b) ->
      check tbool "coeff c" true (Linear.coeff_equal a (Var c));
      check tbool "offset j" true (Linear.coeff_equal b (Var j))
  | None -> Alcotest.fail "row subscript is linear");
  (* j alone -> (0, j) *)
  (match Linear.in_index i (Var j) with
  | Some (a, _) -> check tbool "coeff 0" true (Linear.is_zero a)
  | None -> Alcotest.fail "free exp is linear");
  (* i*i is not linear *)
  check tbool "quadratic rejected" true (Linear.in_index i (Var i *! Var i) = None);
  (* 2*i + 3 *)
  (match Linear.in_index i ((int_ 2 *! Var i) +! int_ 3) with
  | Some (a, b) ->
      check tbool "coeff 2" true (Linear.coeff_equal a (int_ 2));
      check tbool "offset 3" true (Linear.coeff_equal b (int_ 3))
  | None -> Alcotest.fail "2i+3 is linear")

(* ---------------- stencil ---------------- *)

let xs = Input ("xs", Types.Arr Types.Float, Partitioned)

let loop_of e = match e with Loop l -> l | _ -> Alcotest.fail "expected loop"

let stencil_of_xs l =
  match Stencil.lookup (Stencil.Tinput "xs") (Stencil.of_loop l) with
  | Some s -> s
  | None -> Alcotest.fail "xs not read"

let test_stencil_interval () =
  let l = loop_of (collect ~size:(Len xs) (fun i -> read xs i *. float_ 2.0)) in
  check stencil "element access" Stencil.Interval (stencil_of_xs l)

let test_stencil_const () =
  let l = loop_of (collect ~size:(int_ 10) (fun _ -> read xs (int_ 3))) in
  check stencil "constant access" Stencil.Const (stencil_of_xs l)

let test_stencil_all () =
  (* every iteration sums the whole array *)
  let l =
    loop_of
      (collect ~size:(int_ 4) (fun _ ->
           fsum ~size:(Len xs) (fun j -> read xs j)))
  in
  check stencil "whole-collection access" Stencil.All (stencil_of_xs l)

let test_stencil_unknown () =
  let perm = Input ("perm", Types.Arr Types.Int, Local) in
  let l = loop_of (collect ~size:(Len xs) (fun i -> read xs (Read (perm, i)))) in
  check stencil "data-dependent access" Stencil.Unknown (stencil_of_xs l)

let test_stencil_row () =
  (* row access: xs(i*cols + j) with the inner loop sweeping exactly cols *)
  let cols = int_ 10 in
  let l =
    loop_of
      (collect ~size:(int_ 50) (fun i ->
           fsum ~size:cols (fun j -> read xs ((i *! cols) +! j))))
  in
  check stencil "row access" Stencil.Interval (stencil_of_xs l);
  (* mismatched sweep: inner loop is narrower than the stride *)
  let l2 =
    loop_of
      (collect ~size:(int_ 50) (fun i ->
           fsum ~size:(int_ 5) (fun j -> read xs ((i *! cols) +! j))))
  in
  check stencil "partial row is not Interval" Stencil.Unknown (stencil_of_xs l2)

let test_stencil_column () =
  (* column access xs(j*cols + i): stride in the inner index — every outer
     iteration touches the whole array *)
  let cols = int_ 10 in
  let l =
    loop_of
      (collect ~size:cols (fun i ->
           fsum ~size:(int_ 50) (fun j -> read xs ((j *! cols) +! i))))
  in
  (* relative to the outer index the access is linear with coefficient 1
     but the inner sweep has stride cols: must not be classified Interval *)
  check tbool "column access is not Interval" true
    (stencil_of_xs l <> Stencil.Interval)

let test_stencil_join () =
  check stencil "join const interval" Stencil.Interval
    (Stencil.join Stencil.Const Stencil.Interval);
  check stencil "join interval unknown" Stencil.Unknown
    (Stencil.join Stencil.Interval Stencil.Unknown);
  (* join is commutative, associative, idempotent *)
  let all = Stencil.[ Interval; Const; All; Unknown ] in
  List.iter
    (fun a ->
      check stencil "idempotent" a (Stencil.join a a);
      List.iter
        (fun b ->
          check stencil "commutative" (Stencil.join a b) (Stencil.join b a);
          List.iter
            (fun c ->
              check stencil "associative"
                (Stencil.join a (Stencil.join b c))
                (Stencil.join (Stencil.join a b) c))
            all)
        all)
    all

let test_global_join () =
  (* one loop reads by element, another reads the whole thing: the global
     stencil must be the join (All) *)
  let e =
    bind ~ty:(Types.Arr Types.Float)
      (map_arr xs (fun v -> v *. float_ 2.0))
      (fun _ ->
        collect ~size:(int_ 3) (fun _ -> fsum ~size:(Len xs) (fun j -> read xs j)))
  in
  match Stencil.lookup (Stencil.Tinput "xs") (Stencil.global e) with
  | Some s -> check stencil "global join" Stencil.All s
  | None -> Alcotest.fail "xs not found globally"

(* ---------------- partitioning ---------------- *)

let mini_kmeans ~k =
  (* data : partitioned; per-cluster sums via conditional reduce over the
     whole dataset — the shared-memory k-means shape of Figure 1 *)
  let data = Sym.fresh ~name:"data" (Types.Arr Types.Float) in
  let asg = Sym.fresh ~name:"assigned" (Types.Arr Types.Int) in
  Let
    ( data,
      Input ("data", Types.Arr Types.Float, Partitioned),
      Let
        ( asg,
          collect ~size:(len (Var data)) (fun i ->
              f2i (read (Var data) i) %! int_ k),
          collect ~size:(int_ k) (fun kk ->
              fsum
                ~cond:(fun j -> read (Var asg) j =! kk)
                ~size:(len (Var data))
                (fun j -> read (Var data) j)) ) )

let test_partition_seeds () =
  let e = mini_kmeans ~k:3 in
  let r = Partition.analyze ~transforms:[] e in
  check tbool "data partitioned" true
    (Partition.layout_of (Stencil.Tinput "data") r.Partition.layouts = Partitioned)

let test_partition_propagates () =
  (* a map over partitioned data is partitioned; a reduce is local *)
  let data = Sym.fresh ~name:"d" (Types.Arr Types.Float) in
  let e =
    Let
      ( data,
        Input ("data", Types.Arr Types.Float, Partitioned),
        bind ~name:"m" ~ty:(Types.Arr Types.Float)
          (map_arr (Var data) (fun v -> v *. float_ 2.0))
          (fun m ->
            bind ~name:"red" ~ty:Types.Float
              (fsum ~size:(len m) (fun i -> read m i))
              (fun s -> s)) )
  in
  (* analyze the unoptimized program so the intermediate map survives *)
  let r = Partition.analyze ~transforms:[] ~reoptimize:(fun e -> e) e in
  let find name =
    List.find_map
      (fun (t, l) ->
        match t with
        | Stencil.Tsym s when String.equal (Sym.name s) name -> Some l
        | _ -> None)
      r.Partition.layouts
  in
  check tbool "map output partitioned" true (find "m" = Some Partitioned);
  check tbool "reduce output local" true (find "red" = Some Local);
  check tbool "data itself partitioned" true (find "d" = Some Partitioned)

let test_partition_triggers_conditional_reduce () =
  let e = mini_kmeans ~k:3 in
  let r = Partition.analyze e in
  check tbool "conditional-reduce applied" true
    (List.mem "conditional-reduce" r.Partition.rewrites_applied);
  (* after the rewrite no partitioned collection has a bad stencil *)
  check tbool "no remote-access warnings" true
    (List.for_all
       (function Partition.Remote_access _ -> false | _ -> true)
       r.Partition.warnings);
  (* and the rewritten program computes the same result *)
  let inputs = [ ("data", Dmll_interp.Value.of_float_array [| 0.; 1.; 2.; 3.; 4.; 5. |]) ] in
  check tbool "rewritten program equivalent" true
    (Dmll_interp.Value.approx_equal
       (Dmll_interp.Interp.run ~inputs e)
       (Dmll_interp.Interp.run ~inputs r.Partition.program))

let test_partition_fallback_warning () =
  (* a genuine gather: no rewrite applies, so the runtime must move data *)
  let perm = Input ("perm", Types.Arr Types.Int, Local) in
  let e = collect ~size:(Len xs) (fun i -> read xs (Read (perm, i))) in
  let r = Partition.analyze e in
  check tbool "remote access warned" true
    (List.exists
       (function Partition.Remote_access (Stencil.Tinput "xs", _) -> true | _ -> false)
       r.Partition.warnings)

let test_partition_sequential_warning () =
  let e = Read (xs, int_ 0) in
  let r = Partition.analyze ~transforms:[] e in
  check tbool "sequential deref warned" true
    (List.exists
       (function Partition.Sequential_on_partitioned _ -> true | _ -> false)
       r.Partition.warnings);
  (* Len is whitelisted: no warning *)
  let r2 = Partition.analyze ~transforms:[] (Len xs) in
  check tint "len draws no warning" 0 (List.length r2.Partition.warnings)

let test_co_partitioning () =
  let ys = Input ("ys", Types.Arr Types.Float, Partitioned) in
  let e = zip_with xs ys ( +. ) in
  let r = Partition.analyze ~transforms:[] e in
  check tbool "xs and ys co-partitioned" true
    (List.exists
       (fun (a, b) ->
         let n = Stencil.target_to_string in
         (n a = "xs" && n b = "ys") || (n a = "ys" && n b = "xs"))
       r.Partition.co_partitioned)

(* ---------------- cost ---------------- *)

let test_cost_basics () =
  let l = loop_of (fsum ~size:(Len xs) (fun i -> read xs i *. read xs i)) in
  let c = Cost.loop_per_iter l in
  check tbool "flops counted" true (c.Cost.flops > 1.0);
  check tbool "reads counted" true (c.Cost.bytes_read >= 16.0)

let test_cost_scaling () =
  let ev = Cost.size_evaluator [ ("xs", 1000) ] in
  let e = fsum ~size:(Len xs) (fun i -> read xs i) in
  let c = Cost.of_program ~eval_size:ev e in
  (* 1000 elements, 8 bytes each *)
  check tbool "total read volume" true
    (c.Cost.bytes_read >= 8000.0 && c.Cost.bytes_read < 16000.0);
  let nested =
    collect ~size:(int_ 10) (fun _ -> fsum ~size:(Len xs) (fun i -> read xs i))
  in
  let cn = Cost.of_program ~eval_size:ev nested in
  check tbool "nested loop multiplies" true (cn.Cost.bytes_read >= 80000.0)

let test_size_evaluator () =
  let ev = Cost.size_evaluator [ ("xs", 42) ] in
  check tbool "const" true (ev (int_ 7) = Some 7);
  check tbool "len input" true (ev (Len xs) = Some 42);
  check tbool "product" true (ev (Len xs *! int_ 2) = Some 84);
  check tbool "unknown" true (ev (Var (Sym.fresh Types.Int)) = None)

let () =
  Alcotest.run "analysis"
    [ ("linear", [ Alcotest.test_case "affine forms" `Quick test_linear_forms ]);
      ( "stencil",
        [ Alcotest.test_case "interval" `Quick test_stencil_interval;
          Alcotest.test_case "const" `Quick test_stencil_const;
          Alcotest.test_case "all" `Quick test_stencil_all;
          Alcotest.test_case "unknown" `Quick test_stencil_unknown;
          Alcotest.test_case "row" `Quick test_stencil_row;
          Alcotest.test_case "column" `Quick test_stencil_column;
          Alcotest.test_case "join lattice" `Quick test_stencil_join;
          Alcotest.test_case "global join" `Quick test_global_join;
        ] );
      ( "partition",
        [ Alcotest.test_case "seeds" `Quick test_partition_seeds;
          Alcotest.test_case "propagation" `Quick test_partition_propagates;
          Alcotest.test_case "triggers conditional-reduce" `Quick
            test_partition_triggers_conditional_reduce;
          Alcotest.test_case "fallback warning" `Quick test_partition_fallback_warning;
          Alcotest.test_case "sequential warning" `Quick test_partition_sequential_warning;
          Alcotest.test_case "co-partitioning" `Quick test_co_partitioning;
        ] );
      ( "cost",
        [ Alcotest.test_case "basics" `Quick test_cost_basics;
          Alcotest.test_case "scaling" `Quick test_cost_scaling;
          Alcotest.test_case "size evaluator" `Quick test_size_evaluator;
        ] );
    ]

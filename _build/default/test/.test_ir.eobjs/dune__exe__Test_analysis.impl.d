test/test_analysis.ml: Alcotest Builder Cost Dmll_analysis Dmll_interp Dmll_ir Exp Linear List Partition Stencil String Sym Types

test/test_baselines.ml: Alcotest Array Dimmwitted Dmll_apps Dmll_baselines Dmll_data Dmll_graph Float List Minigraph Minispark Spark_apps

test/test_data.ml: Alcotest Array Dmll_data Dmll_graph Dmll_util Float Hashtbl List QCheck QCheck_alcotest Stdlib

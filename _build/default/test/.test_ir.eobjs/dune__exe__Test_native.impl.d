test/test_native.ml: Alcotest Array Dmll Dmll_apps Dmll_backend Dmll_data Dmll_graph Dmll_interp Interp Lazy Printf Value

test/test_dsl.ml: Alcotest Array Dmll_dsl Dmll_interp Dmll_ir Exp Fmt Interp List Typecheck Value

test/test_core.ml: Alcotest Array Dmll Dmll_analysis Dmll_apps Dmll_data Dmll_dsl Dmll_interp Dmll_ir Dmll_machine Dmll_runtime Dmll_testgen Float List QCheck QCheck_alcotest String

test/test_ir.ml: Alcotest Builder Dmll_ir Dmll_testgen Exp Fmt List Pp QCheck QCheck_alcotest String Sym Typecheck Types

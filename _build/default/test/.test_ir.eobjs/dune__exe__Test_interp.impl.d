test/test_interp.ml: Alcotest Array Builder Dmll_interp Dmll_ir Dmll_testgen Exp Float Fmt Interp Prim QCheck QCheck_alcotest Sym Types Value

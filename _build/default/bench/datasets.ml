(* Shared benchmark datasets, generated once per process.

   Scales are reduced from the paper's (which used a terabyte-class NUMA
   box); EXPERIMENTS.md records the mapping.  Everything is deterministic
   (seeded SplitMix64). *)

module V = Dmll_interp.Value

(* ---------------- machine-learning matrices ---------------- *)

let ml_rows = 20_000
let ml_cols = 20
let kmeans_k = 10

let ml_data = lazy (Dmll_data.Gaussian.generate ~rows:ml_rows ~cols:ml_cols ~classes:kmeans_k ())

let centroids = lazy (Dmll_data.Gaussian.random_centroids ~k:kmeans_k (Lazy.force ml_data))

let theta0 = Array.make ml_cols 0.05

(* smaller instance for the many-configuration sweeps (Figure 7) *)
let ml_rows_small = 8_000
let ml_small =
  lazy (Dmll_data.Gaussian.generate ~rows:ml_rows_small ~cols:ml_cols ~classes:kmeans_k ())

let centroids_small =
  lazy (Dmll_data.Gaussian.random_centroids ~k:kmeans_k (Lazy.force ml_small))

(* a 10x dataset for the Figure-8 size sweep *)
let ml_big = lazy (Dmll_data.Gaussian.generate ~rows:(4 * ml_rows) ~cols:ml_cols ~classes:kmeans_k ())

(* ---------------- TPC-H ---------------- *)

let q1_rows = 40_000
let q1_table = lazy (Dmll_data.Tpch.generate ~rows:q1_rows ())

(* ---------------- genes ---------------- *)

let gene_reads = 60_000
let genes = lazy (Dmll_data.Genes.generate ~reads:gene_reads ~barcodes:2_000 ())

(* ---------------- graphs ---------------- *)

let pr_graph =
  lazy (Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:13 ~edge_factor:8 ()))

let tri_graph =
  lazy
    (Dmll_graph.Csr.of_edges
       (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:10 ~edge_factor:4 ())))

(* ---------------- factor graph ---------------- *)

let gibbs_vars = 30_000
let factor_graph =
  lazy (Dmll_data.Factor_graph.generate ~vars:gibbs_vars ~factors:(3 * gibbs_vars) ())

let gibbs_state = lazy (Dmll_data.Factor_graph.initial_state (Lazy.force factor_graph))

let gibbs_rand ~replicas =
  Dmll_data.Factor_graph.sweep_randoms ~sweeps:replicas (Lazy.force factor_graph)

(* Table 1 of the paper: programming model features and hardware targets
   of the compared systems.  Qualitative, reproduced verbatim; the DMLL
   row is what this repository implements (each bullet is backed by code:
   see the module references printed below). *)

let t = Dmll_util.Table.create

let run () =
  let tbl =
    t ~title:"Table 1: programming model features and hardware targets"
      ~header:
        [ "System"; "RichPar"; "NestedProg"; "NestedPar"; "MultiColl"; "RandRead";
          "Multicore"; "NUMA"; "Clusters"; "GPUs" ]
      ()
  in
  let row name fs = Dmll_util.Table.add_row tbl (name :: fs) in
  let y = "x" and n = "" in
  row "MapReduce" [ n; n; n; n; n; n; n; y; n ];
  row "DryadLINQ" [ y; n; n; n; n; n; n; y; n ];
  row "Thrust" [ y; n; n; n; n; y; n; n; y ];
  row "Scala Collections" [ y; y; y; y; y; y; n; n; n ];
  row "Delite" [ y; y; y; y; y; y; n; n; y ];
  row "Spark" [ n; n; n; n; n; y; n; y; n ];
  row "Lime" [ n; y; y; n; y; y; n; n; y ];
  row "PowerGraph" [ n; n; n; n; y; y; n; y; n ];
  row "Dandelion" [ y; y; n; n; n; y; n; y; y ];
  row "DMLL (this repo)" [ y; y; y; y; y; y; y; y; y ];
  Dmll_util.Table.print tbl;
  print_endline
    "DMLL row backing: rich patterns = Dmll_ir.Exp generators; nested\n\
     programming/parallelism = nested Loop values + Exec_domains/Sim_numa\n\
     hierarchical chunking; multiple collections = zip_with & multi-input\n\
     loops; random reads = Unknown stencil + Dist_array remote-read traps;\n\
     NUMA/cluster/GPU = Sim_numa, Sim_cluster, Sim_gpu device models."

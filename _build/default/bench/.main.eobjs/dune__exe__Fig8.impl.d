bench/fig8.ml: Array Datasets Dmll Dmll_apps Dmll_baselines Dmll_data Dmll_graph Dmll_interp Dmll_machine Dmll_runtime Dmll_util Lazy List Printf

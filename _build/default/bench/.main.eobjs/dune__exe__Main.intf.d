bench/main.mli:

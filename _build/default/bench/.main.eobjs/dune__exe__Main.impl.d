bench/main.ml: Ablation Array Bechamel_suite Dmll_util Fig6 Fig7 Fig8 List Printf String Sys Table1 Table2

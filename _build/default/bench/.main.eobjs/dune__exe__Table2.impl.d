bench/table2.ml: Array Datasets Dmll Dmll_apps Dmll_backend Dmll_data Dmll_graph Dmll_interp Dmll_ir Dmll_util Lazy List Printf Stdlib String

bench/ablation.ml: Array Dmll Dmll_apps Dmll_backend Dmll_data Dmll_interp Dmll_ir Dmll_opt Dmll_util Float List Printf

bench/fig6.ml: Datasets Dmll Dmll_apps Dmll_data Dmll_interp Dmll_machine Dmll_opt Dmll_runtime Dmll_util Lazy List

bench/fig7.ml: Datasets Dmll Dmll_apps Dmll_baselines Dmll_data Dmll_graph Dmll_interp Dmll_ir Dmll_machine Dmll_opt Dmll_runtime Dmll_util Lazy List Printf

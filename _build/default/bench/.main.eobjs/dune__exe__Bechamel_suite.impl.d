bench/bechamel_suite.ml: Analyze Array Bechamel Benchmark Dmll Dmll_apps Dmll_backend Dmll_data Dmll_graph Dmll_interp Dmll_util Hashtbl Instance List Measure Printf Staged Test Time Toolkit

bench/table1.ml: Dmll_util

bench/datasets.ml: Array Dmll_data Dmll_graph Dmll_interp Lazy

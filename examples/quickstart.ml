(* Quickstart: write an implicitly parallel analytics query against the
   DMLL DSL, compile it, inspect what the compiler did, and run it.

   The query, over a synthetic sales log: total and average revenue per
   region, for sales above a price threshold.  One groupBy-aggregate
   pipeline — the same shape as the paper's §3.2 SQL example — which the
   compiler fuses into a single traversal of the data.

   Run with:  dune exec examples/quickstart.exe *)

module V = Dmll_interp.Value

(* ---- 1. Describe the data source ---------------------------------- *)

(* A "sales" table arriving as an array of structs.  Annotating it
   Partitioned tells the compiler this is the big dataset to distribute
   (paper §4.1); everything else is derived automatically. *)
let sale_ty =
  Dmll_ir.Types.Struct
    ( "sale",
      [ ("region", Dmll_ir.Types.Int);
        ("price", Dmll_ir.Types.Float);
        ("units", Dmll_ir.Types.Int);
      ] )

(* ---- 2. Write the query against the DSL --------------------------- *)

let query () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let sales = input_struct_arr ~layout:Dmll_ir.Exp.Partitioned "sales" sale_ty in
  let body =
    (* keep sales above the threshold *)
    let$ big = filter sales (fun s -> field s "price" >= float 100.0) in
    (* group them by region *)
    let$ by_region = group_by big ~key:(fun s -> field s "region") in
    (* per region: total revenue and average price *)
    tabulate (buckets by_region) (fun r ->
        let revenue =
          sum_range
            (length (bucket_value by_region r))
            (fun i ->
              let s = get (bucket_value by_region r) i in
              field s "price" *. to_float (field s "units"))
        in
        let avg_price =
          sum_range
            (length (bucket_value by_region r))
            (fun i -> field (get (bucket_value by_region r) i) "price")
          /. to_float (length (bucket_value by_region r))
        in
        pair (bucket_key by_region r) (pair revenue avg_price))
  in
  reveal body

(* ---- 3. Generate some data ---------------------------------------- *)

let make_sales n =
  let rng = Dmll_util.Prng.create 42 in
  V.Varr
    (V.Ga
       (Array.init n (fun _ ->
            V.Vstruct
              [| ("region", V.Vint (Dmll_util.Prng.int rng 5));
                 ("price", V.Vfloat (Dmll_util.Prng.float_range rng 10.0 500.0));
                 ("units", V.Vint (1 + Dmll_util.Prng.int rng 9));
              |])))

(* ---- 4. Compile, inspect, run ------------------------------------- *)

let () =
  let program = query () in
  let cfg = Dmll.Config.default in
  let compiled = Dmll.compile_with cfg program in
  print_endline "The compiler applied:";
  List.iter (Printf.printf "  - %s\n") (Dmll.optimizations compiled);
  (* after AoS->SoA the program wants columnar inputs; for this demo we run
     the pre-SoA program on the struct rows via the interpreter and the
     optimized program on columns via the compiled backend, and check they
     agree. *)
  let sales = make_sales 10_000 in
  let reference = Dmll_interp.Interp.run ~inputs:[ ("sales", sales) ] program in
  (* split columns the way a real loader would after dead-field elimination *)
  let col name f =
    (name, V.Varr (V.Ga (Array.init (V.length sales) (fun i -> f (V.get sales i)))))
  in
  let columns =
    [ col "sales.region" (fun s -> V.struct_field s "region");
      col "sales.price" (fun s -> V.struct_field s "price");
      col "sales.units" (fun s -> V.struct_field s "units");
    ]
  in
  let fast = (Dmll.execute cfg compiled ~inputs:columns).Dmll.value in
  assert (V.approx_equal reference fast);
  print_endline "\nRevenue by region (optimized single-traversal execution):";
  for r = 0 to V.length fast - 1 do
    match V.get fast r with
    | V.Vtup [| V.Vint region; V.Vtup [| V.Vfloat rev; V.Vfloat avg |] |] ->
        Printf.printf "  region %d: revenue %12.2f  avg price %7.2f\n" region rev avg
    | _ -> assert false
  done;
  print_endline "\n(reference interpreter and compiled backend agree)"

(* Graph analytics: PageRank in the pull and push models.

   OptiGraph-style applications pick a model of computation per target
   (paper §6.2): pull (gather from in-neighbors) is natural in shared
   memory, push (scatter contributions, i.e. an edge-parallel BucketReduce
   keyed by target) is the distributed formulation.  This example runs
   both on an R-MAT graph, confirms they agree with each other and with
   the hand-optimized kernels, and compares the NUMA-machine and cluster
   cost models — reproducing the paper's observation that "in a NUMA
   machine, accessing remote portions of the graph is still relatively
   fast" compared to shipping it over a cluster network.

   Run with:  dune exec examples/pagerank_graph.exe *)

module V = Dmll_interp.Value
module R = Dmll_runtime

let () =
  let g = Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:12 ~edge_factor:8 ()) in
  Printf.printf "R-MAT graph: %d vertices, %d edges\n" g.Dmll_graph.Csr.nv
    g.Dmll_graph.Csr.ne;
  let ranks = Dmll_apps.Pagerank.initial_ranks g in
  let inputs = Dmll_apps.Pagerank.inputs g ~ranks in

  let cfg = Dmll.Config.default in
  let timed cfg c =
    let r = Dmll.execute cfg c ~inputs in
    (r.Dmll.value, r.Dmll.seconds)
  in
  let pull = Dmll.compile_with cfg (Dmll_apps.Pagerank.program_pull ~nv:g.Dmll_graph.Csr.nv ()) in
  let push = Dmll.compile_with cfg (Dmll_apps.Pagerank.program_push ~nv:g.Dmll_graph.Csr.nv ()) in

  let v_pull, t_pull = timed cfg pull in
  let v_push, t_push = timed cfg push in
  Printf.printf "pull iteration (sequential): %8s\n" (Dmll_util.Table.fmt_time t_pull);
  Printf.printf "push iteration (sequential): %8s\n" (Dmll_util.Table.fmt_time t_push);
  assert (V.approx_equal ~eps:1e-9 v_pull v_push);

  (* hand-optimized kernel agreement *)
  let expected = Array.make g.Dmll_graph.Csr.nv 0.0 in
  Dmll_apps.Pagerank.handopt_pull g ranks expected;
  let got = V.to_float_array v_pull in
  Array.iteri (fun i x -> assert (Float.abs (x -. expected.(i)) < 1e-9)) got;
  print_endline "pull = push = hand-optimized kernel";

  (* the pull model's rank reads are data-dependent: the partitioning
     analysis reports the fallback *)
  (match Dmll.warnings pull with
  | [] -> print_endline "no warnings (unexpected for pull)"
  | ws ->
      print_endline "\npartitioning warnings for the pull model:";
      List.iter (Printf.printf "  ! %s\n") ws);

  (* NUMA machine vs cluster for the communication-heavy pull model *)
  let numa_cfg =
    { R.Sim_numa.machine = Dmll_machine.Machine.stanford_numa;
      threads = 48;
      mode = R.Sim_numa.Numa_aware;
    }
  in
  let cfg_numa = Dmll.Config.with_target (Dmll.Numa numa_cfg) cfg in
  let c_numa = Dmll.compile_with cfg_numa (Dmll_apps.Pagerank.program_pull ~nv:g.Dmll_graph.Csr.nv ()) in
  let _, t_numa = timed cfg_numa c_numa in
  let cfg_cluster =
    Dmll.Config.with_target
      (Dmll.Cluster
         { R.Sim_cluster.default_config with
           cluster = Dmll_machine.Machine.gpu_cluster;
         })
      cfg
  in
  let c_cluster =
    Dmll.compile_with cfg_cluster
      (Dmll_apps.Pagerank.program_push ~nv:g.Dmll_graph.Csr.nv ())
  in
  let _, t_cluster = timed cfg_cluster c_cluster in
  Printf.printf "\nper-iteration, simulated:\n";
  Printf.printf "  48-core NUMA machine: %8s\n" (Dmll_util.Table.fmt_time t_numa);
  Printf.printf "  4-node cluster:       %8s\n" (Dmll_util.Table.fmt_time t_cluster);
  if t_numa < t_cluster then
    print_endline
      "  -> the big-memory NUMA machine beats the cluster for graph analytics,\n\
      \     as the paper reports (Section 6.2)"

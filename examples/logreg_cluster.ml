(* Logistic regression: one source, three very different machines.

   The program is the textbook per-feature formulation of paper §3.2.
   This example shows the two Figure-3 loop interchanges doing their jobs:

   - for the 20-node cluster, Column-to-Row restructures the program to a
     single pass over the (distributed) samples;
   - for the GPU, Row-to-Column inverts it again inside the kernel so the
     reduction temporaries are scalars and fit in shared memory, and the
     input is transposed on transfer for coalescing.

   Also prints the generated CUDA for the curious.

   Run with:  dune exec examples/logreg_cluster.exe *)

module V = Dmll_interp.Value
module R = Dmll_runtime

let rows = 20_000
let cols = 16
let alpha = 0.01

let () =
  let data = Dmll_data.Gaussian.generate ~rows ~cols ~classes:2 () in
  let theta = Array.make cols 0.05 in
  let inputs = Dmll_apps.Logreg.inputs data ~theta in
  let program = Dmll_apps.Logreg.program ~rows ~cols ~alpha () in

  (* ------- sequential reference ------------------------------------ *)
  let cfg = Dmll.Config.default in
  let timed cfg c =
    let r = Dmll.execute cfg c ~inputs in
    (r.Dmll.value, r.Dmll.seconds)
  in
  let seq = Dmll.compile_with cfg program in
  Printf.printf "CPU optimizations: %s\n" (String.concat ", " (Dmll.optimizations seq));
  let v_seq, t_seq = timed cfg seq in
  Printf.printf "sequential:        %8s\n" (Dmll_util.Table.fmt_time t_seq);

  (* ------- simulated 20-node EC2 cluster --------------------------- *)
  let cfg_cl = Dmll.Config.with_target (Dmll.Cluster R.Sim_cluster.default_config) cfg in
  let v_cl, t_cl = timed cfg_cl (Dmll.compile_with cfg_cl program) in
  assert (V.approx_equal ~eps:1e-6 v_seq v_cl);
  Printf.printf "20-node cluster:   %8s (simulated, one step)\n"
    (Dmll_util.Table.fmt_time t_cl);

  (* ------- simulated GPU, with and without the transformations ----- *)
  let gpu opts =
    let gcfg = Dmll.Config.with_target (Dmll.Gpu opts) cfg in
    let v, t = timed gcfg (Dmll.compile_with gcfg program) in
    assert (V.approx_equal ~eps:1e-6 v_seq v);
    t
  in
  let naive = gpu { R.Sim_gpu.transpose = false; row_to_column = false } in
  let transposed = gpu { R.Sim_gpu.transpose = true; row_to_column = false } in
  let both = gpu { R.Sim_gpu.transpose = true; row_to_column = true } in
  Printf.printf "GPU as written:    %8s (vector reduce, uncoalesced)\n"
    (Dmll_util.Table.fmt_time naive);
  Printf.printf "GPU + transpose:   %8s (%.1fx)\n"
    (Dmll_util.Table.fmt_time transposed) (naive /. transposed);
  Printf.printf "GPU + both:        %8s (%.1fx)\n"
    (Dmll_util.Table.fmt_time both) (naive /. both);

  (* ------- peek at the generated CUDA ------------------------------- *)
  let gpu_compiled =
    Dmll.compile_with
      (Dmll.Config.with_target
         (Dmll.Gpu { R.Sim_gpu.transpose = true; row_to_column = true })
         cfg)
      program
  in
  print_endline "\n--- generated CUDA (excerpt) ---";
  let cuda = Dmll.codegen `Cuda gpu_compiled in
  String.split_on_char '\n' cuda
  |> List.filteri (fun i _ -> i < 24)
  |> List.iter print_endline;
  print_endline "..."

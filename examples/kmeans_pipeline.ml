(* k-means through the whole paper pipeline.

   Walks the exact story of the paper's Figures 1 -> 4 -> 5: the program
   is written the "shared-memory way" (conditional reductions over the
   whole dataset), the partitioning analysis flags the access pattern, the
   Conditional Reduce rule restructures it, fusion collapses it to a
   single traversal — and then the same source runs sequentially, on real
   OCaml domains, on a simulated 4-socket NUMA machine, and on a simulated
   GPU, producing identical centroids everywhere.

   Run with:  dune exec examples/kmeans_pipeline.exe *)

module V = Dmll_interp.Value
module R = Dmll_runtime

let rows = 20_000
let cols = 16
let k = 8

let () =
  let data = Dmll_data.Gaussian.generate ~rows ~cols ~classes:k () in
  let centroids = Dmll_data.Gaussian.random_centroids ~k data in
  let inputs = Dmll_apps.Kmeans.inputs data ~centroids in
  let program = Dmll_apps.Kmeans.program ~rows ~cols ~k () in

  (* --- what the compiler does ------------------------------------- *)
  let timed cfg c =
    let r = Dmll.execute cfg c ~inputs in
    (r.Dmll.value, r.Dmll.seconds)
  in
  let cfg_seq = Dmll.Config.default in
  let compiled = Dmll.compile_with cfg_seq program in
  Printf.printf "Optimizations: %s\n"
    (String.concat ", " (Dmll.optimizations compiled));
  Printf.printf "Data layouts:\n";
  List.iter
    (fun (t, l) ->
      Printf.printf "  %-12s %s\n"
        (Dmll_analysis.Stencil.target_to_string t)
        (match l with Dmll_ir.Exp.Partitioned -> "Partitioned" | _ -> "Local"))
    (List.filter
       (fun (t, _) ->
         match t with Dmll_analysis.Stencil.Tinput _ -> true | _ -> false)
       compiled.Dmll.partition.Dmll_analysis.Partition.layouts);

  (* --- run the same compiled program everywhere -------------------- *)
  let seq, seq_t = timed cfg_seq compiled in
  Printf.printf "\nsequential (real):        %8s\n" (Dmll_util.Table.fmt_time seq_t);

  (* real OCaml-domains parallelism, scaled to this machine's cores *)
  let ndom = Stdlib.min 4 (Domain.recommended_domain_count ()) in
  let cfg_mc = Dmll.Config.with_target (Dmll.Multicore ndom) cfg_seq in
  let par, par_t = timed cfg_mc (Dmll.compile_with cfg_mc program) in
  Printf.printf "%d domain(s) (real):       %8s\n" ndom (Dmll_util.Table.fmt_time par_t);
  assert (V.approx_equal ~eps:1e-9 seq par);

  let numa_time threads =
    let cfg =
      { R.Sim_numa.machine = Dmll_machine.Machine.stanford_numa;
        threads;
        mode = R.Sim_numa.Numa_aware;
      }
    in
    let ncfg = Dmll.Config.with_target (Dmll.Numa cfg) cfg_seq in
    let v, t = timed ncfg (Dmll.compile_with ncfg program) in
    assert (V.approx_equal ~eps:1e-9 seq v);
    t
  in
  let t1 = numa_time 1 and t48 = numa_time 48 in
  Printf.printf "NUMA model 1 thread:      %8s\n" (Dmll_util.Table.fmt_time t1);
  Printf.printf "NUMA model 48 threads:    %8s  (%.1fx)\n"
    (Dmll_util.Table.fmt_time t48) (t1 /. t48);

  let gpu_opts = { R.Sim_gpu.transpose = true; row_to_column = true } in
  let cfg_gpu = Dmll.Config.with_target (Dmll.Gpu gpu_opts) cfg_seq in
  let gv, gt = timed cfg_gpu (Dmll.compile_with cfg_gpu program) in
  assert (V.approx_equal ~eps:1e-6 seq gv);
  Printf.printf "GPU model (transformed):  %8s\n" (Dmll_util.Table.fmt_time gt);

  (* --- and the answer matches the hand-optimized loop --------------- *)
  let reference =
    Dmll_apps.Kmeans.handopt ~data:data.Dmll_data.Gaussian.data ~rows ~cols ~k
      ~centroids
  in
  let flat = Dmll_apps.Kmeans.result_to_flat seq ~cols in
  Array.iteri
    (fun i x -> assert (Float.abs (x -. reference.(i)) < 1e-6 *. (1.0 +. Float.abs x)))
    flat;
  print_endline "\nall executors agree with the hand-optimized reference"

(** The DMLL expression language: multiloops over generator bundles.

    A {e multiloop} ({!loop}) is a single-dimensional traversal of a
    fixed-size integer range that may produce zero or more values per
    iteration.  Each multiloop carries a list of {e generators} ({!gen}) —
    [Collect], [Reduce], [BucketCollect], [BucketReduce] — which capture the
    high-level structure of the loop body and accumulate its outputs
    (paper §3.1, Figure 2).  A loop is built with a single generator; the
    horizontal-fusion pass may later merge sibling loops into one multiloop
    with several generators, whose result is then a tuple.

    The component functions of a generator (condition [cond], key [key],
    value [value], reduction [rfun]) are ordinary expressions over the
    loop's bound index symbol (and, for [rfun], two accumulator symbols).
    Keeping them separate — rather than composed into one opaque block — is
    what allows the compiler to recompose them differently per hardware
    target, e.g. two-pass allocation on GPUs versus append-to-buffer on
    CPUs. *)

type layout =
  | Local  (** allocated entirely in one memory region *)
  | Partitioned  (** spread across memory regions / cluster nodes *)

type const =
  | Cunit
  | Cbool of bool
  | Cint of int
  | Cfloat of float
  | Cstr of string

type exp =
  | Const of const
  | Var of Sym.t
  | Prim of Prim.t * exp list
  | If of exp * exp * exp
  | Let of Sym.t * exp * exp
  | Tuple of exp list
  | Proj of exp * int
  | Record of Types.ty * (string * exp) list
      (** struct construction; the type must be a [Types.Struct] *)
  | Field of exp * string
  | Len of exp  (** length of an [Arr], or bucket count of a [Map] *)
  | Read of exp * exp
      (** positional read: [Read (arr, i)] is the i-th element of an [Arr],
          or the i-th bucket's value of a [Map] *)
  | MapRead of exp * exp * exp option
      (** keyed read of a [Map]; the optional expression is a default for
          missing keys (used by the Conditional-Reduce rewrite) *)
  | KeyAt of exp * exp  (** the i-th bucket's key of a [Map] *)
  | Loop of loop
  | Input of string * Types.ty * layout
      (** a named data source (e.g. a file reader), annotated by the user
          with its desired layout — the seed of the partitioning analysis *)
  | Extern of extern

and loop = { size : exp; idx : Sym.t; gens : gen list }

and gen =
  | Collect of { cond : exp option; value : exp }
  | Reduce of reduce_gen
  | BucketCollect of { cond : exp option; key : exp; value : exp }
  | BucketReduce of bucket_reduce_gen

and reduce_gen = {
  cond : exp option;
  value : exp;
  a : Sym.t;  (** left accumulator symbol bound in [rfun] *)
  b : Sym.t;  (** right accumulator symbol bound in [rfun] *)
  rfun : exp;
  init : exp;  (** identity of [rfun] *)
}

and bucket_reduce_gen = {
  cond : exp option;
  key : exp;
  value : exp;
  a : Sym.t;
  b : Sym.t;
  rfun : exp;
  init : exp;
}

and extern = {
  ename : string;
  eargs : exp list;
  ety : Types.ty;
  whitelisted : bool;
      (** whitelisted externs are known-safe on partitioned data, e.g.
          reading a size field (paper §4.3) *)
}

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let unit_ = Const Cunit
let bool_ b = Const (Cbool b)
let int_ i = Const (Cint i)
let float_ f = Const (Cfloat f)
let str_ s = Const (Cstr s)
let var s = Var s

let let_ sym bound body = Let (sym, bound, body)

(** Bind [bound] to a fresh symbol and build the body from its variable. *)
let bind ?(name = "t") ~ty bound k =
  let s = Sym.fresh ~name ty in
  Let (s, bound, k (Var s))

let loop1 ~size ~idx gen = Loop { size; idx; gens = [ gen ] }

(* ------------------------------------------------------------------ *)
(* Generator accessors                                                 *)
(* ------------------------------------------------------------------ *)

let gen_cond = function
  | Collect { cond; _ } | BucketCollect { cond; _ } -> cond
  | Reduce { cond; _ } -> cond
  | BucketReduce { cond; _ } -> cond

let gen_value = function
  | Collect { value; _ } | BucketCollect { value; _ } -> value
  | Reduce { value; _ } -> value
  | BucketReduce { value; _ } -> value

let gen_key = function
  | BucketCollect { key; _ } -> Some key
  | BucketReduce { key; _ } -> Some key
  | Collect _ | Reduce _ -> None

let gen_name = function
  | Collect _ -> "Collect"
  | Reduce _ -> "Reduce"
  | BucketCollect _ -> "BucketCollect"
  | BucketReduce _ -> "BucketReduce"

(** Map [f] over the non-binding component expressions of a generator:
    condition, key, value, init.  [rfun] is {e not} visited because its free
    structure involves the accumulator binders; callers that must rewrite
    [rfun] do so explicitly. *)
let map_gen_parts f = function
  | Collect { cond; value } -> Collect { cond = Option.map f cond; value = f value }
  | Reduce r ->
      Reduce { r with cond = Option.map f r.cond; value = f r.value; init = f r.init }
  | BucketCollect { cond; key; value } ->
      BucketCollect { cond = Option.map f cond; key = f key; value = f value }
  | BucketReduce r ->
      BucketReduce
        { r with cond = Option.map f r.cond; key = f r.key; value = f r.value; init = f r.init }

(* ------------------------------------------------------------------ *)
(* Generic traversal                                                   *)
(* ------------------------------------------------------------------ *)

(** Apply [f] to every immediate sub-expression (including those under
    binders — [f] receives the body of a [Let], the generator parts of a
    [Loop], and reduction functions).  Binding structure is preserved;
    callers handling scoping must track binders themselves. *)
let map_sub (f : exp -> exp) (e : exp) : exp =
  match e with
  | Const _ | Var _ | Input _ -> e
  | Prim (p, args) -> Prim (p, List.map f args)
  | If (c, t, e') -> If (f c, f t, f e')
  | Let (s, a, b) -> Let (s, f a, f b)
  | Tuple es -> Tuple (List.map f es)
  | Proj (a, i) -> Proj (f a, i)
  | Record (ty, fs) -> Record (ty, List.map (fun (n, v) -> (n, f v)) fs)
  | Field (a, n) -> Field (f a, n)
  | Len a -> Len (f a)
  | Read (a, i) -> Read (f a, f i)
  | MapRead (m, k, d) -> MapRead (f m, f k, Option.map f d)
  | KeyAt (m, i) -> KeyAt (f m, f i)
  | Loop { size; idx; gens } ->
      let map_gen g =
        let g = map_gen_parts f g in
        match g with
        | Reduce r -> Reduce { r with rfun = f r.rfun }
        | BucketReduce r -> BucketReduce { r with rfun = f r.rfun }
        | g -> g
      in
      Loop { size = f size; idx; gens = List.map map_gen gens }
  | Extern ex -> Extern { ex with eargs = List.map f ex.eargs }

(** Fold [f] over every immediate sub-expression. *)
let fold_sub (f : 'a -> exp -> 'a) (acc : 'a) (e : exp) : 'a =
  let r = ref acc in
  let g e =
    r := f !r e;
    e
  in
  ignore (map_sub g e);
  !r

(** Fold [f] over every node of [e], top-down. *)
let rec fold (f : 'a -> exp -> 'a) (acc : 'a) (e : exp) : 'a =
  fold_sub (fold f) (f acc e) e

(** [exists p e] — does any node of [e] satisfy [p]? *)
let exists p e = fold (fun acc n -> acc || p n) false e

(** Number of AST nodes; used as a termination measure in rewrite loops and
    as a size proxy by the cost model. *)
let node_count e = fold (fun n _ -> n + 1) 0 e

(* ------------------------------------------------------------------ *)
(* Free variables and substitution                                     *)
(* ------------------------------------------------------------------ *)

let rec free_vars (e : exp) : Sym.Set.t =
  match e with
  | Var s -> Sym.Set.singleton s
  | Const _ | Input _ -> Sym.Set.empty
  | Let (s, a, b) -> Sym.Set.union (free_vars a) (Sym.Set.remove s (free_vars b))
  | Loop { size; idx; gens } ->
      let gen_fv g =
        let parts =
          List.filter_map Fun.id
            [ gen_cond g; Some (gen_value g); gen_key g ]
        in
        let fv =
          List.fold_left
            (fun acc p -> Sym.Set.union acc (free_vars p))
            Sym.Set.empty parts
        in
        let fv = Sym.Set.remove idx fv in
        match g with
        | Reduce { a; b; rfun; init; _ } | BucketReduce { a; b; rfun; init; _ } ->
            let rfv = Sym.Set.remove a (Sym.Set.remove b (free_vars rfun)) in
            Sym.Set.union fv (Sym.Set.union rfv (free_vars init))
        | _ -> fv
      in
      List.fold_left
        (fun acc g -> Sym.Set.union acc (gen_fv g))
        (free_vars size) gens
  | _ -> fold_sub (fun acc sub -> Sym.Set.union acc (free_vars sub)) Sym.Set.empty e

(** Does [s] occur free in [e]? *)
let occurs s e = Sym.Set.mem s (free_vars e)

(** Number of occurrences of [s] in [e].  Symbols are globally unique, so a
    binder can never alias a distinct free symbol and no shadow-tracking is
    needed. *)
let rec count_occ s e =
  match e with
  | Var s' -> if Sym.equal s s' then 1 else 0
  | _ -> fold_sub (fun acc sub -> acc + count_occ s sub) 0 e

(** Capture-avoiding simultaneous substitution.  Because symbols are
    globally unique, capture can only arise when a caller duplicates a term
    containing binders; use {!refresh_binders} on the copy first. *)
let rec subst (m : exp Sym.Map.t) (e : exp) : exp =
  if Sym.Map.is_empty m then e
  else
    match e with
    | Var s -> ( match Sym.Map.find_opt s m with Some e' -> e' | None -> e)
    | Let (s, a, b) -> Let (s, subst m a, subst (Sym.Map.remove s m) b)
    | Loop { size; idx; gens } ->
        let m' = Sym.Map.remove idx m in
        let sub_gen g =
          let g = map_gen_parts (subst m') g in
          match g with
          | Reduce r ->
              Reduce { r with rfun = subst (Sym.Map.remove r.a (Sym.Map.remove r.b m')) r.rfun }
          | BucketReduce r ->
              BucketReduce
                { r with rfun = subst (Sym.Map.remove r.a (Sym.Map.remove r.b m')) r.rfun }
          | g -> g
        in
        Loop { size = subst m size; idx; gens = List.map sub_gen gens }
    | _ -> map_sub (subst m) e

let subst1 s replacement e = subst (Sym.Map.singleton s replacement) e

(** Freshen every binder in [e]; use before splicing a copy of [e] into
    multiple program points so the global-uniqueness invariant holds. *)
let rec refresh_binders (e : exp) : exp =
  match e with
  | Let (s, a, b) ->
      let s' = Sym.refresh s in
      Let (s', refresh_binders a, refresh_binders (subst1 s (Var s') b))
  | Loop { size; idx; gens } ->
      let idx' = Sym.refresh idx in
      let refresh_gen g =
        let g = map_gen_parts (fun p -> refresh_binders (subst1 idx (Var idx') p)) g in
        match g with
        | Reduce r ->
            let a' = Sym.refresh r.a and b' = Sym.refresh r.b in
            let rfun =
              refresh_binders
                (subst (Sym.Map.of_seq (List.to_seq [ (r.a, Var a'); (r.b, Var b') ])) r.rfun)
            in
            Reduce { r with a = a'; b = b'; rfun }
        | BucketReduce r ->
            let a' = Sym.refresh r.a and b' = Sym.refresh r.b in
            let rfun =
              refresh_binders
                (subst (Sym.Map.of_seq (List.to_seq [ (r.a, Var a'); (r.b, Var b') ])) r.rfun)
            in
            BucketReduce { r with a = a'; b = b'; rfun }
        | g -> g
      in
      Loop { size = refresh_binders size; idx = idx'; gens = List.map refresh_gen gens }
  | _ -> map_sub refresh_binders e

(* ------------------------------------------------------------------ *)
(* Alpha-equality                                                      *)
(* ------------------------------------------------------------------ *)

let const_equal a b =
  match (a, b) with
  | Cunit, Cunit -> true
  | Cbool x, Cbool y -> Bool.equal x y
  | Cint x, Cint y -> Int.equal x y
  | Cfloat x, Cfloat y -> Float.equal x y
  | Cstr x, Cstr y -> String.equal x y
  | _ -> false

(** Structural equality modulo alpha-renaming of binders. *)
let alpha_equal (e1 : exp) (e2 : exp) : bool =
  let rec go env e1 e2 =
    match (e1, e2) with
    | Const a, Const b -> const_equal a b
    | Var a, Var b -> (
        match Sym.Map.find_opt a env with
        | Some b' -> Sym.equal b b'
        | None -> Sym.equal a b)
    | Prim (p, xs), Prim (q, ys) ->
        p = q && List.length xs = List.length ys && List.for_all2 (go env) xs ys
    | If (a, b, c), If (x, y, z) -> go env a x && go env b y && go env c z
    | Let (s1, a1, b1), Let (s2, a2, b2) ->
        Types.equal (Sym.ty s1) (Sym.ty s2)
        && go env a1 a2
        && go (Sym.Map.add s1 s2 env) b1 b2
    | Tuple xs, Tuple ys ->
        List.length xs = List.length ys && List.for_all2 (go env) xs ys
    | Proj (a, i), Proj (b, j) -> i = j && go env a b
    | Record (t1, f1), Record (t2, f2) ->
        Types.equal t1 t2
        && List.length f1 = List.length f2
        && List.for_all2 (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && go env v1 v2) f1 f2
    | Field (a, n), Field (b, m) -> String.equal n m && go env a b
    | Len a, Len b -> go env a b
    | Read (a, i), Read (b, j) -> go env a b && go env i j
    | MapRead (a, k1, d1), MapRead (b, k2, d2) ->
        go env a b && go env k1 k2
        && (match (d1, d2) with
           | None, None -> true
           | Some x, Some y -> go env x y
           | _ -> false)
    | KeyAt (a, i), KeyAt (b, j) -> go env a b && go env i j
    | Input (n1, t1, l1), Input (n2, t2, l2) ->
        String.equal n1 n2 && Types.equal t1 t2 && l1 = l2
    | Extern x, Extern y ->
        String.equal x.ename y.ename
        && Types.equal x.ety y.ety
        && List.length x.eargs = List.length y.eargs
        && List.for_all2 (go env) x.eargs y.eargs
    | Loop l1, Loop l2 ->
        go env l1.size l2.size
        && List.length l1.gens = List.length l2.gens
        && (let env' = Sym.Map.add l1.idx l2.idx env in
            List.for_all2 (go_gen env') l1.gens l2.gens)
    | _ -> false
  and go_gen env g1 g2 =
    let opt env a b =
      match (a, b) with
      | None, None -> true
      | Some x, Some y -> go env x y
      | _ -> false
    in
    match (g1, g2) with
    | Collect c1, Collect c2 -> opt env c1.cond c2.cond && go env c1.value c2.value
    | BucketCollect c1, BucketCollect c2 ->
        opt env c1.cond c2.cond && go env c1.key c2.key && go env c1.value c2.value
    | Reduce r1, Reduce r2 ->
        opt env r1.cond r2.cond && go env r1.value r2.value && go env r1.init r2.init
        && go (Sym.Map.add r1.a r2.a (Sym.Map.add r1.b r2.b env)) r1.rfun r2.rfun
    | BucketReduce r1, BucketReduce r2 ->
        opt env r1.cond r2.cond && go env r1.key r2.key && go env r1.value r2.value
        && go env r1.init r2.init
        && go (Sym.Map.add r1.a r2.a (Sym.Map.add r1.b r2.b env)) r1.rfun r2.rfun
    | _ -> false
  in
  go Sym.Map.empty e1 e2

(* ------------------------------------------------------------------ *)
(* Loop census                                                         *)
(* ------------------------------------------------------------------ *)

(** All loops appearing anywhere in [e], outermost first. *)
let loops_of e =
  List.rev (fold (fun acc n -> match n with Loop l -> l :: acc | _ -> acc) [] e)

(** Is [e] free of multiloops (i.e. straight-line scalar code)? *)
let loop_free e = not (exists (function Loop _ -> true | _ -> false) e)

(* ------------------------------------------------------------------ *)
(* Let-spine liveness (last-use metadata)                              *)
(* ------------------------------------------------------------------ *)

(** The early-free marker: a whitelisted, effect-free extern the optimizer
    inserts right after a collection's last use
    ([Dmll_opt.Free_insertion]).  Whitelisting keeps it invisible to the
    sequential-deref and write-effect analyses; executors that track a
    value environment drop the freed binding when they reach the marker,
    which is what makes the memory-footprint analysis's predicted peak
    shrink {e and} the simulated resident set follow it (DESIGN.md §13). *)
let free_ename = "dmll.free"

let free_array (s : Sym.t) : exp =
  Extern { ename = free_ename; eargs = [ Var s ]; ety = Types.Unit; whitelisted = true }

(** [Some s] when [e] is the early-free marker for [s]. *)
let freed_sym (e : exp) : Sym.t option =
  match e with
  | Extern { ename; eargs = [ Var s ]; _ } when String.equal ename free_ename ->
      Some s
  | _ -> None

(** The outer let-spine as (binder, rhs) steps; the final expression is the
    last step, with no binder.  Positions index this list. *)
let spine (e : exp) : (Sym.t option * exp) list =
  let rec go acc = function
    | Let (s, rhs, body) -> go ((Some s, rhs) :: acc) body
    | e -> List.rev ((None, e) :: acc)
  in
  go [] e

(** Does this type hold collection storage anywhere (directly, or inside a
    fusion-group tuple / struct)? *)
let rec owns_collection = function
  | Types.Arr _ | Types.Map _ -> true
  | Types.Tup ts -> List.exists owns_collection ts
  | Types.Struct (_, fs) -> List.exists (fun (_, t) -> owns_collection t) fs
  | _ -> false

(** A storage root: a spine binding that owns fresh collection storage, or
    a named input.  Bindings whose right-hand side merely {e aliases}
    existing storage — a [Var], an [Input], or a [Proj]/[Field] chain over
    one (how fusion groups hand their components to later pipeline
    positions) — share their root's storage and never own any. *)
type storage = Ssym of Sym.t | Sinput of string

let storage_to_string = function Ssym s -> Sym.to_string s | Sinput n -> n

let storage_equal a b =
  match (a, b) with
  | Ssym x, Ssym y -> Sym.equal x y
  | Sinput x, Sinput y -> String.equal x y
  | _ -> false

(** Liveness of one storage root over the spine, 0-based positions.
    The storage is resident from [bound_at] through [freed_at - 1] when an
    early-free marker exists, else to the end of the program.  [last_use]
    is the last position whose step mentions the root through {e any}
    alias (so inserting a free right after it is always safe); [read] is
    false when no step ever consumes the collection beyond aliasing it —
    a dead array (rule [W-DEAD-ARRAY]). *)
type live_range = {
  storage : storage;
  ty : Types.ty;
  bound_at : int;
  last_use : int;
  read : bool;
  freed_at : int option;
}

(* The alias chain [rhs] follows, if it is a pure alias: Var / Input,
   possibly under Proj / Field projections. *)
let rec alias_base (e : exp) : [ `Sym of Sym.t | `Input of string ] option =
  match e with
  | Var s -> Some (`Sym s)
  | Input (n, _, _) -> Some (`Input n)
  | Proj (e, _) | Field (e, _) -> alias_base e
  | _ -> None

(** Live ranges of every collection-owning storage root of the spine
    (inputs are resident from position 0 — they are scattered before the
    first step runs). *)
let collection_live_ranges (e : exp) : live_range list =
  let steps = spine e in
  (* root resolution for spine symbols; aliases point at their root *)
  let roots : storage Sym.Map.t ref = ref Sym.Map.empty in
  let ranges : live_range list ref = ref [] in
  let find st = List.find_opt (fun r -> storage_equal r.storage st) !ranges in
  let update st f =
    match find st with
    | None -> ()
    | Some r ->
        ranges :=
          List.map (fun r' -> if storage_equal r'.storage st then f r else r') !ranges
  in
  let add_range storage ty bound_at =
    if find storage = None && owns_collection ty then
      ranges :=
        !ranges
        @ [ { storage; ty; bound_at; last_use = bound_at; read = false;
              freed_at = None } ]
  in
  let input_root n ty =
    add_range (Sinput n) ty 0;
    Sinput n
  in
  let use ?(read = true) pos st =
    update st (fun r ->
        { r with last_use = Stdlib.max r.last_use pos; read = r.read || read })
  in
  (* every collection storage an expression mentions: free roots via the
     alias map, plus Input nodes appearing anywhere inside *)
  let mentions pos rhs =
    Sym.Set.iter
      (fun v ->
        match Sym.Map.find_opt v !roots with
        | Some st -> use pos st
        | None -> ())
      (free_vars rhs);
    ignore
      (fold
         (fun () n ->
           match n with
           | Input (nm, ty, _) when owns_collection ty ->
               use pos (input_root nm ty)
           | _ -> ())
         () rhs)
  in
  List.iteri
    (fun pos (binder, rhs) ->
      match freed_sym rhs with
      | Some x -> (
          (* an existing marker: record the free, not a use *)
          match Sym.Map.find_opt x !roots with
          | Some st -> update st (fun r -> { r with freed_at = Some pos })
          | None -> ())
      | None -> (
          match binder with
          | Some s -> (
              match alias_base rhs with
              | Some (`Sym s') when owns_collection (Sym.ty s) -> (
                  (* alias binding: shares the root's storage; the binding
                     itself must keep the root alive (the projection reads
                     the root value when it evaluates) but is not a
                     consuming read *)
                  match Sym.Map.find_opt s' !roots with
                  | Some st ->
                      roots := Sym.Map.add s st !roots;
                      use ~read:false pos st
                  | None -> mentions pos rhs)
              | Some (`Input n) when owns_collection (Sym.ty s) ->
                  let st = input_root n (Sym.ty s) in
                  roots := Sym.Map.add s st !roots;
                  use ~read:false pos st
              | _ ->
                  if owns_collection (Sym.ty s) then begin
                    add_range (Ssym s) (Sym.ty s) pos;
                    roots := Sym.Map.add s (Ssym s) !roots
                  end;
                  mentions pos rhs)
          | None -> mentions pos rhs))
    steps;
  !ranges

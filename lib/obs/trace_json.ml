(** A dependency-free JSON reader and the Chrome [trace_event] schema
    check (DESIGN.md §12).

    Just enough JSON to validate what {!Span.to_chrome_json} emits — and
    what any Chrome-compatible viewer requires — without pulling a JSON
    library into the dependency set.  Used by the golden trace test and
    the [trace-smoke] rule of [dune build @check] (via
    [dmll_trace_check]). *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse_exn (s : string) : t =
  let pos = ref 0 in
  let len = String.length s in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < len then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail "expected %C at offset %d, got %C" c !pos (peek ());
    advance ()
  in
  let lit word v =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= len then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'u' ->
               if !pos + 4 >= len then fail "truncated \\u escape";
               let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
               (* non-ASCII escapes round-trip as '?' — schema checks only *)
               Buffer.add_char b (if code < 128 then Char.chr code else '?');
               pos := !pos + 5
           | c -> fail "bad escape \\%C" c);
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number at offset %d" start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            let key = (skip_ws (); parse_string ()) in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            if peek () = ',' then begin
              advance ();
              members ((key, v) :: acc)
            end
            else begin
              expect '}';
              List.rev ((key, v) :: acc)
            end
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            if peek () = ',' then begin
              advance ();
              elems (v :: acc)
            end
            else begin
              expect ']';
              List.rev (v :: acc)
            end
          in
          Arr (elems [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> lit "true" (Bool true)
    | 'f' -> lit "false" (Bool false)
    | 'n' -> lit "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage at offset %d" !pos;
  v

let parse (s : string) : (t, string) result =
  match parse_exn s with v -> Ok v | exception Bad m -> Error m

let member (key : string) (j : t) : t option =
  match j with Obj kvs -> List.assoc_opt key kvs | _ -> None

let keys (j : t) : string list =
  match j with Obj kvs -> List.map fst kvs | _ -> []

(* ------------------------------------------------------------------ *)
(* Chrome trace_event schema                                           *)
(* ------------------------------------------------------------------ *)

(** Validate a Chrome trace: a top-level object with a [traceEvents]
    array; every event an object with [name] (string), [ph] (string),
    [pid]/[tid] (numbers); [ph:"X"] complete events additionally carry
    numeric [ts] and non-negative [dur], and [args], when present, is an
    object.  [Error] pinpoints the first offending event. *)
let validate_chrome (text : string) : (unit, string) result =
  let ( let* ) = Result.bind in
  let* j = parse text in
  let* events =
    match member "traceEvents" j with
    | Some (Arr es) -> Ok es
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents"
  in
  let check_event i e =
    let want_str k =
      match member k e with
      | Some (Str _) -> Ok ()
      | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
    in
    let want_num k =
      match member k e with
      | Some (Num _) -> Ok ()
      | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
    in
    let* () =
      match e with
      | Obj _ -> Ok ()
      | _ -> Error (Printf.sprintf "event %d: not an object" i)
    in
    let* () = want_str "name" in
    let* () = want_str "ph" in
    let* () = want_num "pid" in
    let* () = want_num "tid" in
    let* () =
      match member "args" e with
      | None | Some (Obj _) -> Ok ()
      | Some _ -> Error (Printf.sprintf "event %d: args is not an object" i)
    in
    match member "ph" e with
    | Some (Str "X") ->
        let* () = want_num "ts" in
        let* () = want_num "dur" in
        (match member "dur" e with
        | Some (Num d) when d >= 0.0 -> Ok ()
        | _ -> Error (Printf.sprintf "event %d: negative dur" i))
    | _ -> Ok ()
  in
  let rec go i = function
    | [] -> Ok ()
    | e :: rest ->
        let* () = check_event i e in
        go (i + 1) rest
  in
  go 0 events

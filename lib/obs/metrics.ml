(** Per-run metrics registry (DESIGN.md §12).

    A [Metrics.t] is a handle to a named set of event counters and byte
    ledgers for {e one} run: the executors bump it as they work, and the
    caller who created the handle reads it afterwards.  This replaces the
    process-wide counters earlier PRs accreted (notably [Dist_array]'s
    global remote-read byte total, which had to be reset at the start of
    every [Sim_cluster.run] so back-to-back runs would not inherit each
    other's traffic): two runs with two handles can never observe each
    other, so there is nothing to reset.

    Counters are keyed by plain strings; the conventional key set is
    documented in DESIGN.md §12 ([remote_reads], [remote_read_bytes],
    [retried_reads], [degraded_reads], [broadcast_bytes],
    [replicate_bytes], [gather_bytes], [churn_bytes], [spill_bytes],
    [loops], [speculations], [replans], [restores], [replays],
    [checkpoints], [snapshot_verifications], [recovered_chunks]).
    Unknown keys are fine — the registry is a measurement surface, not a
    schema.

    All operations are thread-safe: the domain executor bumps counters
    from worker domains. *)

type t = {
  lock : Mutex.t;
  counts : (string, int) Hashtbl.t;
  bytes : (string, float) Hashtbl.t;
}

let create () : t =
  { lock = Mutex.create ();
    counts = Hashtbl.create 16;
    bytes = Hashtbl.create 16;
  }

let locked (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Bump counter [key] by [by] (default 1). *)
let incr ?(by = 1) (t : t) (key : string) : unit =
  locked t (fun () ->
      Hashtbl.replace t.counts key
        (by + Option.value ~default:0 (Hashtbl.find_opt t.counts key)))

(** Add [b] bytes to byte ledger [key]. *)
let add_bytes (t : t) (key : string) (b : float) : unit =
  if b <> 0.0 then
    locked t (fun () ->
        Hashtbl.replace t.bytes key
          (b +. Option.value ~default:0.0 (Hashtbl.find_opt t.bytes key)))

(** Raise byte ledger [key] to [b] if [b] exceeds its current value — a
    high-water-mark gauge (e.g. [peak_resident_bytes], the cluster
    executor's per-node resident-set peak, DESIGN.md §13). *)
let record_max (t : t) (key : string) (b : float) : unit =
  locked t (fun () ->
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt t.bytes key) in
      if b > cur then Hashtbl.replace t.bytes key b)

(** Current value of counter [key] (0 when never bumped). *)
let count (t : t) (key : string) : int =
  locked t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.counts key))

(** Current value of byte ledger [key] (0 when never bumped). *)
let bytes (t : t) (key : string) : float =
  locked t (fun () -> Option.value ~default:0.0 (Hashtbl.find_opt t.bytes key))

(** All counters, sorted by key. *)
let counters (t : t) : (string * int) list =
  locked t (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []))

(** All byte ledgers, sorted by key. *)
let byte_counters (t : t) : (string * float) list =
  locked t (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.bytes []))

(** Is the handle still empty (nothing recorded)? *)
let is_empty (t : t) : bool =
  locked t (fun () ->
      Hashtbl.length t.counts = 0 && Hashtbl.length t.bytes = 0)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (t : t) : string =
  let cs =
    List.map
      (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
      (counters t)
  in
  let bs =
    List.map
      (fun (k, v) -> Printf.sprintf "\"%s\":%.0f" (json_escape k) v)
      (byte_counters t)
  in
  Printf.sprintf "{\"counters\":{%s},\"bytes\":{%s}}" (String.concat "," cs)
    (String.concat "," bs)

let pp (fmt : Format.formatter) (t : t) : unit =
  let pairs =
    List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (counters t)
    @ List.map (fun (k, v) -> Printf.sprintf "%s=%.0fB" k v) (byte_counters t)
  in
  Format.pp_print_string fmt (String.concat " " pairs)

let to_string (t : t) : string = Format.asprintf "%a" pp t

(** Span-based tracer (DESIGN.md §12).

    A [Span.t] collects {e complete spans}: named, categorized intervals
    on one of two timelines —

    - the {e compile} timeline ([compile_tid]): wall-clock spans recorded
      with {!with_span} / {!emit_now} around compiler work (pipeline
      stages, optimizer rule firings, partition-analysis decisions);
    - the {e runtime} timeline ([runtime_tid]): spans on an
      externally-modeled clock (the cluster simulator's simulated
      seconds), recorded with explicit timestamps via {!emit}.

    The collected spans export as Chrome [trace_event] JSON
    ({!to_chrome_json}, load in [chrome://tracing] or Perfetto) and as a
    text self-time profile ({!profile} / {!pp_profile}).  Well-nestedness
    of the span tree is checked by {!well_nested} (property-tested, and
    relied on by the self-time computation).

    All recording operations are thread-safe. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;
  cat : string;  (** span taxonomy: see DESIGN.md §12 *)
  tid : int;
  ts_us : float;  (** start, microseconds on the span's timeline *)
  dur_us : float;
  args : (string * arg) list;
}

type t = {
  lock : Mutex.t;
  mutable recorded : span list;  (** reverse recording order *)
  mutable threads : (int * string) list;
  t0 : float;  (** wall-clock origin of the compile timeline *)
}

(** The two conventional timelines. *)
let compile_tid = 1

let runtime_tid = 2

let create () : t =
  { lock = Mutex.create ();
    recorded = [];
    threads = [ (compile_tid, "compile"); (runtime_tid, "runtime") ];
    t0 = Unix.gettimeofday ();
  }

let locked (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Microseconds elapsed on the wall-clock (compile) timeline. *)
let now_us (t : t) : float = (Unix.gettimeofday () -. t.t0) *. 1e6

(** Record a complete span with explicit timestamps (the runtime spans'
    entry point: [ts_us]/[dur_us] are simulated-clock microseconds). *)
let emit (t : t) ?(tid = compile_tid) ~(cat : string) ~(name : string)
    ?(args = []) ~(ts_us : float) ~(dur_us : float) () : unit =
  locked t (fun () ->
      t.recorded <- { name; cat; tid; ts_us; dur_us; args } :: t.recorded)

(** Record a span that started at wall-clock offset [started_us] and ends
    now. *)
let emit_now (t : t) ?(tid = compile_tid) ~(cat : string) ~(name : string)
    ?(args = []) ~(started_us : float) () : unit =
  emit t ~tid ~cat ~name ~args ~ts_us:started_us
    ~dur_us:(Float.max 0.0 (now_us t -. started_us))
    ()

(** [with_span ?tracer ~cat name f] runs [f ()] inside a wall-clock span
    when a tracer is supplied; with [?tracer:None] it is exactly [f ()].
    The span is recorded even when [f] raises. *)
let with_span ?tracer ?(tid = compile_tid) ~(cat : string) ?(args = [])
    (name : string) (f : unit -> 'a) : 'a =
  match tracer with
  | None -> f ()
  | Some t ->
      let started_us = now_us t in
      let finish () = emit_now t ~tid ~cat ~name ~args ~started_us () in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let name_thread (t : t) ~(tid : int) (name : string) : unit =
  locked t (fun () ->
      t.threads <- (tid, name) :: List.remove_assoc tid t.threads)

(** All recorded spans in chronological order (parents before their
    children: ties on start time break by longer duration first). *)
let spans (t : t) : span list =
  let ss = locked t (fun () -> List.rev t.recorded) in
  List.stable_sort
    (fun a b ->
      match compare (a.tid, a.ts_us) (b.tid, b.ts_us) with
      | 0 -> compare b.dur_us a.dur_us
      | c -> c)
    ss

let span_count (t : t) : int = locked t (fun () -> List.length t.recorded)

(* ------------------------------------------------------------------ *)
(* Well-nestedness                                                     *)
(* ------------------------------------------------------------------ *)

(* Tolerance for float accumulation at the microsecond scale: phase
   offsets are running sums of the same doubles the clock sums, so any
   drift is rounding noise, orders below a nanosecond. *)
let eps_us = 1e-3

(** Are the spans of every timeline properly nested — every pair either
    disjoint or one containing the other?  This is the shape Chrome's
    flame view assumes and the invariant {!profile}'s self-time
    computation relies on. *)
let well_nested (t : t) : bool =
  let check_tid ss =
    let stack = ref [] in
    List.for_all
      (fun (s : span) ->
        let rec pop () =
          match !stack with
          | top :: rest when top.ts_us +. top.dur_us <= s.ts_us +. eps_us ->
              stack := rest;
              pop ()
          | _ -> ()
        in
        pop ();
        let ok =
          match !stack with
          | [] -> true
          | top :: _ -> s.ts_us +. s.dur_us <= top.ts_us +. top.dur_us +. eps_us
        in
        stack := s :: !stack;
        ok)
      ss
  in
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun (s : span) ->
      Hashtbl.replace by_tid s.tid
        (s :: Option.value ~default:[] (Hashtbl.find_opt by_tid s.tid)))
    (spans t);
  Hashtbl.fold (fun _ ss acc -> acc && check_tid (List.rev ss)) by_tid true

(* ------------------------------------------------------------------ *)
(* Self-time profile                                                   *)
(* ------------------------------------------------------------------ *)

type stat = { count : int; total_us : float; self_us : float }

(** Aggregate spans by name: firing count, total (inclusive) time, and
    self time (total minus the time of directly nested spans), sorted by
    self time, largest first. *)
let profile (t : t) : (string * stat) list =
  let table : (string, stat) Hashtbl.t = Hashtbl.create 32 in
  let account (s : span) ~(child_us : float) =
    let prev =
      Option.value
        ~default:{ count = 0; total_us = 0.0; self_us = 0.0 }
        (Hashtbl.find_opt table s.name)
    in
    Hashtbl.replace table s.name
      { count = prev.count + 1;
        total_us = prev.total_us +. s.dur_us;
        self_us = prev.self_us +. Float.max 0.0 (s.dur_us -. child_us);
      }
  in
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun (s : span) ->
      Hashtbl.replace by_tid s.tid
        (s :: Option.value ~default:[] (Hashtbl.find_opt by_tid s.tid)))
    (spans t);
  Hashtbl.iter
    (fun _ rev_ss ->
      (* stack of (span, accumulated direct-child time) *)
      let stack : (span * float ref) list ref = ref [] in
      let pop_one () =
        match !stack with
        | (top, child) :: rest ->
            account top ~child_us:!child;
            (match rest with
            | (_, parent_child) :: _ -> parent_child := !parent_child +. top.dur_us
            | [] -> ());
            stack := rest
        | [] -> ()
      in
      List.iter
        (fun (s : span) ->
          let rec drain () =
            match !stack with
            | (top, _) :: _ when top.ts_us +. top.dur_us <= s.ts_us +. eps_us ->
                pop_one ();
                drain ()
            | _ -> ()
          in
          drain ();
          stack := (s, ref 0.0) :: !stack)
        (List.rev rev_ss);
      while !stack <> [] do
        pop_one ()
      done)
    by_tid;
  let rows = Hashtbl.fold (fun name st acc -> (name, st) :: acc) table [] in
  List.sort
    (fun (na, a) (nb, b) ->
      match compare b.self_us a.self_us with 0 -> compare na nb | c -> c)
    rows

let fmt_us (us : float) : string =
  if us >= 1e6 then Printf.sprintf "%.3fs" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.3fms" (us /. 1e3)
  else Printf.sprintf "%.3fus" us

(** The text profile behind [--profile]. *)
let pp_profile (fmt : Format.formatter) (t : t) : unit =
  let rows = profile t in
  let grand = List.fold_left (fun acc (_, s) -> acc +. s.self_us) 0.0 rows in
  Format.fprintf fmt "%-32s %8s %12s %12s %6s@." "span" "count" "self" "total"
    "self%";
  List.iter
    (fun (name, s) ->
      Format.fprintf fmt "%-32s %8d %12s %12s %5.1f%%@." name s.count
        (fmt_us s.self_us) (fmt_us s.total_us)
        (if grand > 0.0 then 100.0 *. s.self_us /. grand else 0.0))
    rows

let profile_to_string (t : t) : string = Format.asprintf "%a" pp_profile t

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

let json_escape = Metrics.json_escape

let arg_to_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.17g" f else "null"
  | Bool b -> if b then "true" else "false"

let args_to_json (args : (string * arg) list) : string =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape k) (arg_to_json v))
         args)
  ^ "}"

let span_to_json (s : span) : string =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":%s}"
    (json_escape s.name) (json_escape s.cat) s.ts_us s.dur_us s.tid
    (args_to_json s.args)

let metadata_json (t : t) : string list =
  Printf.sprintf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"dmll\"}}"
  :: List.map
       (fun (tid, name) ->
         Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid (json_escape name))
       (List.sort compare (locked t (fun () -> t.threads)))

(** The whole trace as Chrome [trace_event] JSON (the object form, with a
    [traceEvents] array of [ph:"X"] complete events plus [ph:"M"]
    process/thread metadata).  Schema is golden-tested; open the file in
    [chrome://tracing] or [https://ui.perfetto.dev]. *)
let to_chrome_json (t : t) : string =
  let events = metadata_json t @ List.map span_to_json (spans t) in
  Printf.sprintf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[%s]}"
    (String.concat ",\n" events)

(** Write {!to_chrome_json} to [path]. *)
let write_chrome (t : t) (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))

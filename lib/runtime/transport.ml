(** The shared wire codec of the real-process executors (DESIGN.md §16):
    length-prefixed, CRC32-checksummed [Marshal] frames, used identically
    by the socketpair pipes of {!Proc_cluster} and the TCP links of
    {!Net_cluster}, so both paths share one framing implementation and
    one set of torn/short-read/corruption tests.

    A frame is a 12-byte header — payload length as a big-endian 64-bit
    integer, then the payload's CRC32 (IEEE 802.3 polynomial) as a
    big-endian 32-bit integer — followed by the marshalled payload.  A
    frame that fails the length sanity check, the CRC, or unmarshalling
    raises {!Corrupt_frame} carrying a structured [Diag] error (rule
    [T-FRAME]) instead of a bare [Marshal] exception, so a flipped bit on
    the wire is a diagnosable protocol event, not a crash.

    On top of the fd-level codec sits {!conn}: a counted connection
    wrapper (frames and bytes in both directions, for the per-link
    metrics the supervisors publish) whose send path can host a
    deterministic fault injector ({!Fault.link_fate}) — delaying,
    corrupting, severing mid-frame, or blackholing ("partitioning") real
    frames on a real socket, keyed by (slot, frame number) so every
    chaos run replays. *)

module Diag = Dmll_analysis.Diag

exception Peer_gone
(** The peer is dead: EOF, EPIPE, or connection reset. *)

exception Frame_timeout
(** A frame did not complete within its deadline: the peer is hung.  A
    frame whose first byte arrived {e exactly} at the deadline is still
    read — the deadline check does one final zero-timeout poll before
    giving up. *)

exception Corrupt_frame of Diag.t
(** The frame is structurally bad — insane length, CRC mismatch, or
    unmarshallable payload (rule [T-FRAME]). *)

let corrupt fmt =
  Printf.ksprintf
    (fun msg -> raise (Corrupt_frame (Diag.error ~rule:"T-FRAME" "%s" msg)))
    fmt

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320)                 *)
(* ------------------------------------------------------------------ *)

let crc_table : int array =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 (b : bytes) : int =
  let c = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length b - 1 do
    c := crc_table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Fd-level primitives                                                  *)
(* ------------------------------------------------------------------ *)

let rec write_all fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len
    | exception
        Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        raise Peer_gone

(* Pull exactly [len] bytes, optionally bounded by an absolute deadline
   (a peer wedged mid-frame must not wedge the supervisor).  The
   deadline is edge-inclusive: when it has passed, one final
   zero-timeout poll decides — data already waiting is read, silence is
   [Frame_timeout]. *)
let read_exact ?deadline fd buf off len =
  let rec go off len =
    if len > 0 then begin
      (match deadline with
      | None -> ()
      | Some d ->
          let rec wait () =
            let left = d -. Unix.gettimeofday () in
            if left <= 0.0 then begin
              match Unix.select [ fd ] [] [] 0.0 with
              | [], _, _ -> raise Frame_timeout
              | _ -> ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
            end
            else
              match Unix.select [ fd ] [] [] left with
              | [], _, _ -> wait ()
              | _ -> ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          in
          wait ());
      match Unix.read fd buf off len with
      | 0 -> raise Peer_gone
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
        ->
          raise Peer_gone
    end
  in
  go off len

let max_frame_bytes = 1 lsl 30
let header_bytes = 12

(* One contiguous buffer per frame: header then payload, written in a
   single [write_all] so a TCP frame is one stream burst. *)
let encode_frame (msg : 'a) : bytes =
  let payload = Marshal.to_bytes msg [] in
  let n = Bytes.length payload in
  let buf = Bytes.create (header_bytes + n) in
  Bytes.set_int64_be buf 0 (Int64.of_int n);
  Bytes.set_int32_be buf 8 (Int32.of_int (crc32 payload));
  Bytes.blit payload 0 buf header_bytes n;
  buf

let write_frame fd (msg : 'a) : unit =
  let buf = encode_frame msg in
  write_all fd buf 0 (Bytes.length buf)

(* Returns the decoded message and the total frame size on the wire. *)
let read_frame_sized ?deadline fd : 'a * int =
  let hdr = Bytes.create header_bytes in
  read_exact ?deadline fd hdr 0 header_bytes;
  let n = Int64.to_int (Bytes.get_int64_be hdr 0) in
  if n <= 0 || n > max_frame_bytes then
    corrupt "frame length %d outside (0, %d]" n max_frame_bytes;
  let expect = Int32.to_int (Bytes.get_int32_be hdr 8) land 0xFFFFFFFF in
  let payload = Bytes.create n in
  read_exact ?deadline fd payload 0 n;
  let got = crc32 payload in
  if got <> expect then
    corrupt "frame CRC mismatch: header %08x, payload %08x over %d bytes"
      expect got n;
  match Marshal.from_bytes payload 0 with
  | v -> (v, header_bytes + n)
  | exception (Failure _ | Invalid_argument _) ->
      corrupt "frame payload unmarshallable despite a valid CRC (%d bytes)" n

let read_frame ?deadline fd : 'a = fst (read_frame_sized ?deadline fd)

(* ------------------------------------------------------------------ *)
(* Counted connections with deterministic link-fault injection          *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  fate : (frame:int -> Fault.link_fate) option;
      (** drawn per {e outgoing} frame; [None] on healthy links and on
          the worker side *)
  mutable frames_out : int;
  mutable frames_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable injected : int;  (** link faults delivered on this conn *)
  mutable partitioned_until : float;
      (** while in the future, the link blackholes: sends are dropped,
          received frames discarded *)
  mutable closed : bool;
}

let attach ?fate (fd : Unix.file_descr) : conn =
  { fd; fate; frames_out = 0; frames_in = 0; bytes_out = 0; bytes_in = 0;
    injected = 0; partitioned_until = neg_infinity; closed = false }

let conn_fd (c : conn) = c.fd
let bytes_out (c : conn) = c.bytes_out
let bytes_in (c : conn) = c.bytes_in
let frames_out (c : conn) = c.frames_out
let frames_in (c : conn) = c.frames_in
let injected_faults (c : conn) = c.injected
let partitioned (c : conn) = Unix.gettimeofday () < c.partitioned_until

let close (c : conn) : unit =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let quiet_shutdown fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Injection happens on the send path, after the frame (and its CRC) is
   encoded: a corrupted frame carries the CRC of the clean payload, so
   the receiver's check fails exactly as it would for a real flipped
   bit.  A severed link transmits half the frame and shuts the socket
   down — the peer sees a short read, we raise [Peer_gone].  A
   partition blackholes the link for its duration: this frame and every
   later send are dropped, and {!recv} discards inbound frames. *)
let send (c : conn) (msg : 'a) : unit =
  if c.closed then raise Peer_gone;
  let frame = c.frames_out in
  c.frames_out <- frame + 1;
  let buf = encode_frame msg in
  let len = Bytes.length buf in
  if partitioned c then c.injected <- c.injected + 1
  else
    let fate =
      match c.fate with None -> Fault.Link_ok | Some f -> f ~frame
    in
    match fate with
    | Fault.Link_ok ->
        write_all c.fd buf 0 len;
        c.bytes_out <- c.bytes_out + len
    | Fault.Link_delay { for_s } ->
        c.injected <- c.injected + 1;
        Unix.sleepf (Float.min 0.05 for_s);
        write_all c.fd buf 0 len;
        c.bytes_out <- c.bytes_out + len
    | Fault.Link_corrupt ->
        c.injected <- c.injected + 1;
        let i = header_bytes + ((len - header_bytes) / 2) in
        Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0x5A));
        write_all c.fd buf 0 len;
        c.bytes_out <- c.bytes_out + len
    | Fault.Link_sever ->
        c.injected <- c.injected + 1;
        (try write_all c.fd buf 0 (Stdlib.max 1 (len / 2))
         with Peer_gone -> ());
        quiet_shutdown c.fd;
        raise Peer_gone
    | Fault.Link_partition { for_s } ->
        c.injected <- c.injected + 1;
        c.partitioned_until <- Unix.gettimeofday () +. for_s

let rec recv ?deadline (c : conn) : 'a =
  if c.closed then raise Peer_gone;
  let msg, size = read_frame_sized ?deadline c.fd in
  c.frames_in <- c.frames_in + 1;
  c.bytes_in <- c.bytes_in + size;
  if partitioned c then
    (* blackhole: the frame crossed the wire but never "arrived" *)
    recv ?deadline c
  else msg

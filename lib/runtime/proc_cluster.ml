(** Process-backed cluster executor with supervised workers
    (DESIGN.md §14).

    Every other fault-capable executor in this tree hurts a {e model}:
    [Sim_cluster] nodes are structs, [Exec_domains] workers are OCaml
    domains in the same address space.  This one forks real OS
    processes.  Workers speak a length-prefixed [Marshal] protocol over
    [Unix.socketpair]s — serialized chunk programs out, chunk values
    back — and the parent is a supervisor: it detects dead workers by
    pipe EOF, hung workers by task deadline, wedged-but-idle workers by
    missed heartbeat pongs; it retries transient I/O errors with bounded
    exponential backoff; it replans a casualty's chunks onto survivors
    with {!Schedule.replan} (the same lineage property every simulated
    recovery path uses: a multiloop chunk is recomputable from its range
    and inputs alone); it respawns replacements within a budget and
    degrades to fewer workers — ultimately to master-only inline
    evaluation — when the budget runs out; and it guarantees child
    reaping: every pid ever forked is SIGKILLed (idempotent) and
    [waitpid]ed on the way out, even when the parent itself errors.

    Determinism contract: the chunk plan is a pure function of the loop
    size and the {e configured} worker count — never of the live set —
    so a faulty run (murdered workers, replans, degradation) merges the
    exact same chunk partials in the exact same order as a healthy run
    and produces a bit-identical value.  Against the sequential
    interpreter the value is bit-identical whenever the loop's merges
    are exact (collects, int reduces, bucket merges) and
    float-merge-identical (|Δ| within 1e-6 relative) for floating-point
    reductions, whose chunk-order folds legally reassociate — the same
    convention [Exec_domains] tests establish. *)

open Dmll_ir
module V = Dmll_interp.Value
module M = Dmll_machine.Machine
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics
module Prng = Dmll_util.Prng

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;  (** forked worker processes (and the fixed chunk fan-out) *)
  faults : Fault.t option;
      (** arms worker-side injected chunk faults {e and} parent-side real
          process murder (SIGKILL / SIGSTOP / pipe close) *)
  task_deadline_s : float;
      (** a dispatched chunk unanswered for this long marks the worker
          hung: SIGKILL + replan *)
  heartbeat_s : float;
      (** idle-worker ping cadence at loop boundaries; three missed
          pongs declare the worker dead *)
  max_respawns : int;  (** replacement-worker budget for the whole run *)
  checkpoint_cadence : int;  (** snapshot every N spine loops; [<=0] off *)
  checkpoint_dir : string option;
      (** where crash-safe snapshot files go ({!Checkpoint.write_file}) *)
  resume : bool;
      (** restore spine bindings from the latest verified snapshot in
          [checkpoint_dir] instead of recomputing them *)
  obs : Span.t option;
  metrics : Metrics.t option;
  on_spawn : (slot:int -> pid:int -> unit) option;
      (** test hook, called by the parent after every fork *)
  on_task_sent : (slot:int -> chunk:int -> unit) option;
      (** test hook, called right after a task frame is written to a
          worker and before its first reply can arrive — the window the
          heartbeat/deadline edge-case tests target *)
}

let default_config =
  { workers = 2;
    faults = None;
    task_deadline_s = 5.0;
    heartbeat_s = 0.25;
    max_respawns = 8;
    checkpoint_cadence = 0;
    checkpoint_dir = None;
    resume = false;
    obs = None;
    metrics = None;
    on_spawn = None;
    on_task_sent = None;
  }

(* ------------------------------------------------------------------ *)
(* Run statistics                                                      *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable spawned : int;  (** every fork, initial and replacement *)
  mutable respawned : int;
  mutable killed : int;  (** injected murders (SIGKILL or pipe cut) *)
  mutable pipe_cuts : int;
  mutable stopped : int;  (** injected SIGSTOP straggles *)
  mutable deadline_kills : int;
  mutable heartbeat_kills : int;
  mutable io_retries : int;  (** transient I/O errors retried with backoff *)
  mutable replans : int;
  mutable recovered_chunks : int;  (** chunks redispatched after a death *)
  mutable master_chunks : int;  (** degraded-mode chunks evaluated inline *)
  mutable worker_retries : int;  (** worker-side transient-fault retries *)
  mutable pings : int;
  mutable pongs : int;
  mutable checkpoints : int;
  mutable restored_loops : int;
  mutable degraded : bool;  (** ran short-handed after budget exhaustion *)
  mutable pids : int list;  (** every child pid ever forked (for tests) *)
}

let fresh_stats () =
  { spawned = 0; respawned = 0; killed = 0; pipe_cuts = 0; stopped = 0;
    deadline_kills = 0; heartbeat_kills = 0; io_retries = 0; replans = 0;
    recovered_chunks = 0; master_chunks = 0; worker_retries = 0; pings = 0;
    pongs = 0; checkpoints = 0; restored_loops = 0; degraded = false;
    pids = [];
  }

let stats_to_string (s : stats) : string =
  Printf.sprintf
    "spawned=%d respawned=%d killed=%d (pipe_cuts=%d) stopped=%d \
     deadline_kills=%d heartbeat_kills=%d io_retries=%d replans=%d \
     recovered_chunks=%d master_chunks=%d worker_retries=%d pings=%d \
     pongs=%d checkpoints=%d restored_loops=%d degraded=%b"
    s.spawned s.respawned s.killed s.pipe_cuts s.stopped s.deadline_kills
    s.heartbeat_kills s.io_retries s.replans s.recovered_chunks
    s.master_chunks s.worker_retries s.pings s.pongs s.checkpoints
    s.restored_loops s.degraded

type result = {
  value : V.t;
  seconds : float;  (** wall-clock *)
  breakdown : (string * float) list;  (** per-spine-loop wall seconds *)
  stats : stats;
  metrics : Metrics.t;
}

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

(* Frames are the shared length-prefixed + CRC32 codec of [Transport]
   (DESIGN.md §16) — one implementation for this executor's socketpair
   pipes and [Net_cluster]'s TCP links.  A corrupt frame read by the
   supervisor is a structured [Transport.Corrupt_frame] (Diag rule
   T-FRAME), handled like a dead peer: the pipe carries no
   retransmission protocol, so the worker is retired and its chunks
   replanned. *)

type task = {
  task_id : int;
  loop_no : int;
  chunk : int;
  base_attempt : int;
      (** offset into the chunk's injected-fate attempt sequence, bumped
          per dispatch so a redispatched chunk draws fresh fates *)
  prog : Exp.exp;  (** closed chunk program (pure data, marshalable) *)
  bindings : (string * V.t) list;  (** pseudo-input values for [prog] *)
}

type to_worker = Task of task | Ping of int | Shutdown

type from_worker =
  | Done of { task_id : int; chunk : int; value : V.t; retries : int }
  | Refused of { task_id : int; chunk : int; msg : string }
  | Pong of int

exception Worker_gone = Transport.Peer_gone
(** The peer is dead: EOF, EPIPE, or connection reset. *)

exception Frame_timeout = Transport.Frame_timeout
(** A frame did not complete within its deadline: the peer is hung. *)

let write_frame = Transport.write_frame
let read_frame = Transport.read_frame

(* Bounded retry with exponential backoff on transient I/O errors —
   resource-pressure failures that clear on their own, as opposed to the
   peer-is-dead errors mapped to [Worker_gone] above. *)
let io_retry_budget = 5

let with_io_retry (stats : stats) (f : unit -> 'a) : 'a =
  let rec go attempt =
    try f () with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ENOBUFS), _, _)
      when attempt < io_retry_budget ->
        stats.io_retries <- stats.io_retries + 1;
        Unix.sleepf (1e-4 *. (2.0 ** float_of_int attempt));
        go (attempt + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Worker process                                                      *)
(* ------------------------------------------------------------------ *)

(* Exit codes: 0 = orderly (Shutdown/EOF/severed pipe), 2 = internal
   error, 3 = injected permanent crash (the parent recovers the chunk
   from lineage, exactly as it would for a machine that caught fire). *)

let worker_main ~(slot : int) ~(spec : M.fault_model option)
    ~(inputs : (string * V.t) list) (fd : Unix.file_descr) : unit =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* deterministic per-slot jitter stream: see Fault.worker_seed *)
  let jitter =
    Prng.create
      (match spec with
      | Some s -> Fault.worker_seed s ~worker:slot
      | None -> slot + 1)
  in
  let inj = Option.map Fault.create spec in
  let eval_task (t : task) : from_worker =
    let retries = ref 0 in
    let rec attempt k =
      let retry_now =
        match inj with
        | None -> false
        | Some inj -> (
            let s = Fault.spec inj in
            match
              Fault.chunk_fate inj ~loop:t.loop_no ~chunk:t.chunk
                ~attempt:(t.base_attempt + k)
            with
            | Fault.Chunk_fail { transient = true } when k < s.M.max_retries ->
                true
            | Fault.Chunk_fail _ ->
                (* a real crash: die mid-task, lineage recovers the chunk *)
                Unix._exit 3
            | Fault.Chunk_slow { slowdown } ->
                Unix.sleepf (Float.min 2e-3 (1e-4 *. slowdown));
                false
            | Fault.Chunk_ok -> false)
      in
      if retry_now then begin
        incr retries;
        let backoff =
          match inj with
          | Some inj -> Fault.backoff_s (Fault.spec inj) ~attempt:k
          | None -> 1e-4
        in
        Unix.sleepf (Float.min 2e-3 (backoff *. (1.0 +. Prng.float jitter 0.5)));
        attempt (k + 1)
      end
      else
        match Dmll_backend.Closure.run ~inputs:(t.bindings @ inputs) t.prog with
        | v ->
            Done { task_id = t.task_id; chunk = t.chunk; value = v;
                   retries = !retries }
        | exception e ->
            Refused { task_id = t.task_id; chunk = t.chunk;
                      msg = Printexc.to_string e }
    in
    attempt 0
  in
  let rec serve () =
    match
      (try Some (read_frame fd) with
      | Worker_gone | End_of_file -> None
      | Transport.Corrupt_frame _ ->
          (* a corrupt frame on a trusted pipe is an internal error; the
             supervisor recovers the in-flight chunk by deadline *)
          Unix._exit 2)
    with
    | None | Some Shutdown -> Unix._exit 0
    | Some (Ping k) ->
        (try write_frame fd (Pong k) with Worker_gone -> Unix._exit 0);
        serve ()
    | Some (Task t) ->
        let reply = eval_task t in
        (try write_frame fd reply with Worker_gone -> Unix._exit 0);
        serve ()
  in
  serve ()

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type worker = {
  slot : int;
  pid : int;
  fd : Unix.file_descr;
  mutable alive : bool;
  mutable stopped_until : float option;  (** injected SIGSTOP, resume at *)
  mutable task : (int * float) option;  (** in-flight chunk, abs deadline *)
  mutable queue : int list;  (** chunks waiting on this worker, this loop *)
}

type pool = {
  cfg : config;
  inputs : (string * V.t) list;
  metrics : Metrics.t;
  stats : stats;
  mutable members : worker list;  (** every worker ever, newest first *)
  mutable unreaped : int list;  (** forked pids not yet waitpid'ed *)
  mutable respawns_left : int;
  store : Checkpoint.t option;
}

let alive_workers (pool : pool) : worker list =
  List.filter (fun w -> w.alive) pool.members
  |> List.sort (fun a b -> compare a.slot b.slot)

let signal_quiet pid sg = try Unix.kill pid sg with Unix.Unix_error _ -> ()

let reap_blocking (pool : pool) (pid : int) : unit =
  let rec go () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  go ();
  pool.unreaped <- List.filter (fun p -> p <> pid) pool.unreaped

let spawn (pool : pool) (slot : int) : worker =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let peer_fds =
    List.filter_map (fun w -> if w.alive then Some w.fd else None) pool.members
  in
  let spec = Option.map Fault.spec pool.cfg.faults in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* child: drop every parent-side pipe end so a sibling's EOF
         detection is never held open by us *)
      (try
         Unix.close parent_fd;
         List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
           peer_fds;
         worker_main ~slot ~spec ~inputs:pool.inputs child_fd
       with _ -> ());
      Unix._exit 2
  | pid ->
      Unix.close child_fd;
      pool.stats.spawned <- pool.stats.spawned + 1;
      pool.stats.pids <- pid :: pool.stats.pids;
      pool.unreaped <- pid :: pool.unreaped;
      Metrics.incr pool.metrics "proc_spawned";
      let w =
        { slot; pid; fd = parent_fd; alive = true; stopped_until = None;
          task = None; queue = [] }
      in
      pool.members <- w :: pool.members;
      (match pool.cfg.on_spawn with Some f -> f ~slot ~pid | None -> ());
      w

(* Take [w] out of the pool.  [linger] leaves the (pipe-cut) process to
   exit on its own — its pid stays on [unreaped] for the shutdown sweep,
   so it still can't outlive the run as a zombie. *)
let retire ?(linger = false) (pool : pool) (w : worker) : unit =
  if w.alive then begin
    w.alive <- false;
    (try Unix.close w.fd with Unix.Unix_error _ -> ());
    if not linger then begin
      signal_quiet w.pid Sys.sigcont;
      signal_quiet w.pid Sys.sigkill;
      reap_blocking pool w.pid
    end
  end

let respawn_or_degrade (pool : pool) (slot : int) : unit =
  if pool.respawns_left > 0 then begin
    pool.respawns_left <- pool.respawns_left - 1;
    pool.stats.respawned <- pool.stats.respawned + 1;
    Metrics.incr pool.metrics "proc_respawned";
    ignore (spawn pool slot)
  end
  else pool.stats.degraded <- true

(* Guaranteed reaping: every pid ever forked is continued, killed
   (idempotent on the already-dead), and waitpid'ed.  Runs under
   [Fun.protect], so it covers the parent-error path too. *)
let shutdown (pool : pool) : unit =
  List.iter
    (fun w ->
      if w.alive then begin
        w.alive <- false;
        (try write_frame w.fd Shutdown with _ -> ());
        (try Unix.close w.fd with Unix.Unix_error _ -> ())
      end)
    pool.members;
  List.iter
    (fun pid ->
      signal_quiet pid Sys.sigcont;
      signal_quiet pid Sys.sigkill;
      reap_blocking pool pid)
    pool.unreaped

(* ------------------------------------------------------------------ *)
(* Heartbeats: the idle-worker liveness gate                           *)
(* ------------------------------------------------------------------ *)

(* Before planning each distributed loop the supervisor pings every idle
   worker and waits [heartbeat_s] per round for pongs; three unanswered
   rounds declare the worker wedged (it is SIGKILLed, reaped, and
   respawned within budget).  Healthy workers answer in microseconds, so
   the gate costs one round trip; only an unresponsive worker makes the
   gate wait out its rounds. *)
let liveness_gate (pool : pool) ~(loop_no : int) : unit =
  List.iter
    (fun w ->
      match w.stopped_until with
      | Some _ ->
          signal_quiet w.pid Sys.sigcont;
          w.stopped_until <- None
      | None -> ())
    (alive_workers pool);
  let suspects = ref (alive_workers pool) in
  for round = 1 to 3 do
    if !suspects <> [] then begin
      let token = (loop_no * 101) + round in
      let pinged =
        List.filter
          (fun w ->
            match
              with_io_retry pool.stats (fun () -> write_frame w.fd (Ping token))
            with
            | () ->
                pool.stats.pings <- pool.stats.pings + 1;
                true
            | exception (Worker_gone | Unix.Unix_error _) ->
                retire pool w;
                pool.stats.heartbeat_kills <- pool.stats.heartbeat_kills + 1;
                respawn_or_degrade pool w.slot;
                false)
          !suspects
      in
      suspects := pinged;
      let deadline = Unix.gettimeofday () +. pool.cfg.heartbeat_s in
      let rec collect () =
        if !suspects <> [] then begin
          let left = deadline -. Unix.gettimeofday () in
          if left > 0.0 then begin
            let fds = List.map (fun w -> w.fd) !suspects in
            match Unix.select fds [] [] left with
            | [], _, _ -> ()
            | readable, _, _ ->
                List.iter
                  (fun fd ->
                    match
                      List.find_opt (fun w -> w.alive && w.fd = fd) !suspects
                    with
                    | None -> ()
                    | Some w -> (
                        match read_frame ~deadline w.fd with
                        | Pong _ ->
                            pool.stats.pongs <- pool.stats.pongs + 1;
                            suspects :=
                              List.filter (fun x -> x.pid <> w.pid) !suspects
                        | _ -> ()
                        | exception
                            ( Worker_gone | Frame_timeout
                            | Transport.Corrupt_frame _ ) ->
                            retire pool w;
                            pool.stats.heartbeat_kills <-
                              pool.stats.heartbeat_kills + 1;
                            respawn_or_degrade pool w.slot;
                            suspects :=
                              List.filter (fun x -> x.pid <> w.pid) !suspects))
                  readable;
                collect ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> collect ()
          end
        end
      in
      collect ()
    end
  done;
  List.iter
    (fun w ->
      pool.stats.heartbeat_kills <- pool.stats.heartbeat_kills + 1;
      Metrics.incr pool.metrics "proc_heartbeat_kills";
      retire pool w;
      respawn_or_degrade pool w.slot)
    !suspects

(* ------------------------------------------------------------------ *)
(* Supervised loop execution                                           *)
(* ------------------------------------------------------------------ *)

exception Master_recompute of int
(** Internal: route a chunk to inline master evaluation. *)

let run_loop (pool : pool) (env : Evalenv.env) ~(loop_no : int) (l : Exp.loop)
    : V.t =
  let cfg = pool.cfg in
  let inputs = pool.inputs in
  let stats = pool.stats in
  let n = Evalenv.eval_int ~inputs env l.Exp.size in
  let master_eval () = Evalenv.eval ~inputs env (Exp.Loop l) in
  liveness_gate pool ~loop_no;
  if n <= 1 || alive_workers pool = [] then master_eval ()
  else begin
    (* The plan is a pure function of (n, configured workers): chunk
       boundaries — and hence merge order and float reassociation — are
       identical whether the pool is healthy, bleeding, or degraded. *)
    let units =
      Schedule.plan ~nodes:cfg.workers ~sockets:1 ~cores:1 n
      |> List.sort (fun (a : Schedule.unit_of_work) b ->
             compare a.range.Chunk.lo b.range.Chunk.lo)
      |> Array.of_list
    in
    let nchunks = Array.length units in
    if nchunks <= 1 then master_eval ()
    else begin
      let boundaries =
        Array.to_list units
        |> List.filter_map (fun (u : Schedule.unit_of_work) ->
               if u.range.Chunk.lo > 0 then Some u.range.Chunk.lo else None)
      in
      let idx_of_lo = Hashtbl.create nchunks in
      Array.iteri
        (fun i (u : Schedule.unit_of_work) ->
          Hashtbl.replace idx_of_lo u.range.Chunk.lo i)
        units;
      let progs =
        Array.map
          (fun (u : Schedule.unit_of_work) ->
            Evalenv.close_over env (Exec_domains.chunk_loop l u.range))
          units
      in
      let still_open =
        Array.exists
          (fun (p, _) -> Sym.Set.choose_opt (Exp.free_vars p) <> None)
          progs
      in
      if still_open then
        (* an unclosable chunk (free symbol outside the spine env):
           evaluate on the master so the error surfaces identically *)
        master_eval ()
      else begin
        let results : V.t option array = Array.make nchunks None in
        let remaining = ref nchunks in
        let dispatches = Array.make nchunks 0 in
        let fate_drawn = Array.make nchunks false in
        let owner = Array.make nchunks (-1) in
        let master_backlog = ref [] in
        let task_counter = ref 0 in
        let record_result i v =
          if results.(i) = None then begin
            results.(i) <- Some v;
            decr remaining
          end
        in
        let eval_inline i =
          if results.(i) = None then begin
            let prog, bindings = progs.(i) in
            Fault.check_replan "proc-master" prog;
            stats.master_chunks <- stats.master_chunks + 1;
            Metrics.incr pool.metrics "proc_master_chunks";
            record_result i
              (Dmll_backend.Closure.run ~inputs:(bindings @ inputs) prog)
          end
        in
        (* enqueue chunk [i] on [w] (does not dispatch) *)
        let enqueue (w : worker) i =
          owner.(i) <- w.slot;
          w.queue <- w.queue @ [ i ]
        in
        (* Reassign [lost] chunks after slot [dead_slot]'s demise, via
           Schedule.replan over the not-yet-done units with their current
           owners — passing the original cut points as boundaries, so
           every replacement range is exactly an original chunk. *)
        let replan_lost ~(dead_slot : int) (lost : int list) : unit =
          let lost = List.filter (fun i -> results.(i) = None) lost in
          if lost <> [] then begin
            stats.replans <- stats.replans + 1;
            Metrics.incr pool.metrics "proc_replans";
            (match cfg.faults with
            | Some f -> Fault.record_replan f
            | None -> ());
            let live = alive_workers pool in
            let fallback () =
              match live with
              | [] -> List.iter (fun i -> master_backlog := !master_backlog @ [ i ]) lost
              | live ->
                  let nl = List.length live in
                  List.iteri
                    (fun j i -> enqueue (List.nth live (j mod nl)) i)
                    lost
            in
            (match live with
            | [] -> fallback ()
            | _ -> (
                let units_now =
                  List.filter_map
                    (fun i ->
                      if results.(i) = None && owner.(i) >= 0 then
                        Some { (units.(i)) with Schedule.node = owner.(i) }
                      else None)
                    (List.init nchunks Fun.id)
                in
                match
                  Schedule.replan ~boundaries ~dead:[ dead_slot ] units_now
                with
                | replanned ->
                    List.iter
                      (fun (u : Schedule.unit_of_work) ->
                        match Hashtbl.find_opt idx_of_lo u.range.Chunk.lo with
                        | Some i when List.mem i lost -> (
                            match
                              List.find_opt (fun w -> w.slot = u.node) live
                            with
                            | Some w -> enqueue w i
                            | None ->
                                master_backlog := !master_backlog @ [ i ])
                        | _ -> ())
                      replanned
                | exception Invalid_argument _ -> fallback ()));
            List.iter
              (fun i ->
                let prog, _ = progs.(i) in
                Fault.check_replan "proc-replan" prog;
                stats.recovered_chunks <- stats.recovered_chunks + 1;
                Metrics.incr pool.metrics "proc_recovered_chunks";
                match cfg.faults with
                | Some f -> Fault.record_recovered f
                | None -> ())
              lost
          end
        in
        let rec dispatch (w : worker) : unit =
          match w.queue with
          | i :: rest when w.task = None && w.alive && w.stopped_until = None
            ->
              if results.(i) <> None then begin
                w.queue <- rest;
                dispatch w
              end
              else begin
                w.queue <- rest;
                let prog, bindings = progs.(i) in
                let base_attempt = dispatches.(i) * 64 in
                dispatches.(i) <- dispatches.(i) + 1;
                incr task_counter;
                Metrics.incr pool.metrics "proc_tasks";
                let t =
                  { task_id = !task_counter; loop_no; chunk = i; base_attempt;
                    prog; bindings }
                in
                (match
                   with_io_retry stats (fun () -> write_frame w.fd (Task t))
                 with
                | () -> (
                    w.task <-
                      Some (i, Unix.gettimeofday () +. cfg.task_deadline_s);
                    (match cfg.on_task_sent with
                    | Some f -> f ~slot:w.slot ~chunk:i
                    | None -> ());
                    (* parent-side murder: drawn once per (loop, chunk),
                       on first dispatch only *)
                    match cfg.faults with
                    | Some f when not fate_drawn.(i) -> (
                        fate_drawn.(i) <- true;
                        match Fault.proc_fate f ~loop:loop_no ~chunk:i with
                        | Fault.Proc_ok -> ()
                        | Fault.Proc_kill { permanent; close_pipe } ->
                            stats.killed <- stats.killed + 1;
                            Metrics.incr pool.metrics "proc_kills";
                            if close_pipe then begin
                              stats.pipe_cuts <- stats.pipe_cuts + 1;
                              retire ~linger:true pool w
                            end
                            else retire pool w;
                            worker_dead w ~respawn:(not permanent)
                        | Fault.Proc_stop { stop_s } ->
                            stats.stopped <- stats.stopped + 1;
                            Metrics.incr pool.metrics "proc_stops";
                            signal_quiet w.pid Sys.sigstop;
                            w.stopped_until <-
                              Some (Unix.gettimeofday () +. stop_s))
                    | _ -> ())
                | exception Worker_gone -> worker_dead w ~respawn:true ~requeue:[ i ])
              end
          | _ -> ()
        and worker_dead ?(requeue = []) (w : worker) ~(respawn : bool) : unit =
          retire pool w;
          let lost =
            requeue
            @ (match w.task with Some (i, _) -> [ i ] | None -> [])
            @ w.queue
          in
          w.task <- None;
          w.queue <- [];
          replan_lost ~dead_slot:w.slot lost;
          if respawn then respawn_or_degrade pool w.slot
          else stats.degraded <- true;
          List.iter dispatch (alive_workers pool)
        in
        let handle_read (w : worker) : unit =
          match
            read_frame
              ~deadline:(Unix.gettimeofday () +. cfg.task_deadline_s)
              w.fd
          with
          | Done { chunk; value; retries; _ } ->
              stats.worker_retries <- stats.worker_retries + retries;
              if retries > 0 then
                Metrics.incr pool.metrics ~by:retries "proc_worker_retries";
              record_result chunk value;
              w.task <- None;
              dispatch w
          | Refused { chunk; _ } ->
              (* deterministic evaluation error: recompute inline so the
                 real exception surfaces from the master *)
              Metrics.incr pool.metrics "proc_refused";
              w.task <- None;
              master_backlog := !master_backlog @ [ chunk ];
              dispatch w
          | Pong _ -> stats.pongs <- stats.pongs + 1
          | exception Worker_gone -> worker_dead w ~respawn:true
          | exception Transport.Corrupt_frame _ ->
              (* structured T-FRAME rejection: the pipe carries no
                 retransmission protocol, so treat the link as dead *)
              Metrics.incr pool.metrics "proc_corrupt_frames";
              worker_dead w ~respawn:true
          | exception Frame_timeout ->
              stats.deadline_kills <- stats.deadline_kills + 1;
              Metrics.incr pool.metrics "proc_deadline_kills";
              worker_dead w ~respawn:true
        in
        (* initial assignment: the planned owner when that slot is alive,
           else replanned onto survivors before anything is dispatched *)
        let live0 = alive_workers pool in
        let live_slots = List.map (fun w -> w.slot) live0 in
        let dead0 =
          List.filter
            (fun s -> not (List.mem s live_slots))
            (List.init cfg.workers Fun.id)
        in
        let assigned =
          if dead0 = [] then Array.to_list units
          else
            match Schedule.replan ~boundaries ~dead:dead0 (Array.to_list units)
            with
            | us -> us
            | exception Invalid_argument _ ->
                List.mapi
                  (fun j (u : Schedule.unit_of_work) ->
                    { u with
                      Schedule.node =
                        List.nth live_slots (j mod List.length live_slots) })
                  (Array.to_list units)
        in
        List.iter
          (fun (u : Schedule.unit_of_work) ->
            match Hashtbl.find_opt idx_of_lo u.range.Chunk.lo with
            | None -> ()
            | Some i -> (
                match List.find_opt (fun w -> w.slot = u.node) live0 with
                | Some w -> enqueue w i
                | None -> master_backlog := !master_backlog @ [ i ]))
          assigned;
        List.iter dispatch (alive_workers pool);
        (* the supervision event loop *)
        while !remaining > 0 do
          (* master chips in on orphaned work first — it is the driver,
             immune to injection, and the guarantee of progress *)
          (match !master_backlog with
          | i :: rest ->
              master_backlog := rest;
              eval_inline i
          | [] -> ());
          if !remaining > 0 then begin
            let now = Unix.gettimeofday () in
            (* resume injected stragglers whose stop expired *)
            List.iter
              (fun w ->
                match w.stopped_until with
                | Some t when now >= t ->
                    signal_quiet w.pid Sys.sigcont;
                    w.stopped_until <- None;
                    dispatch w
                | _ -> ())
              (alive_workers pool);
            (* deadline detection: a dispatched chunk unanswered past its
               deadline marks the worker hung (stopped or genuinely
               wedged) — SIGKILL and replan *)
            List.iter
              (fun w ->
                match w.task with
                | Some (_, dl) when now > dl ->
                    stats.deadline_kills <- stats.deadline_kills + 1;
                    Metrics.incr pool.metrics "proc_deadline_kills";
                    worker_dead w ~respawn:true
                | _ -> ())
              (alive_workers pool);
            let live = alive_workers pool in
            (* safety net: any undone chunk not owned by a live worker or
               the master backlog goes to the master *)
            if live = [] then
              Array.iteri
                (fun i r ->
                  if r = None && not (List.mem i !master_backlog) then
                    master_backlog := !master_backlog @ [ i ])
                results
            else begin
              let covered i =
                List.mem i !master_backlog
                || List.exists
                     (fun w ->
                       List.mem i w.queue
                       || match w.task with
                          | Some (j, _) -> j = i
                          | None -> false)
                     live
              in
              Array.iteri
                (fun i r ->
                  if r = None && not (covered i) then
                    master_backlog := !master_backlog @ [ i ])
                results
            end;
            if !remaining > 0 && !master_backlog = [] then begin
              let fds = List.map (fun w -> w.fd) live in
              if fds <> [] then begin
                let next_timer =
                  List.fold_left
                    (fun acc w ->
                      let acc =
                        match w.task with
                        | Some (_, dl) -> Float.min acc dl
                        | None -> acc
                      in
                      match w.stopped_until with
                      | Some t -> Float.min acc t
                      | None -> acc)
                    (now +. 0.05) live
                in
                let timeout = Float.max 1e-3 (next_timer -. now) in
                match Unix.select fds [] [] timeout with
                | readable, _, _ ->
                    List.iter
                      (fun fd ->
                        match
                          List.find_opt
                            (fun w -> w.alive && w.fd = fd)
                            pool.members
                        with
                        | Some w -> handle_read w
                        | None -> ())
                      readable
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              end
            end
          end
        done;
        let parts =
          Array.to_list results
          |> List.mapi (fun i v ->
                 match v with
                 | Some v -> (i, v)
                 | None -> raise (Master_recompute i))
        in
        Exec_domains.merge_parts ~env ~inputs l ~nchunks parts
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Checkpoints in process mode                                         *)
(* ------------------------------------------------------------------ *)

let take_checkpoint (pool : pool) ~(loop_no : int) (env : Evalenv.env)
    (sym : Sym.t option) (v : V.t) : unit =
  match pool.store with
  | Some store when Checkpoint.due store ~loop:loop_no ->
      let name = match sym with Some s -> Sym.to_string s | None -> "result" in
      let bindings =
        Sym.Map.fold (fun s bv acc -> (Sym.to_string s, bv) :: acc) env []
        @ [ (name, v) ]
      in
      let snap =
        Checkpoint.record store ~at_loop:loop_no ~chunks:pool.cfg.workers
          ~bindings
          ~driver:[ ("loop_no", V.Vint loop_no) ]
      in
      (match pool.cfg.checkpoint_dir with
      | Some dir -> ignore (Checkpoint.write_file ~dir snap)
      | None -> ());
      pool.stats.checkpoints <- pool.stats.checkpoints + 1;
      Metrics.incr pool.metrics "proc_checkpoints";
      (match pool.cfg.faults with
      | Some f -> Fault.record_checkpoint f
      | None -> ())
  | _ -> ()

let load_resume (cfg : config) : Checkpoint.snapshot option =
  if not cfg.resume then None
  else
    match cfg.checkpoint_dir with
    | None -> None
    | Some dir -> (
        match Checkpoint.latest_file ~dir with
        | None -> None
        | Some path -> (
            match Checkpoint.read_file path with
            | Checkpoint.Available s -> Some s
            | Checkpoint.Corrupt _ | Checkpoint.None_taken -> None))

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) ?(inputs = []) (program : Exp.exp) : result
    =
  let cfg = { config with workers = Stdlib.max 1 config.workers } in
  let metrics =
    match cfg.metrics with Some m -> m | None -> Metrics.create ()
  in
  let stats = fresh_stats () in
  let store =
    if cfg.checkpoint_cadence > 0 then
      Some (Checkpoint.create ~cadence:cfg.checkpoint_cadence)
    else None
  in
  let pool =
    { cfg; inputs; metrics; stats; members = []; unreaped = [];
      respawns_left = cfg.max_respawns; store }
  in
  let saved_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let t0 = Unix.gettimeofday () in
  let breakdown = ref [] in
  Fun.protect
    ~finally:(fun () ->
      shutdown pool;
      Sys.set_signal Sys.sigpipe saved_sigpipe)
    (fun () ->
      for slot = 0 to cfg.workers - 1 do
        ignore (spawn pool slot)
      done;
      let restored = load_resume cfg in
      let loop_no = ref 0 in
      let value =
        Spine.exec ~inputs
          ~on_loop:(fun env sym l ->
            incr loop_no;
            let name =
              match sym with Some s -> Sym.to_string s | None -> "result"
            in
            let restored_v =
              match restored with
              | Some snap when !loop_no <= snap.Checkpoint.at_loop ->
                  Option.map
                    (fun (e : Checkpoint.entry) ->
                      Checkpoint.copy_value e.Checkpoint.value)
                    (List.assoc_opt name snap.Checkpoint.bindings)
              | _ -> None
            in
            match restored_v with
            | Some v ->
                stats.restored_loops <- stats.restored_loops + 1;
                Metrics.incr metrics "proc_restored_loops";
                (match cfg.faults with
                | Some f -> Fault.record_restore f
                | None -> ());
                v
            | None ->
                let v, dt =
                  Dmll_util.Timing.time (fun () ->
                      Span.with_span ?tracer:cfg.obs ~tid:Span.runtime_tid
                        ~cat:"runtime"
                        ~args:[ ("loop", Span.Int !loop_no) ]
                        name
                        (fun () -> run_loop pool env ~loop_no:!loop_no l))
                in
                breakdown := (name, dt) :: !breakdown;
                Metrics.incr metrics "proc_loops";
                take_checkpoint pool ~loop_no:!loop_no env sym v;
                v)
          program
      in
      { value;
        seconds = Unix.gettimeofday () -. t0;
        breakdown = List.rev !breakdown;
        stats;
        metrics;
      })

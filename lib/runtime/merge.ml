(** Merging partial generator results from chunked multiloop execution.

    A multiloop split into index chunks produces one partial result per
    chunk; these merge functions restore exactly the sequential result:
    collects concatenate in chunk order, reductions fold partials with the
    loop's own (associative) reduction function, and bucket generators
    merge per key with first-seen ordering across chunks — which equals
    the sequential first-seen order because chunks are contiguous and
    processed in index order. *)

open Dmll_ir
module V = Dmll_interp.Value

module Vtbl = Hashtbl.Make (struct
  type t = V.t

  let equal = V.equal
  let hash = Hashtbl.hash
end)

(** Concatenate array values, preserving unboxed storage when possible. *)
let concat_arrays (vs : V.t list) : V.t =
  let non_empty = List.filter (fun v -> V.length v > 0) vs in
  match non_empty with
  | [] -> V.Varr (V.Ga [||])
  | all when List.for_all (function V.Varr (V.Fa _) -> true | _ -> false) all ->
      V.Varr (V.Fa (Array.concat (List.map V.to_float_array all)))
  | all when List.for_all (function V.Varr (V.Ia _) -> true | _ -> false) all ->
      V.Varr (V.Ia (Array.concat (List.map V.to_int_array all)))
  | all ->
      V.Varr
        (V.Ga
           (Array.concat (List.map (fun p -> Array.init (V.length p) (V.get p)) all)))

(** Fold partial reductions with the reduction function.  The first partial
    seeds the fold: every partial already starts from the identity. *)
let merge_reduce ~(env : Evalenv.env) ~(inputs : (string * V.t) list)
    (r : Exp.reduce_gen) (parts : V.t list) : V.t =
  match parts with
  | [] -> Evalenv.eval ~inputs env r.init
  | first :: rest ->
      List.fold_left
        (fun acc part ->
          let env' = Sym.Map.add r.a acc (Sym.Map.add r.b part env) in
          Evalenv.eval ~inputs env' r.rfun)
        first rest

(** Merge bucket maps with [combine] per key, first-seen order. *)
let merge_bucket_maps ~(combine : V.t -> V.t -> V.t) (parts : V.t list) : V.t =
  let tbl = Vtbl.create 64 in
  let ks = ref (Array.make 16 V.Vunit) in
  let vs = ref (Array.make 16 V.Vunit) in
  let n = ref 0 in
  let push k v =
    if !n >= Array.length !ks then begin
      let grow a =
        let a' = Array.make (2 * Array.length a) V.Vunit in
        Array.blit a 0 a' 0 !n;
        a'
      in
      ks := grow !ks;
      vs := grow !vs
    end;
    !ks.(!n) <- k;
    !vs.(!n) <- v;
    Vtbl.add tbl k !n;
    incr n
  in
  List.iter
    (fun part ->
      let m = V.as_map part in
      Array.iteri
        (fun i k ->
          let v = m.V.mvals.(i) in
          match Vtbl.find_opt tbl k with
          | Some j -> !vs.(j) <- combine !vs.(j) v
          | None -> push k v)
        m.V.mkeys)
    parts;
  V.Vmap { mkeys = Array.sub !ks 0 !n; mvals = Array.sub !vs 0 !n }

(** Merge bucket-collect maps (per-key array concatenation in part order). *)
let merge_bucket_collects (parts : V.t list) : V.t =
  (* first pass as reduce with array concatenation *)
  merge_bucket_maps ~combine:(fun a b -> concat_arrays [ a; b ]) parts

(** Restore chunk order for partials that completed out of order.  The
    retry and speculative re-execution paths finish chunks in whatever
    order recovery allows; tagging each partial with its chunk index and
    sorting here restores the sequential merge order that collects and
    first-seen bucket merging depend on. *)
let in_chunk_order (parts : (int * V.t) list) : V.t list =
  List.map snd (List.sort (fun (i, _) (j, _) -> Stdlib.compare i j) parts)

(** Merge one generator's partial results. *)
let merge_gen ~(env : Evalenv.env) ~(inputs : (string * V.t) list) (g : Exp.gen)
    (parts : V.t list) : V.t =
  match g with
  | Exp.Collect _ -> concat_arrays parts
  | Exp.Reduce r -> merge_reduce ~env ~inputs r parts
  | Exp.BucketCollect _ -> merge_bucket_collects parts
  | Exp.BucketReduce r ->
      merge_bucket_maps
        ~combine:(fun a b ->
          let env' = Sym.Map.add r.a a (Sym.Map.add r.b b env) in
          Evalenv.eval ~inputs env' r.rfun)
        parts

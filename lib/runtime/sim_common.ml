(** Shared pieces of the analytic executors.

    Each simulator executes the program for real (via the closure backend,
    so results are exact) and separately accounts {e simulated} wall-clock
    time on a modeled machine from loop sizes, per-iteration costs, read
    stencils, and data layouts.  Absolute times are model outputs, not
    measurements; the benches compare {e ratios} (speedups), which is what
    the paper's figures report. *)

open Dmll_ir
module V = Dmll_interp.Value
module Stencil = Dmll_analysis.Stencil
module Cost = Dmll_analysis.Cost

type result = {
  value : V.t;
  seconds : float;
  breakdown : (string * float) list;  (** per-phase simulated seconds *)
  traffic : (string * float) list;
      (** measured network bytes, recorded per loop and phase as
          ["<loop>/<phase>"] — the cluster executor's side of the
          prediction-vs-measurement contract ({!Dmll_analysis.Comm});
          empty for executors with no network *)
  metrics : Dmll_obs.Metrics.t;
      (** this run's observability ledger: remote reads/bytes, retries,
          replans, checkpoints, spills, … (see DESIGN.md §12).  Always a
          fresh handle per run unless the caller supplied one — there is
          no process-global state to reset between runs *)
}

(** The per-loop phases the fault-aware cluster executor appends to the
    breakdown: failure detection, lineage recomputation of lost chunks,
    and data re-distribution to the replanned topology. *)
let recovery_phases = [ "detect"; "recompute"; "rebalance" ]

(** Phases the checkpointed elastic executor may additionally charge
    (DESIGN.md §11): snapshot writes, checkpoint restores chosen over
    lineage replay, over-budget spills to disk, and membership-churn
    rebalances.  Kept separate from {!recovery_phases}, which every
    crashy run charges — these appear only when their feature is armed. *)
let elastic_phases = [ "checkpoint"; "restore"; "spill"; "churn" ]

(* ------------------------------------------------------------------ *)
(* Memory-pressure model (DESIGN.md §11)                               *)
(* ------------------------------------------------------------------ *)

(** Bytes a node must push to disk when its resident set exceeds the
    budget. *)
let spill_bytes ~(resident : float) ~(budget : float) : float =
  Float.max 0.0 (resident -. budget)

(** Remote-read slowdown for an over-budget node: paging steals the
    bandwidth remote fetches need.  Identity at or under budget, grows
    with the overshoot, capped at 2x (beyond that the node would spill,
    which is charged separately). *)
let backpressure ~(resident : float) ~(budget : float) : float =
  if budget <= 0.0 then 1.0
  else Float.min 2.0 (Float.max 1.0 (resident /. budget))

(** Sum of breakdown entries for one phase name (per-loop entries are
    recorded as ["<loop>/<phase>"]). *)
let phase_total (r : result) (phase : string) : float =
  let suffix = "/" ^ phase in
  let slen = String.length suffix in
  List.fold_left
    (fun acc (nm, s) ->
      let nlen = String.length nm in
      if nlen >= slen && String.sub nm (nlen - slen) slen = suffix then acc +. s
      else acc)
    0.0 r.breakdown

(** Approximate in-memory size of a value, for communication costs. *)
let rec value_bytes (v : V.t) : float =
  match v with
  | V.Vunit | V.Vbool _ -> 1.0
  | V.Vint _ | V.Vfloat _ -> 8.0
  | V.Vstr s -> float_of_int (String.length s + 16)
  | V.Varr (V.Fa a) -> 8.0 *. float_of_int (Array.length a)
  | V.Varr (V.Ia a) -> 8.0 *. float_of_int (Array.length a)
  | V.Varr (V.Ga a) ->
      Array.fold_left (fun acc x -> acc +. value_bytes x) 16.0 a
  | V.Vtup vs -> Array.fold_left (fun acc x -> acc +. value_bytes x) 0.0 vs
  | V.Vstruct fs -> Array.fold_left (fun acc (_, x) -> acc +. value_bytes x) 0.0 fs
  | V.Vmap m ->
      Array.fold_left (fun acc x -> acc +. value_bytes x) 0.0 m.V.mkeys
      +. Array.fold_left (fun acc x -> acc +. value_bytes x) 0.0 m.V.mvals

(** A size evaluator backed by the live environment: resolves any
    index-free size expression by actually evaluating it. *)
let live_size_evaluator ~(inputs : (string * V.t) list) (env : Evalenv.env) :
    Exp.exp -> int option =
  fun e ->
    match Evalenv.eval_int ~inputs env e with
    | n -> Some n
    | exception _ -> None

(** Element byte-size of a stencil target. *)
let target_elem_bytes ~(inputs_ty : (string * Types.ty) list) (t : Stencil.target) :
    float =
  let ty =
    match t with
    | Stencil.Tinput n -> List.assoc_opt n inputs_ty
    | Stencil.Tsym s -> Some (Sym.ty s)
  in
  match ty with
  | Some (Types.Arr t) -> float_of_int (Types.byte_size t)
  | Some (Types.Map (_, v)) -> float_of_int (Types.byte_size v)
  | _ -> 8.0

(** Per-iteration bytes read from collections satisfying [select], with
    inner-loop multiplicities resolved by [eval_size]. *)
let selected_bytes_per_iter ~(eval_size : Exp.exp -> int option)
    ~(inputs_ty : (string * Types.ty) list) ~(select : Stencil.target -> bool)
    (l : Exp.loop) : float =
  List.fold_left
    (fun acc (t, (site : Stencil.site)) ->
      if not (select t) then acc
      else
        match site.Stencil.subscript with
        | None -> acc
        | Some _ ->
            let mult =
              List.fold_left
                (fun m (_, sz) ->
                  match eval_size sz with
                  | Some n -> m *. float_of_int (Stdlib.max 1 n)
                  | None -> m *. 16.0)
                1.0
                (match site.Stencil.enclosing with [] -> [] | _ :: inner -> inner)
            in
            acc +. (mult *. target_elem_bytes ~inputs_ty t))
    0.0 (Stencil.sites_of_loop l)

(** Input types declared in a program. *)
let program_input_tys (e : Exp.exp) : (string * Types.ty) list =
  let tbl = Hashtbl.create 8 in
  ignore
    (Exp.fold
       (fun () n ->
         match n with
         | Exp.Input (name, ty, _) -> Hashtbl.replace tbl name ty
         | _ -> ())
       () e);
  Hashtbl.fold (fun n t acc -> (n, t) :: acc) tbl []

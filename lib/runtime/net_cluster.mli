(** TCP-backed cluster executor: multi-host workers, network fault
    injection, and self-healing membership (DESIGN.md §16).

    Runs the same chunk-program contract as {!Proc_cluster} over real
    TCP connections: workers — forked locally or attached from other
    hosts by the [dmll_worker] binary ({!worker_main}) — dial the
    master, handshake with a protocol version and session token, and
    serve chunk programs over the shared length-prefixed CRC32
    {!Transport} codec.  Robustness: keepalive heartbeats with
    deadlines, bounded task retransmission on CRC-rejected frames,
    reconnect-and-resume within a grace window (in-flight chunks
    replayed from the retained chunk plan), {!Schedule.replan}-based
    recovery with budgeted replacement admission on permanent loss, and
    graceful degradation to master-inline evaluation past the budget.
    With faults armed, every outgoing frame draws a {!Fault.link_fate}
    (partition / sever / corrupt / delay) delivered for real on the
    live socket.

    Determinism contract: identical to {!Proc_cluster} — the chunk plan
    is a pure function of the loop size and the {e configured} worker
    count, so a faulted run merges the same chunk partials in the same
    order as a healthy run and produces a bit-identical value. *)

module V = Dmll_interp.Value
module M = Dmll_machine.Machine
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

(** {1 Wire protocol}

    Exposed so protocol-level tests (and future interop tools) can
    speak to a master without going through {!worker_main}. *)

val protocol_version : int

(** First frame on every new connection, worker → master.  [reconnect]
    carries the session id of a previous incarnation to resume. *)
type hello = { version : int; token : string; reconnect : int option }

type task = {
  task_id : int;
  loop_no : int;
  chunk : int;
  base_attempt : int;
  prog : Dmll_ir.Exp.exp;
  bindings : (string * V.t) list;
}

(** Master's handshake answer: join credentials plus everything a
    remote worker needs (fault spec, program inputs). *)
type welcome =
  | Accepted of {
      slot : int;
      wid : int;
      spec : M.fault_model option;
      inputs : (string * V.t) list;
      heartbeat_s : float;
    }
  | Rejected of { reason : string }

type to_worker = Task of task | Ping of int | Shutdown

type from_worker =
  | Done of { task_id : int; chunk : int; value : V.t; retries : int }
  | Refused of { task_id : int; chunk : int; msg : string }
  | Pong of int
  | Bad_frame of { detail : string }
      (** the worker rejected a corrupt (CRC-failed) frame; the master
          retransmits the in-flight task within a resend budget *)

(** {1 Configuration} *)

type config = {
  workers : int;  (** slots (and the fixed chunk fan-out) *)
  listen : string option;
      (** [HOST:PORT] to bind; [None] binds loopback on an ephemeral
          port *)
  token : string option;
      (** session token required in every hello; [None] generates one *)
  spawn_local : bool;
      (** fork local worker processes that dial back in; [false] waits
          for external [dmll_worker] processes to attach *)
  faults : Fault.t option;
      (** arms worker-side chunk faults, master-side murder of local
          workers, {e and} per-frame link faults on every connection *)
  task_deadline_s : float;
  heartbeat_s : float;
      (** keepalive ping cadence on idle links; three missed pongs
          declare the link dead *)
  reconnect_grace_s : float;
      (** how long a dropped link's chunks are retained for its worker
          to redial and resume; [<= 0.] disables reconnection *)
  join_deadline_s : float;  (** how long {!run} waits for initial joins *)
  accept_deadline_s : float;
      (** a dialer must complete its hello within this long *)
  max_respawns : int;
      (** replacement-admission budget for the whole run *)
  worker_redials : int;
      (** reconnect attempts a locally forked worker makes per lost
          link *)
  obs : Span.t option;
  metrics : Metrics.t option;
  on_spawn : (slot:int -> pid:int -> unit) option;
  on_task_sent : (slot:int -> chunk:int -> unit) option;
      (** test hook, called right after a task frame is written and
          before its first reply can arrive *)
  on_listen : (addr:string -> unit) option;
      (** called once with the bound [HOST:PORT] before any worker is
          spawned — how tests and [dmll_run --listen] learn the
          ephemeral port *)
}

val default_config : config
(** 2 local workers on a loopback ephemeral port, 5 s task deadline,
    0.25 s heartbeat, 0.5 s reconnect grace, 8 respawns, 2 redials, no
    faults. *)

(** {1 Run statistics} — all observed from the master. *)

type stats = {
  mutable spawned : int;
  mutable respawned : int;
  mutable connects : int;  (** fresh sessions accepted *)
  mutable reconnects : int;  (** resumed sessions accepted *)
  mutable rejections : int;  (** hellos refused (version/token/slot/grace) *)
  mutable disconnects : int;  (** links lost into a grace window *)
  mutable grace_expired : int;
  mutable killed : int;
  mutable link_cuts : int;  (** injected master-side link severs *)
  mutable stopped : int;
  mutable deadline_kills : int;
  mutable heartbeat_kills : int;
  mutable frame_resends : int;  (** tasks retransmitted after [Bad_frame] *)
  mutable io_retries : int;
  mutable replans : int;
  mutable recovered_chunks : int;
  mutable master_chunks : int;
  mutable worker_retries : int;
  mutable pings : int;
  mutable pongs : int;
  mutable degraded : bool;
  mutable pids : int list;
}

val stats_to_string : stats -> string

type result = {
  value : V.t;
  seconds : float;
  breakdown : (string * float) list;
  stats : stats;
  metrics : Metrics.t;
}

(** {1 Entry points} *)

val run : ?config:config -> ?inputs:(string * V.t) list -> Dmll_ir.Exp.exp -> result
(** Execute a program with its outer multiloops distributed across
    TCP-attached workers.  Always terminates with every link closed,
    the listener closed, and every locally forked child reaped —
    including when the program itself raises — via a [Fun.protect]ed
    shutdown sweep. *)

val worker_main :
  ?redials:int ->
  ?dial_attempts:int ->
  ?dial_backoff_s:float ->
  addr:string ->
  token:string ->
  unit ->
  int
(** The dialing side — what [dmll_worker] and locally forked children
    run.  Dials [addr] with bounded exponential backoff, handshakes,
    serves chunk programs until shutdown, and redials with its session
    id (up to [redials] times) when the link drops.  Returns the
    process exit code: 0 orderly, 2 internal error, 4 never joined
    (exit code 3 — injected permanent crash — leaves via [Unix._exit]
    mid-task). *)

(** Hierarchical multiloop scheduling (paper §5).

    "The cluster master can partition a given multiloop into chunks and
    distribute those chunks across machines.  The range of each machine's
    chunk is chosen by combining the input data's access stencil with the
    input's directory ... Then each machine can further partition its
    chunk of work across sockets, cores, and/or GPUs using similar
    logic."

    {!plan} realizes exactly that: split the iteration space over nodes
    along the partitioned input's directory boundaries (so Interval-stencil
    reads stay node-local), then each node's range over its sockets (again
    boundary-aligned, for NUMA-local reads), then each socket's range over
    its cores.  The work units drive the simulated executors' accounting
    and are property-tested for exact coverage and alignment. *)

module M = Dmll_machine.Machine

type unit_of_work = {
  node : int;
  socket : int;
  core : int;
  range : Chunk.range;
}

(* Split [r] into at most [k] sub-ranges, cutting only at [boundaries]
   when the boundaries subdivide it finely enough; otherwise split evenly
   (the data is replicated or remote-read anyway). *)
let split_range ~(k : int) ~(boundaries : int list) (r : Chunk.range) :
    Chunk.range list =
  let inner = List.filter (fun b -> b > r.Chunk.lo && b < r.Chunk.hi) boundaries in
  if List.length inner + 1 >= k && inner <> [] then begin
    (* group boundary-delimited pieces into k near-even runs *)
    let pieces =
      Chunk.split_on_boundaries
        ~boundaries:(List.map (fun b -> b - r.Chunk.lo) inner)
        (Chunk.size r)
    in
    let pieces =
      List.map
        (fun p -> { Chunk.lo = p.Chunk.lo + r.Chunk.lo; hi = p.Chunk.hi + r.Chunk.lo })
        pieces
    in
    let np = List.length pieces in
    let groups = Stdlib.min k np in
    List.init groups (fun g ->
        let lo_i = np * g / groups and hi_i = np * (g + 1) / groups in
        let first = List.nth pieces lo_i and last = List.nth pieces (hi_i - 1) in
        { Chunk.lo = first.Chunk.lo; hi = last.Chunk.hi })
  end
  else
    List.map
      (fun c -> { Chunk.lo = c.Chunk.lo + r.Chunk.lo; hi = c.Chunk.hi + r.Chunk.lo })
      (Chunk.split ~k (Chunk.size r))

(** Plan a loop of [n] iterations over [nodes] machines of [sockets]
    sockets x [cores] cores, aligning node and socket cuts to
    [boundaries] (the partitioned input's directory, when it has one). *)
let plan ?(boundaries = []) ~(nodes : int) ~(sockets : int) ~(cores : int) (n : int) :
    unit_of_work list =
  let whole = { Chunk.lo = 0; hi = n } in
  if n <= 0 then []
  else
    List.concat
      (List.mapi
         (fun node nr ->
           List.concat
             (List.mapi
                (fun socket sr ->
                  List.mapi
                    (fun core cr -> { node; socket; core; range = cr })
                    (split_range ~k:cores ~boundaries sr))
                (split_range ~k:sockets ~boundaries nr)))
         (split_range ~k:nodes ~boundaries whole))

(** Plan for a NUMA machine (single node). *)
let plan_numa ?(boundaries = []) (m : M.numa) (n : int) : unit_of_work list =
  plan ~boundaries ~nodes:1 ~sockets:m.M.sockets ~cores:m.M.socket.M.cores n

(** Plan across a cluster of NUMA nodes. *)
let plan_cluster ?(boundaries = []) (c : M.cluster) (n : int) : unit_of_work list =
  plan ~boundaries ~nodes:c.M.nodes ~sockets:c.M.node.M.numa.M.sockets
    ~cores:c.M.node.M.numa.M.socket.M.cores n

(** Re-plan after node failures (paper §5's lineage property: a multiloop
    chunk is recomputable from its range and inputs alone).  Work units
    owned by nodes in [dead] are coalesced into recovery regions and
    re-split across the surviving nodes — cutting at [boundaries] where
    the directory subdivides a region finely enough, exactly like the
    original {!plan} — while survivors keep their own units untouched.
    Replacement units are issued at node granularity (socket/core 0): the
    receiving machine re-partitions its extra chunk locally, as §5's
    hierarchical scheduling always does.  Raises [Invalid_argument] when
    every node owning work is dead (nothing can recover the lost ranges). *)
let replan ?(boundaries = []) ~(dead : int list) (units : unit_of_work list) :
    unit_of_work list =
  let is_dead u = List.mem u.node dead in
  let kept, lost = List.partition (fun u -> not (is_dead u)) units in
  if lost = [] then units
  else begin
    let survivors =
      List.sort_uniq compare (List.map (fun (u : unit_of_work) -> u.node) kept)
    in
    if survivors = [] then invalid_arg "Schedule.replan: no surviving nodes";
    let ns = List.length survivors in
    let regions = Chunk.coalesce (List.map (fun u -> u.range) lost) in
    (* with a directory, re-split only at its boundaries — a region that
       no boundary subdivides moves whole to one survivor, keeping every
       replacement chunk directory-aligned; without one, balance evenly *)
    let pieces_of region =
      match boundaries with
      | [] -> split_range ~k:ns ~boundaries:[] region
      | _ ->
          let inner =
            List.filter
              (fun b -> b > region.Chunk.lo && b < region.Chunk.hi)
              boundaries
          in
          List.map
            (fun p ->
              { Chunk.lo = p.Chunk.lo + region.Chunk.lo;
                hi = p.Chunk.hi + region.Chunk.lo })
            (Chunk.split_on_boundaries
               ~boundaries:(List.map (fun b -> b - region.Chunk.lo) inner)
               (Chunk.size region))
    in
    let replacement =
      List.concat_map
        (fun region ->
          List.mapi
            (fun j r ->
              { node = List.nth survivors (j mod ns); socket = 0; core = 0; range = r })
            (pieces_of region))
        regions
    in
    kept @ replacement
  end

(** Re-plan the whole iteration space across an explicit live node-id
    set (elastic membership, DESIGN.md §11): after a join or a graceful
    leave the live ids are neither contiguous nor the original count, so
    {!plan}'s positional node numbering no longer applies.  The space is
    split across the live nodes — directory-aligned, like {!plan} — and
    units are issued at node granularity (socket/core 0): each machine
    re-partitions its chunk locally, as §5's hierarchical scheduling
    always does.  Raises [Invalid_argument] on an empty live set. *)
let rebalance ?(boundaries = []) ~(live : int list) (n : int) :
    unit_of_work list =
  let live = List.sort_uniq compare live in
  if live = [] then invalid_arg "Schedule.rebalance: no live nodes";
  if n <= 0 then []
  else
    let whole = { Chunk.lo = 0; hi = n } in
    let node_of = Array.of_list live in
    List.mapi
      (fun i r -> { node = node_of.(i); socket = 0; core = 0; range = r })
      (split_range ~k:(Array.length node_of) ~boundaries whole)

(** Does the plan cover [0, n) exactly, in order, without overlap? *)
let covers (units : unit_of_work list) (n : int) : bool =
  let ranges = List.map (fun u -> u.range) units in
  let sorted = List.sort (fun a b -> compare a.Chunk.lo b.Chunk.lo) ranges in
  let rec go expected = function
    | [] -> expected = n
    | r :: rest -> r.Chunk.lo = expected && r.Chunk.hi > r.Chunk.lo && go r.Chunk.hi rest
  in
  (n = 0 && units = []) || go 0 sorted

(** Checkpoint store: periodic deep-copied, chunk-checksummed snapshots
    of the spine bindings, with a cost model for choosing between
    checkpoint restore and lineage replay after a crash (DESIGN.md §11).

    The store's mutable internals (latest snapshot slot, written-byte
    accumulator, decision log) are private; callers observe them through
    {!latest}, {!taken}, {!written_bytes}, and {!decisions}. *)

module V = Dmll_interp.Value
module M = Dmll_machine.Machine

val copy_value : V.t -> V.t
(** Deep copy via marshalling — snapshot entries never alias live data. *)

val value_bytes : V.t -> int
(** Marshalled size, the snapshot's unit of account. *)

type chunk_sum
(** Per-chunk checksum of a snapshot entry (content-addressed
    verification at restore time). *)

type entry = {
  value : V.t;  (** deep-copied binding value *)
  bytes : int;  (** marshalled size *)
  sums : chunk_sum list;  (** per-chunk checksums, verified on restore *)
}

type snapshot = {
  at_loop : int;  (** spine loop number the snapshot was taken after *)
  bindings : (string * entry) list;
      (** live spine bindings: distributed partitions and scalars alike *)
  driver : (string * V.t) list;
      (** iterative-driver state — iteration counter, accumulators —
          that lives outside the spine environment *)
}

val snapshot_bytes : snapshot -> float

val verify : snapshot -> (unit, string) result
(** Re-hash every chunk of every entry and compare against the sums taken
    at record time.  [Error] names the first mismatching binding/range. *)

type choice = Restore | Replay

val choice_to_string : choice -> string

type decision = {
  decided_at_loop : int;
  chosen : choice;
  restore_cost : float;  (** predicted seconds for checkpoint restore *)
  replay_cost : float;  (** predicted seconds for lineage replay *)
}

type t
(** A checkpoint store; created with a cadence, mutated by {!record} and
    {!record_decision}. *)

val create : cadence:int -> t
val enabled : t -> bool
val due : t -> loop:int -> bool
val latest : t -> snapshot option
val taken : t -> int
val written_bytes : t -> float
val decisions : t -> decision list
(** Restore-vs-replay decisions, oldest first. *)

val record :
  t ->
  at_loop:int ->
  chunks:int ->
  bindings:(string * V.t) list ->
  driver:(string * V.t) list ->
  snapshot
(** Snapshot the given bindings (deep-copied, chunk-checksummed) as the
    new latest checkpoint.  [chunks] should be the live node count so
    checksum granularity matches the unit of restore traffic. *)

type restore_result =
  | Available of snapshot  (** latest snapshot, checksums verified *)
  | Corrupt of string  (** a checksum failed: fall back to lineage *)
  | None_taken

val restore : t -> restore_result
(** The latest snapshot, verified.  A corrupt checkpoint is reported, not
    returned — the caller falls back to lineage replay, which needs no
    stored bytes at all. *)

val write_file : dir:string -> snapshot -> string
(** Persist a snapshot crash-safely under [dir] and return the committed
    path.  The image is written to a [".snap.tmp"] sibling, fsynced,
    renamed to its final ["ckpt-NNNNNN.snap"] name, and the directory is
    fsynced — the rename is the commit point, so a process dying at any
    instant leaves either the previous complete snapshot or an ignorable
    [".tmp"], never a torn image that fails its checksum at restore. *)

val read_file : string -> restore_result
(** Read back a snapshot written by {!write_file}, verifying the magic
    header and every chunk checksum; any truncation, decode failure, or
    checksum mismatch comes back as [Corrupt]. *)

val latest_file : dir:string -> string option
(** The highest-numbered committed [".snap"] in [dir], if any; in-flight
    [".tmp"] files are never considered. *)

val record_decision :
  t -> decided_at_loop:int -> restore_cost:float -> replay_cost:float -> choice
(** Pick the cheaper recovery arm and log the decision. *)

val write_seconds : cluster:M.cluster -> nodes:int -> bytes:float -> float
(** Simulated seconds to write a snapshot of [bytes] from [nodes]. *)

val restore_seconds :
  cluster:M.cluster -> nodes:int -> lost_nodes:int -> bytes:float -> float
(** Simulated seconds to re-ship the lost share of a snapshot. *)

val decisions_to_json : t -> string
(** The decision log as a JSON array (for tools and tests). *)

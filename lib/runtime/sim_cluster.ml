(** Cluster executor/simulator (paper §6.2, Figure 8).

    Models the hierarchical execution of §5: the cluster master partitions
    each outer multiloop into per-node chunks along the partitioned
    input's directory boundaries; each node then runs its chunk on its own
    (modeled) NUMA machine or GPU.  Costs charged per loop:

    - {e compute}: the per-node NUMA (or GPU) time for [n/nodes]
      iterations — nodes run concurrently, so the slowest node's chunk
      bounds the phase;
    - {e broadcast}: [Local] collections consumed by the loop are
      serialized and sent to every node;
    - {e replication}: if the partitioned input's stencil is not
      local-friendly (All/Unknown survived every rewrite), the whole
      dataset crosses the network — the §4.2 fallback, and the reason the
      Figure-3 rewrites are "not simply performance optimizations";
    - {e gather}: [Local]-result generators (reduce, buckets) return each
      node's partial to the master, which merges them.

    With a {!Fault} injector in the config, execution becomes
    failure-aware (DESIGN.md §9).  Each multiloop additionally draws a
    fate per live node; crashes and stragglers charge three new phases:

    - {e detect}: heartbeat-based failure detection (a node is declared
      dead after three missed heartbeats);
    - {e recompute}: dead nodes' chunks are re-planned onto the survivors
      along directory boundaries ({!Schedule.replan}) and recomputed from
      lineage — the phase is bounded by the survivor that received the
      most re-planned work.  Stragglers are speculatively re-executed, so
      a slowed node bounds the compute phase by at most the speculative
      copy's completion, not its full slowdown;
    - {e rebalance}: the dead nodes' partitions are re-materialized on the
      survivors, and restarted (transient) nodes re-receive the loop's
      broadcast data.

    Permanent crashes shrink the live-node set for the rest of the run;
    transient ones hurt a single loop.  Values are exact in every case:
    the program is still executed by the closure backend, faults only
    shape the charged time. *)

open Dmll_ir
module V = Dmll_interp.Value
module Stencil = Dmll_analysis.Stencil
module Partition = Dmll_analysis.Partition
module Comm = Dmll_analysis.Comm
module Mem = Dmll_analysis.Mem
module Diag = Dmll_analysis.Diag
module M = Dmll_machine.Machine
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

type device = Cpu | Gpu_device

type config = {
  cluster : M.cluster;
  device : device;  (** run node chunks on cores or on the node's GPU *)
  gpu_options : Sim_gpu.options;
  faults : Fault.t option;
      (** fault injection + recovery accounting; [None] is the exact
          healthy model of the paper *)
  checkpoint_cadence : int;
      (** snapshot the spine bindings every this-many loops ([<= 0]
          disables); arms the restore-vs-replay recovery policy
          (DESIGN.md §11) *)
  mem_budget_gb : float option;
      (** per-node memory budget override; [None] uses the node's
          [mem_gb].  Over-budget loops spill to disk and see remote-read
          backpressure. *)
  obs : Span.t option;
      (** span tracer: every loop and its phases become spans on the
          simulated clock (1 s of modeled time = 1e6 µs of trace time),
          exportable as Chrome [trace_event] JSON (DESIGN.md §12) *)
  metrics : Metrics.t option;
      (** per-run observability ledger to accumulate into; a private
          fresh one is used when [None].  The handle also reaches any
          {!Dist_array} the caller scattered with it, so element-granular
          remote-read bytes land in the run that caused them. *)
}

let default_config =
  { cluster = M.ec2_cluster;
    device = Cpu;
    gpu_options = Sim_gpu.default_options;
    faults = None;
    checkpoint_cadence = 0;
    mem_budget_gb = None;
    obs = None;
    metrics = None;
  }

(* Accumulated compute charged so far — the burden a pure lineage replay
   re-pays.  [since_ckpt] resets whenever a snapshot is taken, so the
   restore arm only re-pays the tail (DESIGN.md §11). *)
type recovery_ctx = {
  store : Checkpoint.t;
  mutable compute_total_s : float;
  mutable compute_since_ckpt_s : float;
}

let net_seconds (c : M.cluster) ~bytes ~messages =
  (bytes /. (c.M.net_bw_gbs *. 1e9))
  +. (float_of_int messages *. c.M.net_lat_us *. 1e-6)

let ser_seconds (c : M.cluster) ~bytes = bytes /. (c.M.ser_gbs *. 1e9)

(* Collective phases (broadcast / gather) run as pipelined trees: latency
   scales with log2(nodes), and the wire carries ~2x the payload end to
   end rather than one copy per receiver.  A 1-node cluster has no tree —
   and no collective — at all. *)
let tree_depth nodes =
  if nodes <= 1 then 0
  else Stdlib.max 1 (int_of_float (ceil (log (float_of_int nodes) /. log 2.0)))

(* Simulated time of one outer loop on the cluster.  [alive] holds the
   ids of the currently live nodes; with faults enabled this loop's
   events may remove permanently crashed nodes from it.  Returns
   (seconds, per-phase seconds, per-phase measured network bytes); the
   byte parts feed the prediction-vs-measurement contract
   ({!Dmll_analysis.Comm.check_measured}, armed by [DMLL_DEBUG=1]). *)
let loop_time ~(config : config) ~(layout_of : Stencil.target -> Exp.layout)
    ~(inputs_ty : (string * Types.ty) list) ~(eval_size : Exp.exp -> int option)
    ~(env : Evalenv.env) ~(inputs : (string * V.t) list)
    ?(fault : (Fault.t * int) option) ?(label = "loop")
    ?(spares = ref ([] : int list)) ?(recovery : recovery_ctx option)
    ?(metrics : Metrics.t option) ~(alive : int list ref) (l : Exp.loop)
    ~(n : int) : float * (string * float) list * (string * float) list =
  let c = config.cluster in
  let bump ?by key =
    match metrics with Some m -> Metrics.incr ?by m key | None -> ()
  in
  let addb key b =
    match metrics with Some m -> Metrics.add_bytes m key b | None -> ()
  in
  (* elastic membership first: joins and graceful leaves take effect
     before this loop is scheduled, so the plan below already targets the
     new live set.  The moved-ownership fraction prices the
     directory-aligned rebalance ({!Schedule.rebalance}) as the churn
     phase once the loop's partitioned bytes are known. *)
  let churn_moved_frac =
    match fault with
    | Some (inj, loop_no) when n > 0 ->
        let before = !alive in
        let events =
          Fault.membership_events inj ~loop:loop_no ~alive:before
            ~spares:!spares
        in
        if events = [] then 0.0
        else begin
          List.iter
            (function
              | Fault.Join { node } ->
                  alive := !alive @ [ node ];
                  spares := List.filter (fun s -> s <> node) !spares
              | Fault.Leave { node } ->
                  alive := List.filter (fun s -> s <> node) !alive)
            events;
          let owner_of units i =
            List.find_map
              (fun (u : Schedule.unit_of_work) ->
                if i >= u.Schedule.range.Chunk.lo && i < u.Schedule.range.Chunk.hi
                then Some u.Schedule.node
                else None)
              units
          in
          let old_plan = Schedule.rebalance ~live:before n in
          let new_plan = Schedule.rebalance ~live:!alive n in
          let moved = ref 0 in
          List.iter
            (fun (u : Schedule.unit_of_work) ->
              let r = u.Schedule.range in
              (* ownership changes at plan-piece granularity; sampling the
                 piece's first element is exact because both plans are
                 directory-aligned splits of the same space *)
              if owner_of old_plan r.Chunk.lo <> Some u.Schedule.node then
                moved := !moved + Chunk.size r)
            new_plan;
          float_of_int !moved /. float_of_int n
        end
    | _ -> 0.0
  in
  let nodes_alive = !alive in
  let na = List.length nodes_alive in
  let stencils = Stencil.of_loop l in
  let partitioned =
    List.filter (fun (t, _) -> layout_of t = Exp.Partitioned) stencils
  in
  let value_of_target t =
    match t with
    | Stencil.Tinput name -> List.assoc_opt name inputs
    | Stencil.Tsym s -> Sym.Map.find_opt s env
  in
  if partitioned = [] then begin
    (* no distributed data: the loop runs on the master node alone, which
       is immune to injected faults (it models the driver) *)
    let numa_cfg =
      { Sim_numa.machine = config.cluster.M.node.M.numa;
        threads = M.total_cores config.cluster.M.node.M.numa;
        mode = Sim_numa.Numa_aware;
      }
    in
    let dt =
      Sim_numa.loop_time ~machine:numa_cfg.Sim_numa.machine
        ~threads:numa_cfg.Sim_numa.threads ~mode:numa_cfg.Sim_numa.mode ~layout_of
        ~inputs_ty ~eval_size l ~n
    in
    (dt, [ ("master-only", dt) ], [])
  end
  else begin
    (* per-node compute on a 1/nodes chunk *)
    let compute_for chunk_n =
      match config.device with
      | Cpu ->
          Sim_numa.loop_time ~machine:c.M.node.M.numa
            ~threads:(M.total_cores c.M.node.M.numa) ~mode:Sim_numa.Numa_aware
            ~layout_of ~inputs_ty ~eval_size l ~n:chunk_n
      | Gpu_device -> (
          match c.M.node.M.gpu with
          | None -> invalid_arg "Sim_cluster: node has no GPU"
          | Some gpu -> (
              match
                Dmll_backend.Gpu.kernels_of
                  ~transposed:config.gpu_options.Sim_gpu.transpose ~eval_size
                  (Exp.Loop l)
              with
              | k :: _ ->
                  Sim_gpu.kernel_time
                    ~row_to_column:config.gpu_options.Sim_gpu.row_to_column ~gpu
                    ~n:chunk_n k
              | [] -> 0.0))
    in
    let chunk_n = (n + na - 1) / na in
    let compute_s = compute_for chunk_n in
    (* broadcast every Local collection the loop consumes *)
    let broadcast_bytes =
      List.fold_left
        (fun acc (t, _) ->
          if layout_of t = Exp.Local then
            match value_of_target t with
            | Some v -> acc +. Sim_common.value_bytes v
            | None -> acc
          else acc)
        0.0 stencils
    in
    (* a collective over the live nodes; free on a 1-node "cluster".  The
       broadcast keeps its tree-latency floor even for empty payloads (the
       control round-trip that launches the loop); replication is skipped
       entirely when nothing needs replicating. *)
    let collective ?(skip_empty = false) bytes =
      if na <= 1 || (skip_empty && bytes = 0.0) then 0.0
      else
        ser_seconds c ~bytes
        +. net_seconds c ~bytes:(bytes *. 2.0) ~messages:(tree_depth na)
    in
    let broadcast_s = collective broadcast_bytes in
    (* replication fallback for non-local-friendly partitioned stencils,
       plus the halo exchange for shifted-interval stencils: each chunk
       boundary trades |c| border elements, never more than the whole
       collection *)
    let replicate_bytes =
      List.fold_left
        (fun acc (t, s) ->
          let coll =
            match value_of_target t with
            | Some v -> Sim_common.value_bytes v
            | None -> 0.0
          in
          if not (Stencil.local_friendly s) then acc +. coll
          else
            let w = Stencil.halo_width s in
            if w = 0 then acc
            else
              acc
              +. Float.min
                   (float_of_int (w * na)
                   *. Sim_common.target_elem_bytes ~inputs_ty t)
                   coll)
        0.0 partitioned
    in
    let replicate_s = collective ~skip_empty:true replicate_bytes in
    (* gather Local results (reduce / bucket partials) from every node *)
    let gather_bytes =
      List.fold_left
        (fun acc g ->
          match g with
          | Exp.Collect _ -> acc (* stays partitioned *)
          | Exp.Reduce { init; _ } -> (
              match Evalenv.eval ~inputs env init with
              | v -> acc +. Sim_common.value_bytes v
              | exception _ -> acc +. 64.0)
          | Exp.BucketCollect _ | Exp.BucketReduce _ ->
              acc +. 4096.0 (* modest per-node bucket table *))
        0.0 l.Exp.gens
    in
    let gather_s =
      if na <= 1 then 0.0
      else
        ser_seconds c ~bytes:(gather_bytes *. float_of_int na)
        +. net_seconds c
             ~bytes:(gather_bytes *. float_of_int (na - 1))
             ~messages:(tree_depth na)
    in
    (* total partitioned bytes this loop touches — the payload churn
       rebalances, crashes re-materialize, and checkpoints image *)
    let part_bytes =
      List.fold_left
        (fun acc (t, _) ->
          match value_of_target t with
          | Some v -> acc +. Sim_common.value_bytes v
          | None -> acc)
        0.0 partitioned
    in
    (* membership churn: ship the re-owned share to its new homes *)
    let churn_s =
      let moved = part_bytes *. churn_moved_frac in
      if moved <= 0.0 then 0.0
      else begin
        addb "churn_bytes" moved;
        ser_seconds c ~bytes:moved +. net_seconds c ~bytes:moved ~messages:na
      end
    in
    (* memory pressure (DESIGN.md §11): estimate the per-node resident
       set this loop needs — its partition share plus every broadcast
       copy and its reduction partials.  Over budget, the overshoot
       spills to local disk and remote reads see backpressure. *)
    let budget_bytes =
      (match config.mem_budget_gb with
      | Some g -> g
      | None -> c.M.node.M.mem_gb)
      *. 1e9
    in
    let resident =
      (part_bytes /. float_of_int (Stdlib.max 1 na))
      +. broadcast_bytes +. gather_bytes
    in
    let spill_s =
      let b = Sim_common.spill_bytes ~resident ~budget:budget_bytes in
      if b <= 0.0 then 0.0
      else begin
        addb "spill_bytes" b;
        ser_seconds c ~bytes:b +. (b /. (c.M.disk_gbs *. 1e9))
      end
    in
    let replicate_s =
      replicate_s *. Sim_common.backpressure ~resident ~budget:budget_bytes
    in
    (* nonzero elastic phases, appended to whichever arm returns *)
    let elastic_parts =
      List.filter
        (fun (_, s) -> s > 0.0)
        [ ("churn", churn_s); ("spill", spill_s) ]
    in
    let elastic_s = churn_s +. spill_s in
    (* measured wire bytes per phase; na <= 1 means no network at all *)
    let traffic =
      if na <= 1 then []
      else
        [ ("broadcast", broadcast_bytes); ("replicate", replicate_bytes);
          ("gather", gather_bytes *. float_of_int na) ]
    in
    List.iter (fun (p, b) -> addb (p ^ "_bytes") b) traffic;
    (* prediction-vs-measurement: the loop's comm plan, resolved against
       the live values the simulator itself just charged for, must bound
       the measured traffic (up to serialization slack).  Predictions use
       the full configured node count, an upper bound on [na]. *)
    if !Comm.validate_enabled then begin
      let plan = Comm.of_loop ~layout_of ~label l in
      let resolver =
        { Comm.collection_bytes =
            (fun t ->
              match value_of_target t with
              | Some v -> Sim_common.value_bytes v
              | None -> 0.0);
          elem_bytes = Sim_common.target_elem_bytes ~inputs_ty;
          init_bytes =
            (fun i ->
              match Evalenv.eval ~inputs env i with
              | v -> Sim_common.value_bytes v
              | exception _ -> 64.0);
        }
      in
      let predicted p =
        Comm.phase_bytes ~nodes:c.M.nodes ~layout_of resolver plan p
      in
      let site = "cluster:" ^ label in
      List.iter
        (fun (phase, measured, p) ->
          Comm.check_measured ~site ~phase ~predicted:(predicted p) ~measured)
        [ ("broadcast", broadcast_bytes, `Broadcast);
          ("replicate", replicate_bytes, `Replicate);
          ("gather", gather_bytes *. float_of_int na, `Gather) ]
    end;
    match fault with
    | None ->
        let total =
          compute_s +. broadcast_s +. replicate_s +. gather_s +. elastic_s
        in
        ( total,
          [ ("compute", compute_s); ("broadcast", broadcast_s);
            ("replicate", replicate_s); ("gather", gather_s) ]
          @ elastic_parts,
          traffic )
    | Some (inj, loop_no) ->
        let spec = Fault.spec inj in
        let fates =
          List.map (fun node -> (node, Fault.node_fate inj ~loop:loop_no ~node)) nodes_alive
        in
        let crashed =
          List.filter_map
            (function nd, Fault.Crashed { permanent } -> Some (nd, permanent) | _ -> None)
            fates
        in
        (* never let the whole cluster die: if every live node crashed,
           the master restarts the first in place *)
        let crashed = if List.length crashed = na then List.tl crashed else crashed in
        let stragglers =
          List.filter_map
            (function nd, Fault.Straggling { slowdown } -> Some (nd, slowdown) | _ -> None)
            fates
        in
        let stragglers =
          List.filter (fun (nd, _) -> not (List.mem_assoc nd crashed)) stragglers
        in
        let nc = List.length crashed in
        (* detection: three missed heartbeats declare a node dead; slow
           tasks are spotted by progress comparison at the same cadence *)
        let detect_s =
          if nc > 0 || stragglers <> [] then 3.0 *. spec.M.heartbeat_ms *. 1e-3
          else 0.0
        in
        (* stragglers: the phase is bounded by the speculative copy, which
           starts when the healthy nodes finish — never worse than 2x the
           healthy chunk time, however slow the straggler *)
        let compute_s =
          match stragglers with
          | [] -> compute_s
          | ss ->
              List.iter (fun _ -> Fault.record_speculation inj) ss;
              bump ~by:(List.length ss) "speculations";
              let worst = List.fold_left (fun m (_, s) -> Float.max m s) 1.0 ss in
              compute_s *. Float.min worst 2.0
        in
        (* crashes: re-plan the dead nodes' chunks onto the survivors and
           recompute them from lineage; the phase is bounded by the
           survivor that received the most re-planned work *)
        let recompute_s =
          if nc = 0 then 0.0
          else begin
            Fault.record_replan inj;
            bump "replans";
            let units = Schedule.plan ~nodes:na ~sockets:1 ~cores:1 n in
            let dead_idx =
              List.filteri (fun i _ -> List.mem_assoc (List.nth nodes_alive i) crashed)
                (List.init na (fun i -> i))
            in
            (* a loop smaller than the cluster plans onto a prefix of the
               nodes; if every node holding work died, {!Schedule.replan}
               has no in-plan survivor to shift onto — re-plan the whole
               space across the remaining live nodes instead (the same
               directory-aligned rebalance elastic membership uses) *)
            let replanned =
              let unit_nodes =
                List.sort_uniq compare
                  (List.map (fun (u : Schedule.unit_of_work) -> u.Schedule.node) units)
              in
              if List.exists (fun nd -> not (List.mem nd dead_idx)) unit_nodes
              then Schedule.replan ~dead:dead_idx units
              else
                Schedule.rebalance
                  ~live:
                    (List.filter
                       (fun i -> not (List.mem i dead_idx))
                       (List.init na (fun i -> i)))
                  n
            in
            let extra =
              List.filter (fun u -> not (List.memq u units)) replanned
            in
            if !Fault.post_replan_check <> None then
              List.iter
                (fun (u : Schedule.unit_of_work) ->
                  Fault.check_replan "cluster-replan"
                    (Exec_domains.chunk_loop l u.Schedule.range))
                extra;
            let max_extra =
              List.fold_left
                (fun acc (survivor : int) ->
                  let mine =
                    List.fold_left
                      (fun a (u : Schedule.unit_of_work) ->
                        if u.Schedule.node = survivor then a + Chunk.size u.Schedule.range
                        else a)
                      0 extra
                  in
                  Stdlib.max acc mine)
                0
                (List.sort_uniq compare
                   (List.map (fun (u : Schedule.unit_of_work) -> u.Schedule.node) extra))
            in
            if max_extra = 0 then 0.0 else compute_for max_extra
          end
        in
        (* restore-vs-replay (DESIGN.md §11): with a checkpoint store
           armed, a crash prices both recovery paths and takes the
           cheaper.  Replay re-pays the lost share of every compute
           second since job start (lineage bottoms out at the inputs);
           restore ships the lost share of the snapshot and re-pays only
           the tail since it was taken.  Without a store this reduces to
           the pure lineage model of DESIGN.md §9. *)
        let recompute_s, restore_s =
          if nc = 0 then (recompute_s, 0.0)
          else
            match recovery with
            | None -> (recompute_s, 0.0)
            | Some ctx ->
                let lost_frac = float_of_int nc /. float_of_int na in
                let replay_cost =
                  recompute_s +. (lost_frac *. ctx.compute_total_s)
                in
                let restorable =
                  match Checkpoint.restore ctx.store with
                  | Checkpoint.Available s ->
                      bump "snapshot_verifications";
                      Some
                        (Checkpoint.restore_seconds ~cluster:c ~nodes:na
                           ~lost_nodes:nc
                           ~bytes:(Checkpoint.snapshot_bytes s)
                        +. (lost_frac *. ctx.compute_since_ckpt_s)
                        +. recompute_s)
                  | Checkpoint.Corrupt msg ->
                      bump "snapshot_verifications";
                      Logs.warn (fun m ->
                          m "Sim_cluster: %s; falling back to lineage replay"
                            msg);
                      None
                  | Checkpoint.None_taken -> None
                in
                (match restorable with
                | None ->
                    Fault.record_replay inj;
                    bump "replays";
                    (replay_cost, 0.0)
                | Some restore_cost -> (
                    match
                      Checkpoint.record_decision ctx.store
                        ~decided_at_loop:loop_no ~restore_cost ~replay_cost
                    with
                    | Checkpoint.Restore ->
                        Fault.record_restore inj;
                        bump "restores";
                        (recompute_s, restore_cost -. recompute_s)
                    | Checkpoint.Replay ->
                        Fault.record_replay inj;
                        bump "replays";
                        (replay_cost, 0.0)))
        in
        (* rebalance: re-materialize the lost partitions on the survivors,
           and re-send the loop's broadcast data to restarted nodes *)
        let rebalance_s =
          if nc = 0 then 0.0
          else begin
            let lost_bytes = part_bytes *. float_of_int nc /. float_of_int na in
            let survivors = Stdlib.max 1 (na - nc) in
            let restarts =
              List.length (List.filter (fun (_, permanent) -> not permanent) crashed)
            in
            ser_seconds c ~bytes:lost_bytes
            +. net_seconds c ~bytes:(lost_bytes *. 2.0)
                 ~messages:(Stdlib.max 1 (tree_depth survivors))
            +. float_of_int restarts
               *. (ser_seconds c ~bytes:broadcast_bytes
                  +. net_seconds c ~bytes:broadcast_bytes ~messages:1)
          end
        in
        (* permanent crashes leave the cluster for good *)
        let perms = List.filter_map (fun (nd, p) -> if p then Some nd else None) crashed in
        if perms <> [] then
          alive := List.filter (fun nd -> not (List.mem nd perms)) nodes_alive;
        let total =
          compute_s +. broadcast_s +. replicate_s +. gather_s +. detect_s
          +. recompute_s +. rebalance_s +. restore_s +. elastic_s
        in
        ( total,
          [ ("compute", compute_s); ("broadcast", broadcast_s);
            ("replicate", replicate_s); ("gather", gather_s);
            ("detect", detect_s); ("recompute", recompute_s);
            ("rebalance", rebalance_s) ]
          @ (if restore_s > 0.0 then [ ("restore", restore_s) ] else [])
          @ elastic_parts,
          traffic )
  end

(** Execute [program] exactly; charge simulated time on the cluster.
    [?checkpoint] supplies an external store (so the caller can inspect
    snapshots and restore-vs-replay decisions afterwards); otherwise a
    private store is created when [config.checkpoint_cadence > 0]. *)
let run ?(config = default_config) ?checkpoint ?layouts
    ~(inputs : (string * V.t) list) (program : Exp.exp) : Sim_common.result =
  let layouts =
    match layouts with
    | Some ls -> ls
    | None ->
        (Partition.analyze ~transforms:[] ~reoptimize:(fun e -> e) program)
          .Partition.layouts
  in
  let layout_of t = Partition.layout_of t layouts in
  let inputs_ty = Sim_common.program_input_tys program in
  (* the run's observability ledger: callers that pass their own handle
     (via config) see the same counters the result carries; otherwise a
     fresh one keeps back-to-back runs in one process fully isolated —
     the per-process counter (and its per-run reset) is gone *)
  let metrics =
    match config.metrics with Some m -> m | None -> Metrics.create ()
  in
  (* element-granular remote-read bytes already in the ledger before this
     run (a caller-shared handle may carry earlier activity); the run's
     own traffic row is the delta *)
  let da_bytes0 = Metrics.bytes metrics "remote_read_bytes" in
  let time = ref 0.0 in
  let breakdown = ref [] in
  let traffic = ref [] in
  let alive = ref (List.init config.cluster.M.nodes (fun i -> i)) in
  (* pre-execution admission (DESIGN.md §13): resolve the static
     memory-footprint plan against the real input lengths and compare its
     peak against the node budget BEFORE running anything.  Over budget,
     either process every distributed chunk in [k] sub-chunks (partitioned
     residents shrink to 1/k, each loop pays k-1 extra launch round-trips)
     or accept the plan and spill the overshoot to local disk up front —
     instead of discovering the pressure mid-loop. *)
  let mem_plan = Mem.plan_of_program ~layout_of program in
  let chunk_factor =
    let input_lens =
      List.filter_map
        (fun (nm, v) ->
          match v with
          | V.Varr _ | V.Vmap _ -> Some (nm, V.length v)
          | _ -> None)
        inputs
    in
    let msum =
      Mem.summarize ~input_lens ~machine:config.cluster
        ?budget_gb:config.mem_budget_gb ~layout_of program
    in
    let decision = Mem.admit msum in
    let spill_s =
      match decision with
      | Mem.Admit | Mem.Chunk_smaller _ -> 0.0
      | Mem.Spill_ahead ->
          let overshoot = msum.Mem.peak_bytes -. msum.Mem.budget_bytes in
          Metrics.add_bytes metrics "spill_bytes" overshoot;
          Metrics.incr metrics "admissions_spill_ahead";
          ser_seconds config.cluster ~bytes:overshoot
          +. (overshoot /. (config.cluster.M.disk_gbs *. 1e9))
    in
    (match decision with
    | Mem.Chunk_smaller _ -> Metrics.incr metrics "admissions_chunked"
    | _ -> ());
    (match config.obs with
    | None -> ()
    | Some tr ->
        Span.emit tr ~tid:Span.runtime_tid ~cat:"runtime" ~name:"admission"
          ~args:
            [ ("peak_bytes", Span.Float msum.Mem.peak_bytes);
              ("budget_bytes", Span.Float msum.Mem.budget_bytes);
              ("decision", Span.Str (Mem.admission_to_string decision));
            ]
          ~ts_us:0.0 ~dur_us:(spill_s *. 1e6) ());
    if spill_s > 0.0 then begin
      time := !time +. spill_s;
      breakdown := ("admission/spill-ahead", spill_s) :: !breakdown
    end;
    match decision with Mem.Chunk_smaller k -> k | _ -> 1
  in
  (* the footprint plan's per-loop transient terms, popped in spine order
     as [on_loop] fires (both walks visit spine-step loops in order) *)
  let pending_mem_loops = ref mem_plan.Mem.loops in
  let spares =
    ref
      (match config.faults with
      | Some inj ->
          let spec = Fault.spec inj in
          List.init spec.M.spare_nodes (fun i -> config.cluster.M.nodes + i)
      | None -> [])
  in
  let recovery =
    let with_store store =
      Some { store; compute_total_s = 0.0; compute_since_ckpt_s = 0.0 }
    in
    match checkpoint with
    | Some store -> with_store store
    | None when config.checkpoint_cadence > 0 ->
        with_store (Checkpoint.create ~cadence:config.checkpoint_cadence)
    | None -> None
  in
  let loop_no = ref 0 in
  let value =
    Spine.exec ~inputs
      ~on_loop:(fun env sym l ->
        incr loop_no;
        let name = match sym with Some s -> Sym.to_string s | None -> "result" in
        let eval_size = Sim_common.live_size_evaluator ~inputs env in
        let n = match eval_size l.Exp.size with Some n -> n | None -> 0 in
        let fault = Option.map (fun f -> (f, !loop_no)) config.faults in
        let dt, parts, bytes =
          loop_time ~config ~layout_of ~inputs_ty ~eval_size ~env ~inputs ?fault
            ~label:name ~spares ?recovery ~metrics ~alive l ~n
        in
        (* sub-chunked execution (admission [Chunk_smaller k]): the node
           processes its chunk in [k] passes, so partitioned residents
           shrink to 1/k at the price of k-1 extra launch round-trips *)
        let dt, parts =
          if chunk_factor > 1 && List.mem_assoc "compute" parts then
            let extra =
              float_of_int (chunk_factor - 1)
              *. config.cluster.M.net_lat_us *. 1e-6 *. 2.0
            in
            (dt +. extra, parts @ [ ("subchunk", extra) ])
          else (dt, parts)
        in
        Metrics.incr metrics "loops";
        (* spans live on the simulated clock: 1 s of modeled time is 1e6 µs
           of trace time.  The loop span covers [clock, clock+dt); its
           phase children tile it back to back, which is exact because
           loop_time's parts sum to dt by construction — the O-SPAN-CLOCK
           contract below holds the model to that. *)
        let clock_us = !time *. 1e6 in
        (match config.obs with
        | None -> ()
        | Some tr ->
            Span.emit tr ~tid:Span.runtime_tid ~cat:"runtime" ~name
              ~args:[ ("loop", Span.Int !loop_no); ("n", Span.Int n) ]
              ~ts_us:clock_us ~dur_us:(dt *. 1e6) ();
            ignore
              (List.fold_left
                 (fun at (p, s) ->
                   Span.emit tr ~tid:Span.runtime_tid ~cat:"phase" ~name:p
                     ~ts_us:at ~dur_us:(s *. 1e6) ();
                   at +. (s *. 1e6))
                 clock_us parts));
        (* O-SPAN-CLOCK (DESIGN.md §12): per-phase span times must tile
           the loop's modeled time exactly, or the trace would lie about
           where the seconds went.  Armed with the other debug-mode
           validations. *)
        if !Comm.validate_enabled then begin
          let parts_sum = List.fold_left (fun a (_, s) -> a +. s) 0.0 parts in
          let tol = 1e-9 +. (1e-6 *. Float.max 1.0 dt) in
          if Float.abs (parts_sum -. dt) > tol then
            raise
              (Diag.Failed
                 { stage = "obs:" ^ name;
                   diags =
                     [ Diag.error ~rule:"O-SPAN-CLOCK"
                         "loop %s: phase spans sum to %.9fs but the loop \
                          took %.9fs on the simulated clock"
                         name parts_sum dt ];
                 })
        end;
        time := !time +. dt;
        breakdown := (name, dt) :: List.map (fun (p, s) -> (name ^ "/" ^ p, s)) parts @ !breakdown;
        traffic := List.rev_map (fun (p, b) -> (name ^ "/" ^ p, b)) bytes @ !traffic;
        let v = Evalenv.eval ~inputs env (Exp.Loop l) in
        (* measured per-node resident demand at this spine position: the
           actual bytes of every live tracked collection (chunk share for
           partitioned storage, whole for Local) plus this loop's measured
           transient buffers — recorded as the run's high-water mark and,
           in debug mode, held to the footprint plan's prediction under
           rule M-MEM-OVERRUN (DESIGN.md §13) *)
        (match !pending_mem_loops with
        | [] -> ()
        | lp :: rest ->
            pending_mem_loops := rest;
            let position = lp.Mem.position in
            let env' =
              match sym with Some s -> Sym.Map.add s v env | None -> env
            in
            let na = Stdlib.max 1 (List.length !alive) in
            let value_of t =
              match t with
              | Stencil.Tinput nm -> List.assoc_opt nm inputs
              | Stencil.Tsym s -> Sym.Map.find_opt s env'
            in
            let transient_measured =
              List.fold_left (fun a (_, b) -> a +. b) 0.0 bytes
            in
            let measured =
              List.fold_left
                (fun acc (lv : Mem.live) ->
                  match value_of lv.Mem.target with
                  | None -> acc
                  | Some bv ->
                      let b = Sim_common.value_bytes bv in
                      acc
                      +.
                      (match lv.Mem.layout with
                      | Exp.Partitioned ->
                          b /. float_of_int (na * chunk_factor)
                      | Exp.Local -> b))
                transient_measured
                (Mem.live_at mem_plan ~position)
            in
            Metrics.record_max metrics "peak_resident_bytes" measured;
            if !Mem.validate_enabled then begin
              let live_r =
                { Comm.collection_bytes =
                    (fun t ->
                      match value_of t with
                      | Some bv -> Sim_common.value_bytes bv
                      | None -> 0.0);
                  elem_bytes = Sim_common.target_elem_bytes ~inputs_ty;
                  init_bytes =
                    (fun i ->
                      match Evalenv.eval ~inputs env i with
                      | bv -> Sim_common.value_bytes bv
                      | exception _ -> 64.0);
                }
              in
              let predicted =
                Mem.resident_bytes ~nodes:na ~chunk_factor live_r mem_plan
                  ~position
              in
              Mem.check_measured ~site:("cluster:" ^ name) ~label:name
                ~predicted ~measured
            end);
        (match recovery with
        | None -> ()
        | Some ctx ->
            let compute_s =
              try List.assoc "compute" parts with Not_found -> dt
            in
            ctx.compute_total_s <- ctx.compute_total_s +. compute_s;
            ctx.compute_since_ckpt_s <- ctx.compute_since_ckpt_s +. compute_s;
            if Checkpoint.due ctx.store ~loop:!loop_no then begin
              let bindings =
                Sym.Map.fold
                  (fun s bv acc -> (Sym.to_string s, bv) :: acc)
                  env []
                @ [ (name, v) ]
              in
              let snap =
                Checkpoint.record ctx.store ~at_loop:!loop_no
                  ~chunks:(List.length !alive) ~bindings
                  ~driver:[ ("loop_no", V.Vint !loop_no) ]
              in
              let ck_s =
                Checkpoint.write_seconds ~cluster:config.cluster
                  ~nodes:(List.length !alive)
                  ~bytes:(Checkpoint.snapshot_bytes snap)
              in
              ctx.compute_since_ckpt_s <- 0.0;
              (match config.faults with
              | Some inj -> Fault.record_checkpoint inj
              | None -> ());
              Metrics.incr metrics "checkpoints";
              (match config.obs with
              | None -> ()
              | Some tr ->
                  Span.emit tr ~tid:Span.runtime_tid ~cat:"phase"
                    ~name:"checkpoint"
                    ~args:
                      [ ("at_loop", Span.Int !loop_no);
                        ("bytes",
                         Span.Float (Checkpoint.snapshot_bytes snap));
                      ]
                    ~ts_us:(!time *. 1e6) ~dur_us:(ck_s *. 1e6) ());
              time := !time +. ck_s;
              breakdown := (name ^ "/checkpoint", ck_s) :: !breakdown
            end);
        v)
      program
  in
  (* element-granular remote reads made by distributed arrays during this
     run — the ledger delta, so a caller-shared handle never leaks an
     earlier run's bytes into this one's traffic *)
  let da_bytes = Metrics.bytes metrics "remote_read_bytes" -. da_bytes0 in
  let traffic =
    if da_bytes > 0.0 then ("total/remote-read", da_bytes) :: !traffic
    else !traffic
  in
  { Sim_common.value;
    seconds = !time;
    breakdown = List.rev !breakdown;
    traffic = List.rev traffic;
    metrics;
  }

(** The live nodes remaining after a faulty [run] are not reported here —
    the injector's {!Fault.stats_to_string} carries the event counts; a
    fresh [run] always starts from the full cluster. *)

(** Simulated seconds to load/scatter the partitioned dataset initially
    (reported separately, as the paper separates load from compute). *)
let scatter_seconds ?(config = default_config) ~(bytes : float) () : float =
  let c = config.cluster in
  ser_seconds c ~bytes +. net_seconds c ~bytes ~messages:c.M.nodes

(** Deterministic fault injection and recovery bookkeeping (DESIGN.md §9).

    A {!Dmll_machine.Machine.fault_model} describes a failure regime
    (crash rates, straggler slowdowns, lossy remote reads); {!create}
    turns it into an injector whose every decision is a pure function of
    the model's seed and the fault site's coordinates (multiloop number,
    node/chunk id, retry attempt) — never of wall-clock time or
    scheduling order, so a faulty run replays exactly.  The injector only
    decides {e when} to hurt and counts what happened; the executors
    recover by deterministic recomputation from lineage, which is why
    injected faults never change computed values.

    The event counters behind [stats_to_string] and the per-site draw
    function are internal. *)

module M = Dmll_machine.Machine

type spec = M.fault_model

(** Raised by an executor worker when the injector fails its current
    chunk: transient faults are retried with exponential backoff, a
    permanent fault kills the worker and leaves the chunk for lineage
    recovery. *)
exception Injected of { transient : bool; site : string }

type t
(** An injector: a spec plus domain-safe event counters. *)

val create : spec -> t
val spec : t -> spec

(** The fate of a cluster node for one multiloop — drawn fresh per loop,
    so a transient crash hurts one phase while a permanent one is the
    caller's to remember (the injector is stateless about topology). *)
type node_fate =
  | Healthy
  | Crashed of { permanent : bool }
  | Straggling of { slowdown : float }

val node_fate : t -> loop:int -> node:int -> node_fate

(** The fate of one chunk attempt on the domain executor. *)
type chunk_fate =
  | Chunk_ok
  | Chunk_fail of { transient : bool }
  | Chunk_slow of { slowdown : float }

val chunk_fate : t -> loop:int -> chunk:int -> attempt:int -> chunk_fate

val worker_seed : spec -> worker:int -> int
(** Seed-derivation rule for process-mode workers ([Proc_cluster]): the
    worker occupying slot [k] derives every local random decision
    (backoff jitter) from a SplitMix64 stream seeded with the first
    output of a SplitMix64 generator initialised with
    [(fault_seed * 0x3C6EF372) lxor (k + 1)].  The seed is a pure
    function of the fault seed and the {e slot} — not the pid and not
    the spawn order — so a respawned replacement for slot [k] resumes
    its predecessor's stream and [--faults seed=K] replays identically
    in process mode. *)

(** What the supervisor does to a process-mode worker right after
    dispatching one chunk to it — drawn once per (loop, chunk) on the
    first dispatch only, never on recovery re-dispatches.  [Proc_kill]
    either SIGKILLs the worker or (with [close_pipe]) severs the
    parent's pipe end; [Proc_stop] SIGSTOPs it for [stop_s] seconds, and
    a shorter task deadline turns that into a hung-worker kill. *)
type proc_fate =
  | Proc_ok
  | Proc_kill of { permanent : bool; close_pipe : bool }
  | Proc_stop of { stop_s : float }

val proc_fate : t -> loop:int -> chunk:int -> proc_fate

(** What the fault-injecting transport wrapper does to one outgoing
    master→worker frame on the TCP executor (DESIGN.md §16).
    [Link_partition] blackholes the link (sends dropped, inbound frames
    discarded) for ~3 heartbeat intervals; [Link_sever] cuts the
    connection mid-frame; [Link_corrupt] flips a payload byte after the
    CRC is computed so the receiver rejects the frame; [Link_delay]
    stalls the frame. *)
type link_fate =
  | Link_ok
  | Link_partition of { for_s : float }
  | Link_sever
  | Link_corrupt
  | Link_delay of { for_s : float }

val link_fate : t -> slot:int -> frame:int -> link_fate
(** Drawn per (slot, outgoing frame number) from the {!worker_seed}
    slot-seed stream — pure in (fault_seed, slot, frame), so a
    reconnected or respawned link for slot [k] continues its
    predecessor's fate sequence and a seeded chaos run replays. *)

val link_fault_count : t -> int
(** Injected link faults of any kind (partitions + severs + corrupts +
    delays). *)

(** Elastic-membership events for one loop (DESIGN.md §11). *)
type membership_event = Join of { node : int } | Leave of { node : int }

val membership_events :
  t -> loop:int -> alive:int list -> spares:int list -> membership_event list

(** The fate of one remote-read attempt. *)
type read_fate = Read_ok | Read_drop | Read_delay of { us : float }

val read_fate : t -> from_loc:int -> index:int -> attempt:int -> read_fate

val backoff_us : spec -> attempt:int -> float
(** Exponential retry backoff with deterministic jitter, microseconds. *)

val backoff_s : spec -> attempt:int -> float

(** Event recording — called by the executors as recovery happens. *)

val record_read_retry : t -> unit
val record_degraded : t -> unit
val record_recovered : t -> unit
val record_speculation : t -> unit
val record_replan : t -> unit
val record_restore : t -> unit
val record_replay : t -> unit
val record_checkpoint : t -> unit

val join_count : t -> int
val leave_count : t -> int
val restore_count : t -> int
val replay_count : t -> int
val checkpoint_count : t -> int

val total_injected : t -> int
(** All injected fault events (crashes + stragglers + read drops). *)

val stats_to_string : t -> string
(** One-line summary of everything injected and recovered. *)

(** Spec parsing/printing — the [--faults] / [DMLL_FAULTS] surface. *)

val valid_keys : string list

val pp_spec : Format.formatter -> spec -> unit
val to_string : spec -> string

val parse_spec : string -> (spec, Dmll_analysis.Diag.t) result
(** Parse a [key=value,...] spec; [Error] carries an [F-SPEC] diagnostic
    naming the bad key or value. *)

val parse : string -> (spec, string) result
(** [parse_spec] with the diagnostic flattened to a string. *)

val post_replan_check : (string -> Dmll_ir.Exp.exp -> unit) option ref
(** Debug hook mirroring [Dmll_opt.Pipeline.post_stage_check]: when armed
    (debug mode arms it with [Dmll.verify_stage]), the executors
    re-typecheck and re-verify the chunk program induced by every replan
    and lineage recovery before running it. *)

val check_replan : string -> Dmll_ir.Exp.exp -> unit
(** Run {!post_replan_check} if armed; no-op otherwise. *)

(** Distributed arrays: local chunks plus a directory of index ranges.

    Implements the runtime data structure of paper §5: a partitioned array
    holds its local chunk plus "additional metadata for accessing the
    remainder of the logical array".  Reads at indices that are not
    physically present are trapped and fetched from the owning location;
    the runtime counts those remote reads so the simulators can charge
    them to the interconnect. *)

module V = Dmll_interp.Value
module M = Dmll_machine.Machine
module Metrics = Dmll_obs.Metrics

type location = { node : int; socket : int }

(** The directory maps index ranges to locations.  Built when a
    partitioned array is instantiated and (logically) broadcast to every
    physical instance. *)
type directory = { ranges : (Chunk.range * location) array; total : int }

type t = {
  dir : directory;
  local_of : int -> V.t;  (** location-id -> that location's chunk *)
  my_location : int;
  remote_reads : int Atomic.t;  (** trapped non-local accesses *)
  remote_bytes : float Atomic.t;
      (** bytes those accesses moved — the element-granular side of the
          measured traffic the comm plans are validated against *)
  faults : Fault.t option;  (** remote-read fault injection (DESIGN.md §9) *)
  retried_reads : int Atomic.t;  (** dropped remote reads that were retried *)
  degraded_reads : int Atomic.t;
      (** reads that exhausted retries and fell back to a replicated copy *)
  delay_us : int Atomic.t;  (** accumulated injected latency + backoff, µs *)
  metrics : Metrics.t option;
      (** per-run observability handle: every trapped read also lands in
          the owning run's ledger ([remote_reads], [remote_read_bytes],
          [retried_reads], [degraded_reads]), so back-to-back simulations
          in one process never see each other's traffic — there is no
          process-global counter to reset. *)
}

let location_count (d : directory) = Array.length d.ranges

(** Build a directory by splitting [n] elements across [locations]
    round-robin over nodes and sockets. *)
let make_directory ~n ~nodes ~sockets_per_node : directory =
  let locs = nodes * sockets_per_node in
  let chunks = Chunk.split ~k:locs n in
  let ranges =
    List.mapi
      (fun i r ->
        (r, { node = i / sockets_per_node; socket = i mod sockets_per_node }))
      chunks
  in
  { ranges = Array.of_list ranges; total = n }

(** Build a directory over an explicit live node-id set (elastic
    membership: after joins/leaves the live ids are not contiguous). *)
let make_directory_on ~n ~(live : int list) ~sockets_per_node : directory =
  let live = List.sort_uniq compare live in
  if live = [] then invalid_arg "Dist_array.make_directory_on: no live nodes";
  let nodes = Array.of_list live in
  let locs = Array.length nodes * sockets_per_node in
  let chunks = Chunk.split ~k:locs n in
  let ranges =
    List.mapi
      (fun i r ->
        (r, { node = nodes.(i / sockets_per_node); socket = i mod sockets_per_node }))
      chunks
  in
  { ranges = Array.of_list ranges; total = n }

(** Which location owns index [i]? *)
let owner (d : directory) (i : int) : int =
  let rec bsearch lo hi =
    if lo >= hi then raise Not_found
    else
      let mid = (lo + hi) / 2 in
      let r, _ = d.ranges.(mid) in
      if i < r.Chunk.lo then bsearch lo mid
      else if i >= r.Chunk.hi then bsearch (mid + 1) hi
      else mid
  in
  if i < 0 || i >= d.total then
    invalid_arg (Printf.sprintf "Dist_array.owner: index %d out of [0,%d)" i d.total)
  else bsearch 0 (Array.length d.ranges)

(** The index range a location holds. *)
let range_of (d : directory) (loc : int) : Chunk.range = fst d.ranges.(loc)

(** Partition a concrete array value across a directory.  [?faults] arms
    deterministic remote-read fault injection: dropped reads retry with
    exponential backoff and degrade to a replicated read when retries run
    out (see {!read}).  [?metrics] is the owning run's observability
    ledger; remote-read counts and bytes accumulate there as well as in
    the per-instance counters. *)
let scatter ?faults ?metrics (dir : directory) (v : V.t) : t =
  if V.length v <> dir.total then
    invalid_arg "Dist_array.scatter: directory size mismatch";
  let pieces =
    Array.map
      (fun (r, _) ->
        match v with
        | V.Varr (V.Fa a) -> V.Varr (V.Fa (Array.sub a r.Chunk.lo (Chunk.size r)))
        | V.Varr (V.Ia a) -> V.Varr (V.Ia (Array.sub a r.Chunk.lo (Chunk.size r)))
        | V.Varr (V.Ga a) -> V.Varr (V.Ga (Array.sub a r.Chunk.lo (Chunk.size r)))
        | _ -> invalid_arg "Dist_array.scatter: not an array")
      dir.ranges
  in
  { dir;
    local_of = (fun loc -> pieces.(loc));
    my_location = 0;
    remote_reads = Atomic.make 0;
    remote_bytes = Atomic.make 0.0;
    faults;
    retried_reads = Atomic.make 0;
    degraded_reads = Atomic.make 0;
    delay_us = Atomic.make 0;
    metrics;
  }

let add_delay_us (t : t) (us : float) =
  ignore (Atomic.fetch_and_add t.delay_us (int_of_float (ceil us)))

(* Atomic float accumulation (no fetch_and_add for boxed floats). *)
let atomic_add_float (a : float Atomic.t) (b : float) =
  let rec go () =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. b)) then go ()
  in
  go ()

let add_remote_bytes (t : t) (b : float) =
  atomic_add_float t.remote_bytes b;
  match t.metrics with
  | Some m -> Metrics.add_bytes m "remote_read_bytes" b
  | None -> ()

let bump (t : t) key =
  match t.metrics with Some m -> Metrics.incr m key | None -> ()

(* Counted warning: the degradation path must be loud but not flood. *)
let warn_degraded (t : t) (i : int) =
  let n = Atomic.get t.degraded_reads in
  if n = 1 || n mod 1000 = 0 then
    Logs.warn (fun m ->
        m "Dist_array: remote read of index %d exhausted retries; served from \
           replica (%d degraded reads so far)" i n)

(** Read element [i] from the perspective of [from_loc]: local if owned,
    otherwise a trapped remote fetch (counted).  Under fault injection a
    dropped fetch is retried with exponential backoff (accounted, not
    slept: the charge lands in {!injected_delay_us}); when retries run
    out, the read gracefully degrades to the master's replicated copy —
    counted and warned — instead of failing the loop. *)
let read (t : t) ~(from_loc : int) (i : int) : V.t =
  let loc = owner t.dir i in
  let r = range_of t.dir loc in
  if loc <> from_loc then begin
    Atomic.incr t.remote_reads;
    bump t "remote_reads";
    match t.faults with
    | None -> ()
    | Some f ->
        let spec = Fault.spec f in
        let rec fetch attempt =
          match Fault.read_fate f ~from_loc ~index:i ~attempt with
          | Fault.Read_ok -> ()
          | Fault.Read_delay { us } -> add_delay_us t us
          | Fault.Read_drop ->
              if attempt < spec.M.max_retries then begin
                Atomic.incr t.retried_reads;
                bump t "retried_reads";
                Fault.record_read_retry f;
                add_delay_us t (Fault.backoff_us spec ~attempt);
                fetch (attempt + 1)
              end
              else begin
                Atomic.incr t.degraded_reads;
                bump t "degraded_reads";
                Fault.record_degraded f;
                warn_degraded t i
              end
        in
        fetch 0
  end;
  let v = V.get (t.local_of loc) (i - r.Chunk.lo) in
  if loc <> from_loc then add_remote_bytes t (Sim_common.value_bytes v);
  v

let remote_read_count (t : t) = Atomic.get t.remote_reads
let remote_read_bytes (t : t) = Atomic.get t.remote_bytes
let remote_retry_count (t : t) = Atomic.get t.retried_reads
let degraded_read_count (t : t) = Atomic.get t.degraded_reads

(** Injected remote-read latency plus retry backoff, microseconds — the
    simulators charge this to the interconnect. *)
let injected_delay_us (t : t) = float_of_int (Atomic.get t.delay_us)

(** Reassemble the logical array (gather). *)
let gather (t : t) : V.t =
  let pieces = Array.init (location_count t.dir) (fun l -> t.local_of l) in
  match pieces.(0) with
  | V.Varr (V.Fa _) ->
      V.Varr
        (V.Fa (Array.concat (Array.to_list (Array.map V.to_float_array pieces))))
  | V.Varr (V.Ia _) ->
      V.Varr (V.Ia (Array.concat (Array.to_list (Array.map V.to_int_array pieces))))
  | _ ->
      let parts =
        Array.to_list
          (Array.map
             (fun p -> Array.init (V.length p) (V.get p))
             pieces)
      in
      V.Varr (V.Ga (Array.concat parts))

(** Rebalance onto a new live node set (elastic membership, DESIGN.md
    §11): gather the logical array, rebuild the directory across [live],
    and re-scatter.  Traffic and fault counters carry over — the
    rebalance is part of the same run, and the bytes it moves are charged
    by the executor's rebalance phase, not by this bookkeeping. *)
let rebalance (t : t) ~(live : int list) ~(sockets_per_node : int) : t =
  let v = gather t in
  let dir = make_directory_on ~n:t.dir.total ~live ~sockets_per_node in
  let t' = scatter ?faults:t.faults ?metrics:t.metrics dir v in
  Atomic.set t'.remote_reads (Atomic.get t.remote_reads);
  Atomic.set t'.remote_bytes (Atomic.get t.remote_bytes);
  Atomic.set t'.retried_reads (Atomic.get t.retried_reads);
  Atomic.set t'.degraded_reads (Atomic.get t.degraded_reads);
  Atomic.set t'.delay_us (Atomic.get t.delay_us);
  t'

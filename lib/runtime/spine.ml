(** Let-spine walking shared by every executor.

    A DMLL program after optimization is a chain of let-bound steps ending
    in a result expression.  Executors differ only in {e how} they evaluate
    a step whose right-hand side is a multiloop (in parallel, on a device
    model, across a simulated cluster); everything else — scalar glue,
    sequential steps, the final result — is shared here. *)

open Dmll_ir
module V = Dmll_interp.Value

type step_kind =
  | Parallel of Exp.loop  (** a multiloop: the executor's business *)
  | Sequential of Exp.exp  (** everything else *)

(** [exec ~inputs ~on_loop program] walks the spine.  [on_loop env sym loop]
    must return the loop's value; sequential steps and the final expression
    are evaluated with the closure backend. *)
let exec ~(inputs : (string * V.t) list)
    ~(on_loop : Evalenv.env -> Sym.t option -> Exp.loop -> V.t) (program : Exp.exp) :
    V.t =
  let rec go (env : Evalenv.env) (e : Exp.exp) : V.t =
    match e with
    | Exp.Let (s, Exp.Loop l, body) ->
        let v = on_loop env (Some s) l in
        go (Sym.Map.add s v env) body
    | Exp.Let (s, rhs, body) -> (
        (* early-free marker (Free_insertion): drop the dead binding so the
           executor's resident set actually shrinks — the liveness analysis
           guarantees no later step mentions it *)
        match Exp.freed_sym rhs with
        | Some x -> go (Sym.Map.add s V.Vunit (Sym.Map.remove x env)) body
        | None ->
            let v = Evalenv.eval ~inputs env rhs in
            go (Sym.Map.add s v env) body)
    | Exp.Loop l -> on_loop env None l
    | e -> Evalenv.eval ~inputs env e
  in
  go Sym.Map.empty program

(** Steps of the spine, for analyses that only need the shape. *)
let steps (program : Exp.exp) : (Sym.t option * step_kind) list =
  let rec go acc = function
    | Exp.Let (s, Exp.Loop l, body) -> go ((Some s, Parallel l) :: acc) body
    | Exp.Let (s, rhs, body) -> go ((Some s, Sequential rhs) :: acc) body
    | Exp.Loop l -> List.rev ((None, Parallel l) :: acc)
    | e -> List.rev ((None, Sequential e) :: acc)
  in
  go [] program

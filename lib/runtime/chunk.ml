(** Range chunking for hierarchical multiloop scheduling.

    The key runtime insight of the paper (§5): "a multiloop is agnostic to
    whether it runs over the entire loop bounds or a subset of the loop
    bounds", so the cluster master can split a loop into chunks, each
    machine can split its chunk across sockets, and each socket across
    cores. *)

type range = { lo : int; hi : int }  (** half-open [lo, hi) *)

let size r = r.hi - r.lo

(** Split [0, n) into at most [k] contiguous chunks of near-equal size.
    Fewer than [k] chunks are returned when [n < k]. *)
let split ~k n =
  if k <= 0 then invalid_arg "Chunk.split: k must be positive";
  if n <= 0 then []
  else
    let k = Stdlib.min k n in
    let base = n / k and extra = n mod k in
    let rec go i lo acc =
      if i >= k then List.rev acc
      else
        let len = base + if i < extra then 1 else 0 in
        go (i + 1) (lo + len) ({ lo; hi = lo + len } :: acc)
    in
    go 0 0 []

(** Split a range according to a directory of boundaries: chunks never
    straddle a boundary, so Interval-stencil accesses stay local
    (paper §5: "the range of each machine's chunk is chosen by combining
    the input data's access stencil with the input's directory"). *)
let split_on_boundaries ~boundaries n =
  let bs = List.sort_uniq compare (List.filter (fun b -> b > 0 && b < n) boundaries) in
  let rec go lo = function
    | [] -> if lo < n then [ { lo; hi = n } ] else []
    | b :: rest -> if b > lo then { lo; hi = b } :: go b rest else go lo rest
  in
  if n <= 0 then [] else go 0 bs

(** Coalesce ranges: sort and merge adjacent or overlapping ranges into
    maximal contiguous runs.  Used by re-planning after a failure, where a
    dead node's many per-core units become one recovery region. *)
let coalesce (rs : range list) : range list =
  let rs = List.filter (fun r -> size r > 0) rs in
  match List.sort (fun a b -> compare a.lo b.lo) rs with
  | [] -> []
  | first :: rest ->
      let rec go acc cur = function
        | [] -> List.rev (cur :: acc)
        | r :: rest ->
            if r.lo <= cur.hi then go acc { cur with hi = Stdlib.max cur.hi r.hi } rest
            else go (cur :: acc) r rest
      in
      go [] first rest

(** Largest chunk size relative to ideal — the load-imbalance factor used
    by the simulators ([1.0] = perfectly balanced). *)
let imbalance ~k n =
  match split ~k n with
  | [] -> 1.0
  | chunks ->
      let max_sz = List.fold_left (fun m c -> Stdlib.max m (size c)) 0 chunks in
      let ideal = float_of_int n /. float_of_int (List.length chunks) in
      float_of_int max_sz /. ideal

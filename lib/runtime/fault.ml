(** Deterministic fault injection and recovery bookkeeping (DESIGN.md §9).

    The executors assume a healthy machine; this module takes that
    assumption away on purpose.  A {!Dmll_machine.Machine.fault_model}
    describes a failure regime (crash rates, straggler slowdowns, lossy
    remote reads); {!create} turns it into an injector whose every
    decision is a pure function of the model's seed and the fault site's
    coordinates (multiloop number, node/chunk id, retry attempt) — never
    of wall-clock time or scheduling order.  Determinism matters twice
    over: a faulty run can be replayed exactly, and the domain executor's
    injected schedule is independent of which domain happens to claim
    which chunk.

    Recovery everywhere leans on the lineage property of multiloops
    (paper §5: a multiloop is agnostic to its bounds, so any chunk is
    recomputable from its range and inputs alone).  The injector only
    decides {e when} to hurt and counts what happened; the executors
    recover by deterministic recomputation, which is why injected faults
    never change computed values. *)

module M = Dmll_machine.Machine
module Prng = Dmll_util.Prng

type spec = M.fault_model

(** Raised by an executor worker when the injector fails its current
    chunk: transient faults are retried with exponential backoff, a
    permanent fault kills the worker and leaves the chunk for lineage
    recovery. *)
exception Injected of { transient : bool; site : string }

(* ------------------------------------------------------------------ *)
(* Injector state: the spec plus domain-safe event counters             *)
(* ------------------------------------------------------------------ *)

type stats = {
  crashes : int Atomic.t;  (** injected crash events (nodes or chunks) *)
  permanent : int Atomic.t;
  transient : int Atomic.t;
  stragglers : int Atomic.t;
  read_drops : int Atomic.t;
  read_retries : int Atomic.t;
  degraded_reads : int Atomic.t;  (** remote reads served from a replica *)
  recovered_chunks : int Atomic.t;  (** chunks recomputed from lineage *)
  speculative : int Atomic.t;  (** speculative straggler re-executions *)
  replans : int Atomic.t;
  joins : int Atomic.t;  (** spare nodes that joined mid-job *)
  leaves : int Atomic.t;  (** graceful permanent departures *)
  restores : int Atomic.t;  (** recoveries served from a checkpoint *)
  replays : int Atomic.t;  (** recoveries served by lineage replay *)
  checkpoints : int Atomic.t;  (** snapshots written *)
  partitions : int Atomic.t;  (** injected link partitions (net mode) *)
  severs : int Atomic.t;  (** injected mid-frame link cuts *)
  corrupts : int Atomic.t;  (** injected frame corruptions *)
  link_delays : int Atomic.t;  (** injected link delays *)
}

type t = { spec : spec; stats : stats }

let create (spec : spec) : t =
  { spec;
    stats =
      { crashes = Atomic.make 0;
        permanent = Atomic.make 0;
        transient = Atomic.make 0;
        stragglers = Atomic.make 0;
        read_drops = Atomic.make 0;
        read_retries = Atomic.make 0;
        degraded_reads = Atomic.make 0;
        recovered_chunks = Atomic.make 0;
        speculative = Atomic.make 0;
        replans = Atomic.make 0;
        joins = Atomic.make 0;
        leaves = Atomic.make 0;
        restores = Atomic.make 0;
        replays = Atomic.make 0;
        checkpoints = Atomic.make 0;
        partitions = Atomic.make 0;
        severs = Atomic.make 0;
        corrupts = Atomic.make 0;
        link_delays = Atomic.make 0;
      };
  }

let spec (t : t) = t.spec

(* ------------------------------------------------------------------ *)
(* Deterministic draws                                                 *)
(* ------------------------------------------------------------------ *)

(* A uniform draw in [0,1) that is a pure function of (seed, site, ids):
   independent of scheduling order and of every other site.  SplitMix64's
   output mixing decorrelates the structured seeds. *)
let draw (t : t) ~(site : string) (ids : int list) : float =
  let h = List.fold_left (fun acc i -> (acc * 1000003) lxor (i + 0x9E3779B9)) (Hashtbl.hash site) ids in
  Prng.float (Prng.create (h lxor (t.spec.M.fault_seed * 0x2545F491))) 1.0

(** The fate of a cluster node for one multiloop — drawn fresh per loop,
    so a transient crash hurts one phase while a permanent one is the
    caller's to remember (the injector is stateless about topology). *)
type node_fate =
  | Healthy
  | Crashed of { permanent : bool }
  | Straggling of { slowdown : float }

let node_fate (t : t) ~(loop : int) ~(node : int) : node_fate =
  let s = t.spec in
  let u = draw t ~site:"node" [ loop; node ] in
  if u < s.M.crash_prob then begin
    Atomic.incr t.stats.crashes;
    let permanent = draw t ~site:"crash-kind" [ loop; node ] >= s.M.crash_transient_frac in
    Atomic.incr (if permanent then t.stats.permanent else t.stats.transient);
    Crashed { permanent }
  end
  else if u < s.M.crash_prob +. s.M.straggler_prob then begin
    Atomic.incr t.stats.stragglers;
    Straggling { slowdown = Float.max 1.0 s.M.straggler_slowdown }
  end
  else Healthy

(** The fate of executing one chunk of one multiloop for the [attempt]-th
    time.  Keyed by the chunk, not the worker: the injected schedule is
    identical no matter which domain claims the chunk, and each retry
    draws afresh (so transient faults clear with retries). *)
type chunk_fate =
  | Chunk_ok
  | Chunk_fail of { transient : bool }
  | Chunk_slow of { slowdown : float }

let chunk_fate (t : t) ~(loop : int) ~(chunk : int) ~(attempt : int) : chunk_fate =
  let s = t.spec in
  let u = draw t ~site:"chunk" [ loop; chunk; attempt ] in
  if u < s.M.crash_prob then begin
    Atomic.incr t.stats.crashes;
    let transient = draw t ~site:"chunk-kind" [ loop; chunk; attempt ] < s.M.crash_transient_frac in
    Atomic.incr (if transient then t.stats.transient else t.stats.permanent);
    Chunk_fail { transient }
  end
  else if u < s.M.crash_prob +. s.M.straggler_prob then begin
    Atomic.incr t.stats.stragglers;
    Chunk_slow { slowdown = Float.max 1.0 s.M.straggler_slowdown }
  end
  else Chunk_ok

(* ------------------------------------------------------------------ *)
(* Process mode (DESIGN.md §14)                                        *)
(* ------------------------------------------------------------------ *)

(* Seed-derivation rule for process-mode workers: the worker occupying
   slot [k] jitters its retry backoff from a SplitMix64 stream whose
   seed is the first output of a SplitMix64 generator initialised with
   (fault_seed * 0x3C6EF372) lxor (k + 1).  Keying by the *slot* (not
   the pid, not the spawn order) means a respawned replacement for slot
   k picks up exactly the stream its predecessor would have used, so a
   whole faulty run replays bit-identically under --faults seed=K. *)
let worker_seed (s : spec) ~(worker : int) : int =
  let g = Prng.create ((s.M.fault_seed * 0x3C6EF372) lxor (worker + 1)) in
  Prng.int g max_int

(** What the supervisor does to a worker right after dispatching one
    chunk of one multiloop to it.  Drawn once per (loop, chunk) — on the
    first dispatch only, never on recovery re-dispatches, so an injected
    murder cannot chase a chunk around the pool forever.  [Proc_kill]
    with [close_pipe] severs the parent's pipe end instead of signalling
    (the worker sees EOF/EPIPE and exits); otherwise it is a real
    [SIGKILL].  [Proc_stop] SIGSTOPs the worker for [stop_s] seconds —
    if the task deadline is shorter, the hung-worker path fires first. *)
type proc_fate =
  | Proc_ok
  | Proc_kill of { permanent : bool; close_pipe : bool }
  | Proc_stop of { stop_s : float }

let proc_fate (t : t) ~(loop : int) ~(chunk : int) : proc_fate =
  let s = t.spec in
  let u = draw t ~site:"proc" [ loop; chunk ] in
  if u < s.M.crash_prob then begin
    Atomic.incr t.stats.crashes;
    let permanent =
      draw t ~site:"proc-kind" [ loop; chunk ] >= s.M.crash_transient_frac
    in
    Atomic.incr (if permanent then t.stats.permanent else t.stats.transient);
    let close_pipe = draw t ~site:"proc-mode" [ loop; chunk ] < 0.3 in
    Proc_kill { permanent; close_pipe }
  end
  else if u < s.M.crash_prob +. s.M.straggler_prob then begin
    Atomic.incr t.stats.stragglers;
    (* scaled down from the simulated slowdown so soaks stay fast, but
       long enough that a short task deadline observes a real hang *)
    Proc_stop { stop_s = Float.min 0.25 (0.01 *. Float.max 1.0 s.M.straggler_slowdown) }
  end
  else Proc_ok

(* ------------------------------------------------------------------ *)
(* Network mode (DESIGN.md §16)                                        *)
(* ------------------------------------------------------------------ *)

(** What the fault-injecting transport wrapper does to one outgoing
    master→worker frame on the TCP executor ([Net_cluster]).  Drawn per
    (slot, frame number) using the {!worker_seed} slot-seed rule — the
    stream belongs to the {e slot}, so a reconnected or respawned link
    for slot [k] continues its predecessor's fate sequence and a seeded
    chaos run replays.  [Link_partition] blackholes the link (sends
    dropped, inbound frames discarded) for roughly three heartbeat
    intervals; [Link_sever] cuts the connection mid-frame;
    [Link_corrupt] flips a payload byte after the CRC is computed, so
    the receiver's check fails exactly as for a real flipped bit;
    [Link_delay] stalls the frame. *)
type link_fate =
  | Link_ok
  | Link_partition of { for_s : float }
  | Link_sever
  | Link_corrupt
  | Link_delay of { for_s : float }

let link_fate (t : t) ~(slot : int) ~(frame : int) : link_fate =
  let s = t.spec in
  let g =
    Prng.create ((worker_seed s ~worker:slot) lxor ((frame + 1) * 0x9E3779B9))
  in
  let u = Prng.float g 1.0 in
  let p_part = s.M.partition_prob in
  let p_sever = p_part +. s.M.sever_prob in
  let p_corrupt = p_sever +. s.M.corrupt_prob in
  let p_delay = p_corrupt +. s.M.link_delay_prob in
  if u < p_part then begin
    Atomic.incr t.stats.partitions;
    Link_partition
      { for_s = Float.min 0.3 (3.0 *. Float.max 1.0 s.M.heartbeat_ms *. 1e-3) }
  end
  else if u < p_sever then begin
    Atomic.incr t.stats.severs;
    Link_sever
  end
  else if u < p_corrupt then begin
    Atomic.incr t.stats.corrupts;
    Link_corrupt
  end
  else if u < p_delay then begin
    Atomic.incr t.stats.link_delays;
    Link_delay { for_s = Float.max 0.0 s.M.link_delay_ms *. 1e-3 }
  end
  else Link_ok

let link_fault_count (t : t) : int =
  Atomic.get t.stats.partitions + Atomic.get t.stats.severs
  + Atomic.get t.stats.corrupts + Atomic.get t.stats.link_delays

(* ------------------------------------------------------------------ *)
(* Elastic membership (DESIGN.md §11)                                  *)
(* ------------------------------------------------------------------ *)

(** One membership-churn event for one multiloop.  Joins and leaves are
    drawn like every other fault — pure functions of (seed, loop, node)
    — so an elastic run replays exactly.  A [Leave] is a {e graceful}
    permanent departure (the node drains its partitions first, losing no
    lineage); a crash is the violent version handled by {!node_fate}. *)
type membership_event = Join of { node : int } | Leave of { node : int }

(** Membership events for one multiloop, given the current [alive] set
    and the remaining [spares] pool.  At most one spare joins per loop
    (cluster managers serialize admissions); any number may leave, but
    never the last live node. *)
let membership_events (t : t) ~(loop : int) ~(alive : int list)
    ~(spares : int list) : membership_event list =
  let s = t.spec in
  let joins =
    match spares with
    | spare :: _ when draw t ~site:"join" [ loop; spare ] < s.M.join_prob ->
        Atomic.incr t.stats.joins;
        [ Join { node = spare } ]
    | _ -> []
  in
  let leaves =
    List.filter
      (fun node -> draw t ~site:"leave" [ loop; node ] < s.M.leave_prob)
      alive
  in
  (* never let every live node walk away (joins land after leaves drain,
     so they don't loosen the bound) *)
  let max_leaves = List.length alive - 1 in
  let leaves = List.filteri (fun i _ -> i < max_leaves) leaves in
  List.iter (fun _ -> Atomic.incr t.stats.leaves) leaves;
  joins @ List.map (fun node -> Leave { node }) leaves

(** The fate of one remote read, keyed by reader location, index, and
    attempt. *)
type read_fate = Read_ok | Read_drop | Read_delay of { us : float }

let read_fate (t : t) ~(from_loc : int) ~(index : int) ~(attempt : int) : read_fate =
  let s = t.spec in
  let u = draw t ~site:"read" [ from_loc; index; attempt ] in
  if u < s.M.read_drop_prob then begin
    Atomic.incr t.stats.read_drops;
    Read_drop
  end
  else if u < s.M.read_drop_prob +. s.M.read_delay_prob then
    Read_delay { us = s.M.read_delay_us }
  else Read_ok

(** Exponential backoff before retry [attempt] (0-based). *)
let backoff_us (s : spec) ~(attempt : int) : float =
  s.M.backoff_us *. (2.0 ** float_of_int attempt)

let backoff_s (s : spec) ~(attempt : int) : float = backoff_us s ~attempt *. 1e-6

(* Counters the executors bump as they recover. *)
let record_read_retry t = Atomic.incr t.stats.read_retries
let record_degraded t = Atomic.incr t.stats.degraded_reads
let record_recovered t = Atomic.incr t.stats.recovered_chunks
let record_speculation t = Atomic.incr t.stats.speculative
let record_replan t = Atomic.incr t.stats.replans
let record_restore t = Atomic.incr t.stats.restores
let record_replay t = Atomic.incr t.stats.replays
let record_checkpoint t = Atomic.incr t.stats.checkpoints
let join_count t = Atomic.get t.stats.joins
let leave_count t = Atomic.get t.stats.leaves
let restore_count t = Atomic.get t.stats.restores
let replay_count t = Atomic.get t.stats.replays
let checkpoint_count t = Atomic.get t.stats.checkpoints

(** Total injected fault events of any kind. *)
let total_injected (t : t) : int =
  Atomic.get t.stats.crashes + Atomic.get t.stats.stragglers
  + Atomic.get t.stats.read_drops

let stats_to_string (t : t) : string =
  let g = Atomic.get in
  let s = t.stats in
  Printf.sprintf
    "crashes=%d (permanent=%d, transient=%d) stragglers=%d speculated=%d \
     replans=%d recovered_chunks=%d read_drops=%d read_retries=%d \
     degraded_reads=%d joins=%d leaves=%d restores=%d replays=%d \
     checkpoints=%d partitions=%d severs=%d corrupts=%d link_delays=%d"
    (g s.crashes) (g s.permanent) (g s.transient) (g s.stragglers)
    (g s.speculative) (g s.replans) (g s.recovered_chunks) (g s.read_drops)
    (g s.read_retries) (g s.degraded_reads) (g s.joins) (g s.leaves)
    (g s.restores) (g s.replays) (g s.checkpoints) (g s.partitions)
    (g s.severs) (g s.corrupts) (g s.link_delays)

(* ------------------------------------------------------------------ *)
(* Spec syntax: the DMLL_FAULTS / --faults grammar                      *)
(* ------------------------------------------------------------------ *)

(* One row per key — name, printer, parser — so the grammar, the
   pp_spec/parse_spec round-trip, and the unknown-key diagnostic can
   never drift apart.  Floats print with 17 significant digits, enough
   for every double to survive the round trip exactly. *)
let keys :
    (string * (spec -> string) * (spec -> string -> (spec, string) result)) list
    =
  let fl set spec v =
    match float_of_string_opt v with
    | Some f -> Ok (set spec f)
    | None -> Error (Printf.sprintf "bad number %S" v)
  in
  let it set spec v =
    match int_of_string_opt v with
    | Some n -> Ok (set spec n)
    | None -> Error (Printf.sprintf "bad integer %S" v)
  in
  let pf get s = Printf.sprintf "%.17g" (get s) in
  let pi get s = string_of_int (get s) in
  [ ( "seed",
      pi (fun s -> s.M.fault_seed),
      it (fun s n -> { s with M.fault_seed = n }) );
    ( "crash",
      pf (fun s -> s.M.crash_prob),
      fl (fun s f -> { s with M.crash_prob = f }) );
    ( "transient",
      pf (fun s -> s.M.crash_transient_frac),
      fl (fun s f -> { s with M.crash_transient_frac = f }) );
    ( "straggler",
      pf (fun s -> s.M.straggler_prob),
      fl (fun s f -> { s with M.straggler_prob = f }) );
    ( "slow",
      pf (fun s -> s.M.straggler_slowdown),
      fl (fun s f -> { s with M.straggler_slowdown = f }) );
    ( "drop",
      pf (fun s -> s.M.read_drop_prob),
      fl (fun s f -> { s with M.read_drop_prob = f }) );
    ( "delay",
      pf (fun s -> s.M.read_delay_prob),
      fl (fun s f -> { s with M.read_delay_prob = f }) );
    ( "delay_us",
      pf (fun s -> s.M.read_delay_us),
      fl (fun s f -> { s with M.read_delay_us = f }) );
    ( "retries",
      pi (fun s -> s.M.max_retries),
      it (fun s n -> { s with M.max_retries = n }) );
    ( "backoff_us",
      pf (fun s -> s.M.backoff_us),
      fl (fun s f -> { s with M.backoff_us = f }) );
    ( "heartbeat_ms",
      pf (fun s -> s.M.heartbeat_ms),
      fl (fun s f -> { s with M.heartbeat_ms = f }) );
    ( "join",
      pf (fun s -> s.M.join_prob),
      fl (fun s f -> { s with M.join_prob = f }) );
    ( "leave",
      pf (fun s -> s.M.leave_prob),
      fl (fun s f -> { s with M.leave_prob = f }) );
    ( "spares",
      pi (fun s -> s.M.spare_nodes),
      it (fun s n -> { s with M.spare_nodes = n }) );
    ( "partition",
      pf (fun s -> s.M.partition_prob),
      fl (fun s f -> { s with M.partition_prob = f }) );
    ( "sever",
      pf (fun s -> s.M.sever_prob),
      fl (fun s f -> { s with M.sever_prob = f }) );
    ( "corrupt",
      pf (fun s -> s.M.corrupt_prob),
      fl (fun s f -> { s with M.corrupt_prob = f }) );
    ( "link_delay",
      pf (fun s -> s.M.link_delay_prob),
      fl (fun s f -> { s with M.link_delay_prob = f }) );
    ( "link_delay_ms",
      pf (fun s -> s.M.link_delay_ms),
      fl (fun s f -> { s with M.link_delay_ms = f }) );
  ]

let valid_keys : string list = List.map (fun (k, _, _) -> k) keys

(** Print a spec in the grammar {!parse_spec} accepts; the round trip is
    exact (QCheck-verified). *)
let pp_spec fmt (s : spec) : unit =
  Fmt.string fmt
    (String.concat "," (List.map (fun (k, pr, _) -> k ^ "=" ^ pr s) keys))

let to_string (s : spec) : string = Fmt.str "%a" pp_spec s

(** Parse a comma-separated [key=value] spec; unset keys keep
    {!Dmll_machine.Machine.default_faults}.  Rejections — unknown keys,
    malformed numbers, missing [=] — come back as a structured [Diag]
    error (rule [F-SPEC]) listing every valid key, so a typo'd
    [DMLL_FAULTS] fails loudly instead of silently running some other
    fault regime. *)
let parse_spec (str : string) : (spec, Dmll_analysis.Diag.t) result =
  let parts =
    String.split_on_char ',' str |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Error
          (Dmll_analysis.Diag.error ~rule:"F-SPEC"
             "%s; valid keys: %s" msg
             (String.concat ", " valid_keys)))
      fmt
  in
  let rec go (spec : spec) = function
    | [] -> Ok spec
    | kv :: rest -> (
        match String.index_opt kv '=' with
        | None -> fail "expected key=value, got %S" kv
        | Some i -> (
            let key = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match List.find_opt (fun (k, _, _) -> String.equal k key) keys with
            | None -> fail "unknown fault key %S" key
            | Some (_, _, set) -> (
                match set spec v with
                | Ok spec -> go spec rest
                | Error msg -> fail "%s for key %s" msg key)))
  in
  go M.default_faults parts

(** [parse_spec] with the diagnostic flattened to a string, for callers
    that only print it. *)
let parse (str : string) : (spec, string) result =
  Result.map_error Dmll_analysis.Diag.to_string (parse_spec str)

(* The DMLL_FAULTS environment variable is read by [Dmll.Config.of_env]
   (the single env reader); this module only parses specs. *)

(* ------------------------------------------------------------------ *)
(* Debug re-verification                                               *)
(* ------------------------------------------------------------------ *)

(** Debug hook mirroring [Dmll_opt.Pipeline.post_stage_check]: when armed
    (DMLL_DEBUG=1 arms it with [Dmll.verify_stage]), the executors
    re-typecheck and re-verify the chunk program induced by every replan
    and lineage recovery before running it — the same proof obligation
    PR 1 places behind every optimizer stage. *)
let post_replan_check : (string -> Dmll_ir.Exp.exp -> unit) option ref = ref None

let check_replan (site : string) (e : Dmll_ir.Exp.exp) : unit =
  match !post_replan_check with None -> () | Some f -> f site e

(** Deterministic fault injection and recovery bookkeeping (DESIGN.md §9).

    The executors assume a healthy machine; this module takes that
    assumption away on purpose.  A {!Dmll_machine.Machine.fault_model}
    describes a failure regime (crash rates, straggler slowdowns, lossy
    remote reads); {!create} turns it into an injector whose every
    decision is a pure function of the model's seed and the fault site's
    coordinates (multiloop number, node/chunk id, retry attempt) — never
    of wall-clock time or scheduling order.  Determinism matters twice
    over: a faulty run can be replayed exactly, and the domain executor's
    injected schedule is independent of which domain happens to claim
    which chunk.

    Recovery everywhere leans on the lineage property of multiloops
    (paper §5: a multiloop is agnostic to its bounds, so any chunk is
    recomputable from its range and inputs alone).  The injector only
    decides {e when} to hurt and counts what happened; the executors
    recover by deterministic recomputation, which is why injected faults
    never change computed values. *)

module M = Dmll_machine.Machine
module Prng = Dmll_util.Prng

type spec = M.fault_model

(** Raised by an executor worker when the injector fails its current
    chunk: transient faults are retried with exponential backoff, a
    permanent fault kills the worker and leaves the chunk for lineage
    recovery. *)
exception Injected of { transient : bool; site : string }

(* ------------------------------------------------------------------ *)
(* Injector state: the spec plus domain-safe event counters             *)
(* ------------------------------------------------------------------ *)

type stats = {
  crashes : int Atomic.t;  (** injected crash events (nodes or chunks) *)
  permanent : int Atomic.t;
  transient : int Atomic.t;
  stragglers : int Atomic.t;
  read_drops : int Atomic.t;
  read_retries : int Atomic.t;
  degraded_reads : int Atomic.t;  (** remote reads served from a replica *)
  recovered_chunks : int Atomic.t;  (** chunks recomputed from lineage *)
  speculative : int Atomic.t;  (** speculative straggler re-executions *)
  replans : int Atomic.t;
}

type t = { spec : spec; stats : stats }

let create (spec : spec) : t =
  { spec;
    stats =
      { crashes = Atomic.make 0;
        permanent = Atomic.make 0;
        transient = Atomic.make 0;
        stragglers = Atomic.make 0;
        read_drops = Atomic.make 0;
        read_retries = Atomic.make 0;
        degraded_reads = Atomic.make 0;
        recovered_chunks = Atomic.make 0;
        speculative = Atomic.make 0;
        replans = Atomic.make 0;
      };
  }

let spec (t : t) = t.spec

(* ------------------------------------------------------------------ *)
(* Deterministic draws                                                 *)
(* ------------------------------------------------------------------ *)

(* A uniform draw in [0,1) that is a pure function of (seed, site, ids):
   independent of scheduling order and of every other site.  SplitMix64's
   output mixing decorrelates the structured seeds. *)
let draw (t : t) ~(site : string) (ids : int list) : float =
  let h = List.fold_left (fun acc i -> (acc * 1000003) lxor (i + 0x9E3779B9)) (Hashtbl.hash site) ids in
  Prng.float (Prng.create (h lxor (t.spec.M.fault_seed * 0x2545F491))) 1.0

(** The fate of a cluster node for one multiloop — drawn fresh per loop,
    so a transient crash hurts one phase while a permanent one is the
    caller's to remember (the injector is stateless about topology). *)
type node_fate =
  | Healthy
  | Crashed of { permanent : bool }
  | Straggling of { slowdown : float }

let node_fate (t : t) ~(loop : int) ~(node : int) : node_fate =
  let s = t.spec in
  let u = draw t ~site:"node" [ loop; node ] in
  if u < s.M.crash_prob then begin
    Atomic.incr t.stats.crashes;
    let permanent = draw t ~site:"crash-kind" [ loop; node ] >= s.M.crash_transient_frac in
    Atomic.incr (if permanent then t.stats.permanent else t.stats.transient);
    Crashed { permanent }
  end
  else if u < s.M.crash_prob +. s.M.straggler_prob then begin
    Atomic.incr t.stats.stragglers;
    Straggling { slowdown = Float.max 1.0 s.M.straggler_slowdown }
  end
  else Healthy

(** The fate of executing one chunk of one multiloop for the [attempt]-th
    time.  Keyed by the chunk, not the worker: the injected schedule is
    identical no matter which domain claims the chunk, and each retry
    draws afresh (so transient faults clear with retries). *)
type chunk_fate =
  | Chunk_ok
  | Chunk_fail of { transient : bool }
  | Chunk_slow of { slowdown : float }

let chunk_fate (t : t) ~(loop : int) ~(chunk : int) ~(attempt : int) : chunk_fate =
  let s = t.spec in
  let u = draw t ~site:"chunk" [ loop; chunk; attempt ] in
  if u < s.M.crash_prob then begin
    Atomic.incr t.stats.crashes;
    let transient = draw t ~site:"chunk-kind" [ loop; chunk; attempt ] < s.M.crash_transient_frac in
    Atomic.incr (if transient then t.stats.transient else t.stats.permanent);
    Chunk_fail { transient }
  end
  else if u < s.M.crash_prob +. s.M.straggler_prob then begin
    Atomic.incr t.stats.stragglers;
    Chunk_slow { slowdown = Float.max 1.0 s.M.straggler_slowdown }
  end
  else Chunk_ok

(** The fate of one remote read, keyed by reader location, index, and
    attempt. *)
type read_fate = Read_ok | Read_drop | Read_delay of { us : float }

let read_fate (t : t) ~(from_loc : int) ~(index : int) ~(attempt : int) : read_fate =
  let s = t.spec in
  let u = draw t ~site:"read" [ from_loc; index; attempt ] in
  if u < s.M.read_drop_prob then begin
    Atomic.incr t.stats.read_drops;
    Read_drop
  end
  else if u < s.M.read_drop_prob +. s.M.read_delay_prob then
    Read_delay { us = s.M.read_delay_us }
  else Read_ok

(** Exponential backoff before retry [attempt] (0-based). *)
let backoff_us (s : spec) ~(attempt : int) : float =
  s.M.backoff_us *. (2.0 ** float_of_int attempt)

let backoff_s (s : spec) ~(attempt : int) : float = backoff_us s ~attempt *. 1e-6

(* Counters the executors bump as they recover. *)
let record_read_retry t = Atomic.incr t.stats.read_retries
let record_degraded t = Atomic.incr t.stats.degraded_reads
let record_recovered t = Atomic.incr t.stats.recovered_chunks
let record_speculation t = Atomic.incr t.stats.speculative
let record_replan t = Atomic.incr t.stats.replans

(** Total injected fault events of any kind. *)
let total_injected (t : t) : int =
  Atomic.get t.stats.crashes + Atomic.get t.stats.stragglers
  + Atomic.get t.stats.read_drops

let stats_to_string (t : t) : string =
  let g = Atomic.get in
  let s = t.stats in
  Printf.sprintf
    "crashes=%d (permanent=%d, transient=%d) stragglers=%d speculated=%d \
     replans=%d recovered_chunks=%d read_drops=%d read_retries=%d degraded_reads=%d"
    (g s.crashes) (g s.permanent) (g s.transient) (g s.stragglers)
    (g s.speculative) (g s.replans) (g s.recovered_chunks) (g s.read_drops)
    (g s.read_retries) (g s.degraded_reads)

(* ------------------------------------------------------------------ *)
(* Spec syntax: the DMLL_FAULTS / --faults grammar                      *)
(* ------------------------------------------------------------------ *)

let to_string (s : spec) : string =
  Printf.sprintf
    "seed=%d,crash=%g,transient=%g,straggler=%g,slow=%g,drop=%g,delay=%g,delay_us=%g,retries=%d,backoff_us=%g,heartbeat_ms=%g"
    s.M.fault_seed s.M.crash_prob s.M.crash_transient_frac s.M.straggler_prob
    s.M.straggler_slowdown s.M.read_drop_prob s.M.read_delay_prob
    s.M.read_delay_us s.M.max_retries s.M.backoff_us s.M.heartbeat_ms

(** Parse a comma-separated [key=value] spec; unset keys keep
    {!Dmll_machine.Machine.default_faults}.  Keys: [seed], [crash],
    [transient], [straggler], [slow], [drop], [delay], [delay_us],
    [retries], [backoff_us], [heartbeat_ms]. *)
let parse (str : string) : (spec, string) result =
  let parts =
    String.split_on_char ',' str |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let ( let* ) = Result.bind in
  let rec go (spec : spec) = function
    | [] -> Ok spec
    | kv :: rest -> (
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
        | Some i ->
            let key = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            let fl () =
              match float_of_string_opt v with
              | Some f -> Ok f
              | None -> Error (Printf.sprintf "bad number %S for key %s" v key)
            in
            let it () =
              match int_of_string_opt v with
              | Some n -> Ok n
              | None -> Error (Printf.sprintf "bad integer %S for key %s" v key)
            in
            let* spec =
              match key with
              | "seed" ->
                  let* n = it () in
                  Ok { spec with M.fault_seed = n }
              | "crash" ->
                  let* f = fl () in
                  Ok { spec with M.crash_prob = f }
              | "transient" ->
                  let* f = fl () in
                  Ok { spec with M.crash_transient_frac = f }
              | "straggler" ->
                  let* f = fl () in
                  Ok { spec with M.straggler_prob = f }
              | "slow" ->
                  let* f = fl () in
                  Ok { spec with M.straggler_slowdown = f }
              | "drop" ->
                  let* f = fl () in
                  Ok { spec with M.read_drop_prob = f }
              | "delay" ->
                  let* f = fl () in
                  Ok { spec with M.read_delay_prob = f }
              | "delay_us" ->
                  let* f = fl () in
                  Ok { spec with M.read_delay_us = f }
              | "retries" ->
                  let* n = it () in
                  Ok { spec with M.max_retries = n }
              | "backoff_us" ->
                  let* f = fl () in
                  Ok { spec with M.backoff_us = f }
              | "heartbeat_ms" ->
                  let* f = fl () in
                  Ok { spec with M.heartbeat_ms = f }
              | other -> Error (Printf.sprintf "unknown fault key %S" other)
            in
            go spec rest)
  in
  go M.default_faults parts

(** The [DMLL_FAULTS] environment spec as an injector, if set.  Malformed
    specs raise [Invalid_argument] loudly rather than silently running
    healthy. *)
let from_env () : t option =
  match Sys.getenv_opt "DMLL_FAULTS" with
  | None | Some "" -> None
  | Some s -> (
      match parse s with
      | Ok spec -> Some (create spec)
      | Error msg -> invalid_arg (Printf.sprintf "DMLL_FAULTS: %s" msg))

(* ------------------------------------------------------------------ *)
(* Debug re-verification                                               *)
(* ------------------------------------------------------------------ *)

(** Debug hook mirroring [Dmll_opt.Pipeline.post_stage_check]: when armed
    (DMLL_DEBUG=1 arms it with [Dmll.verify_stage]), the executors
    re-typecheck and re-verify the chunk program induced by every replan
    and lineage recovery before running it — the same proof obligation
    PR 1 places behind every optimizer stage. *)
let post_replan_check : (string -> Dmll_ir.Exp.exp -> unit) option ref = ref None

let check_replan (site : string) (e : Dmll_ir.Exp.exp) : unit =
  match !post_replan_check with None -> () | Some f -> f site e

(** Real multicore execution of DMLL programs on OCaml 5 domains.

    This executor actually runs multiloop chunks in parallel (unlike the
    analytic simulators, which model bigger machines than this container
    has).  Each outer multiloop is split into contiguous chunks; each
    domain compiles its own chunk closure (keeping the backend's generator
    state domain-private) and the partial results are merged with the
    loop's own generators (see {!Merge}).  Tests verify the results equal
    sequential execution.

    With a {!Fault} injector supplied ([?faults]), the executor becomes
    fault-tolerant for real: a chunk whose domain draws an injected fault
    is retried with exponential backoff (transient faults), a permanent
    fault kills its worker domain — shrinking the pool — and the dead
    worker's chunk is recomputed from lineage by the master after the
    join.  Because the injected schedule is keyed by (loop, chunk,
    attempt) and chunk partials merge in index order, results are
    identical to the fault-free run under every injected schedule. *)

open Dmll_ir
module V = Dmll_interp.Value
module M = Dmll_machine.Machine
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

(* Build the chunk program for [lo, hi): a loop of size hi-lo whose parts
   see the original index as [idx' + lo]. *)
let chunk_loop (l : Exp.loop) (r : Chunk.range) : Exp.exp =
  let open Exp in
  let idx' = Sym.fresh ~name:"ci" Types.Int in
  let shift = Builder.( +! ) (Var idx') (int_ r.Chunk.lo) in
  let rw e = refresh_binders (subst1 l.idx shift e) in
  let gens =
    List.map
      (fun g ->
        let g = map_gen_parts rw g in
        match g with
        | Reduce rd -> Reduce { rd with rfun = rw rd.rfun }
        | BucketReduce rd -> BucketReduce { rd with rfun = rw rd.rfun }
        | g -> g)
      l.gens
  in
  Loop { size = int_ (Chunk.size r); idx = idx'; gens }

(** Chunking policy: [Static] gives each domain one contiguous chunk;
    [Dynamic] over-decomposes into many small chunks that idle domains
    pull from a shared queue — the paper's multi-core partitioner
    "provides dynamic load balancing within each machine, which provides
    much better scaling for irregular applications" (§5). *)
type schedule = Static | Dynamic

let chunks_of ~(domains : int) ~(schedule : schedule) (n : int) : Chunk.range list =
  match schedule with
  | Static -> Chunk.split ~k:domains n
  | Dynamic -> Chunk.split ~k:(8 * domains) n

(* Merge indexed chunk partials with the loop's generators; single-chunk
   loops pass the (sole) value through. *)
let merge_parts ~(env : Evalenv.env) ~(inputs : (string * V.t) list) (l : Exp.loop)
    ~(nchunks : int) (parts : (int * V.t) list) : V.t =
  let ordered = Merge.in_chunk_order parts in
  if nchunks <= 1 then List.hd ordered
  else
    match l.Exp.gens with
    | [ g ] -> Merge.merge_gen ~env ~inputs g ordered
    | gens ->
        (* multi-generator loop: merge per generator *)
        let per_gen =
          List.mapi
            (fun k g ->
              let parts_k =
                List.map
                  (fun p ->
                    match p with
                    | V.Vtup vs -> vs.(k)
                    | _ -> invalid_arg "Exec_domains: expected tuple of partials")
                  ordered
              in
              Merge.merge_gen ~env ~inputs g parts_k)
            gens
        in
        V.Vtup (Array.of_list per_gen)

(* Evaluate one loop in parallel across [domains] chunks (healthy path). *)
let run_loop ~(domains : int) ~(schedule : schedule)
    ~(inputs : (string * V.t) list) (env : Evalenv.env) (l : Exp.loop) : V.t =
  let n = Evalenv.eval_int ~inputs env l.Exp.size in
  let chunks = chunks_of ~domains ~schedule n in
  let parts =
    match chunks with
    | [] | [ _ ] ->
        (* empty or single chunk: evaluate sequentially *)
        [ Evalenv.eval ~inputs env (Exp.Loop l) ]
    | _ when schedule = Static ->
        let first, rest =
          match chunks with c :: cs -> (c, cs) | [] -> assert false
        in
        (* spawn one domain per extra chunk; run the first chunk here *)
        let spawned =
          List.map
            (fun r ->
              Domain.spawn (fun () -> Evalenv.eval ~inputs env (chunk_loop l r)))
            rest
        in
        let mine = Evalenv.eval ~inputs env (chunk_loop l first) in
        mine :: List.map Domain.join spawned
    | _ ->
        (* dynamic: a shared counter hands chunks to idle workers; results
           land in per-chunk slots so the merge order stays sequential *)
        let chunk_arr = Array.of_list chunks in
        let results = Array.make (Array.length chunk_arr) V.Vunit in
        let next = Atomic.make 0 in
        let worker () =
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next 1 in
            if i >= Array.length chunk_arr then continue := false
            else results.(i) <- Evalenv.eval ~inputs env (chunk_loop l chunk_arr.(i))
          done
        in
        let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join spawned;
        Array.to_list results
  in
  merge_parts ~env ~inputs l ~nchunks:(List.length chunks)
    (List.mapi (fun i p -> (i, p)) parts)

(* Backoffs and injected straggler delays are real sleeps, capped so fault
   tests stay fast. *)
let capped_sleep s = Unix.sleepf (Float.min 2e-3 s)

(* Evaluate one loop under fault injection.  A shared queue hands chunks
   to workers regardless of [schedule] (the chunking itself still follows
   the policy, so partials — and hence merged values — match the healthy
   run bit for bit).  The calling domain is the master: it drains the
   queue too, is immune to injection (it models the driver, not an
   executor), and recomputes any chunk a dead worker left behind. *)
let run_loop_faulty ~(fault : Fault.t) ~(loop_no : int) ~(domains : int)
    ~(schedule : schedule) ~(inputs : (string * V.t) list) (env : Evalenv.env)
    (l : Exp.loop) : V.t =
  let n = Evalenv.eval_int ~inputs env l.Exp.size in
  let chunks = chunks_of ~domains ~schedule n in
  match chunks with
  | [] | [ _ ] -> Evalenv.eval ~inputs env (Exp.Loop l)
  | _ ->
      let spec = Fault.spec fault in
      let chunk_arr = Array.of_list chunks in
      let nres = Array.length chunk_arr in
      let results = Array.make nres V.Vunit in
      let done_ = Array.init nres (fun _ -> Atomic.make false) in
      let next = Atomic.make 0 in
      let eval_chunk i =
        results.(i) <- Evalenv.eval ~inputs env (chunk_loop l chunk_arr.(i));
        Atomic.set done_.(i) true
      in
      let worker ~immune () =
        let alive = ref true in
        while !alive do
          let i = Atomic.fetch_and_add next 1 in
          if i >= nres then alive := false
          else begin
            let rec attempt k =
              match
                if immune then Fault.Chunk_ok
                else Fault.chunk_fate fault ~loop:loop_no ~chunk:i ~attempt:k
              with
              | Fault.Chunk_ok -> eval_chunk i
              | Fault.Chunk_slow { slowdown } ->
                  (* injected straggler: a real (bounded) delay, then the
                     work — the master's speculative copy is not needed
                     in-process, the delay just exercises out-of-order
                     completion *)
                  capped_sleep (slowdown *. 1e-4);
                  eval_chunk i
              | Fault.Chunk_fail { transient }
                when transient && k < spec.M.max_retries ->
                  capped_sleep (Fault.backoff_s spec ~attempt:k);
                  attempt (k + 1)
              | Fault.Chunk_fail { transient } ->
                  (* permanent fault (or transient with retries exhausted):
                     this worker is dead; the chunk stays undone for the
                     master's lineage recovery after the join *)
                  raise
                    (Fault.Injected
                       { transient; site = Printf.sprintf "chunk %d of loop %d" i loop_no })
            in
            try attempt 0 with Fault.Injected _ -> alive := false
          end
        done
      in
      let spawned = List.init (domains - 1) (fun _ -> Domain.spawn (worker ~immune:false)) in
      worker ~immune:true ();
      List.iter Domain.join spawned;
      (* lineage recovery: any chunk a dead worker claimed but never
         finished is deterministically recomputed here — same range, same
         inputs, same value *)
      Array.iteri
        (fun i d ->
          if not (Atomic.get d) then begin
            Fault.check_replan "domains-recover" (chunk_loop l chunk_arr.(i));
            Fault.record_recovered fault;
            eval_chunk i
          end)
        done_;
      merge_parts ~env ~inputs l ~nchunks:nres
        (Array.to_list (Array.mapi (fun i v -> (i, v)) results))

let default_domains () = Stdlib.min 8 (Domain.recommended_domain_count ())

(* One spine loop, healthy or fault-injected. *)
let eval_loop ~domains ~schedule ~faults ~inputs ~loop_no env l =
  match faults with
  | None -> run_loop ~domains ~schedule ~inputs env l
  | Some fault -> run_loop_faulty ~fault ~loop_no ~domains ~schedule ~inputs env l

(* Snapshot every live spine binding plus the one just computed, with the
   driver's loop counter (DESIGN.md §11). *)
let take_checkpoint ~(store : Checkpoint.t) ~faults ~(chunks : int)
    ~(loop_no : int) (env : Evalenv.env) (sym : Sym.t option) (v : V.t) : unit =
  let name = match sym with Some s -> Sym.to_string s | None -> "result" in
  let bindings =
    Sym.Map.fold (fun s bv acc -> (Sym.to_string s, bv) :: acc) env []
    @ [ (name, v) ]
  in
  ignore
    (Checkpoint.record store ~at_loop:loop_no ~chunks ~bindings
       ~driver:[ ("loop_no", V.Vint loop_no) ]);
  match faults with Some f -> Fault.record_checkpoint f | None -> ()

(** Execute a program with outer multiloops parallelized across [domains]
    OCaml domains (default: the host's recommended domain count, capped at
    8 for container friendliness).  [?faults] arms deterministic fault
    injection with retry/backoff and lineage recovery (see {!Fault});
    [?checkpoint] snapshots the spine bindings at the store's cadence so a
    later {!run_with_recovery} can resume instead of replaying.

    [?obs] records one wall-clock span per spine loop (cat ["runtime"])
    and per checkpoint (cat ["phase"]); [?metrics] accumulates [loops]
    and [checkpoints] counts into the run's ledger (DESIGN.md §12). *)
let run ?obs ?metrics ?(domains = default_domains ()) ?(schedule = Static)
    ?faults ?checkpoint ?(inputs = []) (program : Exp.exp) : V.t =
  let bump key =
    match metrics with Some m -> Metrics.incr m key | None -> ()
  in
  let loop_no = ref 0 in
  Spine.exec ~inputs
    ~on_loop:(fun env sym l ->
      incr loop_no;
      let name = match sym with Some s -> Sym.to_string s | None -> "result" in
      let v =
        Span.with_span ?tracer:obs ~tid:Span.runtime_tid ~cat:"runtime"
          ~args:[ ("loop", Span.Int !loop_no) ]
          name
          (fun () ->
            eval_loop ~domains ~schedule ~faults ~inputs ~loop_no:!loop_no env
              l)
      in
      bump "loops";
      (match checkpoint with
      | Some store when Checkpoint.due store ~loop:!loop_no ->
          Span.with_span ?tracer:obs ~tid:Span.runtime_tid ~cat:"phase"
            ~args:[ ("at_loop", Span.Int !loop_no) ]
            "checkpoint"
            (fun () ->
              take_checkpoint ~store ~faults ~chunks:domains
                ~loop_no:!loop_no env sym v);
          bump "checkpoints"
      | _ -> ());
      v)
    program

exception Simulated_crash of int

(** Run [program] checkpointing at [store]'s cadence, simulate a driver
    crash once [crash_after] loops have completed, then recover and
    finish: from the latest {e verified} checkpoint when one exists —
    every spine binding the snapshot covers is restored (deep-copied)
    instead of recomputed — or by lineage replay of the whole spine when
    there is no usable snapshot (none taken, or checksum mismatch).  The
    recovery path taken is recorded on the injector.  Results are
    bit-identical to a healthy {!run} either way; only the work differs. *)
let run_with_recovery ?metrics ?(domains = default_domains ())
    ?(schedule = Static) ?faults ~(store : Checkpoint.t) ~(crash_after : int)
    ?(inputs = []) (program : Exp.exp) : V.t =
  let bump key =
    match metrics with Some m -> Metrics.incr m key | None -> ()
  in
  (* phase 1: the doomed attempt — checkpoints survive the crash *)
  let loop_no = ref 0 in
  (try
     ignore
       (Spine.exec ~inputs
          ~on_loop:(fun env sym l ->
            if !loop_no >= crash_after then raise (Simulated_crash !loop_no);
            incr loop_no;
            let v =
              eval_loop ~domains ~schedule ~faults ~inputs ~loop_no:!loop_no
                env l
            in
            (if Checkpoint.due store ~loop:!loop_no then
               take_checkpoint ~store ~faults ~chunks:domains
                 ~loop_no:!loop_no env sym v);
            v)
          program)
   with Simulated_crash _ -> ());
  (* phase 2: recovery *)
  match Checkpoint.restore store with
  | Checkpoint.Available snap ->
      (match faults with Some f -> Fault.record_restore f | None -> ());
      bump "snapshot_verifications";
      bump "restores";
      let loop_no = ref 0 in
      Spine.exec ~inputs
        ~on_loop:(fun env sym l ->
          incr loop_no;
          let restored =
            if !loop_no > snap.Checkpoint.at_loop then None
            else
              let name =
                match sym with Some s -> Sym.to_string s | None -> "result"
              in
              Option.map
                (fun (e : Checkpoint.entry) ->
                  Checkpoint.copy_value e.Checkpoint.value)
                (List.assoc_opt name snap.Checkpoint.bindings)
          in
          match restored with
          | Some v -> v
          | None ->
              eval_loop ~domains ~schedule ~faults ~inputs ~loop_no:!loop_no
                env l)
        program
  | Checkpoint.Corrupt msg ->
      Logs.warn (fun m ->
          m "Exec_domains: %s; replaying the whole spine from lineage" msg);
      (match faults with Some f -> Fault.record_replay f | None -> ());
      bump "snapshot_verifications";
      bump "replays";
      run ?metrics ~domains ~schedule ?faults ~inputs program
  | Checkpoint.None_taken ->
      (match faults with Some f -> Fault.record_replay f | None -> ());
      bump "replays";
      run ?metrics ~domains ~schedule ?faults ~inputs program

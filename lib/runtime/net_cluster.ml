(** TCP-backed cluster executor with self-healing membership
    (DESIGN.md §16).

    The same chunk-program contract as {!Proc_cluster} — serialized
    chunk programs out, chunk values back, the plan a pure function of
    the loop size and the {e configured} worker count — but the links
    are real TCP connections instead of inherited socketpairs, so
    workers can live on other hosts: a {!worker_main} client (the
    [dmll_worker] binary) dials the master, handshakes with a protocol
    version and session token, and serves chunk programs over the
    shared length-prefixed CRC32 {!Transport} codec.

    Robustness model, layered from the wire up:
    {ul
    {- {b Frame integrity}: every frame is CRC32-checksummed; a worker
       that receives a corrupt frame answers [Bad_frame] and the master
       retransmits the in-flight task with jittered backoff, within a
       bounded resend budget.}
    {- {b Liveness}: keepalive pings with deadlines run {e inside} the
       event loop (idle links) and at loop boundaries (everyone); a
       dispatched chunk unanswered past its deadline marks the link
       hung.}
    {- {b Reconnect-and-resume}: a dropped link opens a grace window;
       the worker redials with its session id and, within the window,
       its in-flight chunks are replayed from the retained chunk plan —
       merges stay bit-identical because chunk identity, not link
       identity, orders the merge.}
    {- {b Permanent loss}: past the grace window (or on a hard kill)
       the slot's chunks are replanned onto survivors with
       {!Schedule.replan} and a replacement is admitted within the
       respawn budget; past the budget the run degrades, ultimately to
       master-inline evaluation.}
    {- {b Fault injection}: with faults armed, every outgoing
       master→worker frame draws a {!Fault.link_fate} — partition,
       sever, corrupt, delay — delivered for real on the live socket by
       the {!Transport.conn} wrapper, keyed by the PR 7 slot-seed rule
       so a reconnected link continues its predecessor's fate stream.}}

    Determinism contract: identical to {!Proc_cluster} — a faulty run
    merges the same chunk partials in the same order as a healthy run
    (bit-identical values), and healthy-vs-interpreter agreement is
    bit-identical for exact merges, 1e-6 relative for reassociated
    float reductions. *)

open Dmll_ir
module V = Dmll_interp.Value
module M = Dmll_machine.Machine
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics
module Prng = Dmll_util.Prng

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let protocol_version = 1

(** First frame on every new connection, worker → master.  [reconnect]
    carries the session id of a previous incarnation to resume. *)
type hello = { version : int; token : string; reconnect : int option }

type task = {
  task_id : int;
  loop_no : int;
  chunk : int;
  base_attempt : int;
      (** offset into the chunk's injected-fate attempt sequence, bumped
          per dispatch so a redispatched chunk draws fresh fates *)
  prog : Exp.exp;  (** closed chunk program (pure data, marshalable) *)
  bindings : (string * V.t) list;  (** pseudo-input values for [prog] *)
}

(** Master's handshake answer.  [Accepted] carries everything a remote
    worker needs to join the computation: its slot (which keys the
    deterministic fault streams), its session id (the reconnect
    credential), the fault spec, and the program inputs. *)
type welcome =
  | Accepted of {
      slot : int;
      wid : int;
      spec : M.fault_model option;
      inputs : (string * V.t) list;
      heartbeat_s : float;
    }
  | Rejected of { reason : string }

type to_worker = Task of task | Ping of int | Shutdown

type from_worker =
  | Done of { task_id : int; chunk : int; value : V.t; retries : int }
  | Refused of { task_id : int; chunk : int; msg : string }
  | Pong of int
  | Bad_frame of { detail : string }
      (** the worker rejected a corrupt (CRC-failed) frame; the master
          retransmits the in-flight task within a resend budget *)

exception Worker_gone = Transport.Peer_gone
exception Frame_timeout = Transport.Frame_timeout

(* how many times one dispatched task is retransmitted on [Bad_frame]
   before the link is declared hostile and the slot retired *)
let resend_budget = 3

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;  (** slots (and the fixed chunk fan-out) *)
  listen : string option;
      (** [HOST:PORT] to bind; [None] binds loopback on an ephemeral
          port (pure local mode) *)
  token : string option;
      (** session token required in every hello; [None] generates one *)
  spawn_local : bool;
      (** fork local worker processes that dial back in; [false] waits
          for external [dmll_worker] processes to attach *)
  faults : Fault.t option;
      (** arms worker-side chunk faults, master-side process murder of
          local workers, {e and} per-frame link faults on every
          master→worker connection *)
  task_deadline_s : float;
      (** a dispatched chunk unanswered for this long marks the link
          hung: retire + replan *)
  heartbeat_s : float;
      (** keepalive ping cadence on idle links; three missed pongs
          declare the link dead *)
  reconnect_grace_s : float;
      (** how long a dropped link's chunks are retained for its worker
          to redial and resume; [<= 0.] disables reconnection *)
  join_deadline_s : float;  (** how long {!run} waits for initial joins *)
  accept_deadline_s : float;
      (** a dialer must complete its hello within this long *)
  max_respawns : int;
      (** replacement-admission budget for the whole run (forked
          replacements in local mode, fresh dials in listen mode) *)
  worker_redials : int;
      (** reconnect attempts a locally forked worker makes per lost
          link *)
  obs : Span.t option;
  metrics : Metrics.t option;
  on_spawn : (slot:int -> pid:int -> unit) option;
      (** test hook, called by the master after every local fork *)
  on_task_sent : (slot:int -> chunk:int -> unit) option;
      (** test hook, called right after a task frame is written and
          before its first reply can arrive *)
  on_listen : (addr:string -> unit) option;
      (** called once with the bound [HOST:PORT] (the ephemeral port in
          local mode) before any worker is spawned *)
}

let default_config =
  { workers = 2;
    listen = None;
    token = None;
    spawn_local = true;
    faults = None;
    task_deadline_s = 5.0;
    heartbeat_s = 0.25;
    reconnect_grace_s = 0.5;
    join_deadline_s = 10.0;
    accept_deadline_s = 2.0;
    max_respawns = 8;
    worker_redials = 2;
    obs = None;
    metrics = None;
    on_spawn = None;
    on_task_sent = None;
    on_listen = None;
  }

(* ------------------------------------------------------------------ *)
(* Run statistics                                                      *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable spawned : int;  (** local forks, initial and replacement *)
  mutable respawned : int;  (** replacement admissions against the budget *)
  mutable connects : int;  (** fresh sessions accepted *)
  mutable reconnects : int;  (** resumed sessions accepted *)
  mutable rejections : int;  (** hellos refused (version/token/slot/grace) *)
  mutable disconnects : int;  (** links lost into a grace window *)
  mutable grace_expired : int;  (** grace windows that ran out *)
  mutable killed : int;  (** injected murders of local workers *)
  mutable link_cuts : int;  (** injected master-side link severs *)
  mutable stopped : int;  (** injected SIGSTOP straggles *)
  mutable deadline_kills : int;
  mutable heartbeat_kills : int;
  mutable frame_resends : int;  (** tasks retransmitted after [Bad_frame] *)
  mutable io_retries : int;
  mutable replans : int;
  mutable recovered_chunks : int;
  mutable master_chunks : int;
  mutable worker_retries : int;
  mutable pings : int;
  mutable pongs : int;
  mutable degraded : bool;
  mutable pids : int list;  (** every local child pid ever forked *)
}

let fresh_stats () =
  { spawned = 0; respawned = 0; connects = 0; reconnects = 0; rejections = 0;
    disconnects = 0; grace_expired = 0; killed = 0; link_cuts = 0;
    stopped = 0; deadline_kills = 0; heartbeat_kills = 0; frame_resends = 0;
    io_retries = 0; replans = 0; recovered_chunks = 0; master_chunks = 0;
    worker_retries = 0; pings = 0; pongs = 0; degraded = false; pids = [];
  }

let stats_to_string (s : stats) : string =
  Printf.sprintf
    "spawned=%d respawned=%d connects=%d reconnects=%d rejections=%d \
     disconnects=%d grace_expired=%d killed=%d link_cuts=%d stopped=%d \
     deadline_kills=%d heartbeat_kills=%d frame_resends=%d io_retries=%d \
     replans=%d recovered_chunks=%d master_chunks=%d worker_retries=%d \
     pings=%d pongs=%d degraded=%b"
    s.spawned s.respawned s.connects s.reconnects s.rejections s.disconnects
    s.grace_expired s.killed s.link_cuts s.stopped s.deadline_kills
    s.heartbeat_kills s.frame_resends s.io_retries s.replans
    s.recovered_chunks s.master_chunks s.worker_retries s.pings s.pongs
    s.degraded

type result = {
  value : V.t;
  seconds : float;  (** wall-clock *)
  breakdown : (string * float) list;  (** per-spine-loop wall seconds *)
  stats : stats;
  metrics : Metrics.t;
}

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)
(* ------------------------------------------------------------------ *)

let sockaddr_of_string (addr : string) : Unix.sockaddr =
  match String.rindex_opt addr ':' with
  | None -> invalid_arg ("net address must be HOST:PORT: " ^ addr)
  | Some i ->
      let host = String.sub addr 0 i in
      let port =
        match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1))
        with
        | Some p when p >= 0 && p < 65536 -> p
        | _ -> invalid_arg ("bad port in net address: " ^ addr)
      in
      let ip =
        if host = "" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found | Invalid_argument _ ->
              invalid_arg ("unresolvable host in net address: " ^ host))
      in
      Unix.ADDR_INET (ip, port)

let string_of_sockaddr = function
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | Unix.ADDR_UNIX p -> p

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let signal_quiet pid sg = try Unix.kill pid sg with Unix.Unix_error _ -> ()

let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

(* Bounded retry with exponential backoff on transient I/O errors —
   resource-pressure failures that clear on their own (shared shape
   with [Proc_cluster]). *)
let io_retry_budget = 5

let with_io_retry (stats : stats) (f : unit -> 'a) : 'a =
  let rec go attempt =
    try f () with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ENOBUFS), _, _)
      when attempt < io_retry_budget ->
        stats.io_retries <- stats.io_retries + 1;
        Unix.sleepf (1e-4 *. (2.0 ** float_of_int attempt));
        go (attempt + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Worker client                                                       *)
(* ------------------------------------------------------------------ *)

(* The dialing side: runs in a locally forked child or in a standalone
   [dmll_worker] process on another host.  Exit codes: 0 = orderly
   (Shutdown, master gone, redial budget spent after having served),
   2 = internal error, 3 = injected permanent crash, 4 = never managed
   to join. *)

let worker_main ?(redials = 2) ?(dial_attempts = 25) ?(dial_backoff_s = 0.02)
    ~(addr : string) ~(token : string) () : int =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sa = sockaddr_of_string addr in
  let redials_left = ref redials in
  let dial () =
    let rec go k =
      let fd =
        Unix.socket ~cloexec:true
          (Unix.domain_of_sockaddr sa)
          Unix.SOCK_STREAM 0
      in
      match Unix.connect fd sa with
      | () ->
          set_nodelay fd;
          Some fd
      | exception Unix.Unix_error _ ->
          close_quiet fd;
          if k + 1 >= dial_attempts then None
          else begin
            (* jittered-free bounded exponential backoff between dials *)
            Unix.sleepf
              (Float.min 0.5 (dial_backoff_s *. (2.0 ** float_of_int (Stdlib.min k 5))));
            go (k + 1)
          end
    in
    go 0
  in
  let eval_task ~(jitter : Prng.t) ~(inj : Fault.t option)
      ~(inputs : (string * V.t) list) (t : task) : from_worker =
    let retries = ref 0 in
    let rec attempt k =
      let retry_now =
        match inj with
        | None -> false
        | Some inj -> (
            let s = Fault.spec inj in
            match
              Fault.chunk_fate inj ~loop:t.loop_no ~chunk:t.chunk
                ~attempt:(t.base_attempt + k)
            with
            | Fault.Chunk_fail { transient = true } when k < s.M.max_retries ->
                true
            | Fault.Chunk_fail _ ->
                (* a real crash: die mid-task, lineage recovers the chunk *)
                Unix._exit 3
            | Fault.Chunk_slow { slowdown } ->
                Unix.sleepf (Float.min 2e-3 (1e-4 *. slowdown));
                false
            | Fault.Chunk_ok -> false)
      in
      if retry_now then begin
        incr retries;
        let backoff =
          match inj with
          | Some inj -> Fault.backoff_s (Fault.spec inj) ~attempt:k
          | None -> 1e-4
        in
        Unix.sleepf (Float.min 2e-3 (backoff *. (1.0 +. Prng.float jitter 0.5)));
        attempt (k + 1)
      end
      else
        match Dmll_backend.Closure.run ~inputs:(t.bindings @ inputs) t.prog with
        | v ->
            Done
              { task_id = t.task_id; chunk = t.chunk; value = v;
                retries = !retries }
        | exception e ->
            Refused
              { task_id = t.task_id; chunk = t.chunk;
                msg = Printexc.to_string e }
    in
    attempt 0
  in
  let rec session ~(reconnect : int option) : int =
    match dial () with
    | None -> if reconnect = None then 4 else 0
    | Some fd -> (
        let h = { version = protocol_version; token; reconnect } in
        match
          Transport.write_frame fd h;
          (Transport.read_frame ~deadline:(Unix.gettimeofday () +. 5.0) fd
            : welcome)
        with
        | exception _ ->
            close_quiet fd;
            if reconnect = None then 4 else 0
        | Rejected _ ->
            (* the master refused us: it has already replanned whatever
               we held, so this exit is orderly *)
            close_quiet fd;
            if reconnect = None then 4 else 0
        | Accepted { slot; wid; spec; inputs; heartbeat_s = _ } ->
            let jitter =
              Prng.create
                (match spec with
                | Some s -> Fault.worker_seed s ~worker:slot
                | None -> slot + 1)
            in
            let inj = Option.map Fault.create spec in
            serve fd ~wid ~jitter ~inj ~inputs)
  and serve fd ~wid ~jitter ~inj ~inputs : int =
    let lost () =
      close_quiet fd;
      if !redials_left > 0 then begin
        decr redials_left;
        Unix.sleepf dial_backoff_s;
        session ~reconnect:(Some wid)
      end
      else 0
    in
    let reply (m : from_worker) (k : unit -> int) : int =
      match Transport.write_frame fd m with
      | () -> k ()
      | exception Transport.Peer_gone -> lost ()
    in
    match (Transport.read_frame fd : to_worker) with
    | exception (Transport.Peer_gone | End_of_file) -> lost ()
    | exception Transport.Corrupt_frame d ->
        (* CRC/structure rejection: ask the master to retransmit *)
        reply
          (Bad_frame { detail = Dmll_analysis.Diag.to_string d })
          (fun () -> serve fd ~wid ~jitter ~inj ~inputs)
    | Shutdown ->
        close_quiet fd;
        0
    | Ping k -> reply (Pong k) (fun () -> serve fd ~wid ~jitter ~inj ~inputs)
    | Task t ->
        reply
          (eval_task ~jitter ~inj ~inputs t)
          (fun () -> serve fd ~wid ~jitter ~inj ~inputs)
  in
  session ~reconnect:None

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)
(* ------------------------------------------------------------------ *)

type worker = {
  slot : int;
  mutable wid : int;  (** current session id; 0 = never joined *)
  mutable pid : int option;  (** locally forked process, when any *)
  mutable conn : Transport.conn option;
  mutable retired : bool;  (** permanently out (budget or permanent kill) *)
  mutable grace_until : float option;  (** open reconnect window *)
  mutable retained : int list;  (** chunks held for reconnect replay *)
  mutable task : (int * float) option;  (** in-flight chunk, abs deadline *)
  mutable queue : int list;
  mutable last_task : task option;  (** for [Bad_frame] retransmission *)
  mutable resends_left : int;
  mutable fate_cursor : int;
      (** next link-fate frame index for this slot — survives reconnects
          so a resumed link continues its predecessor's fate stream *)
  mutable missed : int;  (** keepalive pings sent without any reply *)
  mutable last_rx : float;
  mutable stopped_until : float option;
}

let fresh_worker (slot : int) : worker =
  { slot; wid = 0; pid = None; conn = None; retired = false;
    grace_until = None; retained = []; task = None; queue = [];
    last_task = None; resends_left = resend_budget; fate_cursor = 0;
    missed = 0; last_rx = 0.0; stopped_until = None;
  }

type pool = {
  cfg : config;
  token : string;
  listen_fd : Unix.file_descr;
  addr : string;  (** the bound HOST:PORT workers dial *)
  inputs : (string * V.t) list;
  metrics : Metrics.t;
  stats : stats;
  members : worker array;  (** one entry per slot, fixed for the run *)
  mutable unreaped : int list;
  mutable respawns_left : int;
  mutable next_wid : int;
}

let find_member (pool : pool) (p : worker -> bool) : worker option =
  Array.find_opt p pool.members

let connected (pool : pool) : worker list =
  Array.to_list pool.members |> List.filter (fun w -> w.conn <> None)

let instant (pool : pool) (name : string) ~(slot : int) : unit =
  match pool.cfg.obs with
  | None -> ()
  | Some tr ->
      Span.emit_now tr ~tid:Span.runtime_tid ~cat:"net" ~name
        ~args:[ ("slot", Span.Int slot) ]
        ~started_us:(Span.now_us tr) ()

(* Tear down a link, flushing its byte counters into per-link and
   aggregate metrics first so no traffic is lost to the teardown. *)
let drop_conn (pool : pool) (w : worker) : unit =
  match w.conn with
  | None -> ()
  | Some c ->
      let link = Printf.sprintf "net_link_%d" w.slot in
      Metrics.add_bytes pool.metrics (link ^ "_bytes_out")
        (float_of_int (Transport.bytes_out c));
      Metrics.add_bytes pool.metrics (link ^ "_bytes_in")
        (float_of_int (Transport.bytes_in c));
      Metrics.add_bytes pool.metrics "net_bytes_out"
        (float_of_int (Transport.bytes_out c));
      Metrics.add_bytes pool.metrics "net_bytes_in"
        (float_of_int (Transport.bytes_in c));
      let inj = Transport.injected_faults c in
      if inj > 0 then
        Metrics.incr pool.metrics ~by:inj "net_injected_link_faults";
      Transport.close c;
      w.conn <- None

let reap_blocking (pool : pool) (pid : int) : unit =
  let rec go () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  go ();
  pool.unreaped <- List.filter (fun p -> p <> pid) pool.unreaped

let kill_pid (pool : pool) (w : worker) : unit =
  match w.pid with
  | None -> ()
  | Some pid ->
      signal_quiet pid Sys.sigcont;
      signal_quiet pid Sys.sigkill;
      reap_blocking pool pid;
      w.pid <- None

(* Fork a local worker that dials back into the listener.  The child
   drops the listener and every master-side link first, so its lifetime
   never holds a peer's EOF detection open. *)
let fork_local (pool : pool) (w : worker) : unit =
  let peer_fds =
    pool.listen_fd
    :: List.filter_map (fun m -> Option.map Transport.conn_fd m.conn)
         (Array.to_list pool.members)
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        try
          List.iter close_quiet peer_fds;
          worker_main ~redials:pool.cfg.worker_redials ~addr:pool.addr
            ~token:pool.token ()
        with _ -> 2
      in
      Unix._exit code
  | pid ->
      pool.stats.spawned <- pool.stats.spawned + 1;
      pool.stats.pids <- pid :: pool.stats.pids;
      pool.unreaped <- pid :: pool.unreaped;
      Metrics.incr pool.metrics "net_spawned";
      w.pid <- Some pid;
      (match pool.cfg.on_spawn with Some f -> f ~slot:w.slot ~pid | None -> ())

(* Budgeted replacement admission: in local mode fork a fresh process
   for the slot; in listen mode just reopen the slot for the next
   external dial.  Past the budget the slot is retired and the run is
   degraded. *)
let respawn_or_degrade (pool : pool) (w : worker) : unit =
  if pool.respawns_left > 0 then begin
    pool.respawns_left <- pool.respawns_left - 1;
    pool.stats.respawned <- pool.stats.respawned + 1;
    Metrics.incr pool.metrics "net_respawned";
    if pool.cfg.spawn_local then fork_local pool w
  end
  else begin
    w.retired <- true;
    pool.stats.degraded <- true
  end

(* Take the slot out permanently (modulo replacement admission),
   returning the chunks it still held so the caller can replan them.
   The session id is invalidated so a stale reconnect can never claim
   the replanned work back. *)
let retire_slot (pool : pool) (w : worker) ~(respawn : bool) : int list =
  drop_conn pool w;
  kill_pid pool w;
  let lost =
    (match w.task with Some (i, _) -> [ i ] | None -> [])
    @ w.queue @ w.retained
  in
  w.task <- None;
  w.queue <- [];
  w.retained <- [];
  w.last_task <- None;
  w.grace_until <- None;
  w.stopped_until <- None;
  w.missed <- 0;
  w.resends_left <- resend_budget;
  w.wid <- 0;
  if respawn then respawn_or_degrade pool w
  else begin
    w.retired <- true;
    pool.stats.degraded <- true
  end;
  lost

(* A lost link whose worker may come back: retain its chunks and open
   the grace window. *)
let enter_grace (pool : pool) (w : worker) ~(now : float) : unit =
  drop_conn pool w;
  let inflight = match w.task with Some (i, _) -> [ i ] | None -> [] in
  w.retained <- w.retained @ inflight @ w.queue;
  w.task <- None;
  w.queue <- [];
  w.missed <- 0;
  w.grace_until <- Some (now +. pool.cfg.reconnect_grace_s);
  pool.stats.disconnects <- pool.stats.disconnects + 1;
  Metrics.incr pool.metrics "net_disconnects"

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

let welcome_and_attach (pool : pool) (w : worker) (fd : Unix.file_descr) : bool
    =
  let spec = Option.map Fault.spec pool.cfg.faults in
  let welcome =
    Accepted
      { slot = w.slot; wid = w.wid; spec; inputs = pool.inputs;
        heartbeat_s = pool.cfg.heartbeat_s }
  in
  (* the handshake itself is injection-exempt: faults model the data
     plane, and an unjoinable cluster would just test the dial loop *)
  match Transport.write_frame fd welcome with
  | exception _ -> false
  | () ->
      let fate =
        match pool.cfg.faults with
        | None -> None
        | Some inj ->
            Some
              (fun ~frame:_ ->
                let k = w.fate_cursor in
                w.fate_cursor <- k + 1;
                Fault.link_fate inj ~slot:w.slot ~frame:k)
      in
      w.conn <- Some (Transport.attach ?fate fd);
      w.last_rx <- Unix.gettimeofday ();
      w.missed <- 0;
      w.resends_left <- resend_budget;
      true

(* Accept one pending dial and run its handshake synchronously.
   Returns the (re)joined worker so an in-loop caller can dispatch it.
   The accepted socket is guarded by [Fun.protect]: every rejection and
   every handshake error closes it. *)
let accept_one (pool : pool) : worker option =
  match Unix.accept ~cloexec:true pool.listen_fd with
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
    ->
      None
  | fd, _peer ->
      (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
      set_nodelay fd;
      let keep = ref false in
      let joined = ref None in
      Fun.protect
        ~finally:(fun () -> if not !keep then close_quiet fd)
        (fun () ->
          let now = Unix.gettimeofday () in
          let reject reason =
            pool.stats.rejections <- pool.stats.rejections + 1;
            Metrics.incr pool.metrics "net_rejections";
            try Transport.write_frame fd (Rejected { reason })
            with _ -> ()
          in
          (match
             (Transport.read_frame
                ~deadline:(now +. pool.cfg.accept_deadline_s) fd
               : hello)
           with
          | exception
              ( Transport.Peer_gone | Transport.Frame_timeout
              | Transport.Corrupt_frame _ ) ->
              reject "malformed hello"
          | h ->
              if h.version <> protocol_version then
                reject
                  (Printf.sprintf "protocol version mismatch: got %d, want %d"
                     h.version protocol_version)
              else if h.token <> pool.token then reject "bad session token"
              else (
                match h.reconnect with
                | Some wid -> (
                    match
                      find_member pool (fun w ->
                          w.wid = wid && wid <> 0 && not w.retired)
                    with
                    | None -> reject "unknown session"
                    | Some w -> (
                        match w.grace_until with
                        | Some t when now > t ->
                            (* refused; the in-loop grace sweep retires
                               the slot and replans its chunks *)
                            reject "grace window expired"
                        | _ ->
                            if w.conn <> None then begin
                              (* the old link is superseded: retain its
                                 in-flight work before resuming *)
                              drop_conn pool w;
                              (match w.task with
                              | Some (i, _) -> w.retained <- w.retained @ [ i ]
                              | None -> ());
                              w.retained <- w.retained @ w.queue;
                              w.queue <- [];
                              w.task <- None
                            end;
                            if welcome_and_attach pool w fd then begin
                              (* resume: replay the retained chunk plan *)
                              w.queue <- w.retained;
                              w.retained <- [];
                              w.grace_until <- None;
                              pool.stats.reconnects <-
                                pool.stats.reconnects + 1;
                              Metrics.incr pool.metrics "net_reconnects";
                              instant pool "net-reconnect" ~slot:w.slot;
                              joined := Some w
                            end))
                | None -> (
                    match
                      find_member pool (fun w ->
                          w.conn = None && w.grace_until = None
                          && not w.retired)
                    with
                    | None -> reject "no free slot"
                    | Some w ->
                        w.wid <- pool.next_wid;
                        pool.next_wid <- pool.next_wid + 1;
                        if welcome_and_attach pool w fd then begin
                          pool.stats.connects <- pool.stats.connects + 1;
                          Metrics.incr pool.metrics "net_connects";
                          instant pool "net-connect" ~slot:w.slot;
                          joined := Some w
                        end)));
          keep := !joined <> None;
          !joined)

let drain_accepts (pool : pool) : unit =
  let rec go () =
    match Unix.select [ pool.listen_fd ] [] [] 0.0 with
    | [], _, _ -> ()
    | _ ->
        ignore (accept_one pool);
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  go ()

(* Wait for the initial membership: every slot connected, or the join
   deadline.  Slots that never joined are retired up front (degraded
   short-handed start) so the first plan reflects reality. *)
let join_gate (pool : pool) : unit =
  let deadline = Unix.gettimeofday () +. pool.cfg.join_deadline_s in
  let waiting () =
    Array.exists (fun w -> w.conn = None && not w.retired) pool.members
  in
  let rec go () =
    if waiting () then begin
      let left = deadline -. Unix.gettimeofday () in
      if left > 0.0 then begin
        (match Unix.select [ pool.listen_fd ] [] [] (Float.min 0.05 left) with
        | [], _, _ -> ()
        | _ -> ignore (accept_one pool)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    end
  in
  go ();
  Array.iter
    (fun w ->
      if w.conn = None && not w.retired then
        ignore (retire_slot pool w ~respawn:false))
    pool.members

(* ------------------------------------------------------------------ *)
(* Loop-boundary liveness gate                                         *)
(* ------------------------------------------------------------------ *)

let heartbeat_kill (pool : pool) (w : worker) : unit =
  pool.stats.heartbeat_kills <- pool.stats.heartbeat_kills + 1;
  Metrics.incr pool.metrics "net_heartbeat_kills";
  ignore (retire_slot pool w ~respawn:true)

(* Before planning each distributed loop: resume injected stragglers,
   sweep expired grace windows (nothing is retained between loops, so
   no replan is needed here), let pending dials join, then ping every
   link and wait out up to three heartbeat rounds — the same gate shape
   as [Proc_cluster], but over TCP connections. *)
let boundary_gate (pool : pool) ~(loop_no : int) : unit =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun w ->
      (match w.stopped_until with
      | Some _ ->
          (match w.pid with
          | Some pid -> signal_quiet pid Sys.sigcont
          | None -> ());
          w.stopped_until <- None;
          w.last_rx <- now
      | None -> ());
      match w.grace_until with
      | Some t when now >= t ->
          pool.stats.grace_expired <- pool.stats.grace_expired + 1;
          Metrics.incr pool.metrics "net_grace_expired";
          ignore (retire_slot pool w ~respawn:true)
      | _ -> ())
    pool.members;
  drain_accepts pool;
  let suspects = ref (connected pool) in
  for round = 1 to 3 do
    if !suspects <> [] then begin
      let token = (loop_no * 101) + round in
      let pinged =
        List.filter
          (fun w ->
            match w.conn with
            | None -> false
            | Some c -> (
                match
                  with_io_retry pool.stats (fun () ->
                      Transport.send c (Ping token))
                with
                | () ->
                    pool.stats.pings <- pool.stats.pings + 1;
                    true
                | exception (Worker_gone | Unix.Unix_error _) ->
                    heartbeat_kill pool w;
                    false))
          !suspects
      in
      suspects := pinged;
      let deadline = Unix.gettimeofday () +. pool.cfg.heartbeat_s in
      let rec collect () =
        if !suspects <> [] then begin
          let left = deadline -. Unix.gettimeofday () in
          if left > 0.0 then begin
            let fds =
              List.filter_map
                (fun w -> Option.map Transport.conn_fd w.conn)
                !suspects
            in
            match Unix.select fds [] [] left with
            | [], _, _ -> ()
            | readable, _, _ ->
                List.iter
                  (fun fd ->
                    match
                      List.find_opt
                        (fun w ->
                          match w.conn with
                          | Some c -> Transport.conn_fd c = fd
                          | None -> false)
                        !suspects
                    with
                    | None -> ()
                    | Some w -> (
                        let c = Option.get w.conn in
                        match (Transport.recv ~deadline c : from_worker) with
                        | Pong _ ->
                            pool.stats.pongs <- pool.stats.pongs + 1;
                            w.last_rx <- Unix.gettimeofday ();
                            w.missed <- 0;
                            suspects :=
                              List.filter (fun x -> x.slot <> w.slot) !suspects
                        | _ -> ()
                        | exception
                            ( Worker_gone | Frame_timeout
                            | Transport.Corrupt_frame _ ) ->
                            heartbeat_kill pool w;
                            suspects :=
                              List.filter (fun x -> x.slot <> w.slot) !suspects))
                  readable;
                collect ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> collect ()
          end
        end
      in
      collect ()
    end
  done;
  List.iter (fun w -> if w.conn <> None then heartbeat_kill pool w) !suspects

(* ------------------------------------------------------------------ *)
(* Supervised loop execution                                           *)
(* ------------------------------------------------------------------ *)

exception Master_recompute of int
(** Internal: route a chunk to inline master evaluation. *)

let run_loop (pool : pool) (env : Evalenv.env) ~(loop_no : int) (l : Exp.loop)
    : V.t =
  let cfg = pool.cfg in
  let inputs = pool.inputs in
  let stats = pool.stats in
  let n = Evalenv.eval_int ~inputs env l.Exp.size in
  let master_eval () = Evalenv.eval ~inputs env (Exp.Loop l) in
  boundary_gate pool ~loop_no;
  if n <= 1 || (connected pool = [] && not (Array.exists (fun w -> w.grace_until <> None) pool.members))
  then master_eval ()
  else begin
    (* The plan is a pure function of (n, configured workers): chunk
       boundaries — and hence merge order and float reassociation — are
       identical whether the membership is healthy, bleeding, or
       degraded. *)
    let units =
      Schedule.plan ~nodes:cfg.workers ~sockets:1 ~cores:1 n
      |> List.sort (fun (a : Schedule.unit_of_work) b ->
             compare a.range.Chunk.lo b.range.Chunk.lo)
      |> Array.of_list
    in
    let nchunks = Array.length units in
    if nchunks <= 1 then master_eval ()
    else begin
      let boundaries =
        Array.to_list units
        |> List.filter_map (fun (u : Schedule.unit_of_work) ->
               if u.range.Chunk.lo > 0 then Some u.range.Chunk.lo else None)
      in
      let idx_of_lo = Hashtbl.create nchunks in
      Array.iteri
        (fun i (u : Schedule.unit_of_work) ->
          Hashtbl.replace idx_of_lo u.range.Chunk.lo i)
        units;
      let progs =
        Array.map
          (fun (u : Schedule.unit_of_work) ->
            Evalenv.close_over env (Exec_domains.chunk_loop l u.range))
          units
      in
      let still_open =
        Array.exists
          (fun (p, _) -> Sym.Set.choose_opt (Exp.free_vars p) <> None)
          progs
      in
      if still_open then master_eval ()
      else begin
        let results : V.t option array = Array.make nchunks None in
        let remaining = ref nchunks in
        let dispatches = Array.make nchunks 0 in
        let fate_drawn = Array.make nchunks false in
        let owner = Array.make nchunks (-1) in
        let master_backlog = ref [] in
        let task_counter = ref 0 in
        let record_result i v =
          if results.(i) = None then begin
            results.(i) <- Some v;
            decr remaining
          end
        in
        let eval_inline i =
          if results.(i) = None then begin
            let prog, bindings = progs.(i) in
            Fault.check_replan "net-master" prog;
            stats.master_chunks <- stats.master_chunks + 1;
            Metrics.incr pool.metrics "net_master_chunks";
            record_result i
              (Dmll_backend.Closure.run ~inputs:(bindings @ inputs) prog)
          end
        in
        let enqueue (w : worker) i =
          owner.(i) <- w.slot;
          w.queue <- w.queue @ [ i ]
        in
        let live () = connected pool in
        (* Reassign [lost] chunks after slot [dead_slot]'s demise, via
           Schedule.replan over the not-yet-done units with their
           current owners — the original cut points are the boundaries,
           so every replacement range is exactly an original chunk. *)
        let replan_lost ~(dead_slot : int) (lost : int list) : unit =
          let lost = List.filter (fun i -> results.(i) = None) lost in
          if lost <> [] then
            Span.with_span ?tracer:cfg.obs ~tid:Span.runtime_tid ~cat:"net"
              ~args:
                [ ("slot", Span.Int dead_slot);
                  ("chunks", Span.Int (List.length lost)) ]
              "net-replan"
              (fun () ->
                stats.replans <- stats.replans + 1;
                Metrics.incr pool.metrics "net_replans";
                (match cfg.faults with
                | Some f -> Fault.record_replan f
                | None -> ());
                let live = live () in
                let fallback () =
                  match live with
                  | [] ->
                      List.iter
                        (fun i -> master_backlog := !master_backlog @ [ i ])
                        lost
                  | live ->
                      let nl = List.length live in
                      List.iteri
                        (fun j i -> enqueue (List.nth live (j mod nl)) i)
                        lost
                in
                (match live with
                | [] -> fallback ()
                | _ -> (
                    let units_now =
                      List.filter_map
                        (fun i ->
                          if results.(i) = None && owner.(i) >= 0 then
                            Some { (units.(i)) with Schedule.node = owner.(i) }
                          else None)
                        (List.init nchunks Fun.id)
                    in
                    match
                      Schedule.replan ~boundaries ~dead:[ dead_slot ] units_now
                    with
                    | replanned ->
                        List.iter
                          (fun (u : Schedule.unit_of_work) ->
                            match
                              Hashtbl.find_opt idx_of_lo u.range.Chunk.lo
                            with
                            | Some i when List.mem i lost -> (
                                match
                                  List.find_opt
                                    (fun w -> w.slot = u.node)
                                    live
                                with
                                | Some w -> enqueue w i
                                | None ->
                                    master_backlog := !master_backlog @ [ i ])
                            | _ -> ())
                          replanned
                    | exception Invalid_argument _ -> fallback ()));
                List.iter
                  (fun i ->
                    let prog, _ = progs.(i) in
                    Fault.check_replan "net-replan" prog;
                    stats.recovered_chunks <- stats.recovered_chunks + 1;
                    Metrics.incr pool.metrics "net_recovered_chunks";
                    match cfg.faults with
                    | Some f -> Fault.record_recovered f
                    | None -> ())
                  lost)
        in
        let rec dispatch (w : worker) : unit =
          match w.conn with
          | None -> ()
          | Some c -> (
              match w.queue with
              | i :: rest when w.task = None && w.stopped_until = None ->
                  if results.(i) <> None then begin
                    w.queue <- rest;
                    dispatch w
                  end
                  else begin
                    w.queue <- rest;
                    let prog, bindings = progs.(i) in
                    let base_attempt = dispatches.(i) * 64 in
                    dispatches.(i) <- dispatches.(i) + 1;
                    incr task_counter;
                    Metrics.incr pool.metrics "net_tasks";
                    let t =
                      { task_id = !task_counter; loop_no; chunk = i;
                        base_attempt; prog; bindings }
                    in
                    match
                      with_io_retry stats (fun () -> Transport.send c (Task t))
                    with
                    | () -> (
                        w.task <-
                          Some (i, Unix.gettimeofday () +. cfg.task_deadline_s);
                        w.last_task <- Some t;
                        w.resends_left <- resend_budget;
                        (match cfg.on_task_sent with
                        | Some f -> f ~slot:w.slot ~chunk:i
                        | None -> ());
                        (* master-side murder of local workers: drawn
                           once per (loop, chunk) on first dispatch *)
                        match cfg.faults with
                        | Some f when (not fate_drawn.(i)) && w.pid <> None
                          -> (
                            fate_drawn.(i) <- true;
                            match Fault.proc_fate f ~loop:loop_no ~chunk:i with
                            | Fault.Proc_ok -> ()
                            | Fault.Proc_kill { permanent; close_pipe } ->
                                stats.killed <- stats.killed + 1;
                                Metrics.incr pool.metrics "net_kills";
                                if close_pipe then begin
                                  (* cut the link only: the process
                                     survives and redials — the
                                     reconnect-and-resume path *)
                                  stats.link_cuts <- stats.link_cuts + 1;
                                  Metrics.incr pool.metrics "net_link_cuts";
                                  lose ~grace:true w
                                end
                                else begin
                                  (match w.pid with
                                  | Some pid -> signal_quiet pid Sys.sigkill
                                  | None -> ());
                                  lose ~grace:false ~respawn:(not permanent) w
                                end
                            | Fault.Proc_stop { stop_s } ->
                                stats.stopped <- stats.stopped + 1;
                                Metrics.incr pool.metrics "net_stops";
                                (match w.pid with
                                | Some pid -> signal_quiet pid Sys.sigstop
                                | None -> ());
                                w.stopped_until <-
                                  Some (Unix.gettimeofday () +. stop_s))
                        | _ -> ())
                    | exception Worker_gone -> lose ~grace:true ~requeue:[ i ] w
                  end
              | _ -> ())
        and lose ?(requeue = []) ?(respawn = true) ~(grace : bool)
            (w : worker) : unit =
          if grace && cfg.reconnect_grace_s > 0.0 then begin
            enter_grace pool w ~now:(Unix.gettimeofday ());
            w.retained <- requeue @ w.retained
          end
          else begin
            let lost = requeue @ retire_slot pool w ~respawn in
            replan_lost ~dead_slot:w.slot lost;
            List.iter dispatch (live ())
          end
        in
        let sweep_graces now =
          Array.iter
            (fun w ->
              match w.grace_until with
              | Some t when now >= t ->
                  stats.grace_expired <- stats.grace_expired + 1;
                  Metrics.incr pool.metrics "net_grace_expired";
                  let lost = retire_slot pool w ~respawn:true in
                  replan_lost ~dead_slot:w.slot lost;
                  List.iter dispatch (live ())
              | _ -> ())
            pool.members
        in
        let handle_read (w : worker) : unit =
          match w.conn with
          | None -> ()
          | Some c -> (
              let now = Unix.gettimeofday () in
              let deadline =
                (* a partitioned link discards inbound frames; poll it
                   briefly instead of stalling the event loop *)
                if Transport.partitioned c then now +. 0.005
                else now +. cfg.task_deadline_s
              in
              match (Transport.recv ~deadline c : from_worker) with
              | Done { chunk; value; retries; _ } ->
                  w.last_rx <- Unix.gettimeofday ();
                  w.missed <- 0;
                  stats.worker_retries <- stats.worker_retries + retries;
                  if retries > 0 then
                    Metrics.incr pool.metrics ~by:retries "net_worker_retries";
                  record_result chunk value;
                  w.task <- None;
                  w.last_task <- None;
                  w.resends_left <- resend_budget;
                  dispatch w
              | Refused { chunk; _ } ->
                  (* deterministic evaluation error: recompute inline so
                     the real exception surfaces from the master *)
                  w.last_rx <- Unix.gettimeofday ();
                  w.missed <- 0;
                  Metrics.incr pool.metrics "net_refused";
                  w.task <- None;
                  w.last_task <- None;
                  master_backlog := !master_backlog @ [ chunk ];
                  dispatch w
              | Pong _ ->
                  stats.pongs <- stats.pongs + 1;
                  w.last_rx <- Unix.gettimeofday ();
                  w.missed <- 0
              | Bad_frame _ -> (
                  w.last_rx <- Unix.gettimeofday ();
                  w.missed <- 0;
                  match (w.task, w.last_task) with
                  | Some (i, _), Some t when t.chunk = i ->
                      if w.resends_left > 0 then begin
                        w.resends_left <- w.resends_left - 1;
                        stats.frame_resends <- stats.frame_resends + 1;
                        Metrics.incr pool.metrics "net_frame_resends";
                        instant pool "net-resend" ~slot:w.slot;
                        let attempt = resend_budget - w.resends_left in
                        let backoff =
                          match cfg.faults with
                          | Some f ->
                              Fault.backoff_s (Fault.spec f) ~attempt
                          | None -> 1e-4 *. (2.0 ** float_of_int attempt)
                        in
                        Unix.sleepf (Float.min 2e-3 backoff);
                        match
                          with_io_retry stats (fun () ->
                              Transport.send c (Task t))
                        with
                        | () ->
                            w.task <-
                              Some
                                ( i,
                                  Unix.gettimeofday () +. cfg.task_deadline_s
                                )
                        | exception Worker_gone -> lose ~grace:true w
                      end
                      else
                        (* the link keeps mangling frames: hostile *)
                        lose ~grace:false w
                  | _ -> ())
              | exception Frame_timeout when Transport.partitioned c ->
                  (* blackholed: the deadline/keepalive sweeps recover *)
                  ()
              | exception Worker_gone -> lose ~grace:true w
              | exception Transport.Corrupt_frame _ ->
                  Metrics.incr pool.metrics "net_corrupt_frames";
                  lose ~grace:false w
              | exception Frame_timeout ->
                  stats.deadline_kills <- stats.deadline_kills + 1;
                  Metrics.incr pool.metrics "net_deadline_kills";
                  lose ~grace:false w)
        in
        let keepalive now =
          Array.iter
            (fun w ->
              match w.conn with
              | Some c
                when w.task = None && w.stopped_until = None
                     && now -. w.last_rx
                        >= cfg.heartbeat_s *. float_of_int (w.missed + 1) ->
                  if w.missed >= 3 then begin
                    stats.heartbeat_kills <- stats.heartbeat_kills + 1;
                    Metrics.incr pool.metrics "net_heartbeat_kills";
                    lose ~grace:false w
                  end
                  else (
                    match
                      with_io_retry stats (fun () ->
                          Transport.send c (Ping ((loop_no * 1000) + w.missed)))
                    with
                    | () ->
                        stats.pings <- stats.pings + 1;
                        w.missed <- w.missed + 1
                    | exception Worker_gone -> lose ~grace:true w)
              | _ -> ())
            pool.members
        in
        (* initial assignment: the planned owner when that slot is
           connected, else replanned onto survivors up front *)
        let live0 = live () in
        let live_slots = List.map (fun w -> w.slot) live0 in
        let dead0 =
          List.filter
            (fun s -> not (List.mem s live_slots))
            (List.init cfg.workers Fun.id)
        in
        let assigned =
          if dead0 = [] then Array.to_list units
          else
            match
              Schedule.replan ~boundaries ~dead:dead0 (Array.to_list units)
            with
            | us -> us
            | exception Invalid_argument _ ->
                if live_slots = [] then Array.to_list units
                else
                  List.mapi
                    (fun j (u : Schedule.unit_of_work) ->
                      { u with
                        Schedule.node =
                          List.nth live_slots (j mod List.length live_slots)
                      })
                    (Array.to_list units)
        in
        List.iter
          (fun (u : Schedule.unit_of_work) ->
            match Hashtbl.find_opt idx_of_lo u.range.Chunk.lo with
            | None -> ()
            | Some i -> (
                match List.find_opt (fun w -> w.slot = u.node) live0 with
                | Some w -> enqueue w i
                | None -> master_backlog := !master_backlog @ [ i ]))
          assigned;
        List.iter dispatch (live ());
        (* the supervision event loop *)
        while !remaining > 0 do
          (match !master_backlog with
          | i :: rest ->
              master_backlog := rest;
              eval_inline i
          | [] -> ());
          if !remaining > 0 then begin
            let now = Unix.gettimeofday () in
            (* resume injected stragglers whose stop expired *)
            Array.iter
              (fun w ->
                match w.stopped_until with
                | Some t when now >= t ->
                    (match w.pid with
                    | Some pid -> signal_quiet pid Sys.sigcont
                    | None -> ());
                    w.stopped_until <- None;
                    w.last_rx <- now;
                    dispatch w
                | _ -> ())
              pool.members;
            sweep_graces now;
            (* deadline detection: a dispatched chunk unanswered past
               its deadline marks the link hung — retire and replan *)
            Array.iter
              (fun w ->
                match w.task with
                | Some (_, dl) when now > dl ->
                    stats.deadline_kills <- stats.deadline_kills + 1;
                    Metrics.incr pool.metrics "net_deadline_kills";
                    lose ~grace:false w
                | _ -> ())
              pool.members;
            keepalive now;
            (* safety net: any undone chunk not covered by the backlog,
               a live queue/task, or a grace window's retained plan goes
               to the master *)
            let covered i =
              List.mem i !master_backlog
              || Array.exists
                   (fun w ->
                     List.mem i w.queue || List.mem i w.retained
                     || match w.task with Some (j, _) -> j = i | None -> false)
                   pool.members
            in
            Array.iteri
              (fun i r ->
                if r = None && not (covered i) then
                  master_backlog := !master_backlog @ [ i ])
              results;
            if !remaining > 0 && !master_backlog = [] then begin
              let conn_fds =
                List.filter_map
                  (fun w -> Option.map Transport.conn_fd w.conn)
                  (Array.to_list pool.members)
              in
              let fds = pool.listen_fd :: conn_fds in
              let next_timer =
                let acc = ref (now +. 0.05) in
                Array.iter
                  (fun w ->
                    (match w.task with
                    | Some (_, dl) -> acc := Float.min !acc dl
                    | None -> ());
                    (match w.stopped_until with
                    | Some t -> acc := Float.min !acc t
                    | None -> ());
                    (match w.grace_until with
                    | Some t -> acc := Float.min !acc t
                    | None -> ());
                    if w.conn <> None && w.task = None
                       && w.stopped_until = None
                    then
                      acc :=
                        Float.min !acc
                          (w.last_rx
                          +. (cfg.heartbeat_s *. float_of_int (w.missed + 1))))
                  pool.members;
                !acc
              in
              let timeout = Float.max 1e-3 (next_timer -. now) in
              match Unix.select fds [] [] timeout with
              | readable, _, _ ->
                  List.iter
                    (fun fd ->
                      if fd = pool.listen_fd then (
                        match accept_one pool with
                        | Some w -> dispatch w
                        | None -> ())
                      else
                        match
                          find_member pool (fun w ->
                              match w.conn with
                              | Some c -> Transport.conn_fd c = fd
                              | None -> false)
                        with
                        | Some w -> handle_read w
                        | None -> ())
                    readable
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            end
          end
        done;
        (* chunk ids are loop-local: clear every per-loop holding *)
        Array.iter
          (fun w ->
            w.task <- None;
            w.queue <- [];
            w.retained <- [];
            w.last_task <- None)
          pool.members;
        let parts =
          Array.to_list results
          |> List.mapi (fun i v ->
                 match v with
                 | Some v -> (i, v)
                 | None -> raise (Master_recompute i))
        in
        Exec_domains.merge_parts ~env ~inputs l ~nchunks parts
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* Guaranteed teardown: every link is closed (metrics flushed), the
   listener is closed, and every local pid ever forked is continued,
   killed (idempotent), and waitpid'ed.  Runs under [Fun.protect], so
   it covers the master-error path too. *)
let shutdown (pool : pool) : unit =
  Array.iter
    (fun w ->
      match w.conn with
      | Some c ->
          (* orderly goodbye, injection-exempt like the handshake *)
          (try Transport.write_frame (Transport.conn_fd c) Shutdown
           with _ -> ());
          drop_conn pool w
      | None -> ())
    pool.members;
  close_quiet pool.listen_fd;
  List.iter
    (fun pid ->
      signal_quiet pid Sys.sigcont;
      signal_quiet pid Sys.sigkill;
      reap_blocking pool pid)
    pool.unreaped

let make_listener (cfg : config) : Unix.file_descr * string =
  let sa =
    match cfg.listen with
    | None -> Unix.ADDR_INET (Unix.inet_addr_loopback, 0)
    | Some s -> sockaddr_of_string s
  in
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0
  in
  match
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd sa;
    Unix.listen fd 64
  with
  | () -> (fd, string_of_sockaddr (Unix.getsockname fd))
  | exception e ->
      close_quiet fd;
      raise e

let gen_token () =
  Printf.sprintf "dmll-%d-%06x" (Unix.getpid ())
    (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF)

let run ?(config = default_config) ?(inputs = []) (program : Exp.exp) : result
    =
  let cfg = { config with workers = Stdlib.max 1 config.workers } in
  let metrics =
    match cfg.metrics with Some m -> m | None -> Metrics.create ()
  in
  let stats = fresh_stats () in
  let token = match cfg.token with Some t -> t | None -> gen_token () in
  let listen_fd, addr = make_listener cfg in
  let pool =
    { cfg; token; listen_fd; addr; inputs; metrics; stats;
      members = Array.init cfg.workers fresh_worker;
      unreaped = [];
      respawns_left = cfg.max_respawns;
      next_wid = 1;
    }
  in
  let saved_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let t0 = Unix.gettimeofday () in
  let breakdown = ref [] in
  Fun.protect
    ~finally:(fun () ->
      shutdown pool;
      Sys.set_signal Sys.sigpipe saved_sigpipe)
    (fun () ->
      (match cfg.on_listen with Some f -> f ~addr | None -> ());
      if cfg.spawn_local then Array.iter (fork_local pool) pool.members;
      join_gate pool;
      let loop_no = ref 0 in
      let value =
        Spine.exec ~inputs
          ~on_loop:(fun env sym l ->
            incr loop_no;
            let name =
              match sym with Some s -> Sym.to_string s | None -> "result"
            in
            let v, dt =
              Dmll_util.Timing.time (fun () ->
                  Span.with_span ?tracer:cfg.obs ~tid:Span.runtime_tid
                    ~cat:"runtime"
                    ~args:[ ("loop", Span.Int !loop_no) ]
                    name
                    (fun () -> run_loop pool env ~loop_no:!loop_no l))
            in
            breakdown := (name, dt) :: !breakdown;
            Metrics.incr metrics "net_loops";
            v)
          program
      in
      { value;
        seconds = Unix.gettimeofday () -. t0;
        breakdown = List.rev !breakdown;
        stats;
        metrics;
      })

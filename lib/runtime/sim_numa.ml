(** NUMA machine simulator (paper §6.1, Figure 7).

    Executes the program exactly (closure backend) while charging each
    outer multiloop simulated time on a modeled multi-socket machine under
    one of three memory policies:

    - [Numa_aware] — DMLL: large partitioned arrays are spread across
      every socket's memory, so streaming bandwidth scales with the number
      of sockets in use;
    - [Pin_only] — threads are pinned and allocate thread-locally, but the
      input dataset lives on the socket that loaded it: streaming the
      dataset is capped at one socket's memory bandwidth (plus the
      interconnect);
    - [Delite] — no pinning, no thread-local heaps (the stock runtime the
      paper compares against): bandwidth stops improving past the second
      socket and the cache-coherence traffic of unpinned threads adds a
      fixed tax.

    The model is a roofline: per loop, time = max(compute, memory) scaled
    by chunking imbalance, plus a per-loop fork/join overhead.  Apps with
    high arithmetic intensity scale on cores in every mode; streaming apps
    (TPC-H Q1, gene barcoding) separate the three policies — exactly the
    behaviour Figure 7 reports. *)

open Dmll_ir
module V = Dmll_interp.Value
module Stencil = Dmll_analysis.Stencil
module Cost = Dmll_analysis.Cost
module Partition = Dmll_analysis.Partition

type mode = Delite | Pin_only | Numa_aware

let mode_to_string = function
  | Delite -> "Delite"
  | Pin_only -> "DMLL Pin-only"
  | Numa_aware -> "DMLL"

(* Per-loop fork/join + scheduling overhead, seconds. *)
let fork_join_overhead ~threads = 4e-6 +. (2e-7 *. float_of_int threads)

let loop_time ~(machine : Dmll_machine.Machine.numa) ~(threads : int) ~(mode : mode)
    ~(layout_of : Stencil.target -> Exp.layout) ~(inputs_ty : (string * Types.ty) list)
    ~(eval_size : Exp.exp -> int option) (l : Exp.loop) ~(n : int) : float =
  let gather_bound =
    (* data-dependent (Unknown-stencil) reads of partitioned data: random
       access wastes most of each cache line and crosses sockets *)
    List.exists
      (fun (t, s) -> layout_of t = Exp.Partitioned && s = Stencil.Unknown)
      (Stencil.of_loop l)
  in
  if n = 0 then fork_join_overhead ~threads
  else begin
    let sock = machine.Dmll_machine.Machine.socket in
    let cores_per_socket = sock.Dmll_machine.Machine.cores in
    let t = Stdlib.min threads n in
    (* sockets actually in use: pinned threads pack cores, and a loop with
       fewer iterations than threads leaves the extra threads idle *)
    let s_used =
      Stdlib.min machine.Dmll_machine.Machine.sockets
        ((t + cores_per_socket - 1) / cores_per_socket)
    in
    let per_iter = Cost.per_iter ~eval_size ~default_size:16 l in
    let fn = float_of_int n in
    let flops_total = fn *. per_iter.Cost.flops in
    let total_bytes = fn *. (per_iter.Cost.bytes_read +. per_iter.Cost.bytes_written) in
    (* bytes streamed from partitioned collections *)
    let part_bytes =
      fn
      *. Sim_common.selected_bytes_per_iter ~eval_size ~inputs_ty
           ~select:(fun tgt -> layout_of tgt = Exp.Partitioned)
           l
    in
    let part_bytes = Stdlib.min part_bytes total_bytes in
    let other_bytes = Stdlib.max 0.0 (total_bytes -. part_bytes) in
    let local_bw = sock.Dmll_machine.Machine.local_bw_gbs *. 1e9 in
    let remote_bw = sock.Dmll_machine.Machine.remote_bw_gbs *. 1e9 in
    let sf = float_of_int s_used in
    (* effective bandwidth for the big partitioned dataset *)
    let gather_div = if gather_bound then 3.0 else 1.0 in
    let part_bw =
      match mode with
      | Numa_aware ->
          if machine.Dmll_machine.Machine.malloc_numa_aware then sf *. local_bw
          else local_bw *. 1.3 (* JVM cannot place memory; interleave at best *)
      | Pin_only ->
          (* dataset on one socket: its controller plus interconnect pull *)
          if s_used <= 1 then local_bw
          else local_bw +. Stdlib.min (local_bw *. 0.3) ((sf -. 1.0) *. remote_bw *. 0.5)
      | Delite ->
          (* unpinned: allocations land on the loading socket; remote
             accesses fight over the interconnect *)
          if s_used <= 1 then local_bw else local_bw *. 1.2
    in
    (* effective bandwidth for thread-local/broadcast data *)
    let other_bw =
      match mode with
      | Numa_aware | Pin_only -> sf *. local_bw
      | Delite -> if s_used <= 1 then local_bw else local_bw *. 1.6
    in
    (* unpinned threads pay a coherence/migration tax on compute *)
    let compute_tax =
      match mode with Delite when s_used > 1 -> 1.25 | _ -> 1.0 in
    let compute_s =
      compute_tax *. flops_total
      /. (float_of_int t *. sock.Dmll_machine.Machine.core_gflops *. 1e9)
    in
    let mem_s = (part_bytes /. (part_bw /. gather_div)) +. (other_bytes /. other_bw) in
    let imbalance = Chunk.imbalance ~k:t n in
    (Stdlib.max compute_s mem_s *. imbalance) +. fork_join_overhead ~threads:t
  end

type config = {
  machine : Dmll_machine.Machine.numa;
  threads : int;
  mode : mode;
}

(** Execute [program] exactly and return its value plus the simulated time
    on [config].  Layouts default to the partitioning analysis of the
    program itself. *)
let run ?(config =
          { machine = Dmll_machine.Machine.stanford_numa; threads = 1; mode = Numa_aware })
    ?layouts ~(inputs : (string * V.t) list) (program : Exp.exp) : Sim_common.result =
  let layouts =
    match layouts with
    | Some ls -> ls
    | None -> (Partition.analyze ~transforms:[] ~reoptimize:(fun e -> e) program).Partition.layouts
  in
  let layout_of t = Partition.layout_of t layouts in
  let inputs_ty = Sim_common.program_input_tys program in
  let time = ref 0.0 in
  let breakdown = ref [] in
  let value =
    Spine.exec ~inputs
      ~on_loop:(fun env sym l ->
        let eval_size = Sim_common.live_size_evaluator ~inputs env in
        let n = match eval_size l.Exp.size with Some n -> n | None -> 0 in
        let dt =
          loop_time ~machine:config.machine ~threads:config.threads ~mode:config.mode
            ~layout_of ~inputs_ty ~eval_size l ~n
        in
        time := !time +. dt;
        let name =
          match sym with Some s -> Sym.to_string s | None -> "result"
        in
        breakdown := (name, dt) :: !breakdown;
        Evalenv.eval ~inputs env (Exp.Loop l))
      program
  in
  { Sim_common.value;
    seconds = !time;
    breakdown = List.rev !breakdown;
    traffic = [];
    metrics = Dmll_obs.Metrics.create ();
  }

(** Simulated time only (value discarded). *)
let time ?config ?layouts ~inputs program =
  (run ?config ?layouts ~inputs program).Sim_common.seconds

(** Checkpoint store for iterative programs (DESIGN.md §11).

    Lineage recovery (DESIGN.md §9) recomputes lost chunks from scratch —
    fine for a one-shot multiloop, ruinous for the iterative apps where a
    late-iteration crash replays the whole job.  A checkpoint bounds that
    work: at a configurable cadence the runtime snapshots every live spine
    binding (the distributed-array partitions) together with the
    iterative-driver state (iteration counter, accumulators), each chunk
    guarded by a content checksum verified on restore.  On a crash the
    executor prices restore-from-checkpoint against lineage replay
    ({!write_seconds} / {!restore_seconds} reuse {!Dmll_analysis.Comm}'s
    volume terms) and takes the cheaper path, logging the decision.

    Snapshots are deep copies: later loop iterations mutate arrays in
    place, and a checkpoint that aliases live data is just a dangling
    pointer with extra steps.  Checksums are FNV-1a over the marshaled
    chunk contents, so a corrupted (or accidentally shared) snapshot is
    rejected at restore time instead of silently resurrecting bad data. *)

module V = Dmll_interp.Value
module Comm = Dmll_analysis.Comm
module Stencil = Dmll_analysis.Stencil
module M = Dmll_machine.Machine

(* ------------------------------------------------------------------ *)
(* Checksums and deep copies                                           *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, 64-bit: tiny, dependency-free, and plenty to catch torn or
   bit-flipped snapshot chunks (this is an integrity check, not crypto). *)
let fnv1a (s : string) : int64 =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* Values are pure data (no closures), so Marshal gives both a canonical
   byte image for checksumming and a structural deep copy. *)
let value_blob (v : V.t) : string = Marshal.to_string v []
let copy_value (v : V.t) : V.t = Marshal.from_string (value_blob v) 0
let value_bytes (v : V.t) : int = String.length (value_blob v)

type chunk_sum = { range : Chunk.range; sum : int64 }

(* Array payloads are checksummed per partition-sized chunk — the unit
   that moves on restore — so a single torn chunk is pinpointed without
   rehashing the whole snapshot.  Scalar values are one chunk. *)
let chunk_sums ~(chunks : int) (v : V.t) : chunk_sum list =
  let of_sub sub n =
    Chunk.split ~k:(Stdlib.max 1 chunks) n
    |> List.map (fun (r : Chunk.range) ->
           { range = r; sum = fnv1a (sub r.Chunk.lo (Chunk.size r)) })
  in
  match v with
  | V.Varr (V.Fa a) ->
      of_sub (fun lo len -> Marshal.to_string (Array.sub a lo len) []) (Array.length a)
  | V.Varr (V.Ia a) ->
      of_sub (fun lo len -> Marshal.to_string (Array.sub a lo len) []) (Array.length a)
  | V.Varr (V.Ga a) ->
      of_sub (fun lo len -> Marshal.to_string (Array.sub a lo len) []) (Array.length a)
  | v -> [ { range = { Chunk.lo = 0; hi = 1 }; sum = fnv1a (value_blob v) } ]

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type entry = { value : V.t; bytes : int; sums : chunk_sum list }

type snapshot = {
  at_loop : int;  (** spine loop number the snapshot was taken after *)
  bindings : (string * entry) list;
      (** live spine bindings: distributed partitions and scalars alike *)
  driver : (string * V.t) list;
      (** iterative-driver state — iteration counter, accumulators —
          that lives outside the spine environment *)
}

let snapshot_bytes (s : snapshot) : float =
  List.fold_left (fun acc (_, e) -> acc +. float_of_int e.bytes) 0.0 s.bindings

(** Re-hash every chunk of every entry and compare against the sums taken
    at record time.  [Error] names the first mismatching binding/range. *)
let verify (s : snapshot) : (unit, string) result =
  let check (name, e) =
    let fresh = chunk_sums ~chunks:(List.length e.sums) e.value in
    if List.length fresh <> List.length e.sums then
      Some (Printf.sprintf "%s: chunk count changed" name)
    else
      List.fold_left2
        (fun acc (a : chunk_sum) (b : chunk_sum) ->
          match acc with
          | Some _ -> acc
          | None ->
              if a.range = b.range && Int64.equal a.sum b.sum then None
              else
                Some
                  (Printf.sprintf "%s: checksum mismatch in [%d,%d)" name
                     b.range.Chunk.lo b.range.Chunk.hi))
        None fresh e.sums
  in
  match List.find_map check s.bindings with
  | None -> Ok ()
  | Some msg -> Error ("checkpoint corrupt: " ^ msg)

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type choice = Restore | Replay

let choice_to_string = function Restore -> "restore" | Replay -> "replay"

type decision = {
  decided_at_loop : int;
  chosen : choice;
  restore_cost : float;  (** predicted seconds for checkpoint restore *)
  replay_cost : float;  (** predicted seconds for lineage replay *)
}

type t = {
  cadence : int;  (** snapshot every [cadence] loops; [<= 0] disables *)
  mutable latest : snapshot option;
  mutable taken : int;
  mutable written_bytes : float;
  mutable decisions : decision list;  (** newest first *)
}

let create ~(cadence : int) : t =
  { cadence; latest = None; taken = 0; written_bytes = 0.0; decisions = [] }

let enabled (t : t) = t.cadence > 0
let due (t : t) ~(loop : int) = enabled t && loop mod t.cadence = 0
let latest (t : t) = t.latest
let taken (t : t) = t.taken
let written_bytes (t : t) = t.written_bytes
let decisions (t : t) = List.rev t.decisions

(** Snapshot the given bindings (deep-copied, chunk-checksummed) as the
    new latest checkpoint.  [chunks] should be the live node count so
    checksum granularity matches the unit of restore traffic. *)
let record (t : t) ~(at_loop : int) ~(chunks : int)
    ~(bindings : (string * V.t) list) ~(driver : (string * V.t) list) : snapshot
    =
  let bindings =
    List.map
      (fun (name, v) ->
        let copy = copy_value v in
        ( name,
          { value = copy; bytes = value_bytes copy; sums = chunk_sums ~chunks copy }
        ))
      bindings
  in
  let s = { at_loop; bindings; driver = List.map (fun (k, v) -> (k, copy_value v)) driver } in
  t.latest <- Some s;
  t.taken <- t.taken + 1;
  t.written_bytes <- t.written_bytes +. snapshot_bytes s;
  s

type restore_result =
  | Available of snapshot  (** latest snapshot, checksums verified *)
  | Corrupt of string  (** a checksum failed: fall back to lineage *)
  | None_taken

(** The latest snapshot, verified.  A corrupt checkpoint is reported, not
    returned — the caller falls back to lineage replay, which needs no
    stored bytes at all. *)
let restore (t : t) : restore_result =
  match t.latest with
  | None -> None_taken
  | Some s -> ( match verify s with Ok () -> Available s | Error m -> Corrupt m)

(* ------------------------------------------------------------------ *)
(* Crash-safe snapshot files (DESIGN.md §14)                           *)
(* ------------------------------------------------------------------ *)

(* Persistence protocol: marshal the snapshot behind a magic header into
   "<dir>/ckpt-NNNNNN.snap.tmp", fsync the file, rename(2) it to its
   final ".snap" name, then fsync the directory.  The rename is the
   commit point — a worker (or the whole supervisor) dying at any moment
   leaves either the previous complete snapshot or a stray ".tmp" that
   {!latest_file} never considers, so a restore can never read a torn
   image.  The checksums inside the snapshot still guard against storage
   bit-rot on top. *)

let magic = "DMLLCKPT1"
let snap_name at_loop = Printf.sprintf "ckpt-%06d.snap" at_loop

let write_file ~(dir : string) (s : snapshot) : string =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let final = Filename.concat dir (snap_name s.at_loop) in
  let tmp = final ^ ".tmp" in
  let payload = magic ^ Marshal.to_string s [] in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length payload in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd payload !written (n - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp final;
  (match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ());
  final

let read_file (path : string) : restore_result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Corrupt m
  | raw -> (
      let mlen = String.length magic in
      if String.length raw < mlen || not (String.equal (String.sub raw 0 mlen) magic)
      then Corrupt (path ^ ": bad or truncated snapshot header")
      else
        match
          (Marshal.from_string (String.sub raw mlen (String.length raw - mlen)) 0
            : snapshot)
        with
        | exception _ -> Corrupt (path ^ ": undecodable snapshot image")
        | s -> ( match verify s with Ok () -> Available s | Error m -> Corrupt m))

(* Highest-numbered committed snapshot; the zero-padded loop number makes
   lexicographic order numeric.  ".tmp" leftovers are invisible here. *)
let latest_file ~(dir : string) : string option =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | entries -> (
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".snap")
      |> List.sort (fun a b -> String.compare b a)
      |> function [] -> None | f :: _ -> Some (Filename.concat dir f))

let record_decision (t : t) ~(decided_at_loop : int) ~(restore_cost : float)
    ~(replay_cost : float) : choice =
  let chosen = if restore_cost <= replay_cost then Restore else Replay in
  t.decisions <-
    { decided_at_loop; chosen; restore_cost; replay_cost } :: t.decisions;
  chosen

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

(* The synthetic Comm term that prices snapshot movement: the snapshot is
   one opaque collection, and restore ships the lost share of it — the
   checkpoint path speaks the same volume language as the comm analysis
   rather than inventing a parallel cost model. *)
let snapshot_term : Comm.term =
  { Comm.kind = Comm.Broadcast;
    payload = Comm.Whole (Stencil.Tinput "__checkpoint__");
    note = "checkpoint image";
  }

let snapshot_resolver ~(bytes : float) : Comm.resolver =
  { Comm.collection_bytes = (fun _ -> bytes);
    elem_bytes = (fun _ -> 8.0);
    init_bytes = (fun _ -> 0.0);
  }

(** Simulated seconds to write a snapshot of [bytes]: every live node
    serializes its share and streams it to local stable storage
    concurrently, so the per-node share bounds the phase. *)
let write_seconds ~(cluster : M.cluster) ~(nodes : int) ~(bytes : float) :
    float =
  let share =
    Comm.term_bytes ~nodes (snapshot_resolver ~bytes) snapshot_term
    /. float_of_int (Stdlib.max 1 nodes)
  in
  (share /. (cluster.M.ser_gbs *. 1e9)) +. (share /. (cluster.M.disk_gbs *. 1e9))

(** Simulated seconds to restore the [lost_nodes] share of a snapshot of
    [bytes]: surviving peers read the lost partitions back from stable
    storage and ship them across the network to the nodes taking over. *)
let restore_seconds ~(cluster : M.cluster) ~(nodes : int) ~(lost_nodes : int)
    ~(bytes : float) : float =
  let n = Stdlib.max 1 nodes in
  let lost =
    Comm.term_bytes ~nodes:n (snapshot_resolver ~bytes) snapshot_term
    *. float_of_int lost_nodes /. float_of_int n
  in
  let lat_s = cluster.M.net_lat_us *. 1e-6 in
  (lost /. (cluster.M.disk_gbs *. 1e9))
  +. (lost /. (cluster.M.ser_gbs *. 1e9))
  +. (lost /. (cluster.M.net_bw_gbs *. 1e9))
  +. (float_of_int (Stdlib.max 1 lost_nodes) *. lat_s)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let decisions_to_json (t : t) : string =
  let one (d : decision) =
    Printf.sprintf
      "{\"at_loop\": %d, \"chosen\": \"%s\", \"restore_cost_s\": %.6g, \
       \"replay_cost_s\": %.6g}"
      d.decided_at_loop
      (choice_to_string d.chosen)
      d.restore_cost d.replay_cost
  in
  "[" ^ String.concat ", " (List.map one (decisions t)) ^ "]"

(** Process-backed cluster executor: forked OS-process workers speaking
    a length-prefixed [Marshal] protocol over socketpairs, under a
    supervisor with heartbeat/deadline liveness detection, bounded
    retry-with-backoff on transient I/O errors, {!Schedule.replan}-based
    lineage recovery onto survivors, budgeted respawn with graceful
    degradation, and guaranteed child reaping (DESIGN.md §14).

    Determinism contract: the chunk plan depends only on the loop size
    and the {e configured} worker count, never on the live set, so a run
    under injected process murder merges the same chunk partials in the
    same order as a healthy run — faulty and healthy values are
    bit-identical.  Against the sequential interpreter, values are
    bit-identical whenever the loop merges exactly (collects, int
    reduces, bucket merges) and float-merge-identical (within 1e-6
    relative) for floating-point reductions. *)

module V = Dmll_interp.Value
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

type config = {
  workers : int;  (** forked worker processes (and the fixed chunk fan-out) *)
  faults : Fault.t option;
      (** arms worker-side injected chunk faults {e and} parent-side real
          process murder: SIGKILL, SIGSTOP straggling, pipe close *)
  task_deadline_s : float;
      (** a dispatched chunk unanswered for this long marks the worker
          hung: SIGKILL + replan *)
  heartbeat_s : float;
      (** idle-worker ping cadence at loop boundaries; three missed
          pongs declare the worker dead *)
  max_respawns : int;  (** replacement-worker budget for the whole run *)
  checkpoint_cadence : int;  (** snapshot every N spine loops; [<=0] off *)
  checkpoint_dir : string option;
      (** where crash-safe snapshot files go ({!Checkpoint.write_file}) *)
  resume : bool;
      (** restore spine bindings from the latest verified snapshot in
          [checkpoint_dir] instead of recomputing them *)
  obs : Span.t option;
  metrics : Metrics.t option;
  on_spawn : (slot:int -> pid:int -> unit) option;
      (** test hook, called by the parent after every fork *)
  on_task_sent : (slot:int -> chunk:int -> unit) option;
      (** test hook, called right after a task frame is written to a
          worker and before its first reply can arrive — the window the
          heartbeat/deadline edge-case tests target *)
}

val default_config : config
(** 2 workers, 5 s task deadline, 0.25 s heartbeat, 8 respawns, no
    faults, no checkpointing. *)

(** Supervision counters for one run, all observed from the parent. *)
type stats = {
  mutable spawned : int;  (** every fork, initial and replacement *)
  mutable respawned : int;
  mutable killed : int;  (** injected murders (SIGKILL or pipe cut) *)
  mutable pipe_cuts : int;
  mutable stopped : int;  (** injected SIGSTOP straggles *)
  mutable deadline_kills : int;
  mutable heartbeat_kills : int;
  mutable io_retries : int;  (** transient I/O errors retried with backoff *)
  mutable replans : int;
  mutable recovered_chunks : int;  (** chunks redispatched after a death *)
  mutable master_chunks : int;  (** degraded-mode chunks evaluated inline *)
  mutable worker_retries : int;  (** worker-side transient-fault retries *)
  mutable pings : int;
  mutable pongs : int;
  mutable checkpoints : int;
  mutable restored_loops : int;
  mutable degraded : bool;  (** ran short-handed after budget exhaustion *)
  mutable pids : int list;  (** every child pid ever forked (for tests) *)
}

val stats_to_string : stats -> string

type result = {
  value : V.t;
  seconds : float;  (** wall-clock *)
  breakdown : (string * float) list;  (** per-spine-loop wall seconds *)
  stats : stats;
  metrics : Metrics.t;
}

val run : ?config:config -> ?inputs:(string * V.t) list -> Dmll_ir.Exp.exp -> result
(** Execute a program with its outer multiloops distributed across
    forked worker processes.  Always terminates with every child reaped
    and every pipe closed — including when the program itself raises —
    via a [Fun.protect]ed shutdown sweep over every pid ever forked. *)

(** Cluster executor/simulator (paper §6.2, Figure 8).

    Executes the program exactly (closure backend) while charging
    simulated time on a modeled cluster: per-loop compute, broadcast,
    replication, and gather phases, plus failure detection / lineage
    recomputation / rebalance under fault injection and the
    checkpoint/restore/spill/churn phases of the elastic runtime
    (DESIGN.md §9 and §11).  Internal phase accounting ([loop_time],
    recovery bookkeeping) is private to the implementation. *)

module M = Dmll_machine.Machine
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

type device = Cpu | Gpu_device

type config = {
  cluster : M.cluster;
  device : device;  (** run node chunks on cores or on the node's GPU *)
  gpu_options : Sim_gpu.options;
  faults : Fault.t option;
      (** fault injection + recovery accounting; [None] is the exact
          healthy model of the paper *)
  checkpoint_cadence : int;
      (** snapshot the spine bindings every this-many loops ([<= 0]
          disables); arms the restore-vs-replay recovery policy
          (DESIGN.md §11) *)
  mem_budget_gb : float option;
      (** per-node memory budget override; [None] uses the node's
          [mem_gb].  Over-budget loops spill to disk and see remote-read
          backpressure. *)
  obs : Span.t option;
      (** span tracer: every loop and its phases become spans on the
          simulated clock (1 s of modeled time = 1e6 µs of trace time),
          exportable as Chrome [trace_event] JSON (DESIGN.md §12) *)
  metrics : Metrics.t option;
      (** per-run observability ledger to accumulate into; a private
          fresh one is used when [None] *)
}

val default_config : config
(** The paper's EC2 cluster, CPU device, no faults, no checkpoints, no
    observability sinks. *)

val tree_depth : int -> int
(** Depth of the pipelined collective tree over [n] nodes: [0] for a
    single node, else [ceil (log2 n)] — the latency multiplier of the
    broadcast/gather phases. *)

val run :
  ?config:config ->
  ?checkpoint:Checkpoint.t ->
  ?layouts:(Dmll_analysis.Stencil.target * Dmll_ir.Exp.layout) list ->
  inputs:(string * Dmll_interp.Value.t) list ->
  Dmll_ir.Exp.exp ->
  Sim_common.result
(** Execute [program] exactly; charge simulated time on the cluster.
    [?checkpoint] supplies an external store (so the caller can inspect
    snapshots and restore-vs-replay decisions afterwards); otherwise a
    private store is created when [config.checkpoint_cadence > 0].  The
    result's per-phase breakdown sums to its [seconds], a contract
    enforced under debug validation (rule [O-SPAN-CLOCK]). *)

val scatter_seconds : ?config:config -> bytes:float -> unit -> float
(** Simulated seconds to load/scatter the partitioned dataset initially
    (reported separately, as the paper separates load from compute). *)

(** Shared wire codec of the real-process executors (DESIGN.md §16):
    length-prefixed, CRC32-checksummed [Marshal] frames over a file
    descriptor, used identically by {!Proc_cluster}'s socketpair pipes
    and {!Net_cluster}'s TCP links.

    Frame layout: an 8-byte big-endian payload length, a 4-byte
    big-endian CRC32 (IEEE 802.3) of the payload, then the marshalled
    payload.  Structural damage — insane length, CRC mismatch,
    unmarshallable payload — raises {!Corrupt_frame} with a structured
    [Diag] error (rule [T-FRAME]) rather than a bare [Marshal]
    exception. *)

exception Peer_gone
(** The peer is dead: EOF, EPIPE, or connection reset. *)

exception Frame_timeout
(** A frame did not complete within its deadline: the peer is hung.
    The deadline is edge-inclusive — data that arrived {e exactly} at
    the deadline is still read (one final zero-timeout poll decides). *)

exception Corrupt_frame of Dmll_analysis.Diag.t
(** The frame is structurally bad (rule [T-FRAME]). *)

val max_frame_bytes : int
val header_bytes : int

val crc32 : bytes -> int
(** IEEE 802.3 CRC32 of a buffer, in [0, 2{^32}). *)

(** {1 Fd-level codec} — the pipe path ({!Proc_cluster}). *)

val write_frame : Unix.file_descr -> 'a -> unit
(** Marshal and frame one message.  Raises {!Peer_gone} when the peer
    is dead. *)

val read_frame : ?deadline:float -> Unix.file_descr -> 'a
(** Read one frame, optionally bounded by an absolute deadline.
    Raises {!Peer_gone}, {!Frame_timeout}, or {!Corrupt_frame}. *)

(** {1 Counted connections} — the TCP path ({!Net_cluster}).

    A {!conn} counts frames and bytes in both directions (feeding the
    per-link metrics the supervisors publish) and can host a
    deterministic link-fault injector on its send path: every outgoing
    frame draws a {!Fault.link_fate} and the wrapper delivers it for
    real — delaying, corrupting, severing mid-frame, or blackholing
    ("partitioning") frames on the live socket. *)

type conn

val attach : ?fate:(frame:int -> Fault.link_fate) -> Unix.file_descr -> conn
(** Wrap a connected socket.  [fate] (master side only) is consulted
    once per outgoing frame, keyed by the frame number. *)

val conn_fd : conn -> Unix.file_descr

val send : conn -> 'a -> unit
(** Frame and transmit one message, applying the injected link fate.
    Raises {!Peer_gone} on a dead or injected-severed link.  Frames
    sent while the link is partitioned are silently dropped. *)

val recv : ?deadline:float -> conn -> 'a
(** Read one message.  Frames arriving while the link is partitioned
    are read (and counted) but discarded, as a blackholed link would.
    Raises {!Peer_gone}, {!Frame_timeout}, or {!Corrupt_frame}. *)

val close : conn -> unit
(** Close the underlying fd; idempotent. *)

val bytes_out : conn -> int
val bytes_in : conn -> int
val frames_out : conn -> int
val frames_in : conn -> int

val injected_faults : conn -> int
(** Link faults delivered on this connection. *)

val partitioned : conn -> bool
(** The link is currently inside an injected partition window. *)

(** Backend resolution (DESIGN.md §17): where [Config.target] meets the
    {!Dmll_backend.Registry}.

    The backend library defines the seam ({!Dmll_backend.Backend.S}) but
    sits below the runtime library, while most backends wrap runtime
    executors — so this module, which can see both sides, declares one
    {!Dmll_backend.Backend.payload} constructor per target, implements
    the eight backend modules, registers them, and exposes {!resolve}:
    the single function the driver ([Dmll.compile_with]/[Dmll.execute])
    calls instead of pattern-matching targets.

    Resolution also owns the knob {e overlay}: a cluster target whose
    config left faults / checkpoint cadence / observability unset
    inherits them from the surrounding [Config.t], so
    [dmll_run --faults ... --checkpoint-every ...] composes with a
    target the caller built directly. *)

module Runtime = Dmll_runtime
module Analysis = Dmll_analysis
module Bk = Dmll_backend
module B = Dmll_backend.Backend
module Metrics = Dmll_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Payloads                                                            *)
(* ------------------------------------------------------------------ *)

type B.payload +=
  | Closure_p
  | Multicore_p of {
      domains : int;
      faults : Runtime.Fault.t option;
      checkpoint_every : int;
    }
  | Numa_p of Runtime.Sim_numa.config
  | Gpu_p of Runtime.Sim_gpu.options
  | Sim_cluster_p of {
      config : Runtime.Sim_cluster.config;
      selector : Config.plan_selector;
    }
  | Proc_p of Runtime.Proc_cluster.config
  | Net_p of Runtime.Net_cluster.config
  | Native_p of { cache : Bk.Kernel_cache.t; runs : int }

(* ------------------------------------------------------------------ *)
(* Shared result shapes                                                *)
(* ------------------------------------------------------------------ *)

let wall ~(metrics : Metrics.t) value seconds : B.exec_result =
  { B.value; seconds; wall_clock = true; breakdown = []; traffic = []; metrics }

let of_sim ~(metrics : Metrics.t) (r : Runtime.Sim_common.result) :
    B.exec_result =
  { B.value = r.Runtime.Sim_common.value;
    seconds = r.Runtime.Sim_common.seconds;
    wall_clock = false;
    breakdown = r.Runtime.Sim_common.breakdown;
    traffic = r.Runtime.Sim_common.traffic;
    metrics;
  }

let identity_lower e = (e, [])

(* ------------------------------------------------------------------ *)
(* The backends                                                        *)
(* ------------------------------------------------------------------ *)

module Closure_backend : B.S = struct
  let id = "closure"
  let describe = "in-process closure compiler, one core (Table 2 baseline)"

  let capabilities =
    { B.wall_clock = true;
      parallel = false;
      distributed = false;
      fault_injection = false;
      checkpointing = false;
      mem_budget = false;
      emits_source = false;
      cacheable_kernels = false;
    }

  let plan = function
    | Closure_p -> B.default_plan
    | _ -> B.wrong_payload id

  let emit _ _ = None

  let execute p (ctx : B.ctx) e =
    match p with
    | Closure_p ->
        let v, t =
          Dmll_util.Timing.time (fun () -> Bk.Closure.run ~inputs:ctx.B.inputs e)
        in
        wall ~metrics:ctx.B.metrics v t
    | _ -> B.wrong_payload id
end

module Multicore_backend : B.S = struct
  let id = "multicore"
  let describe = "real OCaml domains with work-stealing chunks"

  let capabilities =
    { B.wall_clock = true;
      parallel = true;
      distributed = false;
      fault_injection = true;
      checkpointing = true;
      mem_budget = false;
      emits_source = false;
      cacheable_kernels = false;
    }

  let plan = function
    | Multicore_p _ -> B.default_plan
    | _ -> B.wrong_payload id

  let emit _ _ = None

  let execute p (ctx : B.ctx) e =
    match p with
    | Multicore_p { domains; faults; checkpoint_every } ->
        let checkpoint =
          if checkpoint_every > 0 then
            Some (Runtime.Checkpoint.create ~cadence:checkpoint_every)
          else None
        in
        let v, t =
          Dmll_util.Timing.time (fun () ->
              Runtime.Exec_domains.run ?obs:ctx.B.tracer ~metrics:ctx.B.metrics
                ~domains ?faults ?checkpoint ~inputs:ctx.B.inputs e)
        in
        wall ~metrics:ctx.B.metrics v t
    | _ -> B.wrong_payload id
end

module Numa_backend : B.S = struct
  let id = "sim-numa"
  let describe = "modeled NUMA machine (socket-aware chunk placement)"

  let capabilities =
    { B.wall_clock = false;
      parallel = true;
      distributed = false;
      fault_injection = false;
      checkpointing = false;
      mem_budget = false;
      emits_source = false;
      cacheable_kernels = false;
    }

  let plan = function
    | Numa_p _ -> B.default_plan
    | _ -> B.wrong_payload id

  let emit _ _ = None

  let execute p (ctx : B.ctx) e =
    match p with
    | Numa_p config ->
        of_sim ~metrics:ctx.B.metrics
          (Runtime.Sim_numa.run ~config ~inputs:ctx.B.inputs e)
    | _ -> B.wrong_payload id
end

module Gpu_backend : B.S = struct
  let id = "sim-gpu"
  let describe = "modeled GPU (transfer + kernel model, CUDA emission)"

  let capabilities =
    { B.wall_clock = false;
      parallel = true;
      distributed = false;
      fault_injection = false;
      checkpointing = false;
      mem_budget = false;
      emits_source = true;
      cacheable_kernels = false;
    }

  let plan = function
    | Gpu_p opts ->
        if opts.Runtime.Sim_gpu.row_to_column then
          { B.default_plan with
            B.lower =
              (fun e ->
                let e', lowered = Bk.Gpu.lower e in
                (e', if lowered then [ "row-to-column" ] else []));
          }
        else B.default_plan
    | _ -> B.wrong_payload id

  let emit p e =
    match p with
    | Gpu_p _ -> Some (Bk.Codegen_cuda.emit e)
    | _ -> B.wrong_payload id

  let execute p (ctx : B.ctx) e =
    match p with
    | Gpu_p options ->
        let r = Runtime.Sim_gpu.run ~options ~inputs:ctx.B.inputs e in
        { B.value = r.Runtime.Sim_gpu.value;
          seconds = r.Runtime.Sim_gpu.kernel_seconds;
          wall_clock = false;
          breakdown = [];
          traffic = [];
          metrics = ctx.B.metrics;
        }
    | _ -> B.wrong_payload id
end

module Sim_cluster_backend : B.S = struct
  let id = "sim-cluster"
  let describe = "modeled cluster (partitioned data, broadcast/shuffle costs)"

  let capabilities =
    { B.wall_clock = false;
      parallel = true;
      distributed = true;
      fault_injection = true;
      checkpointing = true;
      mem_budget = true;
      emits_source = false;
      cacheable_kernels = false;
    }

  let plan = function
    | Sim_cluster_p { config; selector } ->
        let machine = config.Runtime.Sim_cluster.cluster in
        { B.fusion_objective =
            Some (fun e -> Analysis.Partition.predicted_volume ~machine e);
          machine = Some machine;
          wants_ilp = (selector = Analysis.Plan.Ilp);
          early_free = true;
          lower = identity_lower;
        }
    | _ -> B.wrong_payload id

  let emit _ _ = None

  let execute p (ctx : B.ctx) e =
    match p with
    | Sim_cluster_p { config; _ } ->
        let r = Runtime.Sim_cluster.run ~config ~inputs:ctx.B.inputs e in
        { (of_sim ~metrics:ctx.B.metrics r) with
          B.metrics = r.Runtime.Sim_common.metrics;
        }
    | _ -> B.wrong_payload id
end

module Proc_backend : B.S = struct
  let id = "proc-cluster"
  let describe = "real forked worker processes with supervision (§14)"

  let capabilities =
    { B.wall_clock = true;
      parallel = true;
      distributed = true;
      fault_injection = true;
      checkpointing = true;
      mem_budget = false;
      emits_source = false;
      cacheable_kernels = false;
    }

  let plan = function
    | Proc_p _ -> B.default_plan
    | _ -> B.wrong_payload id

  let emit _ _ = None

  let execute p (ctx : B.ctx) e =
    match p with
    | Proc_p config ->
        let r = Runtime.Proc_cluster.run ~config ~inputs:ctx.B.inputs e in
        { B.value = r.Runtime.Proc_cluster.value;
          seconds = r.Runtime.Proc_cluster.seconds;
          wall_clock = true;
          breakdown = r.Runtime.Proc_cluster.breakdown;
          traffic = [];
          metrics = r.Runtime.Proc_cluster.metrics;
        }
    | _ -> B.wrong_payload id
end

module Net_backend : B.S = struct
  let id = "net-cluster"
  let describe = "TCP-attached worker processes, local or multi-host (§16)"

  let capabilities =
    { B.wall_clock = true;
      parallel = true;
      distributed = true;
      fault_injection = true;
      checkpointing = false;
      mem_budget = false;
      emits_source = false;
      cacheable_kernels = false;
    }

  let plan = function
    | Net_p _ -> B.default_plan
    | _ -> B.wrong_payload id

  let emit _ _ = None

  let execute p (ctx : B.ctx) e =
    match p with
    | Net_p config ->
        let r = Runtime.Net_cluster.run ~config ~inputs:ctx.B.inputs e in
        { B.value = r.Runtime.Net_cluster.value;
          seconds = r.Runtime.Net_cluster.seconds;
          wall_clock = true;
          breakdown = r.Runtime.Net_cluster.breakdown;
          traffic =
            Metrics.byte_counters r.Runtime.Net_cluster.metrics
            |> List.filter (fun (k, _) ->
                   String.length k >= 4 && String.sub k 0 4 = "net_");
          metrics = r.Runtime.Net_cluster.metrics;
        }
    | _ -> B.wrong_payload id
end

module Native_backend : B.S = struct
  let id = "native"

  let describe =
    "ocamlopt-compiled kernels: Dynlink JIT or child process, kernel-cached"

  let capabilities =
    { B.wall_clock = true;
      parallel = false;
      distributed = false;
      fault_injection = false;
      checkpointing = false;
      mem_budget = false;
      emits_source = true;
      cacheable_kernels = true;
    }

  let plan = function
    | Native_p _ -> B.default_plan
    | _ -> B.wrong_payload id

  let emit p e =
    match p with
    | Native_p _ -> Some (Bk.Codegen_ocaml.emit_program e)
    | _ -> B.wrong_payload id

  let execute p (ctx : B.ctx) e =
    match p with
    | Native_p { cache; runs } ->
        let r =
          Bk.Native.run_best ~cache ~metrics:ctx.B.metrics ?tracer:ctx.B.tracer
            ~runs ~inputs:ctx.B.inputs e
        in
        wall ~metrics:ctx.B.metrics r.Bk.Native.value r.Bk.Native.seconds
    | _ -> B.wrong_payload id
end

(* ------------------------------------------------------------------ *)
(* Registration and resolution                                         *)
(* ------------------------------------------------------------------ *)

let registered : unit Lazy.t =
  lazy
    (List.iter Bk.Registry.register
       [ (module Closure_backend : B.S);
         (module Multicore_backend : B.S);
         (module Numa_backend : B.S);
         (module Gpu_backend : B.S);
         (module Sim_cluster_backend : B.S);
         (module Proc_backend : B.S);
         (module Net_backend : B.S);
         (module Native_backend : B.S);
       ])

(** Populate the registry with every built-in backend (idempotent).
    Anything that enumerates the registry ([dmllc --explain backends])
    must call this first; {!resolve} does so itself. *)
let ensure_registered () = Lazy.force registered

let id_of_target : Config.target -> string = function
  | Config.Sequential -> "closure"
  | Config.Multicore _ -> "multicore"
  | Config.Numa _ -> "sim-numa"
  | Config.Gpu _ -> "sim-gpu"
  | Config.Cluster _ -> "sim-cluster"
  | Config.Proc_cluster _ -> "proc-cluster"
  | Config.Net_cluster _ -> "net-cluster"
  | Config.Native -> "native"

(* Kernel caches, memoized per root so repeated resolves share one
   memory LRU (and the [None] root shares the process-wide cache). *)
let caches : (string, Bk.Kernel_cache.t) Hashtbl.t = Hashtbl.create 4
let caches_mutex = Mutex.create ()

let cache_for (root : string option) : Bk.Kernel_cache.t =
  match root with
  | None -> Lazy.force Bk.Kernel_cache.shared
  | Some root ->
      Mutex.lock caches_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock caches_mutex)
        (fun () ->
          match Hashtbl.find_opt caches root with
          | Some c -> c
          | None ->
              let c = Bk.Kernel_cache.create ~root () in
              Hashtbl.add caches root c;
              c)

let keep a b = match a with Some _ -> a | None -> b

(* The runtime knobs of [cfg] overlaid onto a target whose config left
   them unset. *)
let payload_of (cfg : Config.t) : B.payload =
  match cfg.Config.target with
  | Config.Sequential -> Closure_p
  | Config.Multicore domains ->
      Multicore_p
        { domains;
          faults = cfg.Config.faults;
          checkpoint_every = cfg.Config.checkpoint_every;
        }
  | Config.Numa config -> Numa_p config
  | Config.Gpu options -> Gpu_p options
  | Config.Cluster cc ->
      Sim_cluster_p
        { config =
            { cc with
              Runtime.Sim_cluster.faults =
                keep cc.Runtime.Sim_cluster.faults cfg.Config.faults;
              checkpoint_cadence =
                (if cc.Runtime.Sim_cluster.checkpoint_cadence > 0 then
                   cc.Runtime.Sim_cluster.checkpoint_cadence
                 else cfg.Config.checkpoint_every);
              mem_budget_gb =
                keep cc.Runtime.Sim_cluster.mem_budget_gb
                  cfg.Config.mem_budget_gb;
              obs = keep cc.Runtime.Sim_cluster.obs cfg.Config.tracer;
              metrics = keep cc.Runtime.Sim_cluster.metrics cfg.Config.metrics;
            };
          selector = cfg.Config.plan_selector;
        }
  | Config.Proc_cluster pc ->
      Proc_p
        { pc with
          Runtime.Proc_cluster.faults =
            keep pc.Runtime.Proc_cluster.faults cfg.Config.faults;
          checkpoint_cadence =
            (if pc.Runtime.Proc_cluster.checkpoint_cadence > 0 then
               pc.Runtime.Proc_cluster.checkpoint_cadence
             else cfg.Config.checkpoint_every);
          obs = keep pc.Runtime.Proc_cluster.obs cfg.Config.tracer;
          metrics = keep pc.Runtime.Proc_cluster.metrics cfg.Config.metrics;
        }
  | Config.Net_cluster nc ->
      Net_p
        { nc with
          Runtime.Net_cluster.faults =
            keep nc.Runtime.Net_cluster.faults cfg.Config.faults;
          obs = keep nc.Runtime.Net_cluster.obs cfg.Config.tracer;
          metrics = keep nc.Runtime.Net_cluster.metrics cfg.Config.metrics;
        }
  | Config.Native ->
      Native_p { cache = cache_for cfg.Config.kernel_cache_dir; runs = 3 }

(** The backend serving [cfg.target], with the payload [execute] will
    consume — [cfg]'s fault/checkpoint/memory knobs and observability
    sinks overlaid onto the target's own config. *)
let resolve (cfg : Config.t) : (module B.S) * B.payload =
  ensure_registered ();
  let id = id_of_target cfg.Config.target in
  match Bk.Registry.find id with
  | Some b -> (b, payload_of cfg)
  | None -> invalid_arg (Printf.sprintf "Backends.resolve: %s not registered" id)

(** The compile-time plan for a bare target under default knobs — what
    [lint] and other config-less consumers use. *)
let plan_of_target (t : Config.target) : B.plan =
  let (module Bx), payload =
    resolve { Config.default with Config.target = t }
  in
  Bx.plan payload

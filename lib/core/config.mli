(** Run configuration: one record replacing scattered optional arguments,
    environment variables, and process-global state.

    Build one with {!default} (or {!of_env}) and the [with_*] builders:

    {[
      let cfg =
        Dmll.Config.(
          of_env ()
          |> with_target (Cluster Dmll_runtime.Sim_cluster.default_config)
          |> with_trace_file "out.json" |> armed)
      in
      let compiled = Dmll.compile_with cfg program in
      let r = Dmll.execute cfg compiled ~inputs in
      ...
    ]} *)

module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

(** Execution targets.  All targets compute exact values; [Sequential],
    [Multicore], [Proc_cluster], and [Net_cluster] measure real
    wall-clock time, the others model the paper's testbeds (see
    [Dmll_machine.Machine]). *)
type target =
  | Sequential  (** closure backend, one core — the Table 2 configuration *)
  | Multicore of int  (** real OCaml domains *)
  | Numa of Dmll_runtime.Sim_numa.config  (** modeled NUMA machine *)
  | Gpu of Dmll_runtime.Sim_gpu.options  (** modeled GPU *)
  | Cluster of Dmll_runtime.Sim_cluster.config  (** modeled cluster *)
  | Proc_cluster of Dmll_runtime.Proc_cluster.config
      (** real forked worker processes (DESIGN.md §14) *)
  | Net_cluster of Dmll_runtime.Net_cluster.config
      (** TCP-attached worker processes, local or multi-host
          (DESIGN.md §16) *)
  | Native
      (** generated OCaml compiled by [ocamlopt]: in-process Dynlink JIT
          when available, child process otherwise, both behind the
          content-addressed kernel cache (DESIGN.md §17) *)

(** How cluster compiles choose among interacting fusion / rewrite /
    partition-layout decisions (re-export of
    [Dmll_analysis.Plan.selector]): [Greedy] keeps the historical
    per-decision linear searches; [Ilp] solves the joint plan space as a
    0-1 ILP (DESIGN.md §15), falling back to greedy automatically when
    the solver exhausts its node budget or its plan would move more
    bytes than greedy's.  Only cluster-modeled targets consult this;
    every other target always uses the greedy pipeline. *)
type plan_selector = Dmll_analysis.Plan.selector = Greedy | Ilp

type t = {
  target : target;
  debug : bool;
      (** re-verify every optimizer stage and replanned chunk, and hold
          the runtime to its validation contracts (C-COMM-OVERRUN,
          O-SPAN-CLOCK) *)
  faults : Dmll_runtime.Fault.t option;
      (** fault injector for fault-capable targets; the caller keeps the
          handle, so injection statistics stay readable after the run *)
  checkpoint_every : int;
      (** snapshot cadence in spine loops ([<= 0] disables) *)
  mem_budget_gb : float option;  (** per-node memory budget override *)
  tracer : Span.t option;  (** span sink for compile and runtime spans *)
  metrics : Metrics.t option;
      (** per-run metrics ledger; {!Dmll.execute} creates a fresh one
          when [None], so two runs never share counters by accident *)
  trace_file : string option;
      (** where tools write the Chrome [trace_event] JSON ([--trace]) *)
  profile : bool;  (** tools print a self-time profile ([--profile]) *)
  plan_selector : plan_selector;
      (** joint plan selection policy for cluster targets ([Ilp] by
          default, with automatic greedy fallback) *)
  kernel_cache_dir : string option;
      (** root of the on-disk kernel cache for the [Native] target
          ([None] = the process-wide shared cache under the system temp
          dir); set per run for isolation (tests, benchmarks) *)
}

val default : t
(** Sequential, no debug, no faults, no checkpoints, no observability. *)

val with_target : target -> t -> t
val with_debug : bool -> t -> t
val with_faults : Dmll_runtime.Fault.t -> t -> t
val with_checkpoint_every : int -> t -> t
val with_mem_budget_gb : float -> t -> t
val with_tracer : Span.t -> t -> t
val with_metrics : Metrics.t -> t -> t
val with_trace_file : string -> t -> t
val with_profile : bool -> t -> t
val with_plan_selector : plan_selector -> t -> t
val with_kernel_cache_dir : string -> t -> t

val armed : t -> t
(** Ensure live observability sinks: a tracer when [trace_file] or
    [profile] was requested, and always a metrics ledger.  Idempotent —
    existing handles are kept. *)

val of_env : unit -> t
(** The configuration the [DMLL_*] environment variables describe, on
    top of {!default}: [DMLL_DEBUG=1] sets [debug]; [DMLL_FAULTS] (same
    key=value spec as [--faults]) arms a fault injector;
    [DMLL_KERNEL_CACHE_DIR] relocates the native kernel cache.  This is
    the {e single} environment reader in the tree; a malformed
    [DMLL_FAULTS] raises [Invalid_argument] loudly rather than silently
    running healthy. *)

(** The DMLL compiler driver: the public entry point tying the pipeline of
    the paper together.

    {v
    stage (Dsl) → generic optimizations (fusion, CSE, motion, SoA/DFE)
               → partitioning analysis (Algorithm 1)
                  └ stencil-triggered Figure-3 rewrites
               → target lowering (CPU / NUMA / GPU / cluster)
               → execution (closure backend, domain executor, or a
                 simulated heterogeneous machine)
    v}

    Typical use:

    {[
      let cfg = Dmll.Config.(of_env () |> with_target Dmll.Sequential) in
      let compiled = Dmll.compile_with cfg program in
      List.iter print_endline (Dmll.optimizations compiled);
      let r = Dmll.execute cfg compiled ~inputs in
      ...
    ]}

    Targets resolve through the backend registry
    ({!Backends.resolve} → {!Dmll_backend.Registry}): the driver holds
    no per-target code, and [dmllc --explain backends] enumerates what
    this build can execute. *)

open Dmll_ir
module V = Dmll_interp.Value

module Config : module type of Config
(** Run configuration — targets, debug verification, fault/checkpoint
    knobs, and observability sinks; see {!Config.of_env}, the single
    [DMLL_*] environment reader. *)

module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

(** Execution targets ([= Config.target]).  All targets compute exact
    values; [Sequential], [Multicore], [Native], and the process/TCP
    clusters measure real wall-clock time, the others model the paper's
    testbeds (see [Dmll_machine.Machine]). *)
type target = Config.target =
  | Sequential  (** closure backend, one core — the Table 2 configuration *)
  | Multicore of int  (** real OCaml domains *)
  | Numa of Dmll_runtime.Sim_numa.config  (** modeled NUMA machine *)
  | Gpu of Dmll_runtime.Sim_gpu.options  (** modeled GPU *)
  | Cluster of Dmll_runtime.Sim_cluster.config  (** modeled cluster *)
  | Proc_cluster of Dmll_runtime.Proc_cluster.config
      (** real forked worker processes (DESIGN.md §14) *)
  | Net_cluster of Dmll_runtime.Net_cluster.config
      (** TCP-attached worker processes, local or multi-host
          (DESIGN.md §16) *)
  | Native
      (** generated OCaml compiled by [ocamlopt]: in-process Dynlink JIT
          when available, child process otherwise, both behind the
          content-addressed kernel cache (DESIGN.md §17) *)

module Backends : module type of Backends
(** Backend resolution: [Config.target] → registered
    {!Dmll_backend.Backend.S} implementation plus its run payload.
    [Backends.ensure_registered ()] populates the registry for
    enumeration ([dmllc --explain backends]). *)

(** A compiled program, carrying every intermediate so tools ([dmllc]) can
    display the compilation the way the paper's figures walk through
    k-means. *)
type compiled = {
  source : Exp.exp;
  generic : Exp.exp;  (** after the target-independent pipeline *)
  final : Exp.exp;  (** after partitioning-driven rewrites + lowering *)
  target : target;
  partition : Dmll_analysis.Partition.report;
  applied : string list;  (** every optimization that fired, in order *)
  gpu_lowered : bool;  (** Row-to-Column applied for a GPU target *)
}

val debug_default : bool
(** Default of [compile]'s [?debug]: [true] when the [DMLL_DEBUG]
    environment variable is set to [1]/[true]/[yes]. *)

val verify_stage : string -> Exp.exp -> unit
(** [verify_stage stage e] typechecks [e] (free symbols assume their
    annotated types) and runs the parallel-safety verifier
    ({!Dmll_analysis.Verify}), raising {!Dmll_analysis.Diag.Failed} on any
    Error-severity finding.  This is the check [compile ~debug:true]
    installs behind every optimizer rule and pipeline stage. *)

val compile_with : Config.t -> Exp.exp -> compiled
(** Compile a staged program under a configuration: target from
    [cfg.target], debug verification from [cfg.debug], and — when
    [cfg.tracer] is set — one span per driver stage (cat ["compile"]),
    pipeline stage (["pipeline"]), rule firing (["rule"], with
    before/after IR sizes), and partitioning-analysis step
    (["partition"]).  The target shapes compilation only through its
    backend's plan ({!Backends.resolve}): fusion objective, machine
    model, ILP plan selection, early-free, and final lowering. *)

val optimizations : compiled -> string list
(** Distinct optimizations that fired, in first-fired order — the
    "Optimizations" column of the paper's Table 2. *)

(** What one execution produced: the exact value, the time (wall-clock
    for the real targets, modeled for the simulated ones), the
    simulators' per-phase breakdown and measured traffic, and the run's
    metrics ledger. *)
type run_result = {
  value : V.t;
  seconds : float;
  wall_clock : bool;  (** measured wall time vs. modeled simulator time *)
  breakdown : (string * float) list;  (** per-phase seconds (simulators) *)
  traffic : (string * float) list;  (** measured network bytes (cluster) *)
  metrics : Metrics.t;  (** this run's counters — never shared by default *)
}

val execute : Config.t -> compiled -> inputs:(string * V.t) list -> run_result
(** Execute a compiled program under [cfg]: the compiled target runs with
    [cfg]'s fault/checkpoint/memory knobs and observability sinks
    (tracer spans on the runtime timeline, counters into the metrics
    ledger), resolved through the backend registry — the driver holds no
    per-target code.  A fresh ledger is created when [cfg.metrics] is
    [None]; with [cfg.debug], the runtime validation contracts (replan
    verification, C-COMM-OVERRUN, O-SPAN-CLOCK) are armed for the
    duration of the run. *)

val codegen : [ `Cpp | `Cuda | `Scala ] -> compiled -> string
(** Emit target source text (for inspection; the executable backends are
    the closure compiler and [Dmll_backend.Native]). *)

val iterate :
  compiled ->
  inputs:(string * V.t) list ->
  feedback:(V.t -> (string * V.t) list) ->
  iters:int ->
  V.t
(** Drive an iterative algorithm: run [iters] times, rebinding inputs
    between iterations via [feedback] (e.g. k-means feeds the new
    centroids back as ["clusters"]); compiled once, executed many. *)

val warnings : compiled -> string list
(** Partitioning-analysis warnings (sequential access to partitioned data,
    runtime data movement fallbacks), human-readable. *)

val lint : compiled -> Dmll_analysis.Diag.t list
(** Parallel-safety diagnostics: the verifier's findings on the fully
    optimized IR plus the partitioning analysis's warnings, most severe
    first.  Backs [dmllc --lint]. *)

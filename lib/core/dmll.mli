(** The DMLL compiler driver: the public entry point tying the pipeline of
    the paper together.

    {v
    stage (Dsl) → generic optimizations (fusion, CSE, motion, SoA/DFE)
               → partitioning analysis (Algorithm 1)
                  └ stencil-triggered Figure-3 rewrites
               → target lowering (CPU / NUMA / GPU / cluster)
               → execution (closure backend, domain executor, or a
                 simulated heterogeneous machine)
    v}

    Typical use:

    {[
      let compiled = Dmll.compile ~target:Dmll.Sequential program in
      List.iter print_endline (Dmll.optimizations compiled);
      let value = Dmll.run compiled ~inputs in
      ...
    ]} *)

open Dmll_ir
module V = Dmll_interp.Value

(** Execution targets.  All targets compute exact values; [Sequential] and
    [Multicore] measure real wall-clock in {!timed_run}, the others model
    the paper's testbeds (see [Dmll_machine.Machine]). *)
type target =
  | Sequential  (** closure backend, one core — the Table 2 configuration *)
  | Multicore of int  (** real OCaml domains *)
  | Numa of Dmll_runtime.Sim_numa.config  (** modeled NUMA machine *)
  | Gpu of Dmll_runtime.Sim_gpu.options  (** modeled GPU *)
  | Cluster of Dmll_runtime.Sim_cluster.config  (** modeled cluster *)

(** A compiled program, carrying every intermediate so tools ([dmllc]) can
    display the compilation the way the paper's figures walk through
    k-means. *)
type compiled = {
  source : Exp.exp;
  generic : Exp.exp;  (** after the target-independent pipeline *)
  final : Exp.exp;  (** after partitioning-driven rewrites + lowering *)
  target : target;
  partition : Dmll_analysis.Partition.report;
  applied : string list;  (** every optimization that fired, in order *)
  gpu_lowered : bool;  (** Row-to-Column applied for a GPU target *)
}

val debug_default : bool
(** Default of [compile]'s [?debug]: [true] when the [DMLL_DEBUG]
    environment variable is set to [1]/[true]/[yes]. *)

val verify_stage : string -> Exp.exp -> unit
(** [verify_stage stage e] typechecks [e] (free symbols assume their
    annotated types) and runs the parallel-safety verifier
    ({!Dmll_analysis.Verify}), raising {!Dmll_analysis.Diag.Failed} on any
    Error-severity finding.  This is the check [compile ~debug:true]
    installs behind every optimizer rule and pipeline stage. *)

val compile : ?target:target -> ?debug:bool -> Exp.exp -> compiled
(** Compile a staged program (default target: {!Sequential}).  With
    [~debug:true] (or [DMLL_DEBUG=1]), every optimizer stage and rule
    application is re-verified with {!verify_stage}, failing fast on the
    first unsafe program a transformation produces. *)

val optimizations : compiled -> string list
(** Distinct optimizations that fired, in first-fired order — the
    "Optimizations" column of the paper's Table 2. *)

val run : compiled -> inputs:(string * V.t) list -> V.t
(** Execute on the compiled target; always returns the exact value. *)

val timed_run : compiled -> inputs:(string * V.t) list -> V.t * float
(** Execute and return (value, seconds): wall-clock for the real targets,
    modeled time for the simulated ones. *)

val codegen : [ `Cpp | `Cuda | `Scala ] -> compiled -> string
(** Emit target source text (for inspection; the executable backends are
    the closure compiler and [Dmll_backend.Native]). *)

val iterate :
  compiled ->
  inputs:(string * V.t) list ->
  feedback:(V.t -> (string * V.t) list) ->
  iters:int ->
  V.t
(** Drive an iterative algorithm: run [iters] times, rebinding inputs
    between iterations via [feedback] (e.g. k-means feeds the new
    centroids back as ["clusters"]); compiled once, executed many. *)

val warnings : compiled -> string list
(** Partitioning-analysis warnings (sequential access to partitioned data,
    runtime data movement fallbacks), human-readable. *)

val lint : compiled -> Dmll_analysis.Diag.t list
(** Parallel-safety diagnostics: the verifier's findings on the fully
    optimized IR plus the partitioning analysis's warnings, most severe
    first.  Backs [dmllc --lint]. *)

(** The DMLL compiler driver: the public entry point tying the pipeline of
    the paper together.

    {v
    stage (Dsl) → generic optimizations (fusion, CSE, motion, SoA/DFE)
               → partitioning analysis (Algorithm 1)
                  └ stencil-triggered Figure-3 rewrites
               → target lowering (CPU / NUMA / GPU / cluster)
               → execution (closure backend, domain executor, or a
                 simulated heterogeneous machine)
    v}

    A {!compiled} value carries every intermediate so tools ([dmllc]) can
    display the compilation the way the paper's figures walk through
    k-means. *)

open Dmll_ir
module V = Dmll_interp.Value
module Opt = Dmll_opt
module Analysis = Dmll_analysis
module Runtime = Dmll_runtime
module Backend = Dmll_backend
module Config = Config
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

type target = Config.target =
  | Sequential  (** closure backend, one core — the Table 2 configuration *)
  | Multicore of int  (** real OCaml domains *)
  | Numa of Runtime.Sim_numa.config  (** simulated NUMA machine *)
  | Gpu of Runtime.Sim_gpu.options  (** simulated GPU *)
  | Cluster of Runtime.Sim_cluster.config  (** simulated cluster *)
  | Proc_cluster of Runtime.Proc_cluster.config
      (** real forked worker processes (DESIGN.md §14) *)
  | Net_cluster of Runtime.Net_cluster.config
      (** TCP-attached worker processes, local or multi-host
          (DESIGN.md §16) *)
  | Native
      (** generated OCaml compiled by [ocamlopt]: in-process Dynlink JIT
          when available, child process otherwise, both behind the
          content-addressed kernel cache (DESIGN.md §17) *)

module Backends = Backends

type compiled = {
  source : Exp.exp;
  generic : Exp.exp;  (** after the target-independent pipeline *)
  final : Exp.exp;  (** after partitioning-driven rewrites + lowering *)
  target : target;
  partition : Analysis.Partition.report;
  applied : string list;  (** every optimization that fired, in order *)
  gpu_lowered : bool;
}

(* ------------------------------------------------------------------ *)
(* Debug-mode verification                                              *)
(* ------------------------------------------------------------------ *)

(** In debug mode, every optimizer stage — and every individual rule
    application — re-runs the type checker and the parallel-safety
    verifier ({!Analysis.Verify}) on its result, failing fast with
    {!Analysis.Diag.Failed} on any Error-severity diagnostic, so a
    transformation bug is caught at the rule that introduced it rather
    than as a silently divergent answer.  Enabled per call
    ([compile ~debug:true]) or globally with [DMLL_DEBUG=1], read once
    here through {!Config.of_env} — the single environment reader.
    (A malformed [DMLL_FAULTS] is ignored at library load; tools that
    call [Config.of_env] themselves still fail loudly on it.) *)
let debug_default =
  (try Config.of_env () with Invalid_argument _ -> Config.default)
    .Config.debug

(* Typecheck + Verify one (possibly open) program; free symbols are
   treated as bound at their annotated types. *)
let verify_stage (stage : string) (e : Exp.exp) : unit =
  let declared = Exp.free_vars e in
  let env =
    Sym.Set.fold (fun s acc -> Sym.Map.add s (Sym.ty s) acc) declared Sym.Map.empty
  in
  (try ignore (Typecheck.infer env e)
   with Typecheck.Type_error err ->
     raise
       (Analysis.Diag.Failed
          { stage;
            diags =
              [ Analysis.Diag.error ~context:err.Typecheck.context ~rule:"V-TYPE" "%s"
                  err.Typecheck.message;
              ];
          }));
  Analysis.Verify.check_exn ~declared ~stage e

let with_debug_checks (debug : bool) (f : unit -> 'a) : 'a =
  if not debug then f ()
  else begin
    let saved = !Opt.Pipeline.post_stage_check in
    let saved_replan = !Runtime.Fault.post_replan_check in
    Opt.Pipeline.post_stage_check := Some verify_stage;
    Runtime.Fault.post_replan_check := Some verify_stage;
    Fun.protect
      ~finally:(fun () ->
        Opt.Pipeline.post_stage_check := saved;
        Runtime.Fault.post_replan_check := saved_replan)
      f
  end

(* Replanned chunk programs are built at {e run} time, outside any
   [with_debug_checks] scope around [compile] — so [DMLL_DEBUG=1] arms the
   recovery-path verification for the whole process, mirroring how it arms
   the optimizer-stage checks.  The same switch arms the runtime's
   prediction-vs-measurement contract (C-COMM-OVERRUN) and the span/clock
   contract (O-SPAN-CLOCK), which used to be armed by an environment read
   inside the analysis library. *)
let () =
  if debug_default then begin
    Runtime.Fault.post_replan_check := Some verify_stage;
    Analysis.Comm.validate_enabled := true;
    Analysis.Mem.validate_enabled := true
  end

(* Per-run arming of the same runtime validations, for [execute ~debug]
   without the environment switch. *)
let with_run_checks (debug : bool) (f : unit -> 'a) : 'a =
  if not debug then f ()
  else begin
    let saved_comm = !Analysis.Comm.validate_enabled in
    let saved_mem = !Analysis.Mem.validate_enabled in
    let saved_replan = !Runtime.Fault.post_replan_check in
    Analysis.Comm.validate_enabled := true;
    Analysis.Mem.validate_enabled := true;
    Runtime.Fault.post_replan_check := Some verify_stage;
    Fun.protect
      ~finally:(fun () ->
        Analysis.Comm.validate_enabled := saved_comm;
        Analysis.Mem.validate_enabled := saved_mem;
        Runtime.Fault.post_replan_check := saved_replan)
      f
  end

(** Compile a staged program under [cfg]: target from [cfg.target], debug
    verification from [cfg.debug], and — when [cfg.tracer] is set — one
    span per driver stage (cat ["compile"]), per pipeline stage
    (["pipeline"]), per rule firing (["rule"], with before/after IR
    sizes), and per partitioning-analysis step (["partition"]).

    The target shapes compilation only through its backend's
    {!Dmll_backend.Backend.plan} (resolved through the registry): the
    fusion objective that tie-breaks horizontal fusion, the machine
    model the partitioning analysis costs against, whether the global
    ILP plan selector owns fusion jointly with the Figure-3 rewrites,
    whether the liveness-driven early-free pass runs (DESIGN.md §13),
    and the final target-specific lowering. *)
let compile_with (cfg : Config.t) (source : Exp.exp) : compiled =
  let target = cfg.Config.target in
  let debug = cfg.Config.debug in
  let tracer = cfg.Config.tracer in
  let stage name f = Span.with_span ?tracer ~cat:"compile" name f in
  with_debug_checks debug @@ fun () ->
  let (module Bx : Backend.Backend.S), payload = Backends.resolve cfg in
  let plan = Bx.plan payload in
  let fusion_objective = plan.Backend.Backend.fusion_objective in
  let machine = plan.Backend.Backend.machine in
  let use_ilp = plan.Backend.Backend.wants_ilp in
  if debug then stage "verify-source" (fun () -> verify_stage "source" source);
  (* 1. target-independent optimizations, including the CPU-beneficial
     nested rules (GroupBy-Reduce and friends, §3.2).  When the global
     (ILP) plan selector owns horizontal fusion jointly with the
     Figure-3 rewrites, the generic pipeline defers fusion; otherwise
     fusion stays in the rewriter, tie-broken by the backend's
     objective (predicted communication volume on clusters). *)
  let r =
    stage "generic-optimize" (fun () ->
        Opt.Pipeline.optimize_with ?tracer
          ~extra_rules:Opt.Rules_nested.cpu_rules ?fusion_objective
          ~horizontal_fusion:(not use_ilp) source)
  in
  let generic = r.Opt.Pipeline.program in
  (* 2. partitioning analysis with stencil-triggered rewrites (§4):
     greedy per-decision search, or the global ILP plan selector *)
  let partition =
    stage "partition-analyze" (fun () ->
        if use_ilp then
          (Analysis.Plan.analyze ?tracer ?machine
             ?budget_gb:cfg.Config.mem_budget_gb generic)
            .Analysis.Plan.report
        else
          Analysis.Partition.analyze ?tracer ?fusion_objective ?machine
            generic)
  in
  let after_partition = partition.Analysis.Partition.program in
  (* 3. liveness-driven early-free (DESIGN.md §13), where the backend's
     plan asks for it *)
  let after_free, freed =
    if plan.Backend.Backend.early_free then
      let fr =
        stage "free-insertion" (fun () -> Opt.Free_insertion.run after_partition)
      in
      (fr.Opt.Free_insertion.program, fr.Opt.Free_insertion.freed <> [])
    else (after_partition, false)
  in
  (* 4. target-specific lowering, from the backend's plan *)
  let final, lower_applied =
    stage "target-lower" (fun () -> plan.Backend.Backend.lower after_free)
  in
  if debug then stage "verify-final" (fun () -> verify_stage "final" final);
  { source;
    generic;
    final;
    target;
    partition;
    applied =
      r.Opt.Pipeline.applied @ partition.Analysis.Partition.rewrites_applied
      @ (if freed then [ "free-insertion" ] else [])
      @ lower_applied;
    gpu_lowered = List.mem "row-to-column" lower_applied;
  }

(** Distinct optimizations that fired, in first-fired order (Table 2's
    "Optimizations" column). *)
let optimizations (c : compiled) : string list =
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] c.applied

(** What one execution produced: the exact value, the time (wall-clock
    for the real targets, modeled for the simulated ones), the
    simulators' per-phase breakdown and measured traffic, and the run's
    metrics ledger. *)
type run_result = {
  value : V.t;
  seconds : float;
  wall_clock : bool;  (** measured wall time vs. modeled simulator time *)
  breakdown : (string * float) list;  (** per-phase seconds (simulators) *)
  traffic : (string * float) list;  (** measured network bytes (cluster) *)
  metrics : Metrics.t;  (** this run's counters — never shared by default *)
}

(** Execute a compiled program under [cfg]: the compiled target runs with
    [cfg]'s fault/checkpoint/memory knobs and observability sinks,
    resolved through the backend registry ({!Backends.resolve}) — the
    driver holds no per-target code.  A fresh metrics ledger is created
    when [cfg.metrics] is [None]; with [cfg.debug], the runtime
    validation contracts (replan verification, C-COMM-OVERRUN,
    O-SPAN-CLOCK) are armed for the duration. *)
let execute (cfg : Config.t) (c : compiled) ~(inputs : (string * V.t) list) :
    run_result =
  let metrics =
    match cfg.Config.metrics with Some m -> m | None -> Metrics.create ()
  in
  let cfg =
    { cfg with Config.metrics = Some metrics; Config.target = c.target }
  in
  with_run_checks cfg.Config.debug @@ fun () ->
  let (module Bx : Backend.Backend.S), payload = Backends.resolve cfg in
  let ctx =
    { Backend.Backend.metrics; tracer = cfg.Config.tracer; inputs }
  in
  let r = Bx.execute payload ctx c.final in
  { value = r.Backend.Backend.value;
    seconds = r.Backend.Backend.seconds;
    wall_clock = r.Backend.Backend.wall_clock;
    breakdown = r.Backend.Backend.breakdown;
    traffic = r.Backend.Backend.traffic;
    metrics = r.Backend.Backend.metrics;
  }

(** Emit target source text from the compiled program. *)
let codegen (lang : [ `Cpp | `Cuda | `Scala ]) (c : compiled) : string =
  match lang with
  | `Cpp -> Backend.Codegen_c.emit c.final
  | `Cuda -> Backend.Codegen_cuda.emit c.final
  | `Scala -> Backend.Codegen_scala.emit c.final

(** Drive an iterative algorithm: run the compiled program [iters] times,
    rebinding inputs between iterations via [feedback] (e.g. k-means feeds
    the new centroids back as ["clusters"]).  Compilation happens once;
    only the input bindings change. *)
let iterate (c : compiled) ~(inputs : (string * V.t) list)
    ~(feedback : V.t -> (string * V.t) list) ~(iters : int) : V.t =
  if iters <= 0 then invalid_arg "Dmll.iterate: iters must be positive";
  let exe = Backend.Closure.compile c.final in
  let rec go inputs i =
    let v = exe.Backend.Closure.run ~inputs () in
    if i >= iters then v
    else
      let rebound = feedback v in
      let inputs =
        rebound
        @ List.filter (fun (n, _) -> Stdlib.not (List.mem_assoc n rebound)) inputs
      in
      go inputs (i + 1)
  in
  go inputs 1

(** Warnings from the partitioning analysis, human-readable. *)
let warnings (c : compiled) : string list =
  List.map Analysis.Partition.warning_to_string c.partition.Analysis.Partition.warnings

(** Parallel-safety diagnostics for a compiled program: the verifier's
    findings on the fully optimized IR plus the partitioning analysis's
    warnings, most severe first.  Backs [dmllc --lint]. *)
let lint (c : compiled) : Analysis.Diag.t list =
  let layout_of t =
    Analysis.Partition.layout_of t c.partition.Analysis.Partition.layouts
  in
  let fusion_missed =
    (* W-FUSION-MISSED: adjacent fusible loops the compiled program kept
       separate even though fusing them moves strictly fewer bytes.
       Costed against the compile's own machine model when its backend
       plans one. *)
    match (Backends.plan_of_target c.target).Backend.Backend.machine with
    | Some machine -> Analysis.Plan.fusion_missed_diags ~machine c.final
    | None -> Analysis.Plan.fusion_missed_diags c.final
  in
  Analysis.Diag.sort
    (Analysis.Verify.run c.final
    @ Analysis.Partition.diags c.partition
    @ Analysis.Mem.dead_array_diags ~layout_of c.final
    @ fusion_missed)

(** The DMLL compiler driver: the public entry point tying the pipeline of
    the paper together.

    {v
    stage (Dsl) → generic optimizations (fusion, CSE, motion, SoA/DFE)
               → partitioning analysis (Algorithm 1)
                  └ stencil-triggered Figure-3 rewrites
               → target lowering (CPU / NUMA / GPU / cluster)
               → execution (closure backend, domain executor, or a
                 simulated heterogeneous machine)
    v}

    A {!compiled} value carries every intermediate so tools ([dmllc]) can
    display the compilation the way the paper's figures walk through
    k-means. *)

open Dmll_ir
module V = Dmll_interp.Value
module Opt = Dmll_opt
module Analysis = Dmll_analysis
module Runtime = Dmll_runtime
module Backend = Dmll_backend
module Config = Config
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

type target = Config.target =
  | Sequential  (** closure backend, one core — the Table 2 configuration *)
  | Multicore of int  (** real OCaml domains *)
  | Numa of Runtime.Sim_numa.config  (** simulated NUMA machine *)
  | Gpu of Runtime.Sim_gpu.options  (** simulated GPU *)
  | Cluster of Runtime.Sim_cluster.config  (** simulated cluster *)
  | Proc_cluster of Runtime.Proc_cluster.config
      (** real forked worker processes (DESIGN.md §14) *)
  | Net_cluster of Runtime.Net_cluster.config
      (** TCP-attached worker processes, local or multi-host
          (DESIGN.md §16) *)

type compiled = {
  source : Exp.exp;
  generic : Exp.exp;  (** after the target-independent pipeline *)
  final : Exp.exp;  (** after partitioning-driven rewrites + lowering *)
  target : target;
  partition : Analysis.Partition.report;
  applied : string list;  (** every optimization that fired, in order *)
  gpu_lowered : bool;
}

(* ------------------------------------------------------------------ *)
(* Debug-mode verification                                              *)
(* ------------------------------------------------------------------ *)

(** In debug mode, every optimizer stage — and every individual rule
    application — re-runs the type checker and the parallel-safety
    verifier ({!Analysis.Verify}) on its result, failing fast with
    {!Analysis.Diag.Failed} on any Error-severity diagnostic, so a
    transformation bug is caught at the rule that introduced it rather
    than as a silently divergent answer.  Enabled per call
    ([compile ~debug:true]) or globally with [DMLL_DEBUG=1], read once
    here through {!Config.of_env} — the single environment reader.
    (A malformed [DMLL_FAULTS] is ignored at library load; tools that
    call [Config.of_env] themselves still fail loudly on it.) *)
let debug_default =
  (try Config.of_env () with Invalid_argument _ -> Config.default)
    .Config.debug

(* Typecheck + Verify one (possibly open) program; free symbols are
   treated as bound at their annotated types. *)
let verify_stage (stage : string) (e : Exp.exp) : unit =
  let declared = Exp.free_vars e in
  let env =
    Sym.Set.fold (fun s acc -> Sym.Map.add s (Sym.ty s) acc) declared Sym.Map.empty
  in
  (try ignore (Typecheck.infer env e)
   with Typecheck.Type_error err ->
     raise
       (Analysis.Diag.Failed
          { stage;
            diags =
              [ Analysis.Diag.error ~context:err.Typecheck.context ~rule:"V-TYPE" "%s"
                  err.Typecheck.message;
              ];
          }));
  Analysis.Verify.check_exn ~declared ~stage e

let with_debug_checks (debug : bool) (f : unit -> 'a) : 'a =
  if not debug then f ()
  else begin
    let saved = !Opt.Pipeline.post_stage_check in
    let saved_replan = !Runtime.Fault.post_replan_check in
    Opt.Pipeline.post_stage_check := Some verify_stage;
    Runtime.Fault.post_replan_check := Some verify_stage;
    Fun.protect
      ~finally:(fun () ->
        Opt.Pipeline.post_stage_check := saved;
        Runtime.Fault.post_replan_check := saved_replan)
      f
  end

(* Replanned chunk programs are built at {e run} time, outside any
   [with_debug_checks] scope around [compile] — so [DMLL_DEBUG=1] arms the
   recovery-path verification for the whole process, mirroring how it arms
   the optimizer-stage checks.  The same switch arms the runtime's
   prediction-vs-measurement contract (C-COMM-OVERRUN) and the span/clock
   contract (O-SPAN-CLOCK), which used to be armed by an environment read
   inside the analysis library. *)
let () =
  if debug_default then begin
    Runtime.Fault.post_replan_check := Some verify_stage;
    Analysis.Comm.validate_enabled := true;
    Analysis.Mem.validate_enabled := true
  end

(* Per-run arming of the same runtime validations, for [execute ~debug]
   without the environment switch. *)
let with_run_checks (debug : bool) (f : unit -> 'a) : 'a =
  if not debug then f ()
  else begin
    let saved_comm = !Analysis.Comm.validate_enabled in
    let saved_mem = !Analysis.Mem.validate_enabled in
    let saved_replan = !Runtime.Fault.post_replan_check in
    Analysis.Comm.validate_enabled := true;
    Analysis.Mem.validate_enabled := true;
    Runtime.Fault.post_replan_check := Some verify_stage;
    Fun.protect
      ~finally:(fun () ->
        Analysis.Comm.validate_enabled := saved_comm;
        Analysis.Mem.validate_enabled := saved_mem;
        Runtime.Fault.post_replan_check := saved_replan)
      f
  end

(* On cluster targets, horizontal fusion is tie-broken by predicted
   communication volume: a fusion that would force extra broadcasts (e.g.
   merging a master-only loop into a distributed one) is declined.  The
   objective is a plain closure threaded through the pipeline and the
   partitioning analysis — no global state, no set/reset dance. *)
let fusion_objective_of (target : target) : (Exp.exp -> float) option =
  match target with
  | Cluster config ->
      let machine = config.Runtime.Sim_cluster.cluster in
      Some (fun e -> Analysis.Partition.predicted_volume ~machine e)
  | _ -> None

(** Compile a staged program under [cfg]: target from [cfg.target], debug
    verification from [cfg.debug], and — when [cfg.tracer] is set — one
    span per driver stage (cat ["compile"]), per pipeline stage
    (["pipeline"]), per rule firing (["rule"], with before/after IR
    sizes), and per partitioning-analysis step (["partition"]). *)
let compile_with (cfg : Config.t) (source : Exp.exp) : compiled =
  let target = cfg.Config.target in
  let debug = cfg.Config.debug in
  let tracer = cfg.Config.tracer in
  let stage name f = Span.with_span ?tracer ~cat:"compile" name f in
  with_debug_checks debug @@ fun () ->
  let fusion_objective = fusion_objective_of target in
  let machine =
    match target with
    | Cluster config -> Some config.Runtime.Sim_cluster.cluster
    | _ -> None
  in
  (* The global (ILP) plan selector owns horizontal fusion jointly with
     the Figure-3 rewrites, so on cluster targets it runs the generic
     pipeline with horizontal fusion deferred; everywhere else fusion
     stays in the rewriter (with the comm veto threaded on clusters). *)
  let use_ilp =
    match (target, cfg.Config.plan_selector) with
    | Cluster _, Analysis.Plan.Ilp -> true
    | _ -> false
  in
  if debug then stage "verify-source" (fun () -> verify_stage "source" source);
  (* 1. target-independent optimizations, including the CPU-beneficial
     nested rules (GroupBy-Reduce and friends, §3.2) *)
  let r =
    stage "generic-optimize" (fun () ->
        Opt.Pipeline.optimize_with ?tracer
          ~extra_rules:Opt.Rules_nested.cpu_rules ?fusion_objective
          ~horizontal_fusion:(not use_ilp) source)
  in
  let generic = r.Opt.Pipeline.program in
  (* 2. partitioning analysis with stencil-triggered rewrites (§4):
     greedy per-decision search, or the global ILP plan selector *)
  let partition =
    stage "partition-analyze" (fun () ->
        if use_ilp then
          (Analysis.Plan.analyze ?tracer ?machine
             ?budget_gb:cfg.Config.mem_budget_gb generic)
            .Analysis.Plan.report
        else
          Analysis.Partition.analyze ?tracer ?fusion_objective ?machine
            generic)
  in
  let after_partition = partition.Analysis.Partition.program in
  (* 3. liveness-driven early-free (DESIGN.md §13): on cluster targets,
     insert a free marker after the last use of every let-bound
     intermediate collection, so the memory-footprint analysis — and the
     executor's actual resident set — stop charging it for the rest of
     the pipeline.  Semantics-preserving by construction (the marker sits
     strictly after the last reachable mention). *)
  let after_free, freed =
    match target with
    | Cluster _ ->
        let fr =
          stage "free-insertion" (fun () -> Opt.Free_insertion.run after_partition)
        in
        (fr.Opt.Free_insertion.program, fr.Opt.Free_insertion.freed <> [])
    | _ -> (after_partition, false)
  in
  (* 4. target-specific lowering *)
  let final, gpu_lowered =
    match target with
    | Gpu opts when opts.Runtime.Sim_gpu.row_to_column ->
        stage "gpu-lower" (fun () -> Backend.Gpu.lower after_free)
    | _ -> (after_free, false)
  in
  if debug then stage "verify-final" (fun () -> verify_stage "final" final);
  { source;
    generic;
    final;
    target;
    partition;
    applied =
      r.Opt.Pipeline.applied @ partition.Analysis.Partition.rewrites_applied
      @ (if freed then [ "free-insertion" ] else [])
      @ (if gpu_lowered then [ "row-to-column" ] else []);
    gpu_lowered;
  }

(** Compile a staged program for [target].

    Deprecated entry point, kept as a thin wrapper: the optional
    arguments are exactly [Config.default] overridden with [?target] and
    [?debug].  New code should build a {!Config.t} and call
    {!compile_with}. *)
let compile ?(target = Sequential) ?(debug = debug_default) (source : Exp.exp) :
    compiled =
  compile_with { Config.default with Config.target; debug } source

(** Distinct optimizations that fired, in first-fired order (Table 2's
    "Optimizations" column). *)
let optimizations (c : compiled) : string list =
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] c.applied

(** What one execution produced: the exact value, the time (wall-clock
    for the real targets, modeled for the simulated ones), the
    simulators' per-phase breakdown and measured traffic, and the run's
    metrics ledger. *)
type run_result = {
  value : V.t;
  seconds : float;
  wall_clock : bool;  (** measured wall time vs. modeled simulator time *)
  breakdown : (string * float) list;  (** per-phase seconds (simulators) *)
  traffic : (string * float) list;  (** measured network bytes (cluster) *)
  metrics : Metrics.t;  (** this run's counters — never shared by default *)
}

(* The runtime knobs of [cfg] overlaid onto a cluster target whose config
   left them unset — so [dmll_run --faults ... --checkpoint-every ...]
   composes with a target the caller built directly. *)
let overlay (cfg : Config.t) (t : target) : target =
  match t with
  | Cluster cc ->
      let keep a b = match a with Some _ -> a | None -> b in
      Cluster
        { cc with
          Runtime.Sim_cluster.faults =
            keep cc.Runtime.Sim_cluster.faults cfg.Config.faults;
          checkpoint_cadence =
            (if cc.Runtime.Sim_cluster.checkpoint_cadence > 0 then
               cc.Runtime.Sim_cluster.checkpoint_cadence
             else cfg.Config.checkpoint_every);
          mem_budget_gb =
            keep cc.Runtime.Sim_cluster.mem_budget_gb cfg.Config.mem_budget_gb;
          obs = keep cc.Runtime.Sim_cluster.obs cfg.Config.tracer;
          metrics = keep cc.Runtime.Sim_cluster.metrics cfg.Config.metrics;
        }
  | Proc_cluster pc ->
      let keep a b = match a with Some _ -> a | None -> b in
      Proc_cluster
        { pc with
          Runtime.Proc_cluster.faults =
            keep pc.Runtime.Proc_cluster.faults cfg.Config.faults;
          checkpoint_cadence =
            (if pc.Runtime.Proc_cluster.checkpoint_cadence > 0 then
               pc.Runtime.Proc_cluster.checkpoint_cadence
             else cfg.Config.checkpoint_every);
          obs = keep pc.Runtime.Proc_cluster.obs cfg.Config.tracer;
          metrics = keep pc.Runtime.Proc_cluster.metrics cfg.Config.metrics;
        }
  | Net_cluster nc ->
      let keep a b = match a with Some _ -> a | None -> b in
      Net_cluster
        { nc with
          Runtime.Net_cluster.faults =
            keep nc.Runtime.Net_cluster.faults cfg.Config.faults;
          obs = keep nc.Runtime.Net_cluster.obs cfg.Config.tracer;
          metrics = keep nc.Runtime.Net_cluster.metrics cfg.Config.metrics;
        }
  | t -> t

(** Execute a compiled program under [cfg]: the compiled target runs with
    [cfg]'s fault/checkpoint/memory knobs and observability sinks.  A
    fresh metrics ledger is created when [cfg.metrics] is [None]; with
    [cfg.debug], the runtime validation contracts (replan verification,
    C-COMM-OVERRUN, O-SPAN-CLOCK) are armed for the duration. *)
let execute (cfg : Config.t) (c : compiled) ~(inputs : (string * V.t) list) :
    run_result =
  let metrics =
    match cfg.Config.metrics with Some m -> m | None -> Metrics.create ()
  in
  let cfg = { cfg with Config.metrics = Some metrics } in
  let wall value seconds =
    { value; seconds; wall_clock = true; breakdown = []; traffic = []; metrics }
  in
  with_run_checks cfg.Config.debug @@ fun () ->
  match overlay cfg c.target with
  | Sequential ->
      let v, t =
        Dmll_util.Timing.time (fun () -> Backend.Closure.run ~inputs c.final)
      in
      wall v t
  | Multicore domains ->
      let checkpoint =
        if cfg.Config.checkpoint_every > 0 then
          Some (Runtime.Checkpoint.create ~cadence:cfg.Config.checkpoint_every)
        else None
      in
      let v, t =
        Dmll_util.Timing.time (fun () ->
            Runtime.Exec_domains.run ?obs:cfg.Config.tracer ~metrics ~domains
              ?faults:cfg.Config.faults ?checkpoint ~inputs c.final)
      in
      wall v t
  | Numa config ->
      let r = Runtime.Sim_numa.run ~config ~inputs c.final in
      { value = r.Runtime.Sim_common.value;
        seconds = r.Runtime.Sim_common.seconds;
        wall_clock = false;
        breakdown = r.Runtime.Sim_common.breakdown;
        traffic = r.Runtime.Sim_common.traffic;
        metrics;
      }
  | Gpu options ->
      let r = Runtime.Sim_gpu.run ~options ~inputs c.final in
      { value = r.Runtime.Sim_gpu.value;
        seconds = r.Runtime.Sim_gpu.kernel_seconds;
        wall_clock = false;
        breakdown = [];
        traffic = [];
        metrics;
      }
  | Cluster config ->
      let r = Runtime.Sim_cluster.run ~config ~inputs c.final in
      { value = r.Runtime.Sim_common.value;
        seconds = r.Runtime.Sim_common.seconds;
        wall_clock = false;
        breakdown = r.Runtime.Sim_common.breakdown;
        traffic = r.Runtime.Sim_common.traffic;
        metrics = r.Runtime.Sim_common.metrics;
      }
  | Proc_cluster config ->
      let r = Runtime.Proc_cluster.run ~config ~inputs c.final in
      { value = r.Runtime.Proc_cluster.value;
        seconds = r.Runtime.Proc_cluster.seconds;
        wall_clock = true;
        breakdown = r.Runtime.Proc_cluster.breakdown;
        traffic = [];
        metrics = r.Runtime.Proc_cluster.metrics;
      }
  | Net_cluster config ->
      let r = Runtime.Net_cluster.run ~config ~inputs c.final in
      { value = r.Runtime.Net_cluster.value;
        seconds = r.Runtime.Net_cluster.seconds;
        wall_clock = true;
        breakdown = r.Runtime.Net_cluster.breakdown;
        traffic =
          Metrics.byte_counters r.Runtime.Net_cluster.metrics
          |> List.filter (fun (k, _) ->
                 String.length k >= 4 && String.sub k 0 4 = "net_");
        metrics = r.Runtime.Net_cluster.metrics;
      }

(** Execute a compiled program.  All targets return the exact program
    value; the simulated targets additionally model time, retrievable via
    {!timed_run}.

    Deprecated entry point: equivalent to
    [(execute Config.default c ~inputs).value] (the compiled target is
    what runs; [Config.default] adds no knobs).  New code should call
    {!execute}. *)
let run (c : compiled) ~(inputs : (string * V.t) list) : V.t =
  (execute Config.default c ~inputs).value

(** Execute and return (value, simulated seconds).  For the real targets
    (Sequential / Multicore) the time is measured wall-clock.

    Deprecated entry point: projects {!execute}'s result. *)
let timed_run (c : compiled) ~(inputs : (string * V.t) list) : V.t * float =
  let r = execute Config.default c ~inputs in
  (r.value, r.seconds)

(** Emit target source text from the compiled program. *)
let codegen (lang : [ `Cpp | `Cuda | `Scala ]) (c : compiled) : string =
  match lang with
  | `Cpp -> Backend.Codegen_c.emit c.final
  | `Cuda -> Backend.Codegen_cuda.emit c.final
  | `Scala -> Backend.Codegen_scala.emit c.final

(** Drive an iterative algorithm: run the compiled program [iters] times,
    rebinding inputs between iterations via [feedback] (e.g. k-means feeds
    the new centroids back as ["clusters"]).  Compilation happens once;
    only the input bindings change. *)
let iterate (c : compiled) ~(inputs : (string * V.t) list)
    ~(feedback : V.t -> (string * V.t) list) ~(iters : int) : V.t =
  if iters <= 0 then invalid_arg "Dmll.iterate: iters must be positive";
  let exe = Backend.Closure.compile c.final in
  let rec go inputs i =
    let v = exe.Backend.Closure.run ~inputs () in
    if i >= iters then v
    else
      let rebound = feedback v in
      let inputs =
        rebound
        @ List.filter (fun (n, _) -> Stdlib.not (List.mem_assoc n rebound)) inputs
      in
      go inputs (i + 1)
  in
  go inputs 1

(** Warnings from the partitioning analysis, human-readable. *)
let warnings (c : compiled) : string list =
  List.map Analysis.Partition.warning_to_string c.partition.Analysis.Partition.warnings

(** Parallel-safety diagnostics for a compiled program: the verifier's
    findings on the fully optimized IR plus the partitioning analysis's
    warnings, most severe first.  Backs [dmllc --lint]. *)
let lint (c : compiled) : Analysis.Diag.t list =
  let layout_of t =
    Analysis.Partition.layout_of t c.partition.Analysis.Partition.layouts
  in
  let fusion_missed =
    (* W-FUSION-MISSED: adjacent fusible loops the compiled program kept
       separate even though fusing them moves strictly fewer bytes.
       Costed against the compile's own cluster model when it has one. *)
    match c.target with
    | Cluster config ->
        Analysis.Plan.fusion_missed_diags
          ~machine:config.Runtime.Sim_cluster.cluster c.final
    | _ -> Analysis.Plan.fusion_missed_diags c.final
  in
  Analysis.Diag.sort
    (Analysis.Verify.run c.final
    @ Analysis.Partition.diags c.partition
    @ Analysis.Mem.dead_array_diags ~layout_of c.final
    @ fusion_missed)

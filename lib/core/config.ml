(** Run configuration: one record for everything that used to arrive
    through scattered optional arguments, environment variables, and
    process-global state.

    A [Config.t] names the execution target, the debug-verification
    level, the fault/checkpoint/memory knobs of the elastic runtime, and
    the observability sinks (span tracer + per-run metrics ledger,
    DESIGN.md §12).  [of_env] is the {e only} place in the tree that
    reads [DMLL_*] environment variables; everything downstream takes a
    config value. *)

module Runtime = Dmll_runtime
module Span = Dmll_obs.Span
module Metrics = Dmll_obs.Metrics

type target =
  | Sequential  (** closure backend, one core — the Table 2 configuration *)
  | Multicore of int  (** real OCaml domains *)
  | Numa of Runtime.Sim_numa.config  (** modeled NUMA machine *)
  | Gpu of Runtime.Sim_gpu.options  (** modeled GPU *)
  | Cluster of Runtime.Sim_cluster.config  (** modeled cluster *)
  | Proc_cluster of Runtime.Proc_cluster.config
      (** real forked worker processes (DESIGN.md §14) *)
  | Net_cluster of Runtime.Net_cluster.config
      (** TCP-attached worker processes, local or multi-host
          (DESIGN.md §16) *)
  | Native
      (** generated OCaml compiled by [ocamlopt]: in-process Dynlink JIT
          when available, child process otherwise, both behind the
          content-addressed kernel cache (DESIGN.md §17) *)

(** How cluster compiles choose among interacting fusion / rewrite /
    partition-layout decisions (re-export of
    [Dmll_analysis.Plan.selector]): [Greedy] keeps the historical
    per-decision linear searches; [Ilp] solves the joint plan space as a
    0-1 ILP (DESIGN.md §15), falling back to greedy automatically when
    the solver exhausts its node budget or its plan would move more
    bytes than greedy's.  Only cluster-modeled targets consult this;
    every other target always uses the greedy pipeline. *)
type plan_selector = Dmll_analysis.Plan.selector = Greedy | Ilp

type t = {
  target : target;
  debug : bool;
      (** re-verify every optimizer stage and replanned chunk, and hold
          the runtime to its validation contracts (C-COMM-OVERRUN,
          O-SPAN-CLOCK) *)
  faults : Runtime.Fault.t option;
      (** fault injector for fault-capable targets; the caller keeps the
          handle, so injection statistics stay readable after the run *)
  checkpoint_every : int;
      (** snapshot cadence in spine loops ([<= 0] disables) *)
  mem_budget_gb : float option;  (** per-node memory budget override *)
  tracer : Span.t option;  (** span sink for compile and runtime spans *)
  metrics : Metrics.t option;
      (** per-run metrics ledger; {!Dmll.execute} creates a fresh one
          when [None], so two runs never share counters by accident *)
  trace_file : string option;
      (** where tools write the Chrome [trace_event] JSON ([--trace]) *)
  profile : bool;  (** tools print a self-time profile ([--profile]) *)
  plan_selector : plan_selector;
      (** joint plan selection policy for cluster targets ([Ilp] by
          default, with automatic greedy fallback) *)
  kernel_cache_dir : string option;
      (** root of the on-disk kernel cache for the [Native] target
          ([None] = the process-wide shared cache under the system temp
          dir); set per run for isolation (tests, benchmarks) *)
}

let default =
  { target = Sequential;
    debug = false;
    faults = None;
    checkpoint_every = 0;
    mem_budget_gb = None;
    tracer = None;
    metrics = None;
    trace_file = None;
    profile = false;
    plan_selector = Ilp;
    kernel_cache_dir = None;
  }

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let with_target target t = { t with target }
let with_debug debug t = { t with debug }
let with_faults faults t = { t with faults = Some faults }
let with_checkpoint_every checkpoint_every t = { t with checkpoint_every }
let with_mem_budget_gb g t = { t with mem_budget_gb = Some g }
let with_tracer tracer t = { t with tracer = Some tracer }
let with_metrics metrics t = { t with metrics = Some metrics }
let with_trace_file f t = { t with trace_file = Some f }
let with_profile profile t = { t with profile }
let with_plan_selector plan_selector t = { t with plan_selector }
let with_kernel_cache_dir d t = { t with kernel_cache_dir = Some d }

(** Ensure the config carries live observability sinks: a tracer when
    tracing or profiling was requested, and always a metrics ledger.
    Idempotent — existing handles are kept. *)
let armed (t : t) : t =
  let t =
    match t.tracer with
    | Some _ -> t
    | None ->
        if t.trace_file <> None || t.profile then
          { t with tracer = Some (Span.create ()) }
        else t
  in
  match t.metrics with
  | Some _ -> t
  | None -> { t with metrics = Some (Metrics.create ()) }

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

let truthy = function Some ("1" | "true" | "yes") -> true | _ -> false

(** The configuration the [DMLL_*] environment variables describe, on
    top of {!default}: [DMLL_DEBUG=1] sets [debug]; [DMLL_FAULTS] (same
    key=value spec as [--faults]) arms a fault injector;
    [DMLL_KERNEL_CACHE_DIR] relocates the native kernel cache.  This is
    the single environment reader in the tree; a malformed [DMLL_FAULTS]
    raises [Invalid_argument] loudly rather than silently running
    healthy. *)
let of_env () : t =
  let debug = truthy (Sys.getenv_opt "DMLL_DEBUG") in
  let faults =
    match Sys.getenv_opt "DMLL_FAULTS" with
    | None | Some "" -> None
    | Some s -> (
        match Runtime.Fault.parse s with
        | Ok spec -> Some (Runtime.Fault.create spec)
        | Error msg -> invalid_arg (Printf.sprintf "DMLL_FAULTS: %s" msg))
  in
  let kernel_cache_dir =
    match Sys.getenv_opt "DMLL_KERNEL_CACHE_DIR" with
    | None | Some "" -> None
    | some -> some
  in
  { default with debug; faults; kernel_cache_dir }

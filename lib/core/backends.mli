(** Backend resolution (DESIGN.md §17): where [Config.target] meets the
    {!Dmll_backend.Registry}.

    Declares one {!Dmll_backend.Backend.payload} constructor per
    execution target, implements and registers the built-in backend
    modules, and exposes {!resolve} — the single function the driver
    calls instead of pattern-matching targets. *)

type Dmll_backend.Backend.payload +=
  | Closure_p
  | Multicore_p of {
      domains : int;
      faults : Dmll_runtime.Fault.t option;
      checkpoint_every : int;
    }
  | Numa_p of Dmll_runtime.Sim_numa.config
  | Gpu_p of Dmll_runtime.Sim_gpu.options
  | Sim_cluster_p of {
      config : Dmll_runtime.Sim_cluster.config;
      selector : Config.plan_selector;
    }
  | Proc_p of Dmll_runtime.Proc_cluster.config
  | Net_p of Dmll_runtime.Net_cluster.config
  | Native_p of { cache : Dmll_backend.Kernel_cache.t; runs : int }

val ensure_registered : unit -> unit
(** Populate the registry with every built-in backend (idempotent).
    Anything that enumerates the registry ([dmllc --explain backends])
    must call this first; {!resolve} does so itself. *)

val id_of_target : Config.target -> string
(** The registry id serving a target ([Sequential] → ["closure"],
    [Native] → ["native"], …). *)

val cache_for : string option -> Dmll_backend.Kernel_cache.t
(** The kernel cache rooted at a directory, memoized per root so
    repeated resolves share one memory LRU ([None] = the process-wide
    shared cache). *)

val resolve :
  Config.t -> (module Dmll_backend.Backend.S) * Dmll_backend.Backend.payload
(** The backend serving [cfg.target], with the payload its [execute]
    will consume — [cfg]'s fault/checkpoint/memory knobs and
    observability sinks overlaid onto the target's own config. *)

val plan_of_target : Config.target -> Dmll_backend.Backend.plan
(** The compile-time plan for a bare target under default knobs — what
    [Dmll.lint] and other config-less consumers use. *)

(** The optimization pass manager.

    Runs the shared-memory optimization pipeline of §3 and §5 in the order
    the paper describes, to an overall fixpoint:

    {v simplify → CSE → fusion (pipeline + horizontal) → data-structure
       (unwrap / AoS→SoA / DFE) → code motion → simplify v}

    The nested-pattern rules of Figure 3 are {e not} part of this pipeline;
    they are locality transformations driven by the stencil/partitioning
    analyses and by per-device policies (see [Dmll_analysis.Stencil] and
    the core driver).  {!optimize_with} lets the driver splice them in. *)

open Dmll_ir
module Span = Dmll_obs.Span

type report = {
  program : Exp.exp;
  applied : string list;  (** rule firings, in order *)
  iterations : int;
}

(** Distinct optimization names that fired, de-duplicated, in first-fired
    order — the "Optimizations" column of Table 2. *)
let distinct_applied (r : report) : string list =
  List.fold_left
    (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
    [] r.applied

let standard_rules : Rewrite.rule list =
  Simplify.rules @ Cse.rules @ Fusion.rules @ Soa.rules @ Motion.rules

(* ------------------------------------------------------------------ *)
(* Debug-mode verification hook                                         *)
(* ------------------------------------------------------------------ *)

(** Verification hook installed by the driver in debug mode
    ([Dmll.compile ~debug:true] wires it to typecheck + the
    parallel-safety verifier, failing fast on Error-severity findings).
    When set, it is called with a stage label and the current program
    after every individual rule application and after each pipeline
    stage.  [None] (the default) costs nothing.

    The hook lives here rather than in the analysis library because the
    optimizer cannot depend on [Dmll_analysis] (the analyses are its
    clients); the driver, which sees both, closes the loop. *)
let post_stage_check : (string -> Exp.exp -> unit) option ref = ref None

let run_check stage e =
  match !post_stage_check with Some f -> f stage e | None -> ()

(* With a hook installed, every rule verifies its own (possibly open)
   rewritten sub-expression, so a transformation bug is caught at the
   exact rule that introduced it. *)
let instrument_rules (rules : Rewrite.rule list) : Rewrite.rule list =
  match !post_stage_check with
  | None -> rules
  | Some f ->
      List.map
        (fun (r : Rewrite.rule) ->
          { r with
            Rewrite.apply =
              (fun e ->
                match r.Rewrite.apply e with
                | Some e' ->
                    f ("rule:" ^ r.Rewrite.rname) e';
                    Some e'
                | None -> None);
          })
        rules

(* With a tracer armed, every rule firing becomes a span (cat ["rule"])
   carrying the node count of the rewritten sub-expression before and
   after — the per-decision attribution [dmllc --trace] renders.  A rule
   attempt that declines ([None]) records nothing. *)
let trace_rules (tracer : Span.t option) (rules : Rewrite.rule list) :
    Rewrite.rule list =
  match tracer with
  | None -> rules
  | Some tr ->
      List.map
        (fun (r : Rewrite.rule) ->
          { r with
            Rewrite.apply =
              (fun e ->
                let started_us = Span.now_us tr in
                match r.Rewrite.apply e with
                | Some e' ->
                    Span.emit_now tr ~cat:"rule" ~name:r.Rewrite.rname
                      ~args:
                        [ ("ir_before", Span.Int (Exp.node_count e));
                          ("ir_after", Span.Int (Exp.node_count e'));
                        ]
                      ~started_us ();
                    Some e'
                | None -> None);
          })
        rules

(** Optimize with the standard shared-memory pipeline plus [extra_rules]
    (e.g. a subset of [Rules_nested.all] chosen by the driver).

    [?fusion_objective] threads a communication objective into
    horizontal fusion (the driver passes the partitioning analysis's
    predicted-volume closure for cluster targets; candidates that would
    move strictly more bytes are declined, [?on_fusion_reject] observes
    each decline).  [~horizontal_fusion:false] removes horizontal fusion
    from the pipeline entirely, so a global planner
    ([Dmll_analysis.Plan]) can own the fusion decision instead of the
    rewriter.

    [?tracer] records one span per pipeline stage (cat ["pipeline"]) and
    one per rule firing (cat ["rule"]), with before/after IR sizes. *)
let optimize_with ?tracer ?(extra_rules = []) ?fusion_objective
    ?on_fusion_reject ?(horizontal_fusion = true) (e : Exp.exp) : report =
  let trace = Rewrite.new_trace () in
  let base_rules =
    match (fusion_objective, horizontal_fusion) with
    | None, true -> standard_rules
    | objective, horizontal ->
        Simplify.rules @ Cse.rules
        @ Fusion.rules_with ?objective ?on_reject:on_fusion_reject ~horizontal
            ()
        @ Soa.rules @ Motion.rules
  in
  let rules = trace_rules tracer (instrument_rules (base_rules @ extra_rules)) in
  let stage name input f =
    match tracer with
    | None -> f ()
    | Some tr ->
        let started_us = Span.now_us tr in
        let e' = f () in
        Span.emit_now tr ~cat:"pipeline" ~name
          ~args:
            [ ("ir_before", Span.Int (Exp.node_count input));
              ("ir_after", Span.Int (Exp.node_count e'));
            ]
          ~started_us ();
        e'
  in
  let rec go i e =
    if i >= 12 then (e, i)
    else
      let before = List.length trace.Rewrite.applied in
      let e =
        stage (Printf.sprintf "rewrite-fixpoint:%d" i) e (fun () ->
            Rewrite.fixpoint rules trace e)
      in
      run_check (Printf.sprintf "rewrite-fixpoint:%d" i) e;
      let e =
        stage (Printf.sprintf "soa-inputs:%d" i) e (fun () ->
            fst (Soa.soa_inputs ~trace e))
      in
      run_check (Printf.sprintf "soa-inputs:%d" i) e;
      if List.length trace.Rewrite.applied = before then (e, i + 1) else go (i + 1) e
  in
  let program, iterations = go 0 e in
  { program; applied = Rewrite.applied trace; iterations }

let optimize e = optimize_with e

(** Optimize and verify the result still type checks (used by tests and by
    [dmllc --check]); raises [Typecheck.Type_error] on a compiler bug. *)
let optimize_checked e =
  let r = optimize e in
  ignore (Typecheck.ty_of r.program);
  r

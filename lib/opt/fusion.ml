(** Multiloop fusion.

    - {e Vertical (pipeline) fusion} implements the paper's generalized
      rule (§3.1):

      {v C = Collect_s(c1)(f1)            G_s(c1&c2)(k(f1))(f2(f1))(r)
         G_C(c2)(k)(f2)(r)          -->                                v}

      A [Collect] whose only consumers are positional reads at the index of
      loops traversing it is inlined into those loops, eliminating the
      intermediate collection.  This single rule covers map-map, map-reduce,
      filter-groupBy, and every other pipeline combination.

    - {e Horizontal fusion} merges adjacent independent loops of identical
      size into one multiloop with several generators, so a single
      traversal produces several results (§3.1; k-means' two bucketReduces
      in Figure 5 are the canonical example).

    - {e Dead-generator elimination} drops generators of a multiloop whose
      results are never projected, the loop-level analogue of dead-field
      elimination. *)

open Dmll_ir
open Exp

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

(** Replace the first (pre-order) subexpression where [f] fires. *)
let replace_first (f : exp -> exp option) (e : exp) : exp option =
  let hit = ref false in
  let rec go e =
    if !hit then e
    else
      match f e with
      | Some e' ->
          hit := true;
          e'
      | None -> map_sub go e
  in
  let e' = go e in
  if !hit then Some e' else None

(** All loops anywhere in [e] whose size is [Len (Var s)]. *)
let consumer_loops_of (s : Sym.t) (e : exp) : loop list =
  List.filter
    (fun l -> alpha_equal l.size (Len (Var s)))
    (loops_of e)

(** Outermost loops of [e] (loops not nested inside another loop).  Fusing
    a producer into a {e nested} consumer would recompute it once per outer
    iteration, so only outermost consumers are eligible. *)
let outer_loops (e : exp) : loop list =
  let acc = ref [] in
  let rec go e =
    match e with
    | Loop l -> acc := l :: !acc
    | _ -> ignore (map_sub (fun s -> go s; s) e)
  in
  go e;
  List.rev !acc

(** Outermost loops whose size is [Len (Var s)] or, when the producer is
    unconditional so its length statically equals [psize], any outermost
    loop of size alpha-equal to [psize] (constant sizes survive the
    len-of-collect simplification). *)
let consumer_loops_of_sized (s : Sym.t) ~(psize : exp) ~(unconditional : bool)
    (e : exp) : loop list =
  List.filter
    (fun l ->
      alpha_equal l.size (Len (Var s))
      || (unconditional && alpha_equal l.size psize))
    (outer_loops e)

(** Within consumer loop [l], is every use of [s] a positional read
    [Read (Var s, Var l.idx)]?  ([Len (Var s)] occurrences inside the loop
    body are disallowed; the loop's own size node is not part of the
    census.) *)
let positional_only (s : Sym.t) (l : loop) : bool =
  let rec ok e =
    match e with
    | Read (Var s', Var j) when Sym.equal s s' -> Sym.equal j l.idx
    | Read (Var s', _) when Sym.equal s s' -> false (* non-positional index *)
    | Var s' when Sym.equal s s' -> false (* bare use, incl. Len (Var s) *)
    | _ -> fold_sub (fun acc sub -> acc && ok sub) true e
  in
  let parts g =
    let ps = List.filter_map Fun.id [ gen_cond g; Some (gen_value g); gen_key g ] in
    match g with
    | Reduce { rfun; init; _ } | BucketReduce { rfun; init; _ } -> rfun :: init :: ps
    | _ -> ps
  in
  List.for_all (fun g -> List.for_all ok (parts g)) l.gens

(** Number of occurrences of [Var s] in [e] that are NOT of the form
    [Read (Var s, _)] or [Len (Var s)] at the top of the occurrence. *)
let rec irregular_uses (s : Sym.t) (e : exp) : int =
  match e with
  | Read (Var s', i) when Sym.equal s s' -> irregular_uses s i
  | Len (Var s') when Sym.equal s s' -> 0
  | Var s' when Sym.equal s s' -> 1
  | _ -> fold_sub (fun acc sub -> acc + irregular_uses s sub) 0 e

(* ------------------------------------------------------------------ *)
(* Vertical fusion                                                      *)
(* ------------------------------------------------------------------ *)

(* Inline producer value [f1] (with producer index [pidx]) at consumer
   index [cidx]: a fresh copy with pidx renamed. *)
let inline_value ~pidx ~cidx f1 = refresh_binders (subst1 pidx (Var cidx) f1)

let fuse_into ~(s : Sym.t) ~(pidx : Sym.t) ~(psize : exp) ~(c1 : exp option)
    ~(f1 : exp) (l : loop) : loop =
  let cidx = l.idx in
  (* rewrite every positional read of s into an inlined copy of f1 *)
  let rec rw e =
    match e with
    | Read (Var s', Var j) when Sym.equal s s' && Sym.equal j cidx ->
        inline_value ~pidx ~cidx f1
    | _ -> map_sub rw e
  in
  let rw_gen g =
    let g = map_gen_parts rw g in
    match g with
    | Reduce r -> Reduce { r with rfun = rw r.rfun }
    | BucketReduce r -> BucketReduce { r with rfun = rw r.rfun }
    | g -> g
  in
  let conj c2 =
    match (c1, c2) with
    | None, c2 -> c2
    | Some c1, None -> Some (refresh_binders (subst1 pidx (Var cidx) c1))
    | Some c1, Some c2 ->
        Some
          (Prim (Prim.And, [ refresh_binders (subst1 pidx (Var cidx) c1); c2 ]))
  in
  let with_cond g =
    match g with
    | Collect c -> Collect { c with cond = conj c.cond }
    | Reduce r -> Reduce { r with cond = conj r.cond }
    | BucketCollect c -> BucketCollect { c with cond = conj c.cond }
    | BucketReduce r -> BucketReduce { r with cond = conj r.cond }
  in
  { size = refresh_binders psize; idx = cidx; gens = List.map (fun g -> with_cond (rw_gen g)) l.gens }

(** How large may a producer body be before we refuse to duplicate it into
    multiple consumers?  A single consumer always fuses. *)
let dup_threshold = 16

let vertical : Rewrite.rule =
  { rname = "pipeline-fusion";
    apply =
      (function
      | Let (s, Loop { size = psize; idx = pidx; gens = [ Collect { cond = c1; value = f1 } ] }, body)
        when Rewrite.pure f1
             && (match c1 with None -> true | Some c -> Rewrite.pure c)
             && Rewrite.pure psize ->
          let consumers =
            consumer_loops_of_sized s ~psize ~unconditional:(c1 = None) body
          in
          (* all uses of s must live inside those outermost consumers *)
          let uses_in_consumers =
            List.fold_left (fun acc l -> acc + count_occ s (Loop l)) 0 consumers
          in
          if consumers = [] then None
          else if count_occ s body <> uses_in_consumers then None
          else if not (List.for_all (positional_only s) consumers) then None
          else if irregular_uses s body > 0 then None
          else if
            (* every Len (Var s) in the body must be a consumer-loop size
               node; equivalently the count of Len(Var s) equals the count
               of consumers (sizes) since positional_only excludes Lens
               inside loop bodies *)
            List.length consumers > 1 && node_count f1 > dup_threshold
          then None
          else
            let n_lens =
              fold
                (fun acc e ->
                  match e with Len (Var s') when Sym.equal s s' -> acc + 1 | _ -> acc)
                0 body
            in
            let len_sized_consumers =
              List.length
                (List.filter (fun l -> alpha_equal l.size (Len (Var s))) consumers)
            in
            if n_lens <> len_sized_consumers then None
            else
              (* replace each consumer loop with its fused version *)
              let body' =
                List.fold_left
                  (fun acc l ->
                    match
                      replace_first
                        (function
                          | Loop l' when l' == l ->
                              Some (Loop (fuse_into ~s ~pidx ~psize ~c1 ~f1 l))
                          | _ -> None)
                        acc
                    with
                    | Some acc' -> acc'
                    | None -> acc)
                  body consumers
              in
              if occurs s body' then None else Some body'
      | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Horizontal fusion                                                    *)
(* ------------------------------------------------------------------ *)

(** Communication tie-break for horizontal fusion.  The driver passes
    the partitioning analysis's predicted-volume objective for cluster
    targets ({!horizontal_with}); a fusion candidate that would move
    {e more} bytes than the unfused pair is then declined: merging a
    master-only loop into a distributed one forces broadcasts of its
    inputs, which can dwarf the saved traversal.  Without an objective
    fusion is unconditional — shared-memory targets have no
    communication to lose.  The closure type lives here (not a concrete
    analysis call) so [dmll_opt] stays below [dmll_analysis] in the
    library order; only the closure crosses. *)
type objective = exp -> float

(* Does [objective] veto replacing [before] with [after]?  Strict
   increase only: equal-volume fusions keep firing, preserving the
   shared-memory behavior whenever communication is unaffected. *)
let objective_vetoes ?on_reject (objective : objective) ~(before : exp)
    ~(after : exp) : bool =
  let vb = objective before and va = objective after in
  if va > vb then begin
    Option.iter (fun f -> f ()) on_reject;
    Logs.debug (fun m ->
        m "horizontal-fusion declined: predicted comm %.0fB -> %.0fB" vb va);
    true
  end
  else false

(* Substitute the index of loop [l] by [idx] in all generator parts. *)
let retarget_gens ~(from_idx : Sym.t) ~(to_idx : Sym.t) (gens : gen list) : gen list =
  let rw e = refresh_binders (subst1 from_idx (Var to_idx) e) in
  List.map
    (fun g ->
      let g = map_gen_parts rw g in
      match g with
      | Reduce r -> Reduce { r with rfun = rw r.rfun }
      | BucketReduce r -> BucketReduce { r with rfun = rw r.rfun }
      | g -> g)
    gens

(* Bind [s] (the original result of a loop with [n] generators) out of the
   fused tuple starting at generator offset [off]. *)
let rebind_result (fused : Sym.t) (s : Sym.t) ~(off : int) ~(n : int) (body : exp) : exp =
  let projs = List.init n (fun k -> Proj (Var fused, off + k)) in
  let bound = match projs with [ p ] -> p | ps -> Tuple ps in
  Let (s, bound, body)

(** The horizontal-fusion rule, parameterized by an optional
    communication [objective] (and an [on_reject] observer counting the
    candidates the objective declined).  {!horizontal} below is the
    unconditional shared-memory instance. *)
let horizontal_with ?(objective : objective option) ?on_reject () :
    Rewrite.rule =
  { rname = "horizontal-fusion";
    apply =
      (function
      | Let (s1, Loop l1, Let (s2, Loop l2, body)) as before
        when alpha_equal l1.size l2.size
             && Rewrite.pure l1.size
             && not (Sym.Set.mem s1 (free_vars (Loop l2)))
             && Rewrite.pure (Loop l1)
             && Rewrite.pure (Loop l2) ->
          let n1 = List.length l1.gens and n2 = List.length l2.gens in
          let gens2 = retarget_gens ~from_idx:l2.idx ~to_idx:l1.idx l2.gens in
          let fused_loop = Loop { size = l1.size; idx = l1.idx; gens = l1.gens @ gens2 } in
          let res_tys =
            match Typecheck.check_closed fused_loop with
            | Ok (Types.Tup ts) -> Some ts
            | Ok t -> Some [ t ]
            | Error _ -> (
                (* free program variables: infer with declared types *)
                try
                  match
                    Typecheck.infer
                      (Sym.Set.fold
                         (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
                         (free_vars fused_loop) Sym.Map.empty)
                      fused_loop
                  with
                  | Types.Tup ts -> Some ts
                  | t -> Some [ t ]
                with Typecheck.Type_error _ -> None)
          in
          (match res_tys with
          | None -> None
          | Some tys ->
              let fused = Sym.fresh ~name:"fz" (Types.Tup tys) in
              let after =
                Let
                  ( fused,
                    fused_loop,
                    rebind_result fused s1 ~off:0 ~n:n1
                      (rebind_result fused s2 ~off:n1 ~n:n2 body) )
              in
              let vetoed =
                match objective with
                | None -> false
                | Some obj -> objective_vetoes ?on_reject obj ~before ~after
              in
              if vetoed then None else Some after)
      | _ -> None);
  }

let horizontal : Rewrite.rule = horizontal_with ()

(* Float non-loop bindings above loop bindings so that independent loops
   become adjacent in the let-spine and horizontal fusion can see them. *)
let let_float : Rewrite.rule =
  { rname = "let-float";
    apply =
      (function
      | Let (s1, (Loop _ as l), Let (x, e, rest))
        when loop_free e
             && Rewrite.pure e
             && Rewrite.pure l
             && not (Sym.Set.mem s1 (free_vars e)) ->
          Some (Let (x, e, Let (s1, l, rest)))
      | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Dead-generator elimination                                           *)
(* ------------------------------------------------------------------ *)

let dead_gen : Rewrite.rule =
  { rname = "dead-generator";
    apply =
      (function
      | Let (s, Loop ({ gens; _ } as l), body)
        when List.length gens > 1 && Rewrite.pure (Loop l) ->
          (* all uses must be projections *)
          let n = List.length gens in
          let rec proj_only e =
            match e with
            | Proj (Var s', _) when Sym.equal s s' -> true
            | Var s' when Sym.equal s s' -> false
            | _ -> fold_sub (fun acc sub -> acc && proj_only sub) true e
          in
          if not (proj_only body) then None
          else
            let used = Array.make n false in
            ignore
              (fold
                 (fun () e ->
                   match e with
                   | Proj (Var s', k) when Sym.equal s s' && k < n -> used.(k) <- true
                   | _ -> ())
                 () body);
            let live = Array.to_list used |> List.filter (fun b -> b) |> List.length in
            if live = n || live = 0 then None
            else
              let keep = List.filteri (fun k _ -> used.(k)) gens in
              let remap = Array.make n (-1) in
              let c = ref 0 in
              Array.iteri
                (fun k u ->
                  if u then begin
                    remap.(k) <- !c;
                    incr c
                  end)
                used;
              let keep_tys =
                match Sym.ty s with
                | Types.Tup ts -> List.filteri (fun k _ -> used.(k)) ts
                | _ -> []
              in
              if List.length keep_tys <> live then None
              else if live = 1 then
                (* loop result is no longer a tuple; rebind with new sym *)
                let s' = Sym.fresh ~name:(Sym.name s) (List.hd keep_tys) in
                let rec rw e =
                  match e with
                  | Proj (Var sv, _) when Sym.equal sv s -> Var s'
                  | _ -> map_sub rw e
                in
                Some (Let (s', Loop { l with gens = keep }, rw body))
              else
                let s' = Sym.fresh ~name:(Sym.name s) (Types.Tup keep_tys) in
                let rec rw e =
                  match e with
                  | Proj (Var sv, k) when Sym.equal sv s -> Proj (Var s', remap.(k))
                  | _ -> map_sub rw e
                in
                Some (Let (s', Loop { l with gens = keep }, rw body))
      | _ -> None);
  }

(* Duplicate-generator elimination: horizontal fusion of rule-generated
   multiloops (Q1's per-aggregate rewriting) can produce alpha-equal
   generators; keep one and remap projections. *)
let dedup_gen : Rewrite.rule =
  { rname = "dedup-generator";
    apply =
      (function
      | Let (s, Loop ({ gens; _ } as l), body)
        when List.length gens > 1 && Rewrite.pure (Loop l) ->
          let n = List.length gens in
          let rec proj_only e =
            match e with
            | Proj (Var s', _) when Sym.equal s s' -> true
            | Var s' when Sym.equal s s' -> false
            | _ -> fold_sub (fun acc sub -> acc && proj_only sub) true e
          in
          if not (proj_only body) then None
          else begin
            let arr = Array.of_list gens in
            let gen_equal g1 g2 =
              (* compare as single-gen loops to get binder-aware equality *)
              alpha_equal
                (Loop { l with gens = [ g1 ] })
                (Loop { l with gens = [ g2 ] })
            in
            let remap = Array.make n (-1) in
            let keep = ref [] in
            let kept = ref 0 in
            Array.iteri
              (fun i g ->
                let rec find j =
                  if j >= i then None
                  else if gen_equal arr.(j) g then Some remap.(j)
                  else find (j + 1)
                in
                match find 0 with
                | Some k -> remap.(i) <- k
                | None ->
                    remap.(i) <- !kept;
                    incr kept;
                    keep := g :: !keep)
              arr;
            if !kept = n then None
            else begin
              let keep = List.rev !keep in
              let keep_tys =
                match Sym.ty s with
                | Types.Tup ts ->
                    let t_arr = Array.of_list ts in
                    List.init !kept (fun k ->
                        (* type of the first original index mapping to k *)
                        let rec first i = if remap.(i) = k then t_arr.(i) else first (i + 1) in
                        first 0)
                | t -> [ t ]
              in
              if !kept = 1 then begin
                let s' = Sym.fresh ~name:(Sym.name s) (List.hd keep_tys) in
                let rec rw e =
                  match e with
                  | Proj (Var sv, _) when Sym.equal sv s -> Var s'
                  | _ -> map_sub rw e
                in
                Some (Let (s', Loop { l with gens = keep }, rw body))
              end
              else begin
                let s' = Sym.fresh ~name:(Sym.name s) (Types.Tup keep_tys) in
                let rec rw e =
                  match e with
                  | Proj (Var sv, k) when Sym.equal sv s && k < n ->
                      Proj (Var s', remap.(k))
                  | _ -> map_sub rw e
                in
                Some (Let (s', Loop { l with gens = keep }, rw body))
              end
            end
          end
      | _ -> None);
  }

let rules = [ vertical; let_float; horizontal; dead_gen; dedup_gen ]

(** The fusion rule set with an explicitly threaded horizontal-fusion
    policy: [objective] installs the communication veto (cluster
    targets), [horizontal:false] removes horizontal fusion entirely so a
    downstream planner ({!Dmll_analysis.Plan}) can own the decision.
    With neither, identical to {!rules}. *)
let rules_with ?objective ?on_reject ?(horizontal = true) () :
    Rewrite.rule list =
  [ vertical; let_float ]
  @ (if horizontal then [ horizontal_with ?objective ?on_reject () ] else [])
  @ [ dead_gen; dedup_gen ]

let run ?(trace = Rewrite.new_trace ()) e = Rewrite.fixpoint rules trace e

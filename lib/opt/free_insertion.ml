(** Liveness-driven early-free insertion (DESIGN.md §13).

    The memory-footprint analysis ({!Dmll_analysis.Mem}) models a
    collection as resident from its binding to its free — or, absent a
    free, to the end of the program.  This pass computes last uses over
    the let-spine ({!Dmll_ir.Exp.collection_live_ranges}, which follows
    aliases through fusion-group tuples) and inserts the early-free
    marker ({!Dmll_ir.Exp.free_array}) right after the last step that can
    reach each let-bound collection, so intermediates stop being charged
    against the node budget for the rest of the pipeline.

    Only let-bound storage roots are freed: named inputs belong to the
    caller, aliases own nothing, and anything alive into the result
    position is the program's answer.  The pass is idempotent — storage
    that already has a marker is left alone — and semantics-preserving by
    construction: the marker sits after the last {e textual} occurrence
    of the root or any of its aliases, so no later step can evaluate it
    (the QCheck bit-identity property in [test/test_mem.ml] holds the
    pass to that on random programs). *)

open Dmll_ir

type report = {
  program : Exp.exp;
  freed : Sym.t list;  (** storage roots given an early free, spine order *)
}

let run (e : Exp.exp) : report =
  let last_pos = List.length (Exp.spine e) - 1 in
  let frees =
    List.filter_map
      (fun (r : Exp.live_range) ->
        match r.Exp.storage with
        | Exp.Sinput _ -> None
        | Exp.Ssym s ->
            if r.Exp.freed_at <> None || r.Exp.last_use >= last_pos then None
            else Some (s, r.Exp.last_use))
      (Exp.collection_live_ranges e)
  in
  if frees = [] then { program = e; freed = [] }
  else begin
    let at i =
      List.filter_map (fun (s, p) -> if p = i then Some s else None) frees
    in
    let wrap syms body =
      List.fold_right
        (fun s acc ->
          Exp.Let (Sym.fresh ~name:"free" Types.Unit, Exp.free_array s, acc))
        syms body
    in
    let rec rebuild i e =
      match e with
      | Exp.Let (s, rhs, body) -> Exp.Let (s, rhs, wrap (at i) (rebuild (i + 1) body))
      | e -> e (* the result position never takes a free after it *)
    in
    { program = rebuild 0 e; freed = List.map fst frees }
  end

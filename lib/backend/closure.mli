(** Closure backend: compile the multiloop IR to nested OCaml closures
    over typed scalar frames — the in-process execution engine behind
    the [closure] backend (Table 2's single-core configuration).

    Scalars live in unboxed [float]/[int] frame arrays; only
    collections and tuples are boxed.  Compilation is separated from
    execution so one compile amortizes over many runs. *)

module V = Dmll_interp.Value

exception Compile_error of string

type compiled = {
  run : ?inputs:(string * V.t) list -> unit -> V.t;
      (** execute with input bindings; a missing binding for a used
          input raises {!Compile_error} *)
  frame_sizes : int * int * int;
      (** (float, int, boxed) slot counts, for diagnostics *)
}

val compile : Dmll_ir.Exp.exp -> compiled
(** Compile a program once; [run] may be invoked many times (e.g. once
    per benchmark repetition) with different inputs. *)

val run : ?inputs:(string * V.t) list -> Dmll_ir.Exp.exp -> V.t
(** One-shot convenience: [compile] then [run]. *)

(** GPU backend: kernel extraction and device-specific lowering.

    There is no CUDA device in this environment, so the "kernel" this
    backend produces is a descriptor consumed by the GPU device model
    ([Dmll_runtime.Sim_gpu]): element count, per-element cost, reduction
    kind, and memory-coalescing classification.  The two structural rules
    the paper's Figure 6 rests on are encoded here:

    - only {e scalar} reduction temporaries fit in shared memory; a
      vector-typed reduction spills to global memory and pays
      [gpu.vector_reduce_penalty] (paper §6: "DMLL's CUDA code generator
      can only use local shared memory for reduction temporaries when they
      have a fixed size");
    - adjacent threads must read adjacent addresses for the memory
      controller to coalesce requests; a row-major row sweep
      ([x(i*cols+j)] parallelized over [i]) is uncoalesced unless the
      input is transposed on transfer (§6: "the input matrix must be
      transposed").

    [lower] applies the Row-to-Column Reduce rule before extraction, the
    always-beneficial GPU policy of §3.2. *)

open Dmll_ir
open Exp
module Stencil = Dmll_analysis.Stencil
module Cost = Dmll_analysis.Cost

type reduce_kind =
  | No_reduce  (** pure collects: embarrassingly parallel writes *)
  | Scalar_reduce  (** shared-memory tree reduction *)
  | Vector_reduce  (** non-scalar temporaries: global-memory reduction *)

type access = Coalesced | Strided | Gather

type kernel = {
  kname : string;
  size : exp;  (** outer loop extent = thread count *)
  per_elem : Cost.t;
  reduce : reduce_kind;
  access : access;
  inputs : Stencil.target list;
}

(* Scalar-ness of a generator's accumulator. *)
let gen_reduce_kind (l : loop) : reduce_kind =
  let value_ty v =
    try
      Some
        (Typecheck.infer
           (Sym.Set.fold
              (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
              (free_vars v) Sym.Map.empty)
           v)
    with Typecheck.Type_error _ -> None
  in
  let kind_of g =
    match g with
    | Collect _ -> No_reduce
    | Reduce { value; _ } | BucketReduce { value; _ } -> (
        match value_ty value with
        | Some t when Types.is_scalar t -> Scalar_reduce
        | _ -> Vector_reduce)
    | BucketCollect _ -> Vector_reduce (* dynamic buckets need global memory *)
  in
  List.fold_left
    (fun acc g ->
      match (acc, kind_of g) with
      | Vector_reduce, _ | _, Vector_reduce -> Vector_reduce
      | Scalar_reduce, _ | _, Scalar_reduce -> Scalar_reduce
      | No_reduce, No_reduce -> No_reduce)
    No_reduce l.gens

(* Memory-access classification from the read stencils of the loop.
   [transposed] says the host transposed row-major inputs on transfer. *)
let gen_access ~(transposed : bool) (l : loop) : access =
  (* only global collections (named inputs) live in device global memory;
     loop-local temporaries sit in registers/shared memory *)
  let stencils =
    List.filter
      (fun (t, _) -> match t with Stencil.Tinput _ -> true | Stencil.Tsym _ -> false)
      (Stencil.of_loop l)
  in
  (* the dominant input is the one actually swept by the loop *)
  let worst =
    List.fold_left
      (fun acc (_, s) ->
        let sev = function
          | Stencil.Const -> 0
          | Stencil.All -> 1 (* broadcast: cached, reasonably fast *)
          | Stencil.Interval | Stencil.Interval_shifted _ -> 2
          | Stencil.Unknown -> 3
        in
        if sev s > sev acc then s else acc)
      Stencil.Const stencils
  in
  match worst with
  | Stencil.Unknown -> Gather
  | Stencil.Interval | Stencil.Interval_shifted _ ->
      (* element-stencil accesses are contiguous across threads; row-block
         stencils are strided unless the input was transposed.  We
         distinguish them by re-deriving the affine coefficient: a row
         sweep has an inner loop consuming the stride. *)
      let has_inner_sweep =
        List.exists
          (fun g -> exists (function Loop _ -> true | _ -> false) (gen_value g))
          l.gens
      in
      if has_inner_sweep && not transposed then Strided else Coalesced
  | Stencil.All | Stencil.Const -> Coalesced

(** Extract one kernel per outer multiloop. *)
let kernels_of ?(transposed = false) ?(eval_size = fun _ -> None) (e : exp) :
    kernel list =
  List.mapi
    (fun i (l : loop) ->
      { kname = Printf.sprintf "kernel_%d" i;
        size = l.size;
        per_elem = Cost.per_iter ~eval_size ~default_size:16 l;
        reduce = gen_reduce_kind l;
        access = gen_access ~transposed l;
        inputs = List.map fst (Stencil.of_loop l);
      })
    (Stencil.outer_loops e)

(** GPU lowering: apply Row-to-Column Reduce everywhere it matches — the
    paper applies it "always ... when possible since it enables utilizing
    shared memory" (§3.2). Returns the lowered program and whether the rule
    fired. *)
let lower (e : exp) : exp * bool =
  let module R = Dmll_opt.Rewrite in
  let trace = R.new_trace () in
  let e' = R.fixpoint [ Dmll_opt.Rules_nested.row_to_column ] trace e in
  let fired = R.fired trace "row-to-column" in
  (* re-run the standard pipeline so the new loop nest re-fuses *)
  let e' =
    if fired then (Dmll_opt.Pipeline.optimize e').Dmll_opt.Pipeline.program else e'
  in
  (e', fired)

let reduce_kind_to_string = function
  | No_reduce -> "none"
  | Scalar_reduce -> "scalar(shared-mem)"
  | Vector_reduce -> "vector(global-mem)"

let access_to_string = function
  | Coalesced -> "coalesced"
  | Strided -> "strided"
  | Gather -> "gather"

let pp_kernel fmt (k : kernel) =
  Fmt.pf fmt "%s: reduce=%s access=%s cost=%a" k.kname
    (reduce_kind_to_string k.reduce)
    (access_to_string k.access)
    Cost.pp k.per_elem

(** Native backend, stage 1: emit a standalone OCaml program from
    optimized DMLL IR.

    This plays the role of Delite's C++ code generator played in the paper
    — and unlike {!Codegen_c} it is actually {e compiled and executed}
    (by {!Native}, via [ocamlopt]), giving Table 2 a genuinely native DMLL
    column.  Emission is {e typed}: IR [Float]/[Int] arrays become OCaml
    [float array]/[int array], tuples become OCaml tuples, multiloops
    become [for] loops with unboxed accumulators — the code a careful
    human would write.

    The generated program reads its inputs from a marshalled file (the
    [value] type below structurally mirrors [Dmll_interp.Value.t], so
    [Marshal] round-trips between host and program), times [runs]
    executions of the program body, prints the median, and marshals the
    result back. *)

open Dmll_ir
open Exp

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

(* The OCaml type realizing an IR type.  Structs stay as boxed [value]
   (they only survive in un-optimized programs). *)
let rec oty : Types.ty -> string = function
  | Types.Unit -> "unit"
  | Types.Bool -> "bool"
  | Types.Int -> "int"
  | Types.Float -> "float"
  | Types.Str -> "string"
  | Types.Struct _ -> "value"
  | Types.Arr t -> Printf.sprintf "(%s) array" (oty t)
  | Types.Tup ts -> "(" ^ String.concat " * " (List.map oty ts) ^ ")"
  | Types.Map (k, v) -> Printf.sprintf "((%s), (%s)) bucket" (oty k) (oty v)

(* A dummy OCaml value of the type, for array initialization. *)
let rec dummy : Types.ty -> string = function
  | Types.Unit -> "()"
  | Types.Bool -> "false"
  | Types.Int -> "0"
  | Types.Float -> "0.0"
  | Types.Str -> "\"\""
  | Types.Struct _ -> "Vunit"
  | Types.Arr _ -> "[||]"
  | Types.Tup ts -> "(" ^ String.concat ", " (List.map dummy ts) ^ ")"
  | Types.Map (k, v) ->
      Printf.sprintf "((empty_bucket ()) : ((%s), (%s)) bucket)" (oty k) (oty v)

(* Unwrap a [value] into the typed representation (for inputs). *)
let rec unwrap (ty : Types.ty) : string =
  match ty with
  | Types.Unit -> "(fun _ -> ())"
  | Types.Bool -> "(function Vbool b -> b | _ -> failwith \"bool\")"
  | Types.Int -> "(function Vint i -> i | _ -> failwith \"int\")"
  | Types.Float -> "(function Vfloat f -> f | _ -> failwith \"float\")"
  | Types.Str -> "(function Vstr s -> s | _ -> failwith \"str\")"
  | Types.Struct _ -> "(fun v -> v)"
  | Types.Arr Types.Float ->
      "(function Varr (Fa a) -> a | Varr (Ga [||]) -> [||] | _ -> failwith \"farr\")"
  | Types.Arr Types.Int ->
      "(function Varr (Ia a) -> a | Varr (Ga [||]) -> [||] | _ -> failwith \"iarr\")"
  | Types.Arr t ->
      Printf.sprintf
        "(function Varr (Ga a) -> Array.map %s a | Varr (Fa a) -> Array.map (fun f -> %s (Vfloat f)) a | Varr (Ia a) -> Array.map (fun i -> %s (Vint i)) a | _ -> failwith \"arr\")"
        (unwrap t) (unwrap t) (unwrap t)
  | Types.Tup ts ->
      let binds =
        List.mapi (fun i t -> Printf.sprintf "%s vs.(%d)" (unwrap t) i) ts
      in
      Printf.sprintf "(function Vtup vs -> (%s) | _ -> failwith \"tup\")"
        (String.concat ", " binds)
  | Types.Map (k, v) ->
      Printf.sprintf
        "(function Vmap m -> make_bucket (Array.map %s m.mkeys) (Array.map %s m.mvals) | _ -> failwith \"map\")"
        (unwrap k) (unwrap v)

(* Wrap the typed representation back into a [value] (for the result). *)
let rec wrap (ty : Types.ty) : string =
  match ty with
  | Types.Unit -> "(fun () -> Vunit)"
  | Types.Bool -> "(fun b -> Vbool b)"
  | Types.Int -> "(fun i -> Vint i)"
  | Types.Float -> "(fun f -> Vfloat f)"
  | Types.Str -> "(fun s -> Vstr s)"
  | Types.Struct _ -> "(fun v -> v)"
  | Types.Arr Types.Float -> "(fun a -> Varr (Fa a))"
  | Types.Arr Types.Int -> "(fun a -> Varr (Ia a))"
  | Types.Arr t -> Printf.sprintf "(fun a -> Varr (Ga (Array.map %s a)))" (wrap t)
  | Types.Tup ts ->
      let names = List.mapi (fun i _ -> Printf.sprintf "w%d" i) ts in
      Printf.sprintf "(fun (%s) -> Vtup [| %s |])" (String.concat ", " names)
        (String.concat "; "
           (List.map2 (fun n t -> Printf.sprintf "%s %s" (wrap t) n) names ts))
  | Types.Map (k, v) ->
      Printf.sprintf
        "(fun b -> Vmap { mkeys = Array.map %s b.bkeys; mvals = Array.map %s b.bvals })" (wrap k)
        (wrap v)

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

type em = { mutable buf : Buffer.t; mutable indent : int; mutable tmp : int }

let new_em () = { buf = Buffer.create 4096; indent = 1; tmp = 0 }

let line em fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string em.buf (String.make (2 * em.indent) ' ');
      Buffer.add_string em.buf s;
      Buffer.add_char em.buf '\n')
    fmt

let fresh em p =
  em.tmp <- em.tmp + 1;
  Printf.sprintf "%s_%d" p em.tmp

let sym_name s =
  (* IR names may be capitalized (the rules bind "H", "R"): lowercase them
     so they are OCaml value identifiers *)
  Printf.sprintf "%s_%d" (String.uncapitalize_ascii (Sym.name s)) (Sym.id s)

let mangle_input name =
  "in_"
  ^ String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

let ty_of_exp e =
  Typecheck.infer
    (Sym.Set.fold
       (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
       (free_vars e) Sym.Map.empty)
    e

let fconst f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* parenthesize negatives (and -0.0): a bare leading [-] would parse
       as subtraction in argument position *)
    let s = Printf.sprintf "%.1f" f in
    if s.[0] = '-' then "(" ^ s ^ ")" else s
  else if Float.is_nan f then "Float.nan"
  else if f = Float.infinity then "Float.infinity"
  else if f = Float.neg_infinity then "Float.neg_infinity"
  else Printf.sprintf "(Int64.float_of_bits (%LdL))" (Int64.bits_of_float f)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let prim_ocaml (p : Prim.t) (ty_a : Types.ty) (args : string list) : string =
  let a () = List.nth args 0 and b () = List.nth args 1 in
  let cmp op =
    (* restrict the polymorphic comparison to the operand type so ocamlopt
       specializes it; floats use native compares (no NaN in our data) *)
    match ty_a with
    | Types.Int | Types.Bool | Types.Float | Types.Str ->
        Printf.sprintf "((%s : %s) %s %s)" (a ()) (oty ty_a) op (b ())
    | _ -> Printf.sprintf "(compare %s %s %s 0)" (a ()) (b ()) op
  in
  match p with
  | Prim.Add -> Printf.sprintf "(%s + %s)" (a ()) (b ())
  | Sub -> Printf.sprintf "(%s - %s)" (a ()) (b ())
  | Mul -> Printf.sprintf "(%s * %s)" (a ()) (b ())
  | Div -> Printf.sprintf "(%s / %s)" (a ()) (b ())
  | Mod -> Printf.sprintf "(%s mod %s)" (a ()) (b ())
  | Neg -> Printf.sprintf "(- %s)" (a ())
  | Min -> Printf.sprintf "(min (%s : int) %s)" (a ()) (b ())
  | Max -> Printf.sprintf "(max (%s : int) %s)" (a ()) (b ())
  | Fadd -> Printf.sprintf "(%s +. %s)" (a ()) (b ())
  | Fsub -> Printf.sprintf "(%s -. %s)" (a ()) (b ())
  | Fmul -> Printf.sprintf "(%s *. %s)" (a ()) (b ())
  | Fdiv -> Printf.sprintf "(%s /. %s)" (a ()) (b ())
  | Fneg -> Printf.sprintf "(-. %s)" (a ())
  | Fmin -> Printf.sprintf "(Float.min %s %s)" (a ()) (b ())
  | Fmax -> Printf.sprintf "(Float.max %s %s)" (a ()) (b ())
  | Sqrt -> Printf.sprintf "(sqrt %s)" (a ())
  | Exp -> Printf.sprintf "(exp %s)" (a ())
  | Log -> Printf.sprintf "(log %s)" (a ())
  | Fabs -> Printf.sprintf "(Float.abs %s)" (a ())
  | Pow -> Printf.sprintf "(%s ** %s)" (a ()) (b ())
  | I2f -> Printf.sprintf "(float_of_int %s)" (a ())
  | F2i -> Printf.sprintf "(int_of_float %s)" (a ())
  | Eq -> cmp "="
  | Ne -> cmp "<>"
  | Lt -> cmp "<"
  | Le -> cmp "<="
  | Gt -> cmp ">"
  | Ge -> cmp ">="
  | And -> Printf.sprintf "(%s && %s)" (a ()) (b ())
  | Or -> Printf.sprintf "(%s || %s)" (a ()) (b ())
  | Not -> Printf.sprintf "(not %s)" (a ())
  | Strcat -> Printf.sprintf "(%s ^ %s)" (a ()) (b ())
  | Strlen -> Printf.sprintf "(String.length %s)" (a ())
  | Strget -> Printf.sprintf "(Char.code %s.[%s])" (a ()) (b ())

let rec emit em (e : exp) : string =
  match e with
  | Const Cunit -> "()"
  | Const (Cbool b) -> string_of_bool b
  | Const (Cint i) -> Printf.sprintf "(%d)" i
  | Const (Cfloat f) -> fconst f
  | Const (Cstr s) -> Printf.sprintf "%S" s
  | Var s -> sym_name s
  | Input (name, _, _) -> mangle_input name
  | Prim (p, args) ->
      let ty_a = match args with a :: _ -> ty_of_exp a | [] -> Types.Unit in
      prim_ocaml p ty_a (List.map (emit em) args)
  | If (c, t, f) ->
      if loop_free t && loop_free f then
        Printf.sprintf "(if %s then %s else %s)" (emit em c) (emit em t) (emit em f)
      else
        (* branches with loops: statement blocks, so a branch's loops run
           only when it is taken *)
        Printf.sprintf "(if %s then %s else %s)" (emit em c) (emit_block em t)
          (emit_block em f)
  | Let (s, bound, body) ->
      let rv = emit em bound in
      line em "let %s : %s = %s in" (sym_name s) (oty (Sym.ty s)) rv;
      emit em body
  | Tuple es -> "(" ^ String.concat ", " (List.map (emit em) es) ^ ")"
  | Proj (a, i) -> (
      match ty_of_exp a with
      | Types.Tup ts ->
          let av = emit em a in
          let names = List.mapi (fun j _ -> if j = i then "p" else "_") ts in
          Printf.sprintf "(let (%s) = %s in p)" (String.concat ", " names) av
      | t -> unsupported "projection from %s" (Types.to_string t))
  | Record _ -> unsupported "struct construction (run AoS->SoA first)"
  | Field (a, n) ->
      (* structs are boxed values in the native backend: project and unwrap
         to the field's typed representation *)
      Printf.sprintf "(%s (vfield %s %S))" (unwrap (ty_of_exp e)) (emit em a) n
  | Len a -> (
      match ty_of_exp a with
      | Types.Arr _ -> Printf.sprintf "(Array.length %s)" (emit em a)
      | Types.Map _ -> Printf.sprintf "(Array.length %s.bkeys)" (emit em a)
      | t -> unsupported "len of %s" (Types.to_string t))
  | Read (a, i) -> (
      match ty_of_exp a with
      | Types.Arr _ -> Printf.sprintf "%s.(%s)" (emit em a) (emit em i)
      | Types.Map _ -> Printf.sprintf "%s.bvals.(%s)" (emit em a) (emit em i)
      | t -> unsupported "read of %s" (Types.to_string t))
  | KeyAt (m, i) -> Printf.sprintf "%s.bkeys.(%s)" (emit em m) (emit em i)
  | MapRead (m, k, d) -> (
      let mv = emit em m and kv = emit em k in
      match d with
      | None ->
          Printf.sprintf "%s.bvals.(Hashtbl.find %s.bidx %s)" mv mv kv
      | Some d ->
          Printf.sprintf
            "(match Hashtbl.find_opt %s.bidx %s with Some bi_ -> %s.bvals.(bi_) | None -> %s)"
            mv kv mv (emit em d))
  | Extern { ename; _ } -> unsupported "extern %s in native backend" ename
  | Loop l -> emit_loop em l

(* ------------------------------------------------------------------ *)
(* Loops                                                               *)
(* ------------------------------------------------------------------ *)

and emit_block em (e : exp) : string =
  let saved = em.buf in
  let b = Buffer.create 256 in
  em.buf <- b;
  let r = emit em e in
  em.buf <- saved;
  Printf.sprintf "(\n%s%s  %s)" (Buffer.contents b)
    (String.make (2 * em.indent) ' ')
    r

and emit_loop em (l : loop) : string =
  let n = fresh em "n" in
  line em "let %s = %s in" n (emit em l.size);
  let idx = sym_name l.idx in
  (* registries: shared key/cond probe per (cond, key) class *)
  let registries : (exp option * exp * string) list ref = ref [] in
  let opt_alpha a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> alpha_equal x y
    | _ -> false
  in
  let registry_for g =
    match gen_key g with
    | None -> None
    | Some key -> (
        let cond = gen_cond g in
        match
          List.find_opt (fun (c, k, _) -> opt_alpha c cond && alpha_equal k key)
            !registries
        with
        | Some (_, _, r) -> Some r
        | None ->
            let r = fresh em "reg" in
            let kty = ty_of_exp key in
            line em "let %s_tbl : (%s, int) Hashtbl.t = Hashtbl.create 64 in" r (oty kty);
            line em "let %s_keys : (%s) buf = new_buf %s in" r (oty kty) (dummy kty);
            registries := (cond, key, r) :: !registries;
            Some r)
  in
  (* declare per-generator accumulators, collect body/finish emitters *)
  let gens =
    List.map
      (fun g ->
        let reg = registry_for g in
        prepare_gen em ~n ~reg g)
      l.gens
  in
  (* the loop *)
  line em "for %s = 0 to %s - 1 do" idx n;
  em.indent <- em.indent + 1;
  (* per-iteration registry slots *)
  List.iter
    (fun (cond, key, r) ->
      let slot_rhs =
        let key_code em = emit em key in
        let probe =
          Printf.sprintf
            "(let k_ = %s in match Hashtbl.find_opt %s_tbl k_ with Some s_ -> s_ | None -> (let s_ = %s_keys.bn in Hashtbl.add %s_tbl k_ s_; buf_push %s_keys k_; s_))"
            (key_code em) r r r r
        in
        match cond with
        | None -> probe
        | Some c -> Printf.sprintf "(if %s then %s else (-1))" (emit em c) probe
      in
      line em "let %s_slot = %s in" r slot_rhs)
    (List.rev !registries);
  List.iter (fun (step, _) -> step ()) gens;
  em.indent <- em.indent - 1;
  line em "done;";
  let results = List.map (fun (_, fin) -> fin ()) gens in
  match results with [ r ] -> r | rs -> "(" ^ String.concat ", " rs ^ ")"

(* Returns (emit_step, emit_finish): step emits the per-iteration
   statements (at loop indent), finish returns the result expression. *)
and prepare_gen em ~(n : string) ~(reg : string option) (g : gen) :
    (unit -> unit) * (unit -> string) =
  match g with
  | Collect { cond = None; value } ->
      let vty = ty_of_exp value in
      let out = fresh em "out" in
      line em "let %s : (%s) array = Array.make %s %s in" out (oty vty) n (dummy vty);
      let idx_hole = fresh em "ci" in
      line em "let %s = ref 0 in" idx_hole;
      ( (fun () ->
          let v = emit em value in
          line em "%s.(!%s) <- %s; incr %s;" out idx_hole v idx_hole),
        fun () -> out )
  | Collect { cond = Some c; value } ->
      let vty = ty_of_exp value in
      let out = fresh em "out" in
      line em "let %s : (%s) buf = new_buf %s in" out (oty vty) (dummy vty);
      ( (fun () ->
          let cv = emit em c in
          line em "if %s then begin" cv;
          em.indent <- em.indent + 1;
          let v = emit em value in
          line em "buf_push %s %s" out v;
          em.indent <- em.indent - 1;
          line em "end;"),
        fun () -> Printf.sprintf "(buf_contents %s)" out )
  | Reduce { cond; value; a; b; rfun; init } -> (
      let vty = ty_of_exp value in
      match vty with
      | Types.Float ->
          let acc = fresh em "acc" in
          line em "let %s = [| %s |] in" acc (emit em init);
          ( (fun () ->
              let guard () =
                match cond with
                | None -> ()
                | Some c -> line em "if %s then begin" (emit em c)
              in
              guard ();
              if cond <> None then em.indent <- em.indent + 1;
              let v = emit em value in
              (match rfun with
              | Prim (Prim.Fadd, [ Var x; Var y ])
                when Sym.equal x a && Sym.equal y b ->
                  line em "%s.(0) <- %s.(0) +. %s;" acc acc v
              | _ ->
                  line em "let %s = %s.(0) in" (sym_name a) acc;
                  line em "let %s = %s in" (sym_name b) v;
                  let rv = emit em rfun in
                  line em "%s.(0) <- %s;" acc rv);
              if cond <> None then begin
                em.indent <- em.indent - 1;
                line em "end;"
              end),
            fun () -> Printf.sprintf "%s.(0)" acc )
      | _ ->
          (* generic (int / tuple / vector) accumulator in a ref *)
          let acc = fresh em "acc" in
          line em "let %s : (%s) ref = ref (%s) in" acc (oty vty) (emit em init);
          ( (fun () ->
              (match cond with
              | None -> ()
              | Some c -> (
                  line em "if %s then begin" (emit em c);
                  em.indent <- em.indent + 1));
              (* in-place vector accumulate when the reduction is
                 elementwise float add *)
              (match (vty, vec_fadd_shape ~a ~b rfun, strip_lets value) with
              | Types.Arr Types.Float, true,
                (lets, Loop { size = s2; idx = j2;
                              gens = [ Collect { cond = None; value = ev } ] })
                when Types.equal (ty_of_exp ev) Types.Float ->
                  List.iter
                    (fun (s, bound) ->
                      let rv = emit em bound in
                      line em "let %s : %s = %s in" (sym_name s) (oty (Sym.ty s)) rv)
                    lets;
                  let n2 = fresh em "n2" in
                  line em "let %s = %s in" n2 (emit em s2);
                  line em "let acc_ = !%s in" acc;
                  line em "for %s = 0 to %s - 1 do" (sym_name j2) n2;
                  em.indent <- em.indent + 1;
                  let evv = emit em ev in
                  line em "acc_.(%s) <- acc_.(%s) +. %s" (sym_name j2) (sym_name j2) evv;
                  em.indent <- em.indent - 1;
                  line em "done;"
              | _ ->
                  let v = emit em value in
                  line em "let %s = !%s in" (sym_name a) acc;
                  line em "let %s = %s in" (sym_name b) v;
                  let rv = emit em rfun in
                  line em "%s := %s;" acc rv);
              match cond with
              | None -> ()
              | Some _ ->
                  em.indent <- em.indent - 1;
                  line em "end;"),
            fun () ->
              if
                match vty with
                | Types.Arr Types.Float -> vec_fadd_shape ~a ~b rfun
                | _ -> false
              then Printf.sprintf "(Array.copy !%s)" acc
              else Printf.sprintf "(!%s)" acc ))
  | BucketCollect { value; _ } ->
      let r = match reg with Some r -> r | None -> assert false in
      let vty = ty_of_exp value in
      let vals = fresh em "bvals" in
      line em "let %s : (%s) list buf = new_buf [] in" vals (oty vty);
      ( (fun () ->
          line em "if %s_slot >= 0 then begin" r;
          em.indent <- em.indent + 1;
          line em "while %s.bn <= %s_slot do buf_push %s [] done;" vals r vals;
          let v = emit em value in
          line em "%s.ba.(%s_slot) <- %s :: %s.ba.(%s_slot)" vals r v vals r;
          em.indent <- em.indent - 1;
          line em "end;"),
        fun () ->
          Printf.sprintf
            "(make_bucket (buf_contents %s_keys) (Array.init %s_keys.bn (fun i_ -> Array.of_list (List.rev (if i_ < %s.bn then %s.ba.(i_) else [])))))"
            r r vals vals )
  | BucketReduce { value; a; b; rfun; init; _ } -> (
      let r = match reg with Some r -> r | None -> assert false in
      let vty = ty_of_exp value in
      match (vty, vec_fadd_shape ~a ~b rfun, strip_lets value) with
      | Types.Arr Types.Float, true,
        (lets, Loop { size = s2; idx = j2;
                      gens = [ Collect { cond = None; value = ev } ] })
        when Types.equal (ty_of_exp ev) Types.Float ->
          (* in-place per-bucket vector accumulation; init is evaluated once
             (Figure 2 semantics) and copied per new bucket *)
          let accs = fresh em "vaccs" in
          let init_n = fresh em "binit" in
          line em "let %s : float array = %s in" init_n (emit em init);
          line em "let %s : float array buf = new_buf [||] in" accs;
          ( (fun () ->
              line em "if %s_slot >= 0 then begin" r;
              em.indent <- em.indent + 1;
              line em "while %s.bn <= %s_slot do buf_push %s (Array.copy %s) done;"
                accs r accs init_n;
              List.iter
                (fun (s, bound) ->
                  let rv = emit em bound in
                  line em "let %s : %s = %s in" (sym_name s) (oty (Sym.ty s)) rv)
                lets;
              let n2 = fresh em "n2" in
              line em "let %s = %s in" n2 (emit em s2);
              line em "let acc_ = %s.ba.(%s_slot) in" accs r;
              line em "for %s = 0 to %s - 1 do" (sym_name j2) n2;
              em.indent <- em.indent + 1;
              let evv = emit em ev in
              line em "acc_.(%s) <- acc_.(%s) +. %s" (sym_name j2) (sym_name j2) evv;
              em.indent <- em.indent - 1;
              line em "done";
              em.indent <- em.indent - 1;
              line em "end;"),
            fun () ->
              Printf.sprintf
                "(make_bucket (buf_contents %s_keys) (Array.map Array.copy (buf_contents %s)))"
                r accs )
      | _ ->
          let accs = fresh em "accs" in
          let init_n = fresh em "binit" in
          line em "let %s : %s = %s in" init_n (oty vty) (emit em init);
          line em "let %s : (%s) buf = new_buf %s in" accs (oty vty) (dummy vty);
          ( (fun () ->
              line em "if %s_slot >= 0 then begin" r;
              em.indent <- em.indent + 1;
              line em "while %s.bn <= %s_slot do buf_push %s %s done;" accs r accs
                init_n;
              let v = emit em value in
              (match rfun with
              | Prim (Prim.Fadd, [ Var x; Var y ]) when Sym.equal x a && Sym.equal y b
                ->
                  line em "%s.ba.(%s_slot) <- %s.ba.(%s_slot) +. %s" accs r accs r v
              | Prim (Prim.Add, [ Var x; Var y ]) when Sym.equal x a && Sym.equal y b
                ->
                  line em "%s.ba.(%s_slot) <- %s.ba.(%s_slot) + %s" accs r accs r v
              | _ ->
                  line em "let %s = %s.ba.(%s_slot) in" (sym_name a) accs r;
                  line em "let %s = %s in" (sym_name b) v;
                  let rv = emit em rfun in
                  line em "%s.ba.(%s_slot) <- %s" accs r rv);
              em.indent <- em.indent - 1;
              line em "end;"),
            fun () ->
              Printf.sprintf "(make_bucket (buf_contents %s_keys) (buf_contents %s))" r
                accs ))

and vec_fadd_shape ~a ~b rfun =
  match rfun with
  | Loop
      { size = Len (Var x);
        idx = iz;
        gens = [ Collect { cond = None; value = Prim (Prim.Fadd, [ l; r ]) } ];
      }
    when Sym.equal x a || Sym.equal x b -> (
      match (l, r) with
      | Read (Var la, Var li), Read (Var rb, Var ri) ->
          Sym.equal li iz && Sym.equal ri iz
          && ((Sym.equal la a && Sym.equal rb b) || (Sym.equal la b && Sym.equal rb a))
      | _ -> false)
  | _ -> false

and strip_lets e =
  match e with
  | Let (s, bound, body) ->
      let lets, res = strip_lets body in
      ((s, bound) :: lets, res)
  | _ -> ([], e)

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)
(* ------------------------------------------------------------------ *)

(* Shared runtime support of both emission modes (standalone program and
   Dynlink kernel plugin): the [value] mirror type and the bucket / buf
   helpers.  No I/O — the modes differ only in how inputs arrive and
   results leave. *)
let runtime_prelude =
  {|(* Generated by the DMLL native (OCaml) backend. Do not edit. *)
(* The [value] type mirrors Dmll_interp.Value.t structurally, so Marshal
   round-trips between the host compiler and this program. *)
type value =
  | Vunit
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Varr of varr
  | Vtup of value array
  | Vstruct of (string * value) array
  | Vmap of vmap
and varr = Fa of float array | Ia of int array | Ga of value array
and vmap = { mkeys : value array; mvals : value array }

let vfield v name =
  match v with
  | Vstruct fs ->
      let rec go i =
        if i >= Array.length fs then failwith ("no field " ^ name)
        else
          let n, x = fs.(i) in
          if n = name then x else go (i + 1)
      in
      go 0
  | _ -> failwith "vfield"

(* buckets: first-seen-keyed maps with a hash index *)
type ('k, 'v) bucket = { bkeys : 'k array; bvals : 'v array; bidx : ('k, int) Hashtbl.t }

let make_bucket (keys : 'k array) (vals : 'v array) : ('k, 'v) bucket =
  let idx = Hashtbl.create (max 16 (Array.length keys)) in
  Array.iteri (fun i k -> Hashtbl.replace idx k i) keys;
  { bkeys = keys; bvals = vals; bidx = idx }

let empty_bucket () = { bkeys = [||]; bvals = [||]; bidx = Hashtbl.create 1 }

(* growable arrays *)
type 'a buf = { mutable ba : 'a array; mutable bn : int; bdummy : 'a }

let new_buf d = { ba = Array.make 16 d; bn = 0; bdummy = d }

let buf_push b x =
  if b.bn = Array.length b.ba then begin
    let a' = Array.make (2 * b.bn) b.bdummy in
    Array.blit b.ba 0 a' 0 b.bn;
    b.ba <- a'
  end;
  b.ba.(b.bn) <- x;
  b.bn <- b.bn + 1

let buf_contents b = Array.sub b.ba 0 b.bn
|}

let prelude =
  runtime_prelude
  ^ {|
let raw_inputs : (string * value) list =
  let ic = open_in_bin Sys.argv.(1) in
  let v = (Marshal.from_channel ic : (string * value) list) in
  close_in ic;
  v

let find_input name =
  try List.assoc name raw_inputs with Not_found -> failwith ("missing input " ^ name)
|}

(* The named inputs [e] reads, deduplicated. *)
let inputs_of (e : exp) : (string * Types.ty) list =
  let inputs = Hashtbl.create 8 in
  let order = ref [] in
  ignore
    (fold
       (fun () n ->
         match n with
         | Input (name, t, _) ->
             if not (Hashtbl.mem inputs name) then order := name :: !order;
             Hashtbl.replace inputs name t
         | _ -> ())
       () e);
  List.rev_map (fun name -> (name, Hashtbl.find inputs name)) !order

(** Emit the complete standalone program for [e]. *)
let emit_program (e : exp) : string =
  let ty = ty_of_exp e in
  let em = new_em () in
  let result = emit em e in
  let body = Buffer.contents em.buf in
  (* typed input bindings *)
  let input_binds =
    List.map
      (fun (name, t) ->
        Printf.sprintf "let %s : %s = %s (find_input %S)\n" (mangle_input name)
          (oty t) (unwrap t) name)
      (inputs_of e)
  in
  String.concat ""
    ([ prelude; "\n" ]
    @ input_binds
    @ [ Printf.sprintf "\nlet program () : %s =\n" (oty ty);
        body;
        Printf.sprintf "  %s\n\n" result;
        {|let () =
  let runs = int_of_string Sys.argv.(2) in
  ignore (program ());
  let times =
    Array.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (program ()));
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare times;
  Printf.printf "TIME %.9f\n" times.(runs / 2);
  let oc = open_out_bin Sys.argv.(3) in
|};
        Printf.sprintf "  Marshal.to_channel oc (%s (program ())) [];\n" (wrap ty);
        "  close_out oc\n";
      ])

(** Emit a Dynlink kernel plugin for [e] (DESIGN.md §17): the same typed
    program body as {!emit_program}, but wrapped as a
    [string -> string] closure (marshalled inputs to marshalled result)
    whose module initializer hands it to the host through
    [Dmll_backend.Kernel_link.register] under [key].  No file I/O, no
    timing main — the host owns both. *)
let emit_kernel ~(key : string) (e : exp) : string =
  let ty = ty_of_exp e in
  let em = new_em () in
  em.indent <- 2;
  let result = emit em e in
  let body = Buffer.contents em.buf in
  let input_binds =
    List.map
      (fun (name, t) ->
        Printf.sprintf "  let %s : %s = %s (find_input %S) in\n"
          (mangle_input name) (oty t) (unwrap t) name)
      (inputs_of e)
  in
  String.concat ""
    ([ runtime_prelude;
       "\nlet kernel (blob_ : string) : string =\n";
       "  let raw_inputs : (string * value) list = Marshal.from_string blob_ 0 in\n";
       "  let find_input name =\n";
       "    try List.assoc name raw_inputs\n";
       "    with Not_found -> failwith (\"missing input \" ^ name)\n";
       "  in\n";
       "  ignore (find_input : string -> value);\n";
     ]
    @ input_binds
    @ [ Printf.sprintf "  let program () : %s =\n" (oty ty);
        body;
        Printf.sprintf "    %s\n" result;
        "  in\n";
        Printf.sprintf "  Marshal.to_string (%s (program ())) []\n" (wrap ty);
        Printf.sprintf "\nlet () = Dmll_backend.Kernel_link.register ~key:%S kernel\n"
          key;
      ])

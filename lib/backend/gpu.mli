(** GPU lowering and kernel extraction (paper §5): classify each outer
    multiloop as a GPU kernel — reduction shape, memory-access
    coalescing, per-element cost — and apply the Row-to-Column Reduce
    lowering the paper's GPU backend uses.  The simulated GPU
    ([Dmll_runtime.Sim_gpu]) prices these kernels against a machine
    model; [Codegen_cuda] emits them as CUDA source. *)

open Dmll_ir

type reduce_kind =
  | No_reduce  (** pure collects: embarrassingly parallel writes *)
  | Scalar_reduce  (** shared-memory tree reduction *)
  | Vector_reduce  (** non-scalar temporaries: global-memory reduction *)

type access = Coalesced | Strided | Gather

type kernel = {
  kname : string;
  size : Exp.exp;  (** outer loop extent = thread count *)
  per_elem : Dmll_analysis.Cost.t;
  reduce : reduce_kind;
  access : access;
  inputs : Dmll_analysis.Stencil.target list;
}

val kernels_of :
  ?transposed:bool ->
  ?eval_size:(Exp.exp -> int option) ->
  Exp.exp ->
  kernel list
(** The outer loops of a program as GPU kernels, in evaluation order.
    [transposed] prices row accesses as coalesced (the transfer-time
    transpose); [eval_size] resolves symbolic extents to element
    counts when the caller knows them. *)

val lower : Exp.exp -> Exp.exp * bool
(** Apply the Row-to-Column Reduce lowering where profitable; returns
    the (possibly unchanged) program and whether anything fired. *)

val reduce_kind_to_string : reduce_kind -> string
val access_to_string : access -> string
val pp_kernel : Format.formatter -> kernel -> unit

(** Kernel handoff registry for dynlinked kernels (DESIGN.md §17).

    A JIT-compiled kernel plugin ({!Codegen_ocaml.emit_kernel} compiled
    with [ocamlopt -shared]) cannot return a value from
    [Dynlink.loadfile_private] — loading only runs the module
    initializers.  This module is the narrow rendezvous point both sides
    agree on: the plugin's initializer calls {!register} with its cache
    key and kernel closure, and the host {!take}s it right after the
    load returns.

    The kernel interface is deliberately untyped at the seam —
    [string -> string], marshalled inputs to marshalled result — so a
    plugin needs {e only} this module's interface to compile, keeping
    the compiled artifact's Dynlink import surface (and therefore its
    cache stability across host rebuilds) as small as possible. *)

type kernel = string -> string
(** Marshalled [(string * value) list] inputs to a marshalled [value]
    result; the [value] type is structurally [Dmll_interp.Value.t]. *)

let table : (string, kernel) Hashtbl.t = Hashtbl.create 16
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(** Called by the plugin's module initializer during [Dynlink.loadfile].
    Re-registration under the same key (the same artifact loaded twice)
    replaces the closure — both instances compute the same function. *)
let register ~(key : string) (k : kernel) : unit =
  locked (fun () -> Hashtbl.replace table key k)

(** The kernel registered under [key], if any.  Registrations persist
    for the process lifetime: dynlinked code cannot be unloaded, so
    dropping the closure would save nothing. *)
let find (key : string) : kernel option =
  locked (fun () -> Hashtbl.find_opt table key)

(** Number of kernels linked into this process (observability). *)
let count () : int = locked (fun () -> Hashtbl.length table)

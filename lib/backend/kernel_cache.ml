(** Content-addressed kernel cache (DESIGN.md §17).

    Compiled kernels are keyed by [backend id + capability fingerprint +
    hash of the optimized IR], so the second execution of an identical
    plan skips codegen and compilation entirely.  The IR hash is
    {e alpha-invariant}: symbols are globally unique gensyms, so two
    textually different compiles of the same program would never collide
    under a naive hash — the canonical serialization numbers binders by
    first occurrence (de Bruijn-style) before hashing.

    Two tiers:
    - a per-process memory LRU of {!entry} handles (capacity-bounded;
      eviction drops only the handle — dynlinked code is never unloaded);
    - an on-disk store of committed entry directories.  Commit mirrors
      [Checkpoint.write_file] hygiene: the artifact and its [META]
      record (magic + FNV-1a checksum) are built in a [tmp-*] directory,
      fsynced, then [rename(2)]d into the keyed location — the rename is
      the commit point, so a reader can never observe a torn entry, and
      a checksum mismatch (storage rot, truncation) rejects the entry
      and forces a recompile.

    The cache stores {e artifacts}, not values: a [`Cmxs] shared object
    for the Dynlink JIT path, or a [`Exe] standalone program for the
    child-process fallback. *)

(* ------------------------------------------------------------------ *)
(* Canonical IR hash                                                   *)
(* ------------------------------------------------------------------ *)

open Dmll_ir

(* FNV-1a, 64-bit — same integrity-grade hash the checkpoint store uses. *)
let fnv1a (s : string) : int64 =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* Serialize [e] with binders numbered by first occurrence, so
   alpha-equivalent programs produce identical blobs.  Types are part of
   the blob: codegen consults binder/input types, so two programs that
   differ only in an annotation must not share a kernel. *)
let canonical_blob (e : Exp.exp) : string =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  let next = ref 0 in
  let env : int Sym.Map.t ref = ref Sym.Map.empty in
  let bind (s : Sym.t) =
    let n = !next in
    incr next;
    env := Sym.Map.add s n !env;
    add (Printf.sprintf "b%d:%s;" n (Types.to_string (Sym.ty s)))
  in
  let var (s : Sym.t) =
    match Sym.Map.find_opt s !env with
    | Some n -> add (Printf.sprintf "v%d;" n)
    | None ->
        (* free symbol: identify by name + type (stable across runs) *)
        add (Printf.sprintf "f%s:%s;" (Sym.name s) (Types.to_string (Sym.ty s)))
  in
  let const = function
    | Exp.Cunit -> add "cu;"
    | Exp.Cbool b -> add (Printf.sprintf "cb%b;" b)
    | Exp.Cint i -> add (Printf.sprintf "ci%d;" i)
    | Exp.Cfloat f -> add (Printf.sprintf "cf%Lx;" (Int64.bits_of_float f))
    | Exp.Cstr s -> add (Printf.sprintf "cs%d:%s;" (String.length s) s)
  in
  let rec go (e : Exp.exp) =
    match e with
    | Exp.Const c -> const c
    | Exp.Var s -> var s
    | Exp.Prim (p, args) ->
        add (Printf.sprintf "p%s(" (Prim.name p));
        List.iter go args;
        add ")"
    | Exp.If (c, t, f) ->
        add "if(";
        go c;
        go t;
        go f;
        add ")"
    | Exp.Let (s, a, b) ->
        add "let(";
        go a;
        bind s;
        go b;
        add ")"
    | Exp.Tuple es ->
        add "tup(";
        List.iter go es;
        add ")"
    | Exp.Proj (a, i) ->
        add (Printf.sprintf "proj%d(" i);
        go a;
        add ")"
    | Exp.Record (ty, fs) ->
        add (Printf.sprintf "rec%s(" (Types.to_string ty));
        List.iter
          (fun (n, v) ->
            add (n ^ "=");
            go v)
          fs;
        add ")"
    | Exp.Field (a, n) ->
        add (Printf.sprintf "fld%s(" n);
        go a;
        add ")"
    | Exp.Len a ->
        add "len(";
        go a;
        add ")"
    | Exp.Read (a, i) ->
        add "rd(";
        go a;
        go i;
        add ")"
    | Exp.MapRead (m, k, d) ->
        add "mrd(";
        go m;
        go k;
        (match d with
        | None -> add "_"
        | Some d ->
            add "d(";
            go d;
            add ")");
        add ")"
    | Exp.KeyAt (m, i) ->
        add "key(";
        go m;
        go i;
        add ")"
    | Exp.Input (n, ty, l) ->
        add
          (Printf.sprintf "in%s:%s:%s;" n (Types.to_string ty)
             (match l with Exp.Local -> "L" | Exp.Partitioned -> "P"))
    | Exp.Extern x ->
        add (Printf.sprintf "ext%s:%s:%b(" x.Exp.ename (Types.to_string x.Exp.ety) x.Exp.whitelisted);
        List.iter go x.Exp.eargs;
        add ")"
    | Exp.Loop { size; idx; gens } ->
        add "loop(";
        go size;
        bind idx;
        List.iter
          (fun g ->
            let opt = function
              | None -> add "_"
              | Some c ->
                  add "c(";
                  go c;
                  add ")"
            in
            match g with
            | Exp.Collect { cond; value } ->
                add "gc(";
                opt cond;
                go value;
                add ")"
            | Exp.BucketCollect { cond; key; value } ->
                add "gbc(";
                opt cond;
                go key;
                go value;
                add ")"
            | Exp.Reduce r ->
                add "gr(";
                opt r.Exp.cond;
                go r.Exp.value;
                go r.Exp.init;
                bind r.Exp.a;
                bind r.Exp.b;
                go r.Exp.rfun;
                add ")"
            | Exp.BucketReduce r ->
                add "gbr(";
                opt r.Exp.cond;
                go r.Exp.key;
                go r.Exp.value;
                go r.Exp.init;
                bind r.Exp.a;
                bind r.Exp.b;
                go r.Exp.rfun;
                add ")")
          gens;
        add ")"
  in
  go e;
  Buffer.contents buf

(* Bumping this invalidates every cached kernel — do so whenever the
   generated code's shape changes ([Codegen_ocaml], the kernel protocol,
   the META format). *)
let codegen_version = 2

(** The cache key for [e] compiled by [backend_id] under [caps_fp]. *)
let key ~(backend_id : string) ~(caps_fp : string) (e : Exp.exp) : string =
  let blob = canonical_blob e in
  Printf.sprintf "%s-%016Lx-%016Lx" backend_id (fnv1a blob)
    (fnv1a
       (Printf.sprintf "%s|%d|%d" caps_fp codegen_version (String.length blob)))

(** A valid OCaml module name derived from a cache key (the Dynlink
    plugin's compilation unit). *)
let module_name_of_key (k : string) : string =
  "Dmll_kernel_"
  ^ String.map (fun c -> if c = '-' then '_' else c) k

(* ------------------------------------------------------------------ *)
(* Entries and the store                                               *)
(* ------------------------------------------------------------------ *)

type kind = Cmxs | Exe

let kind_to_string = function Cmxs -> "cmxs" | Exe -> "exe"
let kind_of_string = function
  | "cmxs" -> Some Cmxs
  | "exe" -> Some Exe
  | _ -> None

type entry = {
  key : string;
  kind : kind;
  dir : string;  (** the committed entry directory *)
  artifact : string;  (** absolute path of the compiled artifact *)
  source_file : string;  (** the generated source, for inspection *)
}

type t = {
  root : string;
  capacity : int;
  mutex : Mutex.t;
  mutable clock : int;
  mem : (string, entry * int ref) Hashtbl.t;
}

let meta_magic = "DMLLKERN1"

let default_root () =
  Filename.concat (Filename.get_temp_dir_name ()) "dmll-kernel-cache"

let create ?root ?(capacity = 128) () : t =
  let root = match root with Some r -> r | None -> default_root () in
  { root;
    capacity = Stdlib.max 1 capacity;
    mutex = Mutex.create ();
    clock = 0;
    mem = Hashtbl.create 64;
  }

(* The process-default cache; [Dmll.Config.kernel_cache_dir] (or
   [DMLL_KERNEL_CACHE_DIR] via [Config.of_env]) substitutes a private
   root per run when isolation matters (tests, benchmarks). *)
let shared : t Lazy.t = lazy (create ())

let locked (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let root t = t.root

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* write + fsync + rename: the Checkpoint.write_file commit discipline. *)
let write_file_atomic ~(path : string) (payload : string) : unit =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length payload in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd payload !written (n - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp path

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let entry_dir t k = Filename.concat t.root k
let meta_path dir = Filename.concat dir "META"

(* META: line-oriented text — magic, kind, artifact basename, artifact
   checksum, source basename.  Anything unparsable or mismatched is a
   corrupt entry. *)
let write_meta ~dir ~(kind : kind) ~(artifact : string) ~(source : string) : unit =
  let sum = fnv1a (read_all (Filename.concat dir artifact)) in
  let payload =
    Printf.sprintf "%s\nkind=%s\nartifact=%s\nsum=%016Lx\nsource=%s\n" meta_magic
      (kind_to_string kind) artifact sum source
  in
  write_file_atomic ~path:(meta_path dir) payload

let read_meta ~dir : (kind * string * string, string) result =
  match read_all (meta_path dir) with
  | exception _ -> Error "missing META"
  | raw -> (
      match String.split_on_char '\n' (String.trim raw) with
      | [ magic; kind_l; art_l; sum_l; src_l ]
        when String.equal magic meta_magic -> (
          let field prefix l =
            let p = prefix ^ "=" in
            if String.length l >= String.length p
               && String.equal (String.sub l 0 (String.length p)) p
            then Some (String.sub l (String.length p) (String.length l - String.length p))
            else None
          in
          match
            (field "kind" kind_l, field "artifact" art_l, field "sum" sum_l,
             field "source" src_l)
          with
          | Some kind_s, Some artifact, Some sum_s, Some source -> (
              match kind_of_string kind_s with
              | None -> Error ("unknown kind " ^ kind_s)
              | Some kind -> (
                  let art_path = Filename.concat dir artifact in
                  match read_all art_path with
                  | exception _ -> Error "missing artifact"
                  | bytes ->
                      let expect =
                        try Scanf.sscanf sum_s "%Lx" Fun.id with _ -> -1L
                      in
                      if Int64.equal (fnv1a bytes) expect then
                        Ok (kind, artifact, source)
                      else Error "artifact checksum mismatch"))
          | _ -> Error "malformed META")
      | _ -> Error "malformed META")

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)
(* ------------------------------------------------------------------ *)

type tier = Memory | Disk

let touch t er =
  t.clock <- t.clock + 1;
  er := t.clock

let evict_lru t =
  while Hashtbl.length t.mem > t.capacity do
    let victim =
      Hashtbl.fold
        (fun k (_, er) acc ->
          match acc with
          | Some (_, best) when best <= !er -> acc
          | _ -> Some (k, !er))
        t.mem None
    in
    match victim with
    | Some (k, _) -> Hashtbl.remove t.mem k
    | None -> ()
  done

(** Look [k] up: the memory LRU first, then the disk store (verifying
    the META checksum; a corrupt or torn entry is deleted and reported
    as a miss, so the caller recompiles).  Returns the tier that
    answered, so callers can account hits precisely. *)
let find (t : t) (k : string) : (entry * tier) option =
  locked t (fun () ->
      match Hashtbl.find_opt t.mem k with
      | Some (e, er) ->
          touch t er;
          Some (e, Memory)
      | None -> (
          let dir = entry_dir t k in
          if not (Sys.file_exists dir) then None
          else
            match read_meta ~dir with
            | Error _ ->
                rm_rf dir;
                None
            | Ok (kind, artifact, source) ->
                let e =
                  { key = k;
                    kind;
                    dir;
                    artifact = Filename.concat dir artifact;
                    source_file = Filename.concat dir source;
                  }
                in
                let er = ref 0 in
                Hashtbl.replace t.mem k (e, er);
                touch t er;
                evict_lru t;
                Some (e, Disk)))

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let tmp_counter = ref 0

(** Compile-and-commit: write [source] into a private build directory
    (as [source_name] — for [`Cmxs] entries this fixes the plugin's
    compilation-unit name), run [build] there (producing [artifact], a
    basename, inside it), then commit the directory under [key] with
    its META record.  The directory rename is the commit point; losing
    a commit race to a concurrent process simply adopts the winner's
    entry. *)
let store (t : t) ~(key : string) ~(kind : kind)
    ?(source_name = "kernel.ml") ~(source : string) ~(artifact : string)
    ~(build : dir:string -> (unit, string) result) () : (entry, string) result =
  incr tmp_counter;
  let build_dir =
    Filename.concat t.root
      (Printf.sprintf "tmp-%s-%d-%d" key (Unix.getpid ()) !tmp_counter)
  in
  mkdir_p build_dir;
  let commit () =
    write_file_atomic ~path:(Filename.concat build_dir source_name) source;
    match build ~dir:build_dir with
    | Error m -> Error m
    | Ok () ->
        if not (Sys.file_exists (Filename.concat build_dir artifact)) then
          Error (Printf.sprintf "build produced no %s" artifact)
        else begin
          write_meta ~dir:build_dir ~kind ~artifact ~source:source_name;
          let final = entry_dir t key in
          (match Unix.rename build_dir final with
          | () -> ()
          | exception Unix.Unix_error _ ->
              (* lost a race (or stale leftover): adopt the committed
                 entry if it verifies, else replace it *)
              (match read_meta ~dir:final with
              | Ok _ -> rm_rf build_dir
              | Error _ ->
                  rm_rf final;
                  Unix.rename build_dir final));
          fsync_dir t.root;
          match read_meta ~dir:final with
          | Error m -> Error ("commit verification failed: " ^ m)
          | Ok (kind, artifact, source) ->
              let e =
                { key;
                  kind;
                  dir = final;
                  artifact = Filename.concat final artifact;
                  source_file = Filename.concat final source;
                }
              in
              locked t (fun () ->
                  let er = ref 0 in
                  Hashtbl.replace t.mem key (e, er);
                  touch t er;
                  evict_lru t);
              Ok e
        end
  in
  match commit () with
  | r ->
      if Sys.file_exists build_dir then rm_rf build_dir;
      r
  | exception exn ->
      rm_rf build_dir;
      raise exn

(** Drop [k] everywhere (tests; corrupt-entry recovery uses it too). *)
let remove (t : t) (k : string) : unit =
  locked t (fun () ->
      Hashtbl.remove t.mem k;
      rm_rf (entry_dir t k))

(** Forget every in-memory handle (the disk store is untouched) — lets
    tests exercise the disk tier from a warm process. *)
let drop_memory (t : t) : unit = locked t (fun () -> Hashtbl.clear t.mem)

let memory_size (t : t) : int = locked t (fun () -> Hashtbl.length t.mem)

(** Native backend: compile the generated OCaml program with [ocamlopt]
    and execute it — the full Delite-style flow the paper used
    (generate → gcc → run), realized with the OCaml toolchain.

    Two execution paths, both fronted by the content-addressed
    {!Kernel_cache} (DESIGN.md §17): the in-process Dynlink JIT
    ({!Jit}) and the historical child-process fallback.  A cache hit —
    memory or disk — performs {e zero} codegen and zero compilation;
    [kernel_cache_hit]/[kernel_cache_miss] metrics record which
    happened, and each real compile runs under an [Obs.Span]
    ("kernel-compile"). *)

module V = Dmll_interp.Value
module Metrics = Dmll_obs.Metrics
module Span = Dmll_obs.Span

type result = { value : V.t; seconds : float }

exception Native_error of string

val available : bool Lazy.t
(** Is the [ocamlfind ocamlopt] toolchain usable in this environment? *)

val backend_id : string
val caps_fp : string

val cache_key : Dmll_ir.Exp.exp -> string
(** The kernel-cache key for a program under this backend's id and
    capability fingerprint. *)

(** {1 Child-process path} *)

type compiled = {
  dir : string;  (** directory holding the executable (cache entry dir) *)
  exe : string;
  source : string;  (** the generated OCaml source, for inspection *)
}

val compile :
  ?cache:Kernel_cache.t ->
  ?metrics:Metrics.t ->
  ?tracer:Span.t ->
  Dmll_ir.Exp.exp ->
  compiled
(** Generate and compile the standalone program through the kernel
    cache; a hit skips both steps.  The returned executable lives in
    its cache entry directory and is reusable across input sets. *)

val execute :
  compiled -> ?runs:int -> inputs:(string * V.t) list -> unit -> result
(** Run a compiled program on [inputs]; the child reports the median
    kernel time of [runs] executions.  Per-run scratch files live in a
    private temp directory that is always cleaned up. *)

val run :
  ?cache:Kernel_cache.t ->
  ?metrics:Metrics.t ->
  ?tracer:Span.t ->
  ?runs:int ->
  inputs:(string * V.t) list ->
  Dmll_ir.Exp.exp ->
  result
(** One-shot: generate (or cache-hit), compile, run, clean up scratch. *)

(** {1 In-process JIT path} *)

module Jit : sig
  val available : bool Lazy.t
  (** JIT availability: a native-code host ([Dynlink.is_native]), the
      toolchain, and the [dmll_backend] cmi directory for the plugin's
      external references. *)

  (** What answered a {!kernel_for} request — lets callers (and tests)
      assert precisely that warm paths did no compilation. *)
  type source = Linked | Cache of Kernel_cache.tier | Compiled

  val kernel_for :
    ?cache:Kernel_cache.t ->
    ?metrics:Metrics.t ->
    ?tracer:Span.t ->
    Dmll_ir.Exp.exp ->
    Kernel_link.kernel * source
  (** Resolve the kernel: already-linked registry entry first, then the
      kernel cache (dynlinking a hit), compiling on a miss.  Every
      outcome short of [Compiled] did zero codegen and zero
      compilation. *)

  val run :
    ?cache:Kernel_cache.t ->
    ?metrics:Metrics.t ->
    ?tracer:Span.t ->
    ?runs:int ->
    inputs:(string * V.t) list ->
    Dmll_ir.Exp.exp ->
    result
  (** Compile (or cache-hit) and run in-process: median kernel time of
      [runs] executions after a warmup, mirroring the child protocol. *)
end

val run_best :
  ?cache:Kernel_cache.t ->
  ?metrics:Metrics.t ->
  ?tracer:Span.t ->
  ?runs:int ->
  inputs:(string * V.t) list ->
  Dmll_ir.Exp.exp ->
  result
(** Run natively: in-process JIT when available, child process
    otherwise.  Both legs share the kernel cache. *)

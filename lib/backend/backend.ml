(** The backend seam (DESIGN.md §17): every execution target — the
    in-process closure compiler, the Dynlink/ocamlopt native JIT, the
    simulated NUMA/GPU/cluster machines, the real process and TCP
    executors — implements the same first-class module interface
    {!S} ([id] / [describe] / [capabilities] / [plan] / [emit] /
    [execute]) and registers itself in {!Registry}, so the driver
    ([Dmll.compile_with] / [Dmll.execute]) dispatches uniformly instead
    of pattern-matching targets.

    The backend library sits {e below} the runtime library in the
    dependency order, while most backends wrap runtime executors — so a
    backend's run-time configuration travels through the seam as an
    {e extensible-variant} {!payload}: each implementation declares its
    own constructor (in [lib/core/backends.ml], which can see both
    sides) and [execute] matches only its own. *)

module V = Dmll_interp.Value
module Metrics = Dmll_obs.Metrics
module Span = Dmll_obs.Span
module M = Dmll_machine.Machine

(* ------------------------------------------------------------------ *)
(* Capabilities                                                        *)
(* ------------------------------------------------------------------ *)

(** Explicit capability flags the driver (and [dmllc --explain backends])
    consume — a minimal, closed vocabulary in the spirit of the hxhx
    [BackendCapabilities] seam: what a backend {e can do}, never how it
    does it. *)
type capabilities = {
  wall_clock : bool;
      (** reports measured wall time (vs a modeled simulator clock) *)
  parallel : bool;  (** executes chunks concurrently *)
  distributed : bool;  (** partitions data across nodes / processes *)
  fault_injection : bool;  (** honors a [Fault.t] injector *)
  checkpointing : bool;  (** can snapshot and restore mid-run *)
  mem_budget : bool;  (** honors per-node memory budgets *)
  emits_source : bool;  (** generates target source text *)
  cacheable_kernels : bool;
      (** compiles content-addressable kernels worth caching *)
}

let capability_names (c : capabilities) : (string * bool) list =
  [ ("wall_clock", c.wall_clock);
    ("parallel", c.parallel);
    ("distributed", c.distributed);
    ("fault_injection", c.fault_injection);
    ("checkpointing", c.checkpointing);
    ("mem_budget", c.mem_budget);
    ("emits_source", c.emits_source);
    ("cacheable_kernels", c.cacheable_kernels);
  ]

(** Stable fingerprint of a capability record — part of the kernel-cache
    key, so a backend whose declared capabilities change can never serve
    kernels compiled under the old contract. *)
let capability_fingerprint (c : capabilities) : string =
  capability_names c
  |> List.map (fun (n, b) -> if b then n else "")
  |> String.concat ","

let capabilities_to_json (c : capabilities) : string =
  capability_names c
  |> List.map (fun (n, b) -> Printf.sprintf "\"%s\": %b" n b)
  |> String.concat ", "
  |> Printf.sprintf "{%s}"

(* ------------------------------------------------------------------ *)
(* Payloads and results                                                *)
(* ------------------------------------------------------------------ *)

(** Target-specific run configuration, declared per backend
    implementation.  [lib/core/backends.ml] extends this with one
    constructor per registered backend; {!S.execute} receives the
    payload its own resolver built. *)
type payload = ..

exception Wrong_payload of string
(** Raised by {!S.plan}/{!S.execute} when handed a foreign payload — a
    driver bug, never a user error. *)

let wrong_payload id = raise (Wrong_payload id)

(** Compile-time shape of a target, consumed by the driver pipeline in
    place of its historical per-target pattern matches: which cost
    objective tie-breaks horizontal fusion, which machine model the
    partitioning analysis costs against, whether the global ILP plan
    selector applies, whether the liveness-driven early-free pass runs,
    and the final target-specific lowering. *)
type plan = {
  fusion_objective : (Dmll_ir.Exp.exp -> float) option;
  machine : M.cluster option;
  wants_ilp : bool;
  early_free : bool;
  lower : Dmll_ir.Exp.exp -> Dmll_ir.Exp.exp * string list;
      (** final lowering; returns the lowered program plus the names of
          the optimizations it applied (e.g. ["row-to-column"]) *)
}

let default_plan : plan =
  { fusion_objective = None;
    machine = None;
    wants_ilp = false;
    early_free = false;
    lower = (fun e -> (e, []));
  }

(** What one execution produced — the backend-side mirror of
    [Dmll.run_result]. *)
type exec_result = {
  value : V.t;
  seconds : float;
  wall_clock : bool;
  breakdown : (string * float) list;
  traffic : (string * float) list;
  metrics : Metrics.t;
}

(** Everything an execution may observe beyond its payload: the run's
    metrics ledger, the span tracer, and the input bindings. *)
type ctx = {
  metrics : Metrics.t;
  tracer : Span.t option;
  inputs : (string * V.t) list;
}

(* ------------------------------------------------------------------ *)
(* The interface                                                       *)
(* ------------------------------------------------------------------ *)

module type S = sig
  val id : string
  (** Stable identifier ([native], [closure], [sim-cluster], …) used by
      registry lookup and the kernel-cache key. *)

  val describe : string
  (** One-line human description for diagnostics and
      [dmllc --explain backends]. *)

  val capabilities : capabilities

  val plan : payload -> plan
  (** Compile-time hooks for this target (see {!type:plan}). *)

  val emit : payload -> Dmll_ir.Exp.exp -> string option
  (** Generated source text for the program, when this backend emits
      any ([None] for interpreting/simulating backends). *)

  val execute : payload -> ctx -> Dmll_ir.Exp.exp -> exec_result
  (** Run the fully lowered program. *)
end

(** Backend registry (DESIGN.md §17): the string-keyed store of every
    {!Backend.S} implementation.  [Config.target] resolution
    ([Dmll.Backends.resolve]) goes through {!find}, and
    [dmllc --explain backends] renders {!describe_table}/{!to_json} —
    the registry is the single source of truth for what this build can
    execute. *)

let table : (string, (module Backend.S)) Hashtbl.t = Hashtbl.create 16

exception Duplicate_id of string

(** Register a backend under its [id].  Registering the same module
    twice is idempotent; a {e different} module under an existing id
    raises {!Duplicate_id} — two backends fighting over a name is a
    wiring bug worth failing loudly on. *)
let register (b : (module Backend.S)) : unit =
  let module B = (val b) in
  match Hashtbl.find_opt table B.id with
  | Some existing when existing != b -> raise (Duplicate_id B.id)
  | Some _ -> ()
  | None -> Hashtbl.replace table B.id b

let find (id : string) : (module Backend.S) option = Hashtbl.find_opt table id

let ids () : string list =
  Hashtbl.fold (fun id _ acc -> id :: acc) table [] |> List.sort String.compare

let all () : (module Backend.S) list =
  ids () |> List.filter_map (fun id -> Hashtbl.find_opt table id)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let describe_table () : string =
  let buf = Buffer.create 512 in
  let caps_summary c =
    Backend.capability_names c
    |> List.filter_map (fun (n, b) -> if b then Some n else None)
    |> String.concat ","
  in
  List.iter
    (fun b ->
      let module B = (val b : Backend.S) in
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %-52s %s\n" B.id B.describe
           (caps_summary B.capabilities)))
    (all ());
  Buffer.contents buf

let to_json () : string =
  let entries =
    all ()
    |> List.map (fun b ->
           let module B = (val b : Backend.S) in
           Printf.sprintf
             "{\"id\": \"%s\", \"describe\": \"%s\", \"capabilities\": %s}"
             B.id
             (Dmll_obs.Metrics.json_escape B.describe)
             (Backend.capabilities_to_json B.capabilities))
  in
  Printf.sprintf "{\"backends\": [%s]}" (String.concat ", " entries)

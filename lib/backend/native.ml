(** Native backend: compile the generated OCaml program with [ocamlopt]
    and execute it — the full Delite-style flow the paper used
    (generate → gcc → run), realized with the OCaml toolchain.

    Two execution paths, both fronted by the content-addressed
    {!Kernel_cache} (DESIGN.md §17):

    - {b In-process JIT} ({!Jit}): the program is emitted as a Dynlink
      plugin ([Codegen_ocaml.emit_kernel]), compiled with
      [ocamlopt -shared], dynlinked into this process, and handed back
      through the {!Kernel_link} registry.  No child process, no
      per-run marshalling to disk — the kernel is a [string -> string]
      closure over marshalled inputs.
    - {b Child process} (the historical path): a standalone executable
      that times its own kernel (median of [runs] executions, after a
      warmup) so compilation and input-marshalling costs never pollute
      the measurement, and marshals its result back for the
      correctness gate.  This is the fallback when Dynlink is
      unavailable (bytecode builds, missing cmi directory).

    A cache hit — memory or disk — performs {e zero} codegen and zero
    compilation; [kernel_cache_hit]/[kernel_cache_miss] metrics record
    which happened, and each real compile runs under an
    [Obs.Span] ("kernel-compile"). *)

module V = Dmll_interp.Value
module Metrics = Dmll_obs.Metrics
module Span = Dmll_obs.Span

type result = { value : V.t; seconds : float }

exception Native_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Native_error s)) fmt

(** Is the native toolchain usable in this environment? *)
let available =
  lazy (Sys.command "ocamlfind ocamlopt -version > /dev/null 2>&1" = 0)

let backend_id = "native"

(* Capability fingerprint under which this backend keys its kernels.
   Defined here (not via Backend.capabilities) to keep the compile path
   independent of how the seam module is assembled in lib/core. *)
let caps_fp = "wall_clock,emits_source,cacheable_kernels"

let cache_key (e : Dmll_ir.Exp.exp) : string =
  Kernel_cache.key ~backend_id ~caps_fp e

let read_capped path cap =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic (Stdlib.min n cap))
  with _ -> "(no log)"

let command_in ~dir cmd =
  let log = Filename.concat dir "build.log" in
  let full =
    Printf.sprintf "cd %s && %s > %s 2>&1" (Filename.quote dir) cmd
      (Filename.quote log)
  in
  if Sys.command full = 0 then Ok ()
  else Error (Printf.sprintf "%s failed:\n%s" cmd (read_capped log 4000))

let record_hit ?metrics () =
  match metrics with
  | Some m -> Metrics.incr m "kernel_cache_hit"
  | None -> ()

let record_miss ?metrics () =
  match metrics with
  | Some m -> Metrics.incr m "kernel_cache_miss"
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Child-process path                                                   *)
(* ------------------------------------------------------------------ *)

type compiled = {
  dir : string;  (** directory holding the executable (cache entry dir) *)
  exe : string;
  source : string;  (** the generated OCaml source, for inspection *)
}

(** Generate and compile the standalone program through the kernel
    cache; a hit skips both steps.  The returned executable lives in
    its cache entry directory and is reusable across input sets. *)
let compile ?cache ?metrics ?tracer (e : Dmll_ir.Exp.exp) : compiled =
  if not (Lazy.force available) then fail "ocamlfind/ocamlopt not available";
  let cache =
    match cache with Some c -> c | None -> Lazy.force Kernel_cache.shared
  in
  let key = cache_key e ^ "-exe" in
  let of_entry (entry : Kernel_cache.entry) =
    { dir = entry.Kernel_cache.dir;
      exe = entry.Kernel_cache.artifact;
      source = (try Kernel_cache.read_all entry.Kernel_cache.source_file with _ -> "");
    }
  in
  match Kernel_cache.find cache key with
  | Some (entry, _tier) ->
      record_hit ?metrics ();
      of_entry entry
  | None ->
      record_miss ?metrics ();
      Span.with_span ?tracer ~cat:"backend" "kernel-compile" (fun () ->
          let source = Codegen_ocaml.emit_program e in
          let stored =
            Kernel_cache.store cache ~key ~kind:Kernel_cache.Exe
              ~source_name:"prog.ml" ~source ~artifact:"prog"
              ~build:(fun ~dir ->
                command_in ~dir
                  "ocamlfind ocamlopt -package unix -linkpkg prog.ml -o prog")
              ()
          in
          match stored with
          | Error m -> fail "%s" m
          | Ok entry -> of_entry entry)

(** Run a compiled program on [inputs]; the child reports the median
    kernel time of [runs] executions.  Per-run scratch files live in a
    private temp directory that is always cleaned up — the cache entry
    directory itself is never written to. *)
let execute (c : compiled) ?(runs = 3) ~(inputs : (string * V.t) list) () :
    result =
  let scratch =
    Filename.temp_file "dmll_native_run" "" |> fun f ->
    Sys.remove f;
    Unix.mkdir f 0o700;
    f
  in
  Fun.protect
    ~finally:(fun () -> Kernel_cache.rm_rf scratch)
    (fun () ->
      let in_path = Filename.concat scratch "inputs.bin" in
      let out_path = Filename.concat scratch "result.bin" in
      let time_path = Filename.concat scratch "time.txt" in
      let oc = open_out_bin in_path in
      Marshal.to_channel oc inputs [];
      close_out oc;
      let cmd =
        Printf.sprintf "%s %s %d %s > %s" (Filename.quote c.exe)
          (Filename.quote in_path) runs (Filename.quote out_path)
          (Filename.quote time_path)
      in
      if Sys.command cmd <> 0 then fail "generated program failed (%s)" c.exe;
      let seconds =
        let ic = open_in time_path in
        let line = input_line ic in
        close_in ic;
        Scanf.sscanf line "TIME %f" (fun f -> f)
      in
      let value : V.t =
        let ic = open_in_bin out_path in
        let v = (Marshal.from_channel ic : V.t) in
        close_in ic;
        v
      in
      { value; seconds })

(** One-shot: generate (or cache-hit), compile, run, clean up scratch. *)
let run ?cache ?metrics ?tracer ?(runs = 3) ~(inputs : (string * V.t) list)
    (e : Dmll_ir.Exp.exp) : result =
  execute (compile ?cache ?metrics ?tracer e) ~runs ~inputs ()

(* ------------------------------------------------------------------ *)
(* In-process JIT path                                                  *)
(* ------------------------------------------------------------------ *)

module Jit = struct
  (* The plugin references Dmll_backend.Kernel_link, so ocamlopt needs
     this library's cmi directory.  Running from a dune build tree, the
     executable sits under _build/default/... and the cmis under
     _build/default/lib/backend/.dmll_backend.objs/byte — walk upward
     from the executable until that relative path resolves. *)
  let cmi_dir : string option Lazy.t =
    lazy
      (let rel =
         Filename.concat "lib"
           (Filename.concat "backend"
              (Filename.concat ".dmll_backend.objs" "byte"))
       in
       let rec walk d depth =
         if depth > 8 then None
         else
           let candidate = Filename.concat d rel in
           if Sys.file_exists candidate && Sys.is_directory candidate then
             Some candidate
           else
             let parent = Filename.dirname d in
             if String.equal parent d then None else walk parent (depth + 1)
       in
       let start =
         try Filename.dirname (Unix.realpath Sys.executable_name)
         with _ -> Filename.dirname Sys.executable_name
       in
       walk start 0)

  (** JIT availability: a native-code host (Dynlink of .cmxs), the
      toolchain, and the cmi directory for the plugin's external
      references. *)
  let available : bool Lazy.t =
    lazy
      (Dynlink.is_native
      && Lazy.force available
      && Option.is_some (Lazy.force cmi_dir))

  (** What answered a {!kernel_for} request — lets callers (and tests)
      assert precisely that warm paths did no compilation. *)
  type source = Linked | Cache of Kernel_cache.tier | Compiled

  let load_plugin (entry : Kernel_cache.entry) : (unit, string) Stdlib.result =
    try
      Dynlink.loadfile_private entry.Kernel_cache.artifact;
      Ok ()
    with
    | Dynlink.Error e -> Error (Dynlink.error_message e)
    | exn -> Error (Printexc.to_string exn)

  let compile_plugin ?tracer cache ~key (e : Dmll_ir.Exp.exp) :
      (Kernel_cache.entry, string) Stdlib.result =
    Span.with_span ?tracer ~cat:"backend" "kernel-compile" (fun () ->
        let modname = Kernel_cache.module_name_of_key key in
        let source_name = String.uncapitalize_ascii modname ^ ".ml" in
        let artifact = String.uncapitalize_ascii modname ^ ".cmxs" in
        let source = Codegen_ocaml.emit_kernel ~key e in
        match Lazy.force cmi_dir with
        | None -> Error "dmll_backend cmi directory not found"
        | Some cmis ->
            Kernel_cache.store cache ~key ~kind:Kernel_cache.Cmxs ~source_name
              ~source ~artifact
              ~build:(fun ~dir ->
                command_in ~dir
                  (Printf.sprintf
                     "ocamlfind ocamlopt -shared -I %s -w -a %s -o %s"
                     (Filename.quote cmis)
                     (Filename.quote source_name)
                     (Filename.quote artifact)))
              ())

  (** Resolve the kernel for [e]: already-linked registry entry first,
      then the kernel cache (dynlinking a hit), compiling on a miss.
      Every outcome short of [Compiled] did zero codegen and zero
      compilation. *)
  let kernel_for ?cache ?metrics ?tracer (e : Dmll_ir.Exp.exp) :
      Kernel_link.kernel * source =
    if not (Lazy.force available) then fail "native JIT not available";
    let cache =
      match cache with Some c -> c | None -> Lazy.force Kernel_cache.shared
    in
    let key = cache_key e in
    let linked_or what =
      match Kernel_link.find key with
      | Some k -> (k, what)
      | None -> fail "plugin %s loaded but registered no kernel" key
    in
    match Kernel_link.find key with
    | Some k ->
        record_hit ?metrics ();
        (k, Linked)
    | None -> (
        match Kernel_cache.find cache key with
        | Some (entry, tier) -> (
            match load_plugin entry with
            | Ok () ->
                record_hit ?metrics ();
                linked_or (Cache tier)
            | Error _ ->
                (* stale artifact (e.g. interface CRC drift): evict and
                   recompile *)
                Kernel_cache.remove cache key;
                record_miss ?metrics ();
                (match compile_plugin ?tracer cache ~key e with
                | Error m -> fail "%s" m
                | Ok entry -> (
                    match load_plugin entry with
                    | Error m -> fail "dynlink failed: %s" m
                    | Ok () -> linked_or Compiled)))
        | None -> (
            record_miss ?metrics ();
            match compile_plugin ?tracer cache ~key e with
            | Error m -> fail "%s" m
            | Ok entry -> (
                match load_plugin entry with
                | Error m -> fail "dynlink failed: %s" m
                | Ok () -> linked_or Compiled)))

  (** Compile (or cache-hit) and run in-process: median kernel time of
      [runs] executions after a warmup, mirroring the child protocol. *)
  let run ?cache ?metrics ?tracer ?(runs = 3)
      ~(inputs : (string * V.t) list) (e : Dmll_ir.Exp.exp) : result =
    let kernel, _src = kernel_for ?cache ?metrics ?tracer e in
    let blob = Marshal.to_string inputs [] in
    ignore (kernel blob);
    let times =
      List.init (Stdlib.max 1 runs) (fun _ ->
          let t0 = Unix.gettimeofday () in
          let r = kernel blob in
          (Unix.gettimeofday () -. t0, r))
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) times in
    let seconds, raw = List.nth sorted (List.length sorted / 2) in
    let value : V.t = Marshal.from_string raw 0 in
    { value; seconds }
end

(* ------------------------------------------------------------------ *)
(* Unified entry                                                       *)
(* ------------------------------------------------------------------ *)

(** Run [e] natively: in-process JIT when available, child process
    otherwise.  Both legs share the kernel cache. *)
let run_best ?cache ?metrics ?tracer ?(runs = 3)
    ~(inputs : (string * V.t) list) (e : Dmll_ir.Exp.exp) : result =
  if Lazy.force Jit.available then Jit.run ?cache ?metrics ?tracer ~runs ~inputs e
  else run ?cache ?metrics ?tracer ~runs ~inputs e
